// Package cand constructs the candidate substrings of the paper's edit
// distance algorithms (Figs. 4 and 5): for a block s[l..r], starting
// points on a coarse grid within n^delta of l, and for each starting point
// a geometric ladder of ending points around start+B-1.
//
// Using grid-aligned starting points costs at most one extra gap per block
// (Condition 3) and the geometric ladder costs a 1+eps factor on the
// window length tail (Condition 4); both are within the approximation
// budget, per Lemma 5.
//
// Phase attribution: cand has no Cluster.Run call sites of its own — its
// kernels run inside the machines of the drivers' candidate rounds
// ("ulam/candidates", "edit-small/pairs", the edit-large grid rounds), so
// every operation counted here is charged to the enclosing round's
// trace.Phase (PhaseCandidates, or PhaseGraph in the large regime).
package cand

import "sort"

// Starts returns the candidate starting points (0-based) for a block whose
// offset in s is l: every index in [l-delta, l+delta] ∩ [0, m-1] divisible
// by gap, where m is the length of sbar. gap is clamped to >= 1. l itself
// is always included so that exact matches at distance 0 are representable.
func Starts(l, delta, gap, m int) []int {
	if m <= 0 {
		return nil
	}
	if gap < 1 {
		gap = 1
	}
	lo := l - delta
	if lo < 0 {
		lo = 0
	}
	hi := l + delta
	if hi > m-1 {
		hi = m - 1
	}
	var out []int
	first := ((lo + gap - 1) / gap) * gap
	for g := first; g <= hi; g += gap {
		out = append(out, g)
	}
	if l >= lo && l <= hi && l%gap != 0 {
		out = append(out, l)
	}
	sort.Ints(out) // callers rely on sorted starts (segment packing)
	return out
}

// Ends returns candidate ending points (0-based, inclusive) for a window
// beginning at gamma when the block has length blockLen: the natural end
// gamma+blockLen-1 and the geometric ladder gamma+blockLen-1 ± floor((1+eps)^a),
// subject to: end within [gamma-1, m-1] (gamma-1 encodes the empty window,
// excluded here — callers add empty windows separately), window length at
// most maxLen, and ladder offsets at most deltaCap (endpoints beyond
// kappa + n^delta can be neglected, Fig. 5).
func Ends(gamma, blockLen, m int, eps float64, maxLen, deltaCap int) []int {
	if m <= 0 || blockLen <= 0 {
		return nil
	}
	if maxLen < 1 {
		maxLen = 1
	}
	kappa := gamma + blockLen - 1
	seen := make(map[int]bool)
	var out []int
	add := func(e int) {
		if e < gamma || e > m-1 {
			return
		}
		if e-gamma+1 > maxLen {
			return
		}
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	add(kappa)
	if eps <= 0 {
		eps = 0.5
	}
	step := 1.0
	for {
		off := int(step)
		if off > deltaCap && off > maxLen {
			break
		}
		if off >= 1 {
			if off <= deltaCap {
				add(kappa + off)
			}
			add(kappa - off)
		}
		next := step * (1 + eps)
		if int(next) == int(step) {
			next = step + 1
		}
		step = next
		if step > float64(m)+float64(maxLen) {
			break
		}
	}
	// Always offer the smallest window (length 1) so very short optima are
	// reachable; lengths beyond blockLen + deltaCap are unreachable when
	// the distance guess holds (Fig. 5's "neglect ending points beyond
	// kappa + n^delta").
	add(gamma)
	return out
}
