package cand

import (
	"sort"
	"testing"
)

func TestStartsGridCoverage(t *testing.T) {
	starts := Starts(50, 20, 7, 200)
	if len(starts) == 0 {
		t.Fatal("no starts")
	}
	found50 := false
	for _, g := range starts {
		if g != 50 && g%7 != 0 {
			t.Errorf("start %d not on grid", g)
		}
		if g < 30 || g > 70 {
			t.Errorf("start %d outside [30,70]", g)
		}
		if g == 50 {
			found50 = true
		}
	}
	if !found50 {
		t.Error("block offset itself missing from starts")
	}
	// Every point of [30,70] is within gap-1 of some start.
	sort.Ints(starts)
	for p := 30; p <= 70; p++ {
		ok := false
		for _, g := range starts {
			if g >= p && g-p < 7 {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("point %d not covered within gap", p)
		}
	}
}

func TestStartsClamping(t *testing.T) {
	starts := Starts(2, 10, 3, 8)
	for _, g := range starts {
		if g < 0 || g > 7 {
			t.Errorf("start %d out of string", g)
		}
	}
	if got := Starts(5, 2, 1, 0); got != nil {
		t.Errorf("empty sbar should give no starts, got %v", got)
	}
	// gap clamped to 1: every index in range.
	starts = Starts(5, 2, 0, 100)
	if len(starts) != 5 {
		t.Errorf("gap=0 should enumerate all 5 points, got %v", starts)
	}
}

func TestEndsProperties(t *testing.T) {
	gamma, blockLen, m := 40, 16, 200
	eps := 0.5
	ends := Ends(gamma, blockLen, m, eps, 64, 100)
	if len(ends) == 0 {
		t.Fatal("no ends")
	}
	hasNatural := false
	for _, e := range ends {
		if e < gamma || e > m-1 {
			t.Errorf("end %d out of range", e)
		}
		if e-gamma+1 > 64 {
			t.Errorf("end %d exceeds max window length", e)
		}
		if e == gamma+blockLen-1 {
			hasNatural = true
		}
	}
	if !hasNatural {
		t.Error("natural end gamma+B-1 missing")
	}
	// Geometric ladder: any target end in range is within a 1+eps factor
	// in window-length terms of some candidate end.
	for target := gamma; target <= gamma+63 && target < m; target++ {
		bestBelow := -1
		for _, e := range ends {
			if e <= target && e > bestBelow {
				bestBelow = e
			}
		}
		if bestBelow < 0 {
			t.Fatalf("no end at or below %d", target)
		}
		gap := target - bestBelow
		// Ladder guarantees gap <= eps * distance-from-natural + 1.
		distFromNatural := target - (gamma + blockLen - 1)
		if distFromNatural < 0 {
			distFromNatural = (gamma + blockLen - 1) - target
		}
		if float64(gap) > eps*float64(distFromNatural)+2 {
			t.Errorf("target %d: nearest below %d leaves gap %d (dist from natural %d)",
				target, bestBelow, gap, distFromNatural)
		}
	}
}

func TestEndsDegenerate(t *testing.T) {
	if got := Ends(0, 5, 0, 0.5, 10, 10); got != nil {
		t.Errorf("m=0 should give nil, got %v", got)
	}
	if got := Ends(0, 0, 10, 0.5, 10, 10); got != nil {
		t.Errorf("blockLen=0 should give nil, got %v", got)
	}
	// Single-character string.
	ends := Ends(0, 1, 1, 0.5, 5, 5)
	if len(ends) != 1 || ends[0] != 0 {
		t.Errorf("ends on 1-char string = %v", ends)
	}
	// eps <= 0 falls back without infinite loop.
	ends = Ends(0, 4, 20, 0, 10, 10)
	if len(ends) == 0 {
		t.Error("eps=0 fallback produced nothing")
	}
}

func TestEndsNoDuplicates(t *testing.T) {
	ends := Ends(10, 8, 100, 0.3, 40, 50)
	seen := map[int]bool{}
	for _, e := range ends {
		if seen[e] {
			t.Fatalf("duplicate end %d", e)
		}
		seen[e] = true
	}
}
