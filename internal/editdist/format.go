package editdist

import "strings"

// FormatAlignment renders an edit script as three aligned text rows —
// characters of a, a marker line (| match, * substitution, spaces for
// indels), and characters of b — wrapped at width columns. It is the
// human-readable view used by the CLI's script mode.
func FormatAlignment(a, b []byte, script []Op, width int) string {
	if width < 8 {
		width = 8
	}
	var ra, rm, rb []byte
	for _, op := range script {
		switch op.Kind {
		case Match:
			ra = append(ra, a[op.APos])
			rm = append(rm, '|')
			rb = append(rb, b[op.BPos])
		case Substitute:
			ra = append(ra, a[op.APos])
			rm = append(rm, '*')
			rb = append(rb, b[op.BPos])
		case Insert:
			ra = append(ra, '-')
			rm = append(rm, ' ')
			rb = append(rb, b[op.BPos])
		case Delete:
			ra = append(ra, a[op.APos])
			rm = append(rm, ' ')
			rb = append(rb, '-')
		}
	}
	var sb strings.Builder
	for off := 0; off < len(ra); off += width {
		end := off + width
		if end > len(ra) {
			end = len(ra)
		}
		sb.Write(ra[off:end])
		sb.WriteByte('\n')
		sb.Write(rm[off:end])
		sb.WriteByte('\n')
		sb.Write(rb[off:end])
		sb.WriteByte('\n')
		if end < len(ra) {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
