package editdist

import (
	"math/rand"
	"testing"
)

func TestDiagonalTransitionVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		a := randBytes(rng, rng.Intn(80), 3)
		b := randBytes(rng, rng.Intn(80), 3)
		if got, want := DiagonalTransition(a, b, nil), Distance(a, b, nil); got != want {
			t.Fatalf("DiagonalTransition(%q,%q) = %d, want %d", a, b, got, want)
		}
	}
}

func TestDiagonalTransitionSmallDistanceLargeStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := randBytes(rng, 20000, 4)
	b := append([]byte(nil), a...)
	for i := 0; i < 15; i++ {
		p := rng.Intn(len(b))
		switch rng.Intn(3) {
		case 0:
			b[p] = byte('a' + rng.Intn(4))
		case 1:
			b = append(b[:p], b[p+1:]...)
		default:
			b = append(b[:p], append([]byte{byte('a' + rng.Intn(4))}, b[p:]...)...)
		}
	}
	want := Myers(a, b, nil)
	if got := DiagonalTransition(a, b, nil); got != want {
		t.Fatalf("large-string DiagonalTransition = %d, want %d", got, want)
	}
}

func TestDiagonalTransitionEdges(t *testing.T) {
	if got := DiagonalTransition(nil, []byte("ab"), nil); got != 2 {
		t.Errorf("empty a: %d", got)
	}
	if got := DiagonalTransition([]byte("ab"), nil, nil); got != 2 {
		t.Errorf("empty b: %d", got)
	}
	if got := DiagonalTransition([]byte("same"), []byte("same"), nil); got != 0 {
		t.Errorf("equal: %d", got)
	}
	// Highly repetitive strings stress the LCE fast path and hashing.
	a := make([]byte, 3000)
	b := make([]byte, 3100)
	for i := range a {
		a[i] = 'x'
	}
	for i := range b {
		b[i] = 'x'
	}
	if got := DiagonalTransition(a, b, nil); got != 100 {
		t.Errorf("repetitive: %d, want 100", got)
	}
}

func TestLCEExtend(t *testing.T) {
	a := []byte("abcdefghijklmnopqrstuvwxyz0123456789")
	b := []byte("abcdefghijklmnopqrstuvwxyz012345678X")
	l := newLCE(a, b)
	if got := l.extend(0, 0); got != 35 {
		t.Errorf("extend(0,0) = %d, want 35", got)
	}
	if got := l.extend(35, 35); got != 0 {
		t.Errorf("extend(35,35) = %d, want 0", got)
	}
	if got := l.extend(36, 0); got != 0 {
		t.Errorf("extend beyond end = %d, want 0", got)
	}
	// Long equal strings: binary-search path.
	n := 5000
	x := make([]byte, n)
	for i := range x {
		x[i] = byte('a' + i%7)
	}
	l2 := newLCE(x, x)
	if got := l2.extend(0, 0); got != n {
		t.Errorf("self extend = %d, want %d", got, n)
	}
	if got := l2.extend(7, 0); got != n-7 {
		t.Errorf("periodic extend = %d, want %d", got, n-7)
	}
}

func BenchmarkDiagonalTransition20kD15(b *testing.B) {
	rng := rand.New(rand.NewSource(73))
	a := randBytes(rng, 20000, 4)
	c := append([]byte(nil), a...)
	for i := 0; i < 15; i++ {
		c[rng.Intn(len(c))] = byte('a' + rng.Intn(4))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiagonalTransition(a, c, nil)
	}
}
