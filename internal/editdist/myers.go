package editdist

import "mpcdist/internal/stats"

const wordBits = 64

// Myers computes the exact edit distance between byte strings using the
// Myers/Hyyrö bit-parallel dynamic program, O(ceil(|a|/64)·|b|) time. It is
// the fast exact kernel used for the many block-sized comparisons performed
// by simulated machines. ops is charged one unit per word-column step, so
// its counts are comparable to DP cells divided by the word size.
func Myers(a, b []byte, ops *stats.Ops) int {
	// Pattern is a (vertical), text is b (horizontal). Keep pattern shorter
	// to minimize the number of words.
	if len(a) > len(b) {
		a, b = b, a
	}
	m, n := len(a), len(b)
	if m == 0 {
		return n
	}
	w := (m + wordBits - 1) / wordBits
	// Peq[blk][c] has bit i set iff a[blk*64+i] == c.
	peq := make([][256]uint64, w)
	for i, c := range a {
		peq[i/wordBits][c] |= 1 << (uint(i) % wordBits)
	}
	pv := make([]uint64, w)
	mv := make([]uint64, w)
	for i := range pv {
		pv[i] = ^uint64(0)
	}
	score := m
	lastBits := uint(m - (w-1)*wordBits) // valid bits in the last block
	scoreBit := uint64(1) << (lastBits - 1)

	for j := 0; j < n; j++ {
		c := b[j]
		hin := 1 // D[0][j+1] - D[0][j] = +1
		for blk := 0; blk < w; blk++ {
			eq := peq[blk][c]
			pvb, mvb := pv[blk], mv[blk]
			xv := eq | mvb
			if hin < 0 {
				eq |= 1
			}
			xh := (((eq & pvb) + pvb) ^ pvb) | eq
			ph := mvb | ^(xh | pvb)
			mh := pvb & xh
			if blk == w-1 {
				if ph&scoreBit != 0 {
					score++
				} else if mh&scoreBit != 0 {
					score--
				}
			}
			hout := 0
			if ph&(1<<(wordBits-1)) != 0 {
				hout = 1
			} else if mh&(1<<(wordBits-1)) != 0 {
				hout = -1
			}
			ph <<= 1
			mh <<= 1
			if hin < 0 {
				mh |= 1
			} else if hin > 0 {
				ph |= 1
			}
			pv[blk] = mh | ^(xv | ph)
			mv[blk] = ph & xv
			hin = hout
		}
	}
	ops.Add(int64(w) * int64(n))
	return score
}

// MyersMulti returns, for each requested prefix length e in ends,
// ed(a, b[:e]) — all from a single bit-parallel pass over b. The candidate
// construction of Figs. 4-5 evaluates one block against a ladder of
// windows sharing a starting point; those windows are prefixes of the
// longest one, so one pass prices the whole ladder.
//
// ends must be in [0, len(b)]; order is arbitrary and duplicates are fine.
func MyersMulti(a, b []byte, ends []int, ops *stats.Ops) []int {
	out := make([]int, len(ends))
	if len(ends) == 0 {
		return out
	}
	m := len(a)
	if m == 0 {
		for i, e := range ends {
			out[i] = e
		}
		return out
	}
	// want[j] lists result slots for prefix length j.
	maxEnd := 0
	for _, e := range ends {
		if e < 0 || e > len(b) {
			panic("editdist: MyersMulti end out of range")
		}
		if e > maxEnd {
			maxEnd = e
		}
	}
	want := make([][]int32, maxEnd+1)
	for i, e := range ends {
		want[e] = append(want[e], int32(i))
	}

	w := (m + wordBits - 1) / wordBits
	peq := make([][256]uint64, w)
	for i, c := range a {
		peq[i/wordBits][c] |= 1 << (uint(i) % wordBits)
	}
	pv := make([]uint64, w)
	mv := make([]uint64, w)
	for i := range pv {
		pv[i] = ^uint64(0)
	}
	score := m
	lastBits := uint(m - (w-1)*wordBits)
	scoreBit := uint64(1) << (lastBits - 1)

	record := func(j int) {
		for _, slot := range want[j] {
			out[slot] = score
		}
	}
	record(0)
	for j := 0; j < maxEnd; j++ {
		c := b[j]
		hin := 1
		for blk := 0; blk < w; blk++ {
			eq := peq[blk][c]
			pvb, mvb := pv[blk], mv[blk]
			xv := eq | mvb
			if hin < 0 {
				eq |= 1
			}
			xh := (((eq & pvb) + pvb) ^ pvb) | eq
			ph := mvb | ^(xh | pvb)
			mh := pvb & xh
			if blk == w-1 {
				if ph&scoreBit != 0 {
					score++
				} else if mh&scoreBit != 0 {
					score--
				}
			}
			hout := 0
			if ph&(1<<(wordBits-1)) != 0 {
				hout = 1
			} else if mh&(1<<(wordBits-1)) != 0 {
				hout = -1
			}
			ph <<= 1
			mh <<= 1
			if hin < 0 {
				mh |= 1
			} else if hin > 0 {
				ph |= 1
			}
			pv[blk] = mh | ^(xv | ph)
			mv[blk] = ph & xv
			hin = hout
		}
		record(j + 1)
	}
	ops.Add(int64(w) * int64(maxEnd))
	return out
}
