package editdist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mpcdist/internal/stats"
)

// naive is an independent full-matrix reference implementation.
func naive(a, b []byte) int {
	d := make([][]int, len(a)+1)
	for i := range d {
		d[i] = make([]int, len(b)+1)
		d[i][0] = i
	}
	for j := 0; j <= len(b); j++ {
		d[0][j] = j
	}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				d[i][j] = d[i-1][j-1]
			} else {
				m := d[i-1][j-1]
				if d[i-1][j] < m {
					m = d[i-1][j]
				}
				if d[i][j-1] < m {
					m = d[i][j-1]
				}
				d[i][j] = m + 1
			}
		}
	}
	return d[len(a)][len(b)]
}

func randBytes(rng *rand.Rand, n, sigma int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte('a' + rng.Intn(sigma))
	}
	return s
}

func TestDistanceKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"elephant", "relevant", 3}, // the paper's Section 2 example
		{"a", "b", 1},
		{"ab", "ba", 2},
	}
	for _, c := range cases {
		if got := Strings(c.a, c.b); got != c.want {
			t.Errorf("Strings(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceVsNaiveQuick(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > 80 {
			a = a[:80]
		}
		if len(b) > 80 {
			b = b[:80]
		}
		return Distance(a, b, nil) == naive(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDistanceIntSlices(t *testing.T) {
	a := []int{1, 2, 3, 4}
	b := []int{1, 3, 4, 5}
	if got := Distance(a, b, nil); got != 2 {
		t.Errorf("Distance(ints) = %d, want 2", got)
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 120; trial++ {
		a := randBytes(rng, rng.Intn(40), 3)
		b := randBytes(rng, rng.Intn(40), 3)
		c := randBytes(rng, rng.Intn(40), 3)
		dab := Distance(a, b, nil)
		dba := Distance(b, a, nil)
		if dab != dba {
			t.Fatalf("not symmetric: %d vs %d", dab, dba)
		}
		if Distance(a, a, nil) != 0 {
			t.Fatalf("d(a,a) != 0")
		}
		dac := Distance(a, c, nil)
		dbc := Distance(b, c, nil)
		if dac > dab+dbc {
			t.Fatalf("triangle inequality violated: d(a,c)=%d > %d+%d", dac, dab, dbc)
		}
		ldiff := len(a) - len(b)
		if ldiff < 0 {
			ldiff = -ldiff
		}
		if dab < ldiff {
			t.Fatalf("distance below length difference")
		}
		if dab > max(len(a), len(b)) {
			t.Fatalf("distance above max length")
		}
	}
}

func TestOpsCharged(t *testing.T) {
	var ops stats.Ops
	Distance([]byte("abcdef"), []byte("ghij"), &ops)
	if got := ops.Count(); got != 24 {
		t.Errorf("ops = %d, want 24", got)
	}
}

func TestBandedMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		a := randBytes(rng, rng.Intn(50), 4)
		b := randBytes(rng, rng.Intn(50), 4)
		want := Distance(a, b, nil)
		for _, k := range []int{0, 1, 2, 5, 10, 100} {
			got, ok := Banded(a, b, k, nil)
			if want <= k {
				if !ok || got != want {
					t.Fatalf("Banded(k=%d) = (%d,%v), want (%d,true) for %q %q", k, got, ok, want, a, b)
				}
			} else if ok || got != k+1 {
				t.Fatalf("Banded(k=%d) = (%d,%v), want (%d,false); true d=%d", k, got, ok, k+1, want)
			}
		}
	}
}

func TestBandedNegativeThreshold(t *testing.T) {
	if _, ok := Banded([]byte("a"), []byte("a"), -1, nil); ok {
		t.Error("Banded with k<0 must report false")
	}
}

func TestWithinThreshold(t *testing.T) {
	a, b := []byte("kitten"), []byte("sitting")
	if !WithinThreshold(a, b, 3, nil) {
		t.Error("WithinThreshold(3) = false, want true")
	}
	if WithinThreshold(a, b, 2, nil) {
		t.Error("WithinThreshold(2) = true, want false")
	}
}

func TestBoundedDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 150; trial++ {
		a := randBytes(rng, rng.Intn(60), 4)
		b := randBytes(rng, rng.Intn(60), 4)
		want := Distance(a, b, nil)
		for _, bound := range []int{0, 1, 3, 7, 20, 200} {
			got := BoundedDistance(a, b, bound, nil)
			if want <= bound && got != want {
				t.Fatalf("BoundedDistance(bound=%d) = %d, want %d", bound, got, want)
			}
			if want > bound && got != bound+1 {
				t.Fatalf("BoundedDistance(bound=%d) = %d, want %d (capped)", bound, got, bound+1)
			}
		}
	}
}

func TestMyersVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 150; trial++ {
		// Cover single-word (<=64) and multi-word (>64) pattern lengths.
		n := rng.Intn(200)
		m := rng.Intn(200)
		a := randBytes(rng, n, 4)
		b := randBytes(rng, m, 4)
		if got, want := Myers(a, b, nil), Distance(a, b, nil); got != want {
			t.Fatalf("Myers = %d, want %d (|a|=%d |b|=%d)", got, want, n, m)
		}
	}
}

func TestMyersEdges(t *testing.T) {
	if got := Myers(nil, []byte("xyz"), nil); got != 3 {
		t.Errorf("Myers(empty, xyz) = %d, want 3", got)
	}
	if got := Myers([]byte("xyz"), nil, nil); got != 3 {
		t.Errorf("Myers(xyz, empty) = %d, want 3", got)
	}
	// Exactly one word.
	a := randBytes(rand.New(rand.NewSource(8)), 64, 2)
	b := randBytes(rand.New(rand.NewSource(9)), 64, 2)
	if got, want := Myers(a, b, nil), Distance(a, b, nil); got != want {
		t.Errorf("Myers 64 = %d, want %d", got, want)
	}
	// Exactly 65 (word boundary).
	a = randBytes(rand.New(rand.NewSource(10)), 65, 2)
	if got, want := Myers(a, b, nil), Distance(a, b, nil); got != want {
		t.Errorf("Myers 65 = %d, want %d", got, want)
	}
}

func TestScriptOptimalAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 150; trial++ {
		a := randBytes(rng, rng.Intn(50), 3)
		b := randBytes(rng, rng.Intn(50), 3)
		script := Script(a, b)
		if err := Validate(a, b, script); err != nil {
			t.Fatalf("invalid script for %q -> %q: %v", a, b, err)
		}
		if got, want := Cost(script), Distance(a, b, nil); got != want {
			t.Fatalf("script cost %d, want optimal %d for %q -> %q", got, want, a, b)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	a, b := []byte("abc"), []byte("abd")
	script := Script(a, b)
	if err := Validate(a, b, script); err != nil {
		t.Fatalf("valid script rejected: %v", err)
	}
	bad := append([]Op{}, script...)
	bad[0].Kind = Insert
	if err := Validate(a, b, bad); err == nil {
		t.Error("corrupted script accepted")
	}
	if err := Validate(a, b, script[:len(script)-1]); err == nil {
		t.Error("truncated script accepted")
	}
}

func TestOpKindString(t *testing.T) {
	if Match.String() != "match" || Substitute.String() != "sub" ||
		Insert.String() != "ins" || Delete.String() != "del" {
		t.Error("OpKind.String labels wrong")
	}
	if OpKind(99).String() == "" {
		t.Error("unknown OpKind should still format")
	}
}

func TestMyersMultiMatchesPerPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 80; trial++ {
		a := randBytes(rng, rng.Intn(150), 3)
		b := randBytes(rng, rng.Intn(150), 3)
		var ends []int
		for e := 0; e <= len(b); e += 1 + rng.Intn(5) {
			ends = append(ends, e)
		}
		// Duplicates and unsorted order must work.
		if len(ends) > 1 {
			ends = append(ends, ends[0])
			ends[0], ends[len(ends)-2] = ends[len(ends)-2], ends[0]
		}
		got := MyersMulti(a, b, ends, nil)
		for i, e := range ends {
			want := Distance(a, b[:e], nil)
			if got[i] != want {
				t.Fatalf("MyersMulti end %d = %d, want %d (|a|=%d)", e, got[i], want, len(a))
			}
		}
	}
}

func TestMyersMultiEdges(t *testing.T) {
	if got := MyersMulti(nil, []byte("xy"), []int{0, 1, 2}, nil); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("empty pattern: %v", got)
	}
	if got := MyersMulti([]byte("ab"), []byte("ab"), nil, nil); len(got) != 0 {
		t.Errorf("no ends: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range end did not panic")
		}
	}()
	MyersMulti([]byte("a"), []byte("b"), []int{5}, nil)
}

func TestFormatAlignment(t *testing.T) {
	a, b := []byte("kitten"), []byte("sitting")
	out := FormatAlignment(a, b, Script(a, b), 80)
	lines := splitLines(out)
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), out)
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Fatalf("rows unequal:\n%s", out)
	}
	// Matches marked |, subs *, indels with dashes.
	nMatch, nSub := 0, 0
	for i := range lines[1] {
		switch lines[1][i] {
		case '|':
			nMatch++
			if lines[0][i] != lines[2][i] {
				t.Errorf("column %d marked match but chars differ", i)
			}
		case '*':
			nSub++
		case ' ':
			if lines[0][i] != '-' && lines[2][i] != '-' {
				t.Errorf("column %d marked indel but no dash", i)
			}
		}
	}
	if nSub != 2 || nMatch != 4 {
		t.Errorf("kitten->sitting: %d subs %d matches, want 2/4", nSub, nMatch)
	}
	// Wrapping.
	wrapped := FormatAlignment(a, b, Script(a, b), 8)
	if len(splitLines(wrapped)) < 3 {
		t.Errorf("wrapped output too short:\n%s", wrapped)
	}
}

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}
