package editdist

import (
	"math/bits"

	"mpcdist/internal/stats"
)

// DiagonalTransition computes the exact edit distance with the
// Landau-Myers/Ukkonen diagonal-transition algorithm: O(n + d^2·log n)
// expected time where d is the distance, using hashed longest-common-
// extension queries. It is the kernel of choice when strings are huge but
// similar (the paper's motivating genome regime).
//
// LCE queries compare 64-bit polynomial prefix hashes (two independent
// moduli); a collision would require two distinct substrings agreeing
// under both hashes, with probability < 2^-50 per query. This mirrors the
// standard practical substitution for the suffix-tree LCE of the original
// algorithm (DESIGN.md notes the randomization).
func DiagonalTransition(a, b []byte, ops *stats.Ops) int {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return n + m
	}
	h := newLCE(a, b)

	// f[k] = furthest row i on diagonal k = j - i reachable with e edits.
	// Diagonals are offset by n so indices stay nonnegative.
	const neg = -1 << 30
	kmin, kmax := -n, m
	size := kmax - kmin + 3
	prev := make([]int, size)
	cur := make([]int, size)
	for i := range prev {
		prev[i] = neg
		cur[i] = neg
	}
	idx := func(k int) int { return k - kmin + 1 }

	target := m - n // diagonal of the bottom-right corner
	var work int64
	// e = 0: slide along the main diagonal.
	i0 := h.extend(0, 0)
	prev[idx(0)] = i0
	if target == 0 && i0 >= n {
		ops.Add(1)
		return 0
	}
	for e := 1; e <= n+m; e++ {
		lo := -e
		if lo < -n {
			lo = -n
		}
		hi := e
		if hi > m {
			hi = m
		}
		for k := lo; k <= hi; k++ {
			i := prev[idx(k)] + 1 // substitution
			if v := prev[idx(k-1)]; v > i {
				i = v // insertion into a (j advances, i does not)
			}
			if v := prev[idx(k+1)] + 1; v > i {
				i = v // deletion from a
			}
			if i < 0 {
				if k >= 0 && e >= k {
					i = 0 // can always start on diagonal k >= 0 after k insertions
				} else {
					cur[idx(k)] = neg
					continue
				}
			}
			if i > n {
				i = n
			}
			if i+k > m {
				cur[idx(k)] = neg
				continue
			}
			i += h.extend(i, i+k)
			cur[idx(k)] = i
			work++
			if k == target && i >= n {
				ops.Add(work + int64(n)/8)
				return e
			}
		}
		prev, cur = cur, prev
		for x := range cur {
			cur[x] = neg
		}
	}
	ops.Add(work)
	return n + m // unreachable
}

// lceIndex answers longest-common-extension queries between suffixes of a
// and b via binary search over double polynomial hashes.
type lceIndex struct {
	a, b   []byte
	ha, hb [2][]uint64
	pw     [2][]uint64
}

const (
	lceMod0  = (1 << 61) - 1 // Mersenne prime 2^61-1
	lceMod1  = (1 << 31) - 1
	lceBase0 = 1_000_000_007
	lceBase1 = 131
)

func newLCE(a, b []byte) *lceIndex {
	l := &lceIndex{a: a, b: b}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for h, pair := range [2][2]uint64{{lceBase0, lceMod0}, {lceBase1, lceMod1}} {
		base, mod := pair[0], pair[1]
		l.pw[h] = make([]uint64, n+1)
		l.pw[h][0] = 1
		for i := 1; i <= n; i++ {
			l.pw[h][i] = mulmod(l.pw[h][i-1], base, mod)
		}
		l.ha[h] = prefixHash(a, base, mod)
		l.hb[h] = prefixHash(b, base, mod)
	}
	return l
}

func prefixHash(s []byte, base, mod uint64) []uint64 {
	out := make([]uint64, len(s)+1)
	for i, c := range s {
		out[i+1] = (mulmod(out[i], base, mod) + uint64(c) + 1) % mod
	}
	return out
}

// mulmod multiplies modulo mod. Both operands must already be reduced
// modulo mod, which keeps the 128-bit product's high word below mod, as
// bits.Rem64 requires.
func mulmod(x, y, mod uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	return bits.Rem64(hi, lo, mod)
}

// hashRange returns the hash of s[i:i+l] under hash h for string sel
// (0 = a, 1 = b).
func (l *lceIndex) hashRange(sel, h, i, length int) uint64 {
	var pre []uint64
	if sel == 0 {
		pre = l.ha[h]
	} else {
		pre = l.hb[h]
	}
	var mod uint64 = lceMod0
	if h == 1 {
		mod = lceMod1
	}
	sub := mulmod(pre[i], l.pw[h][length], mod)
	v := pre[i+length]
	if v < sub%mod {
		v += mod
	}
	return (v - sub%mod) % mod
}

// extend returns the length of the longest common prefix of a[i:] and
// b[j:].
func (l *lceIndex) extend(i, j int) int {
	max := len(l.a) - i
	if r := len(l.b) - j; r < max {
		max = r
	}
	if max <= 0 {
		return 0
	}
	// Fast path: compare a few characters directly before binary search.
	k := 0
	for k < max && k < 8 && l.a[i+k] == l.b[j+k] {
		k++
	}
	if k < 8 || k == max {
		return k
	}
	lo, hi := k, max // invariant: prefix of length lo matches, hi+1 doesn't... search largest match
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if l.hashRange(0, 0, i, mid) == l.hashRange(1, 0, j, mid) &&
			l.hashRange(0, 1, i, mid) == l.hashRange(1, 1, j, mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
