// Package editdist implements exact sequential edit-distance kernels: the
// classic dynamic program, a banded (Ukkonen) variant with threshold
// decision, the Myers bit-parallel algorithm, and Hirschberg linear-space
// alignment recovery.
//
// These are the substrates the paper's MPC algorithms compute on individual
// machines (the "naive DP algorithm" of Algorithms 5 and 7) and the exact
// oracles every approximation in this repository is verified against.
//
// All operations (insert, delete, substitute) cost 1, matching the paper.
package editdist

import "mpcdist/internal/stats"

// Distance returns the exact edit distance between a and b using the
// classic dynamic program with two rows of memory, O(|a|·|b|) time and
// O(min(|a|,|b|)) space. ops, which may be nil, is charged one unit per DP
// cell evaluated.
func Distance[T comparable](a, b []T, ops *stats.Ops) int {
	// Keep the inner dimension the smaller one.
	if len(b) > len(a) {
		a, b = b, a
	}
	m := len(b)
	if m == 0 {
		return len(a)
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ai := a[i-1]
		for j := 1; j <= m; j++ {
			if ai == b[j-1] {
				cur[j] = prev[j-1]
			} else {
				c := prev[j-1] // substitute
				if prev[j] < c {
					c = prev[j] // delete from a
				}
				if cur[j-1] < c {
					c = cur[j-1] // insert into a
				}
				cur[j] = c + 1
			}
		}
		prev, cur = cur, prev
	}
	ops.Add(int64(len(a)) * int64(m))
	return prev[m]
}

// Bytes is shorthand for Distance over byte slices.
func Bytes(a, b []byte, ops *stats.Ops) int { return Distance(a, b, ops) }

// Strings is shorthand for Distance over strings.
func Strings(a, b string) int { return Distance([]byte(a), []byte(b), nil) }

// Banded computes the edit distance between a and b restricted to the band
// of diagonals within k of the main diagonal (Ukkonen's algorithm). It
// returns (d, true) when the true distance d is at most k, and (k+1, false)
// when the distance exceeds k. Time O((2k+1)·min(|a|,|b|) + k).
//
// A negative k reports (0, true) only for equal inputs, consistent with
// "distance at most k" being unsatisfiable.
func Banded[T comparable](a, b []T, k int, ops *stats.Ops) (int, bool) {
	if k < 0 {
		return 0, false
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	n, m := len(a), len(b)
	if n-m > k {
		return k + 1, false
	}
	const inf = 1 << 30
	// Row i covers columns j in [i-k, i+k] intersected with [0, m].
	width := 2*k + 1
	prev := make([]int, width+2)
	cur := make([]int, width+2)
	// idx maps column j on row i to slot j-(i-k)+1; slots 0 and width+1 are
	// sentinels holding inf.
	for s := range prev {
		prev[s] = inf
	}
	for j := 0; j <= k && j <= m; j++ {
		prev[j+1] = j // row 0: D[0][j] = j at slot j-(0-k)+1 = j+k+1... see note
	}
	// Note: for row 0 the band starts at j = -k; slot(j) = j+k+1. Rewrite:
	for s := range prev {
		prev[s] = inf
	}
	for j := 0; j <= m && j <= k; j++ {
		prev[j+k+1] = j
	}
	var cells int64
	for i := 1; i <= n; i++ {
		lo := i - k
		if lo < 0 {
			lo = 0
		}
		hi := i + k
		if hi > m {
			hi = m
		}
		for s := range cur {
			cur[s] = inf
		}
		if lo > hi {
			return k + 1, false
		}
		for j := lo; j <= hi; j++ {
			s := j - (i - k) + 1 // slot on current row
			ps := j - (i - 1 - k) + 1
			if j == 0 {
				cur[s] = i
				continue
			}
			var best int
			if a[i-1] == b[j-1] {
				best = prev[ps-1]
			} else {
				best = prev[ps-1] // substitute
				if prev[ps] < best {
					best = prev[ps] // delete
				}
				if cur[s-1] < best {
					best = cur[s-1] // insert
				}
				if best < inf {
					best++
				}
			}
			cur[s] = best
		}
		cells += int64(hi - lo + 1)
		prev, cur = cur, prev
	}
	ops.Add(cells)
	d := prev[m-(n-k)+1]
	if d > k {
		return k + 1, false
	}
	return d, true
}

// WithinThreshold reports whether ed(a, b) <= tau, using the banded
// algorithm. It is the decision procedure used when building the graph
// G_tau in the paper's large-distance regime.
func WithinThreshold[T comparable](a, b []T, tau int, ops *stats.Ops) bool {
	_, ok := Banded(a, b, tau, ops)
	return ok
}

// BoundedDistance returns min(ed(a, b), bound+1), spending only
// O(bound·min(|a|,|b|)) time via exponential threshold doubling. It is the
// preferred exact kernel when a cap is known (e.g. distances above 2·tau
// are irrelevant).
func BoundedDistance[T comparable](a, b []T, bound int, ops *stats.Ops) int {
	if bound < 0 {
		bound = 0
	}
	k := 1
	d0 := len(a) - len(b)
	if d0 < 0 {
		d0 = -d0
	}
	if k < d0 {
		k = d0
	}
	for {
		if k > bound {
			k = bound
		}
		if d, ok := Banded(a, b, k, ops); ok {
			return d
		}
		if k >= bound {
			return bound + 1
		}
		k *= 2
	}
}
