package editdist

import "fmt"

// OpKind identifies one primitive edit operation.
type OpKind uint8

// The edit operations of the paper's model. Match is a zero-cost alignment
// column; the other three each cost 1.
const (
	Match OpKind = iota
	Substitute
	Insert
	Delete
)

// String returns a short human-readable name for the operation kind.
func (k OpKind) String() string {
	switch k {
	case Match:
		return "match"
	case Substitute:
		return "sub"
	case Insert:
		return "ins"
	case Delete:
		return "del"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one column of an alignment between a and b. For Match and
// Substitute both positions are valid; Insert consumes only b[BPos];
// Delete consumes only a[APos]. Positions are 0-based.
type Op struct {
	Kind OpKind
	APos int
	BPos int
}

// Cost returns the total cost of a script (the number of non-Match ops).
func Cost(script []Op) int {
	c := 0
	for _, op := range script {
		if op.Kind != Match {
			c++
		}
	}
	return c
}

// Script returns an optimal edit script transforming a into b, using
// Hirschberg's divide-and-conquer in O(|a|·|b|) time and linear space.
func Script(a, b []byte) []Op {
	out := make([]Op, 0, len(a)+len(b))
	hirschberg(a, b, 0, 0, &out)
	return out
}

// forwardRow returns the last row of the edit-distance DP between a and b.
func forwardRow(a, b []byte, row []int) []int {
	row = row[:0]
	for j := 0; j <= len(b); j++ {
		row = append(row, j)
	}
	for i := 1; i <= len(a); i++ {
		diag := row[0]
		row[0] = i
		for j := 1; j <= len(b); j++ {
			up := row[j]
			c := diag
			if a[i-1] != b[j-1] {
				if up < c {
					c = up
				}
				if row[j-1] < c {
					c = row[j-1]
				}
				c++
			}
			diag = up
			row[j] = c
		}
	}
	return row
}

// reverse returns a reversed copy of s.
func reverse(s []byte) []byte {
	r := make([]byte, len(s))
	for i, c := range s {
		r[len(s)-1-i] = c
	}
	return r
}

func hirschberg(a, b []byte, aOff, bOff int, out *[]Op) {
	switch {
	case len(a) == 0:
		for j := range b {
			*out = append(*out, Op{Kind: Insert, APos: aOff, BPos: bOff + j})
		}
		return
	case len(b) == 0:
		for i := range a {
			*out = append(*out, Op{Kind: Delete, APos: aOff + i, BPos: bOff})
		}
		return
	case len(a) == 1:
		// Align the single character of a against b directly: match its
		// first occurrence if any (cost |b|-1), otherwise substitute at
		// position 0 and insert the rest (cost |b|).
		bestJ := 0
		for j := range b {
			if b[j] == a[0] {
				bestJ = j
				break
			}
		}
		for j := 0; j < len(b); j++ {
			switch {
			case j == bestJ && b[j] == a[0]:
				*out = append(*out, Op{Kind: Match, APos: aOff, BPos: bOff + j})
			case j == bestJ:
				*out = append(*out, Op{Kind: Substitute, APos: aOff, BPos: bOff + j})
			default:
				*out = append(*out, Op{Kind: Insert, APos: aOff, BPos: bOff + j})
			}
		}
		return
	}
	mid := len(a) / 2
	fwd := forwardRow(a[:mid], b, nil)
	rev := forwardRow(reverse(a[mid:]), reverse(b), nil)
	split, best := 0, int(^uint(0)>>1)
	for j := 0; j <= len(b); j++ {
		if c := fwd[j] + rev[len(b)-j]; c < best {
			best, split = c, j
		}
	}
	hirschberg(a[:mid], b[:split], aOff, bOff, out)
	hirschberg(a[mid:], b[split:], aOff+mid, bOff+split, out)
}

// Validate checks that script is a well-formed transformation of a into b:
// it must consume a left to right and produce b left to right. It returns
// an error describing the first violation. Cost(script) then gives the
// number of edit operations the transformation spends. It is generic so
// that the ulam package's integer-alphabet scripts validate too.
func Validate[T comparable](a, b []T, script []Op) error {
	ai, bi := 0, 0
	for k, op := range script {
		switch op.Kind {
		case Match:
			if op.APos != ai || op.BPos != bi {
				return fmt.Errorf("op %d: match at (%d,%d), expected (%d,%d)", k, op.APos, op.BPos, ai, bi)
			}
			if ai >= len(a) || bi >= len(b) || a[ai] != b[bi] {
				return fmt.Errorf("op %d: match of unequal characters", k)
			}
			ai++
			bi++
		case Substitute:
			if op.APos != ai || op.BPos != bi {
				return fmt.Errorf("op %d: sub at (%d,%d), expected (%d,%d)", k, op.APos, op.BPos, ai, bi)
			}
			if ai >= len(a) || bi >= len(b) {
				return fmt.Errorf("op %d: sub out of range", k)
			}
			ai++
			bi++
		case Insert:
			if op.BPos != bi {
				return fmt.Errorf("op %d: insert at b pos %d, expected %d", k, op.BPos, bi)
			}
			if bi >= len(b) {
				return fmt.Errorf("op %d: insert out of range", k)
			}
			bi++
		case Delete:
			if op.APos != ai {
				return fmt.Errorf("op %d: delete at a pos %d, expected %d", k, op.APos, ai)
			}
			if ai >= len(a) {
				return fmt.Errorf("op %d: delete out of range", k)
			}
			ai++
		default:
			return fmt.Errorf("op %d: unknown kind %d", k, op.Kind)
		}
	}
	if ai != len(a) || bi != len(b) {
		return fmt.Errorf("script consumed (%d,%d) of (%d,%d)", ai, bi, len(a), len(b))
	}
	return nil
}
