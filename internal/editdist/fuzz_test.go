package editdist

import (
	"bytes"
	"testing"
)

// Fuzz targets cross-check every exact kernel against the classic DP.
// Under plain `go test` they run their seed corpus; use
// `go test -fuzz=FuzzKernelsAgree ./internal/editdist` to explore.

func FuzzKernelsAgree(f *testing.F) {
	f.Add([]byte("kitten"), []byte("sitting"))
	f.Add([]byte(""), []byte("abc"))
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"), []byte("aba"))
	f.Add([]byte("xyxyxyxy"), []byte("yxyxyxyx"))
	f.Add(bytes.Repeat([]byte("ab"), 40), bytes.Repeat([]byte("ba"), 41))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		if len(a) > 300 {
			a = a[:300]
		}
		if len(b) > 300 {
			b = b[:300]
		}
		want := Distance(a, b, nil)
		if got := Myers(a, b, nil); got != want {
			t.Fatalf("Myers = %d, want %d", got, want)
		}
		if got := DiagonalTransition(a, b, nil); got != want {
			t.Fatalf("DiagonalTransition = %d, want %d", got, want)
		}
		if got := BoundedDistance(a, b, want, nil); got != want {
			t.Fatalf("BoundedDistance = %d, want %d", got, want)
		}
		if d, ok := Banded(a, b, want, nil); !ok || d != want {
			t.Fatalf("Banded = (%d,%v), want (%d,true)", d, ok, want)
		}
		script := Script(a, b)
		if err := Validate(a, b, script); err != nil {
			t.Fatalf("script invalid: %v", err)
		}
		if Cost(script) != want {
			t.Fatalf("script cost %d, want %d", Cost(script), want)
		}
	})
}

func FuzzMyersMulti(f *testing.F) {
	f.Add([]byte("hello"), []byte("world"), uint8(3))
	f.Add([]byte(""), []byte("x"), uint8(1))
	f.Fuzz(func(t *testing.T, a, b []byte, step uint8) {
		if len(a) > 200 {
			a = a[:200]
		}
		if len(b) > 200 {
			b = b[:200]
		}
		st := int(step%7) + 1
		var ends []int
		for e := 0; e <= len(b); e += st {
			ends = append(ends, e)
		}
		got := MyersMulti(a, b, ends, nil)
		for i, e := range ends {
			if want := Distance(a, b[:e], nil); got[i] != want {
				t.Fatalf("MyersMulti[%d] = %d, want %d", e, got[i], want)
			}
		}
	})
}
