package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpcdist/internal/mpc"
	"mpcdist/internal/trace"
)

func openTestStore(t *testing.T) *Store {
	t.Helper()
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestBlobRoundTripAndDedup(t *testing.T) {
	store := openTestStore(t)
	data := []byte("the round's records")
	sum, n, err := store.PutBlob(data)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Errorf("first put wrote %d bytes, want %d", n, len(data))
	}
	// Content addressing: the same bytes are already there.
	sum2, n2, err := store.PutBlob(data)
	if err != nil {
		t.Fatal(err)
	}
	if sum2 != sum || n2 != 0 {
		t.Errorf("dedup put: sum=%s written=%d, want %s/0", sum2, n2, sum)
	}
	got, err := store.Blob(sum)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("blob round trip: got %q", got)
	}
}

func TestCorruptBlobDetected(t *testing.T) {
	store := openTestStore(t)
	sum, _, err := store.PutBlob([]byte("records"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip the content under its address.
	if err := os.WriteFile(filepath.Join(store.Dir(), "blobs", sum), []byte("recorsd"), 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptBlobError
	if _, err := store.Blob(sum); !errors.As(err, &ce) {
		t.Fatalf("tampered blob read: err = %v (%T), want *CorruptBlobError", err, err)
	}
	if _, err := store.Blob(strings.Repeat("ab", 32)); !errors.As(err, &ce) || ce.Reason != "missing" {
		t.Fatalf("missing blob read: err = %v, want *CorruptBlobError{missing}", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	store := openTestStore(t)
	if _, err := store.Manifest("nojob"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing manifest: err = %v, want os.ErrNotExist", err)
	}
	m := &Manifest{Job: "job1", Algo: "ulam-mpc", Revision: "abc123",
		Steps: []ManifestStep{{Step: 0, Round: 0, Name: "ulam", Phase: "candidates", Blob: "b0"}}}
	if err := store.WriteManifest(m); err != nil {
		t.Fatal(err)
	}
	got, err := store.Manifest("job1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Algo != "ulam-mpc" || got.Revision != "abc123" || len(got.Steps) != 1 || got.Steps[0].Blob != "b0" {
		t.Errorf("manifest round trip: %+v", got)
	}
	jobs, err := store.Jobs()
	if err != nil || len(jobs) != 1 || jobs[0] != "job1" {
		t.Errorf("Jobs() = %v, %v", jobs, err)
	}
}

// TestTornManifestRejected drives every way a manifest can be untrustworthy
// through the typed-error path: each case must surface *TornManifestError,
// never a panic or a half-parsed manifest. Tampered bodies are built by
// editing a genuinely written manifest, so each case breaks exactly one
// invariant.
func TestTornManifestRejected(t *testing.T) {
	validJSON := func(t *testing.T, store *Store) []byte {
		t.Helper()
		m := &Manifest{Job: "job1", Algo: "ulam-mpc",
			Steps: []ManifestStep{{Step: 0, Name: "ulam", Phase: "candidates", Blob: "b0"}}}
		if err := store.WriteManifest(m); err != nil {
			t.Fatal(err)
		}
		buf, err := os.ReadFile(filepath.Join(store.Dir(), "manifests", "job1.json"))
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	cases := []struct {
		name string
		job  string // manifest path written; "" means job1
		body func(t *testing.T, store *Store) []byte
	}{
		{"truncated JSON", "", func(*testing.T, *Store) []byte {
			return []byte(`{"version":1,"job":"job1","algo":"ul`)
		}},
		{"wrong schema version", "", func(t *testing.T, store *Store) []byte {
			return []byte(strings.Replace(string(validJSON(t, store)), `"version": 1`, `"version": 99`, 1))
		}},
		{"checksum mismatch", "", func(t *testing.T, store *Store) []byte {
			// Edit a covered field; the recorded checksum goes stale.
			return []byte(strings.Replace(string(validJSON(t, store)), "ulam-mpc", "tampered", 1))
		}},
		{"wrong job name", "job2", func(t *testing.T, store *Store) []byte {
			// A valid job1 manifest copied over job2's path.
			return validJSON(t, store)
		}},
		{"non-contiguous steps", "", func(t *testing.T, store *Store) []byte {
			m := &Manifest{Job: "job1", Algo: "a",
				Steps: []ManifestStep{{Step: 0, Blob: "x"}, {Step: 2, Blob: "y"}}}
			if err := store.WriteManifest(m); err != nil {
				t.Fatal(err)
			}
			buf, err := os.ReadFile(filepath.Join(store.Dir(), "manifests", "job1.json"))
			if err != nil {
				t.Fatal(err)
			}
			return buf
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := openTestStore(t)
			job := tc.job
			if job == "" {
				job = "job1"
			}
			body := tc.body(t, store)
			if err := os.WriteFile(filepath.Join(store.Dir(), "manifests", job+".json"), body, 0o644); err != nil {
				t.Fatal(err)
			}
			var te *TornManifestError
			if _, err := store.Manifest(job); !errors.As(err, &te) {
				t.Fatalf("err = %v (%T), want *TornManifestError", err, err)
			}
		})
	}
}

func TestVerifyAndPrune(t *testing.T) {
	store := openTestStore(t)
	saver, err := NewSaver(store, "job1", "ulam-mpc", SaverOptions{Revision: "rev-old"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := saver.Save(testSnapshot(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := saver.Flush(); err != nil {
		t.Fatal(err)
	}

	// Clean store, other revision: warnings only.
	warnings, err := store.Verify("rev-new")
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "rev-old") {
		t.Errorf("warnings = %v, want one cross-revision warning", warnings)
	}

	// An orphan blob (no manifest references it) is prunable.
	if _, _, err := store.PutBlob([]byte("orphan")); err != nil {
		t.Fatal(err)
	}
	before := store.Stats()
	removed, freed, err := store.Prune()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || freed != int64(len("orphan")) {
		t.Errorf("prune removed %d blobs / %d bytes, want 1 / 6", removed, freed)
	}
	if after := store.Stats(); after.Blobs != before.Blobs-1 {
		t.Errorf("stats after prune: %+v (before %+v)", after, before)
	}

	// Corrupting a referenced blob turns verify into a hard error.
	m, err := store.Manifest("job1")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(store.Dir(), "blobs", m.Steps[1].Blob), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptBlobError
	if _, err := store.Verify(""); !errors.As(err, &ce) {
		t.Fatalf("verify of corrupted store: err = %v, want *CorruptBlobError", err)
	}
}

func TestSaverFlushCadence(t *testing.T) {
	store := openTestStore(t)
	var flushes []int
	saver, err := NewSaver(store, "job1", "ulam-mpc", SaverOptions{
		Every:   3,
		OnFlush: func(steps int, bytes int64) { flushes = append(flushes, steps) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := saver.Save(testSnapshot(i)); err != nil {
			t.Fatal(err)
		}
	}
	// 7 steps at cadence 3: two durable flushes of 3, one buffered.
	m, err := store.Manifest("job1")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Steps) != 6 {
		t.Errorf("durable steps before Flush = %d, want 6", len(m.Steps))
	}
	if err := saver.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := saver.Flush(); err != nil { // idempotent
		t.Fatal(err)
	}
	m, err = store.Manifest("job1")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Steps) != 7 {
		t.Errorf("durable steps after Flush = %d, want 7", len(m.Steps))
	}
	for i, st := range m.Steps {
		if st.Step != i {
			t.Errorf("step %d recorded as %d", i, st.Step)
		}
	}
	if len(flushes) != 3 || flushes[0] != 3 || flushes[1] != 3 || flushes[2] != 1 {
		t.Errorf("OnFlush steps = %v, want [3 3 1]", flushes)
	}
	saves, resumed, bytes := saver.Counters()
	if saves != 7 || resumed != 0 || bytes <= 0 {
		t.Errorf("counters = %d saves, %d resumed, %d bytes", saves, resumed, bytes)
	}
	if st := saver.Status(); st.Steps != 7 || st.LastRound != 6 || st.Job != "job1" {
		t.Errorf("status = %+v", st)
	}
}

// TestSaverResumeRoundTrip persists a step sequence, reopens the job with
// Resume, and checks the snapshots fast-forward bit-identically — then that
// a diverged live round is refused.
func TestSaverResumeRoundTrip(t *testing.T) {
	store := openTestStore(t)
	saver, err := NewSaver(store, "job1", "ulam-mpc", SaverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*mpc.RoundSnapshot, 4)
	for i := range want {
		want[i] = testSnapshot(i)
		if err := saver.Save(want[i]); err != nil {
			t.Fatal(err)
		}
	}

	re, err := NewSaver(store, "job1", "ulam-mpc", SaverOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		snap, err := re.Resume(w.Round, w.Name, w.Phase)
		if err != nil {
			t.Fatalf("resume step %d: %v", i, err)
		}
		if snap == nil {
			t.Fatalf("resume step %d: prefix exhausted early", i)
		}
		if snap.Round != w.Round || snap.Stats.CommWords != w.Stats.CommWords {
			t.Errorf("step %d: resumed %+v, want %+v", i, snap, w)
		}
		got := snap.Next[i][0].(mpc.Ints)
		if len(got) != 2 || got[0] != i || got[1] != i+1 {
			t.Errorf("step %d records: %v", i, got)
		}
	}
	// Prefix exhausted: live execution takes over.
	if snap, err := re.Resume(99, "x", "y"); snap != nil || err != nil {
		t.Errorf("past prefix: snap=%v err=%v, want nil/nil", snap, err)
	}

	// A diverged live round must be refused, not fast-forwarded.
	re2, err := NewSaver(store, "job1", "ulam-mpc", SaverOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	var de *DivergenceError
	if _, err := re2.Resume(0, "other-pipeline", "candidates"); !errors.As(err, &de) {
		t.Fatalf("diverged resume: err = %v, want *DivergenceError", err)
	}

	// An algo mismatch is refused at construction.
	if _, err := NewSaver(store, "job1", "edit-mpc", SaverOptions{Resume: true}); !errors.As(err, &de) {
		t.Fatalf("algo mismatch: err = %v, want *DivergenceError", err)
	}

	// Resuming a job with no durable state runs fresh.
	fresh, err := NewSaver(store, "jobX", "ulam-mpc", SaverOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if snap, err := fresh.Resume(0, "ulam", "candidates"); snap != nil || err != nil {
		t.Errorf("fresh resume: snap=%v err=%v, want nil/nil", snap, err)
	}
}

// TestReplayerRoundTrip ships a saver's resume state the way a coordinator
// ships Job.Resume, and checks the worker-side replayer fast-forwards the
// same steps and refuses garbage.
func TestReplayerRoundTrip(t *testing.T) {
	store := openTestStore(t)
	saver, err := NewSaver(store, "job1", "ulam-mpc", SaverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if state, err := saver.ResumeState(); state != nil || err != nil {
		t.Fatalf("empty saver resume state: %v, %v", state, err)
	}
	for i := 0; i < 3; i++ {
		if err := saver.Save(testSnapshot(i)); err != nil {
			t.Fatal(err)
		}
	}

	re, err := NewSaver(store, "job1", "ulam-mpc", SaverOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	state, err := re.ResumeState()
	if err != nil || state == nil {
		t.Fatalf("resume state: %v, %v", state, err)
	}
	rp, err := NewReplayer(state)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		snap, err := rp.Resume(i, "ulam", trace.Phase("candidates"))
		if err != nil || snap == nil {
			t.Fatalf("replayer step %d: %v, %v", i, snap, err)
		}
		if err := rp.Save(snap); err != nil { // workers persist nothing
			t.Fatal(err)
		}
	}
	if snap, err := rp.Resume(3, "ulam", "candidates"); snap != nil || err != nil {
		t.Errorf("replayer past prefix: %v, %v", snap, err)
	}

	if _, err := NewReplayer([]byte("not a codec payload")); err == nil {
		t.Error("garbage resume state accepted")
	}
}

// TestSaverSkipsTornStateOnResumeError pins the typed-error contract the
// dist/server layers build their self-healing on: resuming over a torn
// manifest or corrupt blob fails with the typed error (so the caller can
// choose to restart fresh) instead of panicking or resuming garbage.
func TestSaverRefusesTornState(t *testing.T) {
	store := openTestStore(t)
	saver, err := NewSaver(store, "job1", "ulam-mpc", SaverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := saver.Save(testSnapshot(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Corrupt the first referenced blob.
	m, err := store.Manifest("job1")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(store.Dir(), "blobs", m.Steps[0].Blob), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptBlobError
	if _, err := NewSaver(store, "job1", "ulam-mpc", SaverOptions{Resume: true}); !errors.As(err, &ce) {
		t.Fatalf("resume over corrupt blob: err = %v, want *CorruptBlobError", err)
	}

	// Tear the manifest itself.
	path := filepath.Join(store.Dir(), "manifests", "job1.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"job":"job1"`), 0o644); err != nil {
		t.Fatal(err)
	}
	var te *TornManifestError
	if _, err := NewSaver(store, "job1", "ulam-mpc", SaverOptions{Resume: true}); !errors.As(err, &te) {
		t.Fatalf("resume over torn manifest: err = %v, want *TornManifestError", err)
	}

	// Restart (Resume off) ignores the torn state entirely.
	fresh, err := NewSaver(store, "job1", "ulam-mpc", SaverOptions{})
	if err != nil {
		t.Fatalf("fresh saver over torn state: %v", err)
	}
	if err := fresh.Save(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	if m, err := store.Manifest("job1"); err != nil || len(m.Steps) != 1 {
		t.Fatalf("fresh manifest after torn state: %+v, %v", m, err)
	}
}

// testSnapshot builds a small synthetic completed round: step i sends the
// payload [i, i+1] to machine i.
func testSnapshot(i int) *mpc.RoundSnapshot {
	return &mpc.RoundSnapshot{
		Round: i,
		Name:  "ulam",
		Phase: trace.Phase("candidates"),
		Stats: mpc.RoundStats{CommWords: int64(10 * (i + 1))},
		Next:  map[int][]mpc.Payload{i: {mpc.Ints{i, i + 1}}},
	}
}
