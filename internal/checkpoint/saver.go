package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"mpcdist/internal/mpc"
	"mpcdist/internal/trace"
	"mpcdist/internal/transport"
)

// SaverOptions configure a job's Saver.
type SaverOptions struct {
	// Every is the flush cadence in steps: completed rounds are buffered
	// in memory and persisted (blobs plus an atomic manifest rewrite)
	// every Every-th step, so the durable store always holds a contiguous
	// step prefix. <= 0 means 1 (flush every round). Call Flush at job end
	// to persist the buffered tail regardless of cadence.
	Every int
	// Resume fast-forwards from the job's existing manifest (if any); when
	// false an existing manifest for the job is restarted from scratch.
	Resume bool
	// Revision is recorded in the manifest (buildinfo.Revision()), so
	// `ckpt verify` can flag cross-version resumes.
	Revision string
	// OnFlush, when non-nil, observes each durable flush (steps persisted,
	// blob bytes written) — the server's metrics hook. Called with the
	// saver's lock held; keep it cheap.
	OnFlush func(steps int, bytes int64)
}

// Saver is the coordinator-side mpc.Checkpointer: it fast-forwards the
// durable step prefix loaded at construction, then buffers and persists
// live rounds. One Saver serves one job (keyed by the job-spec digest);
// Cluster.Run drives it from the driving goroutine, but it locks anyway so
// status snapshots can race safely.
type Saver struct {
	mu      sync.Mutex
	store   *Store
	codec   *transport.Codec
	opts    SaverOptions
	man     *Manifest  // durable manifest (persisted steps only, until Flush)
	prefix  []wireStep // decoded durable steps available for fast-forward
	next    int        // next step index: resume cursor, then save counter
	pending []wireStep // completed live steps not yet flushed

	resumed int   // steps fast-forwarded this run
	saves   int   // steps persisted by this process
	bytes   int64 // blob bytes written by this process
}

// NewSaver opens (or restarts) the job's checkpoint state in the store.
// With Resume set, an existing manifest's steps are loaded and verified
// (blob hashes checked) for fast-forwarding; a torn manifest or corrupt
// blob surfaces as its typed error rather than silently recomputing. With
// Resume unset, any previous state for the job is superseded on the first
// flush.
func NewSaver(store *Store, job, algo string, opts SaverOptions) (*Saver, error) {
	if opts.Every <= 0 {
		opts.Every = 1
	}
	s := &Saver{
		store: store,
		codec: transport.NewCodec(),
		opts:  opts,
		man:   &Manifest{Job: job, Algo: algo, Revision: opts.Revision},
	}
	if !opts.Resume {
		return s, nil
	}
	man, err := store.Manifest(job)
	if errors.Is(err, os.ErrNotExist) {
		return s, nil // nothing durable yet: a resume of a never-started job runs fresh
	}
	if err != nil {
		return nil, err
	}
	if man.Algo != algo {
		return nil, &DivergenceError{Step: 0,
			Want: fmt.Sprintf("algo %q", man.Algo), Got: fmt.Sprintf("algo %q", algo)}
	}
	s.prefix = make([]wireStep, 0, len(man.Steps))
	for _, st := range man.Steps {
		blob, err := store.Blob(st.Blob)
		if err != nil {
			return nil, err
		}
		v, err := s.codec.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: step %d blob: %w", st.Step, err)
		}
		ws, ok := v.(wireStep)
		if !ok {
			return nil, fmt.Errorf("checkpoint: step %d blob decoded to %T", st.Step, v)
		}
		if ws.Step != st.Step {
			return nil, &CorruptBlobError{Sum: st.Blob,
				Reason: fmt.Sprintf("holds step %d, manifest says %d", ws.Step, st.Step)}
		}
		s.prefix = append(s.prefix, ws)
	}
	s.man = man
	return s, nil
}

// Resume implements mpc.Checkpointer: fast-forward while the durable
// prefix lasts, verifying each live round against the stored step.
func (s *Saver) Resume(round int, name string, phase trace.Phase) (*mpc.RoundSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= len(s.prefix) {
		return nil, nil
	}
	ws := s.prefix[s.next]
	if err := matchStep(ws, round, name, phase); err != nil {
		return nil, err
	}
	snap, err := snapshotOf(s.codec, ws)
	if err != nil {
		return nil, err
	}
	s.next++
	s.resumed++
	return snap, nil
}

// Save implements mpc.Checkpointer: buffer the completed round and flush
// at the configured cadence.
func (s *Saver) Save(snap *mpc.RoundSnapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	records, err := encodeRecords(s.codec, snap.Next)
	if err != nil {
		return err
	}
	snap.Step = s.next
	s.pending = append(s.pending, wireStep{
		Step:    snap.Step,
		Round:   snap.Round,
		Name:    snap.Name,
		Phase:   string(snap.Phase),
		Stats:   snap.Stats,
		Records: records,
	})
	s.next++
	if len(s.pending) >= s.opts.Every {
		return s.flushLocked()
	}
	return nil
}

// Flush persists any buffered steps (job-end tail shorter than the
// cadence). Idempotent.
func (s *Saver) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return nil
	}
	return s.flushLocked()
}

func (s *Saver) flushLocked() error {
	steps, bytes := 0, int64(0)
	for _, ws := range s.pending {
		blob, err := s.codec.Encode(nil, ws)
		if err != nil {
			return fmt.Errorf("checkpoint: encoding step %d: %w", ws.Step, err)
		}
		sum, n, err := s.store.PutBlob(blob)
		if err != nil {
			return err
		}
		s.man.Steps = append(s.man.Steps, ManifestStep{
			Step: ws.Step, Round: ws.Round, Name: ws.Name, Phase: ws.Phase, Blob: sum,
		})
		steps++
		bytes += n
	}
	if err := s.store.WriteManifest(s.man); err != nil {
		// The manifest write failed after some blobs landed; drop the
		// appended references so a retry re-appends cleanly.
		s.man.Steps = s.man.Steps[:len(s.man.Steps)-steps]
		return err
	}
	s.pending = s.pending[:0]
	s.saves += steps
	s.bytes += bytes
	if s.opts.OnFlush != nil {
		s.opts.OnFlush(steps, bytes)
	}
	return nil
}

// ResumeState encodes the durable step prefix loaded at construction into
// the opaque bytes a coordinator ships inside Job.Resume, so workers
// fast-forward the identical rounds. nil when there is nothing to resume.
func (s *Saver) ResumeState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.prefix) == 0 {
		return nil, nil
	}
	return s.codec.Encode(nil, wireState{Steps: s.prefix})
}

// Status is the saver's live summary, served by the -status endpoints and
// rendered by cmd/mpctop.
type Status struct {
	Job     string `json:"job"`          // job-spec digest (hex)
	Steps   int    `json:"steps"`        // durable steps in the manifest
	Resumed int    `json:"resumedSteps"` // steps fast-forwarded this run
	Saves   int    `json:"savedSteps"`   // steps persisted by this process
	// LastRound and LastName locate the newest durable step.
	LastRound int    `json:"lastRound"`
	LastName  string `json:"lastName"`
	// BytesWritten counts this process's blob writes; StoreBytes/StoreBlobs
	// size the whole store (all jobs).
	BytesWritten int64 `json:"bytesWritten"`
	StoreBytes   int64 `json:"storeBytes"`
	StoreBlobs   int   `json:"storeBlobs"`
}

// Status snapshots the saver and its store.
func (s *Saver) Status() Status {
	s.mu.Lock()
	st := Status{
		Job:          s.man.Job,
		Steps:        len(s.man.Steps),
		Resumed:      s.resumed,
		Saves:        s.saves,
		BytesWritten: s.bytes,
	}
	if n := len(s.man.Steps); n > 0 {
		st.LastRound = s.man.Steps[n-1].Round
		st.LastName = s.man.Steps[n-1].Name
	}
	s.mu.Unlock()
	ss := s.store.Stats()
	st.StoreBytes, st.StoreBlobs = ss.Bytes, ss.Blobs
	return st
}

// Counters returns the saver's save/resume/bytes counters (metrics hook).
func (s *Saver) Counters() (saves, resumed int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saves, s.resumed, s.bytes
}

// Replayer is the worker-side mpc.Checkpointer: it fast-forwards the
// resume state the coordinator shipped inside the job spec and persists
// nothing (the coordinator owns the store).
type Replayer struct {
	mu    sync.Mutex
	codec *transport.Codec
	steps []wireStep
	next  int
}

// NewReplayer decodes the resume bytes from Job.Resume.
func NewReplayer(resume []byte) (*Replayer, error) {
	codec := transport.NewCodec()
	v, err := codec.Decode(resume)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decoding resume state: %w", err)
	}
	st, ok := v.(wireState)
	if !ok {
		return nil, fmt.Errorf("checkpoint: resume state decoded to %T", v)
	}
	for i, ws := range st.Steps {
		if ws.Step != i {
			return nil, fmt.Errorf("checkpoint: resume state step %d at index %d", ws.Step, i)
		}
	}
	return &Replayer{codec: codec, steps: st.Steps}, nil
}

// Resume implements mpc.Checkpointer.
func (r *Replayer) Resume(round int, name string, phase trace.Phase) (*mpc.RoundSnapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next >= len(r.steps) {
		return nil, nil
	}
	ws := r.steps[r.next]
	if err := matchStep(ws, round, name, phase); err != nil {
		return nil, err
	}
	snap, err := snapshotOf(r.codec, ws)
	if err != nil {
		return nil, err
	}
	r.next++
	return snap, nil
}

// Save implements mpc.Checkpointer as a no-op: workers replay only.
func (r *Replayer) Save(*mpc.RoundSnapshot) error { return nil }
