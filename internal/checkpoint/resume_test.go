// Checkpoint chaos suite: interrupt a run mid-job (the checkpointer
// "crashes" after persisting a prefix), resume it from the store, and
// require the resumed run to be bit-identical to an uninterrupted one —
// for every MPC pipeline, with and without injected faults. This is the
// subsystem's core guarantee: round boundaries are complete recovery
// points, so fast-forwarding a durable prefix can never perturb the
// distance or any deterministic counter.
package checkpoint_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mpcdist/internal/baseline"
	"mpcdist/internal/checkpoint"
	"mpcdist/internal/core"
	"mpcdist/internal/fault"
	"mpcdist/internal/mpc"
	"mpcdist/internal/trace"
)

// resumeCase is one pipeline over deterministic inputs sized so every
// phase runs but the suite stays test-budget fast.
type resumeCase struct {
	name string
	run  func(p core.Params) (core.Result, error)
}

func resumeCases() []resumeCase {
	rng := rand.New(rand.NewSource(171))

	n := 300
	p := rng.Perm(n)
	q := append([]int(nil), p...)
	for k := 0; k < 12; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		q[i], q[j] = q[j], q[i]
	}

	a := make([]byte, 240)
	for i := range a {
		a[i] = byte('a' + rng.Intn(4))
	}
	b := append([]byte(nil), a...)
	for k := 0; k < 10; k++ {
		b[rng.Intn(len(b))] = byte('a' + rng.Intn(4))
	}

	return []resumeCase{
		{"ulam-mpc", func(pr core.Params) (core.Result, error) {
			pr.X = 0.3
			return core.UlamMPC(p, q, pr)
		}},
		{"edit-mpc", func(pr core.Params) (core.Result, error) {
			pr.X = 0.25
			return core.EditMPC(a, b, pr)
		}},
		{"edit-hss", func(pr core.Params) (core.Result, error) {
			pr.X = 0.3
			return baseline.HSSEditMPC(a, b, pr)
		}},
	}
}

func testFaults() *fault.Plan {
	return &fault.Plan{Seed: 99, Crash: 0.02, CrashAfter: 0.01, Drop: 0.02, Dup: 0.02}
}

// normalize zeroes the wall-clock fields so two executions compare on
// model quantities alone: a resumed run restores snapshot wall times
// verbatim while a fresh run measures its own, and both are advisory.
// Injected-fault counters are NOT zeroed — a resumed faulted run must
// reproduce the live suffix's schedule exactly (fast-forwarded rounds
// re-inject nothing, and their counters ride in the snapshot stats).
func normalize(res core.Result) core.Result {
	for gi := -1; gi < len(res.GuessReports); gi++ {
		rep := &res.Report
		if gi >= 0 {
			rep = &res.GuessReports[gi]
		}
		for i := range rep.Rounds {
			rep.Rounds[i].Elapsed = 0
			rep.Rounds[i].QueueWait = 0
			rep.Rounds[i].Skew = trace.SkewStats{}
		}
		rep.Elapsed = 0
		rep.QueueWait = 0
		rep.MaxStraggler = 0
		rep.Workers = nil
	}
	return res
}

// errInterrupt simulates the coordinator dying between rounds: the
// checkpointer refuses the next Save, aborting the cluster the way a
// SIGKILL would, but with the durable prefix already on disk.
var errInterrupt = errors.New("checkpoint_test: simulated crash")

// crashingSaver passes Save through to the real Saver for the first
// `budget` steps, then fails every call.
type crashingSaver struct {
	inner  *checkpoint.Saver
	budget int
}

func (c *crashingSaver) Resume(round int, name string, phase trace.Phase) (*mpc.RoundSnapshot, error) {
	return c.inner.Resume(round, name, phase)
}

func (c *crashingSaver) Save(snap *mpc.RoundSnapshot) error {
	if c.budget <= 0 {
		return errInterrupt
	}
	c.budget--
	return c.inner.Save(snap)
}

// TestInterruptResumeParity is the tentpole invariant: for every MPC
// pipeline, faulted and fault-free, a run killed after one completed round
// and resumed from the store produces the bit-identical distance and
// deterministic counters of an uninterrupted run — with at least one round
// genuinely fast-forwarded, not recomputed.
func TestInterruptResumeParity(t *testing.T) {
	for _, tc := range resumeCases() {
		for _, faulted := range []bool{false, true} {
			name := tc.name
			if faulted {
				name += "/faults"
			}
			t.Run(name, func(t *testing.T) {
				params := core.Params{Seed: 7}
				if faulted {
					params.Faults = testFaults()
				}

				// Baseline: the uninterrupted run.
				want, err := tc.run(params)
				if err != nil {
					t.Fatalf("baseline run: %v", err)
				}

				store, err := checkpoint.Open(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				// First attempt: persist one round, then "crash" (ulam-mpc has
				// only two rounds total, so the budget must stay below that).
				saver, err := checkpoint.NewSaver(store, "job", tc.name, checkpoint.SaverOptions{})
				if err != nil {
					t.Fatal(err)
				}
				p1 := params
				p1.Checkpointer = &crashingSaver{inner: saver, budget: 1}
				if _, err := tc.run(p1); !errors.Is(err, errInterrupt) {
					t.Fatalf("interrupted run: err = %v, want errInterrupt", err)
				}
				saves, _, _ := saver.Counters()
				if saves != 1 {
					t.Fatalf("interrupted run persisted %d steps, want 1", saves)
				}

				// Second attempt: resume from the store and finish.
				resumer, err := checkpoint.NewSaver(store, "job", tc.name, checkpoint.SaverOptions{Resume: true})
				if err != nil {
					t.Fatal(err)
				}
				p2 := params
				p2.Checkpointer = resumer
				got, err := tc.run(p2)
				if err != nil {
					t.Fatalf("resumed run: %v", err)
				}
				if err := resumer.Flush(); err != nil {
					t.Fatal(err)
				}
				_, resumed, _ := resumer.Counters()
				if resumed != 1 {
					t.Errorf("resumed run fast-forwarded %d steps, want 1", resumed)
				}

				wn, gn := normalize(want), normalize(got)
				if !reflect.DeepEqual(wn, gn) {
					t.Errorf("resumed result differs from uninterrupted:\nwant: %+v\ngot:  %+v", wn, gn)
				}

				// Third attempt over the now-complete checkpoint: the whole
				// job fast-forwards, still bit-identical.
				full, err := checkpoint.NewSaver(store, "job", tc.name, checkpoint.SaverOptions{Resume: true})
				if err != nil {
					t.Fatal(err)
				}
				p3 := params
				p3.Checkpointer = full
				got3, err := tc.run(p3)
				if err != nil {
					t.Fatalf("fully resumed run: %v", err)
				}
				saves3, resumed3, _ := full.Counters()
				if saves3 != 0 || resumed3 == 0 {
					t.Errorf("full resume: %d saves, %d resumed; want 0 saves, all resumed", saves3, resumed3)
				}
				// The fully fast-forwarded run restores snapshot wall times
				// verbatim, so even the un-normalized reports match the
				// resumed run's durable steps — but compare normalized for
				// symmetry with the other checks.
				if g3 := normalize(got3); !reflect.DeepEqual(wn, g3) {
					t.Errorf("fully resumed result differs:\nwant: %+v\ngot:  %+v", wn, g3)
				}

				// The store itself must verify clean after all this.
				if warnings, err := store.Verify(""); err != nil || len(warnings) != 0 {
					t.Errorf("store verify after resume: %v, %v", warnings, err)
				}
			})
		}
	}
}

// TestResumeDivergentPipelineRefused pins the runtime safety rail: a
// checkpoint whose stored round structure does not match the live
// execution (here: an ulam-mpc prefix replayed under an edit pipeline
// that was mislabeled with the same algo string, so the construction-time
// algo check cannot catch it) must fail with a DivergenceError at the
// first fast-forward, not feed foreign records into the run. Spec-level
// divergence (different seed or input, same structure) is prevented one
// layer up, by keying manifests on the job-spec digest.
func TestResumeDivergentPipelineRefused(t *testing.T) {
	cases := resumeCases()
	ulam, edit := cases[0], cases[2] // edit-hss: cheapest edit pipeline

	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	saver, err := checkpoint.NewSaver(store, "job", "mislabeled", checkpoint.SaverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Seed: 7, Checkpointer: saver}
	if _, err := ulam.run(params); err != nil {
		t.Fatal(err)
	}
	if err := saver.Flush(); err != nil {
		t.Fatal(err)
	}

	resumer, err := checkpoint.NewSaver(store, "job", "mislabeled", checkpoint.SaverOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	p2 := core.Params{Seed: 7, Checkpointer: resumer}
	_, err = edit.run(p2)
	var de *checkpoint.DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("divergent resume: err = %v, want *DivergenceError", err)
	}
}
