package checkpoint

import (
	"encoding/binary"
	"fmt"
	"sort"

	"mpcdist/internal/mpc"
	"mpcdist/internal/trace"
	"mpcdist/internal/transport"
)

// Snapshots go to disk (and into Job.Resume) through the same
// self-describing payload codec the transport uses for round traffic, so
// any payload type that can cross the wire can be checkpointed with no
// extra registration, and the encoding is deterministic: equal snapshots
// produce equal bytes, which is what makes the blobs content-addressable.

// wireStep is one completed round in blob / resume-state form.
type wireStep struct {
	Step    int
	Round   int
	Name    string
	Phase   string
	Stats   mpc.RoundStats
	Records []byte // framed post-shuffle record set (encodeRecords)
}

// wireState is the resume payload a coordinator ships to workers inside
// the job spec: the durable step prefix, so every party fast-forwards the
// identical rounds.
type wireState struct {
	Steps []wireStep
}

func init() {
	transport.Register("ckpt.Step", wireStep{})
	transport.Register("ckpt.State", wireState{})
}

// encodeRecords frames a round's merged post-shuffle record set: a uvarint
// machine count, then per machine (in sorted id order, so the encoding is
// canonical) a varint id, a uvarint payload count, and the codec encoding
// of each payload in delivery order.
func encodeRecords(c *transport.Codec, next map[int][]mpc.Payload) ([]byte, error) {
	ids := make([]int, 0, len(next))
	for id := range next {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	buf := binary.AppendUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendVarint(buf, int64(id))
		msgs := next[id]
		buf = binary.AppendUvarint(buf, uint64(len(msgs)))
		for _, p := range msgs {
			var err error
			if buf, err = c.Encode(buf, p); err != nil {
				return nil, fmt.Errorf("checkpoint: encoding records: %w", err)
			}
		}
	}
	return buf, nil
}

// decodeRecords inverts encodeRecords, asserting every payload back to
// mpc.Payload and rejecting trailing bytes.
func decodeRecords(c *transport.Codec, data []byte) (map[int][]mpc.Payload, error) {
	nm, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("checkpoint: truncated record set")
	}
	data = data[n:]
	out := make(map[int][]mpc.Payload, nm)
	for i := uint64(0); i < nm; i++ {
		id, n := binary.Varint(data)
		if n <= 0 {
			return nil, fmt.Errorf("checkpoint: truncated record set")
		}
		data = data[n:]
		cnt, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("checkpoint: truncated record set")
		}
		data = data[n:]
		list := make([]mpc.Payload, 0, cnt)
		for j := uint64(0); j < cnt; j++ {
			v, rest, err := c.DecodePrefix(data)
			if err != nil {
				return nil, fmt.Errorf("checkpoint: decoding records: %w", err)
			}
			p, ok := v.(mpc.Payload)
			if !ok {
				return nil, fmt.Errorf("checkpoint: record payload %T does not implement mpc.Payload", v)
			}
			list = append(list, p)
			data = rest
		}
		out[int(id)] = list
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after record set", len(data))
	}
	return out, nil
}

// snapshotOf converts a decoded step back into the cluster's resume shape.
func snapshotOf(c *transport.Codec, ws wireStep) (*mpc.RoundSnapshot, error) {
	records, err := decodeRecords(c, ws.Records)
	if err != nil {
		return nil, err
	}
	return &mpc.RoundSnapshot{
		Step:  ws.Step,
		Round: ws.Round,
		Name:  ws.Name,
		Phase: trace.Phase(ws.Phase),
		Stats: ws.Stats,
		Next:  records,
	}, nil
}

// matchStep verifies that the live round the cluster is about to run is
// the one the stored step recorded; anything else means the job spec (or
// binary) diverged from the run that wrote the checkpoint.
func matchStep(ws wireStep, round int, name string, phase trace.Phase) error {
	if ws.Round != round || ws.Name != name || ws.Phase != string(phase) {
		return &DivergenceError{
			Step: ws.Step,
			Want: fmt.Sprintf("round %d %q phase=%s", ws.Round, ws.Name, ws.Phase),
			Got:  fmt.Sprintf("round %d %q phase=%s", round, name, phase),
		}
	}
	return nil
}

// DivergenceError reports a resume whose live execution does not match the
// stored step sequence: the checkpoint was written by a different job spec
// or a diverged binary, and fast-forwarding would corrupt the run.
type DivergenceError struct {
	Step int
	Want string // what the checkpoint recorded
	Got  string // what the live run is about to execute
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("checkpoint: step %d diverged: stored %s, live %s", e.Step, e.Want, e.Got)
}
