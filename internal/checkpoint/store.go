// Package checkpoint is the durable round-snapshot store behind
// mpc.Checkpointer: after each completed MPC round the merged post-shuffle
// record set and the round's measured stats are serialized (with the
// transport payload codec) into a content-addressed blob store, and a
// small per-job manifest records the step sequence. A killed coordinator
// — or a restarted mpcserve — reopens the store, fast-forwards the
// completed prefix, and continues the job bit-identically (the model keeps
// all inter-round state in the shuffled records, and every random stream
// is a pure function of (seed, round, machine), so nothing else needs
// saving).
//
// Layout under the store directory:
//
//	blobs/<sha256 hex>      one blob per step (content-addressed, deduped)
//	manifests/<job>.json    one manifest per job-spec digest
//
// Both blob and manifest writes go through internal/atomicio (temp file +
// fsync + rename), so a crash at any point leaves either the previous
// manifest or the new one — never a torn file. Torn or tampered state is
// still detected defensively: manifests carry a checksum and blobs are
// re-hashed on read, surfacing *TornManifestError / *CorruptBlobError
// instead of garbage.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mpcdist/internal/atomicio"
)

// ManifestVersion is the manifest schema version this package writes; a
// manifest with any other version is rejected as torn (future versions
// must migrate explicitly, not half-parse).
const ManifestVersion = 1

// Manifest is the per-job index of a checkpoint store: the durable step
// sequence in order, plus enough provenance to refuse unsafe resumes.
type Manifest struct {
	Version int    `json:"version"`
	Job     string `json:"job"`  // job-spec digest (hex), the manifest's key
	Algo    string `json:"algo"` // algorithm name, for ckpt list and sanity checks
	// Revision is the VCS revision of the binary that wrote the manifest;
	// `ckpt verify` warns when it differs from the verifying binary's, since
	// a cross-version resume is only sound if the round structure is
	// unchanged.
	Revision string         `json:"revision"`
	Steps    []ManifestStep `json:"steps"`
	Checksum string         `json:"checksum"` // sha256 of the manifest with this field empty
}

// ManifestStep locates one completed round's blob.
type ManifestStep struct {
	Step  int    `json:"step"`
	Round int    `json:"round"`
	Name  string `json:"name"`
	Phase string `json:"phase"`
	Blob  string `json:"blob"` // sha256 hex of the step blob
}

// TornManifestError reports a manifest that cannot be trusted: unreadable
// JSON, a checksum mismatch, or an unknown schema version. The store never
// writes one (writes are atomic); seeing it means a crashed foreign
// writer, manual tampering, or disk corruption.
type TornManifestError struct {
	Path   string
	Reason string
}

func (e *TornManifestError) Error() string {
	return fmt.Sprintf("checkpoint: torn manifest %s: %s", e.Path, e.Reason)
}

// CorruptBlobError reports a blob whose content no longer matches its
// address.
type CorruptBlobError struct {
	Sum    string
	Reason string
}

func (e *CorruptBlobError) Error() string {
	return fmt.Sprintf("checkpoint: corrupt blob %s: %s", e.Sum, e.Reason)
}

// Store is a checkpoint directory. Safe for concurrent use by multiple
// savers (blob writes are content-addressed and atomic; manifests are
// keyed by job digest, and two writers of the same deterministic job write
// identical manifests).
type Store struct {
	dir string
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{blobDir, manifestDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("checkpoint: open store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

const (
	blobDir     = "blobs"
	manifestDir = "manifests"
)

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) blobPath(sum string) string {
	return filepath.Join(s.dir, blobDir, sum)
}

func (s *Store) manifestPath(job string) string {
	return filepath.Join(s.dir, manifestDir, job+".json")
}

// PutBlob stores data under its own sha256 address, returning the address
// and the bytes actually written (0 when the blob already existed — equal
// content dedupes for free).
func (s *Store) PutBlob(data []byte) (string, int64, error) {
	h := sha256.Sum256(data)
	sum := hex.EncodeToString(h[:])
	path := s.blobPath(sum)
	if _, err := os.Stat(path); err == nil {
		return sum, 0, nil
	}
	if err := atomicio.WriteFile(path, data, 0o644); err != nil {
		return "", 0, fmt.Errorf("checkpoint: put blob: %w", err)
	}
	return sum, int64(len(data)), nil
}

// Blob returns the content stored at sum, re-hashing it so corruption
// surfaces as a typed error instead of a garbage decode.
func (s *Store) Blob(sum string) ([]byte, error) {
	data, err := os.ReadFile(s.blobPath(sum))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &CorruptBlobError{Sum: sum, Reason: "missing"}
		}
		return nil, fmt.Errorf("checkpoint: read blob %s: %w", sum, err)
	}
	h := sha256.Sum256(data)
	if got := hex.EncodeToString(h[:]); got != sum {
		return nil, &CorruptBlobError{Sum: sum, Reason: "content hashes to " + got}
	}
	return data, nil
}

// manifestChecksum is the sha256 of the manifest's canonical JSON with the
// Checksum field empty.
func manifestChecksum(m *Manifest) (string, error) {
	mm := *m
	mm.Checksum = ""
	buf, err := json.Marshal(mm)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256(buf)
	return hex.EncodeToString(h[:]), nil
}

// WriteManifest atomically replaces the job's manifest, stamping the
// schema version and checksum.
func (s *Store) WriteManifest(m *Manifest) error {
	if m.Job == "" {
		return fmt.Errorf("checkpoint: manifest without a job digest")
	}
	m.Version = ManifestVersion
	sum, err := manifestChecksum(m)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding manifest: %w", err)
	}
	m.Checksum = sum
	buf, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("checkpoint: encoding manifest: %w", err)
	}
	if err := atomicio.WriteFile(s.manifestPath(m.Job), append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("checkpoint: write manifest: %w", err)
	}
	return nil
}

// Manifest loads and validates the job's manifest. A missing manifest
// returns an error wrapping os.ErrNotExist (resume treats it as "start
// fresh"); anything unparseable or failing its checksum returns
// *TornManifestError.
func (s *Store) Manifest(job string) (*Manifest, error) {
	path := s.manifestPath(job)
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("checkpoint: no manifest for job %s: %w", job, os.ErrNotExist)
		}
		return nil, fmt.Errorf("checkpoint: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, &TornManifestError{Path: path, Reason: err.Error()}
	}
	if m.Version != ManifestVersion {
		return nil, &TornManifestError{Path: path, Reason: fmt.Sprintf("schema version %d, want %d", m.Version, ManifestVersion)}
	}
	want, err := manifestChecksum(&m)
	if err != nil {
		return nil, &TornManifestError{Path: path, Reason: err.Error()}
	}
	if m.Checksum != want {
		return nil, &TornManifestError{Path: path, Reason: "checksum mismatch"}
	}
	if m.Job != job {
		return nil, &TornManifestError{Path: path, Reason: fmt.Sprintf("names job %s", m.Job)}
	}
	for i, st := range m.Steps {
		if st.Step != i {
			return nil, &TornManifestError{Path: path, Reason: fmt.Sprintf("step %d at index %d (steps must be a contiguous prefix)", st.Step, i)}
		}
	}
	return &m, nil
}

// Jobs lists the job digests with a manifest in the store, sorted.
func (s *Store) Jobs() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.dir, manifestDir))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list manifests: %w", err)
	}
	var jobs []string
	for _, e := range ents {
		if name, ok := strings.CutSuffix(e.Name(), ".json"); ok && !e.IsDir() {
			jobs = append(jobs, name)
		}
	}
	sort.Strings(jobs)
	return jobs, nil
}

// Verify checks every manifest (parse + checksum) and every referenced
// blob (existence + content hash). It returns advisory warnings — e.g.
// manifests written by a different binary revision than currentRevision —
// and the first hard corruption as the error.
func (s *Store) Verify(currentRevision string) ([]string, error) {
	jobs, err := s.Jobs()
	if err != nil {
		return nil, err
	}
	var warnings []string
	for _, job := range jobs {
		m, err := s.Manifest(job)
		if err != nil {
			return warnings, err
		}
		if currentRevision != "" && m.Revision != currentRevision {
			warnings = append(warnings,
				fmt.Sprintf("job %s written by revision %s (this binary: %s); resume only if the round structure is unchanged",
					short(job), m.Revision, currentRevision))
		}
		for _, st := range m.Steps {
			if _, err := s.Blob(st.Blob); err != nil {
				return warnings, fmt.Errorf("job %s step %d: %w", short(job), st.Step, err)
			}
		}
	}
	return warnings, nil
}

// Prune removes blobs referenced by no manifest, returning how many were
// removed and the bytes freed. Torn manifests abort the prune — deleting
// blobs based on an unreadable reference list would destroy data.
func (s *Store) Prune() (int, int64, error) {
	jobs, err := s.Jobs()
	if err != nil {
		return 0, 0, err
	}
	live := map[string]bool{}
	for _, job := range jobs {
		m, err := s.Manifest(job)
		if err != nil {
			return 0, 0, err
		}
		for _, st := range m.Steps {
			live[st.Blob] = true
		}
	}
	ents, err := os.ReadDir(filepath.Join(s.dir, blobDir))
	if err != nil {
		return 0, 0, fmt.Errorf("checkpoint: list blobs: %w", err)
	}
	removed, freed := 0, int64(0)
	for _, e := range ents {
		if e.IsDir() || live[e.Name()] {
			continue
		}
		info, err := e.Info()
		if err == nil {
			freed += info.Size()
		}
		if err := os.Remove(s.blobPath(e.Name())); err != nil {
			return removed, freed, fmt.Errorf("checkpoint: prune %s: %w", e.Name(), err)
		}
		removed++
	}
	return removed, freed, nil
}

// StoreStats summarizes the store for status endpoints and dashboards.
type StoreStats struct {
	Blobs     int   `json:"blobs"`
	Bytes     int64 `json:"bytes"`
	Manifests int   `json:"manifests"`
}

// Stats walks the store; advisory (a concurrent writer may race it).
func (s *Store) Stats() StoreStats {
	var st StoreStats
	if ents, err := os.ReadDir(filepath.Join(s.dir, blobDir)); err == nil {
		for _, e := range ents {
			if e.IsDir() {
				continue
			}
			st.Blobs++
			if info, err := e.Info(); err == nil {
				st.Bytes += info.Size()
			}
		}
	}
	if ents, err := os.ReadDir(filepath.Join(s.dir, manifestDir)); err == nil {
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
				st.Manifests++
			}
		}
	}
	return st
}

// short abbreviates a job digest for human-facing messages.
func short(job string) string {
	if len(job) > 12 {
		return job[:12]
	}
	return job
}
