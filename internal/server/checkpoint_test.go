package server

import (
	"bufio"
	"encoding/json"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"mpcdist/internal/checkpoint"
)

// batchOne posts a single-query batch and returns its answer.
func batchOne(t *testing.T, base string, q Query) Answer {
	t.Helper()
	resp := post(t, base+"/v1/batch", BatchRequest{Queries: []Query{q}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("empty batch response: %v", sc.Err())
	}
	var item BatchItem
	if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
		t.Fatal(err)
	}
	if item.Error != "" {
		t.Fatalf("batch query failed: %s", item.Error)
	}
	return *item.Answer
}

// TestBatchCheckpointResume is the mpcserve-restart story in miniature:
// a batch MPC query on a checkpoint-configured server persists its rounds;
// a second server over the same store (a restarted process — fresh cache,
// fresh metrics) answers the same query by fast-forwarding instead of
// recomputing, bit-identically; and a torn store self-heals into a fresh
// run instead of failing the request.
func TestBatchCheckpointResume(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 300
	s := rng.Perm(n)
	sbar := append([]int(nil), s...)
	sbar[10], sbar[200] = sbar[200], sbar[10]
	q := Query{Algo: "ulam-mpc", ASeq: s, BSeq: sbar, X: 0.3, Seed: 7}

	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Checkpoint: store, CheckpointEvery: 1, CacheSize: -1}

	// First server: computes live, persists every round.
	ts1 := newTestServer(t, cfg)
	a1 := batchOne(t, ts1.URL, q)
	if a1.ResumedRounds != 0 {
		t.Fatalf("first run resumed %d rounds, want 0", a1.ResumedRounds)
	}
	jobs, err := store.Jobs()
	if err != nil || len(jobs) != 1 {
		t.Fatalf("store jobs after first batch: %v, %v", jobs, err)
	}
	snap1 := metricsSnapshot(t, ts1.URL)
	if snap1.Checkpoint == nil || snap1.Checkpoint.Saves == 0 {
		t.Fatalf("metrics after first batch: %+v", snap1.Checkpoint)
	}

	// "Restarted" server over the same store: the job fast-forwards.
	ts2 := newTestServer(t, cfg)
	a2 := batchOne(t, ts2.URL, q)
	if a2.ResumedRounds == 0 {
		t.Fatal("restarted server recomputed instead of resuming")
	}
	if a2.Distance != a1.Distance || a2.Report == nil || a1.Report == nil ||
		a2.Report.TotalOps != a1.Report.TotalOps || a2.Report.CommWords != a1.Report.CommWords {
		t.Fatalf("resumed answer differs: first %+v, resumed %+v", a1.Report, a2.Report)
	}
	snap2 := metricsSnapshot(t, ts2.URL)
	if snap2.Checkpoint == nil || snap2.Checkpoint.ResumedSteps == 0 {
		t.Fatalf("metrics after resume: %+v", snap2.Checkpoint)
	}

	// /v1/distance (non-batch) must not touch the store: short interactive
	// queries recompute; only long batch jobs earn durability.
	before := store.Stats()
	_ = decodeAnswer(t, post(t, ts2.URL+"/v1/distance", q))
	if after := store.Stats(); after != before {
		t.Errorf("interactive query wrote to the store: %+v -> %+v", before, after)
	}

	// Torn manifest: the next batch self-heals (fresh run, logged), the
	// request still succeeds, and the store is rewritten clean.
	path := filepath.Join(store.Dir(), "manifests", jobs[0]+".json")
	if err := os.WriteFile(path, []byte(`{"version":1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	ts3 := newTestServer(t, cfg)
	a3 := batchOne(t, ts3.URL, q)
	if a3.Distance != a1.Distance {
		t.Fatalf("self-healed answer = %d, want %d", a3.Distance, a1.Distance)
	}
	if a3.ResumedRounds != 0 {
		t.Errorf("self-healed run claims %d resumed rounds", a3.ResumedRounds)
	}
	if _, err := store.Manifest(jobs[0]); err != nil {
		t.Errorf("store not healed: %v", err)
	}
}
