package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mpcdist"
)

// Query is one distance request. String algorithms read A/B; Ulam
// algorithms read ASeq/BSeq (sequences of distinct integers). The MPC
// parameters are optional and default server-side.
type Query struct {
	// Algo selects the kernel; see Algorithms for the supported names.
	Algo string `json:"algo"`
	A    string `json:"a,omitempty"`
	B    string `json:"b,omitempty"`
	ASeq []int  `json:"aSeq,omitempty"`
	BSeq []int  `json:"bSeq,omitempty"`
	// X is the MPC memory exponent (0 = default 0.25).
	X float64 `json:"x,omitempty"`
	// Eps is the approximation slack (0 = default 0.5).
	Eps float64 `json:"eps,omitempty"`
	// Seed drives the MPC sampling streams.
	Seed int64 `json:"seed,omitempty"`
	// Bound caps the distance for algo "edit-bounded".
	Bound int `json:"bound,omitempty"`
}

// Answer is the response to a single query.
type Answer struct {
	Algo     string `json:"algo"`
	Distance int    `json:"distance"`
	// Window is the attaining substring interval (algo "lulam" only).
	Window *WindowJSON `json:"window,omitempty"`
	// Regime and Guess describe the accepted MPC regime (edit MPC only).
	Regime string `json:"regime,omitempty"`
	Guess  int    `json:"guess,omitempty"`
	// Report holds the measured MPC model quantities (MPC algorithms only).
	Report *ReportJSON `json:"report,omitempty"`
	// Degraded reports that the exact/MPC kernel ran out of deadline and
	// the answer was produced by the sequential fallback (approximation
	// for the edit algorithms, exact sequential for Ulam). Degraded
	// answers are never cached.
	Degraded bool `json:"degraded,omitempty"`
	// Distributed reports that the answer was computed by a real worker
	// cluster (the server was started with -transport tcp). The distance
	// and every deterministic report counter are bit-identical to the
	// in-process run; only the per-worker rows are extra.
	Distributed bool `json:"distributed,omitempty"`
	// Retries counts the MPC cluster's fault-recovery actions during this
	// run (0 and omitted without fault injection).
	Retries int `json:"retries,omitempty"`
	// ResumedRounds counts rounds fast-forwarded from a checkpoint instead
	// of recomputed (batch queries on a server with a checkpoint store).
	// The distance and every report counter are bit-identical either way.
	ResumedRounds int `json:"resumedRounds,omitempty"`
	// Cached reports whether the answer was served from the LRU cache.
	Cached bool `json:"cached"`
	// ElapsedMs is the compute time of the original (uncached) execution.
	ElapsedMs float64 `json:"elapsedMs"`
	// Trace is the Chrome trace-event file of the MPC run, present only
	// when the query asked for it with ?trace=1.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// WindowJSON mirrors mpcdist.Window for the wire.
type WindowJSON struct {
	Gamma int `json:"gamma"`
	Kappa int `json:"kappa"`
}

// ReportJSON is the wire form of an mpc.Report summary (per-round detail
// is dropped; the metrics endpoint aggregates it). Phases attributes the
// run's cost to the paper phases (candidates / graph / chain) in canonical
// order.
type ReportJSON struct {
	Rounds      int         `json:"rounds"`
	MaxMachines int         `json:"maxMachines"`
	MaxWords    int         `json:"maxWords"`
	TotalOps    int64       `json:"totalOps"`
	CriticalOps int64       `json:"criticalOps"`
	CommWords   int64       `json:"commWords"`
	Failures    int         `json:"failures,omitempty"`
	Retries     int         `json:"retries,omitempty"`
	Phases      []PhaseJSON `json:"phases,omitempty"`
	// Workers attributes the run to cluster parties (distributed runs
	// only; party 0 is the coordinator). Advisory rows — they never feed
	// the deterministic counters above.
	Workers []WorkerJSON `json:"workers,omitempty"`
}

// WorkerJSON is one party's share of a distributed run: the machine-rounds
// it executed (by the deterministic assignment), the model work and
// communication they account for, and the wire traffic on its link.
type WorkerJSON struct {
	Party         int     `json:"party"`
	MachineRounds int     `json:"machineRounds"`
	Ops           int64   `json:"ops"`
	CommWords     int64   `json:"commWords"`
	QueueWaitMs   float64 `json:"queueWaitMs"`
	Failures      int     `json:"failures,omitempty"`
	Retries       int     `json:"retries,omitempty"`
	WireBytes     int64   `json:"wireBytes,omitempty"`
}

// PhaseJSON is one phase's share of a run's Table 1 quantities.
type PhaseJSON struct {
	Phase       string `json:"phase"`
	Rounds      int    `json:"rounds"`
	MaxMachines int    `json:"maxMachines"`
	MaxWords    int    `json:"maxWords"`
	TotalOps    int64  `json:"totalOps"`
	CriticalOps int64  `json:"criticalOps"`
	CommWords   int64  `json:"commWords"`
}

func reportJSON(r mpcdist.Report) *ReportJSON {
	rep := &ReportJSON{
		Rounds:      r.NumRounds,
		MaxMachines: r.MaxMachines,
		MaxWords:    r.MaxWords,
		TotalOps:    r.TotalOps,
		CriticalOps: r.CriticalOps,
		CommWords:   r.CommWords,
		Failures:    r.Failures,
		Retries:     r.Retries,
	}
	for _, ps := range mpcdist.Profile(r).Phases {
		rep.Phases = append(rep.Phases, PhaseJSON{
			Phase:       string(ps.Phase),
			Rounds:      ps.Rounds,
			MaxMachines: ps.MaxMachines,
			MaxWords:    ps.MaxWords,
			TotalOps:    ps.TotalOps,
			CriticalOps: ps.CriticalOps,
			CommWords:   ps.CommWords,
		})
	}
	for _, w := range r.Workers {
		rep.Workers = append(rep.Workers, WorkerJSON{
			Party:         w.Party,
			MachineRounds: w.MachineRounds,
			Ops:           w.Ops,
			CommWords:     w.CommWords,
			QueueWaitMs:   float64(w.QueueWait.Nanoseconds()) / 1e6,
			Failures:      w.Failures,
			Retries:       w.Retries,
			WireBytes:     w.WireBytes,
		})
	}
	return rep
}

// ErrorBody is the JSON error envelope.
type ErrorBody struct {
	Error string `json:"error"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Queries []Query `json:"queries"`
}

// BatchItem is one NDJSON line of a batch response: the answer (or error)
// for Queries[Index]. Lines are streamed in completion order.
type BatchItem struct {
	Index  int     `json:"index"`
	Answer *Answer `json:"answer,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// CacheKey fingerprints the query: algorithm, parameters, and a SHA-256
// over the inputs, so equal queries collide and unequal ones do not.
func (q Query) CacheKey() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%v|%v|%d|%d|", q.Algo, q.X, q.Eps, q.Seed, q.Bound)
	fmt.Fprintf(h, "a:%d:%s|b:%d:%s|", len(q.A), q.A, len(q.B), q.B)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(q.ASeq)))
	h.Write(buf[:])
	for _, v := range q.ASeq {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(len(q.BSeq)))
	h.Write(buf[:])
	for _, v := range q.BSeq {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
