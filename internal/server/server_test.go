package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpcdist"

	"context"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeAnswer(t *testing.T, resp *http.Response) Answer {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("status %d: %s", resp.StatusCode, e.Error)
	}
	var a Answer
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	return a
}

func metricsSnapshot(t *testing.T, base string) Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestSingleDistance(t *testing.T) {
	ts := newTestServer(t, Config{})
	a := decodeAnswer(t, post(t, ts.URL+"/v1/distance",
		Query{Algo: "edit", A: "kitten", B: "sitting"}))
	if a.Distance != 3 {
		t.Fatalf("edit(kitten,sitting) = %d, want 3", a.Distance)
	}
	if a.Cached {
		t.Fatal("first query reported cached")
	}

	u := decodeAnswer(t, post(t, ts.URL+"/v1/distance",
		Query{Algo: "ulam", ASeq: []int{1, 2, 3, 4}, BSeq: []int{2, 3, 4, 1}}))
	if want := mpcdist.UlamDistance([]int{1, 2, 3, 4}, []int{2, 3, 4, 1}); u.Distance != want {
		t.Fatalf("ulam = %d, want %d", u.Distance, want)
	}

	l := decodeAnswer(t, post(t, ts.URL+"/v1/distance",
		Query{Algo: "lulam", ASeq: []int{2, 3}, BSeq: []int{1, 2, 3, 4}}))
	if l.Distance != 0 || l.Window == nil {
		t.Fatalf("lulam = %+v, want distance 0 with window", l)
	}
}

func TestBadInput(t *testing.T) {
	ts := newTestServer(t, Config{MaxInputLen: 64})
	cases := []struct {
		name string
		q    Query
		want int
	}{
		{"unknown algo", Query{Algo: "nope", A: "x", B: "y"}, http.StatusBadRequest},
		{"repeated chars", Query{Algo: "ulam", ASeq: []int{1, 1}, BSeq: []int{1, 2}}, http.StatusBadRequest},
		{"bad x", Query{Algo: "ulam-mpc", ASeq: []int{1, 2}, BSeq: []int{2, 1}, X: 0.9}, http.StatusBadRequest},
		{"too long", Query{Algo: "edit", A: strings.Repeat("a", 65), B: "b"}, http.StatusRequestEntityTooLarge},
		{"empty mpc", Query{Algo: "edit-mpc"}, http.StatusBadRequest},
		{"negative bound", Query{Algo: "edit-bounded", A: "a", B: "b", Bound: -1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := post(t, ts.URL+"/v1/distance", tc.q)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/distance", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

func TestMPCQuery(t *testing.T) {
	ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(11))
	a := make([]byte, 400)
	for i := range a {
		a[i] = byte('a' + rng.Intn(4))
	}
	b := append([]byte(nil), a...)
	for k := 0; k < 12; k++ {
		b[rng.Intn(len(b))] = byte('a' + rng.Intn(4))
	}
	ans := decodeAnswer(t, post(t, ts.URL+"/v1/distance",
		Query{Algo: "edit-mpc", A: string(a), B: string(b), X: 0.25, Seed: 7}))
	if ans.Report == nil || ans.Report.Rounds < 1 {
		t.Fatalf("MPC answer missing report: %+v", ans)
	}
	exact := mpcdist.EditDistance(string(a), string(b))
	if ans.Distance < exact || ans.Distance > 4*exact+4 {
		t.Fatalf("edit-mpc = %d, exact = %d: outside sanity band", ans.Distance, exact)
	}

	// Ulam MPC over HTTP too.
	n := 300
	s := rng.Perm(n)
	sbar := append([]int(nil), s...)
	sbar[10], sbar[200] = sbar[200], sbar[10]
	u := decodeAnswer(t, post(t, ts.URL+"/v1/distance",
		Query{Algo: "ulam-mpc", ASeq: s, BSeq: sbar, X: 0.3, Seed: 7}))
	if u.Report == nil || u.Report.Rounds != 2 {
		t.Fatalf("ulam-mpc report = %+v, want 2 rounds", u.Report)
	}
	if exact := mpcdist.UlamDistance(s, sbar); u.Distance < exact || u.Distance > 2*exact+2 {
		t.Fatalf("ulam-mpc = %d, exact = %d", u.Distance, exact)
	}
}

func TestBatch100(t *testing.T) {
	ts := newTestServer(t, Config{})
	const n = 100
	req := BatchRequest{}
	want := make([]int, n)
	for i := 0; i < n; i++ {
		a := fmt.Sprintf("batch-query-%d-left", i)
		b := fmt.Sprintf("batch-%d-query-right", i%7)
		want[i] = mpcdist.EditDistance(a, b)
		req.Queries = append(req.Queries, Query{Algo: "edit", A: a, B: b})
	}
	resp := post(t, ts.URL+"/v1/batch", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	seen := make(map[int]bool)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var item BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if item.Error != "" {
			t.Fatalf("query %d failed: %s", item.Index, item.Error)
		}
		if seen[item.Index] {
			t.Fatalf("duplicate index %d", item.Index)
		}
		seen[item.Index] = true
		if item.Answer.Distance != want[item.Index] {
			t.Fatalf("query %d = %d, want %d", item.Index, item.Answer.Distance, want[item.Index])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("got %d results, want %d", len(seen), n)
	}
}

func TestBatchPartialErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := BatchRequest{Queries: []Query{
		{Algo: "edit", A: "abc", B: "abd"},
		{Algo: "ulam", ASeq: []int{5, 5}, BSeq: []int{1, 2}}, // invalid
	}}
	resp := post(t, ts.URL+"/v1/batch", req)
	defer resp.Body.Close()
	var okCount, errCount int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var item BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatal(err)
		}
		if item.Error != "" {
			errCount++
		} else {
			okCount++
		}
	}
	if okCount != 1 || errCount != 1 {
		t.Fatalf("ok=%d err=%d, want 1/1", okCount, errCount)
	}
}

func TestCacheHitViaMetrics(t *testing.T) {
	ts := newTestServer(t, Config{})
	q := Query{Algo: "edit-mpc", A: "abcabcabcabcabcabcab", B: "abcabcXbcabcabcabYab", X: 0.25, Seed: 3}
	first := decodeAnswer(t, post(t, ts.URL+"/v1/distance", q))
	if first.Cached {
		t.Fatal("first query cached")
	}
	second := decodeAnswer(t, post(t, ts.URL+"/v1/distance", q))
	if !second.Cached {
		t.Fatal("second identical query not served from cache")
	}
	if second.Distance != first.Distance {
		t.Fatalf("cached distance %d != %d", second.Distance, first.Distance)
	}

	// A different seed is a different key.
	q.Seed = 4
	third := decodeAnswer(t, post(t, ts.URL+"/v1/distance", q))
	if third.Cached {
		t.Fatal("different-params query served from cache")
	}

	snap := metricsSnapshot(t, ts.URL)
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 2 {
		t.Fatalf("cache stats %+v, want 1 hit / 2 misses", snap.Cache)
	}
	st := snap.Algorithms["edit-mpc"]
	if st == nil || st.Requests != 3 || st.CacheHits != 1 {
		t.Fatalf("algo stats %+v, want 3 requests / 1 cache hit", st)
	}
	if st.MPCRuns != 2 || st.MaxRounds < 1 || st.TotalOps <= 0 {
		t.Fatalf("MPC aggregates not recorded: %+v", st)
	}
	if st.Latency.Count != 3 {
		t.Fatalf("latency count %d, want 3", st.Latency.Count)
	}
}

func TestTimeoutReturnsPromptlyWithoutLeaks(t *testing.T) {
	ts := newTestServer(t, Config{RequestTimeout: time.Millisecond})
	rng := rand.New(rand.NewSource(5))
	n := 5000
	s := rng.Perm(n)
	sbar := rng.Perm(n)

	before := runtime.NumGoroutine()
	start := time.Now()
	resp := post(t, ts.URL+"/v1/distance", Query{Algo: "ulam-mpc", ASeq: s, BSeq: sbar, X: 0.3})
	elapsed := time.Since(start)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want timeout", resp.StatusCode)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timed-out request took %v", elapsed)
	}

	// All simulation goroutines must drain.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}

	snap := metricsSnapshot(t, ts.URL)
	if snap.Timeouts == 0 {
		t.Fatalf("timeout not counted: %+v", snap)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	s := New(Config{})
	h := s.recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if snap := s.metrics.Snapshot(); snap.Panics != 1 {
		t.Fatalf("panics = %d, want 1", snap.Panics)
	}
}

func TestHealthAndAlgorithms(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	names := body["algorithms"]
	if len(names) != len(algos) {
		t.Fatalf("algorithms list has %d entries, want %d", len(names), len(algos))
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	var running, peak atomic.Int64
	done := make(chan struct{})
	for i := 0; i < 20; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			_ = p.Do(context.Background(), func() {
				cur := running.Add(1)
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				running.Add(-1)
			})
		}()
	}
	for i := 0; i < 20; i++ {
		<-done
	}
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d exceeds pool size 3", got)
	}
	if st := p.Stats(); st.Completed != 20 || st.Running != 0 {
		t.Fatalf("pool stats %+v", st)
	}

	// A cancelled context never runs the function.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := p.Do(ctx, func() { ran = true }); err == nil || ran {
		t.Fatalf("Do on cancelled ctx: err=%v ran=%v", err, ran)
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", Answer{Distance: 1})
	c.Put("b", Answer{Distance: 2})
	c.Put("c", Answer{Distance: 3}) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived eviction")
	}
	if v, ok := c.Get("b"); !ok || v.Distance != 2 {
		t.Fatal("b missing")
	}
	c.Put("d", Answer{Distance: 4}) // evicts c (b was just used)
	if _, ok := c.Get("c"); ok {
		t.Fatal("c survived eviction despite LRU order")
	}
	st := c.Stats()
	if st.Evictions != 2 || st.Size != 2 {
		t.Fatalf("stats %+v", st)
	}

	// Capacity 0 disables caching entirely.
	off := NewCache(0)
	off.Put("x", Answer{})
	if _, ok := off.Get("x"); ok {
		t.Fatal("disabled cache returned a hit")
	}
}
