package server

import (
	"fmt"
	"net/http"
)

// recoverMiddleware converts a handler panic into a 500 with a JSON body
// instead of tearing down the connection (and, under http.Server, the
// whole request goroutine's stack trace into the log). The panic counter
// is exported via /metrics.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.ObservePanic()
				// Headers may already be out; best effort.
				writeJSON(w, http.StatusInternalServerError,
					ErrorBody{Error: fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}
