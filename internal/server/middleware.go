package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"
)

// recoverMiddleware converts a handler panic into a 500 with a JSON body
// instead of tearing down the connection (and, under http.Server, the
// whole request goroutine's stack trace into the log). The panic counter
// is exported via /metrics.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.ObservePanic()
				s.log.Error("panic recovered",
					"requestId", RequestID(r.Context()),
					"path", r.URL.Path,
					"panic", fmt.Sprint(rec))
				// Headers may already be out; best effort.
				writeJSON(w, http.StatusInternalServerError,
					ErrorBody{Error: fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// requestIDKey is the context key under which the request ID travels from
// the middleware through answer() into kernel-level log lines.
type requestIDKey struct{}

// RequestID returns the request ID threaded through the context by the
// logging middleware, or "" outside a request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID returns a 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// validRequestID bounds what we accept from an inbound X-Request-Id: IDs
// are echoed into the response and every log line, so an uncapped value
// lets a client inflate logs or smuggle arbitrary content into them.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// statusRecorder captures the status code for the access log while passing
// Flush through so NDJSON batch streaming keeps working.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logMiddleware assigns each request an ID (honoring an inbound
// X-Request-Id when it passes validRequestID), threads it through the
// context, echoes it in the response, and writes one structured
// access-log line per request.
func (s *Server) logMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = newRequestID()
		}
		ctx := context.WithValue(r.Context(), requestIDKey{}, id)
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.log.Info("request",
			"requestId", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"durationMs", float64(time.Since(start).Nanoseconds())/1e6,
			"remote", r.RemoteAddr)
	})
}

// slogOrDiscard defaults a nil logger to one that drops everything, so
// embedding the server (and the test suite) stays silent by default.
func slogOrDiscard(l *slog.Logger) *slog.Logger {
	if l != nil {
		return l
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
