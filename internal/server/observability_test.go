package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// promBody runs a warm-up query and returns the default /metrics body.
func promBody(t *testing.T, ts *httptest.Server) (string, *http.Response) {
	t.Helper()
	decodeAnswer(t, post(t, ts.URL+"/v1/distance",
		Query{Algo: "edit-mpc", A: "abcabcabcabcabcabcab", B: "abcabcXbcabcabcabYab", X: 0.25, Seed: 3}))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestPrometheusExposition(t *testing.T) {
	ts := newTestServer(t, Config{})
	body, resp := promBody(t, ts)

	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want exposition format", ct)
	}

	// Every sample line must parse as `name{labels} value` with a matching
	// HELP/TYPE pair preceding the family.
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+$`)
	helpFor, typeFor := map[string]bool{}, map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			helpFor[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			typeFor[f[0]] = true
			if f[1] != "counter" && f[1] != "gauge" && f[1] != "histogram" {
				t.Errorf("unknown TYPE %q in %q", f[1], line)
			}
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
	for _, name := range []string{
		"mpcserve_requests_total", "mpcserve_request_duration_seconds",
		"mpcserve_pool_size", "mpcserve_cache_hits_total", "mpcserve_mpc_runs_total",
	} {
		if !helpFor[name] || !typeFor[name] {
			t.Errorf("metric %s missing HELP/TYPE", name)
		}
	}

	// Histogram: cumulative buckets ending in +Inf == _count, and the edit-mpc
	// request must have landed in it.
	wantLines := []string{
		`mpcserve_requests_total 1`,
		`mpcserve_algo_requests_total{algo="edit-mpc"} 1`,
		`mpcserve_request_duration_seconds_count{algo="edit-mpc"} 1`,
		`mpcserve_request_duration_seconds_bucket{algo="edit-mpc",le="+Inf"} 1`,
		`mpcserve_mpc_runs_total{algo="edit-mpc"} 1`,
	}
	for _, want := range wantLines {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("exposition missing line %q", want)
		}
	}
	bucket := regexp.MustCompile(`mpcserve_request_duration_seconds_bucket\{algo="edit-mpc",le="[^"]+"\} (\d+)`)
	var prev int64 = -1
	for _, m := range bucket.FindAllStringSubmatch(body, -1) {
		v, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			t.Fatalf("bucket value %q: %v", m[1], err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative: %d after %d", v, prev)
		}
		prev = v
	}
	if prev != 1 {
		t.Errorf("final bucket = %d, want 1", prev)
	}
}

// TestPhaseMetrics checks that phase attribution survives the whole wire
// path: the answer's report carries per-phase cells that sum to the run
// totals, and /metrics exposes per-(algo, phase) series in both formats.
func TestPhaseMetrics(t *testing.T) {
	ts := newTestServer(t, Config{})
	ans := decodeAnswer(t, post(t, ts.URL+"/v1/distance",
		Query{Algo: "edit-mpc", A: "abcabcabcabcabcabcab", B: "abcabcXbcabcabcabYab", X: 0.25, Seed: 3}))
	if ans.Report == nil || len(ans.Report.Phases) == 0 {
		t.Fatalf("answer report has no phases: %+v", ans.Report)
	}
	var ops, comm int64
	seen := map[string]bool{}
	for _, ph := range ans.Report.Phases {
		seen[ph.Phase] = true
		ops += ph.TotalOps
		comm += ph.CommWords
	}
	if !seen["candidates"] || !seen["chain"] {
		t.Errorf("phases %v, want candidates and chain present", seen)
	}
	if ops != ans.Report.TotalOps || comm != ans.Report.CommWords {
		t.Errorf("phase sums ops=%d comm=%d != report totals ops=%d comm=%d",
			ops, comm, ans.Report.TotalOps, ans.Report.CommWords)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`mpcserve_mpc_phase_rounds_total{algo="edit-mpc",phase="candidates"}`,
		`mpcserve_mpc_phase_total_ops_total{algo="edit-mpc",phase="chain"}`,
		`mpcserve_mpc_phase_comm_words_total{algo="edit-mpc",phase="candidates"}`,
		`mpcserve_mpc_phase_max_machines{algo="edit-mpc",phase="candidates"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing series %q", want)
		}
	}

	var snap Snapshot
	jr, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	if err := json.NewDecoder(jr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	st := snap.Algorithms["edit-mpc"]
	if st == nil || st.Phases["candidates"] == nil || st.Phases["candidates"].TotalOps <= 0 {
		t.Fatalf("JSON snapshot missing per-phase aggregation: %+v", st)
	}
}

func TestMetricsJSONFallback(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("json fallback did not decode: %v", err)
	}
	if snap.Pool.Size == 0 {
		t.Errorf("snapshot missing pool stats: %+v", snap.Pool)
	}
}

func TestInlineTrace(t *testing.T) {
	ts := newTestServer(t, Config{})
	q := Query{Algo: "ulam-mpc", ASeq: []int{1, 2, 3, 4, 5, 6, 7, 8}, BSeq: []int{2, 1, 3, 4, 5, 6, 8, 7}, X: 0.3, Seed: 1}

	a := decodeAnswer(t, post(t, ts.URL+"/v1/distance?trace=1", q))
	if len(a.Trace) == 0 {
		t.Fatal("trace=1 answer has no trace")
	}
	var file struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Trace, &file); err != nil {
		t.Fatalf("trace is not valid Chrome JSON: %v", err)
	}
	spans := 0
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("trace has no complete-event spans")
	}

	// Traced answers bypass the cache in both directions.
	b := decodeAnswer(t, post(t, ts.URL+"/v1/distance?trace=1", q))
	if b.Cached || len(b.Trace) == 0 {
		t.Fatalf("second traced answer cached=%v trace=%d bytes", b.Cached, len(b.Trace))
	}
	c := decodeAnswer(t, post(t, ts.URL+"/v1/distance", q))
	if c.Cached {
		t.Fatal("untraced query hit a cache entry written by a traced run")
	}
	if len(c.Trace) != 0 {
		t.Fatal("untraced answer carries a trace")
	}

	// Sequential algorithms have no cluster to trace.
	resp := post(t, ts.URL+"/v1/distance?trace=1", Query{Algo: "edit", A: "ab", B: "ba"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace on sequential algo: status %d, want 400", resp.StatusCode)
	}
}

// syncBuffer lets the handler goroutines and the test read the log safely.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRequestIDAndLogging(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	ts := httptest.NewServer(New(Config{Logger: logger}).Handler())
	t.Cleanup(ts.Close)

	// Generated ID: echoed in the header, present in both the access-log
	// line and the query line.
	resp := post(t, ts.URL+"/v1/distance", Query{Algo: "edit", A: "ab", B: "ba"})
	id := resp.Header.Get("X-Request-Id")
	resp.Body.Close()
	if len(id) != 16 {
		t.Fatalf("X-Request-Id = %q, want 16 hex chars", id)
	}

	// Client-supplied ID is honored.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/distance",
		strings.NewReader(`{"algo":"edit","a":"x","b":"y"}`))
	req.Header.Set("X-Request-Id", "client-chosen-id")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "client-chosen-id" {
		t.Fatalf("inbound request ID not echoed: %q", got)
	}

	logs := logBuf.String()
	for _, want := range []string{
		`"msg":"request"`, `"msg":"query"`, `"algo":"edit"`,
		`"requestId":"` + id + `"`, `"requestId":"client-chosen-id"`,
		`"status":200`,
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %s in:\n%s", want, logs)
		}
	}
	// The query line and the access line of the same request share the ID.
	if strings.Count(logs, `"requestId":"`+id+`"`) < 2 {
		t.Errorf("request ID %s not threaded into the query log:\n%s", id, logs)
	}
}

func TestOpsHandler(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).OpsHandler())
	t.Cleanup(ts.Close)

	for path, wantCT := range map[string]string{
		"/debug/pprof/":          "text/html",
		"/debug/pprof/goroutine": "", // any
		"/metrics":               "text/plain; version=0.0.4",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if wantCT != "" && !strings.HasPrefix(resp.Header.Get("Content-Type"), wantCT) {
			t.Errorf("GET %s: content type %q, want prefix %q", path, resp.Header.Get("Content-Type"), wantCT)
		}
	}

	// pprof must NOT be reachable through the public handler.
	pub := newTestServer(t, Config{})
	resp, err := http.Get(pub.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("public handler serves pprof; it must stay ops-only")
	}
}
