package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"mpcdist/internal/buildinfo"
	"mpcdist/internal/dist"
	"mpcdist/internal/trace"
)

// OpsHandler serves the operator-only endpoints: the Go pprof suite
// (whose CPU profiles carry the {algo, phase, round} goroutine labels the
// simulator applies — see internal/trace.PhaseLabels), the process-global
// flight recorder's dump at /debug/flight with its live stats at /flight,
// plus a copy of /metrics. It is intentionally not part of Handler() —
// profiles and dumps expose memory contents and must stay off the query
// port; mpcserve mounts this on a separate opt-in listener (-ops).
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/flight", dist.FlightDumpHandler)
	mux.HandleFunc("GET /flight", handleFlightStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /version", handleVersion)
	return mux
}

// handleVersion serves the binary's build identity (version, VCS revision,
// Go toolchain) — what an operator compares against a checkpoint
// manifest's recorded revision before trusting a cross-restart resume.
func handleVersion(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(buildinfo.Get()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleFlightStats serves the flight recorder's live summary (retained
// counts + rolling round-latency quantiles) as JSON — the lightweight
// poll target, next to the full dump at /debug/flight.
func handleFlightStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(trace.Flight().Stats()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
