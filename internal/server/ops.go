package server

import (
	"net/http"
	"net/http/pprof"
)

// OpsHandler serves the operator-only endpoints: the Go pprof suite plus
// a copy of /metrics. It is intentionally not part of Handler() — profiles
// expose memory contents and must stay off the query port; mpcserve mounts
// this on a separate opt-in listener (-ops).
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}
