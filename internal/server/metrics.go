package server

import (
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in milliseconds; the last
// implicit bucket is +Inf.
var latencyBuckets = []float64{0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000}

// Histogram is a fixed-bucket latency histogram (milliseconds).
type Histogram struct {
	Count   uint64   `json:"count"`
	SumMs   float64  `json:"sumMs"`
	MaxMs   float64  `json:"maxMs"`
	Buckets []uint64 `json:"buckets"` // len(latencyBuckets)+1, last is +Inf
}

func newHistogram() *Histogram {
	return &Histogram{Buckets: make([]uint64, len(latencyBuckets)+1)}
}

func (h *Histogram) observe(ms float64) {
	h.Count++
	h.SumMs += ms
	if ms > h.MaxMs {
		h.MaxMs = ms
	}
	for i, ub := range latencyBuckets {
		if ms <= ub {
			h.Buckets[i]++
			return
		}
	}
	h.Buckets[len(latencyBuckets)]++
}

func (h *Histogram) clone() *Histogram {
	c := *h
	c.Buckets = append([]uint64(nil), h.Buckets...)
	return &c
}

// AlgoStats aggregates the per-algorithm request and MPC-report counters.
type AlgoStats struct {
	Requests  uint64     `json:"requests"`
	CacheHits uint64     `json:"cacheHits"`
	Errors    uint64     `json:"errors"`
	Latency   *Histogram `json:"latency"`
	// MPC report aggregates over computed (uncached) executions.
	MPCRuns       uint64 `json:"mpcRuns,omitempty"`
	MaxRounds     int    `json:"maxRounds,omitempty"`
	MaxMachines   int    `json:"maxMachines,omitempty"`
	MaxWords      int    `json:"maxWords,omitempty"`
	TotalOps      int64  `json:"totalOps,omitempty"`
	TotalComm     int64  `json:"totalCommWords,omitempty"`
	TotalCritical int64  `json:"totalCriticalOps,omitempty"`
	// TotalFailures/TotalRetries sum the clusters' fault and recovery
	// counters over computed runs (0 without fault injection).
	TotalFailures int64 `json:"totalFailures,omitempty"`
	TotalRetries  int64 `json:"totalRetries,omitempty"`
	// Phases attributes the MPC aggregates to paper phases, keyed by
	// phase name (candidates / graph / chain).
	Phases map[string]*PhaseAgg `json:"phases,omitempty"`
}

// PhaseAgg aggregates one (algorithm, phase) cell over computed MPC runs:
// totals accumulate, maxima track the largest single run.
type PhaseAgg struct {
	Rounds        int64 `json:"rounds"`
	MaxMachines   int   `json:"maxMachines"`
	MaxWords      int   `json:"maxWords"`
	TotalOps      int64 `json:"totalOps"`
	TotalComm     int64 `json:"totalCommWords"`
	TotalCritical int64 `json:"totalCriticalOps"`
}

// WorkerAgg aggregates one cluster party's share of distributed runs:
// machine-rounds executed, model work and communication attributed, wire
// traffic on its link, and fault/recovery counts. Keyed by party in the
// snapshot (party 0 is the coordinator).
type WorkerAgg struct {
	MachineRounds int64   `json:"machineRounds"`
	Ops           int64   `json:"ops"`
	CommWords     int64   `json:"commWords"`
	QueueWaitMs   float64 `json:"queueWaitMs"`
	Failures      int64   `json:"failures,omitempty"`
	Retries       int64   `json:"retries,omitempty"`
	WireBytes     int64   `json:"wireBytes,omitempty"`
}

// Metrics is the server-wide observability registry behind /metrics.
type Metrics struct {
	mu        sync.Mutex
	started   time.Time
	requests  uint64
	errors    uint64
	panics    uint64
	badInput  uint64
	timeouts  uint64
	batches   uint64
	degraded  uint64
	shed      uint64
	perAlgo   map[string]*AlgoStats
	perWorker map[int]*WorkerAgg
	// Checkpoint seam counters (servers started with a checkpoint store).
	ckptSaves   uint64
	ckptResumed uint64
	ckptBytes   int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{started: time.Now(), perAlgo: make(map[string]*AlgoStats)}
}

func (m *Metrics) algo(name string) *AlgoStats {
	st, ok := m.perAlgo[name]
	if !ok {
		st = &AlgoStats{Latency: newHistogram()}
		m.perAlgo[name] = st
	}
	return st
}

// Observe records one finished query.
func (m *Metrics) Observe(algo string, elapsed time.Duration, cached bool, failed bool, rep *ReportJSON) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	st := m.algo(algo)
	st.Requests++
	st.Latency.observe(float64(elapsed.Nanoseconds()) / 1e6)
	if cached {
		st.CacheHits++
	}
	if failed {
		m.errors++
		st.Errors++
	}
	if rep != nil {
		st.MPCRuns++
		if rep.Rounds > st.MaxRounds {
			st.MaxRounds = rep.Rounds
		}
		if rep.MaxMachines > st.MaxMachines {
			st.MaxMachines = rep.MaxMachines
		}
		if rep.MaxWords > st.MaxWords {
			st.MaxWords = rep.MaxWords
		}
		st.TotalOps += rep.TotalOps
		st.TotalComm += rep.CommWords
		st.TotalCritical += rep.CriticalOps
		st.TotalFailures += int64(rep.Failures)
		st.TotalRetries += int64(rep.Retries)
		for _, ph := range rep.Phases {
			if st.Phases == nil {
				st.Phases = make(map[string]*PhaseAgg)
			}
			pa, ok := st.Phases[ph.Phase]
			if !ok {
				pa = &PhaseAgg{}
				st.Phases[ph.Phase] = pa
			}
			pa.Rounds += int64(ph.Rounds)
			if ph.MaxMachines > pa.MaxMachines {
				pa.MaxMachines = ph.MaxMachines
			}
			if ph.MaxWords > pa.MaxWords {
				pa.MaxWords = ph.MaxWords
			}
			pa.TotalOps += ph.TotalOps
			pa.TotalComm += ph.CommWords
			pa.TotalCritical += ph.CriticalOps
		}
		for _, w := range rep.Workers {
			if m.perWorker == nil {
				m.perWorker = make(map[int]*WorkerAgg)
			}
			wa, ok := m.perWorker[w.Party]
			if !ok {
				wa = &WorkerAgg{}
				m.perWorker[w.Party] = wa
			}
			wa.MachineRounds += int64(w.MachineRounds)
			wa.Ops += w.Ops
			wa.CommWords += w.CommWords
			wa.QueueWaitMs += w.QueueWaitMs
			wa.Failures += int64(w.Failures)
			wa.Retries += int64(w.Retries)
			wa.WireBytes += w.WireBytes
		}
	}
}

// ObserveBadInput counts a request rejected before dispatch (4xx).
func (m *Metrics) ObserveBadInput() {
	m.mu.Lock()
	m.badInput++
	m.requests++
	m.mu.Unlock()
}

// ObserveTimeout counts a request aborted by deadline or disconnect.
func (m *Metrics) ObserveTimeout() {
	m.mu.Lock()
	m.timeouts++
	m.mu.Unlock()
}

// ObserveDegraded counts a query answered by the sequential fallback
// after the exact kernel exhausted its reserve-reduced deadline.
func (m *Metrics) ObserveDegraded() {
	m.mu.Lock()
	m.degraded++
	m.mu.Unlock()
}

// ObserveShed counts a request rejected with 429 by the load shedder
// (queue-length threshold or queue-wait budget).
func (m *Metrics) ObserveShed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// ObserveBatch counts one batch request of the given size.
func (m *Metrics) ObserveBatch() {
	m.mu.Lock()
	m.batches++
	m.mu.Unlock()
}

// ObserveCheckpointFlush counts one durable checkpoint flush: steps
// persisted and blob bytes written. Wired as the savers' OnFlush hook.
func (m *Metrics) ObserveCheckpointFlush(steps int, bytes int64) {
	m.mu.Lock()
	m.ckptSaves += uint64(steps)
	m.ckptBytes += bytes
	m.mu.Unlock()
}

// ObserveCheckpointResume counts rounds fast-forwarded from a checkpoint
// instead of recomputed.
func (m *Metrics) ObserveCheckpointResume(steps int) {
	m.mu.Lock()
	m.ckptResumed += uint64(steps)
	m.mu.Unlock()
}

// ObservePanic counts a recovered handler panic.
func (m *Metrics) ObservePanic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// Snapshot is the JSON shape served by /metrics.
type Snapshot struct {
	UptimeSeconds  float64               `json:"uptimeSeconds"`
	Requests       uint64                `json:"requests"`
	Errors         uint64                `json:"errors"`
	Panics         uint64                `json:"panics"`
	BadInput       uint64                `json:"badInput"`
	Timeouts       uint64                `json:"timeouts"`
	Batches        uint64                `json:"batches"`
	Degraded       uint64                `json:"degraded"`
	Shed           uint64                `json:"shed"`
	LatencyBuckets []float64             `json:"latencyBucketsMs"`
	Algorithms     map[string]*AlgoStats `json:"algorithms"`
	Cache          CacheStats            `json:"cache"`
	Pool           PoolStats             `json:"pool"`
	// Workers aggregates per-party attribution over distributed runs
	// (distributed servers only), keyed by party number.
	Workers map[int]*WorkerAgg `json:"workers,omitempty"`
	// Transport is the live cluster-transport view, filled by the server at
	// scrape time from the session (distributed servers only).
	Transport *TransportJSON `json:"transport,omitempty"`
	// Checkpoint is the durability seam's activity (servers started with a
	// checkpoint store only); store gauges are filled at scrape time.
	Checkpoint *CheckpointSnap `json:"checkpoint,omitempty"`
}

// CheckpointSnap is the checkpoint section of the metrics snapshot.
type CheckpointSnap struct {
	Saves        uint64 `json:"savedSteps"`   // steps persisted since start
	ResumedSteps uint64 `json:"resumedSteps"` // rounds fast-forwarded, not recomputed
	BytesWritten int64  `json:"bytesWritten"` // blob bytes written since start
	StoreBlobs   int    `json:"storeBlobs"`   // gauge: blobs in the store now
	StoreBytes   int64  `json:"storeBytes"`   // gauge: store size now
}

// Snapshot copies the counters; cache and pool stats are filled by the
// server, which owns those components.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	algs := make(map[string]*AlgoStats, len(m.perAlgo))
	for name, st := range m.perAlgo {
		c := *st
		c.Latency = st.Latency.clone()
		if st.Phases != nil {
			c.Phases = make(map[string]*PhaseAgg, len(st.Phases))
			for ph, pa := range st.Phases {
				cp := *pa
				c.Phases[ph] = &cp
			}
		}
		algs[name] = &c
	}
	var workers map[int]*WorkerAgg
	if m.perWorker != nil {
		workers = make(map[int]*WorkerAgg, len(m.perWorker))
		for party, wa := range m.perWorker {
			c := *wa
			workers[party] = &c
		}
	}
	snap := Snapshot{
		UptimeSeconds:  time.Since(m.started).Seconds(),
		Requests:       m.requests,
		Errors:         m.errors,
		Panics:         m.panics,
		BadInput:       m.badInput,
		Timeouts:       m.timeouts,
		Batches:        m.batches,
		Degraded:       m.degraded,
		Shed:           m.shed,
		LatencyBuckets: append([]float64(nil), latencyBuckets...),
		Algorithms:     algs,
		Workers:        workers,
	}
	if m.ckptSaves > 0 || m.ckptResumed > 0 || m.ckptBytes > 0 {
		snap.Checkpoint = &CheckpointSnap{
			Saves:        m.ckptSaves,
			ResumedSteps: m.ckptResumed,
			BytesWritten: m.ckptBytes,
		}
	}
	return snap
}
