package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mpcdist/internal/transport"
)

// Prometheus text exposition (version 0.0.4), hand-rolled so the module
// stays stdlib-only. The JSON snapshot remains available at
// /metrics?format=json; standard scrapers get this format by default.
//
// The latency histograms are kept internally in milliseconds (the JSON
// shape is unchanged); here they are re-emitted in seconds as cumulative
// _bucket/_sum/_count series, the Prometheus convention.

// promContentType is the exposition-format content type scrapers expect.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// labelEscaper escapes label values per the exposition format. Hoisted so
// the scrape path doesn't rebuild it once per labeled series.
var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeLabel(v string) string {
	return labelEscaper.Replace(v)
}

// promWriter accumulates exposition lines with HELP/TYPE headers.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) value(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	p.printf("%s%s %s\n", name, labels, formatFloat(v))
}

// formatFloat renders integers without an exponent and everything else in
// Go's shortest form, matching what Prometheus parsers accept.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func algoLabel(name string) string {
	return `algo="` + escapeLabel(name) + `"`
}

// writePrometheus renders the full snapshot in exposition format.
func writePrometheus(w io.Writer, snap Snapshot) error {
	p := &promWriter{w: w}

	p.header("mpcserve_uptime_seconds", "Seconds since the metrics registry was created.", "gauge")
	p.value("mpcserve_uptime_seconds", "", snap.UptimeSeconds)

	counters := []struct {
		name, help string
		v          uint64
	}{
		{"mpcserve_requests_total", "Requests received (including rejected ones).", snap.Requests},
		{"mpcserve_errors_total", "Queries that failed during execution.", snap.Errors},
		{"mpcserve_panics_total", "Handler panics recovered to 500s.", snap.Panics},
		{"mpcserve_bad_input_total", "Requests rejected before dispatch (4xx).", snap.BadInput},
		{"mpcserve_timeouts_total", "Queries aborted by deadline or disconnect.", snap.Timeouts},
		{"mpcserve_batches_total", "Batch requests received.", snap.Batches},
		{"mpcserve_degraded_total", "Queries answered by the sequential fallback under deadline pressure.", snap.Degraded},
		{"mpcserve_shed_total", "Requests shed with 429 by the overload controls.", snap.Shed},
	}
	for _, c := range counters {
		p.header(c.name, c.help, "counter")
		p.value(c.name, "", float64(c.v))
	}

	algoNames := make([]string, 0, len(snap.Algorithms))
	for name := range snap.Algorithms {
		algoNames = append(algoNames, name)
	}
	sort.Strings(algoNames)

	p.header("mpcserve_algo_requests_total", "Requests per algorithm.", "counter")
	for _, name := range algoNames {
		p.value("mpcserve_algo_requests_total", algoLabel(name), float64(snap.Algorithms[name].Requests))
	}
	p.header("mpcserve_algo_cache_hits_total", "Cache-served answers per algorithm.", "counter")
	for _, name := range algoNames {
		p.value("mpcserve_algo_cache_hits_total", algoLabel(name), float64(snap.Algorithms[name].CacheHits))
	}
	p.header("mpcserve_algo_errors_total", "Failed queries per algorithm.", "counter")
	for _, name := range algoNames {
		p.value("mpcserve_algo_errors_total", algoLabel(name), float64(snap.Algorithms[name].Errors))
	}

	// Latency histograms: cumulative buckets in seconds.
	p.header("mpcserve_request_duration_seconds", "Query latency (queue + compute).", "histogram")
	for _, name := range algoNames {
		h := snap.Algorithms[name].Latency
		if h == nil {
			continue
		}
		label := algoLabel(name)
		cum := uint64(0)
		for i, ub := range snap.LatencyBuckets {
			cum += h.Buckets[i]
			p.value("mpcserve_request_duration_seconds_bucket",
				label+`,le="`+formatFloat(ub/1000)+`"`, float64(cum))
		}
		p.value("mpcserve_request_duration_seconds_bucket", label+`,le="+Inf"`, float64(h.Count))
		p.value("mpcserve_request_duration_seconds_sum", label, h.SumMs/1000)
		p.value("mpcserve_request_duration_seconds_count", label, float64(h.Count))
	}

	// MPC model aggregates over computed (uncached) runs.
	mpcCounters := []struct {
		name, help string
		get        func(*AlgoStats) float64
	}{
		{"mpcserve_mpc_runs_total", "Completed MPC simulations.", func(a *AlgoStats) float64 { return float64(a.MPCRuns) }},
		{"mpcserve_mpc_total_ops_total", "Total simulated operations.", func(a *AlgoStats) float64 { return float64(a.TotalOps) }},
		{"mpcserve_mpc_comm_words_total", "Total simulated communication volume (words).", func(a *AlgoStats) float64 { return float64(a.TotalComm) }},
		{"mpcserve_mpc_critical_ops_total", "Total critical-path operations.", func(a *AlgoStats) float64 { return float64(a.TotalCritical) }},
		{"mpcserve_mpc_failures_total", "Injected faults observed across simulations.", func(a *AlgoStats) float64 { return float64(a.TotalFailures) }},
		{"mpcserve_mpc_retries_total", "Fault-recovery actions (replays, retransmissions) across simulations.", func(a *AlgoStats) float64 { return float64(a.TotalRetries) }},
	}
	for _, c := range mpcCounters {
		p.header(c.name, c.help, "counter")
		for _, name := range algoNames {
			st := snap.Algorithms[name]
			if st.MPCRuns == 0 {
				continue
			}
			p.value(c.name, algoLabel(name), c.get(st))
		}
	}
	// Per-phase MPC aggregates: the same quantities attributed to the
	// paper phases (candidates / graph / chain), labeled {algo, phase}.
	phaseLabel := func(algo, phase string) string {
		return algoLabel(algo) + `,phase="` + escapeLabel(phase) + `"`
	}
	type phaseCell struct {
		algo, phase string
		agg         *PhaseAgg
	}
	var phaseCells []phaseCell
	for _, name := range algoNames {
		st := snap.Algorithms[name]
		phases := make([]string, 0, len(st.Phases))
		for ph := range st.Phases {
			phases = append(phases, ph)
		}
		sort.Strings(phases)
		for _, ph := range phases {
			phaseCells = append(phaseCells, phaseCell{algo: name, phase: ph, agg: st.Phases[ph]})
		}
	}
	phaseCounters := []struct {
		name, help string
		get        func(*PhaseAgg) float64
	}{
		{"mpcserve_mpc_phase_rounds_total", "Simulated rounds executed in this phase.", func(a *PhaseAgg) float64 { return float64(a.Rounds) }},
		{"mpcserve_mpc_phase_total_ops_total", "Simulated operations charged to this phase.", func(a *PhaseAgg) float64 { return float64(a.TotalOps) }},
		{"mpcserve_mpc_phase_comm_words_total", "Simulated communication (words) charged to this phase.", func(a *PhaseAgg) float64 { return float64(a.TotalComm) }},
		{"mpcserve_mpc_phase_critical_ops_total", "Critical-path operations charged to this phase.", func(a *PhaseAgg) float64 { return float64(a.TotalCritical) }},
	}
	for _, c := range phaseCounters {
		if len(phaseCells) == 0 {
			break
		}
		p.header(c.name, c.help, "counter")
		for _, cell := range phaseCells {
			p.value(c.name, phaseLabel(cell.algo, cell.phase), c.get(cell.agg))
		}
	}
	phaseGauges := []struct {
		name, help string
		get        func(*PhaseAgg) float64
	}{
		{"mpcserve_mpc_phase_max_machines", "Max machines observed in this phase in one simulation.", func(a *PhaseAgg) float64 { return float64(a.MaxMachines) }},
		{"mpcserve_mpc_phase_max_words", "Max per-machine words observed in this phase in one simulation.", func(a *PhaseAgg) float64 { return float64(a.MaxWords) }},
	}
	for _, g := range phaseGauges {
		if len(phaseCells) == 0 {
			break
		}
		p.header(g.name, g.help, "gauge")
		for _, cell := range phaseCells {
			p.value(g.name, phaseLabel(cell.algo, cell.phase), g.get(cell.agg))
		}
	}

	mpcGauges := []struct {
		name, help string
		get        func(*AlgoStats) float64
	}{
		{"mpcserve_mpc_max_rounds", "Max rounds observed in one simulation.", func(a *AlgoStats) float64 { return float64(a.MaxRounds) }},
		{"mpcserve_mpc_max_machines", "Max machines observed in one simulation.", func(a *AlgoStats) float64 { return float64(a.MaxMachines) }},
		{"mpcserve_mpc_max_words", "Max per-machine words observed in one simulation.", func(a *AlgoStats) float64 { return float64(a.MaxWords) }},
	}
	for _, g := range mpcGauges {
		p.header(g.name, g.help, "gauge")
		for _, name := range algoNames {
			st := snap.Algorithms[name]
			if st.MPCRuns == 0 {
				continue
			}
			p.value(g.name, algoLabel(name), g.get(st))
		}
	}

	// Pool and cache.
	p.header("mpcserve_pool_size", "Worker-pool capacity.", "gauge")
	p.value("mpcserve_pool_size", "", float64(snap.Pool.Size))
	p.header("mpcserve_pool_running", "Kernels executing right now.", "gauge")
	p.value("mpcserve_pool_running", "", float64(snap.Pool.Running))
	p.header("mpcserve_pool_waiting", "Queries queued for a pool slot.", "gauge")
	p.value("mpcserve_pool_waiting", "", float64(snap.Pool.Waiting))
	p.header("mpcserve_pool_completed_total", "Pool executions completed.", "counter")
	p.value("mpcserve_pool_completed_total", "", float64(snap.Pool.Completed))
	p.header("mpcserve_pool_shed_total", "Pool acquisitions abandoned past the queue-wait budget.", "counter")
	p.value("mpcserve_pool_shed_total", "", float64(snap.Pool.Shed))

	p.header("mpcserve_cache_capacity", "LRU cache capacity in answers.", "gauge")
	p.value("mpcserve_cache_capacity", "", float64(snap.Cache.Capacity))
	p.header("mpcserve_cache_size", "Answers currently cached.", "gauge")
	p.value("mpcserve_cache_size", "", float64(snap.Cache.Size))
	p.header("mpcserve_cache_hits_total", "Cache hits.", "counter")
	p.value("mpcserve_cache_hits_total", "", float64(snap.Cache.Hits))
	p.header("mpcserve_cache_misses_total", "Cache misses.", "counter")
	p.value("mpcserve_cache_misses_total", "", float64(snap.Cache.Misses))
	p.header("mpcserve_cache_evictions_total", "Cache evictions.", "counter")
	p.value("mpcserve_cache_evictions_total", "", float64(snap.Cache.Evictions))

	// Cluster transport: live session counters, present only on distributed
	// servers (the snapshot field is filled at scrape time).
	if t := snap.Transport; t != nil {
		p.header("mpcserve_transport_workers", "Worker processes in the cluster.", "gauge")
		p.value("mpcserve_transport_workers", "", float64(t.Workers))
		p.header("mpcserve_transport_alive", "Live parties, coordinator included.", "gauge")
		p.value("mpcserve_transport_alive", "", float64(t.Alive))
		p.header("mpcserve_transport_bytes_out_total", "Bytes written to the cluster wire.", "counter")
		p.value("mpcserve_transport_bytes_out_total", "", float64(t.Wire.BytesOut))
		p.header("mpcserve_transport_bytes_in_total", "Bytes read from the cluster wire.", "counter")
		p.value("mpcserve_transport_bytes_in_total", "", float64(t.Wire.BytesIn))
		p.header("mpcserve_transport_frames_total", "Frames sent and received on the cluster wire.", "counter")
		p.value("mpcserve_transport_frames_total", "", float64(t.Wire.Frames))
		p.header("mpcserve_transport_exchanges_total", "Completed exchange barriers.", "counter")
		p.value("mpcserve_transport_exchanges_total", "", float64(t.Wire.Exchanges))
		p.header("mpcserve_transport_peers_lost_total", "Peers declared dead (conn error or heartbeat timeout).", "counter")
		p.value("mpcserve_transport_peers_lost_total", "", float64(t.Wire.PeersLost))
		p.header("mpcserve_transport_reassigns_total", "Machine batches re-executed after a peer loss.", "counter")
		p.value("mpcserve_transport_reassigns_total", "", float64(t.Wire.Reassigns))
		p.header("mpcserve_transport_reconnects_total", "Connections recycled and resumed via the rejoin handshake.", "counter")
		p.value("mpcserve_transport_reconnects_total", "", float64(t.Wire.Reconnects))
		p.header("mpcserve_transport_corrupt_frames_total", "Frames rejected by the CRC/length check.", "counter")
		p.value("mpcserve_transport_corrupt_frames_total", "", float64(t.Wire.CorruptFrames))

		peerLabel := func(party int) string {
			return `party="` + strconv.Itoa(party) + `"`
		}
		peerSeries := []struct {
			name, help, typ string
			get             func(transport.PeerStatus) float64
		}{
			{"mpcserve_transport_peer_alive", "Peer liveness (1 alive, 0 lost).", "gauge", func(ps transport.PeerStatus) float64 {
				if ps.Alive {
					return 1
				}
				return 0
			}},
			{"mpcserve_transport_peer_bytes_in_total", "Bytes received from this peer.", "counter", func(ps transport.PeerStatus) float64 { return float64(ps.BytesIn) }},
			{"mpcserve_transport_peer_bytes_out_total", "Bytes sent to this peer.", "counter", func(ps transport.PeerStatus) float64 { return float64(ps.BytesOut) }},
			{"mpcserve_transport_peer_frames_total", "Frames exchanged with this peer.", "counter", func(ps transport.PeerStatus) float64 { return float64(ps.Frames) }},
			{"mpcserve_transport_peer_rtt_p99_seconds", "Heartbeat round-trip p99 (0 until sampled).", "gauge", func(ps transport.PeerStatus) float64 { return ps.RTTP99Ms / 1000 }},
			{"mpcserve_transport_peer_reconnects_total", "Rejoin reconnects on this peer's slot.", "counter", func(ps transport.PeerStatus) float64 { return float64(ps.Reconnects) }},
			{"mpcserve_transport_peer_corrupt_frames_total", "Corrupt frames rejected on this peer's link.", "counter", func(ps transport.PeerStatus) float64 { return float64(ps.CorruptFrames) }},
		}
		for _, s := range peerSeries {
			if len(t.Peers) == 0 {
				break
			}
			p.header(s.name, s.help, s.typ)
			for _, ps := range t.Peers {
				p.value(s.name, peerLabel(ps.Party), s.get(ps))
			}
		}
	}

	// Checkpoint seam: durability activity plus live store gauges, present
	// only on servers started with a checkpoint store.
	if c := snap.Checkpoint; c != nil {
		p.header("mpcserve_checkpoint_saves_total", "Round snapshots persisted to the checkpoint store.", "counter")
		p.value("mpcserve_checkpoint_saves_total", "", float64(c.Saves))
		p.header("mpcserve_checkpoint_resumed_steps_total", "Rounds fast-forwarded from checkpoints instead of recomputed.", "counter")
		p.value("mpcserve_checkpoint_resumed_steps_total", "", float64(c.ResumedSteps))
		p.header("mpcserve_checkpoint_bytes_total", "Blob bytes written to the checkpoint store.", "counter")
		p.value("mpcserve_checkpoint_bytes_total", "", float64(c.BytesWritten))
		p.header("mpcserve_checkpoint_store_blobs", "Blobs in the checkpoint store.", "gauge")
		p.value("mpcserve_checkpoint_store_blobs", "", float64(c.StoreBlobs))
		p.header("mpcserve_checkpoint_store_bytes", "Checkpoint store size in bytes.", "gauge")
		p.value("mpcserve_checkpoint_store_bytes", "", float64(c.StoreBytes))
	}

	// Per-party attribution aggregated over distributed runs.
	if len(snap.Workers) > 0 {
		parties := make([]int, 0, len(snap.Workers))
		for party := range snap.Workers {
			parties = append(parties, party)
		}
		sort.Ints(parties)
		workerLabel := func(party int) string {
			return `party="` + strconv.Itoa(party) + `"`
		}
		workerSeries := []struct {
			name, help string
			get        func(*WorkerAgg) float64
		}{
			{"mpcserve_worker_machine_rounds_total", "Machine-rounds executed by this party.", func(w *WorkerAgg) float64 { return float64(w.MachineRounds) }},
			{"mpcserve_worker_ops_total", "Simulated operations attributed to this party.", func(w *WorkerAgg) float64 { return float64(w.Ops) }},
			{"mpcserve_worker_comm_words_total", "Simulated communication (words) attributed to this party.", func(w *WorkerAgg) float64 { return float64(w.CommWords) }},
			{"mpcserve_worker_queue_wait_seconds_total", "Coordinator time spent waiting on this party at barriers.", func(w *WorkerAgg) float64 { return w.QueueWaitMs / 1000 }},
			{"mpcserve_worker_failures_total", "Injected faults observed on this party.", func(w *WorkerAgg) float64 { return float64(w.Failures) }},
			{"mpcserve_worker_retries_total", "Fault-recovery actions attributed to this party.", func(w *WorkerAgg) float64 { return float64(w.Retries) }},
			{"mpcserve_worker_wire_bytes_total", "Wire bytes on this party's link.", func(w *WorkerAgg) float64 { return float64(w.WireBytes) }},
		}
		for _, s := range workerSeries {
			p.header(s.name, s.help, "counter")
			for _, party := range parties {
				p.value(s.name, workerLabel(party), s.get(snap.Workers[party]))
			}
		}
	}

	return p.err
}
