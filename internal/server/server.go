// Package server exposes the repository's distance kernels — sequential,
// approximate, and MPC-simulated — as a batched, cached HTTP/JSON query
// service. It is stdlib-only, like the rest of the module.
//
// Endpoints:
//
//	POST /v1/distance    one pair, any algorithm; ?trace=1 attaches a
//	                     Chrome trace of the MPC run to the answer
//	POST /v1/batch       many pairs, fanned across the worker pool,
//	                     results streamed back as NDJSON in completion order
//	GET  /v1/algorithms  supported algorithm names
//	GET  /metrics        request counts, latency histograms, cache and pool
//	                     stats, per-algorithm MPC report aggregates —
//	                     Prometheus text exposition (?format=json for the
//	                     JSON snapshot)
//	GET  /healthz        liveness
//
// OpsHandler serves pprof and a metrics copy for a separate operator
// listener. Requests are tagged with X-Request-Id and logged through the
// configured slog.Logger.
//
// Robustness: a bounded worker pool shares the host's cores across
// requests, per-request timeouts propagate into the MPC simulator via
// context (cancellation is checked between rounds), input sizes are
// capped, handler panics are recovered to 500s, and repeated queries are
// served from an LRU cache keyed on (algorithm, input hash, parameters).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"time"

	"mpcdist"
	"mpcdist/internal/trace"
)

// Config parameterizes a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// PoolSize bounds concurrently executing kernels (0 = GOMAXPROCS).
	PoolSize int
	// CacheSize is the LRU capacity in answers (0 = 4096, negative = off).
	CacheSize int
	// RequestTimeout bounds one query's queue + compute time (0 = 30s).
	// Batch requests share a single timeout across all their queries.
	RequestTimeout time.Duration
	// MaxInputLen caps each input: bytes per string, elements per
	// sequence (0 = 1<<20).
	MaxInputLen int
	// MaxBatch caps the number of queries in one batch (0 = 1024).
	MaxBatch int
	// MaxBodyBytes caps a request body (0 = 64 MiB).
	MaxBodyBytes int64
	// Logger receives structured request and query logs (nil = discard).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxInputLen <= 0 {
		c.MaxInputLen = 1 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// Server is the HTTP query service. Construct with New.
type Server struct {
	cfg     Config
	pool    *Pool
	cache   *Cache
	metrics *Metrics
	mux     *http.ServeMux
	log     *slog.Logger
}

// New returns a server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    NewPool(cfg.PoolSize),
		cache:   NewCache(max(cfg.CacheSize, 0)),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
		log:     slogOrDiscard(cfg.Logger),
	}
	s.mux.HandleFunc("POST /v1/distance", s.handleDistance)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Handler returns the full middleware-wrapped handler: request-ID +
// access logging outermost (so a recovered panic still produces one
// access-log line with its request ID), panic recovery inside it.
func (s *Server) Handler() http.Handler {
	return s.logMiddleware(s.recoverMiddleware(s.mux))
}

// Metrics exposes the registry (for the binary's shutdown log and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// tooLargeError marks over-limit inputs that map to HTTP 413.
type tooLargeError struct{ msg string }

func (e tooLargeError) Error() string { return e.msg }

// statusFor maps an answer error to its HTTP status.
func statusFor(err error) int {
	var br badRequestError
	var tl tooLargeError
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.As(err, &tl):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// validate checks a query against the registry and limits, returning the
// resolved spec and MPC parameters.
func (s *Server) validate(q Query) (algoSpec, mpcdist.MPCParams, error) {
	spec, ok := algos[q.Algo]
	if !ok {
		return spec, mpcdist.MPCParams{}, badRequestf("unknown algorithm %q (see /v1/algorithms)", q.Algo)
	}
	if spec.Ints {
		if len(q.ASeq) > s.cfg.MaxInputLen || len(q.BSeq) > s.cfg.MaxInputLen {
			return spec, mpcdist.MPCParams{}, tooLargeError{msg: fmt.Sprintf(
				"sequence longer than the %d-element limit", s.cfg.MaxInputLen)}
		}
		// Reject repeats up front so every Ulam kernel sees valid input.
		for _, seq := range [][]int{q.ASeq, q.BSeq} {
			if err := mpcdist.CheckDistinct(seq); err != nil {
				return spec, mpcdist.MPCParams{}, badRequestError{msg: err.Error()}
			}
		}
	} else {
		if len(q.A) > s.cfg.MaxInputLen || len(q.B) > s.cfg.MaxInputLen {
			return spec, mpcdist.MPCParams{}, tooLargeError{msg: fmt.Sprintf(
				"string longer than the %d-byte limit", s.cfg.MaxInputLen)}
		}
	}
	p := mpcdist.MPCParams{X: q.X, Eps: q.Eps, Seed: q.Seed}
	if spec.MPC {
		if p.X == 0 {
			p.X = 0.25
		}
		if p.X <= 0 || p.X >= spec.MaxX {
			return spec, p, badRequestf("x = %v outside (0, %v) for algorithm %q", p.X, spec.MaxX, q.Algo)
		}
		if (spec.Ints && len(q.ASeq) == 0 && len(q.BSeq) == 0) ||
			(!spec.Ints && len(q.A) == 0 && len(q.B) == 0) {
			return spec, p, badRequestf("MPC algorithm %q requires non-empty input", q.Algo)
		}
	}
	return spec, p, nil
}

// answer resolves one query: validation, cache lookup, pooled compute.
// With wantTrace a Chrome trace observer is attached to the MPC run and
// the cache is bypassed both ways (a traced answer is never representative
// of, or reusable as, the plain one).
func (s *Server) answer(ctx context.Context, q Query, wantTrace bool) (Answer, error) {
	spec, params, err := s.validate(q)
	if err != nil {
		s.metrics.ObserveBadInput()
		return Answer{}, err
	}
	if wantTrace && !spec.MPC {
		s.metrics.ObserveBadInput()
		return Answer{}, badRequestf("trace=1 requires an MPC algorithm, %q runs sequentially", q.Algo)
	}
	var chrome *trace.Chrome
	if wantTrace {
		chrome = trace.NewChrome()
		params.Observer = chrome
	}

	key := q.CacheKey()
	start := time.Now()
	if !wantTrace {
		if a, ok := s.cache.Get(key); ok {
			a.Cached = true
			s.metrics.Observe(q.Algo, time.Since(start), true, false, nil)
			s.logQuery(ctx, q, &a, time.Since(start), nil)
			return a, nil
		}
	}

	var a Answer
	var runErr error
	poolErr := s.pool.Do(ctx, func() {
		a, runErr = spec.run(ctx, q, params)
	})
	elapsed := time.Since(start)
	if poolErr != nil {
		// Deadline or disconnect while queued: the kernel never ran.
		s.metrics.ObserveTimeout()
		s.logQuery(ctx, q, nil, elapsed, poolErr)
		return Answer{}, poolErr
	}
	if runErr != nil {
		if errors.Is(runErr, context.DeadlineExceeded) || errors.Is(runErr, context.Canceled) {
			s.metrics.ObserveTimeout()
		}
		s.metrics.Observe(q.Algo, elapsed, false, true, nil)
		s.logQuery(ctx, q, nil, elapsed, runErr)
		return Answer{}, runErr
	}
	a.ElapsedMs = float64(elapsed.Nanoseconds()) / 1e6
	if chrome != nil {
		raw, jerr := chrome.JSON()
		if jerr != nil {
			s.logQuery(ctx, q, nil, elapsed, jerr)
			return Answer{}, jerr
		}
		a.Trace = raw
	} else {
		s.cache.Put(key, a)
	}
	s.metrics.Observe(q.Algo, elapsed, false, false, a.Report)
	s.logQuery(ctx, q, &a, elapsed, nil)
	return a, nil
}

// logQuery emits one structured line per resolved query, carrying the
// middleware's request ID so batch sub-queries correlate with their
// request's access-log line.
func (s *Server) logQuery(ctx context.Context, q Query, a *Answer, elapsed time.Duration, err error) {
	attrs := []any{
		"requestId", RequestID(ctx),
		"algo", q.Algo,
		"durationMs", float64(elapsed.Nanoseconds()) / 1e6,
	}
	if err != nil {
		s.log.Error("query failed", append(attrs, "error", err.Error())...)
		return
	}
	attrs = append(attrs, "distance", a.Distance, "cached", a.Cached)
	if a.Report != nil {
		attrs = append(attrs, "rounds", a.Report.Rounds, "machines", a.Report.MaxMachines)
	}
	s.log.Info("query", attrs...)
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	var q Query
	if !s.decode(w, r, &q) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	a, err := s.answer(ctx, q, r.URL.Query().Get("trace") == "1")
	if err != nil {
		writeJSON(w, statusFor(err), ErrorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, a)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "empty batch"})
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusRequestEntityTooLarge, ErrorBody{Error: fmt.Sprintf(
			"batch of %d exceeds the %d-query limit", len(req.Queries), s.cfg.MaxBatch)})
		return
	}
	s.metrics.ObserveBatch()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Fan the queries across the pool; stream each line as it completes.
	// The pool (not the fan-out) bounds actual kernel concurrency.
	items := make(chan BatchItem)
	go func() {
		defer close(items)
		done := make(chan struct{}, len(req.Queries))
		for i, q := range req.Queries {
			go func(i int, q Query) {
				defer func() { done <- struct{}{} }()
				a, err := s.answer(ctx, q, false)
				if err != nil {
					items <- BatchItem{Index: i, Error: err.Error()}
					return
				}
				items <- BatchItem{Index: i, Answer: &a}
			}(i, q)
		}
		for range req.Queries {
			<-done
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for item := range items {
		if err := enc.Encode(item); err != nil {
			// Client went away; drain so the workers can finish.
			for range items {
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"algorithms": Algorithms()})
}

// handleMetrics serves Prometheus text exposition by default (what
// scrapers expect) and the original JSON snapshot at ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot()
	snap.Cache = s.cache.Stats()
	snap.Pool = s.pool.Stats()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", promContentType)
	w.WriteHeader(http.StatusOK)
	_ = writePrometheus(w, snap)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// decode reads a JSON body with the size cap applied; on failure it writes
// the error response and returns false.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		s.metrics.ObserveBadInput()
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, ErrorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
