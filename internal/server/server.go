// Package server exposes the repository's distance kernels — sequential,
// approximate, and MPC-simulated — as a batched, cached HTTP/JSON query
// service. It is stdlib-only, like the rest of the module.
//
// Endpoints:
//
//	POST /v1/distance    one pair, any algorithm; ?trace=1 attaches a
//	                     Chrome trace of the MPC run to the answer
//	POST /v1/batch       many pairs, fanned across the worker pool,
//	                     results streamed back as NDJSON in completion order
//	GET  /v1/algorithms  supported algorithm names
//	GET  /metrics        request counts, latency histograms, cache and pool
//	                     stats, per-algorithm MPC report aggregates —
//	                     Prometheus text exposition (?format=json for the
//	                     JSON snapshot)
//	GET  /healthz        liveness (the process is up)
//	GET  /readyz         readiness (503 while draining or overloaded)
//
// OpsHandler serves pprof and a metrics copy for a separate operator
// listener. Requests are tagged with X-Request-Id and logged through the
// configured slog.Logger.
//
// Robustness: a bounded worker pool shares the host's cores across
// requests, per-request timeouts propagate into the MPC simulator via
// context (cancellation is checked between rounds), input sizes are
// capped, handler panics are recovered to 500s, and repeated queries are
// served from an LRU cache keyed on (algorithm, input hash, parameters).
// Opt-in overload controls (Config.DegradeReserve / ShedQueue / ShedWait)
// add a degradation ladder — deadline-pressed exact queries fall back to a
// sequential approximation marked degraded:true, and saturated queues shed
// requests with 429 + Retry-After — and Config.Faults injects the
// deterministic fault schedule of internal/fault into MPC queries, whose
// recovered retries surface in Answer.Retries.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"mpcdist"
	"mpcdist/internal/buildinfo"
	"mpcdist/internal/checkpoint"
	"mpcdist/internal/dist"
	"mpcdist/internal/fault"
	"mpcdist/internal/trace"
)

// Config parameterizes a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// PoolSize bounds concurrently executing kernels (0 = GOMAXPROCS).
	PoolSize int
	// CacheSize is the LRU capacity in answers (0 = 4096, negative = off).
	CacheSize int
	// RequestTimeout bounds one query's queue + compute time (0 = 30s).
	// Batch requests share a single timeout across all their queries.
	RequestTimeout time.Duration
	// MaxInputLen caps each input: bytes per string, elements per
	// sequence (0 = 1<<20).
	MaxInputLen int
	// MaxBatch caps the number of queries in one batch (0 = 1024).
	MaxBatch int
	// MaxBodyBytes caps a request body (0 = 64 MiB).
	MaxBodyBytes int64
	// Logger receives structured request and query logs (nil = discard).
	Logger *slog.Logger

	// The remaining fields form the overload/degradation ladder; each is
	// opt-in (zero = off) so existing deployments keep strict
	// timeout-to-error behavior unless they ask for graceful degradation.

	// DegradeReserve, when > 0, reserves that slice of the request
	// deadline for a sequential fallback: the exact/MPC kernel runs
	// against a deadline shortened by the reserve, and if it runs out
	// while the request itself is still alive, the algorithm's degrade
	// kernel produces the answer, marked degraded:true (never cached).
	DegradeReserve time.Duration
	// ShedQueue, when > 0, sheds a request with 429 before queueing if at
	// least this many requests are already waiting for a pool slot. It is
	// also the readiness threshold: /readyz reports 503 while the queue is
	// at or past it.
	ShedQueue int
	// ShedWait, when > 0, bounds how long a request may wait for a pool
	// slot before being shed with 429 (load turning into queueing delay
	// rather than queue length).
	ShedWait time.Duration
	// RetryAfter is the value of the Retry-After header on 429 responses
	// (0 = 1s).
	RetryAfter time.Duration
	// Faults, when non-nil and active, injects the deterministic fault
	// schedule into every MPC query's cluster (see internal/fault); the
	// recovered retries surface in Answer.Retries and the
	// mpcserve_mpc_retries counters.
	Faults *fault.Plan
	// MaxRetries is the per-machine-round/per-message recovery budget for
	// MPC queries (0 = mpc.DefaultMaxRetries).
	MaxRetries int
	// Dist, when non-nil, routes MPC queries (edit-mpc, edit-hss,
	// ulam-mpc; not ?trace=1) to a distributed worker cluster instead of
	// the in-process simulator. Answers are bit-identical either way and
	// marked distributed:true; /metrics grows mpcserve_transport_* and
	// mpcserve_worker_* series. The degradation ladder does not apply to
	// cluster runs — their resilience story is the transport's own
	// mid-round reassignment.
	Dist DistRunner
	// Checkpoint, when non-nil, snapshots the rounds of batch-originated
	// MPC queries into the store, keyed by job-spec digest, and
	// auto-resumes: a restarted mpcserve receiving the same batch
	// fast-forwards completed rounds instead of recomputing them. Only
	// batch queries checkpoint — they are the long-running, retried-on-
	// restart workload; interactive /v1/distance queries are cheaper to
	// recompute than to persist. The mpcserve_checkpoint_* metrics series
	// record the seam's activity. (A distributed server's sessions carry
	// their own store; cmd/mpcserve wires the same one into both.)
	Checkpoint *checkpoint.Store
	// CheckpointEvery is the durable flush cadence in rounds (0 = 1).
	CheckpointEvery int
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxInputLen <= 0 {
		c.MaxInputLen = 1 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the HTTP query service. Construct with New.
type Server struct {
	cfg     Config
	pool    *Pool
	cache   *Cache
	metrics *Metrics
	mux     *http.ServeMux
	log     *slog.Logger
	// draining flips when graceful shutdown starts: /readyz reports 503 so
	// load balancers stop routing here while in-flight requests finish.
	draining atomic.Bool
}

// New returns a server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    NewPool(cfg.PoolSize),
		cache:   NewCache(max(cfg.CacheSize, 0)),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
		log:     slogOrDiscard(cfg.Logger),
	}
	s.mux.HandleFunc("POST /v1/distance", s.handleDistance)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	return s
}

// Handler returns the full middleware-wrapped handler: request-ID +
// access logging outermost (so a recovered panic still produces one
// access-log line with its request ID), panic recovery inside it.
func (s *Server) Handler() http.Handler {
	return s.logMiddleware(s.recoverMiddleware(s.mux))
}

// Metrics exposes the registry (for the binary's shutdown log and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// tooLargeError marks over-limit inputs that map to HTTP 413.
type tooLargeError struct{ msg string }

func (e tooLargeError) Error() string { return e.msg }

// statusFor maps an answer error to its HTTP status.
func statusFor(err error) int {
	var br badRequestError
	var tl tooLargeError
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.As(err, &tl):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeError renders an answer error; shed responses carry Retry-After so
// well-behaved clients back off instead of hammering an overloaded server.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusTooManyRequests {
		secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, ErrorBody{Error: err.Error()})
}

// validate checks a query against the registry and limits, returning the
// resolved spec and MPC parameters.
func (s *Server) validate(q Query) (algoSpec, mpcdist.MPCParams, error) {
	spec, ok := algos[q.Algo]
	if !ok {
		return spec, mpcdist.MPCParams{}, badRequestf("unknown algorithm %q (see /v1/algorithms)", q.Algo)
	}
	if spec.Ints {
		if len(q.ASeq) > s.cfg.MaxInputLen || len(q.BSeq) > s.cfg.MaxInputLen {
			return spec, mpcdist.MPCParams{}, tooLargeError{msg: fmt.Sprintf(
				"sequence longer than the %d-element limit", s.cfg.MaxInputLen)}
		}
		// Reject repeats up front so every Ulam kernel sees valid input.
		for _, seq := range [][]int{q.ASeq, q.BSeq} {
			if err := mpcdist.CheckDistinct(seq); err != nil {
				return spec, mpcdist.MPCParams{}, badRequestError{msg: err.Error()}
			}
		}
	} else {
		if len(q.A) > s.cfg.MaxInputLen || len(q.B) > s.cfg.MaxInputLen {
			return spec, mpcdist.MPCParams{}, tooLargeError{msg: fmt.Sprintf(
				"string longer than the %d-byte limit", s.cfg.MaxInputLen)}
		}
	}
	p := mpcdist.MPCParams{X: q.X, Eps: q.Eps, Seed: q.Seed}
	if spec.MPC {
		if p.X == 0 {
			p.X = 0.25
		}
		if p.X <= 0 || p.X >= spec.MaxX {
			return spec, p, badRequestf("x = %v outside (0, %v) for algorithm %q", p.X, spec.MaxX, q.Algo)
		}
		if (spec.Ints && len(q.ASeq) == 0 && len(q.BSeq) == 0) ||
			(!spec.Ints && len(q.A) == 0 && len(q.B) == 0) {
			return spec, p, badRequestf("MPC algorithm %q requires non-empty input", q.Algo)
		}
	}
	return spec, p, nil
}

// answer resolves one query: validation, cache lookup, pooled compute.
// With wantTrace a Chrome trace observer is attached to the MPC run and
// the cache is bypassed both ways (a traced answer is never representative
// of, or reusable as, the plain one). resumable marks batch-originated
// queries, the ones the checkpoint seam persists and auto-resumes.
func (s *Server) answer(ctx context.Context, q Query, wantTrace, resumable bool) (Answer, error) {
	spec, params, err := s.validate(q)
	if err != nil {
		s.metrics.ObserveBadInput()
		return Answer{}, err
	}
	if wantTrace && !spec.MPC {
		s.metrics.ObserveBadInput()
		return Answer{}, badRequestf("trace=1 requires an MPC algorithm, %q runs sequentially", q.Algo)
	}
	var chrome *trace.Chrome
	if wantTrace {
		chrome = trace.NewChrome()
		params.Observer = chrome
	}
	if spec.MPC {
		params.Faults = s.cfg.Faults
		params.MaxRetries = s.cfg.MaxRetries
	}

	key := q.CacheKey()
	start := time.Now()
	if !wantTrace {
		if a, ok := s.cache.Get(key); ok {
			a.Cached = true
			s.metrics.Observe(q.Algo, time.Since(start), true, false, nil)
			s.logQuery(ctx, q, &a, time.Since(start), nil)
			return a, nil
		}
	}

	// Queue-length shed: past the threshold, more queueing only adds
	// latency for everyone, so reject immediately with a Retry-After.
	if s.cfg.ShedQueue > 0 && s.pool.Waiting() >= int64(s.cfg.ShedQueue) {
		s.metrics.ObserveShed()
		s.logQuery(ctx, q, nil, time.Since(start), ErrOverloaded)
		return Answer{}, ErrOverloaded
	}

	var a Answer
	var runErr error
	poolErr := s.pool.DoWithin(ctx, s.cfg.ShedWait, func() {
		a, runErr = s.compute(ctx, spec, q, params, wantTrace, resumable)
	})
	elapsed := time.Since(start)
	if poolErr != nil {
		// Deadline, disconnect, or shed while queued: the kernel never ran.
		if errors.Is(poolErr, ErrOverloaded) {
			s.metrics.ObserveShed()
		} else {
			s.metrics.ObserveTimeout()
		}
		s.logQuery(ctx, q, nil, elapsed, poolErr)
		return Answer{}, poolErr
	}
	if runErr != nil {
		if errors.Is(runErr, context.DeadlineExceeded) || errors.Is(runErr, context.Canceled) {
			s.metrics.ObserveTimeout()
		}
		s.metrics.Observe(q.Algo, elapsed, false, true, nil)
		s.logQuery(ctx, q, nil, elapsed, runErr)
		return Answer{}, runErr
	}
	a.ElapsedMs = float64(elapsed.Nanoseconds()) / 1e6
	if chrome != nil {
		raw, jerr := chrome.JSON()
		if jerr != nil {
			s.logQuery(ctx, q, nil, elapsed, jerr)
			return Answer{}, jerr
		}
		a.Trace = raw
	} else if !a.Degraded {
		// A degraded answer is a deadline artifact, not the algorithm's
		// real output; caching it would serve the approximation to
		// unpressed future requests.
		s.cache.Put(key, a)
	}
	s.metrics.Observe(q.Algo, elapsed, false, false, a.Report)
	s.logQuery(ctx, q, &a, elapsed, nil)
	return a, nil
}

// compute runs the kernel inside a pool slot, applying the degradation
// ladder: with a DegradeReserve configured and a fallback available, the
// exact kernel gets the request deadline minus the reserve; if it runs out
// while the request itself is still alive, the sequential fallback answers
// within the reserved slice, marked degraded.
func (s *Server) compute(ctx context.Context, spec algoSpec, q Query, params mpcdist.MPCParams, wantTrace, resumable bool) (Answer, error) {
	// Cluster routing: with a distributed session attached, eligible MPC
	// queries run across the real worker processes. Traced queries stay
	// in-process (the trace observer wants this process's event stream),
	// and the degradation ladder is bypassed — a cluster run recovers from
	// worker loss by reassignment, not by a sequential fallback.
	if s.cfg.Dist != nil && spec.distAlgo != "" && !wantTrace {
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		res, err := s.cfg.Dist.Run(spec.distAlgo, []byte(q.A), []byte(q.B), q.ASeq, q.BSeq, params)
		if err != nil {
			return Answer{}, err
		}
		a := mpcAnswer(q.Algo, res)
		a.Distributed = true
		return a, nil
	}
	// Checkpoint seam for in-process batch MPC queries: persist rounds and
	// auto-resume, so re-submitting a batch after a server restart
	// fast-forwards what already ran instead of recomputing it.
	if resumable && spec.MPC && s.cfg.Checkpoint != nil && !wantTrace {
		saver, err := s.openSaver(q, params)
		if err != nil {
			// A broken store must not take the serving path down: log, run
			// without durability, and let the operator ckpt-verify the store.
			s.log.Error("checkpoint store unusable, computing without durability",
				"algo", q.Algo, "error", err.Error())
		} else {
			params.Checkpointer = saver
			a, err := spec.run(ctx, q, params)
			if err == nil {
				if ferr := saver.Flush(); ferr != nil {
					return Answer{}, ferr
				}
				_, resumed, _ := saver.Counters()
				s.metrics.ObserveCheckpointResume(resumed)
				a.ResumedRounds = resumed
			}
			return a, err
		}
	}
	runCtx := ctx
	canDegrade := spec.degrade != nil && s.cfg.DegradeReserve > 0 && !wantTrace
	if canDegrade {
		dl, ok := ctx.Deadline()
		if !ok {
			canDegrade = false // no deadline pressure, nothing to reserve
		} else if reduced := dl.Add(-s.cfg.DegradeReserve); reduced.After(time.Now()) {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithDeadline(ctx, reduced)
			defer cancel()
		}
		// When the reserve swallows the whole remaining deadline, the
		// exact kernel keeps runCtx == ctx (already nearly expired) and
		// the fallback still fires below.
	}
	a, err := spec.run(runCtx, q, params)
	if err != nil && canDegrade && ctx.Err() == nil &&
		(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
		// The exact kernel ran out of its reduced deadline but the request
		// is still alive: answer from the fallback within the reserve.
		a, err = spec.degrade(q, params)
		if err == nil {
			a.Degraded = true
			s.metrics.ObserveDegraded()
			// A degraded answer means the exact kernel missed its deadline —
			// exactly the situation the flight recorder's retained window
			// (straggling rounds, queue waits, faults) exists to explain.
			trace.FlightTrigger("server: degraded fallback (" + q.Algo + ")")
		}
	}
	return a, err
}

// openSaver builds a batch query's job-keyed saver, auto-resuming any
// durable prefix. Unusable prior state (torn manifest, corrupt blob,
// diverged algorithm) falls back to restarting the job's checkpoint from
// scratch — the store heals on the next flush — so only a store that
// cannot be opened fresh surfaces as an error.
func (s *Server) openSaver(q Query, params mpcdist.MPCParams) (*checkpoint.Saver, error) {
	name := q.Algo
	if spec := algos[q.Algo]; spec.distAlgo != "" {
		name = spec.distAlgo
	}
	job := dist.FromParams(name, params)
	job.S, job.T, job.P, job.Q = []byte(q.A), []byte(q.B), q.ASeq, q.BSeq
	digest, err := job.SpecDigest()
	if err != nil {
		return nil, err
	}
	opts := checkpoint.SaverOptions{
		Every:    s.cfg.CheckpointEvery,
		Resume:   true,
		Revision: buildinfo.Revision(),
		OnFlush:  s.metrics.ObserveCheckpointFlush,
	}
	saver, err := checkpoint.NewSaver(s.cfg.Checkpoint, digest, name, opts)
	if err != nil {
		s.log.Warn("checkpoint resume unusable, restarting job state",
			"algo", q.Algo, "error", err.Error())
		opts.Resume = false
		saver, err = checkpoint.NewSaver(s.cfg.Checkpoint, digest, name, opts)
	}
	return saver, err
}

// logQuery emits one structured line per resolved query, carrying the
// middleware's request ID so batch sub-queries correlate with their
// request's access-log line.
func (s *Server) logQuery(ctx context.Context, q Query, a *Answer, elapsed time.Duration, err error) {
	attrs := []any{
		"requestId", RequestID(ctx),
		"algo", q.Algo,
		"durationMs", float64(elapsed.Nanoseconds()) / 1e6,
	}
	if err != nil {
		s.log.Error("query failed", append(attrs, "error", err.Error())...)
		return
	}
	attrs = append(attrs, "distance", a.Distance, "cached", a.Cached)
	if a.Report != nil {
		attrs = append(attrs, "rounds", a.Report.Rounds, "machines", a.Report.MaxMachines)
	}
	s.log.Info("query", attrs...)
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	var q Query
	if !s.decode(w, r, &q) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	a, err := s.answer(ctx, q, r.URL.Query().Get("trace") == "1", false)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, a)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "empty batch"})
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusRequestEntityTooLarge, ErrorBody{Error: fmt.Sprintf(
			"batch of %d exceeds the %d-query limit", len(req.Queries), s.cfg.MaxBatch)})
		return
	}
	s.metrics.ObserveBatch()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Fan the queries across the pool; stream each line as it completes.
	// The pool (not the fan-out) bounds actual kernel concurrency.
	items := make(chan BatchItem)
	go func() {
		defer close(items)
		done := make(chan struct{}, len(req.Queries))
		for i, q := range req.Queries {
			go func(i int, q Query) {
				defer func() { done <- struct{}{} }()
				a, err := s.answer(ctx, q, false, true)
				if err != nil {
					items <- BatchItem{Index: i, Error: err.Error()}
					return
				}
				items <- BatchItem{Index: i, Answer: &a}
			}(i, q)
		}
		for range req.Queries {
			<-done
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for item := range items {
		if err := enc.Encode(item); err != nil {
			// Client went away; drain so the workers can finish.
			for range items {
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"algorithms": Algorithms()})
}

// handleMetrics serves Prometheus text exposition by default (what
// scrapers expect) and the original JSON snapshot at ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot()
	snap.Cache = s.cache.Stats()
	snap.Pool = s.pool.Stats()
	if s.cfg.Dist != nil {
		snap.Transport = transportJSON(s.cfg.Dist.Status())
	}
	if s.cfg.Checkpoint != nil {
		if snap.Checkpoint == nil {
			snap.Checkpoint = &CheckpointSnap{}
		}
		ss := s.cfg.Checkpoint.Stats()
		snap.Checkpoint.StoreBlobs, snap.Checkpoint.StoreBytes = ss.Blobs, ss.Bytes
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", promContentType)
	w.WriteHeader(http.StatusOK)
	_ = writePrometheus(w, snap)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe: liveness (/healthz) says the process
// is up, readiness says it should receive traffic. Not ready while
// draining (graceful shutdown) or while the pool queue is saturated past
// the shed threshold.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.cfg.ShedQueue > 0 && s.pool.Waiting() >= int64(s.cfg.ShedQueue):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "overloaded"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}
}

// SetDraining flips the readiness probe: call with true when graceful
// shutdown begins so load balancers stop routing new requests here while
// in-flight ones finish. Liveness (/healthz) is unaffected.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// decode reads a JSON body with the size cap applied; on failure it writes
// the error response and returns false.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		s.metrics.ObserveBadInput()
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, ErrorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
