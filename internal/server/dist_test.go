package server

import (
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpcdist"
	"mpcdist/internal/mpc"
	"mpcdist/internal/transport"
)

// fakeDist is a canned DistRunner: it returns a fixed result with
// per-worker rows and counts how often the server routed to it.
type fakeDist struct {
	calls atomic.Int64
	res   mpcdist.MPCResult
}

func (f *fakeDist) Run(algo string, s, t []byte, p, q []int, params mpcdist.MPCParams) (mpcdist.MPCResult, error) {
	f.calls.Add(1)
	return f.res, nil
}

func (f *fakeDist) Status() transport.Status {
	return transport.Status{
		Role:    "coordinator",
		Parties: 4,
		Self:    0,
		Seq:     17,
		Alive:   4,
		Wire:    transport.Stats{BytesOut: 4096, BytesIn: 2048, Frames: 12, Exchanges: 5, Reconnects: 2, CorruptFrames: 7},
		Peers: []transport.PeerStatus{
			{Party: 1, Alive: true, BytesIn: 700, BytesOut: 1400, Frames: 4, RTTP99Ms: 0.25, Reconnects: 2, CorruptFrames: 7},
			{Party: 2, Alive: true, BytesIn: 650, BytesOut: 1300, Frames: 4, RTTP99Ms: 0.5},
			{Party: 3, Alive: false, BytesIn: 600, BytesOut: 1200, Frames: 4},
		},
	}
}

func newFakeDist() *fakeDist {
	return &fakeDist{res: mpcdist.MPCResult{
		Value: 4,
		Report: mpc.Report{
			NumRounds:   3,
			MaxMachines: 8,
			MaxWords:    64,
			TotalOps:    1000,
			CriticalOps: 400,
			CommWords:   256,
			Workers: []mpc.WorkerStats{
				{Party: 0, MachineRounds: 6, Ops: 300, CommWords: 96, QueueWait: 2 * time.Millisecond},
				{Party: 1, MachineRounds: 5, Ops: 250, CommWords: 80, WireBytes: 2100},
				{Party: 2, MachineRounds: 5, Ops: 250, CommWords: 80, WireBytes: 1950, Retries: 1},
				{Party: 3, MachineRounds: 4, Ops: 200, CommWords: 0, WireBytes: 1800},
			},
		},
	}}
}

func TestDistributedRouting(t *testing.T) {
	fake := newFakeDist()
	ts := newTestServer(t, Config{Dist: fake})

	a := decodeAnswer(t, post(t, ts.URL+"/v1/distance",
		Query{Algo: "ulam-mpc", ASeq: []int{1, 2, 3, 4}, BSeq: []int{4, 3, 2, 1}}))
	if !a.Distributed {
		t.Fatal("cluster-routed answer not marked distributed")
	}
	if a.Distance != 4 {
		t.Fatalf("distance = %d, want the cluster's 4", a.Distance)
	}
	if got := fake.calls.Load(); got != 1 {
		t.Fatalf("DistRunner.Run called %d times, want 1", got)
	}
	if a.Report == nil || len(a.Report.Workers) != 4 {
		t.Fatalf("answer report workers = %+v, want 4 rows", a.Report)
	}
	w2 := a.Report.Workers[2]
	if w2.Party != 2 || w2.WireBytes != 1950 || w2.Retries != 1 {
		t.Fatalf("worker row 2 = %+v, want party 2 wireBytes 1950 retries 1", w2)
	}

	// Sequential algorithms never touch the cluster.
	b := decodeAnswer(t, post(t, ts.URL+"/v1/distance",
		Query{Algo: "edit", A: "kitten", B: "sitting"}))
	if b.Distributed || fake.calls.Load() != 1 {
		t.Fatalf("sequential query routed to the cluster (distributed=%v calls=%d)",
			b.Distributed, fake.calls.Load())
	}

	// Trace queries need the in-process observer, so they bypass the
	// cluster too and still return a trace.
	c := decodeAnswer(t, post(t, ts.URL+"/v1/distance?trace=1",
		Query{Algo: "ulam-mpc", ASeq: []int{3, 1, 2}, BSeq: []int{1, 2, 3}}))
	if c.Distributed || fake.calls.Load() != 1 {
		t.Fatalf("trace query routed to the cluster (distributed=%v calls=%d)",
			c.Distributed, fake.calls.Load())
	}
	if len(c.Trace) == 0 {
		t.Fatal("trace query returned no trace")
	}
}

func TestDistributedMetrics(t *testing.T) {
	fake := newFakeDist()
	ts := newTestServer(t, Config{Dist: fake})

	decodeAnswer(t, post(t, ts.URL+"/v1/distance",
		Query{Algo: "ulam-mpc", ASeq: []int{1, 2, 3, 4}, BSeq: []int{4, 3, 2, 1}}))

	snap := metricsSnapshot(t, ts.URL)
	if snap.Transport == nil {
		t.Fatal("snapshot missing transport section")
	}
	if snap.Transport.Workers != 3 || snap.Transport.Alive != 4 {
		t.Fatalf("transport = %+v, want 3 workers / 4 alive", snap.Transport)
	}
	if snap.Transport.Wire.BytesOut != 4096 || len(snap.Transport.Peers) != 3 {
		t.Fatalf("transport wire/peers = %+v", snap.Transport)
	}
	if len(snap.Workers) != 4 {
		t.Fatalf("snapshot workers = %+v, want 4 parties", snap.Workers)
	}
	if wa := snap.Workers[1]; wa == nil || wa.MachineRounds != 5 || wa.WireBytes != 2100 {
		t.Fatalf("worker 1 aggregate = %+v", snap.Workers[1])
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"mpcserve_transport_workers 3",
		"mpcserve_transport_alive 4",
		"mpcserve_transport_bytes_out_total 4096",
		`mpcserve_transport_peer_alive{party="3"} 0`,
		`mpcserve_transport_peer_rtt_p99_seconds{party="2"} 0.0005`,
		"mpcserve_transport_reconnects_total 2",
		"mpcserve_transport_corrupt_frames_total 7",
		`mpcserve_transport_peer_reconnects_total{party="1"} 2`,
		`mpcserve_transport_peer_corrupt_frames_total{party="1"} 7`,
		`mpcserve_worker_machine_rounds_total{party="0"} 6`,
		`mpcserve_worker_wire_bytes_total{party="2"} 1950`,
		`mpcserve_worker_retries_total{party="2"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	// Local servers expose neither section.
	ts2 := newTestServer(t, Config{})
	snap2 := metricsSnapshot(t, ts2.URL)
	if snap2.Transport != nil || snap2.Workers != nil {
		t.Fatalf("local server snapshot has cluster sections: %+v %+v", snap2.Transport, snap2.Workers)
	}
}
