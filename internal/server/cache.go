package server

import (
	"container/list"
	"sync"
)

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	Capacity  int    `json:"capacity"`
	Size      int    `json:"size"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Cache is a thread-safe LRU result cache keyed on the canonical query
// fingerprint (algorithm, input hash, parameters). A capacity of zero
// disables caching: every Get misses and Put is a no-op.
type Cache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	val Answer
}

// NewCache returns an LRU cache holding up to capacity answers.
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached answer for key, marking it most recently used.
func (c *Cache) Get(key string) (Answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return Answer{}, false
}

// Put stores an answer, evicting the least recently used entry when full.
func (c *Cache) Put(key string, val Answer) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:  c.cap,
		Size:      c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
