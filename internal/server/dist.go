package server

import (
	"mpcdist"
	"mpcdist/internal/transport"
)

// DistRunner is the seam through which the server routes MPC queries to a
// distributed cluster instead of the in-process simulator. cmd/mpcserve
// adapts internal/dist.Session to it when started with -transport tcp;
// tests substitute fakes. Implementations serialize jobs internally (a
// session runs one at a time), so concurrent pool workers may call Run.
type DistRunner interface {
	// Run executes one MPC job across the cluster. algo is the distributed
	// job name ("edit-mpc", "edit-hss", "ulam-mpc"); s/t are the string
	// inputs and p/q the integer sequences, exactly one pair non-nil.
	Run(algo string, s, t []byte, p, q []int, params mpcdist.MPCParams) (mpcdist.MPCResult, error)
	// Status snapshots the live transport view of the session — worker
	// liveness, wire counters, per-peer heartbeat RTT — for the metrics
	// endpoint. Must be safe to call from any goroutine.
	Status() transport.Status
}

// TransportJSON is the cluster-transport section of the metrics snapshot,
// filled at scrape time from the live session (gauge semantics, like the
// pool and cache sections). Present only when the server runs distributed.
type TransportJSON struct {
	Workers int                    `json:"workers"` // spawned worker processes
	Alive   int                    `json:"alive"`   // live parties, coordinator included
	Wire    transport.Stats        `json:"wire"`
	Peers   []transport.PeerStatus `json:"peers"`
}

// transportJSON shapes a live status snapshot for the metrics endpoint.
func transportJSON(st transport.Status) *TransportJSON {
	return &TransportJSON{
		Workers: st.Parties - 1,
		Alive:   st.Alive,
		Wire:    st.Wire,
		Peers:   st.Peers,
	}
}
