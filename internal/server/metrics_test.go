package server

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucket assignment rule: an
// observation exactly at an upper bound belongs to that bucket (ms <= ub),
// and anything beyond the last bound lands in the implicit +Inf bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram()
	if len(h.Buckets) != len(latencyBuckets)+1 {
		t.Fatalf("bucket count = %d, want %d (+Inf included)", len(h.Buckets), len(latencyBuckets)+1)
	}
	// One observation exactly at every upper bound...
	for _, ub := range latencyBuckets {
		h.observe(ub)
	}
	for i, ub := range latencyBuckets {
		if h.Buckets[i] != 1 {
			t.Errorf("bucket[%d] (ub=%v) = %d, want 1 — boundary value must land in its own bucket", i, ub, h.Buckets[i])
		}
	}
	if inf := h.Buckets[len(latencyBuckets)]; inf != 0 {
		t.Errorf("+Inf bucket = %d, want 0 before any overflow", inf)
	}

	// ...then overflow past the last bound.
	last := latencyBuckets[len(latencyBuckets)-1]
	h.observe(last + 0.001)
	h.observe(1e9)
	if inf := h.Buckets[len(latencyBuckets)]; inf != 2 {
		t.Errorf("+Inf bucket = %d, want 2", inf)
	}
	if h.Count != uint64(len(latencyBuckets))+2 {
		t.Errorf("count = %d, want %d", h.Count, len(latencyBuckets)+2)
	}
	if h.MaxMs != 1e9 {
		t.Errorf("max = %v, want 1e9", h.MaxMs)
	}

	// A value just above a bound belongs to the next bucket.
	h2 := newHistogram()
	h2.observe(latencyBuckets[0] + 1e-9)
	if h2.Buckets[0] != 0 || h2.Buckets[1] != 1 {
		t.Errorf("just-above-bound observation: buckets[0]=%d buckets[1]=%d, want 0, 1", h2.Buckets[0], h2.Buckets[1])
	}
}

// TestHistogramCloneIsDeep ensures a clone does not share bucket storage
// with the live histogram — the snapshot path depends on it.
func TestHistogramCloneIsDeep(t *testing.T) {
	h := newHistogram()
	h.observe(0.05)
	c := h.clone()
	h.observe(0.05)
	if c.Buckets[0] != 1 {
		t.Errorf("clone bucket mutated through the original: %d, want 1", c.Buckets[0])
	}
	if h.Buckets[0] != 2 {
		t.Errorf("original bucket = %d, want 2", h.Buckets[0])
	}
}

// TestMetricsConcurrentObserveSnapshot drives Observe and Snapshot from
// racing goroutines; under -race this is the registry's thread-safety
// check, and the final snapshot must account for every observation.
func TestMetricsConcurrentObserveSnapshot(t *testing.T) {
	m := NewMetrics()
	const goroutines, each = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				// Mix boundary and overflow values across racing writers.
				ms := latencyBuckets[i%len(latencyBuckets)]
				m.Observe("edit-mpc", time.Duration(ms*float64(time.Millisecond)), i%3 == 0, false, nil)
				if i%17 == 0 {
					snap := m.Snapshot()
					// Read through the clone to catch shared storage.
					if st := snap.Algorithms["edit-mpc"]; st != nil {
						_ = st.Latency.Buckets[0]
					}
				}
			}
		}(g)
	}
	wg.Wait()
	snap := m.Snapshot()
	st := snap.Algorithms["edit-mpc"]
	if st == nil {
		t.Fatal("no edit-mpc stats")
	}
	if want := uint64(goroutines * each); st.Requests != want || st.Latency.Count != want {
		t.Errorf("requests=%d latencyCount=%d, want %d", st.Requests, st.Latency.Count, want)
	}
	var sum uint64
	for _, n := range st.Latency.Buckets {
		sum += n
	}
	if sum != st.Latency.Count {
		t.Errorf("bucket sum %d != count %d", sum, st.Latency.Count)
	}
}
