package server

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mpcdist"
	"mpcdist/internal/fault"
)

// robustServer builds a Server plus its httptest listener, keeping the
// *Server handle so tests can reach the pool and the draining switch.
func robustServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// occupyPool fills every slot of the server's pool with blocked work and
// returns a release function. It waits until the work is actually running.
func occupyPool(t *testing.T, srv *Server, slots int) (release func()) {
	t.Helper()
	block := make(chan struct{})
	running := make(chan struct{}, slots)
	for i := 0; i < slots; i++ {
		go func() {
			_ = srv.pool.Do(context.Background(), func() {
				running <- struct{}{}
				<-block
			})
		}()
	}
	for i := 0; i < slots; i++ {
		select {
		case <-running:
		case <-time.After(5 * time.Second):
			t.Fatal("pool occupant did not start")
		}
	}
	return func() { close(block) }
}

func getStatus(t *testing.T, url string) (int, map[string]string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body
}

// TestShedQueueLength checks the queue-length shed: with the pool busy and
// the queue at the threshold, new queries get 429 + Retry-After instead of
// piling more latency onto everyone, and /readyz flips to overloaded.
func TestShedQueueLength(t *testing.T) {
	srv, ts := robustServer(t, Config{
		PoolSize:   1,
		CacheSize:  -1,
		ShedQueue:  1,
		RetryAfter: 2 * time.Second,
	})
	release := occupyPool(t, srv, 1)
	defer release()

	// One caller queued brings Waiting to the threshold.
	queued := make(chan struct{})
	qctx, qcancel := context.WithCancel(context.Background())
	defer qcancel()
	go func() {
		close(queued)
		_ = srv.pool.Do(qctx, func() {})
	}()
	<-queued
	deadline := time.Now().Add(5 * time.Second)
	for srv.pool.Waiting() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued caller never registered")
		}
		time.Sleep(time.Millisecond)
	}

	resp := post(t, ts.URL+"/v1/distance", Query{Algo: "edit", A: "kitten", B: "sitting"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, b)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	var e ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("429 body not an error envelope: %v / %+v", err, e)
	}

	if code, body := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || body["status"] != "overloaded" {
		t.Errorf("/readyz while saturated = %d %v, want 503 overloaded", code, body)
	}
	if snap := metricsSnapshot(t, ts.URL); snap.Shed < 1 {
		t.Errorf("metrics shed = %d, want >= 1", snap.Shed)
	}

	// Draining the queue restores readiness.
	qcancel()
	for srv.pool.Waiting() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if code, body := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("/readyz after drain = %d %v, want 200 ok", code, body)
	}
}

// TestShedWaitBudget checks the queue-wait budget: a request that cannot
// get a slot within ShedWait is shed with 429 rather than waiting out the
// full request timeout.
func TestShedWaitBudget(t *testing.T) {
	srv, ts := robustServer(t, Config{
		PoolSize:       1,
		CacheSize:      -1,
		ShedWait:       20 * time.Millisecond,
		RequestTimeout: 10 * time.Second,
	})
	release := occupyPool(t, srv, 1)
	defer release()

	start := time.Now()
	resp := post(t, ts.URL+"/v1/distance", Query{Algo: "edit", A: "abc", B: "abd"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("shed took %v; the budget should cut the wait to ~20ms", d)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	snap := metricsSnapshot(t, ts.URL)
	if snap.Shed < 1 || snap.Pool.Shed < 1 {
		t.Errorf("shed counters = server %d pool %d, want both >= 1", snap.Shed, snap.Pool.Shed)
	}
}

// TestDegradedFallback checks the degradation ladder: an MPC query whose
// reserve-reduced deadline expires is answered by the sequential fallback,
// marked degraded, not cached, and counted in the metrics.
func TestDegradedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 4000
	aSeq := rng.Perm(n)
	bSeq := rng.Perm(n)
	want, err := mpcdist.UlamDistanceE(aSeq, bSeq)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := robustServer(t, Config{
		RequestTimeout: 300 * time.Millisecond,
		DegradeReserve: 299 * time.Millisecond, // exact kernel gets ~1ms
	})
	q := Query{Algo: "ulam-mpc", ASeq: aSeq, BSeq: bSeq, X: 0.3, Seed: 4}
	for i := 0; i < 2; i++ {
		a := decodeAnswer(t, post(t, ts.URL+"/v1/distance", q))
		if !a.Degraded {
			t.Fatalf("request %d: kernel beat a ~1ms deadline on n=%d; answer not degraded: %+v", i, n, a)
		}
		if a.Distance != want {
			t.Errorf("degraded distance = %d, want sequential %d", a.Distance, want)
		}
		if a.Cached {
			t.Error("degraded answer served from cache; degraded answers must not be cached")
		}
	}
	snap := metricsSnapshot(t, ts.URL)
	if snap.Degraded < 2 {
		t.Errorf("metrics degraded = %d, want >= 2", snap.Degraded)
	}
	if st := snap.Algorithms["ulam-mpc"]; st == nil || st.CacheHits != 0 {
		t.Errorf("degraded answers produced cache hits: %+v", st)
	}
}

// TestReadyzDraining checks the liveness/readiness split: draining flips
// /readyz to 503 while /healthz keeps answering 200.
func TestReadyzDraining(t *testing.T) {
	srv, ts := robustServer(t, Config{})
	if code, body := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("/readyz = %d %v, want 200 ok", code, body)
	}
	srv.SetDraining(true)
	if code, body := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Errorf("/readyz while draining = %d %v, want 503 draining", code, body)
	}
	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz while draining = %d, want 200 (liveness is not readiness)", code)
	}
	srv.SetDraining(false)
	if code, _ := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after drain ends = %d, want 200", code)
	}
}

// TestServerFaultInjection checks a server configured with a fault plan
// still answers MPC queries exactly (recovery is bit-identical), surfaces
// the recovery work in Answer.Retries and the report, and exports the
// fault counters on /metrics.
func TestServerFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 500
	aSeq := rng.Perm(n)
	bSeq := append([]int(nil), aSeq...)
	for k := 0; k < 12; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		bSeq[i], bSeq[j] = bSeq[j], bSeq[i]
	}
	q := Query{Algo: "ulam-mpc", ASeq: aSeq, BSeq: bSeq, X: 0.3, Seed: 4}

	_, plain := robustServer(t, Config{})
	ref := decodeAnswer(t, post(t, plain.URL+"/v1/distance", q))
	if ref.Retries != 0 {
		t.Fatalf("fault-free server reported retries=%d", ref.Retries)
	}

	_, faulty := robustServer(t, Config{
		Faults:     &fault.Plan{Seed: 11, Crash: 0.05, Drop: 0.05, Dup: 0.05},
		MaxRetries: 20,
	})
	a := decodeAnswer(t, post(t, faulty.URL+"/v1/distance", q))
	if a.Distance != ref.Distance {
		t.Errorf("faulted distance = %d, fault-free %d; recovery must be exact", a.Distance, ref.Distance)
	}
	if a.Retries == 0 || a.Report == nil || a.Report.Failures == 0 {
		t.Fatalf("fault plan injected nothing (retries=%d report=%+v); the test is vacuous", a.Retries, a.Report)
	}
	if a.Report.TotalOps != ref.Report.TotalOps || a.Report.CommWords != ref.Report.CommWords {
		t.Errorf("model counters drifted under faults: %+v vs %+v", a.Report, ref.Report)
	}

	resp, err := http.Get(faulty.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, series := range []string{
		`mpcserve_mpc_failures_total{algo="ulam-mpc"}`,
		`mpcserve_mpc_retries_total{algo="ulam-mpc"}`,
		"mpcserve_degraded_total 0",
		"mpcserve_shed_total 0",
	} {
		if !strings.Contains(string(text), series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}
