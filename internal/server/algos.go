package server

import (
	"context"
	"fmt"
	"sort"

	"mpcdist"
)

// badRequestError marks client-side failures (unknown algorithm, invalid
// parameters, malformed input) that map to HTTP 400.
type badRequestError struct{ msg string }

func (e badRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return badRequestError{msg: fmt.Sprintf(format, args...)}
}

// algoSpec describes one queryable kernel.
type algoSpec struct {
	// Ints means the algorithm consumes ASeq/BSeq (distinct integers)
	// rather than the A/B strings.
	Ints bool
	// MPC means the algorithm runs on the simulated cluster; its X
	// parameter is validated against MaxX and the answer carries a Report.
	MPC bool
	// MaxX is the exclusive upper bound of the valid exponent range
	// (MPC algorithms only); Theorem 9 allows X = 5/17 itself, the slack
	// mirrors core's validation.
	MaxX float64
	// distAlgo, when non-empty, is the distributed job name: with a
	// Config.Dist session attached, non-trace queries for this algorithm
	// run across the worker cluster instead of in-process. The results are
	// bit-identical either way (the TCP parity suite enforces it).
	distAlgo string
	run      func(ctx context.Context, q Query, p mpcdist.MPCParams) (Answer, error)
	// degrade, when set, is the sequential fallback the degradation ladder
	// runs if the exact kernel exhausts its (reserve-reduced) deadline: a
	// cheap kernel answering the same question approximately (or exactly
	// but sequentially). The caller marks the result Degraded.
	degrade func(q Query, p mpcdist.MPCParams) (Answer, error)
}

const (
	maxXHalf = 0.5
	maxXEdit = 5.0/17 + 1e-9
)

func seqAnswer(algo, regime string, d int) Answer {
	return Answer{Algo: algo, Distance: d, Regime: regime}
}

func mpcAnswer(algo string, res mpcdist.MPCResult) Answer {
	return Answer{
		Algo:     algo,
		Distance: res.Value,
		Regime:   res.Regime,
		Guess:    res.Guess,
		Retries:  res.Report.Retries,
		Report:   reportJSON(res.Report),
	}
}

// Sequential fallbacks for the degradation ladder. Each answers the MPC
// algorithm's question without the cluster: exact for Ulam/LCS (the
// sequential kernels are fast), the seeded approximation for edit
// distance.
func degradeUlam(q Query, _ mpcdist.MPCParams) (Answer, error) {
	d, err := mpcdist.UlamDistanceE(q.ASeq, q.BSeq)
	if err != nil {
		return Answer{}, badRequestError{msg: err.Error()}
	}
	return seqAnswer("ulam-mpc", "", d), nil
}

func degradeEdit(algo string) func(q Query, p mpcdist.MPCParams) (Answer, error) {
	return func(q Query, p mpcdist.MPCParams) (Answer, error) {
		return seqAnswer(algo, "", mpcdist.ApproxEditDistance([]byte(q.A), []byte(q.B), p.Eps, p.Seed, nil)), nil
	}
}

func degradeLCS(q Query, _ mpcdist.MPCParams) (Answer, error) {
	return seqAnswer("lcs-mpc", "", mpcdist.LCSLength([]byte(q.A), []byte(q.B), nil)), nil
}

// algos is the kernel registry: every supported value of Query.Algo.
var algos = map[string]algoSpec{
	"edit": {run: func(_ context.Context, q Query, _ mpcdist.MPCParams) (Answer, error) {
		return seqAnswer("edit", "", mpcdist.EditDistanceBytes([]byte(q.A), []byte(q.B), nil)), nil
	}},
	"edit-myers": {run: func(_ context.Context, q Query, _ mpcdist.MPCParams) (Answer, error) {
		return seqAnswer("edit-myers", "", mpcdist.EditDistanceFast([]byte(q.A), []byte(q.B), nil)), nil
	}},
	"edit-diagonal": {run: func(_ context.Context, q Query, _ mpcdist.MPCParams) (Answer, error) {
		return seqAnswer("edit-diagonal", "", mpcdist.EditDistanceDiagonal([]byte(q.A), []byte(q.B), nil)), nil
	}},
	"edit-bounded": {run: func(_ context.Context, q Query, _ mpcdist.MPCParams) (Answer, error) {
		if q.Bound < 0 {
			return Answer{}, badRequestf("bound must be >= 0, got %d", q.Bound)
		}
		return seqAnswer("edit-bounded", "", mpcdist.EditDistanceBounded([]byte(q.A), []byte(q.B), q.Bound, nil)), nil
	}},
	"edit-approx": {run: func(_ context.Context, q Query, p mpcdist.MPCParams) (Answer, error) {
		return seqAnswer("edit-approx", "", mpcdist.ApproxEditDistance([]byte(q.A), []byte(q.B), p.Eps, p.Seed, nil)), nil
	}},
	"lcs": {run: func(_ context.Context, q Query, _ mpcdist.MPCParams) (Answer, error) {
		return seqAnswer("lcs", "", mpcdist.LCSLength([]byte(q.A), []byte(q.B), nil)), nil
	}},
	"indel": {run: func(_ context.Context, q Query, _ mpcdist.MPCParams) (Answer, error) {
		return seqAnswer("indel", "", mpcdist.IndelDistance([]byte(q.A), []byte(q.B), nil)), nil
	}},
	"ulam": {Ints: true, run: func(_ context.Context, q Query, _ mpcdist.MPCParams) (Answer, error) {
		d, err := mpcdist.UlamDistanceE(q.ASeq, q.BSeq)
		if err != nil {
			return Answer{}, badRequestError{msg: err.Error()}
		}
		return seqAnswer("ulam", "", d), nil
	}},
	"ulam-indel": {Ints: true, run: func(_ context.Context, q Query, _ mpcdist.MPCParams) (Answer, error) {
		// CheckDistinct first: the panicking form is not for untrusted input.
		for _, s := range [][]int{q.ASeq, q.BSeq} {
			if err := mpcdist.CheckDistinct(s); err != nil {
				return Answer{}, badRequestError{msg: err.Error()}
			}
		}
		return seqAnswer("ulam-indel", "", mpcdist.UlamIndelDistance(q.ASeq, q.BSeq)), nil
	}},
	"lulam": {Ints: true, run: func(_ context.Context, q Query, _ mpcdist.MPCParams) (Answer, error) {
		d, win, err := mpcdist.LocalUlamE(q.ASeq, q.BSeq)
		if err != nil {
			return Answer{}, badRequestError{msg: err.Error()}
		}
		a := seqAnswer("lulam", "", d)
		a.Window = &WindowJSON{Gamma: win.Gamma, Kappa: win.Kappa}
		return a, nil
	}},
	"ulam-mpc": {Ints: true, MPC: true, MaxX: maxXHalf, distAlgo: "ulam-mpc", degrade: degradeUlam, run: func(ctx context.Context, q Query, p mpcdist.MPCParams) (Answer, error) {
		res, err := mpcdist.UlamDistanceMPCCtx(ctx, q.ASeq, q.BSeq, p)
		if err != nil {
			return Answer{}, err
		}
		return mpcAnswer("ulam-mpc", res), nil
	}},
	"edit-mpc": {MPC: true, MaxX: maxXEdit, distAlgo: "edit-mpc", degrade: degradeEdit("edit-mpc"), run: func(ctx context.Context, q Query, p mpcdist.MPCParams) (Answer, error) {
		res, err := mpcdist.EditDistanceMPCCtx(ctx, []byte(q.A), []byte(q.B), p)
		if err != nil {
			return Answer{}, err
		}
		return mpcAnswer("edit-mpc", res), nil
	}},
	"edit-hss": {MPC: true, MaxX: maxXHalf, distAlgo: "edit-hss", degrade: degradeEdit("edit-hss"), run: func(ctx context.Context, q Query, p mpcdist.MPCParams) (Answer, error) {
		p.Ctx = ctx
		res, err := mpcdist.EditDistanceHSS([]byte(q.A), []byte(q.B), p)
		if err != nil {
			return Answer{}, err
		}
		return mpcAnswer("edit-hss", res), nil
	}},
	"lcs-mpc": {MPC: true, MaxX: maxXHalf, degrade: degradeLCS, run: func(ctx context.Context, q Query, p mpcdist.MPCParams) (Answer, error) {
		p.Ctx = ctx
		res, err := mpcdist.LCSMPC([]byte(q.A), []byte(q.B), p)
		if err != nil {
			return Answer{}, err
		}
		return mpcAnswer("lcs-mpc", res), nil
	}},
}

// Algorithms lists the supported algorithm names, sorted.
func Algorithms() []string {
	names := make([]string, 0, len(algos))
	for name := range algos {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
