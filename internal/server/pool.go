package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded reports that a request was shed: the pool's queue-wait
// budget (or queue-length threshold) was exceeded before a slot freed up.
// It maps to HTTP 429 with a Retry-After header.
var ErrOverloaded = errors.New("server overloaded; retry later")

// Pool bounds the number of kernel executions running concurrently, so a
// burst of requests shares the host's cores instead of each spawning an
// unbounded simulation. Acquisition is context-aware: a caller whose
// deadline expires while queued leaves the queue immediately.
type Pool struct {
	sem     chan struct{}
	waiting atomic.Int64
	running atomic.Int64
	done    atomic.Uint64
	shed    atomic.Uint64
}

// PoolStats is a snapshot of the pool counters.
type PoolStats struct {
	Size      int    `json:"size"`
	Running   int64  `json:"running"`
	Waiting   int64  `json:"waiting"`
	Completed uint64 `json:"completed"`
	// Shed counts acquisitions abandoned because the queue-wait budget
	// expired (DoWithin returning ErrOverloaded).
	Shed uint64 `json:"shed"`
}

// NewPool returns a pool admitting up to size concurrent executions.
func NewPool(size int) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{sem: make(chan struct{}, size)}
}

// Do runs f once a slot is free, in the calling goroutine. It returns
// ctx.Err() without running f if ctx is done first (or already done).
func (p *Pool) Do(ctx context.Context, f func()) error {
	return p.DoWithin(ctx, 0, f)
}

// DoWithin is Do with a queue-wait budget: if no slot frees up within
// budget, the acquisition is abandoned and ErrOverloaded is returned
// without running f. A zero budget waits as long as ctx allows.
func (p *Pool) DoWithin(ctx context.Context, budget time.Duration, f func()) error {
	// The select below picks randomly when several channels are ready; an
	// already-expired context must lose deterministically.
	if err := ctx.Err(); err != nil {
		return err
	}
	var expired <-chan time.Time
	if budget > 0 {
		t := time.NewTimer(budget)
		defer t.Stop()
		expired = t.C
	}
	p.waiting.Add(1)
	select {
	case p.sem <- struct{}{}:
		p.waiting.Add(-1)
	case <-ctx.Done():
		p.waiting.Add(-1)
		return ctx.Err()
	case <-expired:
		p.waiting.Add(-1)
		p.shed.Add(1)
		return ErrOverloaded
	}
	defer func() {
		<-p.sem
		p.done.Add(1)
	}()
	p.running.Add(1)
	defer p.running.Add(-1)
	f()
	return nil
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Size:      cap(p.sem),
		Running:   p.running.Load(),
		Waiting:   p.waiting.Load(),
		Completed: p.done.Load(),
		Shed:      p.shed.Load(),
	}
}

// Waiting reports how many callers are queued for a slot right now — the
// quantity the server's queue-length shed threshold and readiness probe
// are stated in.
func (p *Pool) Waiting() int64 { return p.waiting.Load() }
