package server

import (
	"context"
	"sync/atomic"
)

// Pool bounds the number of kernel executions running concurrently, so a
// burst of requests shares the host's cores instead of each spawning an
// unbounded simulation. Acquisition is context-aware: a caller whose
// deadline expires while queued leaves the queue immediately.
type Pool struct {
	sem     chan struct{}
	waiting atomic.Int64
	running atomic.Int64
	done    atomic.Uint64
}

// PoolStats is a snapshot of the pool counters.
type PoolStats struct {
	Size      int    `json:"size"`
	Running   int64  `json:"running"`
	Waiting   int64  `json:"waiting"`
	Completed uint64 `json:"completed"`
}

// NewPool returns a pool admitting up to size concurrent executions.
func NewPool(size int) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{sem: make(chan struct{}, size)}
}

// Do runs f once a slot is free, in the calling goroutine. It returns
// ctx.Err() without running f if ctx is done first (or already done).
func (p *Pool) Do(ctx context.Context, f func()) error {
	// The select below picks randomly when both channels are ready; an
	// already-expired context must lose deterministically.
	if err := ctx.Err(); err != nil {
		return err
	}
	p.waiting.Add(1)
	select {
	case p.sem <- struct{}{}:
		p.waiting.Add(-1)
	case <-ctx.Done():
		p.waiting.Add(-1)
		return ctx.Err()
	}
	defer func() {
		<-p.sem
		p.done.Add(1)
	}()
	p.running.Add(1)
	defer p.running.Add(-1)
	f()
	return nil
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Size:      cap(p.sem),
		Running:   p.running.Load(),
		Waiting:   p.waiting.Load(),
		Completed: p.done.Load(),
	}
}
