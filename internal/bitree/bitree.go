// Package bitree provides Fenwick (binary indexed) trees used as the
// query substrate for longest-increasing-subsequence computations and the
// match-point dynamic programs in the ulam package.
//
// Two flavors are provided: a prefix-minimum tree and a prefix/suffix-sum
// tree. Both are fixed-size and use 1-based internal indexing while
// exposing a 0-based API.
package bitree

import "math"

// Inf is the identity element for MinTree queries.
const Inf = math.MaxInt64 / 4

// MinTree maintains an array of int64 values supporting point updates that
// only decrease values and prefix-minimum queries. The zero value is not
// usable; construct with NewMin.
type MinTree struct {
	n    int
	tree []int64
}

// NewMin returns a MinTree over n slots, all initialized to Inf.
func NewMin(n int) *MinTree {
	t := &MinTree{n: n, tree: make([]int64, n+1)}
	for i := range t.tree {
		t.tree[i] = Inf
	}
	return t
}

// Len returns the number of slots.
func (t *MinTree) Len() int { return t.n }

// Update lowers the value at index i (0-based) to min(current, v).
func (t *MinTree) Update(i int, v int64) {
	if i < 0 || i >= t.n {
		panic("bitree: MinTree.Update index out of range")
	}
	for i++; i <= t.n; i += i & (-i) {
		if v < t.tree[i] {
			t.tree[i] = v
		}
	}
}

// PrefixMin returns the minimum over indices [0, i] (0-based, inclusive).
// For i < 0 it returns Inf.
func (t *MinTree) PrefixMin(i int) int64 {
	if i >= t.n {
		i = t.n - 1
	}
	best := int64(Inf)
	for i++; i > 0; i -= i & (-i) {
		if t.tree[i] < best {
			best = t.tree[i]
		}
	}
	return best
}

// Reset restores all slots to Inf, allowing reuse without reallocation.
func (t *MinTree) Reset() {
	for i := range t.tree {
		t.tree[i] = Inf
	}
}

// SumTree maintains an array of int64 values supporting point additions and
// prefix-sum queries. Construct with NewSum.
type SumTree struct {
	n    int
	tree []int64
}

// NewSum returns a SumTree over n zero-initialized slots.
func NewSum(n int) *SumTree {
	return &SumTree{n: n, tree: make([]int64, n+1)}
}

// Len returns the number of slots.
func (t *SumTree) Len() int { return t.n }

// Add adds v to the value at index i (0-based).
func (t *SumTree) Add(i int, v int64) {
	if i < 0 || i >= t.n {
		panic("bitree: SumTree.Add index out of range")
	}
	for i++; i <= t.n; i += i & (-i) {
		t.tree[i] += v
	}
}

// PrefixSum returns the sum over indices [0, i] (0-based, inclusive).
// For i < 0 it returns 0.
func (t *SumTree) PrefixSum(i int) int64 {
	if i >= t.n {
		i = t.n - 1
	}
	var s int64
	for i++; i > 0; i -= i & (-i) {
		s += t.tree[i]
	}
	return s
}

// RangeSum returns the sum over indices [lo, hi] (inclusive). It returns 0
// when the range is empty.
func (t *SumTree) RangeSum(lo, hi int) int64 {
	if lo > hi {
		return 0
	}
	if lo < 0 {
		lo = 0
	}
	return t.PrefixSum(hi) - t.PrefixSum(lo-1)
}

// MaxTree maintains an array of int64 values supporting point updates that
// only increase values and prefix-maximum queries. It is the mirror of
// MinTree and is used by LIS-style dynamic programs.
type MaxTree struct {
	n    int
	tree []int64
}

// NegInf is the identity element for MaxTree queries.
const NegInf = -Inf

// NewMax returns a MaxTree over n slots, all initialized to NegInf.
func NewMax(n int) *MaxTree {
	t := &MaxTree{n: n, tree: make([]int64, n+1)}
	for i := range t.tree {
		t.tree[i] = NegInf
	}
	return t
}

// Len returns the number of slots.
func (t *MaxTree) Len() int { return t.n }

// Update raises the value at index i (0-based) to max(current, v).
func (t *MaxTree) Update(i int, v int64) {
	if i < 0 || i >= t.n {
		panic("bitree: MaxTree.Update index out of range")
	}
	for i++; i <= t.n; i += i & (-i) {
		if v > t.tree[i] {
			t.tree[i] = v
		}
	}
}

// PrefixMax returns the maximum over indices [0, i] (0-based, inclusive).
// For i < 0 it returns NegInf.
func (t *MaxTree) PrefixMax(i int) int64 {
	if i >= t.n {
		i = t.n - 1
	}
	best := int64(NegInf)
	for i++; i > 0; i -= i & (-i) {
		if t.tree[i] > best {
			best = t.tree[i]
		}
	}
	return best
}
