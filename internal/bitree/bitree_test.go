package bitree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinTreeBasic(t *testing.T) {
	mt := NewMin(8)
	if got := mt.PrefixMin(7); got != Inf {
		t.Fatalf("empty PrefixMin = %d, want Inf", got)
	}
	mt.Update(3, 10)
	mt.Update(5, 4)
	cases := []struct {
		idx  int
		want int64
	}{
		{-1, Inf}, {0, Inf}, {2, Inf}, {3, 10}, {4, 10}, {5, 4}, {7, 4}, {100, 4},
	}
	for _, c := range cases {
		if got := mt.PrefixMin(c.idx); got != c.want {
			t.Errorf("PrefixMin(%d) = %d, want %d", c.idx, got, c.want)
		}
	}
	mt.Update(3, 2)
	if got := mt.PrefixMin(4); got != 2 {
		t.Errorf("after lowering, PrefixMin(4) = %d, want 2", got)
	}
	// Updates never raise values.
	mt.Update(3, 99)
	if got := mt.PrefixMin(3); got != 2 {
		t.Errorf("raising update changed value: PrefixMin(3) = %d, want 2", got)
	}
	mt.Reset()
	if got := mt.PrefixMin(7); got != Inf {
		t.Errorf("after Reset PrefixMin = %d, want Inf", got)
	}
}

func TestMinTreeAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 64
	mt := NewMin(n)
	naive := make([]int64, n)
	for i := range naive {
		naive[i] = Inf
	}
	for step := 0; step < 2000; step++ {
		i := rng.Intn(n)
		v := int64(rng.Intn(1000))
		mt.Update(i, v)
		if v < naive[i] {
			naive[i] = v
		}
		q := rng.Intn(n)
		want := int64(Inf)
		for j := 0; j <= q; j++ {
			if naive[j] < want {
				want = naive[j]
			}
		}
		if got := mt.PrefixMin(q); got != want {
			t.Fatalf("step %d: PrefixMin(%d) = %d, want %d", step, q, got, want)
		}
	}
}

func TestMaxTreeAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 48
	mt := NewMax(n)
	naive := make([]int64, n)
	for i := range naive {
		naive[i] = NegInf
	}
	for step := 0; step < 2000; step++ {
		i := rng.Intn(n)
		v := int64(rng.Intn(1000)) - 500
		mt.Update(i, v)
		if v > naive[i] {
			naive[i] = v
		}
		q := rng.Intn(n)
		want := int64(NegInf)
		for j := 0; j <= q; j++ {
			if naive[j] > want {
				want = naive[j]
			}
		}
		if got := mt.PrefixMax(q); got != want {
			t.Fatalf("step %d: PrefixMax(%d) = %d, want %d", step, q, got, want)
		}
	}
}

func TestSumTreeBasic(t *testing.T) {
	st := NewSum(6)
	st.Add(0, 5)
	st.Add(3, 7)
	st.Add(5, -2)
	if got := st.PrefixSum(-1); got != 0 {
		t.Errorf("PrefixSum(-1) = %d, want 0", got)
	}
	if got := st.PrefixSum(2); got != 5 {
		t.Errorf("PrefixSum(2) = %d, want 5", got)
	}
	if got := st.PrefixSum(5); got != 10 {
		t.Errorf("PrefixSum(5) = %d, want 10", got)
	}
	if got := st.RangeSum(1, 4); got != 7 {
		t.Errorf("RangeSum(1,4) = %d, want 7", got)
	}
	if got := st.RangeSum(4, 1); got != 0 {
		t.Errorf("empty RangeSum = %d, want 0", got)
	}
	if got := st.RangeSum(-5, 0); got != 5 {
		t.Errorf("clamped RangeSum = %d, want 5", got)
	}
}

func TestSumTreeQuick(t *testing.T) {
	f := func(vals []int8, queries []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 128 {
			vals = vals[:128]
		}
		st := NewSum(len(vals))
		for i, v := range vals {
			st.Add(i, int64(v))
		}
		for _, q := range queries {
			i := int(q) % len(vals)
			var want int64
			for j := 0; j <= i; j++ {
				want += int64(vals[j])
			}
			if st.PrefixSum(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MinTree.Update out of range did not panic")
		}
	}()
	NewMin(4).Update(4, 0)
}
