package dist

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"mpcdist/internal/trace"
	"mpcdist/internal/transport"
)

// clusterTraceFile decodes the merged trace far enough to assert on lanes.
type clusterTraceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func decodeClusterTrace(t *testing.T, ct *trace.ClusterTrace) clusterTraceFile {
	t.Helper()
	raw, err := ct.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var file clusterTraceFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}
	return file
}

// processNames extracts pid -> process_name from the metadata events.
func processNames(file clusterTraceFile) map[int]string {
	names := map[int]string{}
	for _, ev := range file.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			names[ev.Pid], _ = ev.Args["name"].(string)
		}
	}
	return names
}

// TestTelemetryParity is the tentpole's hard invariant: running the same
// jobs over TCP with telemetry shipping enabled must produce bit-identical
// deterministic results — versus the local run AND versus a telemetry-off
// TCP run — while the session accumulates a merged multi-process trace
// with one lane per party plus the transport lane.
func TestTelemetryParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	on, err := NewSession(SessionOptions{Workers: 3, Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	off, err := NewSession(SessionOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()

	for _, job := range parityJobs() {
		local, lerr := runLocal(job)
		ron, eon := on.Run(job)
		roff, eoff := off.Run(job)
		checkParity(t, job.Algo+"/telemetry-on", local, lerr, ron, eon)
		checkParity(t, job.Algo+"/telemetry-off", local, lerr, roff, eoff)
		if !reflect.DeepEqual(normalize(ron), normalize(roff)) {
			t.Errorf("%s: telemetry changed the deterministic result:\non:  %+v\noff: %+v",
				job.Algo, normalize(ron), normalize(roff))
		}
	}

	// Per-worker rows: advisory, but deterministic in the model fields —
	// every machine-round must be attributed to exactly one party.
	rep := func() (sum int) {
		res, err := on.Run(parityJobs()[0])
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Report.Workers) != 4 {
			t.Fatalf("Workers rows = %d, want 4 (coordinator + 3 workers)", len(res.Report.Workers))
		}
		total := 0
		for _, w := range res.Report.Workers {
			total += w.MachineRounds
		}
		var machineRounds int
		for _, r := range res.Report.Rounds {
			machineRounds += r.Machines
		}
		if total != machineRounds {
			t.Errorf("per-worker MachineRounds sum to %d, want %d", total, machineRounds)
		}
		if res.Report.Workers[0].WireBytes == 0 {
			t.Error("coordinator row has no wire traffic recorded")
		}
		return total
	}
	rep()

	ct, err := on.ClusterTrace()
	if err != nil {
		t.Fatal(err)
	}
	file := decodeClusterTrace(t, ct)
	names := processNames(file)
	want := map[int]string{
		0: "coordinator (party 0)",
		1: "worker (party 1)",
		2: "worker (party 2)",
		3: "worker (party 3)",
		4: "transport",
	}
	for pid, name := range want {
		if names[pid] != name {
			t.Errorf("trace lane %d named %q, want %q (lanes: %v)", pid, names[pid], name, names)
		}
	}
	spans := map[int]int{} // pid -> machine spans
	for _, ev := range file.TraceEvents {
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("negative time in merged trace: %+v", ev)
		}
		if ev.Ph == "X" && ev.Tid > 0 && ev.Pid <= 3 {
			spans[ev.Pid]++
		}
	}
	for pid := 0; pid <= 3; pid++ {
		if spans[pid] == 0 {
			t.Errorf("party %d shipped no machine spans", pid)
		}
	}

	// The telemetry-off session must refuse to build a trace.
	if _, err := off.ClusterTrace(); err == nil {
		t.Error("ClusterTrace succeeded on a telemetry-off session")
	}
}

// TestTelemetryWorkerDeath kills worker party 2 at its second exchange
// with telemetry on: the result must still be bit-identical, the events
// the worker shipped before dying must appear in its lane, and the
// recovery must be visible as a reassignment instant on the transport
// lane.
func TestTelemetryWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	// edit-mpc: by exchange 2 every party still owns machines, so the death
	// forces real reassignments (ulam's later exchanges are single-machine).
	job := parityJobs()[1]
	local, lerr := runLocal(job)
	sess, err := NewSession(SessionOptions{
		Workers:   2,
		Telemetry: true,
		Stderr:    io.Discard,
		WorkerEnv: []string{EnvWorkerDieSeq + "=2", EnvWorkerDieParty + "=2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	distr, derr := sess.Run(job)
	checkParity(t, "edit-mpc/telemetry-worker-kill", local, lerr, distr, derr)

	ct, err := sess.ClusterTrace()
	if err != nil {
		t.Fatal(err)
	}
	file := decodeClusterTrace(t, ct)
	deadSpans, reassigns := 0, 0
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" && ev.Pid == 2 && ev.Tid > 0 {
			deadSpans++
		}
		if ev.Name == trace.TransportReassign && ev.Pid == 3 {
			reassigns++
		}
	}
	// The worker died entering exchange 2, so everything it executed before
	// exchange 1's barrier (its share of the first round) was already
	// shipped and must survive in its lane.
	if deadSpans == 0 {
		t.Error("dead worker's pre-death spans missing from its trace lane")
	}
	if reassigns == 0 {
		t.Error("reassignment instant missing from transport lane")
	}
}

// TestStatusEndpoint serves a live session over the -status HTTP endpoint
// and checks the snapshot schema documented in docs/DISTRIBUTED.md.
func TestStatusEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	sess, err := NewSession(SessionOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Run(parityJobs()[0]); err != nil {
		t.Fatal(err)
	}

	srv, err := StartStatus("127.0.0.1:0", func() any { return sess.Status() })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st transport.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "coordinator" || st.Parties != 3 || st.Self != 0 {
		t.Errorf("status = %+v", st)
	}
	if st.Alive != 3 || len(st.Peers) != 2 {
		t.Errorf("alive/peers = %d/%d, want 3/2 (%+v)", st.Alive, len(st.Peers), st)
	}
	if st.Seq == 0 || st.Wire.BytesOut == 0 {
		t.Errorf("status shows no completed exchanges: %+v", st)
	}
	for _, p := range st.Peers {
		if !p.Alive || p.BytesIn == 0 {
			t.Errorf("peer row %+v, want alive with traffic", p)
		}
	}
}
