package dist

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"mpcdist/internal/checkpoint"
	"mpcdist/internal/trace"
	"mpcdist/internal/transport"
)

// StatusWithCheckpoint is the coordinator's status snapshot when the
// session checkpoints: the transport view plus live checkpoint progress.
// cmd/mpcdist serves it from -status and cmd/mpctop renders it; the
// embedded transport.Status keeps the JSON shape a superset of the plain
// coordinator/worker snapshot.
type StatusWithCheckpoint struct {
	transport.Status
	Checkpoint *checkpoint.Status `json:"checkpoint,omitempty"`
}

// StartStatus serves a live JSON status snapshot over HTTP at addr
// (":8081" style): GET /status — and / as a convenience — returns
// snap()'s JSON encoding, recomputed per request, so `watch curl
// localhost:8081/status` follows a running session. The returned server
// is already listening; Close it to stop.
//
// Two flight-recorder routes ride along: GET /flight returns the
// process-global recorder's live trace.FlightStats (rolling round-latency
// quantiles and retained-event counts; what cmd/mpctop polls), and GET
// /debug/flight writes the recorder's dump — the merged Chrome trace of
// the retained window — without interrupting the run.
//
// snap typically returns a transport.Status (coordinator or worker view).
// Everything served is advisory host-level state; the endpoint never
// influences the deterministic run.
func StartStatus(addr string, snap func() any) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: status listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(snap()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux.HandleFunc("/status", serve)
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(trace.Flight().Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/flight", FlightDumpHandler)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		serve(w, r)
	})
	// Addr carries the bound address back to the caller (useful with
	// ":0"-style requests, where the kernel picks the port).
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv, nil
}

// FlightDumpHandler serves the process-global flight recorder's dump as a
// Chrome trace-event file (the format cmd/tracecheck validates). It is
// mounted at /debug/flight on the dist status servers and the mpcserve
// ops listener, and usable on any custom mux.
func FlightDumpHandler(w http.ResponseWriter, r *http.Request) {
	if !trace.FlightEnabled() {
		http.Error(w, "flight recorder disabled (MPCDIST_FLIGHT=off)", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="flight.json"`)
	if _, err := trace.Flight().Dump().WriteTo(w); err != nil {
		// Headers are gone; the trailing write error is all we can log.
		return
	}
}
