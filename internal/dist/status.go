package dist

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// StartStatus serves a live JSON status snapshot over HTTP at addr
// (":8081" style): GET /status — and / as a convenience — returns
// snap()'s JSON encoding, recomputed per request, so `watch curl
// localhost:8081/status` follows a running session. The returned server
// is already listening; Close it to stop.
//
// snap typically returns a transport.Status (coordinator or worker view).
// Everything served is advisory host-level state; the endpoint never
// influences the deterministic run.
func StartStatus(addr string, snap func() any) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: status listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(snap()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux.HandleFunc("/status", serve)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		serve(w, r)
	})
	// Addr carries the bound address back to the caller (useful with
	// ":0"-style requests, where the kernel picks the port).
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv, nil
}
