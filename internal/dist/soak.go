package dist

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"mpcdist/internal/core"
	"mpcdist/internal/netchaos"
	"mpcdist/internal/trace"
	"mpcdist/internal/transport"
)

// SoakOptions configure a Soak run.
type SoakOptions struct {
	// Workers per iteration's session (default 2).
	Workers int
	// Iterations is how many chaos sessions to run (default 10).
	Iterations int
	// Plan is the base link-fault schedule; iteration i runs under a copy
	// with Seed = Plan.Seed + i, so one soak sweeps a family of schedules.
	// Nil means a default profile of corruption, drops, and resets.
	Plan *netchaos.Plan
	// Transport tunes liveness. A zero RejoinGrace is raised to 2s —
	// soaking chaos without rejoin would just measure eviction.
	Transport transport.Options
	// Log, when non-nil, receives one line per iteration with the
	// session's advisory wire counters.
	Log io.Writer
}

// Soak replays one job across fresh distributed sessions under a rotating
// family of deterministic link-fault schedules, asserting after every
// iteration that the deterministic result digest is bit-identical to a
// fault-free local run — the repository's core robustness invariant: no
// wire schedule and no reconnect path may ever change a deterministic
// counter. The first divergence triggers a flight dump and fails the
// soak.
func Soak(job Job, opts SoakOptions) error {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 10
	}
	if opts.Plan == nil {
		opts.Plan = &netchaos.Plan{Seed: 1, Corrupt: 0.01, Drop: 0.005, Reset: 0.002}
	}
	if opts.Transport.RejoinGrace <= 0 {
		opts.Transport.RejoinGrace = 2 * time.Second
	}

	// The reference digest comes from a fault-free in-process run: the
	// distributed sessions must land on exactly this, chaos or not.
	ref, rerr := runJob(job, core.Params{
		Parallelism: runtime.GOMAXPROCS(0),
		Ctx:         context.Background(),
	})
	want := digestOf(ref, rerr)

	for i := 0; i < opts.Iterations; i++ {
		plan := *opts.Plan
		plan.Seed = opts.Plan.Seed + int64(i)
		s, err := NewSession(SessionOptions{
			Workers:   opts.Workers,
			Transport: opts.Transport,
			NetChaos:  &plan,
		})
		if err != nil {
			return fmt.Errorf("dist: soak iteration %d (seed %d): session: %w", i, plan.Seed, err)
		}
		res, jerr := s.Run(job)
		st := s.Stats()
		s.Close()
		got := digestOf(res, jerr)
		if got != want {
			trace.FlightTrigger("soak: deterministic divergence")
			return fmt.Errorf("dist: soak iteration %d (netchaos seed %d) diverged:\n  got  %+v\n  want %+v",
				i, plan.Seed, got, want)
		}
		if opts.Log != nil {
			fmt.Fprintf(opts.Log,
				"soak %d/%d seed=%d ok value=%d reconnects=%d corruptFrames=%d peersLost=%d reassigns=%d exchanges=%d\n",
				i+1, opts.Iterations, plan.Seed, got.Value,
				st.Reconnects, st.CorruptFrames, st.PeersLost, st.Reassigns, st.Exchanges)
		}
	}
	return nil
}
