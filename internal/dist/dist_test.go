package dist

import (
	"io"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	"mpcdist/internal/core"
	"mpcdist/internal/netchaos"
	"mpcdist/internal/trace"
	"mpcdist/internal/transport"
)

// TestMain lets the test binary serve as its own worker processes: a
// session spawned inside a test re-execs this binary, and MaybeWorkerMain
// hijacks those copies before any test runs.
func TestMain(m *testing.M) {
	MaybeWorkerMain()
	os.Exit(m.Run())
}

// parityJobs builds one job per MPC pipeline over deterministic inputs
// sized so the full suite stays test-budget fast but every phase runs.
func parityJobs() []Job {
	rng := rand.New(rand.NewSource(171))

	n := 300
	p := rng.Perm(n)
	q := append([]int(nil), p...)
	for k := 0; k < 12; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		q[i], q[j] = q[j], q[i]
	}

	a := make([]byte, 240)
	for i := range a {
		a[i] = byte('a' + rng.Intn(4))
	}
	b := append([]byte(nil), a...)
	for k := 0; k < 10; k++ {
		b[rng.Intn(len(b))] = byte('a' + rng.Intn(4))
	}

	return []Job{
		{Algo: AlgoUlamMPC, Seed: 7, X: 0.3, P: p, Q: q},
		{Algo: AlgoEditMPC, Seed: 7, X: 0.25, S: a, T: b},
		{Algo: AlgoEditHSS, Seed: 7, X: 0.3, S: a, T: b},
	}
}

// withFaults returns the job with a fixed injected-fault schedule. The
// rates match the root chaos suite's ranges; recovery is exact, so the
// distributed run must still be bit-identical to the local one —
// including the Failures/Retries bookkeeping, which counts injected
// faults only (transport-level recovery never touches it).
func withFaults(j Job) Job {
	j.FaultSeed = 99
	j.FaultCrash = 0.02
	j.FaultCrashAfter = 0.01
	j.FaultDrop = 0.02
	j.FaultDup = 0.02
	j.FaultStraggle = 0.01
	j.FaultDelayNs = 100_000
	return j
}

// normalize zeroes the wall-clock fields so two executions compare on
// model quantities alone. Unlike the chaos suite's stripFaultCounters,
// the injected-fault counters are NOT zeroed: they are deterministic and
// must match across transports exactly.
func normalize(res core.Result) core.Result {
	zeroRep := func(r *core.Result) {
		for gi := -1; gi < len(r.GuessReports); gi++ {
			rep := &r.Report
			if gi >= 0 {
				rep = &r.GuessReports[gi]
			}
			for i := range rep.Rounds {
				rep.Rounds[i].Elapsed = 0
				rep.Rounds[i].QueueWait = 0
				rep.Rounds[i].Skew = trace.SkewStats{}
			}
			rep.Elapsed = 0
			rep.QueueWait = 0
			rep.MaxStraggler = 0
			// Per-worker rows exist only on multi-party runs (and carry
			// wall-clock fields); the deterministic comparison ignores them.
			rep.Workers = nil
		}
	}
	zeroRep(&res)
	return res
}

func runLocal(j Job) (core.Result, error) {
	return runJob(j, core.Params{})
}

func checkParity(t *testing.T, name string, local core.Result, lerr error, distr core.Result, derr error) {
	t.Helper()
	if (lerr == nil) != (derr == nil) || (lerr != nil && lerr.Error() != derr.Error()) {
		t.Fatalf("%s: error mismatch: local %v, distributed %v", name, lerr, derr)
	}
	if lerr != nil {
		return
	}
	ln, dn := normalize(local), normalize(distr)
	if !reflect.DeepEqual(ln, dn) {
		t.Errorf("%s: distributed result differs from local:\nlocal:       %+v\ndistributed: %+v", name, ln, dn)
	}
}

// TestTCPParity is the subsystem's non-negotiable invariant: for every
// MPC pipeline, with and without injected faults, the distance, the
// chain, and every deterministic model counter must be bit-identical
// between the in-process transport and a real TCP session — one session,
// reused across all six jobs.
func TestTCPParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	sess, err := NewSession(SessionOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for _, base := range parityJobs() {
		for _, faulted := range []bool{false, true} {
			job := base
			name := job.Algo
			if faulted {
				job = withFaults(job)
				name += "/faults"
			}
			local, lerr := runLocal(job)
			distr, derr := sess.Run(job)
			checkParity(t, name, local, lerr, distr, derr)
		}
	}
	if st := sess.Stats(); st.Exchanges == 0 || st.BytesOut == 0 {
		t.Errorf("session stats show no traffic: %+v", sess.Stats())
	}
	if sess.Alive() != 3 {
		t.Errorf("lost %d workers during fault-free parity run", 3-sess.Alive())
	}
}

// TestTCPParityDeterministicFailure checks that a deterministically
// failing job (crash budget exhausted by a certain-crash plan) fails
// identically everywhere: the coordinator and every worker land on the
// same error, so the digest cross-check passes and the session reports
// the local error verbatim.
func TestTCPParityDeterministicFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := parityJobs()[0]
	job.FaultCrash = 1
	job.MaxRetries = 2
	local, lerr := runLocal(job)
	if lerr == nil {
		t.Fatal("certain-crash job succeeded locally; want deterministic failure")
	}
	sess, err := NewSession(SessionOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	distr, derr := sess.Run(job)
	checkParity(t, "ulam-mpc/crash-exhaustion", local, lerr, distr, derr)
}

// TestWorkerCrashRecovery kills worker party 2 mid-round: at the start of
// its first exchange, after executing its share of the candidates round
// but before the records ship, so its work is lost with the process. The
// session must detect the loss, reassign the dead worker's machines to
// the surviving worker, and still produce the bit-identical result. It
// then reuses the crippled session for a second job, exercising the
// round-start orphan reassignment path.
func TestWorkerCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := parityJobs()[0]
	local, lerr := runLocal(job)
	sess, err := NewSession(SessionOptions{
		Workers:   2,
		Stderr:    io.Discard,
		WorkerEnv: []string{EnvWorkerDieSeq + "=1", EnvWorkerDieParty + "=2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	distr, derr := sess.Run(job)
	checkParity(t, "ulam-mpc/worker-kill", local, lerr, distr, derr)
	if got := sess.Alive(); got != 1 {
		t.Errorf("after killing 1 of 2 workers, Alive() = %d, want 1", got)
	}
	st := sess.Stats()
	if st.PeersLost != 1 {
		t.Errorf("PeersLost = %d, want 1", st.PeersLost)
	}
	if st.Reassigns == 0 {
		t.Error("worker died mid-round but no reassignment was recorded")
	}

	distr2, derr2 := sess.Run(job)
	checkParity(t, "ulam-mpc/after-worker-loss", local, lerr, distr2, derr2)
}

// TestAllWorkersCrashRecovery arms the die knob on every worker: by the
// second exchange the coordinator is alone and must fall back to local
// replay for the whole round, still matching the local result exactly.
func TestAllWorkersCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := parityJobs()[0]
	local, lerr := runLocal(job)
	sess, err := NewSession(SessionOptions{
		Workers:   2,
		Stderr:    io.Discard,
		WorkerEnv: []string{EnvWorkerDieSeq + "=2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	distr, derr := sess.Run(job)
	checkParity(t, "ulam-mpc/all-workers-killed", local, lerr, distr, derr)
	if got := sess.Alive(); got != 0 {
		t.Errorf("Alive() = %d, want 0", got)
	}
}

// TestNetChaosRejoinParity is the self-healing invariant from the other
// direction: instead of killing workers, it degrades the wire. Every
// coordinator-side link runs under a seeded netchaos schedule (bit
// corruption both ways, truncated writes, mid-stream resets) AND worker
// party 2 deterministically severs its own connection at exchange 2 — and
// with a rejoin grace in force, all three pipelines must still be
// bit-identical to local runs with NO peer ever evicted and NO machine
// ever reassigned: every failure heals through reconnect + resume, not
// through the (result-preserving but work-wasting) replay paths.
func TestNetChaosRejoinParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	sess, err := NewSession(SessionOptions{
		Workers: 2,
		Stderr:  io.Discard,
		NetChaos: &netchaos.Plan{
			Seed:    11,
			Corrupt: 0.003,
			Drop:    0.002,
			Reset:   0.001,
		},
		Transport: transport.Options{
			RejoinGrace: 5 * time.Second,
			// The test asserts PeersLost == 0, so the corrupt-burst
			// eviction threshold must be out of reach for any schedule.
			CorruptTolerance: 1 << 20,
		},
		WorkerEnv: []string{
			EnvWorkerDropConnSeq + "=2",
			EnvWorkerDropConnParty + "=2",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for _, job := range parityJobs() {
		local, lerr := runLocal(job)
		distr, derr := sess.Run(job)
		checkParity(t, job.Algo+"/netchaos", local, lerr, distr, derr)
	}
	st := sess.Stats()
	if st.Reconnects < 1 {
		t.Errorf("Reconnects = %d, want >= 1 (the drop-conn knob alone guarantees one)", st.Reconnects)
	}
	if st.PeersLost != 0 {
		t.Errorf("PeersLost = %d, want 0: every link failure should heal within the grace", st.PeersLost)
	}
	if st.Reassigns != 0 {
		t.Errorf("Reassigns = %d, want 0: rejoin must resume the slot, not fall back to replay", st.Reassigns)
	}
	if got := sess.Alive(); got != 2 {
		t.Errorf("Alive() = %d, want 2", got)
	}
}

// TestSoakSmoke runs a short version of the `mpcdist -soak` loop: a few
// fresh sessions under rotating chaos seeds, each checked bit-for-bit
// against the fault-free local digest.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	err := Soak(parityJobs()[0], SoakOptions{
		Workers:    2,
		Iterations: 2,
		Log:        testWriter{t},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// testWriter adapts t.Logf so soak progress lands in the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// TestJobRoundTrip pushes a fully-populated job through the session codec
// path used at job start.
func TestJobRoundTrip(t *testing.T) {
	job := withFaults(parityJobs()[1])
	job.Eps = 0.25
	job.MemFactor = 8
	job.HitConst = 2
	job.Solver = int(core.PairMyers)
	job.MaxRetries = 5
	c := transport.NewCodec()
	buf, err := encodeValue(c, job)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeJob(c, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, job) {
		t.Fatalf("job round-trip mismatch:\nin:  %+v\nout: %+v", job, got)
	}
}
