package dist

import (
	"io"
	"net/http"
	"reflect"
	"testing"

	"mpcdist/internal/trace"
)

// TestFlightRecorderParity extends the observability contract to the
// always-on flight recorder: the same jobs over TCP with the recorder on
// (the default) and hard-off (in-process switch plus MPCDIST_FLIGHT=off
// in every worker's environment) must produce bit-identical deterministic
// results — and both must match the local run.
func TestFlightRecorderParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	prev := trace.FlightEnabled()
	defer trace.SetFlightEnabled(prev)

	trace.SetFlightEnabled(true)
	trace.Flight().Reset()
	on, err := NewSession(SessionOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	var resOn []core2
	for _, job := range parityJobs() {
		local, lerr := runLocal(job)
		r, rerr := on.Run(job)
		checkParity(t, job.Algo+"/flight-on", local, lerr, r, rerr)
		resOn = append(resOn, core2{normalize(r), errStr(rerr)})
	}
	if st := trace.Flight().Stats(); st.Rounds == 0 || st.Parties < 2 {
		t.Errorf("recorder saw nothing during the flight-on run: %+v", st)
	}

	trace.SetFlightEnabled(false)
	off, err := NewSession(SessionOptions{
		Workers:   3,
		Stderr:    io.Discard,
		WorkerEnv: []string{"MPCDIST_FLIGHT=off"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	for i, job := range parityJobs() {
		local, lerr := runLocal(job)
		r, rerr := off.Run(job)
		checkParity(t, job.Algo+"/flight-off", local, lerr, r, rerr)
		got := core2{normalize(r), errStr(rerr)}
		if !reflect.DeepEqual(resOn[i], got) {
			t.Errorf("%s: recorder on/off results differ:\non:  %+v\noff: %+v", job.Algo, resOn[i], got)
		}
	}
}

func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// core2 pairs a normalized result with its error string for on/off diffs.
type core2 struct {
	Res any
	Err string
}

// TestFlightDumpFromSession is the dump acceptance path: after a TCP run
// with no telemetry consumer attached, the coordinator's process-global
// recorder must already hold every party's recent rounds plus transport
// events, and its dump must be a valid cluster trace — the same bytes
// /debug/flight and SIGQUIT write.
func TestFlightDumpFromSession(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	prev := trace.FlightEnabled()
	defer trace.SetFlightEnabled(prev)
	trace.SetFlightEnabled(true)
	trace.Flight().Reset()

	sess, err := NewSession(SessionOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Run(parityJobs()[0]); err != nil {
		t.Fatal(err)
	}

	st := trace.Flight().Stats()
	if st.Parties != 4 {
		t.Errorf("recorder parties = %d, want 4 (coordinator + 3 workers)", st.Parties)
	}
	if st.Rounds == 0 || st.Spans == 0 || st.Transport == 0 {
		t.Errorf("recorder retained rounds=%d spans=%d transport=%d, want all > 0", st.Rounds, st.Spans, st.Transport)
	}
	if st.Latency.Window == 0 {
		t.Error("no round latencies in the rolling window")
	}

	file := decodeClusterTrace(t, trace.Flight().Dump())
	names := processNames(file)
	// One lane per party, the transport lane, and the recorder's own
	// quantile lane on top.
	wantLanes := []string{"coordinator (party 0)", "worker (party 1)", "worker (party 2)", "worker (party 3)", "transport", "flight recorder"}
	byName := map[string]bool{}
	for _, n := range names {
		byName[n] = true
	}
	for _, n := range wantLanes {
		if !byName[n] {
			t.Errorf("dump missing lane %q (have %v)", n, names)
		}
	}
	spansPerPid := map[int]int{}
	sawQuantiles := false
	for _, ev := range file.TraceEvents {
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("negative time in dump: %+v", ev)
		}
		if ev.Ph == "X" && ev.Tid > 0 && ev.Pid <= 3 {
			spansPerPid[ev.Pid]++
		}
		if ev.Name == "round-latency" {
			sawQuantiles = true
		}
	}
	for pid := 0; pid <= 3; pid++ {
		if spansPerPid[pid] == 0 {
			t.Errorf("party %d has no machine spans in the dump", pid)
		}
	}
	if !sawQuantiles {
		t.Error("dump missing the round-latency quantile event")
	}

	// The HTTP dump endpoint serves the same recorder; a smoke GET must
	// return a decodable trace while the recorder is enabled...
	srv, err := StartStatus("127.0.0.1:0", func() any { return sess.Status() })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/flight = %d, want 200", resp.StatusCode)
	}
	// ...and refuse with 503 when it is off.
	trace.SetFlightEnabled(false)
	resp, err = http.Get("http://" + srv.Addr + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("disabled /debug/flight = %d, want 503", resp.StatusCode)
	}
}
