package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"

	"mpcdist/internal/buildinfo"
	"mpcdist/internal/checkpoint"
	"mpcdist/internal/core"
	"mpcdist/internal/netchaos"
	"mpcdist/internal/trace"
	"mpcdist/internal/transport"
)

// SessionOptions configure a distributed session.
type SessionOptions struct {
	// Workers is the number of worker processes to spawn (>= 1).
	Workers int
	// Observer receives the coordinator's driver events plus transport
	// events if it implements trace.TransportObserver. May be nil.
	Observer trace.Observer
	// Ctx cancels the coordinator's driver between rounds. May be nil.
	Ctx context.Context
	// Parallelism bounds concurrently simulated machines per process.
	Parallelism int
	// Stderr is where spawned workers' stderr goes (default os.Stderr).
	Stderr io.Writer
	// WorkerEnv appends extra environment variables to spawned workers
	// (the tests use it to arm the deterministic die-at-exchange knob).
	WorkerEnv []string
	// Transport tunes the TCP liveness machinery (zero = defaults). The
	// heartbeat interval and peer deadline are forwarded to spawned
	// workers via the environment so both sides run the same liveness
	// config; the rejoin grace reaches workers through the welcome frame.
	Transport transport.Options
	// NetChaos, when non-nil and active, wraps every coordinator-side
	// connection (initial and rejoin) with the deterministic link-fault
	// injector. Read-path corruption means worker->coordinator frames are
	// perturbed too, so one-sided wrapping exercises both directions.
	// Strictly a wire-level perturbation: deterministic counters and
	// results are bit-identical under any plan.
	NetChaos *netchaos.Plan
	// Telemetry asks every party to buffer its trace events and ship them
	// to the coordinator at round barriers; the merged stream is available
	// from ClusterTrace after runs. Out-of-band: results and deterministic
	// counters are bit-identical with or without it.
	Telemetry bool
	// Checkpoint, when non-nil, snapshots every completed round of each job
	// into the store, keyed by the job's SpecDigest. Workers receive the
	// coordinator's resume state inside the job spec, so all parties
	// fast-forward the same prefix.
	Checkpoint *checkpoint.Store
	// CheckpointEvery is the flush cadence in rounds (<= 0 means 1).
	CheckpointEvery int
	// CheckpointResume fast-forwards each job past rounds a previous run
	// already persisted; without it an existing checkpoint is overwritten.
	CheckpointResume bool
	// OnCheckpointFlush, when non-nil, observes each durable flush (the
	// server's metrics hook). Called from the driver goroutine; keep cheap.
	OnCheckpointFlush func(steps int, bytes int64)
}

// Session is a running distributed cluster: this process is the
// coordinator (party 0) plus Workers spawned worker processes. Jobs run
// one at a time; the session survives across jobs and is torn down by
// Close.
type Session struct {
	mu   sync.Mutex
	co   *transport.Coordinator
	ln   net.Listener
	cmds []*exec.Cmd
	opts SessionOptions

	// obs is the driver observer Run attaches: the caller's Observer,
	// multiplexed with the session's own collector when telemetry is on.
	obs trace.Observer
	// tel buffers the coordinator's own trace events (party 0's lane of
	// the merged trace); batches accumulates drained telemetry from every
	// party across jobs, consumed by ClusterTrace.
	tel     *trace.Collector
	batches []trace.Telemetry

	// ckMu guards saver separately from mu: Status endpoints read it while
	// Run holds mu for the whole job.
	ckMu  sync.Mutex
	saver *checkpoint.Saver
}

// NewSession listens on a loopback port, re-execs this binary Workers
// times as worker processes (see MaybeWorkerMain), and completes the
// registration handshake with each.
func NewSession(opts SessionOptions) (*Session, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("dist: need at least 1 worker, got %d", opts.Workers)
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("dist: locating own binary: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("dist: listen: %w", err)
	}
	stderr := opts.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	s := &Session{ln: ln, opts: opts}
	for i := 0; i < opts.Workers; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), EnvWorkerAddr+"="+ln.Addr().String())
		if opts.Transport.HeartbeatInterval > 0 {
			cmd.Env = append(cmd.Env, EnvWorkerHeartbeat+"="+opts.Transport.HeartbeatInterval.String())
		}
		if opts.Transport.PeerTimeout > 0 {
			cmd.Env = append(cmd.Env, EnvWorkerDeadline+"="+opts.Transport.PeerTimeout.String())
		}
		cmd.Env = append(cmd.Env, opts.WorkerEnv...)
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			s.kill()
			ln.Close()
			return nil, fmt.Errorf("dist: spawning worker %d: %w", i+1, err)
		}
		s.cmds = append(s.cmds, cmd)
	}
	s.obs = opts.Observer
	if opts.Telemetry {
		s.tel = &trace.Collector{}
		s.obs = trace.Multi(opts.Observer, s.tel)
	}
	topts := opts.Transport
	topts.Telemetry = opts.Telemetry
	if opts.NetChaos.Active() {
		topts.WrapConn = netchaos.New(opts.NetChaos).Wrap
	}
	// trace.Multi forwards transport events to every member implementing
	// TransportObserver, so this assertion holds for the combined observer
	// whenever any member wants them.
	if to, ok := s.obs.(trace.TransportObserver); ok && to != nil {
		topts.OnEvent = to.Transport
	}
	co, err := transport.NewCoordinator(ln, opts.Workers, topts)
	if err != nil {
		s.kill()
		ln.Close()
		return nil, err
	}
	s.co = co
	return s, nil
}

// Run executes one job across the session: broadcast the spec, run the
// driver here as party 0 over the coordinator transport, then cross-check
// every surviving worker's result digest against our own. Deterministic
// driver errors (including injected-fault crashes) are part of the digest
// — workers must land on the identical error.
func (s *Session) Run(job Job) (core.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The saver must exist before the job is encoded: its resume state
	// ships inside the spec so workers fast-forward the same prefix.
	var saver *checkpoint.Saver
	if s.opts.Checkpoint != nil {
		digest, err := job.SpecDigest()
		if err != nil {
			return core.Result{}, err
		}
		saver, err = checkpoint.NewSaver(s.opts.Checkpoint, digest, job.Algo, checkpoint.SaverOptions{
			Every:    s.opts.CheckpointEvery,
			Resume:   s.opts.CheckpointResume,
			Revision: buildinfo.Revision(),
			OnFlush:  s.opts.OnCheckpointFlush,
		})
		if err != nil {
			return core.Result{}, err
		}
		if job.Resume, err = saver.ResumeState(); err != nil {
			return core.Result{}, err
		}
		s.ckMu.Lock()
		s.saver = saver
		s.ckMu.Unlock()
	}
	jb, err := encodeValue(s.co.Codec(), job)
	if err != nil {
		return core.Result{}, err
	}
	if err := s.co.StartJob(jb); err != nil {
		return core.Result{}, err
	}
	// Per-peer wire counters at job start, so the job's traffic can be
	// attributed to the report's per-worker rows as a delta.
	base := s.co.PeerStats()
	host := core.Params{
		Parallelism: s.opts.Parallelism,
		Ctx:         s.opts.Ctx,
		Observer:    s.obs,
		Transport:   s.co,
	}
	if saver != nil {
		host.Checkpointer = saver
	}
	res, rerr := runJob(job, host)
	if saver != nil && rerr == nil {
		// Persist the tail shorter than the flush cadence, so a completed
		// job's store covers every round.
		if err := saver.Flush(); err != nil {
			return res, err
		}
	}
	if isTransportErr(rerr) {
		// The session itself broke (divergence, total peer loss): workers
		// may be stuck at a barrier and will only unwind at Close's
		// shutdown, so don't wait for digests.
		return res, rerr
	}
	digests, gerr := s.co.Results()
	s.batches = append(s.batches, s.co.DrainTelemetry()...)
	s.fillWireBytes(&res, base)
	if gerr != nil {
		return res, gerr
	}
	want := digestOf(res, rerr)
	for w, db := range digests {
		if db == nil {
			continue // worker lost mid-job; its machines were reassigned
		}
		got, derr := decodeDigest(s.co.Codec(), db)
		if derr != nil {
			return res, fmt.Errorf("dist: worker %d result: %w", w+1, derr)
		}
		if got != want {
			return res, fmt.Errorf("dist: worker %d diverged: %+v, coordinator %+v", w+1, got, want)
		}
	}
	return res, rerr
}

// isTransportErr reports whether err came from the transport layer rather
// than the deterministic computation.
func isTransportErr(err error) bool {
	var d *transport.DivergenceError
	var p *transport.PeerLossError
	return errors.As(err, &d) || errors.As(err, &p) || errors.Is(err, transport.ErrShutdown)
}

// fillWireBytes stamps the report's per-worker rows with each party's
// connection traffic during the job (coordinator's view; the coordinator
// row gets the sum over all links). Advisory, like everything wall-clock.
func (s *Session) fillWireBytes(res *core.Result, base []transport.PeerStats) {
	if len(res.Report.Workers) == 0 {
		return
	}
	cur := s.co.PeerStats()
	var total int64
	for i := range cur {
		d := cur[i].BytesIn + cur[i].BytesOut
		if i < len(base) {
			d -= base[i].BytesIn + base[i].BytesOut
		}
		total += d
		p := cur[i].Party
		if p < len(res.Report.Workers) {
			res.Report.Workers[p].WireBytes = d
		}
	}
	res.Report.Workers[0].WireBytes = total
}

// Workers reports how many workers the session started with.
func (s *Session) Workers() int { return s.opts.Workers }

// Alive reports how many workers are still responding.
func (s *Session) Alive() int { return s.co.Alive() }

// Stats reports the coordinator's transport counters (bytes on the wire,
// frames, exchanges, losses, reassignments).
func (s *Session) Stats() transport.Stats { return s.co.Stats() }

// PeerStats reports per-worker wire counters and heartbeat RTT estimates
// (entry i is party i+1).
func (s *Session) PeerStats() []transport.PeerStats { return s.co.PeerStats() }

// Status snapshots the coordinator's live view of the session for the
// -status endpoint. Safe to call from any goroutine.
func (s *Session) Status() transport.Status { return s.co.Status() }

// CheckpointStatus snapshots the current job's checkpoint progress; nil
// when the session runs without a store (or before the first job). Safe to
// call from any goroutine, including mid-job.
func (s *Session) CheckpointStatus() *checkpoint.Status {
	s.ckMu.Lock()
	saver := s.saver
	s.ckMu.Unlock()
	if saver == nil {
		return nil
	}
	st := saver.Status()
	return &st
}

// ClusterTrace merges everything the session has observed so far — the
// coordinator's own trace events, the telemetry workers shipped at round
// barriers, and a synthetic per-peer counter snapshot — into one
// multi-process Perfetto trace. Requires SessionOptions.Telemetry; call
// after Run (and before Close, which tears the peers down).
func (s *Session) ClusterTrace() (*trace.ClusterTrace, error) {
	if s.tel == nil {
		return nil, fmt.Errorf("dist: session started without Telemetry")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches = append(s.batches, s.co.DrainTelemetry()...)
	if t, ok := s.tel.DrainTelemetry(); ok {
		t.Party, t.OffsetNs = 0, 0
		s.batches = append(s.batches, t)
	}
	// One synthetic peer-stats instant per worker closes the transport
	// lane with final wire counters and heartbeat RTT p99.
	now := time.Now().UnixNano()
	var ps trace.Telemetry
	for _, p := range s.co.PeerStats() {
		ps.Events = append(ps.Events, trace.TeleTransport{
			Kind:  trace.TransportPeerStats,
			Party: p.Party,
			Bytes: p.BytesIn + p.BytesOut,
			RTTNs: int64(p.RTTP99),
			AtNs:  now,
		})
	}
	if len(ps.Events) > 0 {
		s.batches = append(s.batches, ps)
	}
	return trace.BuildClusterTrace(s.batches), nil
}

// Close shuts the session down in order: tell workers there are no more
// jobs, close the connections, and reap the worker processes (killing any
// that fail to exit promptly).
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.co.Shutdown()
	s.ln.Close()
	for _, cmd := range s.cmds {
		if !waitTimeout(cmd, 10*time.Second) {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
	s.cmds = nil
	return nil
}

// kill force-terminates spawned workers (handshake-failure cleanup).
func (s *Session) kill() {
	for _, cmd := range s.cmds {
		cmd.Process.Kill()
		cmd.Wait()
	}
	s.cmds = nil
}

// waitTimeout reaps cmd, giving up (without reaping) after d.
func waitTimeout(cmd *exec.Cmd, d time.Duration) bool {
	done := make(chan struct{})
	go func() {
		cmd.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}
