package dist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"

	"mpcdist/internal/core"
	"mpcdist/internal/trace"
	"mpcdist/internal/transport"
)

// Environment variables that turn a freshly exec'd copy of the current
// binary into a worker process (see MaybeWorkerMain).
const (
	// EnvWorkerAddr carries the coordinator's listen address; its presence
	// is what marks the process as a worker.
	EnvWorkerAddr = "MPCDIST_WORKER_ADDR"
	// EnvWorkerDieSeq (tests only) arms transport.Options.TestDieAtSeq.
	EnvWorkerDieSeq = "MPCDIST_WORKER_DIE_SEQ"
	// EnvWorkerDieParty (tests only) arms transport.Options.TestDieAtParty.
	EnvWorkerDieParty = "MPCDIST_WORKER_DIE_PARTY"
)

// MaybeWorkerMain hijacks the process if it was spawned as a session
// worker (EnvWorkerAddr set): it runs the worker loop and exits, never
// returning. In a normal invocation it returns immediately. Call it first
// thing in main() — and in TestMain for packages whose tests start
// sessions, since the spawned binary is then the test binary itself.
func MaybeWorkerMain() {
	addr := os.Getenv(EnvWorkerAddr)
	if addr == "" {
		return
	}
	os.Exit(WorkerMain(addr))
}

// WorkerMain dials the coordinator at addr and serves jobs until the
// session shuts down. It returns a process exit code.
func WorkerMain(addr string) int { return WorkerMainStatus(addr, "") }

// WorkerMainStatus is WorkerMain with an optional live status endpoint:
// when statusAddr is non-empty the worker serves its transport.Status as
// JSON at http://statusAddr/status for the session's lifetime.
func WorkerMainStatus(addr, statusAddr string) int {
	var opts transport.Options
	if v := os.Getenv(EnvWorkerDieSeq); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcdist worker: bad %s=%q\n", EnvWorkerDieSeq, v)
			return 1
		}
		opts.TestDieAtSeq = n
	}
	if v := os.Getenv(EnvWorkerDieParty); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcdist worker: bad %s=%q\n", EnvWorkerDieParty, v)
			return 1
		}
		opts.TestDieAtParty = n
	}
	w, err := transport.DialWorker(addr, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcdist worker:", err)
		return 1
	}
	defer w.Close()
	if statusAddr != "" {
		srv, err := StartStatus(statusAddr, func() any { return w.Status() })
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpcdist worker:", err)
			return 1
		}
		defer srv.Close()
	}
	if err := Serve(w); err != nil {
		fmt.Fprintln(os.Stderr, "mpcdist worker:", err)
		return 1
	}
	return 0
}

// Serve runs the worker side of a session: receive a job spec, run the
// same deterministic driver the coordinator runs (executing only this
// party's share of each round's machines), ship the result digest, and
// repeat until the coordinator shuts the session down.
func Serve(w *transport.Worker) error {
	// The worker's own flight recorder labels its lane with the party the
	// handshake assigned, so a SIGQUIT dump of a worker process is
	// attributed correctly.
	if _, self := w.Parties(); self > 0 {
		trace.Flight().SetParty(self)
	}
	// When the coordinator's welcome asked for telemetry — which it also
	// does whenever its flight recorder is on — every job's driver
	// observes into a collector, and the transport drains it at each
	// round barrier (plus job end) into fTelemetry frames. The observer
	// changes nothing deterministic — it only records.
	var col *trace.Collector
	if w.TelemetryEnabled() {
		col = &trace.Collector{}
		w.SetTelemetrySource(col.DrainTelemetry)
	}
	for {
		jb, err := w.NextJob()
		if errors.Is(err, transport.ErrShutdown) {
			return nil
		}
		if err != nil {
			return err
		}
		job, err := decodeJob(w.Codec(), jb)
		if err != nil {
			return fmt.Errorf("dist: decoding job: %w", err)
		}
		host := core.Params{
			Parallelism: runtime.GOMAXPROCS(0),
			Ctx:         context.Background(),
			Transport:   w,
		}
		if col != nil {
			host.Observer = col
		}
		res, rerr := runJob(job, host)
		if isTransportErr(rerr) {
			if errors.Is(rerr, transport.ErrShutdown) {
				return nil
			}
			return rerr
		}
		db, err := encodeValue(w.Codec(), digestOf(res, rerr))
		if err != nil {
			return err
		}
		if err := w.FinishJob(db); err != nil {
			return err
		}
	}
}
