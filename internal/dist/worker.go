package dist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"mpcdist/internal/checkpoint"
	"mpcdist/internal/core"
	"mpcdist/internal/trace"
	"mpcdist/internal/transport"
)

// Environment variables that turn a freshly exec'd copy of the current
// binary into a worker process (see MaybeWorkerMain).
const (
	// EnvWorkerAddr carries the coordinator's listen address; its presence
	// is what marks the process as a worker.
	EnvWorkerAddr = "MPCDIST_WORKER_ADDR"
	// EnvWorkerDieSeq (tests only) arms transport.Options.TestDieAtSeq.
	EnvWorkerDieSeq = "MPCDIST_WORKER_DIE_SEQ"
	// EnvWorkerDieParty (tests only) arms transport.Options.TestDieAtParty.
	EnvWorkerDieParty = "MPCDIST_WORKER_DIE_PARTY"
	// EnvWorkerDropConnSeq (tests only) arms
	// transport.Options.TestDropConnAtSeq: the worker severs its own
	// connection at the given exchange and must rejoin within the grace.
	EnvWorkerDropConnSeq = "MPCDIST_WORKER_DROPCONN_SEQ"
	// EnvWorkerDropConnParty (tests only) arms
	// transport.Options.TestDropConnAtParty.
	EnvWorkerDropConnParty = "MPCDIST_WORKER_DROPCONN_PARTY"
	// EnvWorkerHeartbeat carries the session's heartbeat interval (a
	// time.Duration string) so spawned workers ping on the same schedule
	// the coordinator expects.
	EnvWorkerHeartbeat = "MPCDIST_WORKER_HEARTBEAT"
	// EnvWorkerDeadline carries the session's peer deadline (a
	// time.Duration string).
	EnvWorkerDeadline = "MPCDIST_WORKER_DEADLINE"
)

// MaybeWorkerMain hijacks the process if it was spawned as a session
// worker (EnvWorkerAddr set): it runs the worker loop and exits, never
// returning. In a normal invocation it returns immediately. Call it first
// thing in main() — and in TestMain for packages whose tests start
// sessions, since the spawned binary is then the test binary itself.
func MaybeWorkerMain() {
	addr := os.Getenv(EnvWorkerAddr)
	if addr == "" {
		return
	}
	os.Exit(WorkerMain(addr))
}

// WorkerMain dials the coordinator at addr and serves jobs until the
// session shuts down. It returns a process exit code.
func WorkerMain(addr string) int { return WorkerMainStatus(addr, "") }

// WorkerMainStatus is WorkerMain with an optional live status endpoint:
// when statusAddr is non-empty the worker serves its transport.Status as
// JSON at http://statusAddr/status for the session's lifetime.
func WorkerMainStatus(addr, statusAddr string) int {
	return WorkerMainOptions(addr, statusAddr, transport.Options{})
}

// WorkerMainOptions is WorkerMainStatus with explicit transport options
// (mpcworker binds its -heartbeat/-peer-deadline/-netchaos-* flags into
// them). The MPCDIST_WORKER_* environment knobs are layered on top.
func WorkerMainOptions(addr, statusAddr string, opts transport.Options) int {
	intEnv := func(key string, dst *int) bool {
		v := os.Getenv(key)
		if v == "" {
			return true
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcdist worker: bad %s=%q\n", key, v)
			return false
		}
		*dst = n
		return true
	}
	durEnv := func(key string, dst *time.Duration) bool {
		v := os.Getenv(key)
		if v == "" {
			return true
		}
		d, err := time.ParseDuration(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcdist worker: bad %s=%q\n", key, v)
			return false
		}
		*dst = d
		return true
	}
	ok := intEnv(EnvWorkerDieSeq, &opts.TestDieAtSeq) &&
		intEnv(EnvWorkerDieParty, &opts.TestDieAtParty) &&
		intEnv(EnvWorkerDropConnSeq, &opts.TestDropConnAtSeq) &&
		intEnv(EnvWorkerDropConnParty, &opts.TestDropConnAtParty) &&
		durEnv(EnvWorkerHeartbeat, &opts.HeartbeatInterval) &&
		durEnv(EnvWorkerDeadline, &opts.PeerTimeout)
	if !ok {
		return 1
	}
	w, err := transport.DialWorker(addr, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcdist worker:", err)
		return 1
	}
	defer w.Close()
	if statusAddr != "" {
		srv, err := StartStatus(statusAddr, func() any { return w.Status() })
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpcdist worker:", err)
			return 1
		}
		defer srv.Close()
	}
	if err := Serve(w); err != nil {
		fmt.Fprintln(os.Stderr, "mpcdist worker:", err)
		return 1
	}
	return 0
}

// Serve runs the worker side of a session: receive a job spec, run the
// same deterministic driver the coordinator runs (executing only this
// party's share of each round's machines), ship the result digest, and
// repeat until the coordinator shuts the session down.
func Serve(w *transport.Worker) error {
	// The worker's own flight recorder labels its lane with the party the
	// handshake assigned, so a SIGQUIT dump of a worker process is
	// attributed correctly.
	if _, self := w.Parties(); self > 0 {
		trace.Flight().SetParty(self)
	}
	// When the coordinator's welcome asked for telemetry — which it also
	// does whenever its flight recorder is on — every job's driver
	// observes into a collector, and the transport drains it at each
	// round barrier (plus job end) into fTelemetry frames. The observer
	// changes nothing deterministic — it only records.
	var col *trace.Collector
	if w.TelemetryEnabled() {
		col = &trace.Collector{}
		w.SetTelemetrySource(col.DrainTelemetry)
	}
	for {
		jb, err := w.NextJob()
		if errors.Is(err, transport.ErrShutdown) {
			return nil
		}
		if err != nil {
			return err
		}
		job, err := decodeJob(w.Codec(), jb)
		if err != nil {
			return fmt.Errorf("dist: decoding job: %w", err)
		}
		host := core.Params{
			Parallelism: runtime.GOMAXPROCS(0),
			Ctx:         context.Background(),
			Transport:   w,
		}
		if col != nil {
			host.Observer = col
		}
		if len(job.Resume) > 0 {
			// The coordinator resumed from a checkpoint: replay the shipped
			// prefix so this party fast-forwards the identical rounds and
			// the exchange sequence stays aligned.
			rp, err := checkpoint.NewReplayer(job.Resume)
			if err != nil {
				return fmt.Errorf("dist: job resume state: %w", err)
			}
			host.Checkpointer = rp
		}
		res, rerr := runJob(job, host)
		if isTransportErr(rerr) {
			if errors.Is(rerr, transport.ErrShutdown) {
				return nil
			}
			return rerr
		}
		db, err := encodeValue(w.Codec(), digestOf(res, rerr))
		if err != nil {
			return err
		}
		if err := w.FinishJob(db); err != nil {
			return err
		}
	}
}
