package dist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mpcdist/internal/checkpoint"
)

// tearManifest overwrites the job's manifest with truncated JSON — the
// damage a crashed foreign writer (not this store, whose writes are
// atomic) could leave behind.
func tearManifest(t *testing.T, store *checkpoint.Store, digest string) {
	t.Helper()
	path := filepath.Join(store.Dir(), "manifests", digest+".json")
	if err := os.WriteFile(path, []byte(`{"version":1,"job":`), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTCPCheckpointResume drives the distributed resume path end to end
// without killing processes (the CI smoke step covers a real SIGKILL):
// a checkpointed session completes a job, then fresh sessions over the
// same store fast-forward it — fully, and from a truncated prefix that
// simulates a coordinator killed between flushes — with bit-identical
// results. The coordinator ships the resume prefix inside the job spec,
// so the workers' transport sequence numbers stay aligned; any skew here
// fails loudly, not subtly.
func TestTCPCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := parityJobs()[0] // ulam-mpc: two rounds, cheapest pipeline
	local, lerr := runLocal(job)
	if lerr != nil {
		t.Fatal(lerr)
	}

	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := job.SpecDigest()
	if err != nil {
		t.Fatal(err)
	}

	// First session: run and checkpoint the whole job.
	sess, err := NewSession(SessionOptions{Workers: 2, Checkpoint: store, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	distr, derr := sess.Run(job)
	checkParity(t, "ulam-mpc/checkpointed", local, lerr, distr, derr)
	cs := sess.CheckpointStatus()
	if cs == nil || cs.Saves == 0 || cs.Job != digest {
		t.Fatalf("checkpoint status after first run: %+v", cs)
	}
	steps := cs.Saves
	sess.Close()

	// Second session: the whole job fast-forwards, workers included.
	sess2, err := NewSession(SessionOptions{
		Workers: 2, Checkpoint: store, CheckpointEvery: 1, CheckpointResume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	distr2, derr2 := sess2.Run(job)
	checkParity(t, "ulam-mpc/full-resume", local, lerr, distr2, derr2)
	cs2 := sess2.CheckpointStatus()
	if cs2 == nil || cs2.Resumed != steps || cs2.Saves != 0 {
		t.Fatalf("full resume status: %+v, want %d resumed / 0 saves", cs2, steps)
	}
	sess2.Close()

	// Truncate the manifest to its first step — the durable state a
	// coordinator killed right after the first flush would leave — and
	// resume: one round fast-forwards, the rest run live on the cluster.
	man, err := store.Manifest(digest)
	if err != nil {
		t.Fatal(err)
	}
	man.Steps = man.Steps[:1]
	if err := store.WriteManifest(man); err != nil {
		t.Fatal(err)
	}
	sess3, err := NewSession(SessionOptions{
		Workers: 2, Checkpoint: store, CheckpointEvery: 1, CheckpointResume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess3.Close()
	distr3, derr3 := sess3.Run(job)
	checkParity(t, "ulam-mpc/partial-resume", local, lerr, distr3, derr3)
	cs3 := sess3.CheckpointStatus()
	if cs3 == nil || cs3.Resumed != 1 || cs3.Saves != steps-1 {
		t.Fatalf("partial resume status: %+v, want 1 resumed / %d saves", cs3, steps-1)
	}
	// The re-saved suffix must reconstruct the identical manifest: same
	// step count, same content-addressed blobs.
	man2, err := store.Manifest(digest)
	if err != nil {
		t.Fatal(err)
	}
	if len(man2.Steps) != steps {
		t.Fatalf("manifest after partial resume has %d steps, want %d", len(man2.Steps), steps)
	}
	if warnings, err := store.Verify(""); err != nil || len(warnings) != 0 {
		t.Errorf("store verify: %v, %v", warnings, err)
	}
}

// TestTCPCheckpointTornStateFails pins the session-level contract: a torn
// manifest surfaces as its typed error from Run (the caller decides
// whether to restart fresh), never as a silent recompute or a hung
// cluster.
func TestTCPCheckpointTornStateFails(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := parityJobs()[0]
	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := NewSession(SessionOptions{Workers: 2, Checkpoint: store, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(job); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	digest, err := job.SpecDigest()
	if err != nil {
		t.Fatal(err)
	}
	tearManifest(t, store, digest)

	sess2, err := NewSession(SessionOptions{
		Workers: 2, Checkpoint: store, CheckpointEvery: 1, CheckpointResume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	_, rerr := sess2.Run(job)
	var te *checkpoint.TornManifestError
	if !errors.As(rerr, &te) {
		t.Fatalf("run over torn manifest: err = %v, want *TornManifestError", rerr)
	}

	// The session survives: the same job runs clean with resume off on a
	// fresh session (the torn manifest is simply overwritten).
	sess3, err := NewSession(SessionOptions{Workers: 2, Checkpoint: store, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sess3.Close()
	local, lerr := runLocal(job)
	distr, derr := sess3.Run(job)
	checkParity(t, "ulam-mpc/restart-over-torn", local, lerr, distr, derr)
	if _, err := store.Manifest(digest); err != nil {
		t.Errorf("manifest not healed by restart: %v", err)
	}
}
