// Package dist runs the MPC simulator across real worker processes: a
// coordinator process and N workers, connected over TCP (see
// internal/transport), each running the same deterministic algorithm
// driver from an identical job spec — the SPMD contract. Machine
// execution is partitioned across the processes; everything else (driver
// control flow, shuffle, statistics) is computed redundantly and
// identically everywhere, which is what makes the distributed run
// bit-identical to the in-process one and makes mid-round recovery exact.
package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"mpcdist/internal/baseline"
	"mpcdist/internal/core"
	"mpcdist/internal/fault"
	"mpcdist/internal/transport"
)

// Algorithm names accepted by Job.Algo.
const (
	AlgoUlamMPC = "ulam-mpc"
	AlgoEditMPC = "edit-mpc"
	AlgoEditHSS = "edit-hss"
	AlgoLCSMPC  = "lcs-mpc"
)

// Job is the self-contained spec of one distributed MPC execution:
// algorithm, inputs, and every parameter the deterministic driver depends
// on. It is what the coordinator ships to workers at job start (encoded
// with the same payload codec as round traffic), so two processes holding
// equal Jobs are guaranteed to drive identical clusters.
type Job struct {
	Algo string
	Seed int64

	// core.Params knobs (zero values take the library defaults).
	X          float64
	Eps        float64
	MemFactor  float64
	HitConst   float64
	Solver     int
	MaxRetries int

	// Fault plan (all rates zero = fault-free). Mirrors fault.Plan field
	// for field; the plan's decisions are pure functions of these numbers,
	// so every party re-derives the identical schedule.
	FaultSeed       int64
	FaultCrash      float64
	FaultCrashAfter float64
	FaultDrop       float64
	FaultDup        float64
	FaultStraggle   float64
	FaultDelayNs    int64

	// Inputs: S/T for the byte-string algorithms (edit-mpc, edit-hss,
	// lcs-mpc), P/Q for Ulam permutations.
	S, T []byte
	P, Q []int

	// Resume carries the coordinator's checkpoint resume state (an encoded
	// checkpoint.wireState) when the job continues a previous run, so every
	// worker fast-forwards the identical round prefix. Excluded from
	// SpecDigest: resuming does not change what job this is.
	Resume []byte
}

// SpecDigest is the job's durable identity: the sha256 of the codec
// encoding of the spec with the Resume bytes cleared. It keys the
// checkpoint store — a restarted coordinator recomputes the same digest
// from the same inputs and finds its manifest.
func (j Job) SpecDigest() (string, error) {
	j.Resume = nil
	buf, err := transport.NewCodec().Encode(nil, j)
	if err != nil {
		return "", fmt.Errorf("dist: encoding job spec: %w", err)
	}
	h := sha256.Sum256(buf)
	return hex.EncodeToString(h[:]), nil
}

// resultDigest is the end-of-job cross-check a worker ships home: the
// result value and every deterministic model counter. The coordinator
// compares each worker's digest against its own; any mismatch means the
// SPMD runs diverged and the job is unsound.
type resultDigest struct {
	Err         string
	Value       int64
	Guess       int64
	Regime      string
	Rounds      int64
	MaxMachines int64
	MaxWords    int64
	TotalOps    int64
	CriticalOps int64
	CommWords   int64
	Failures    int64
	Retries     int64
}

func init() {
	transport.Register("dist.Job", Job{})
	transport.Register("dist.resultDigest", resultDigest{})
}

// plan reconstructs the job's fault plan; nil when every rate is zero.
func (j Job) plan() *fault.Plan {
	p := &fault.Plan{
		Seed:       j.FaultSeed,
		Crash:      j.FaultCrash,
		CrashAfter: j.FaultCrashAfter,
		Drop:       j.FaultDrop,
		Dup:        j.FaultDup,
		Straggle:   j.FaultStraggle,
		Delay:      time.Duration(j.FaultDelayNs),
	}
	if !p.Active() {
		return nil
	}
	return p
}

// FromParams copies the deterministic fields of p into a job spec.
// Host-local fields (Ctx, Observer, Parallelism, Transport) stay behind:
// each party supplies its own.
func FromParams(algo string, p core.Params) Job {
	j := Job{
		Algo:       algo,
		Seed:       p.Seed,
		X:          p.X,
		Eps:        p.Eps,
		MemFactor:  p.MemFactor,
		HitConst:   p.HitConst,
		Solver:     int(p.Solver),
		MaxRetries: p.MaxRetries,
	}
	if f := p.Faults; f != nil {
		j.FaultSeed = f.Seed
		j.FaultCrash = f.Crash
		j.FaultCrashAfter = f.CrashAfter
		j.FaultDrop = f.Drop
		j.FaultDup = f.Dup
		j.FaultStraggle = f.Straggle
		j.FaultDelayNs = int64(f.Delay)
	}
	return j
}

// params assembles the core.Params a party runs the job with. host
// carries the party-local fields (cancellation, observer, transport).
func (j Job) params(host core.Params) core.Params {
	host.X = j.X
	host.Eps = j.Eps
	host.Seed = j.Seed
	host.MemFactor = j.MemFactor
	host.HitConst = j.HitConst
	host.Solver = core.PairSolver(j.Solver)
	host.MaxRetries = j.MaxRetries
	host.Faults = j.plan()
	return host
}

// runJob executes the job's driver over the given transport. Every party
// of a session calls this with the same Job; only the host fields differ.
func runJob(j Job, host core.Params) (core.Result, error) {
	p := j.params(host)
	switch j.Algo {
	case AlgoUlamMPC:
		return core.UlamMPC(j.P, j.Q, p)
	case AlgoEditMPC:
		return core.EditMPC(j.S, j.T, p)
	case AlgoEditHSS:
		return baseline.HSSEditMPC(j.S, j.T, p)
	case AlgoLCSMPC:
		return baseline.LCSMPC(j.S, j.T, p)
	}
	return core.Result{}, fmt.Errorf("dist: unknown algorithm %q", j.Algo)
}

// digestOf compresses a driver outcome into the cross-check record.
func digestOf(res core.Result, err error) resultDigest {
	d := resultDigest{
		Value:       int64(res.Value),
		Guess:       int64(res.Guess),
		Regime:      res.Regime,
		Rounds:      int64(res.Report.NumRounds),
		MaxMachines: int64(res.Report.MaxMachines),
		MaxWords:    int64(res.Report.MaxWords),
		TotalOps:    res.Report.TotalOps,
		CriticalOps: res.Report.CriticalOps,
		CommWords:   res.Report.CommWords,
		Failures:    int64(res.Report.Failures),
		Retries:     int64(res.Report.Retries),
	}
	if err != nil {
		d.Err = err.Error()
	}
	return d
}

func encodeValue(c *transport.Codec, v any) ([]byte, error) { return c.Encode(nil, v) }

func decodeJob(c *transport.Codec, data []byte) (Job, error) {
	v, err := c.Decode(data)
	if err != nil {
		return Job{}, err
	}
	j, ok := v.(Job)
	if !ok {
		return Job{}, fmt.Errorf("dist: job frame decoded to %T", v)
	}
	return j, nil
}

func decodeDigest(c *transport.Codec, data []byte) (resultDigest, error) {
	v, err := c.Decode(data)
	if err != nil {
		return resultDigest{}, err
	}
	d, ok := v.(resultDigest)
	if !ok {
		return resultDigest{}, fmt.Errorf("dist: result frame decoded to %T", v)
	}
	return d, nil
}
