package fault

import (
	"flag"
	"strings"
	"testing"
	"time"
)

// TestFaultDecisionsDeterministic checks every decision is a pure function of
// its coordinates: repeated evaluation agrees, and equal plans agree.
func TestFaultDecisionsDeterministic(t *testing.T) {
	p := &Plan{Seed: 42, Crash: 0.3, CrashAfter: 0.3, Drop: 0.3, Dup: 0.3, Straggle: 0.3}
	q := &Plan{Seed: 42, Crash: 0.3, CrashAfter: 0.3, Drop: 0.3, Dup: 0.3, Straggle: 0.3}
	for round := 0; round < 4; round++ {
		for m := 0; m < 16; m++ {
			for a := 0; a < 3; a++ {
				if p.CrashBefore(round, m, a) != q.CrashBefore(round, m, a) ||
					p.CrashAfterExec(round, m, a) != q.CrashAfterExec(round, m, a) ||
					p.DropMsg(round, m, a, 0) != q.DropMsg(round, m, a, 0) ||
					p.DupMsg(round, m, a, 0) != q.DupMsg(round, m, a, 0) ||
					p.StraggleDelay(round, m, a) != q.StraggleDelay(round, m, a) {
					t.Fatalf("equal plans disagree at (%d,%d,%d)", round, m, a)
				}
			}
		}
	}
}

// TestFaultDecisionRates checks the Bernoulli decisions land near their rate
// over many coordinates, and that the per-kind streams are not identical.
func TestFaultDecisionRates(t *testing.T) {
	p := &Plan{Seed: 7, Crash: 0.25, Drop: 0.25}
	const trials = 20000
	crashes, drops, agree := 0, 0, 0
	for i := 0; i < trials; i++ {
		c := p.CrashBefore(0, i, 0)
		d := p.DropMsg(0, i, 0, 0)
		if c {
			crashes++
		}
		if d {
			drops++
		}
		if c == d {
			agree++
		}
	}
	check := func(name string, got int) {
		frac := float64(got) / trials
		if frac < 0.22 || frac > 0.28 {
			t.Errorf("%s rate %.3f, want ~0.25", name, frac)
		}
	}
	check("crash", crashes)
	check("drop", drops)
	// Independent 0.25-streams agree with prob 0.625; identical streams 1.0.
	if float64(agree)/trials > 0.7 {
		t.Errorf("crash and drop streams agree on %.3f of coordinates; kind salts not separating them",
			float64(agree)/trials)
	}
}

// TestFaultSeedChangesSchedule checks different seeds give different schedules.
func TestFaultSeedChangesSchedule(t *testing.T) {
	a := &Plan{Seed: 1, Crash: 0.5}
	b := &Plan{Seed: 2, Crash: 0.5}
	same := true
	for i := 0; i < 64 && same; i++ {
		if a.CrashBefore(0, i, 0) != b.CrashBefore(0, i, 0) {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical 64-coordinate crash schedules")
	}
}

// TestFaultNilAndInactive checks nil-safety and the Active gate.
func TestFaultNilAndInactive(t *testing.T) {
	var p *Plan
	if p.Active() || p.CrashBefore(0, 0, 0) || p.CrashAfterExec(0, 0, 0) ||
		p.DropMsg(0, 0, 0, 0) || p.DupMsg(0, 0, 0, 0) || p.StraggleDelay(0, 0, 0) != 0 {
		t.Error("nil plan injected something")
	}
	if p.String() != "fault.Plan(nil)" {
		t.Errorf("nil String() = %q", p.String())
	}
	zero := &Plan{Seed: 99}
	if zero.Active() {
		t.Error("all-zero rates reported Active")
	}
	if !(&Plan{Straggle: 0.1}).Active() {
		t.Error("nonzero straggle not Active")
	}
}

// TestFaultRateBounds checks the degenerate rates: 0 never fires, 1 always.
func TestFaultRateBounds(t *testing.T) {
	always := &Plan{Seed: 5, Crash: 1}
	never := &Plan{Seed: 5, Crash: 0}
	for i := 0; i < 32; i++ {
		if !always.CrashBefore(0, i, 0) {
			t.Fatalf("rate 1 did not fire at machine %d", i)
		}
		if never.CrashBefore(0, i, 0) {
			t.Fatalf("rate 0 fired at machine %d", i)
		}
	}
}

// TestFaultStraggleDelayDefault checks the 2ms default and the override.
func TestFaultStraggleDelayDefault(t *testing.T) {
	p := &Plan{Seed: 3, Straggle: 1}
	if d := p.StraggleDelay(0, 0, 0); d != 2*time.Millisecond {
		t.Errorf("default delay = %v, want 2ms", d)
	}
	p.Delay = 50 * time.Microsecond
	if d := p.StraggleDelay(0, 0, 0); d != 50*time.Microsecond {
		t.Errorf("override delay = %v, want 50µs", d)
	}
}

// TestFaultErrorsNameCoordinates checks the typed errors render their
// coordinates (tests depend on errors.As; operators on the text).
func TestFaultErrorsNameCoordinates(t *testing.T) {
	ce := &CrashError{Round: 2, Name: "chain", Machine: 7, Attempts: 4}
	for _, want := range []string{"machine 7", "round 2", `"chain"`, "4 attempts"} {
		if !strings.Contains(ce.Error(), want) {
			t.Errorf("CrashError %q missing %q", ce.Error(), want)
		}
	}
	de := &DropError{Round: 1, Name: "shuffle", From: 3, To: 9, Seq: 5, Attempts: 2}
	for _, want := range []string{"3->9", "seq 5", "round 1", "2 attempts"} {
		if !strings.Contains(de.Error(), want) {
			t.Errorf("DropError %q missing %q", de.Error(), want)
		}
	}
}

// TestFaultBindFlags checks the shared flag vocabulary parses into a Plan and
// that all-zero rates yield nil (the fault-free fast path).
func TestFaultBindFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	plan := BindFlags(fs)
	if err := fs.Parse([]string{"-fault-seed", "11", "-fault-crash", "0.1", "-fault-delay", "5ms"}); err != nil {
		t.Fatal(err)
	}
	p := plan()
	if p == nil || p.Seed != 11 || p.Crash != 0.1 || p.Delay != 5*time.Millisecond {
		t.Fatalf("parsed plan = %+v", p)
	}

	fs2 := flag.NewFlagSet("t2", flag.ContinueOnError)
	plan2 := BindFlags(fs2)
	if err := fs2.Parse([]string{"-fault-seed", "11"}); err != nil {
		t.Fatal(err)
	}
	if p2 := plan2(); p2 != nil {
		t.Fatalf("all-zero rates should yield nil plan, got %+v", p2)
	}
}
