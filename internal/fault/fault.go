// Package fault is the deterministic fault-injection layer of the MPC
// simulator. Real MPC platforms (MapReduce, Hadoop, Spark) treat machine
// failures and stragglers as the normal case; the paper's algorithms are
// robust to them precisely because every machine's round is a pure
// function of (seed, round, machine, inputs) — the "common seed" device of
// Algorithm 6 makes replay exact. This package supplies the failures; the
// recovery lives in internal/mpc.
//
// A Plan is a fault schedule: given a schedule seed and per-event rates,
// it decides crashes, message loss/duplication, and straggler delays as
// pure functions of their coordinates (round, machine/sender, attempt,
// sequence) via SplitMix64 mixing — the same mixing the simulator uses for
// its random streams. Two runs with the same Plan see byte-identical fault
// schedules regardless of goroutine scheduling, so any failure a chaos run
// uncovers replays from its seed alone.
package fault

import (
	"flag"
	"fmt"
	"time"

	"mpcdist/internal/stats"
)

// Plan is a deterministic fault schedule. The zero value (and a nil *Plan)
// injects nothing; rates are probabilities in [0, 1] evaluated
// independently per coordinate tuple.
type Plan struct {
	// Seed derives every decision; two plans with equal fields produce
	// identical schedules.
	Seed int64
	// Crash is the probability a machine crashes before executing a round
	// attempt (its work is lost before it starts).
	Crash float64
	// CrashAfter is the probability a machine crashes after executing but
	// before its output ships (the attempt's messages are lost).
	CrashAfter float64
	// Drop is the probability one message transmission is lost in the
	// shuffle (per delivery attempt; the simulator retransmits).
	Drop float64
	// Dup is the probability a delivered message arrives twice (the
	// receiver deduplicates by message ID).
	Dup float64
	// Straggle is the probability a machine's execution is delayed by
	// Delay this attempt.
	Straggle float64
	// Delay is the injected straggler delay (0 = 2ms).
	Delay time.Duration
}

// Decision-kind salts keep the independent decision streams disjoint even
// at coinciding (seed, round, machine) coordinates.
const (
	kindCrash      uint64 = 0x6372617368000000 // "crash\0\0\0"
	kindCrashAfter uint64 = 0x61667465722d6372 // "after-cr"
	kindDrop       uint64 = 0x64726f7000000000 // "drop\0\0\0\0"
	kindDup        uint64 = 0x6475700000000000 // "dup\0\0\0\0\0"
	kindStraggle   uint64 = 0x7374726167676c65 // "straggle"
)

// mix64 is the SplitMix64 finalizer — the same mixer internal/mpc uses for
// stream-seed derivation, shared through internal/stats (fault and mpc used
// to hold private copies; one implementation means the fault schedule a
// worker process re-derives from its seed is bit-identical to the
// coordinator's).
func mix64(v uint64) uint64 { return stats.Mix64(v) }

// decide evaluates one Bernoulli decision at the given coordinates. The
// 53-bit mantissa conversion matches rand.Float64's resolution.
func (p *Plan) decide(kind uint64, rate float64, a, b, c int) bool {
	if p == nil {
		return false
	}
	return Decide(p.Seed, kind, rate, a, b, c)
}

// Decide is the shared Bernoulli primitive behind every deterministic
// fault schedule in the repository: a pure function of (seed, kind salt,
// coordinates). internal/netchaos keys its link-fault schedule on the same
// primitive so a wire-chaos run replays from its seed exactly like a
// logical-fault run.
func Decide(seed int64, kind uint64, rate float64, a, b, c int) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return Uniform(seed, kind, a, b, c) < rate
}

// Uniform returns the deterministic uniform [0,1) draw at the given
// coordinates — the quantity Decide thresholds. Exposed for schedules that
// need a magnitude (e.g. netchaos jitter), not just a coin flip.
func Uniform(seed int64, kind uint64, a, b, c int) float64 {
	h := mix64(uint64(seed) ^ kind)
	h = mix64(h ^ uint64(a))
	h = mix64(h ^ uint64(b))
	h = mix64(h ^ uint64(c))
	return float64(h>>11) / (1 << 53)
}

// Active reports whether the plan can inject anything. A nil plan is
// inactive; the simulator's fast path is taken exactly when Active is
// false, so a fault-free run has zero behavioral drift.
func (p *Plan) Active() bool {
	return p != nil && (p.Crash > 0 || p.CrashAfter > 0 || p.Drop > 0 || p.Dup > 0 || p.Straggle > 0)
}

// CrashBefore reports whether the machine crashes before executing the
// given attempt of the round.
func (p *Plan) CrashBefore(round, machine, attempt int) bool {
	if p == nil {
		return false
	}
	return p.decide(kindCrash, p.Crash, round, machine, attempt)
}

// CrashAfterExec reports whether the machine crashes after executing the
// attempt but before its output ships.
func (p *Plan) CrashAfterExec(round, machine, attempt int) bool {
	if p == nil {
		return false
	}
	return p.decide(kindCrashAfter, p.CrashAfter, round, machine, attempt)
}

// DropMsg reports whether transmission attempt `attempt` of the sender's
// seq-th message of the round is lost.
func (p *Plan) DropMsg(round, from, seq, attempt int) bool {
	if p == nil {
		return false
	}
	// Fold seq and attempt into one coordinate with disjoint mixing.
	h := int(mix64(uint64(seq)<<20 ^ uint64(attempt)))
	return p.decide(kindDrop, p.Drop, round, from, h)
}

// DupMsg reports whether a successfully delivered transmission is
// duplicated in flight.
func (p *Plan) DupMsg(round, from, seq, attempt int) bool {
	if p == nil {
		return false
	}
	h := int(mix64(uint64(seq)<<20 ^ uint64(attempt)))
	return p.decide(kindDup, p.Dup, round, from, h)
}

// StraggleDelay returns the injected execution delay for the attempt, 0
// for none.
func (p *Plan) StraggleDelay(round, machine, attempt int) time.Duration {
	if p == nil || !p.decide(kindStraggle, p.Straggle, round, machine, attempt) {
		return 0
	}
	if p.Delay > 0 {
		return p.Delay
	}
	return 2 * time.Millisecond
}

// String renders the schedule parameters; two plans with equal strings
// inject identical schedules.
func (p *Plan) String() string {
	if p == nil {
		return "fault.Plan(nil)"
	}
	return fmt.Sprintf("fault.Plan{seed=%d crash=%g crashAfter=%g drop=%g dup=%g straggle=%g delay=%s}",
		p.Seed, p.Crash, p.CrashAfter, p.Drop, p.Dup, p.Straggle, p.Delay)
}

// CrashError reports a machine whose round could not complete within the
// retry budget: every attempt up to MaxRetries crashed.
type CrashError struct {
	Round    int    // zero-based round index
	Name     string // round name
	Machine  int
	Attempts int // attempts made (initial execution + retries)
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("fault: machine %d crashed on all %d attempts of round %d (%q); retry budget exhausted",
		e.Machine, e.Attempts, e.Round, e.Name)
}

// DropError reports a message that could not be delivered within the
// retry budget: every transmission attempt was dropped.
type DropError struct {
	Round    int
	Name     string
	From, To int
	Seq      int // the sender's message sequence number within the round
	Attempts int
}

func (e *DropError) Error() string {
	return fmt.Sprintf("fault: message %d->%d (seq %d) dropped on all %d attempts of round %d (%q); retry budget exhausted",
		e.From, e.To, e.Seq, e.Attempts, e.Round, e.Name)
}

// BindFlags registers the standard fault-injection flags on fs (the shared
// vocabulary of mpcdist, mpctable, mpcbench, and mpcserve) and returns a
// closure that assembles the Plan after fs.Parse. The closure returns nil
// when every rate is zero, preserving the simulator's fault-free fast
// path.
func BindFlags(fs *flag.FlagSet) func() *Plan {
	seed := fs.Int64("fault-seed", 1, "fault-schedule seed (schedules are deterministic and replayable)")
	crash := fs.Float64("fault-crash", 0, "probability a machine crashes before executing a round attempt")
	crashAfter := fs.Float64("fault-crash-after", 0, "probability a machine crashes after executing, losing its output")
	drop := fs.Float64("fault-drop", 0, "probability a message transmission is lost in the shuffle")
	dup := fs.Float64("fault-dup", 0, "probability a delivered message is duplicated in flight")
	straggle := fs.Float64("fault-straggle", 0, "probability a machine execution is delayed")
	delay := fs.Duration("fault-delay", 2*time.Millisecond, "injected straggler delay")
	return func() *Plan {
		p := &Plan{Seed: *seed, Crash: *crash, CrashAfter: *crashAfter,
			Drop: *drop, Dup: *dup, Straggle: *straggle, Delay: *delay}
		if !p.Active() {
			return nil
		}
		return p
	}
}
