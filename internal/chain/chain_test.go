package chain

import (
	"math/rand"
	"testing"

	"mpcdist/internal/editdist"
	"mpcdist/internal/ulam"
)

// allTuples enumerates every (block, window) pair — including empty
// windows — for blocks of size bs partitioning s, with exact distances.
func allTuples(s, sbar []byte, bs int) []Tuple {
	var ts []Tuple
	for l := 0; l < len(s); l += bs {
		r := l + bs - 1
		if r > len(s)-1 {
			r = len(s) - 1
		}
		block := s[l : r+1]
		for g := 0; g < len(sbar); g++ {
			// Empty window at position g.
			ts = append(ts, Tuple{L: l, R: r, G: g, K: g - 1, D: r - l + 1})
			for k := g; k < len(sbar); k++ {
				d := editdist.Distance(block, sbar[g:k+1], nil)
				ts = append(ts, Tuple{L: l, R: r, G: g, K: k, D: d})
			}
		}
		if len(sbar) == 0 {
			ts = append(ts, Tuple{L: l, R: r, G: 0, K: -1, D: r - l + 1})
		}
	}
	return ts
}

func randBytes(rng *rand.Rand, n, sigma int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte('a' + rng.Intn(sigma))
	}
	return s
}

func TestEditCostExactWithFullTupleSet(t *testing.T) {
	// With every possible tuple available, the chain DP must recover the
	// exact edit distance: any optimal alignment decomposes into per-block
	// windows plus inserted characters between windows.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(14)
		m := rng.Intn(14)
		s := randBytes(rng, n, 3)
		sbar := randBytes(rng, m, 3)
		bs := 1 + rng.Intn(n)
		ts := allTuples(s, sbar, bs)
		want := editdist.Distance(s, sbar, nil)
		if got := EditCostQuadratic(ts, n, m, false, nil); got != want {
			t.Fatalf("EditCostQuadratic = %d, want %d (s=%q sbar=%q bs=%d)", got, want, s, sbar, bs)
		}
		if got := EditCost(ts, n, m, false, nil); got != want {
			t.Fatalf("EditCost = %d, want %d (s=%q sbar=%q bs=%d)", got, want, s, sbar, bs)
		}
	}
}

func TestUlamCostExactWithFullTupleSet(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		u := 20
		s := rng.Perm(u)[:n]
		sbar := rng.Perm(u)[:rng.Intn(10)]
		bs := 1 + rng.Intn(n)
		var ts []Tuple
		for l := 0; l < len(s); l += bs {
			r := l + bs - 1
			if r > len(s)-1 {
				r = len(s) - 1
			}
			block := s[l : r+1]
			for g := 0; g < len(sbar); g++ {
				for k := g; k < len(sbar); k++ {
					d := ulam.Exact(block, sbar[g:k+1], nil)
					ts = append(ts, Tuple{L: l, R: r, G: g, K: k, D: d})
				}
			}
		}
		want := ulam.Exact(s, sbar, nil)
		if got := UlamCost(ts, len(s), len(sbar), nil); got != want {
			t.Fatalf("UlamCost = %d, want %d (s=%v sbar=%v bs=%d)", got, want, s, sbar, bs)
		}
	}
}

func TestUlamCostNoTuples(t *testing.T) {
	if got := UlamCost(nil, 5, 3, nil); got != 5 {
		t.Errorf("UlamCost(nil) = %d, want 5", got)
	}
	if got := EditCost(nil, 5, 3, false, nil); got != 8 {
		t.Errorf("EditCost(nil) = %d, want 8", got)
	}
}

func TestEditCostFenwickMatchesQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 300; trial++ {
		n := 5 + rng.Intn(40)
		m := 5 + rng.Intn(40)
		nt := rng.Intn(30)
		ts := make([]Tuple, nt)
		for i := range ts {
			l := rng.Intn(n)
			r := l + rng.Intn(n-l)
			g := rng.Intn(m)
			var k int
			if rng.Intn(5) == 0 {
				k = g - 1 // empty window
			} else {
				k = g + rng.Intn(m-g)
			}
			ts[i] = Tuple{L: l, R: r, G: g, K: k, D: rng.Intn(10)}
		}
		for _, overlap := range []bool{false, true} {
			want := EditCostQuadratic(ts, n, m, overlap, nil)
			got := EditCost(ts, n, m, overlap, nil)
			if got != want {
				t.Fatalf("overlap=%v: Fenwick %d != quadratic %d (tuples=%v n=%d m=%d)",
					overlap, got, want, ts, n, m)
			}
		}
	}
}

func TestEditCostOverlapNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 100; trial++ {
		n, m := 20, 20
		ts := make([]Tuple, 10)
		for i := range ts {
			l := rng.Intn(n)
			r := l + rng.Intn(n-l)
			g := rng.Intn(m)
			k := g + rng.Intn(m-g)
			ts[i] = Tuple{L: l, R: r, G: g, K: k, D: rng.Intn(5)}
		}
		strict := EditCost(ts, n, m, false, nil)
		loose := EditCost(ts, n, m, true, nil)
		if loose > strict {
			t.Fatalf("overlap-allowed cost %d > strict cost %d", loose, strict)
		}
	}
}

func TestEditCostOverlapCharging(t *testing.T) {
	// Two tuples whose windows overlap by 2: chaining them must pay the
	// overlap. s = [0..9], sbar = [0..9].
	ts := []Tuple{
		{L: 0, R: 4, G: 0, K: 5, D: 0},
		{L: 5, R: 9, G: 4, K: 9, D: 0},
	}
	// Chain: d = 0 + (5-4-1=0 sgap) + (5-4+1=2 overlap) + 0, end cost 0.
	if got := EditCost(ts, 10, 10, true, nil); got != 2 {
		t.Errorf("overlap chain cost = %d, want 2", got)
	}
	// Without overlap allowed, each tuple alone: e.g. first tuple then
	// 5 deletions + 4 insertions... best single-tuple completion:
	// tuple0: 0+0+0 + (10-1-4)+(10-1-5) = 9; tuple1: 5+4+0+0 = 9.
	if got := EditCost(ts, 10, 10, false, nil); got != 9 {
		t.Errorf("strict cost = %d, want 9", got)
	}
}

func TestLCSScoreChainExactWithFullTupleSet(t *testing.T) {
	// With every (block, window) pair scored by exact LCS, the chain must
	// recover the global LCS: an optimal matching decomposes into
	// per-block windows.
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(12)
		m := rng.Intn(12)
		s := randBytes(rng, n, 3)
		sbar := randBytes(rng, m, 3)
		bs := 1 + rng.Intn(n)
		var ts []Tuple
		for l := 0; l < n; l += bs {
			r := l + bs - 1
			if r > n-1 {
				r = n - 1
			}
			for g := 0; g < m; g++ {
				for k := g; k < m; k++ {
					score := lcsNaive(s[l:r+1], sbar[g:k+1])
					ts = append(ts, Tuple{L: l, R: r, G: g, K: k, D: score})
				}
			}
		}
		want := lcsNaive(s, sbar)
		got, picked := LCSScoreChain(ts, nil)
		if got != want {
			t.Fatalf("LCSScoreChain = %d, want %d (s=%q sbar=%q bs=%d)", got, want, s, sbar, bs)
		}
		sum := 0
		prevR, prevK := -1, -1
		for _, tp := range picked {
			if tp.L <= prevR || tp.G <= prevK {
				t.Fatalf("chain overlaps: %+v", picked)
			}
			sum += tp.D
			prevR, prevK = tp.R, tp.K
		}
		if sum != got {
			t.Fatalf("chain sum %d != value %d", sum, got)
		}
	}
}

func lcsNaive(a, b []byte) int {
	d := make([][]int, len(a)+1)
	for i := range d {
		d[i] = make([]int, len(b)+1)
	}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				d[i][j] = d[i-1][j-1] + 1
			} else if d[i-1][j] > d[i][j-1] {
				d[i][j] = d[i-1][j]
			} else {
				d[i][j] = d[i][j-1]
			}
		}
	}
	return d[len(a)][len(b)]
}

func TestLCSScoreEmpty(t *testing.T) {
	if got := LCSScore(nil, nil); got != 0 {
		t.Errorf("empty LCSScore = %d", got)
	}
}

func TestLCSScoreFenwickMatchesQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 300; trial++ {
		n := 5 + rng.Intn(40)
		m := 5 + rng.Intn(40)
		nt := rng.Intn(30)
		ts := make([]Tuple, nt)
		for i := range ts {
			l := rng.Intn(n)
			r := l + rng.Intn(n-l)
			g := rng.Intn(m)
			k := g + rng.Intn(m-g)
			ts[i] = Tuple{L: l, R: r, G: g, K: k, D: rng.Intn(10)}
		}
		want, _ := LCSScoreChain(ts, nil)
		if got := LCSScore(ts, nil); got != want {
			t.Fatalf("Fenwick LCSScore %d != quadratic %d (%v)", got, want, ts)
		}
	}
}
