// Package chain implements the "second phase" dynamic programs of the
// paper: given tuples — (block of s, candidate substring of s-bar,
// distance) triples gathered by the first round(s) — select a chain of
// tuples forming a global transformation of s into s-bar of minimum total
// cost.
//
// Two cost models are provided, matching the paper's two algorithms:
//
//   - UlamCost (Algorithm 2): the characters between two consecutive chosen
//     tuples cost max(s-gap, sbar-gap), because with distinct characters
//     min(p, q) of them can be substituted pairwise.
//   - EditCost (Algorithm 4): the characters between tuples cost
//     s-gap + sbar-gap (deletions plus insertions).
//
// EditCost optionally admits overlapping candidate substrings, charging the
// overlap (the "minor difference" noted in Section 5.2.3 for the
// large-distance regime), and is implemented both as the transparent
// quadratic DP printed in the paper and as a Fenwick-accelerated
// O(T log T) variant (the "suitable data structure" remark).
//
// Phase attribution: chain has no Cluster.Run call sites of its own — the
// DPs execute on the single machine of each driver's final round
// ("ulam/chain", "edit-small/chain", "edit-large/chain", and the baseline
// chain rounds), so every operation counted here is charged to that
// round's trace.PhaseChain.
//
// All coordinates are 0-based and inclusive.
package chain

import (
	"sort"

	"mpcdist/internal/bitree"
	"mpcdist/internal/stats"
)

// Tuple is one partial solution: block s[L..R] transforms into
// sbar[G..K] at cost D. An empty candidate substring is encoded K = G-1.
type Tuple struct {
	L, R int // block interval in s, inclusive
	G, K int // candidate interval in sbar, inclusive (K = G-1 if empty)
	D    int // distance (or distance upper bound) for this pair
}

const inf = int(^uint(0) >> 2)

// UlamCost runs Algorithm 2: the minimum cost of transforming s (length n)
// into sbar (length m) choosing a non-overlapping increasing chain of
// tuples, with max-gap costs. Quadratic in len(tuples), as in the paper.
// An empty tuple set yields max(n, m) (full substitution).
func UlamCost(tuples []Tuple, n, m int, ops *stats.Ops) int {
	v, _ := UlamCostChain(tuples, n, m, ops)
	return v
}

// UlamCostChain is UlamCost plus the chain realizing it: the selected
// tuples in increasing block order. An empty chain means the whole
// transformation is a bulk substitution/indel.
func UlamCostChain(tuples []Tuple, n, m int, ops *stats.Ops) (int, []Tuple) {
	ts := append([]Tuple(nil), tuples...)
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].L != ts[b].L {
			return ts[a].L < ts[b].L
		}
		return ts[a].G < ts[b].G
	})
	best := maxInt(n, m) // use no tuples at all
	bestEnd := -1
	d := make([]int, len(ts))
	parent := make([]int, len(ts))
	var work int64
	for a := range ts {
		t := ts[a]
		d[a] = maxInt(t.L, t.G) + t.D
		parent[a] = -1
		for b := 0; b < a; b++ {
			p := ts[b]
			if p.R < t.L && p.K < t.G && d[b] < inf {
				gap := maxInt(t.L-p.R-1, t.G-p.K-1)
				if c := d[b] + gap + t.D; c < d[a] {
					d[a] = c
					parent[a] = b
				}
			}
		}
		work += int64(a + 1)
		if c := d[a] + maxInt(n-1-t.R, m-1-t.K); c < best {
			best = c
			bestEnd = a
		}
	}
	ops.Add(work)
	var out []Tuple
	for at := bestEnd; at >= 0; at = parent[at] {
		out = append(out, ts[at])
	}
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	return best, out
}

// EditCostQuadratic runs Algorithm 4 exactly as printed (additive gap
// costs, quadratic time). When allowOverlap is true, tuples whose candidate
// substrings intersect a predecessor's may still chain, paying the overlap
// length, per Section 5.2.3.
func EditCostQuadratic(tuples []Tuple, n, m int, allowOverlap bool, ops *stats.Ops) int {
	v, _ := EditCostChain(tuples, n, m, allowOverlap, ops)
	return v
}

// EditCostChain is EditCostQuadratic plus the chain realizing the value.
func EditCostChain(tuples []Tuple, n, m int, allowOverlap bool, ops *stats.Ops) (int, []Tuple) {
	ts := append([]Tuple(nil), tuples...)
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].L != ts[b].L {
			return ts[a].L < ts[b].L
		}
		return ts[a].G < ts[b].G
	})
	best := n + m
	bestEnd := -1
	d := make([]int, len(ts))
	parent := make([]int, len(ts))
	var work int64
	for a := range ts {
		t := ts[a]
		d[a] = t.L + t.G + t.D
		parent[a] = -1
		for b := 0; b < a; b++ {
			p := ts[b]
			if p.R >= t.L || d[b] >= inf {
				continue
			}
			sgap := t.L - p.R - 1
			var bgap int
			switch {
			case p.K < t.G:
				bgap = t.G - p.K - 1
			case allowOverlap:
				bgap = p.K - t.G + 1 // remove the common part
			default:
				continue
			}
			if c := d[b] + sgap + bgap + t.D; c < d[a] {
				d[a] = c
				parent[a] = b
			}
		}
		work += int64(a + 1)
		if c := d[a] + (n - 1 - t.R) + (m - 1 - t.K); c < best {
			best = c
			bestEnd = a
		}
	}
	ops.Add(work)
	var out []Tuple
	for at := bestEnd; at >= 0; at = parent[at] {
		out = append(out, ts[at])
	}
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	return best, out
}

// EditCost computes the same value as EditCostQuadratic in O(T log T) using
// two Fenwick trees over the candidate endpoints: for a tuple a the
// transition cost splits additively into
//
//	kappa' <  gamma_a:  (L_a + G_a - 2·0) + (D[b] - R_b - K_b) - 2
//	kappa' >= gamma_a:  (L_a - G_a)       + (D[b] - R_b + K_b)
//
// so prefix/suffix minima over compressed K values suffice. Tuples are
// inserted once their R is below the current query's L (their D values are
// final by then, since L_b <= R_b < L_a).
func EditCost(tuples []Tuple, n, m int, allowOverlap bool, ops *stats.Ops) int {
	ts := append([]Tuple(nil), tuples...)
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].L != ts[b].L {
			return ts[a].L < ts[b].L
		}
		return ts[a].G < ts[b].G
	})
	// byR: insertion order.
	byR := make([]int, len(ts))
	for i := range byR {
		byR[i] = i
	}
	sort.Slice(byR, func(x, y int) bool { return ts[byR[x]].R < ts[byR[y]].R })

	// Compress K values.
	keys := make([]int, len(ts))
	for i, t := range ts {
		keys[i] = t.K
	}
	sort.Ints(keys)
	keys = dedupInts(keys)
	rank := func(v int) int { return sort.SearchInts(keys, v) }
	nk := len(keys)

	pre := bitree.NewMin(nk + 1) // min over K <= q of D[b]-R_b-K_b
	suf := bitree.NewMin(nk + 1) // min over K >= q of D[b]-R_b+K_b (reversed)

	d := make([]int, len(ts))
	best := n + m
	ins := 0
	var work int64
	for a := range ts {
		t := ts[a]
		for ins < len(byR) && ts[byR[ins]].R < t.L {
			b := byR[ins]
			p := ts[b]
			r := rank(p.K)
			pre.Update(r, int64(d[b]-p.R-p.K))
			suf.Update(nk-1-r, int64(d[b]-p.R+p.K))
			ins++
			work++
		}
		d[a] = t.L + t.G + t.D
		// kappa' <= gamma_a - 1: prefix over ranks of values <= G-1.
		hi := sort.SearchInts(keys, t.G) - 1 // last index with key <= G-1
		if v := pre.PrefixMin(hi); v < bitree.Inf {
			if c := int(v) + t.L + t.G - 2 + t.D; c < d[a] {
				d[a] = c
			}
		}
		if allowOverlap {
			// kappa' >= gamma_a: suffix over ranks of values >= G.
			lo := sort.SearchInts(keys, t.G) // first index with key >= G
			if v := suf.PrefixMin(nk - 1 - lo); v < bitree.Inf {
				if c := int(v) + t.L - t.G + t.D; c < d[a] {
					d[a] = c
				}
			}
		}
		work += 2
		if c := d[a] + (n - 1 - t.R) + (m - 1 - t.K); c < best {
			best = c
		}
	}
	ops.Add(work)
	return best
}

func dedupInts(s []int) []int {
	out := s[:0]
	for _, v := range s {
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// LCSScore returns the maximum total score of an ordered, non-overlapping
// chain of tuples, where Tuple.D holds the LCS (score) of the pair instead
// of a distance — the maximization dual of EditCost used by the LCS MPC
// extension. Gaps contribute nothing. Implemented with a Fenwick
// prefix-max over candidate endpoints in O(T log T); LCSScoreChain is the
// quadratic variant that also recovers a chain.
func LCSScore(tuples []Tuple, ops *stats.Ops) int {
	ts := append([]Tuple(nil), tuples...)
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].L != ts[b].L {
			return ts[a].L < ts[b].L
		}
		return ts[a].G < ts[b].G
	})
	byR := make([]int, len(ts))
	for i := range byR {
		byR[i] = i
	}
	sort.Slice(byR, func(x, y int) bool { return ts[byR[x]].R < ts[byR[y]].R })
	keys := make([]int, len(ts))
	for i, t := range ts {
		keys[i] = t.K
	}
	sort.Ints(keys)
	keys = dedupInts(keys)
	tree := bitree.NewMax(len(keys) + 1)
	d := make([]int, len(ts))
	best := 0
	ins := 0
	var work int64
	for a := range ts {
		t := ts[a]
		for ins < len(byR) && ts[byR[ins]].R < t.L {
			b := byR[ins]
			tree.Update(sort.SearchInts(keys, ts[b].K), int64(d[b]))
			ins++
			work++
		}
		d[a] = t.D
		// Predecessors need K < G: prefix max over key ranks < rank(G).
		hi := sort.SearchInts(keys, t.G) - 1
		if v := tree.PrefixMax(hi); v > 0 {
			d[a] = int(v) + t.D
		}
		work += 2
		if d[a] > best {
			best = d[a]
		}
	}
	ops.Add(work)
	return best
}

// LCSScoreChain is LCSScore plus a chain realizing it.
func LCSScoreChain(tuples []Tuple, ops *stats.Ops) (int, []Tuple) {
	ts := append([]Tuple(nil), tuples...)
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].L != ts[b].L {
			return ts[a].L < ts[b].L
		}
		return ts[a].G < ts[b].G
	})
	best, bestEnd := 0, -1
	d := make([]int, len(ts))
	parent := make([]int, len(ts))
	var work int64
	for a := range ts {
		t := ts[a]
		d[a] = t.D
		parent[a] = -1
		for b := 0; b < a; b++ {
			p := ts[b]
			if p.R < t.L && p.K < t.G {
				if c := d[b] + t.D; c > d[a] {
					d[a] = c
					parent[a] = b
				}
			}
		}
		work += int64(a + 1)
		if d[a] > best {
			best, bestEnd = d[a], a
		}
	}
	ops.Add(work)
	var out []Tuple
	for at := bestEnd; at >= 0; at = parent[at] {
		out = append(out, ts[at])
	}
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	return best, out
}
