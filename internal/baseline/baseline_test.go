package baseline

import (
	"math/rand"
	"testing"

	"mpcdist/internal/core"
	"mpcdist/internal/editdist"
	"mpcdist/internal/lcs"
	"mpcdist/internal/workload"
)

func TestHSSValidation(t *testing.T) {
	if _, err := HSSEditMPC([]byte("ab"), []byte("cd"), core.Params{X: 0.6}); err == nil {
		t.Error("X >= 1/2 accepted")
	}
}

func TestHSSEqual(t *testing.T) {
	res, err := HSSEditMPC([]byte("same"), []byte("same"), core.Params{X: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Errorf("equal: %d", res.Value)
	}
}

func TestHSSApproxFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	p := core.Params{X: 0.25, Eps: 0.5, Seed: 1}
	for trial := 0; trial < 3; trial++ {
		n := 500 + rng.Intn(300)
		s := workload.RandomString(rng, n, 4)
		sbar := workload.PlantedEdits(rng, s, 5+rng.Intn(40), 4)
		res, err := HSSEditMPC(s, sbar, p)
		if err != nil {
			t.Fatal(err)
		}
		exact := editdist.Distance(s, sbar, nil)
		if res.Value < exact {
			t.Fatalf("HSS value %d below exact %d", res.Value, exact)
		}
		if float64(res.Value) > (1+p.Eps)*float64(exact)+1 {
			t.Errorf("HSS factor %d/%d exceeds 1+eps", res.Value, exact)
		}
		if res.Report.NumRounds != 2 {
			t.Errorf("rounds = %d, want 2", res.Report.NumRounds)
		}
	}
}

func TestHSSUsesMoreMachinesThanOurs(t *testing.T) {
	// The paper's improvement: at the same memory cap, [20] needs one
	// machine per (block, start) pair, ours packs n^{1-delta} of them.
	rng := rand.New(rand.NewSource(92))
	n := 900
	s := workload.RandomString(rng, n, 4)
	sbar := workload.PlantedEdits(rng, s, 25, 4)
	p := core.Params{X: 0.25, Eps: 0.5, Seed: 2}

	hss, err := HSSEditMPC(s, sbar, p)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := core.EditMPC(s, sbar, p)
	if err != nil {
		t.Fatal(err)
	}
	if hss.Report.MaxMachines <= ours.Report.MaxMachines {
		t.Errorf("expected HSS machines (%d) > ours (%d)",
			hss.Report.MaxMachines, ours.Report.MaxMachines)
	}
	t.Logf("machines: HSS=%d ours=%d (ratio %.2f)", hss.Report.MaxMachines,
		ours.Report.MaxMachines, float64(hss.Report.MaxMachines)/float64(ours.Report.MaxMachines))
}

func TestHSSFarStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	n := 300
	s := workload.RandomString(rng, n, 10)
	sbar := workload.RandomString(rng, n, 10)
	res, err := HSSEditMPC(s, sbar, core.Params{X: 0.25, Eps: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact := editdist.Distance(s, sbar, nil)
	if res.Value < exact || float64(res.Value) > 1.5*float64(exact)+1 {
		t.Errorf("far: value %d, exact %d", res.Value, exact)
	}
}

func TestSequentialOracles(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	a := workload.RandomString(rng, 120, 4)
	b := workload.RandomString(rng, 110, 4)
	if SequentialExact(a, b, nil) != SequentialMyers(a, b, nil) {
		t.Error("sequential oracles disagree")
	}
}

func TestLCSMPCLowerBoundAndAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 3; trial++ {
		n := 400 + rng.Intn(200)
		s := workload.RandomString(rng, n, 4)
		sbar := workload.PlantedEdits(rng, s, 20, 4) // similar strings: LCS ~ n
		res, err := LCSMPC(s, sbar, core.Params{X: 0.25, Eps: 0.5, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		exact := lcs.Length(s, sbar, nil)
		if res.Value > exact {
			t.Fatalf("LCSMPC value %d exceeds true LCS %d", res.Value, exact)
		}
		if float64(res.Value) < float64(exact)/(1.0+2*0.5) {
			t.Errorf("LCSMPC value %d too far below LCS %d", res.Value, exact)
		}
		if res.Report.NumRounds != 2 {
			t.Errorf("rounds = %d, want 2", res.Report.NumRounds)
		}
	}
}

func TestLCSMPCEqualAndDisjoint(t *testing.T) {
	res, err := LCSMPC([]byte("samesame"), []byte("samesame"), core.Params{X: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 8 {
		t.Errorf("equal strings LCS = %d, want 8", res.Value)
	}
	res, err = LCSMPC([]byte("aaaa"), []byte("bbbb"), core.Params{X: 0.25, Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Errorf("disjoint strings LCS = %d, want 0", res.Value)
	}
	if _, err := LCSMPC([]byte("x"), []byte("y"), core.Params{X: 0.9}); err == nil {
		t.Error("X >= 1/2 accepted")
	}
}
