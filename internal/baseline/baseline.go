// Package baseline implements the comparison algorithms of the paper's
// Table 1: the 1+eps, two-round MPC edit-distance algorithm of Hajiaghayi,
// Seddighin, and Sun [20] — which assigns every (block, candidate
// substring) pair to its own machine and therefore uses Õ(n^{2x}) machines
// where the paper's algorithm needs Õ(n^{2x-(1-delta)}) in the small
// regime — plus the sequential oracles used to certify approximation
// factors.
package baseline

import (
	"bytes"
	"fmt"
	"math"

	"mpcdist/internal/cand"
	"mpcdist/internal/chain"
	"mpcdist/internal/core"
	"mpcdist/internal/editdist"
	"mpcdist/internal/mpc"
	"mpcdist/internal/stats"
	"mpcdist/internal/trace"
)

// pairJob is one (block, starting point) work unit: the defining difference
// from the paper's algorithm is that no packing of several starts onto one
// machine happens here.
type pairJob struct {
	L, R   int
	Block  []byte
	SegOff int
	Seg    []byte
	Start  int
	Guess  int
	MaxWin int
}

// Words implements mpc.Payload.
func (j *pairJob) Words() int {
	return 7 + (len(j.Block)+7)/8 + (len(j.Seg)+7)/8
}

type tupleMsg chain.Tuple

// Words implements mpc.Payload.
func (tupleMsg) Words() int { return 5 }

type valueMsg int

// Words implements mpc.Payload.
func (valueMsg) Words() int { return 1 }

// HSSEditMPC approximates ed(s, sbar) within 1+eps in two rounds per
// distance guess, using one machine per (block, candidate starting point)
// as in [20]. Exact pair distances use the same hybrid kernel as the
// paper-algorithm implementation so that machine and work counts are
// directly comparable.
func HSSEditMPC(s, sbar []byte, p core.Params) (core.Result, error) {
	p = p.WithDefaults()
	if p.Algo == "" {
		p.Algo = "edit-hss"
	}
	n, m := len(s), len(sbar)
	N := n
	if m > N {
		N = m
	}
	if N == 0 {
		return core.Result{Value: 0, Regime: "equal"}, nil
	}
	if p.X <= 0 || p.X >= 0.5 {
		return core.Result{}, fmt.Errorf("baseline: X = %v outside (0, 1/2)", p.X)
	}
	if n == m && bytes.Equal(s, sbar) {
		return core.Result{Value: 0, Regime: "equal"}, nil
	}
	best := n + m
	var reports []mpc.Report
	for _, g := range guessLadder(p.Eps, n+m) {
		v, rep, err := hssGuess(s, sbar, g, p)
		if err != nil {
			return core.Result{}, err
		}
		reports = append(reports, rep)
		if v < best {
			best = v
		}
		if float64(v) <= (1+p.Eps)*float64(g) || g >= n+m {
			return core.Result{
				Value:        best,
				Guess:        g,
				Regime:       "hss",
				Report:       core.AggregateReports(reports),
				GuessReports: reports,
			}, nil
		}
	}
	return core.Result{Value: best, Report: core.AggregateReports(reports), GuessReports: reports}, nil
}

func hssGuess(s, sbar []byte, g int, p core.Params) (int, mpc.Report, error) {
	n, m := len(s), len(sbar)
	N := n
	if m > N {
		N = m
	}
	cl := p.Cluster(N)
	epsP := p.Eps / 4
	bsz := int(math.Round(math.Pow(float64(N), 1-p.X)))
	if bsz < 1 {
		bsz = 1
	}
	nBlocks := (n + bsz - 1) / bsz
	grid := int(epsP * float64(g) / float64(maxInt(nBlocks, 1)))
	if grid < 1 {
		grid = 1
	}
	maxWin := int(float64(bsz)/epsP) + 1

	inputs := make(map[int][]mpc.Payload)
	id := 0
	for l := 0; l < n; l += bsz {
		r := l + bsz - 1
		if r > n-1 {
			r = n - 1
		}
		for _, start := range cand.Starts(l, g, grid, m) {
			segHi := start + maxWin
			if segHi > m {
				segHi = m
			}
			inputs[id] = []mpc.Payload{&pairJob{
				L: l, R: r,
				Block:  s[l : r+1],
				SegOff: start,
				Seg:    sbar[start:segHi],
				Start:  start,
				Guess:  g,
				MaxWin: maxWin,
			}}
			id++
		}
	}
	collector := 0
	if len(inputs) == 0 {
		return n + m, cl.Report(), nil
	}
	dFilter := int((1 + p.Eps) * float64(g))

	out, err := cl.Run("hss/pairs", trace.PhaseCandidates, inputs, func(x *mpc.Ctx, in []mpc.Payload) {
		for _, pl := range in {
			job := pl.(*pairJob)
			blen := len(job.Block)
			gamma := job.Start
			var kappas, prefixes []int
			for _, kappa := range cand.Ends(gamma, blen, m, epsP, job.MaxWin, job.Guess) {
				if kappa-job.SegOff >= len(job.Seg) {
					continue
				}
				kappas = append(kappas, kappa)
				prefixes = append(prefixes, kappa-gamma+1)
			}
			if len(kappas) == 0 {
				continue
			}
			// Same batched exact kernel as the core small regime, so work
			// counts are directly comparable.
			ds := editdist.MyersMulti(job.Block, job.Seg[gamma-job.SegOff:], prefixes, x.Counter())
			for i, kappa := range kappas {
				if ds[i] > dFilter || ds[i] > blen+prefixes[i] {
					continue
				}
				x.Send(collector, tupleMsg(chain.Tuple{L: job.L, R: job.R, G: gamma, K: kappa, D: ds[i]}))
			}
		}
	})
	if err != nil {
		return 0, mpc.Report{}, err
	}
	if _, ok := out[collector]; !ok {
		out[collector] = []mpc.Payload{}
	}
	fin, err := cl.Run("hss/chain", trace.PhaseChain, out, func(x *mpc.Ctx, in []mpc.Payload) {
		tuples := make([]chain.Tuple, 0, len(in))
		for _, pl := range in {
			tuples = append(tuples, chain.Tuple(pl.(tupleMsg)))
		}
		x.Send(collector, valueMsg(chain.EditCost(tuples, n, m, false, x.Counter())))
	})
	if err != nil {
		return 0, mpc.Report{}, err
	}
	vals := fin[collector]
	if len(vals) != 1 {
		return 0, mpc.Report{}, fmt.Errorf("baseline: chain produced %d values", len(vals))
	}
	return int(vals[0].(valueMsg)), cl.Report(), nil
}

// SequentialExact is the classic quadratic DP, the oracle all MPC values
// are certified against.
func SequentialExact(s, sbar []byte, ops *stats.Ops) int {
	return editdist.Distance(s, sbar, ops)
}

// SequentialMyers is the bit-parallel exact algorithm.
func SequentialMyers(s, sbar []byte, ops *stats.Ops) int {
	return editdist.Myers(s, sbar, ops)
}

func guessLadder(eps float64, max int) []int {
	if max < 1 {
		return []int{1}
	}
	var out []int
	v := 1.0
	for {
		iv := int(math.Ceil(v))
		if len(out) == 0 || iv > out[len(out)-1] {
			out = append(out, iv)
		}
		if iv >= max {
			return out
		}
		v *= 1 + eps
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
