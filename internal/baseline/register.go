package baseline

import "mpcdist/internal/mpc"

// Payload-codec registrations for the baseline algorithms' wire types (see
// internal/core/register.go for the convention).
func init() {
	mpc.RegisterPayload("baseline.pairJob", (*pairJob)(nil))
	mpc.RegisterPayload("baseline.tupleMsg", tupleMsg{})
	mpc.RegisterPayload("baseline.valueMsg", valueMsg(0))
	mpc.RegisterPayload("baseline.lcsJob", (*lcsJob)(nil))
}
