package baseline

import (
	"math/rand"
	"testing"

	"mpcdist/internal/core"
	"mpcdist/internal/mpc"
	"mpcdist/internal/trace"
	"mpcdist/internal/workload"
)

// checkPhases asserts every round carries the expected phase for its name
// and that the phase profile conserves the (single-cluster) report.
func checkPhases(t *testing.T, reps []mpc.Report, want map[string]trace.Phase) {
	t.Helper()
	for _, rep := range reps {
		for _, rs := range rep.Rounds {
			ph, ok := want[rs.Name]
			if !ok {
				t.Errorf("unexpected round %q (phase %q)", rs.Name, rs.Phase)
				continue
			}
			if rs.Phase != ph {
				t.Errorf("round %q phase = %q, want %q", rs.Name, rs.Phase, ph)
			}
		}
		if err := mpc.Profile(rep).Conserves(rep); err != nil {
			t.Errorf("profile: %v", err)
		}
	}
}

func TestHSSPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	s := workload.RandomString(rng, 400, 4)
	sbar := workload.PlantedEdits(rng, s, 15, 4)
	res, err := HSSEditMPC(s, sbar, core.Params{X: 0.25, Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reps := res.GuessReports
	if len(reps) == 0 {
		reps = []mpc.Report{res.Report}
	}
	checkPhases(t, reps, map[string]trace.Phase{
		"hss/pairs": trace.PhaseCandidates,
		"hss/chain": trace.PhaseChain,
	})
}

func TestLCSPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	s := workload.RandomString(rng, 400, 4)
	sbar := workload.PlantedEdits(rng, s, 15, 4)
	res, err := LCSMPC(s, sbar, core.Params{X: 0.25, Eps: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	reps := res.GuessReports
	if len(reps) == 0 {
		reps = []mpc.Report{res.Report}
	}
	checkPhases(t, reps, map[string]trace.Phase{
		"lcs/pairs": trace.PhaseCandidates,
		"lcs/chain": trace.PhaseChain,
	})
}
