package baseline

import (
	"bytes"
	"fmt"
	"math"

	"mpcdist/internal/chain"
	"mpcdist/internal/core"
	"mpcdist/internal/lcs"
	"mpcdist/internal/mpc"
	"mpcdist/internal/trace"
)

// LCSMPC approximates the longest common subsequence in two MPC rounds —
// the LCS counterpart of the block/candidate scheme that Hajiaghayi,
// Seddighin, and Sun pair with their edit-distance algorithm ([20] covers
// both problems; the paper frames LCS as edit distance's dual).
//
// Construction (an *extension* of this repository, documented in
// DESIGN.md): guesses ell of the LCS are tried in descending order. For a
// guess, s is cut into n^x blocks and candidate windows of sbar start and
// end on a grid of pitch eps'·ell/n^x (so at most 2·eps'·ell matches are
// lost across all blocks) with window length capped at B/eps' (blocks
// whose optimal window is longer lose at most eps'·|sbar| matches in
// total). Each machine scores one block against a run of windows with
// Hunt-Szymanski; a single machine then runs the maximizing chain DP.
//
// The returned value is always achievable (a true common subsequence
// length, hence a lower bound on the LCS), and is within 1+O(eps) of the
// LCS whenever the strings are similar (LCS = Omega(|sbar|)) — the regime
// where near-duplicate detection operates. Rounds per guess: 2.
func LCSMPC(s, sbar []byte, p core.Params) (core.Result, error) {
	p = p.WithDefaults()
	if p.Algo == "" {
		p.Algo = "lcs-mpc"
	}
	n, m := len(s), len(sbar)
	N := maxInt(n, m)
	if N == 0 {
		return core.Result{Value: 0, Regime: "equal"}, nil
	}
	if p.X <= 0 || p.X >= 0.5 {
		return core.Result{}, fmt.Errorf("baseline: X = %v outside (0, 1/2)", p.X)
	}
	if n == m && bytes.Equal(s, sbar) {
		return core.Result{Value: n, Regime: "equal"}, nil
	}
	best := 0
	var reports []mpc.Report
	ell := minInt(n, m)
	for ell >= 1 {
		v, rep, err := lcsGuess(s, sbar, ell, p)
		if err != nil {
			return core.Result{}, err
		}
		reports = append(reports, rep)
		if v > best {
			best = v
		}
		// Once the guess has fallen to (1+eps)·best, the true LCS is below
		// (1+eps)²·best: a larger LCS would have been covered by an earlier
		// guess within 1+eps of it.
		if float64(ell) <= (1+p.Eps)*float64(best) || ell == 1 {
			return core.Result{
				Value:        best,
				Guess:        ell,
				Regime:       "lcs",
				Report:       core.AggregateReports(reports),
				GuessReports: reports,
			}, nil
		}
		next := int(float64(ell) / (1 + p.Eps))
		if next >= ell {
			next = ell - 1
		}
		ell = next
	}
	return core.Result{Value: best, Report: core.AggregateReports(reports), GuessReports: reports}, nil
}

// lcsJob is one machine's work: a block and a run of window starts.
type lcsJob struct {
	L, R   int
	Block  []byte
	SegOff int
	Seg    []byte
	Starts []int
	Grid   int
	MaxWin int
}

// Words implements mpc.Payload.
func (j *lcsJob) Words() int {
	return 7 + len(j.Starts) + (len(j.Block)+7)/8 + (len(j.Seg)+7)/8
}

func lcsGuess(s, sbar []byte, ell int, p core.Params) (int, mpc.Report, error) {
	n, m := len(s), len(sbar)
	N := maxInt(n, m)
	cl := p.Cluster(N)
	epsP := p.Eps / 4
	bsz := int(math.Round(math.Pow(float64(N), 1-p.X)))
	if bsz < 1 {
		bsz = 1
	}
	nBlocks := (n + bsz - 1) / bsz
	grid := maxInt(1, int(epsP*float64(ell)/float64(maxInt(nBlocks, 1))))
	maxWin := int(float64(bsz)/epsP) + 1

	// Global grid starts; runs of eta starts per machine.
	var starts []int
	for g := 0; g < m; g += grid {
		starts = append(starts, g)
	}
	eta := maxInt(1, bsz/grid)
	inputs := make(map[int][]mpc.Payload)
	id := 0
	for l := 0; l < n; l += bsz {
		r := minInt(l+bsz-1, n-1)
		for lo := 0; lo < len(starts); lo += eta {
			hi := minInt(lo+eta, len(starts))
			run := starts[lo:hi]
			segLo := run[0]
			segHi := minInt(run[len(run)-1]+maxWin, m)
			inputs[id] = []mpc.Payload{&lcsJob{
				L: l, R: r,
				Block:  s[l : r+1],
				SegOff: segLo,
				Seg:    sbar[segLo:segHi],
				Starts: append([]int(nil), run...),
				Grid:   grid,
				MaxWin: maxWin,
			}}
			id++
		}
	}
	collector := 0
	if len(inputs) == 0 {
		return 0, cl.Report(), nil
	}

	out, err := cl.Run("lcs/pairs", trace.PhaseCandidates, inputs, func(x *mpc.Ctx, in []mpc.Payload) {
		for _, pl := range in {
			job := pl.(*lcsJob)
			for _, gamma := range job.Starts {
				// Window ends on the grid too (kappa = end of a grid cell),
				// so shrinking an optimal window to grid-aligned endpoints
				// loses at most one cell of matches per side.
				for kappa := gamma + job.Grid - 1; kappa-gamma+1 <= job.MaxWin; kappa += job.Grid {
					if kappa > m-1 {
						break
					}
					if kappa-job.SegOff >= len(job.Seg) {
						break
					}
					win := job.Seg[gamma-job.SegOff : kappa-job.SegOff+1]
					score := lcs.HuntSzymanski(job.Block, win, x.Counter())
					if score == 0 {
						continue
					}
					x.Send(collector, tupleMsg(chain.Tuple{L: job.L, R: job.R, G: gamma, K: kappa, D: score}))
				}
			}
		}
	})
	if err != nil {
		return 0, mpc.Report{}, err
	}
	if _, ok := out[collector]; !ok {
		out[collector] = []mpc.Payload{}
	}
	fin, err := cl.Run("lcs/chain", trace.PhaseChain, out, func(x *mpc.Ctx, in []mpc.Payload) {
		tuples := make([]chain.Tuple, 0, len(in))
		for _, pl := range in {
			tuples = append(tuples, chain.Tuple(pl.(tupleMsg)))
		}
		x.Send(collector, valueMsg(chain.LCSScore(tuples, x.Counter())))
	})
	if err != nil {
		return 0, mpc.Report{}, err
	}
	vals := fin[collector]
	if len(vals) != 1 {
		return 0, mpc.Report{}, fmt.Errorf("baseline: lcs chain produced %d values", len(vals))
	}
	return int(vals[0].(valueMsg)), cl.Report(), nil
}
