// Package buildinfo exposes the binary's own provenance — module version,
// VCS revision, and Go toolchain — read once from the build metadata the
// Go linker embeds (runtime/debug.ReadBuildInfo). Every command's
// -version flag, the mpcserve ops listener's /version endpoint, and the
// checkpoint store's manifests (which record the writing revision so
// `ckpt verify` can flag cross-version resumes) all report through here,
// so the same binary can never describe itself two ways.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Info is the binary's build provenance. Fields degrade to "unknown" /
// "devel" when the metadata is absent (e.g. test binaries, or builds
// outside a VCS checkout) — absence is information too, and `ckpt verify`
// treats unknown revisions as unverifiable rather than matching.
type Info struct {
	Version   string `json:"version"`   // module version ("devel" outside a tagged build)
	Revision  string `json:"revision"`  // VCS commit hash ("unknown" outside a checkout)
	Time      string `json:"time"`      // VCS commit time (RFC3339), "" when unknown
	Modified  bool   `json:"modified"`  // VCS checkout had local modifications
	GoVersion string `json:"goVersion"` // toolchain that built the binary
}

var (
	once sync.Once
	info Info
)

// Get returns the process's build provenance, computed once.
func Get() Info {
	once.Do(func() {
		info = Info{Version: "devel", Revision: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			info.Version = v
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				if s.Value != "" {
					info.Revision = s.Value
				}
			case "vcs.time":
				info.Time = s.Value
			case "vcs.modified":
				info.Modified = s.Value == "true"
			}
		}
	})
	return info
}

// Revision returns the VCS revision ("unknown" when absent). This is what
// checkpoint manifests record.
func Revision() string { return Get().Revision }

// String renders the one-line form every command's -version flag prints.
func String(name string) string {
	i := Get()
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if i.Modified {
		rev += "+dirty"
	}
	return fmt.Sprintf("%s %s (revision %s, %s)", name, i.Version, rev, i.GoVersion)
}
