package trace

import (
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder is the always-on, bounded-cost "black box" of a process:
// an Observer (plus TransportObserver and telemetry sink) that keeps only
// the most recent events — round summaries, machine spans, fault/retry
// instants, transport occurrences, and telemetry batches ingested from
// remote parties — in fixed-size rings, alongside a rolling window of
// round latencies for p50/p95/p99 quantiles.
//
// Unlike Collector (verbatim, unbounded, attach-on-request), the recorder
// is meant to run for the whole life of a serving process: memory is
// bounded by the ring capacities, the hot-path events (MachineStart,
// Message) are no-ops, and everything else is one short critical section.
// Dump() renders the retained window as a merged cluster trace that
// tracecheck accepts, which is what the SIGQUIT handler, the
// /debug/flight endpoints, and the automatic failure triggers write out
// (see internal/traceio.ArmFlight).
//
// The recorder is strictly out-of-band: nothing it observes or retains
// feeds a deterministic model counter, so a run's results are
// bit-identical whether it is enabled or not (the dist parity suite and
// CI's output diff enforce this).
type FlightRecorder struct {
	mu      sync.Mutex
	party   int
	parties map[int]bool
	offsets map[int]int64 // remote party -> clock offset from ingested telemetry

	rounds ring[flightItem[TeleRound]]
	spans  ring[flightItem[TeleSpan]]
	faults ring[flightItem[TeleFault]]
	events ring[flightItem[TeleTransport]]

	open    TeleRound // the round currently executing locally (zero when none)
	hasOpen bool

	lat  [flightLatWindow]int64 // rolling round-latency window, ns
	latN uint64                 // total latencies recorded (ring index = latN % window)

	seen    uint64 // total events offered to the recorder, retained or not
	corrupt uint64 // corrupt-frame transport events seen (burst trigger)

	// Checkpoint bookkeeping: counts of rounds persisted to / restored
	// from the durable store, and the most recent step's coordinates.
	ckptSaves   uint64
	ckptResumes uint64
	ckptStep    int
	ckptRound   int

	dump     atomic.Value // func(reason string)
	lastDump atomic.Int64 // UnixNano of the last auto dump, for debouncing
}

// Ring capacities. Retention is per ring, not per party: on a coordinator
// ingesting worker telemetry, all parties share the windows, so a dump
// holds the cluster-wide recent past rather than one lane's deep history.
const (
	flightRoundCap     = 256
	flightSpanCap      = 4096
	flightFaultCap     = 512
	flightTransportCap = 512
	flightLatWindow    = 256

	// flightDumpDebounce is the minimum interval between automatic dumps:
	// a fault storm (many peers lost, many rounds exhausting retries)
	// produces one dump, not one per trigger.
	flightDumpDebounce = time.Second
)

// flightItem tags a wire-shaped event with the party it belongs to.
type flightItem[T any] struct {
	party int
	v     T
}

// ring is a fixed-capacity overwrite-oldest buffer. The zero value is
// usable; storage is allocated on first add so an enabled-but-idle
// recorder costs no memory.
type ring[T any] struct {
	buf  []T
	cap  int
	n    int // items retained (<= cap)
	next int // next write position
}

func (r *ring[T]) add(v T) {
	if r.buf == nil {
		if r.cap <= 0 {
			return
		}
		r.buf = make([]T, r.cap)
	}
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// items returns the retained items, oldest first.
func (r *ring[T]) items() []T {
	if r.n == 0 {
		return nil
	}
	out := make([]T, 0, r.n)
	start := (r.next - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// NewFlightRecorder returns an empty recorder with the default ring
// capacities. Most callers use the process-global Flight() instead.
func NewFlightRecorder() *FlightRecorder {
	return &FlightRecorder{
		rounds: ring[flightItem[TeleRound]]{cap: flightRoundCap},
		spans:  ring[flightItem[TeleSpan]]{cap: flightSpanCap},
		faults: ring[flightItem[TeleFault]]{cap: flightFaultCap},
		events: ring[flightItem[TeleTransport]]{cap: flightTransportCap},
	}
}

// SetParty declares which party index this process's own events belong to
// (0, the coordinator, by default). Worker processes call it after the
// transport handshake so their lane is labeled correctly in dumps.
func (f *FlightRecorder) SetParty(p int) {
	f.mu.Lock()
	f.party = p
	f.mu.Unlock()
}

// RoundStart tracks the currently executing round so a dump taken
// mid-round still shows it (as an instant: it has no end yet).
func (f *FlightRecorder) RoundStart(r RoundInfo) {
	f.mu.Lock()
	f.seen++
	f.open = TeleRound{Round: r.Round, Name: r.Name, Phase: string(r.Phase),
		Machines: r.Machines, StartNs: time.Now().UnixNano()}
	f.hasOpen = true
	f.mu.Unlock()
}

// MachineStart is a no-op: the span is recorded whole at MachineEnd.
func (f *FlightRecorder) MachineStart(round, machine, inWords int) {}

// MachineEnd records the machine's execution span. Remote spans are
// skipped — on a distributed run the executing party ships the span via
// telemetry, which the coordinator ingests with the correct party tag.
func (f *FlightRecorder) MachineEnd(s MachineSpan) {
	if s.Remote {
		return
	}
	f.mu.Lock()
	f.seen++
	f.spans.add(flightItem[TeleSpan]{party: f.party, v: TeleSpan{
		Round: s.Round, Machine: s.Machine, Name: s.Name, Phase: string(s.Phase),
		StartNs: nsOf(s.Start), EndNs: nsOf(s.End), QueueNs: int64(s.QueueWait),
		Ops: s.Ops, InWords: s.InWords, OutWords: s.OutWords,
		Sends: s.Sends, Fanout: s.Fanout,
	}})
	f.mu.Unlock()
}

// Message is a no-op: per-message recording would dominate the cost of
// the rounds it observes, and the span already carries the aggregate.
func (f *FlightRecorder) Message(round, from, to, words int) {}

// Fault records an injected fault.
func (f *FlightRecorder) Fault(e FaultEvent) {
	f.mu.Lock()
	f.seen++
	f.faults.add(flightItem[TeleFault]{party: f.party, v: TeleFault{
		Round: e.Round, Machine: e.Machine, Name: e.Name, Phase: string(e.Phase),
		Kind: string(e.Kind), Attempt: e.Attempt, Seq: e.Seq, To: e.To,
		AtNs: nsOf(e.At),
	}})
	f.mu.Unlock()
}

// Retry records a recovery action.
func (f *FlightRecorder) Retry(e RetryEvent) {
	f.mu.Lock()
	f.seen++
	f.faults.add(flightItem[TeleFault]{party: f.party, v: TeleFault{
		Round: e.Round, Machine: e.Machine, Name: e.Name, Phase: string(e.Phase),
		Kind: string(e.Kind), Attempt: e.Attempt, Seq: e.Seq, To: -1, Retry: true,
		AtNs: nsOf(e.At),
	}})
	f.mu.Unlock()
}

// RoundEnd closes the open round and records its summary and latency.
func (f *FlightRecorder) RoundEnd(r RoundSummary) {
	f.mu.Lock()
	f.seen++
	f.hasOpen = false
	f.rounds.add(flightItem[TeleRound]{party: f.party, v: TeleRound{
		Round: r.Round, Name: r.Name, Phase: string(r.Phase), Machines: r.Machines,
		StartNs: nsOf(r.Start), EndNs: nsOf(r.End), QueueNs: int64(r.QueueWait),
		TotalOps: r.TotalOps, CommWords: r.CommWords,
		Failures: r.Failures, Retries: r.Retries, Err: r.Err,
	}})
	f.lat[f.latN%flightLatWindow] = int64(r.Elapsed)
	f.latN++
	f.mu.Unlock()
}

// Transport records a transport-level event and, on a peer loss, fires
// the automatic dump trigger: losing a peer is exactly the moment the
// recent past is about to become interesting.
func (f *FlightRecorder) Transport(e TransportEvent) {
	f.mu.Lock()
	f.seen++
	f.events.add(flightItem[TeleTransport]{party: f.party, v: TeleTransport{
		Kind: e.Kind, Party: e.Party, Seq: e.Seq, IDs: e.IDs, Bytes: e.Bytes,
		AtNs: nsOf(e.At),
	}})
	burst := false
	if e.Kind == TransportCorrupt {
		f.corrupt++
		burst = f.corrupt%flightCorruptBurst == 0
	}
	f.mu.Unlock()
	if e.Kind == TransportPeerLost {
		f.Trigger("transport: " + TransportPeerLost)
	}
	if burst {
		f.Trigger("transport: corrupt-frame burst")
	}
}

// Checkpoint records a durability action. The recorder keeps counts and
// the latest step rather than a ring: a dump wants "how far did the store
// get", not a history the manifest already holds.
func (f *FlightRecorder) Checkpoint(e CheckpointEvent) {
	f.mu.Lock()
	f.seen++
	if e.Kind == CheckpointSave {
		f.ckptSaves++
	} else {
		f.ckptResumes++
	}
	f.ckptStep, f.ckptRound = e.Step, e.Round
	f.mu.Unlock()
}

// flightCorruptBurst is how many corrupt-frame events auto-trigger a dump:
// one flipped bit is chaos-as-usual, a burst means a dirty link worth a
// post-mortem.
const flightCorruptBurst = 8

// Ingest folds a remote party's telemetry batch into the rings, so a
// coordinator's dump shows every party's recent events even when no full
// telemetry consumer (-trace) is attached. Round latencies from remote
// batches do not enter the local quantile window — the coordinator runs
// the same rounds itself, and double-counting would skew the quantiles.
func (f *FlightRecorder) Ingest(t Telemetry) {
	f.mu.Lock()
	if f.parties == nil {
		f.parties = map[int]bool{}
	}
	f.parties[t.Party] = true
	if f.offsets == nil {
		f.offsets = map[int]int64{}
	}
	if _, ok := f.offsets[t.Party]; !ok || t.OffsetNs != 0 {
		f.offsets[t.Party] = t.OffsetNs
	}
	for _, s := range t.Spans {
		f.seen++
		f.spans.add(flightItem[TeleSpan]{party: t.Party, v: s})
	}
	for _, r := range t.Rounds {
		f.seen++
		f.rounds.add(flightItem[TeleRound]{party: t.Party, v: r})
	}
	for _, fe := range t.Faults {
		f.seen++
		f.faults.add(flightItem[TeleFault]{party: t.Party, v: fe})
	}
	for _, e := range t.Events {
		f.seen++
		f.events.add(flightItem[TeleTransport]{party: t.Party, v: e})
	}
	f.mu.Unlock()
}

// Reset drops everything retained (tests; long-lived processes never
// need it — the rings bound memory by construction).
func (f *FlightRecorder) Reset() {
	f.mu.Lock()
	f.rounds = ring[flightItem[TeleRound]]{cap: flightRoundCap}
	f.spans = ring[flightItem[TeleSpan]]{cap: flightSpanCap}
	f.faults = ring[flightItem[TeleFault]]{cap: flightFaultCap}
	f.events = ring[flightItem[TeleTransport]]{cap: flightTransportCap}
	f.parties, f.offsets = nil, nil
	f.hasOpen = false
	f.latN = 0
	f.seen = 0
	f.ckptSaves, f.ckptResumes, f.ckptStep, f.ckptRound = 0, 0, 0, 0
	f.mu.Unlock()
}

// RoundQuantiles is the rolling round-latency summary: nearest-rank
// quantiles over the most recent Window completed rounds.
type RoundQuantiles struct {
	Window int     `json:"window"` // rounds in the window (0 = none yet)
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
}

// FlightStats is the recorder's live summary, served as JSON by the
// status endpoints (under "flight") and consumed by cmd/mpctop.
type FlightStats struct {
	Enabled   bool           `json:"enabled"`
	Party     int            `json:"party"`
	Events    uint64         `json:"events"`    // total offered, retained or not
	Rounds    int            `json:"rounds"`    // retained round summaries
	Spans     int            `json:"spans"`     // retained machine spans
	Faults    int            `json:"faults"`    // retained fault/retry instants
	Transport int            `json:"transport"` // retained transport events
	Parties   int            `json:"parties"`   // lanes a dump would hold
	Latency   RoundQuantiles `json:"roundLatency"`
	// CheckpointSaves and CheckpointResumes count durability actions seen
	// by this process; both 0 when no checkpoint store is attached.
	CheckpointSaves   uint64 `json:"checkpointSaves,omitempty"`
	CheckpointResumes uint64 `json:"checkpointResumes,omitempty"`
}

// Quantiles returns the rolling round-latency quantiles.
func (f *FlightRecorder) Quantiles() RoundQuantiles {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.quantilesLocked()
}

func (f *FlightRecorder) quantilesLocked() RoundQuantiles {
	n := int(f.latN)
	if n > flightLatWindow {
		n = flightLatWindow
	}
	if n == 0 {
		return RoundQuantiles{}
	}
	durs := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		durs[i] = time.Duration(f.lat[i])
	}
	q := Quantiles(durs)
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return RoundQuantiles{Window: n, P50Ms: ms(q.P50), P95Ms: ms(q.P95), P99Ms: ms(q.P99)}
}

// Stats returns the live summary. Enabled reflects the process-global
// switch, which is what decides whether this recorder sees events.
func (f *FlightRecorder) Stats() FlightStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	parties := 1
	for p := range f.parties {
		if p != f.party {
			parties++
		}
	}
	return FlightStats{
		Enabled:           FlightEnabled(),
		Party:             f.party,
		Events:            f.seen,
		Rounds:            f.rounds.n,
		Spans:             f.spans.n,
		Faults:            f.faults.n,
		Transport:         f.events.n,
		Parties:           parties,
		Latency:           f.quantilesLocked(),
		CheckpointSaves:   f.ckptSaves,
		CheckpointResumes: f.ckptResumes,
	}
}

// Telemetry snapshots the retained window as per-party wire batches — the
// same shape a live telemetry consumer would have collected, restricted
// to the recent past.
func (f *FlightRecorder) Telemetry() []Telemetry {
	f.mu.Lock()
	defer f.mu.Unlock()
	byParty := map[int]*Telemetry{}
	get := func(p int) *Telemetry {
		t, ok := byParty[p]
		if !ok {
			t = &Telemetry{Party: p, OffsetNs: f.offsets[p]}
			byParty[p] = t
		}
		return t
	}
	for _, it := range f.rounds.items() {
		t := get(it.party)
		t.Rounds = append(t.Rounds, it.v)
	}
	if f.hasOpen {
		// The in-flight round, end still unknown: EndNs stays 0 and
		// BuildClusterTrace renders it as an instant at its start.
		t := get(f.party)
		t.Rounds = append(t.Rounds, f.open)
	}
	for _, it := range f.spans.items() {
		t := get(it.party)
		t.Spans = append(t.Spans, it.v)
	}
	for _, it := range f.faults.items() {
		t := get(it.party)
		t.Faults = append(t.Faults, it.v)
	}
	for _, it := range f.events.items() {
		t := get(it.party)
		t.Events = append(t.Events, it.v)
	}
	var out []Telemetry
	for _, t := range byParty {
		out = append(out, *t)
	}
	return MergeTelemetry(out) // sorts by party
}

// Dump renders the retained window as a merged cluster trace (one process
// lane per party plus the transport lane), with one extra "flight
// recorder" lane carrying the rolling round-latency quantiles as an
// instant event. The output passes cmd/tracecheck.
func (f *FlightRecorder) Dump() *ClusterTrace {
	t := BuildClusterTrace(f.Telemetry())
	q := f.Quantiles()
	f.mu.Lock()
	seen := f.seen
	ckSaves, ckResumes := f.ckptSaves, f.ckptResumes
	ckStep, ckRound := f.ckptStep, f.ckptRound
	f.mu.Unlock()

	pid := 0
	for _, ev := range t.file.TraceEvents {
		if ev.Pid >= pid {
			pid = ev.Pid + 1
		}
	}
	t.file.TraceEvents = append(t.file.TraceEvents,
		chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": "flight recorder"}},
		chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "round quantiles"}},
		chromeEvent{Name: "round-latency", Ph: "i", Pid: pid, Tid: 0, Ts: 0,
			Args: map[string]any{
				"window": q.Window,
				"p50Ms":  q.P50Ms,
				"p95Ms":  q.P95Ms,
				"p99Ms":  q.P99Ms,
				"events": seen,
			}})
	if ckSaves > 0 || ckResumes > 0 {
		// The dump's durability marker: how far the checkpoint store got
		// before whatever prompted this dump happened.
		t.file.TraceEvents = append(t.file.TraceEvents,
			chromeEvent{Name: "checkpoint", Cat: "checkpoint", Ph: "i", Pid: pid, Tid: 0, Ts: 0,
				Args: map[string]any{
					"saves":     ckSaves,
					"resumes":   ckResumes,
					"lastStep":  ckStep,
					"lastRound": ckRound,
				}})
	}
	return t
}

// SetAutoDump installs the callback fired (debounced, synchronously) by
// automatic triggers: retry-budget exhaustion, transport peer loss, and
// the server's degraded fallback. internal/traceio.ArmFlight installs a
// callback that writes Dump() to a file. A nil fn disarms.
func (f *FlightRecorder) SetAutoDump(fn func(reason string)) {
	f.dump.Store(autoDump{fn})
}

// autoDump wraps the callback so atomic.Value accepts nil fns (a bare
// func value of nil has no type and Store would panic).
type autoDump struct{ fn func(reason string) }

// Trigger fires the auto-dump callback with the given reason, debounced
// to at most one dump per second so failure storms cost one write.
func (f *FlightRecorder) Trigger(reason string) {
	v, _ := f.dump.Load().(autoDump)
	if v.fn == nil {
		return
	}
	now := time.Now().UnixNano()
	last := f.lastDump.Load()
	if now-last < int64(flightDumpDebounce) || !f.lastDump.CompareAndSwap(last, now) {
		return
	}
	v.fn(reason)
}

// ---- process-global recorder -------------------------------------------

// flightOff is the process-global kill switch, default off (recorder on).
// It is read once per cluster construction / event-source wiring, not per
// event.
var flightOff atomic.Bool

var globalFlight = NewFlightRecorder()

func init() {
	if flightEnvOff(os.Getenv("MPCDIST_FLIGHT")) {
		flightOff.Store(true)
	}
}

// flightEnvOff interprets the MPCDIST_FLIGHT environment variable; only
// explicit negatives disable the recorder.
func flightEnvOff(v string) bool {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "off", "0", "false", "no", "disabled":
		return true
	}
	return false
}

// Flight returns the process-global flight recorder. It exists (and
// records, when enabled) without any setup: mpc.NewCluster attaches it to
// every cluster, and the transport layer feeds it telemetry and transport
// events on distributed runs.
func Flight() *FlightRecorder { return globalFlight }

// FlightEnabled reports whether the process-global recorder is on.
// Default on; MPCDIST_FLIGHT=off (or SetFlightEnabled(false)) turns it
// off — the observability contract guarantees identical deterministic
// counters either way.
func FlightEnabled() bool { return !flightOff.Load() }

// SetFlightEnabled flips the process-global recorder. Clusters and
// transports wire the recorder at construction time, so the switch
// affects subsequently created ones.
func SetFlightEnabled(on bool) { flightOff.Store(!on) }

// WithFlight composes the process-global recorder behind obs: the
// observer every cluster actually runs with. With the recorder disabled
// it returns obs unchanged; with no observer it returns the recorder
// alone, so the hot path pays one interface call, not a Multi walk.
func WithFlight(obs Observer) Observer {
	if !FlightEnabled() {
		return obs
	}
	if obs == nil {
		return globalFlight
	}
	return Multi(obs, globalFlight)
}

// FlightIngest folds a telemetry batch into the global recorder (no-op
// when disabled). The transport's coordinator calls it for every batch a
// worker ships, whether or not a full telemetry consumer is attached.
func FlightIngest(t Telemetry) {
	if FlightEnabled() {
		globalFlight.Ingest(t)
	}
}

// FlightTransport records a transport-level event into the global
// recorder (no-op when disabled).
func FlightTransport(e TransportEvent) {
	if FlightEnabled() {
		globalFlight.Transport(e)
	}
}

// FlightTrigger fires the global recorder's auto-dump (no-op when
// disabled or disarmed).
func FlightTrigger(reason string) {
	if FlightEnabled() {
		globalFlight.Trigger(reason)
	}
}
