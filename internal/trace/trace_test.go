package trace

import (
	"testing"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); got != (SkewStats{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", got)
	}
}

func TestSummarizeSingle(t *testing.T) {
	got := Summarize([]time.Duration{10 * time.Millisecond})
	if got.Max != 10*time.Millisecond || got.Mean != 10*time.Millisecond ||
		got.P99 != 10*time.Millisecond || got.Straggler != 1 {
		t.Errorf("Summarize single = %+v", got)
	}
}

func TestSummarizeSkewed(t *testing.T) {
	// Nine 1ms machines and one 11ms straggler: mean 2ms, ratio 5.5.
	times := make([]time.Duration, 9, 10)
	for i := range times {
		times[i] = time.Millisecond
	}
	times = append(times, 11*time.Millisecond)
	got := Summarize(times)
	if got.Max != 11*time.Millisecond {
		t.Errorf("Max = %v", got.Max)
	}
	if got.Mean != 2*time.Millisecond {
		t.Errorf("Mean = %v", got.Mean)
	}
	if got.P99 != 11*time.Millisecond {
		t.Errorf("P99 = %v (max for < 100 machines)", got.P99)
	}
	if got.Straggler != 5.5 {
		t.Errorf("Straggler = %v, want 5.5", got.Straggler)
	}
	// Input must not be mutated (Summarize sorts a copy).
	if times[0] != time.Millisecond || times[9] != 11*time.Millisecond {
		t.Error("Summarize mutated its input")
	}
}

func TestSummarizeP99Rank(t *testing.T) {
	// 200 machines: nearest-rank p99 is the 198th value (rank ceil(198)).
	times := make([]time.Duration, 200)
	for i := range times {
		times[i] = time.Duration(i+1) * time.Microsecond
	}
	got := Summarize(times)
	if got.P99 != 198*time.Microsecond {
		t.Errorf("P99 = %v, want 198us", got.P99)
	}
}

func TestSummarizeAllZero(t *testing.T) {
	got := Summarize([]time.Duration{0, 0, 0})
	if got.Straggler != 1 {
		t.Errorf("all-zero Straggler = %v, want 1 (balanced by definition)", got.Straggler)
	}
}

func TestMultiFanOutAndNilHandling(t *testing.T) {
	a, b := &Collector{}, &Collector{}
	m := Multi(nil, a, nil, b)
	m.RoundStart(RoundInfo{Round: 0, Name: "r", Machines: 1})
	m.MachineStart(0, 3, 5)
	m.MachineEnd(MachineSpan{Round: 0, Machine: 3})
	m.Message(0, 3, 4, 7)
	m.RoundEnd(RoundSummary{Round: 0, Name: "r"})
	for _, c := range []*Collector{a, b} {
		if len(c.Starts) != 1 || len(c.Spans) != 1 || c.Messages != 1 ||
			c.MsgWords != 7 || len(c.Summaries) != 1 {
			t.Errorf("collector missed events: %+v", c)
		}
	}
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of no live observers should be nil")
	}
	if Multi(a) != Observer(a) {
		t.Error("Multi of one observer should return it unwrapped")
	}
}

func TestSkewAnalyzer(t *testing.T) {
	a := NewSkewAnalyzer()
	base := time.Unix(0, 0)
	a.RoundStart(RoundInfo{Round: 0, Name: "r0", Machines: 2})
	a.MachineEnd(MachineSpan{Round: 0, Machine: 0, Start: base, End: base.Add(time.Millisecond)})
	a.MachineEnd(MachineSpan{Round: 0, Machine: 1, Start: base, End: base.Add(3 * time.Millisecond)})
	a.RoundEnd(RoundSummary{Round: 0, Name: "r0", Machines: 2})
	rounds := a.Rounds()
	if len(rounds) != 1 {
		t.Fatalf("rounds = %d", len(rounds))
	}
	r := rounds[0]
	if r.Name != "r0" || r.Machines != 2 {
		t.Errorf("round meta = %+v", r)
	}
	if r.Skew.Max != 3*time.Millisecond || r.Skew.Mean != 2*time.Millisecond || r.Skew.Straggler != 1.5 {
		t.Errorf("skew = %+v", r.Skew)
	}
	// The per-round scratch space is released at RoundEnd.
	if len(a.open) != 0 {
		t.Error("analyzer retained per-round times after RoundEnd")
	}
}
