package trace

import (
	"sort"
	"sync"
	"time"
)

// SkewStats summarizes the distribution of per-machine execution times
// within a round. Straggler is Max/Mean — 1.0 means perfectly balanced
// machines; large values mean the round's wall time is dominated by a
// straggler, the effect that separates the paper's "total work" from its
// "parallel time" column.
type SkewStats struct {
	Max       time.Duration
	Mean      time.Duration
	P99       time.Duration
	Straggler float64
}

// Summarize computes the skew statistics of a set of machine times. It
// returns the zero value for an empty set. P99 is the nearest-rank 99th
// percentile (the max for fewer than 100 machines).
func Summarize(times []time.Duration) SkewStats {
	if len(times) == 0 {
		return SkewStats{}
	}
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	st := SkewStats{
		Max:  sorted[len(sorted)-1],
		Mean: sum / time.Duration(len(sorted)),
	}
	// Nearest-rank percentile: ceil(0.99 * n) as a 1-based rank.
	rank := (99*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	st.P99 = sorted[rank-1]
	if st.Mean > 0 {
		st.Straggler = float64(st.Max) / float64(st.Mean)
	} else if st.Max == 0 {
		// All-zero times (degenerately fast machines): balanced by definition.
		st.Straggler = 1
	}
	return st
}

// DurationQuantiles holds nearest-rank p50/p95/p99 over a duration set —
// the summary shape the flight recorder's rolling round-latency window
// and the bench suite's advisory per-case quantiles share.
type DurationQuantiles struct {
	P50 time.Duration
	P95 time.Duration
	P99 time.Duration
}

// Quantiles computes nearest-rank quantiles (ceil(q·n) as a 1-based rank,
// like Summarize's P99) over times; zero value for an empty set.
func Quantiles(times []time.Duration) DurationQuantiles {
	if len(times) == 0 {
		return DurationQuantiles{}
	}
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q int) time.Duration {
		r := (q*len(sorted) + 99) / 100
		if r < 1 {
			r = 1
		}
		if r > len(sorted) {
			r = len(sorted)
		}
		return sorted[r-1]
	}
	return DurationQuantiles{P50: rank(50), P95: rank(95), P99: rank(99)}
}

// SkewAnalyzer is an Observer that accumulates per-round machine spans and
// recomputes skew statistics independently of the simulator's own
// RoundStats — useful when only an Observer can be attached, and as a
// cross-check in tests.
type SkewAnalyzer struct {
	Base
	mu     sync.Mutex
	open   map[int][]time.Duration // round -> machine times
	rounds []RoundSkew
}

// RoundSkew is one analyzed round. Failures/Retries mirror the round
// summary's fault counters: injected straggler delays inflate the skew
// stats, and these counts attribute that inflation to the injector.
type RoundSkew struct {
	Round    int
	Name     string
	Machines int
	Skew     SkewStats
	Failures int
	Retries  int
}

// NewSkewAnalyzer returns an empty analyzer.
func NewSkewAnalyzer() *SkewAnalyzer {
	return &SkewAnalyzer{open: make(map[int][]time.Duration)}
}

// MachineEnd records the span's execution time.
func (a *SkewAnalyzer) MachineEnd(s MachineSpan) {
	a.mu.Lock()
	a.open[s.Round] = append(a.open[s.Round], s.Duration())
	a.mu.Unlock()
}

// RoundEnd closes the round and computes its skew summary.
func (a *SkewAnalyzer) RoundEnd(r RoundSummary) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rounds = append(a.rounds, RoundSkew{
		Round:    r.Round,
		Name:     r.Name,
		Machines: r.Machines,
		Skew:     Summarize(a.open[r.Round]),
		Failures: r.Failures,
		Retries:  r.Retries,
	})
	delete(a.open, r.Round)
}

// Rounds returns the analyzed rounds in completion order.
func (a *SkewAnalyzer) Rounds() []RoundSkew {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]RoundSkew(nil), a.rounds...)
}

// Collector is an Observer that records every event verbatim — the
// simplest way to assert on the simulator's event stream in tests.
type Collector struct {
	mu         sync.Mutex
	Starts     []RoundInfo
	Spans      []MachineSpan
	Messages   int
	MsgWords   int64
	Faults     []FaultEvent
	Retries    []RetryEvent
	Summaries  []RoundSummary
	Transports []TransportEvent
}

func (c *Collector) RoundStart(r RoundInfo) {
	c.mu.Lock()
	c.Starts = append(c.Starts, r)
	c.mu.Unlock()
}

func (c *Collector) MachineStart(round, machine, inWords int) {}

func (c *Collector) MachineEnd(s MachineSpan) {
	c.mu.Lock()
	c.Spans = append(c.Spans, s)
	c.mu.Unlock()
}

func (c *Collector) Message(round, from, to, words int) {
	c.mu.Lock()
	c.Messages++
	c.MsgWords += int64(words)
	c.mu.Unlock()
}

func (c *Collector) Fault(e FaultEvent) {
	c.mu.Lock()
	c.Faults = append(c.Faults, e)
	c.mu.Unlock()
}

func (c *Collector) Retry(e RetryEvent) {
	c.mu.Lock()
	c.Retries = append(c.Retries, e)
	c.mu.Unlock()
}

func (c *Collector) RoundEnd(r RoundSummary) {
	c.mu.Lock()
	c.Summaries = append(c.Summaries, r)
	c.mu.Unlock()
}

// Transport implements TransportObserver, buffering transport-level events
// alongside the simulator's own.
func (c *Collector) Transport(e TransportEvent) {
	c.mu.Lock()
	c.Transports = append(c.Transports, e)
	c.mu.Unlock()
}
