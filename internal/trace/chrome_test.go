package trace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mpcdist/internal/mpc"
	"mpcdist/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runWorkload drives a small deterministic two-round simulation through a
// Chrome exporter: Parallelism 1 serializes machine execution so the event
// stream (and, after timestamp normalization, the exported JSON) is
// byte-stable across runs.
func runWorkload(t *testing.T, ch *trace.Chrome) {
	t.Helper()
	c := mpc.NewCluster(mpc.Config{Seed: 7, Parallelism: 1, MachineWords: 100, Observer: ch})
	in := map[int][]mpc.Payload{
		0: {mpc.Ints{1, 2, 3}},
		1: {mpc.Ints{4, 5}},
		2: {mpc.Ints{6}},
	}
	mid, err := c.Run("scatter", trace.PhaseCandidates, in, func(x *mpc.Ctx, in []mpc.Payload) {
		x.Ops(int64(10 * (x.Machine + 1)))
		for _, p := range in {
			for _, v := range p.(mpc.Ints) {
				x.Send(v%2, mpc.Int(v))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run("gather", trace.PhaseCandidates, mid, func(x *mpc.Ctx, in []mpc.Payload) {
		x.Ops(int64(mpc.PayloadWords(in)))
	}); err != nil {
		t.Fatal(err)
	}
}

// normalize zeroes every wall-clock field of a trace file so two runs of
// the same deterministic workload compare equal.
func normalize(t *testing.T, raw []byte) []byte {
	t.Helper()
	var file struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	for _, ev := range file.TraceEvents {
		delete(ev, "ts")
		delete(ev, "dur")
		if args, ok := ev["args"].(map[string]any); ok {
			delete(args, "queueWaitUs")
			delete(args, "straggler")
		}
	}
	out, err := json.MarshalIndent(file, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func TestChromeGolden(t *testing.T) {
	ch := trace.NewChrome()
	runWorkload(t, ch)
	raw, err := ch.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got := normalize(t, raw)

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace/ -update` to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("normalized trace differs from golden (run with -update to regenerate)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestChromeStructure(t *testing.T) {
	ch := trace.NewChrome()
	runWorkload(t, ch)
	raw, err := ch.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}

	// One complete-event span per (round, machine): round 0 has machines
	// 0..2, round 1 has machines 0..1 (v%2 destinations), plus one span
	// per round on the rounds track (tid 0).
	spansPerTid := map[int]int{}
	roundSpans := 0
	threadNames := map[int]string{}
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Tid == 0 {
				roundSpans++
				if ev.Args["machines"] == nil || ev.Args["commWords"] == nil {
					t.Errorf("round span %q missing args: %+v", ev.Name, ev.Args)
				}
			} else {
				spansPerTid[ev.Tid]++
				if ev.Args["ops"] == nil || ev.Args["round"] == nil {
					t.Errorf("machine span %q missing args: %+v", ev.Name, ev.Args)
				}
			}
		case "M":
			if ev.Name == "thread_name" {
				threadNames[ev.Tid], _ = ev.Args["name"].(string)
			}
		}
	}
	if roundSpans != 2 {
		t.Errorf("round spans = %d, want 2", roundSpans)
	}
	// Machine 0 and 1 ran in both rounds (tids 1, 2); machine 2 only in
	// round 0 (tid 3).
	if spansPerTid[1] != 2 || spansPerTid[2] != 2 || spansPerTid[3] != 1 {
		t.Errorf("machine spans per tid = %v", spansPerTid)
	}
	if threadNames[0] != "rounds" || threadNames[1] != "machine 0" || threadNames[3] != "machine 2" {
		t.Errorf("thread names = %v", threadNames)
	}
}

func TestChromeMultipleRunsGetDistinctPids(t *testing.T) {
	ch := trace.NewChrome()
	runWorkload(t, ch) // cluster 1: rounds 0, 1
	runWorkload(t, ch) // cluster 2: rounds 0, 1 again -> new pid
	raw, err := ch.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Pid int `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	for _, ev := range file.TraceEvents {
		pids[ev.Pid] = true
	}
	if len(pids) != 2 {
		t.Errorf("pids = %v, want two distinct cluster runs", pids)
	}
}

func TestChromeFailedRoundVisible(t *testing.T) {
	ch := trace.NewChrome()
	c := mpc.NewCluster(mpc.Config{MachineWords: 2, Observer: ch})
	_, err := c.Run("boom", trace.PhaseCandidates, map[int][]mpc.Payload{0: {mpc.Ints{1, 2, 3}}}, func(x *mpc.Ctx, in []mpc.Payload) {})
	if err == nil {
		t.Fatal("want memory violation")
	}
	raw, jerr := ch.JSON()
	if jerr != nil {
		t.Fatal(jerr)
	}
	if !bytes.Contains(raw, []byte(`"error"`)) || !bytes.Contains(raw, []byte("input")) {
		t.Errorf("failed round not visible in trace: %s", raw)
	}
}
