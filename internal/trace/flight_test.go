package trace

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// endRound feeds one completed round with the given elapsed time.
func endRound(f *FlightRecorder, i int, elapsed time.Duration) {
	start := time.Unix(1, 0)
	f.RoundStart(RoundInfo{Round: i, Name: fmt.Sprintf("r%d", i), Phase: PhaseCandidates, Machines: 2})
	f.RoundEnd(RoundSummary{
		Round: i, Name: fmt.Sprintf("r%d", i), Phase: PhaseCandidates, Machines: 2,
		Start: start, End: start.Add(elapsed), Elapsed: elapsed,
		TotalOps: int64(i), CommWords: 1,
	})
}

func TestFlightRingOverwritesOldest(t *testing.T) {
	f := NewFlightRecorder()
	total := flightRoundCap + 10
	for i := 0; i < total; i++ {
		endRound(f, i, time.Millisecond)
	}
	st := f.Stats()
	if st.Rounds != flightRoundCap {
		t.Fatalf("retained rounds = %d, want cap %d", st.Rounds, flightRoundCap)
	}
	if st.Events != uint64(2*total) { // RoundStart + RoundEnd each count
		t.Errorf("events = %d, want %d", st.Events, 2*total)
	}
	tel := f.Telemetry()
	if len(tel) != 1 {
		t.Fatalf("telemetry batches = %d, want 1", len(tel))
	}
	rounds := tel[0].Rounds
	if len(rounds) != flightRoundCap {
		t.Fatalf("telemetry rounds = %d, want %d", len(rounds), flightRoundCap)
	}
	// Oldest-first, and the oldest retained is the (total-cap)-th round.
	if rounds[0].Round != total-flightRoundCap {
		t.Errorf("oldest retained round = %d, want %d", rounds[0].Round, total-flightRoundCap)
	}
	if last := rounds[len(rounds)-1].Round; last != total-1 {
		t.Errorf("newest retained round = %d, want %d", last, total-1)
	}
}

func TestFlightQuantiles(t *testing.T) {
	f := NewFlightRecorder()
	if q := f.Quantiles(); q.Window != 0 || q.P99Ms != 0 {
		t.Fatalf("empty quantiles = %+v", q)
	}
	// 100 rounds at 1..100ms: nearest-rank p50=50ms, p95=95ms, p99=99ms.
	for i := 1; i <= 100; i++ {
		endRound(f, i, time.Duration(i)*time.Millisecond)
	}
	q := f.Quantiles()
	if q.Window != 100 || q.P50Ms != 50 || q.P95Ms != 95 || q.P99Ms != 99 {
		t.Errorf("quantiles = %+v, want window=100 p50=50 p95=95 p99=99", q)
	}
	// The window is rolling: flood it with 1ms rounds and the old tail
	// must stop influencing the quantiles.
	for i := 0; i < flightLatWindow; i++ {
		endRound(f, 1000+i, time.Millisecond)
	}
	if q := f.Quantiles(); q.P99Ms != 1 {
		t.Errorf("after flooding window, p99 = %v, want 1ms", q.P99Ms)
	}
}

func TestFlightIngestGroupsByParty(t *testing.T) {
	f := NewFlightRecorder()
	endRound(f, 0, time.Millisecond)
	f.Ingest(Telemetry{Party: 2, OffsetNs: 7,
		Rounds: []TeleRound{{Round: 0, Name: "r0", Phase: "candidates", StartNs: 5, EndNs: 9}},
		Spans:  []TeleSpan{{Round: 0, Machine: 1, Name: "r0", Phase: "candidates", StartNs: 5, EndNs: 8}},
	})
	tel := f.Telemetry()
	if len(tel) != 2 {
		t.Fatalf("telemetry batches = %d, want 2 (local + party 2)", len(tel))
	}
	if tel[0].Party != 0 || tel[1].Party != 2 {
		t.Errorf("batch parties = %d, %d, want 0, 2", tel[0].Party, tel[1].Party)
	}
	if tel[1].OffsetNs != 7 {
		t.Errorf("party 2 offset = %d, want 7 (preserved from ingest)", tel[1].OffsetNs)
	}
	if st := f.Stats(); st.Parties != 2 {
		t.Errorf("stats parties = %d, want 2", st.Parties)
	}
	// Remote round latencies must not enter the local quantile window.
	if q := f.Quantiles(); q.Window != 1 {
		t.Errorf("quantile window = %d, want 1 (local rounds only)", q.Window)
	}
}

// chromeDump decodes a dump the way tracecheck reads it.
type chromeDump struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func decodeDump(t *testing.T, ct *ClusterTrace) chromeDump {
	t.Helper()
	buf, err := ct.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var d chromeDump
	if err := json.Unmarshal(buf, &d); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFlightDumpValidChromeTrace(t *testing.T) {
	f := NewFlightRecorder()
	for i := 0; i < 5; i++ {
		endRound(f, i, time.Millisecond)
	}
	f.Transport(TransportEvent{Kind: TransportExchange, Party: 1, Seq: 3, Bytes: 100, At: time.Unix(2, 0)})
	f.Ingest(Telemetry{Party: 1, Rounds: []TeleRound{{Round: 4, Name: "r4", Phase: "candidates", StartNs: 5, EndNs: 9}}})
	// A round started but not ended: the dump must render it as an
	// instant, never as a negative-duration span.
	f.RoundStart(RoundInfo{Round: 5, Name: "open", Phase: PhaseGraph, Machines: 1})

	d := decodeDump(t, f.Dump())
	if len(d.TraceEvents) == 0 {
		t.Fatal("empty dump")
	}
	named := map[int]bool{}
	var sawQuantiles, sawOpen bool
	for _, ev := range d.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			named[ev.Pid] = true
		}
	}
	for _, ev := range d.TraceEvents {
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %q: negative ts/dur (%v, %v)", ev.Name, ev.Ts, ev.Dur)
		}
		if !named[ev.Pid] {
			t.Errorf("event %q on unnamed process lane %d", ev.Name, ev.Pid)
		}
		if ev.Name == "round-latency" {
			sawQuantiles = true
			if ev.Args["window"] == nil || ev.Args["p99Ms"] == nil {
				t.Errorf("round-latency args = %v, want window/p50Ms/p95Ms/p99Ms", ev.Args)
			}
		}
		if ev.Name == "open" && ev.Ph == "i" {
			sawOpen = true
		}
	}
	if !sawQuantiles {
		t.Error("dump missing the flight-recorder round-latency quantile event")
	}
	if !sawOpen {
		t.Error("dump missing the open round as an instant event")
	}
}

func TestFlightTriggerDebounce(t *testing.T) {
	f := NewFlightRecorder()
	var mu sync.Mutex
	var reasons []string
	f.SetAutoDump(func(reason string) {
		mu.Lock()
		reasons = append(reasons, reason)
		mu.Unlock()
	})
	f.Trigger("first")
	f.Trigger("storm-1")
	f.Trigger("storm-2")
	mu.Lock()
	got := append([]string(nil), reasons...)
	mu.Unlock()
	if len(got) != 1 || got[0] != "first" {
		t.Errorf("debounced triggers = %v, want [first]", got)
	}
	// A peer loss is an automatic trigger (debounced with the others).
	f2 := NewFlightRecorder()
	var n int
	f2.SetAutoDump(func(string) { n++ })
	f2.Transport(TransportEvent{Kind: TransportPeerLost, Party: 1, At: time.Unix(3, 0)})
	if n != 1 {
		t.Errorf("peer-lost triggered %d dumps, want 1", n)
	}
	// Disarmed recorder: Trigger is a no-op, not a panic.
	f3 := NewFlightRecorder()
	f3.Trigger("nobody listening")
}

func TestFlightReset(t *testing.T) {
	f := NewFlightRecorder()
	endRound(f, 0, time.Millisecond)
	f.Ingest(Telemetry{Party: 1, Spans: []TeleSpan{{Round: 0, StartNs: 1, EndNs: 2}}})
	f.Reset()
	st := f.Stats()
	if st.Events != 0 || st.Rounds != 0 || st.Spans != 0 || st.Parties != 1 {
		t.Errorf("after reset: %+v", st)
	}
	if q := f.Quantiles(); q.Window != 0 {
		t.Errorf("after reset, quantile window = %d", q.Window)
	}
}

func TestFlightRemoteSpansSkipped(t *testing.T) {
	f := NewFlightRecorder()
	f.MachineEnd(MachineSpan{Round: 0, Machine: 1, Remote: true, Start: time.Unix(1, 0), End: time.Unix(2, 0)})
	if st := f.Stats(); st.Spans != 0 {
		t.Errorf("remote span retained: %+v", st)
	}
	f.MachineEnd(MachineSpan{Round: 0, Machine: 1, Start: time.Unix(1, 0), End: time.Unix(2, 0)})
	if st := f.Stats(); st.Spans != 1 {
		t.Errorf("local span not retained: %+v", st)
	}
}

func TestWithFlight(t *testing.T) {
	prev := FlightEnabled()
	defer SetFlightEnabled(prev)

	SetFlightEnabled(true)
	if got := WithFlight(nil); got != Flight() {
		t.Errorf("WithFlight(nil) = %T, want the global recorder", got)
	}
	base := Base{}
	if _, ok := WithFlight(base).(multi); !ok {
		t.Errorf("WithFlight(obs) = %T, want a Multi composition", WithFlight(base))
	}

	SetFlightEnabled(false)
	if got := WithFlight(nil); got != nil {
		t.Errorf("disabled WithFlight(nil) = %T, want nil", got)
	}
	if got := WithFlight(base); got != Observer(base) {
		t.Errorf("disabled WithFlight(obs) = %T, want obs unchanged", got)
	}
	// The gated helpers are no-ops while disabled.
	before := Flight().Stats().Events
	FlightTransport(TransportEvent{Kind: TransportExchange, At: time.Unix(1, 0)})
	FlightIngest(Telemetry{Party: 9})
	if after := Flight().Stats().Events; after != before {
		t.Errorf("disabled helpers recorded %d events", after-before)
	}
}

func TestFlightEnvOff(t *testing.T) {
	for v, want := range map[string]bool{
		"off": true, "0": true, "false": true, "NO": true, " Disabled ": true,
		"": false, "on": false, "1": false, "anything": false,
	} {
		if got := flightEnvOff(v); got != want {
			t.Errorf("flightEnvOff(%q) = %v, want %v", v, got, want)
		}
	}
}

// TestFlightConcurrency hammers every entry point at once; run under
// -race this is the recorder's thread-safety proof.
func TestFlightConcurrency(t *testing.T) {
	f := NewFlightRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 5 {
				case 0:
					endRound(f, i, time.Millisecond)
				case 1:
					f.MachineEnd(MachineSpan{Round: i, Machine: g, Start: time.Unix(1, 0), End: time.Unix(2, 0)})
				case 2:
					f.Fault(FaultEvent{Round: i, Machine: g, At: time.Unix(1, 0)})
				case 3:
					f.Ingest(Telemetry{Party: g + 1, Spans: []TeleSpan{{Round: i, StartNs: 1, EndNs: 2}}})
				case 4:
					f.Transport(TransportEvent{Kind: TransportExchange, Seq: i, At: time.Unix(1, 0)})
				}
				if i%50 == 0 {
					_ = f.Stats()
					_ = f.Quantiles()
				}
			}
		}(g)
	}
	var wgDump sync.WaitGroup
	wgDump.Add(1)
	go func() {
		defer wgDump.Done()
		for i := 0; i < 10; i++ {
			_ = f.Dump()
		}
	}()
	wg.Wait()
	wgDump.Wait()
	if st := f.Stats(); st.Events == 0 {
		t.Error("no events recorded")
	}
}
