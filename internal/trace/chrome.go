package trace

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Chrome is an Observer that exports a simulation as a Chrome trace-event
// JSON file (the format Perfetto and chrome://tracing load): one process
// per cluster run, one track (thread) per simulated machine plus a
// top-level "rounds" track, and one complete-event span per (round,
// machine) carrying the machine's ops, words, and fan-out as args.
//
// Events are buffered in memory; call WriteTo (or JSON) after the
// simulation finishes. The exporter is safe for concurrent use by the
// machine goroutines of a single cluster run, and successive runs may
// reuse one exporter (each shows up as its own process); but because run
// boundaries are inferred from round-index monotonicity in RoundStart, a
// single Chrome must NOT observe two clusters running concurrently —
// interleaved rounds would scramble the process assignment. Give each
// concurrent run its own Chrome instead.
type Chrome struct {
	mu        sync.Mutex
	spans     []chromeSpan
	rounds    []chromeRound
	instants  []chromeInstant
	pid       int
	lastRound int
	sawRound  bool
}

type chromeSpan struct {
	pid  int
	span MachineSpan
}

type chromeRound struct {
	pid     int
	summary RoundSummary
}

// chromeInstant is a fault, retry, or checkpoint action rendered as an
// instant event: fault/retry on the affected machine's track, checkpoint
// (machine -1) on the rounds track.
type chromeInstant struct {
	pid     int
	name    string // EventFault, EventRetry, or "checkpoint"
	cat     string // event category ("fault" or "checkpoint")
	machine int
	at      time.Time
	args    map[string]any
}

// NewChrome returns an empty exporter.
func NewChrome() *Chrome { return &Chrome{} }

// RoundStart tracks cluster boundaries: a round index that does not
// increase means a new cluster (or a Reset) started, which maps to a new
// process in the trace so successive runs do not overlap on one timeline.
func (c *Chrome) RoundStart(r RoundInfo) {
	c.mu.Lock()
	if c.sawRound && r.Round <= c.lastRound {
		c.pid++
	}
	c.sawRound = true
	c.lastRound = r.Round
	c.mu.Unlock()
}

// MachineStart is a no-op: the span is emitted whole at MachineEnd.
func (c *Chrome) MachineStart(round, machine, inWords int) {}

// MachineEnd records the machine's execution span.
func (c *Chrome) MachineEnd(s MachineSpan) {
	c.mu.Lock()
	c.spans = append(c.spans, chromeSpan{pid: c.pid, span: s})
	c.mu.Unlock()
}

// Message is a no-op: per-machine fan-out and output volume are already on
// the span's args, and per-message events would dwarf the trace.
func (c *Chrome) Message(round, from, to, words int) {}

// Fault records an injected fault as an instant event on the affected
// machine's track, category "fault".
func (c *Chrome) Fault(e FaultEvent) {
	args := map[string]any{
		"round":   e.Round,
		"kind":    string(e.Kind),
		"attempt": e.Attempt,
	}
	if e.Seq >= 0 {
		args["seq"] = e.Seq
	}
	if e.To >= 0 {
		args["to"] = e.To
	}
	c.mu.Lock()
	c.instants = append(c.instants, chromeInstant{
		pid: c.pid, name: EventFault, cat: "fault", machine: e.Machine, at: e.At, args: args})
	c.mu.Unlock()
}

// Retry records a recovery action (machine replay or message
// retransmission) as an instant event on the machine's track.
func (c *Chrome) Retry(e RetryEvent) {
	args := map[string]any{
		"round":   e.Round,
		"kind":    string(e.Kind),
		"attempt": e.Attempt,
	}
	if e.Seq >= 0 {
		args["seq"] = e.Seq
	}
	c.mu.Lock()
	c.instants = append(c.instants, chromeInstant{
		pid: c.pid, name: EventRetry, cat: "fault", machine: e.Machine, at: e.At, args: args})
	c.mu.Unlock()
}

// Checkpoint records a durability action (round snapshot saved, or round
// fast-forwarded from one) as an instant event on the rounds track.
func (c *Chrome) Checkpoint(e CheckpointEvent) {
	args := map[string]any{
		"round": e.Round,
		"kind":  e.Kind,
		"step":  e.Step,
	}
	c.mu.Lock()
	c.instants = append(c.instants, chromeInstant{
		pid: c.pid, name: "checkpoint", cat: "checkpoint", machine: -1, at: e.At, args: args})
	c.mu.Unlock()
}

// RoundEnd records the round's aggregate span for the "rounds" track.
func (c *Chrome) RoundEnd(r RoundSummary) {
	c.mu.Lock()
	c.rounds = append(c.rounds, chromeRound{pid: c.pid, summary: r})
	c.mu.Unlock()
}

// chromeEvent is one trace event in Chrome's JSON schema. Cat carries the
// round's paper phase as the event category, so Perfetto's category filter
// isolates one phase across every machine track.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`            // microseconds since trace epoch
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// roundsTrack is the tid of the per-round summary track; machine m renders
// on tid m+1 so machine ids (which start at 0) never collide with it.
const roundsTrack = 0

// build assembles the event list. The epoch is the earliest span start, so
// timestamps are offsets into the simulation rather than wall-clock values;
// events are sorted (pid, tid, ts, name) so the output is independent of
// goroutine interleaving during collection.
func (c *Chrome) build() chromeFile {
	c.mu.Lock()
	spans := append([]chromeSpan(nil), c.spans...)
	rounds := append([]chromeRound(nil), c.rounds...)
	instants := append([]chromeInstant(nil), c.instants...)
	c.mu.Unlock()

	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.span.Start.Before(epoch) {
			epoch = s.span.Start
		}
	}
	for _, r := range rounds {
		if !r.summary.Start.IsZero() && (epoch.IsZero() || r.summary.Start.Before(epoch)) {
			epoch = r.summary.Start
		}
	}
	for _, in := range instants {
		if !in.at.IsZero() && (epoch.IsZero() || in.at.Before(epoch)) {
			epoch = in.at
		}
	}
	us := func(t time.Time) float64 {
		if t.IsZero() {
			return 0
		}
		return float64(t.Sub(epoch)) / float64(time.Microsecond)
	}

	// Metadata: name each process and track, and pin the rounds track to
	// the top of its process group.
	type track struct{ pid, tid int }
	seen := map[track]bool{}
	var events []chromeEvent
	meta := func(pid, tid int, name string) {
		if seen[track{pid, tid}] {
			return
		}
		seen[track{pid, tid}] = true
		events = append(events,
			chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": name}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"sort_index": tid}})
	}
	procs := map[int]bool{}
	proc := func(pid int) {
		if procs[pid] {
			return
		}
		procs[pid] = true
		events = append(events, chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": "mpc cluster run " + strconv.Itoa(pid)}})
	}

	for _, r := range rounds {
		proc(r.pid)
		meta(r.pid, roundsTrack, "rounds")
		s := r.summary
		args := map[string]any{
			"round":       s.Round,
			"phase":       string(s.Phase),
			"machines":    s.Machines,
			"totalOps":    s.TotalOps,
			"commWords":   s.CommWords,
			"queueWaitUs": s.QueueWait.Microseconds(),
			"straggler":   s.Skew.Straggler,
		}
		// Fault counters appear only when nonzero, so fault-free traces
		// (including the golden test's) are unchanged.
		if s.Failures > 0 {
			args["failures"] = s.Failures
		}
		if s.Retries > 0 {
			args["retries"] = s.Retries
		}
		if s.Err != "" {
			args["error"] = s.Err
		}
		ev := chromeEvent{Name: s.Name, Cat: string(s.Phase), Ph: "X", Pid: r.pid, Tid: roundsTrack,
			Ts: us(s.Start), Dur: float64(s.Elapsed) / float64(time.Microsecond), Args: args}
		if s.Start.IsZero() {
			// No machine ran (pre-flight failure or cancellation): an
			// instant event keeps the failure visible on the timeline.
			ev.Ph, ev.Dur = "i", 0
		}
		events = append(events, ev)
	}
	for _, cs := range spans {
		s := cs.span
		proc(cs.pid)
		meta(cs.pid, s.Machine+1, "machine "+strconv.Itoa(s.Machine))
		events = append(events, chromeEvent{
			Name: s.Name, Cat: string(s.Phase), Ph: "X", Pid: cs.pid, Tid: s.Machine + 1,
			Ts: us(s.Start), Dur: float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
			Args: map[string]any{
				"round":       s.Round,
				"phase":       string(s.Phase),
				"ops":         s.Ops,
				"inWords":     s.InWords,
				"outWords":    s.OutWords,
				"sends":       s.Sends,
				"fanout":      s.Fanout,
				"queueWaitUs": s.QueueWait.Microseconds(),
			},
		})
	}
	for _, in := range instants {
		proc(in.pid)
		if in.machine < 0 {
			meta(in.pid, roundsTrack, "rounds")
		} else {
			meta(in.pid, in.machine+1, "machine "+strconv.Itoa(in.machine))
		}
		events = append(events, chromeEvent{
			Name: in.name, Cat: in.cat, Ph: "i", Pid: in.pid, Tid: in.machine + 1,
			Ts: us(in.at), Args: in.args,
		})
	}

	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		// Metadata first within a process.
		am, bm := a.Ph == "M", b.Ph == "M"
		if am != bm {
			return am
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		return a.Name < b.Name
	})
	return chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"}
}

// JSON renders the collected trace as a Chrome trace-event file.
func (c *Chrome) JSON() ([]byte, error) {
	return json.Marshal(c.build())
}

// WriteTo writes the trace to w (indented, since the files are meant to be
// opened and occasionally read by humans).
func (c *Chrome) WriteTo(w io.Writer) (int64, error) {
	buf, err := json.MarshalIndent(c.build(), "", " ")
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// Events reports how many events the trace currently holds (spans, round
// summaries, and fault/retry instants; metadata is synthesized at export
// time).
func (c *Chrome) Events() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans) + len(c.rounds) + len(c.instants)
}
