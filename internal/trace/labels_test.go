package trace

import (
	"context"
	"runtime/pprof"
	"testing"
)

func TestPhaseLabels(t *testing.T) {
	ctx := pprof.WithLabels(context.Background(), PhaseLabels("ulam-mpc", PhaseChain, "ulam/solve"))
	got := map[string]string{}
	pprof.ForLabels(ctx, func(k, v string) bool {
		got[k] = v
		return true
	})
	want := map[string]string{"algo": "ulam-mpc", "phase": "chain", "round": "ulam/solve"}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("label %s = %q, want %q", k, got[k], v)
		}
	}
	// Unknown pipeline: never an empty algo tag, which would render as a
	// blank row in pprof's tag views.
	ctx = pprof.WithLabels(context.Background(), PhaseLabels("", PhasePartition, "r"))
	algo, _ := pprof.Label(ctx, "algo")
	if algo != "unlabeled" {
		t.Errorf("empty-algo label = %q, want unlabeled", algo)
	}
}

// TestLabelPhaseRunsBody pins the control flow: the body runs exactly
// once whether labeling is on or off. (That the labels actually land on
// profile samples is covered end to end by CI's mpcbench -cpuprofile
// check — goroutine labels are only observable through a profile.)
func TestLabelPhaseRunsBody(t *testing.T) {
	prev := PhaseLabelsEnabled()
	defer SetPhaseLabels(prev)
	for _, on := range []bool{true, false} {
		SetPhaseLabels(on)
		runs := 0
		LabelPhase("edit-mpc", PhasePartition, "edit/partition", func() { runs++ })
		if runs != 1 {
			t.Errorf("LabelPhase(enabled=%v) ran the body %d times, want 1", on, runs)
		}
	}
}
