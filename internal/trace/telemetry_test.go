package trace_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mpcdist/internal/trace"
)

// syntheticCluster builds the telemetry of a 4-party run (coordinator +
// 3 workers) with hand-picked clock offsets: worker clocks are skewed by
// whole milliseconds relative to the coordinator, and OffsetNs carries the
// correction, exactly as the handshake midpoint estimate would. Every
// timestamp is a fixed literal, so the merged trace is byte-stable.
func syntheticCluster() []trace.Telemetry {
	const base = int64(1_700_000_000_000_000_000) // coordinator clock
	span := func(round, machine int, start, dur int64, ops int64) trace.TeleSpan {
		return trace.TeleSpan{
			Round: round, Machine: machine, Name: "candidates", Phase: string(trace.PhaseCandidates),
			StartNs: start, EndNs: start + dur, Ops: ops, OutWords: 8, Sends: 2, Fanout: 2,
		}
	}
	rnd := func(round int, start, dur int64, machines int) trace.TeleRound {
		return trace.TeleRound{
			Round: round, Name: "candidates", Phase: string(trace.PhaseCandidates),
			Machines: machines, StartNs: start, EndNs: start + dur,
			TotalOps: 100, CommWords: 32,
		}
	}

	coord := trace.Telemetry{
		Party: 0, OffsetNs: 0,
		Spans:  []trace.TeleSpan{span(0, 0, base+1_000_000, 400_000, 10)},
		Rounds: []trace.TeleRound{rnd(0, base+900_000, 2_600_000, 4)},
		Events: []trace.TeleTransport{
			{Kind: trace.TransportHandshake, Party: -1, AtNs: base},
			{Kind: trace.TransportExchange, Party: -1, Seq: 1, Bytes: 4096, AtNs: base + 3_600_000},
			{Kind: trace.TransportPeerLost, Party: 3, Seq: 1, AtNs: base + 2_000_000},
			{Kind: trace.TransportReassign, Party: 3, Seq: 1, IDs: 1, Bytes: 2048, AtNs: base + 2_100_000},
			{Kind: trace.TransportPeerStats, Party: 1, Bytes: 9000, RTTNs: 300_000, AtNs: base + 4_000_000},
		},
	}
	// Worker 1's clock runs 5ms behind the coordinator: its raw stamps are
	// small, and OffsetNs = +5ms rebases them.
	w1 := trace.Telemetry{
		Party: 1, OffsetNs: 5_000_000,
		Spans: []trace.TeleSpan{span(0, 1, base-5_000_000+1_100_000, 500_000, 20)},
		Faults: []trace.TeleFault{{
			Round: 0, Machine: 1, Name: "candidates", Phase: string(trace.PhaseCandidates),
			Kind: "drop", Attempt: 1, Seq: 3, To: 2, AtNs: base - 5_000_000 + 1_300_000,
		}},
	}
	// Worker 2 runs 7ms ahead; OffsetNs is negative. Its two batches (two
	// round barriers) must merge into one lane.
	w2a := trace.Telemetry{
		Party: 2, OffsetNs: -7_000_000,
		Spans: []trace.TeleSpan{span(0, 2, base+7_000_000+1_050_000, 450_000, 30)},
	}
	w2b := trace.Telemetry{
		Party: 2, OffsetNs: -7_000_000,
		Spans: []trace.TeleSpan{span(1, 2, base+7_000_000+5_000_000, 300_000, 15)},
	}
	// Worker 3 died mid-round: only its pre-death span arrived.
	w3 := trace.Telemetry{
		Party: 3, OffsetNs: 2_000_000,
		Spans: []trace.TeleSpan{span(0, 3, base-2_000_000+1_200_000, 300_000, 5)},
	}
	return []trace.Telemetry{coord, w1, w2a, w2b, w3}
}

func TestClusterTraceGolden(t *testing.T) {
	ct := trace.BuildClusterTrace(syntheticCluster())
	raw, err := ct.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", " "); err != nil {
		t.Fatal(err)
	}
	got := append(buf.Bytes(), '\n')

	golden := filepath.Join("testdata", "cluster_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace/ -update` to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("merged cluster trace differs from golden (run with -update to regenerate)\ngot:\n%s", got)
	}
}

// TestClusterTraceStructure checks the invariants tracecheck relies on:
// every party gets a named process lane, the transport lane exists, every
// rebased timestamp is non-negative, and clock skew has been corrected —
// worker spans land where the coordinator's timeline says they should.
func TestClusterTraceStructure(t *testing.T) {
	ct := trace.BuildClusterTrace(syntheticCluster())
	raw, err := ct.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}

	procNames := map[int]string{}
	spanTs := map[int]float64{} // pid -> first machine-span Ts
	for _, ev := range file.TraceEvents {
		if ev.Ts < 0 {
			t.Errorf("negative timestamp: %+v", ev)
		}
		if ev.Dur < 0 {
			t.Errorf("negative duration: %+v", ev)
		}
		if ev.Ph == "M" && ev.Name == "process_name" {
			procNames[ev.Pid], _ = ev.Args["name"].(string)
		}
		if ev.Ph == "X" && ev.Tid > 0 {
			if _, ok := spanTs[ev.Pid]; !ok {
				spanTs[ev.Pid] = ev.Ts
			}
		}
	}
	want := map[int]string{
		0: "coordinator (party 0)",
		1: "worker (party 1)",
		2: "worker (party 2)",
		3: "worker (party 3)",
		4: "transport",
	}
	for pid, name := range want {
		if procNames[pid] != name {
			t.Errorf("process %d named %q, want %q", pid, procNames[pid], name)
		}
	}
	// Epoch is the handshake (base); on the rebased timeline the machine
	// spans start at base+1.0ms, +1.1ms, +1.05ms, +1.2ms regardless of each
	// worker's skewed local clock.
	wantTs := map[int]float64{0: 1000, 1: 1100, 2: 1050, 3: 1200}
	for pid, ts := range wantTs {
		if got := spanTs[pid]; got != ts {
			t.Errorf("party %d first span at %vus on merged timeline, want %vus (offset not applied?)", pid, got, ts)
		}
	}
	// The dead worker's reassignment instant must be on the transport lane,
	// on peer 3's track.
	foundReassign := false
	for _, ev := range file.TraceEvents {
		if ev.Name == trace.TransportReassign && ev.Pid == 4 && ev.Tid == 3 {
			foundReassign = true
		}
	}
	if !foundReassign {
		t.Error("reassignment instant missing from transport lane")
	}
}

// TestDrainTelemetry checks the collector-to-wire conversion: remote spans
// are skipped (their owning party ships them itself), retries are tagged,
// and draining empties the collector so successive drains ship disjoint
// batches.
func TestDrainTelemetry(t *testing.T) {
	now := time.Now()
	c := &trace.Collector{}
	c.MachineEnd(trace.MachineSpan{Round: 0, Machine: 1, Name: "r", Start: now, End: now.Add(time.Millisecond), Ops: 5})
	c.MachineEnd(trace.MachineSpan{Round: 0, Machine: 2, Name: "r", Remote: true, Ops: 7})
	c.RoundEnd(trace.RoundSummary{Round: 0, Name: "r", Machines: 2, TotalOps: 12})
	c.Fault(trace.FaultEvent{Round: 0, Machine: 1, Kind: "drop", Seq: 2, To: 3, At: now})
	c.Retry(trace.RetryEvent{Round: 0, Machine: 1, Kind: "crash", Attempt: 2, At: now})
	c.Transport(trace.TransportEvent{Kind: trace.TransportExchange, Party: -1, Seq: 1, Bytes: 64, At: now})

	tel, ok := c.DrainTelemetry()
	if !ok {
		t.Fatal("drain reported empty")
	}
	if len(tel.Spans) != 1 || tel.Spans[0].Machine != 1 {
		t.Errorf("spans = %+v, want only the local machine-1 span (remote skipped)", tel.Spans)
	}
	if len(tel.Rounds) != 1 || tel.Rounds[0].TotalOps != 12 {
		t.Errorf("rounds = %+v", tel.Rounds)
	}
	if len(tel.Faults) != 2 {
		t.Fatalf("faults = %+v, want fault + retry", tel.Faults)
	}
	if tel.Faults[0].Retry || !tel.Faults[1].Retry {
		t.Errorf("retry tagging wrong: %+v", tel.Faults)
	}
	if len(tel.Events) != 1 || tel.Events[0].Kind != trace.TransportExchange {
		t.Errorf("events = %+v", tel.Events)
	}
	if _, ok := c.DrainTelemetry(); ok {
		t.Error("second drain not empty")
	}
}

func TestMergeTelemetry(t *testing.T) {
	got := trace.MergeTelemetry([]trace.Telemetry{
		{Party: 2, OffsetNs: 9, Spans: []trace.TeleSpan{{Round: 0}}},
		{Party: 1, OffsetNs: 4, Rounds: []trace.TeleRound{{Round: 0}}},
		{Party: 2, OffsetNs: 9, Spans: []trace.TeleSpan{{Round: 1}}},
	})
	if len(got) != 2 || got[0].Party != 1 || got[1].Party != 2 {
		t.Fatalf("merged = %+v, want parties [1 2]", got)
	}
	if len(got[1].Spans) != 2 || got[1].Spans[0].Round != 0 || got[1].Spans[1].Round != 1 {
		t.Errorf("party 2 batches not merged in order: %+v", got[1].Spans)
	}
	if got[1].OffsetNs != 9 {
		t.Errorf("OffsetNs = %d, want 9", got[1].OffsetNs)
	}
}
