package trace

import (
	"context"
	"os"
	"runtime/pprof"
	"sync/atomic"
)

// Profiler-label support: every simulated machine executes under
// runtime/pprof goroutine labels {algo, phase, round}, so a CPU profile
// taken from mpcserve's -ops listener or mpcbench -cpuprofile attributes
// its samples to the Table 1 phase taxonomy (pprof -tagfocus/-tagshow,
// or the "Tags" view). Drivers additionally label their in-process input
// partitioning with phase=partition via LabelPhase, since block
// partition happens outside simulated rounds (see Phase).
//
// Labels are pure profiler metadata — they cannot affect a deterministic
// counter — but they cost a small allocation per labeled region, so a
// kill switch exists: MPCDIST_PPROF_LABELS=off (or SetPhaseLabels).

// labelsOff is the process-global kill switch, default off (labels on).
var labelsOff atomic.Bool

func init() {
	if flightEnvOff(os.Getenv("MPCDIST_PPROF_LABELS")) {
		labelsOff.Store(true)
	}
}

// PhaseLabelsEnabled reports whether phase labeling is on.
func PhaseLabelsEnabled() bool { return !labelsOff.Load() }

// SetPhaseLabels flips profiler phase labeling for the process.
func SetPhaseLabels(on bool) { labelsOff.Store(!on) }

// PhaseLabels builds the goroutine label set for one round. algo is the
// pipeline name ("ulam-mpc", "edit-mpc", ...); callers that don't know it
// should pass "" and get "unlabeled".
func PhaseLabels(algo string, phase Phase, round string) pprof.LabelSet {
	if algo == "" {
		algo = "unlabeled"
	}
	return pprof.Labels("algo", algo, "phase", string(phase), "round", round)
}

// LabelPhase runs f under {algo, phase, round} goroutine labels (or
// directly, when labeling is off). Drivers wrap their out-of-round work —
// input partitioning, merges — so profiles cover all four phases even
// though PhasePartition never executes inside the simulator.
func LabelPhase(algo string, phase Phase, round string, f func()) {
	if !PhaseLabelsEnabled() {
		f()
		return
	}
	pprof.Do(context.Background(), PhaseLabels(algo, phase, round), func(context.Context) { f() })
}
