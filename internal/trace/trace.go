// Package trace defines the observability layer of the MPC simulator: an
// Observer interface that internal/mpc invokes from Cluster.Run, plus the
// built-in observers — a Chrome trace-event (Perfetto-compatible) exporter
// that renders a simulation as a timeline with one track per simulated
// machine, and a skew analyzer quantifying straggler effects.
//
// The quantities observed here are exactly the ones the paper's Table 1 is
// stated in, resolved to per-machine granularity: a MachineSpan carries the
// machine's wall time excluding semaphore queueing, its operation count,
// and its input/output volume, so the gap between "total work" and
// "parallel time" — the axis on which the paper improves over HSS [20] —
// becomes visible per round instead of only as an end-of-run aggregate.
//
// Observers may be invoked concurrently from the goroutines simulating
// machines; implementations must be safe for concurrent use. The built-in
// observers lock internally. A nil Observer on mpc.Config costs one nil
// check per event site (benchmarked in internal/mpc).
package trace

import "time"

// RoundInfo announces a round about to execute.
type RoundInfo struct {
	Round    int    // zero-based round index within the cluster's history
	Name     string // the round's label, e.g. "ulam:solve"
	Phase    Phase  // the paper phase the round implements
	Machines int    // machines that received input this round
}

// MachineSpan is the execution record of one machine in one round. Start
// and End delimit the machine's actual execution window — the clock starts
// after the simulator's parallelism semaphore is acquired, so the span
// excludes queueing and measures only simulated work.
type MachineSpan struct {
	Round   int
	Name    string // round name
	Phase   Phase  // the paper phase of the round
	Machine int
	// Start and End delimit execution, excluding semaphore wait.
	Start time.Time
	End   time.Time
	// QueueWait is how long the machine waited for an execution slot.
	QueueWait time.Duration
	// Ops is the machine's elementary-operation count.
	Ops int64
	// InWords and OutWords are the resident input and emitted output sizes.
	InWords  int
	OutWords int
	// Sends counts emitted messages; Fanout counts distinct destinations.
	Sends  int
	Fanout int
	// Remote marks a span replayed from another party's execution record
	// on a distributed run (its timestamps were rebased onto this party's
	// clock). Telemetry shipping skips remote spans so each party reports
	// only the machines it executed itself.
	Remote bool
}

// Duration returns the span's execution time.
func (s MachineSpan) Duration() time.Duration { return s.End.Sub(s.Start) }

// RoundSummary closes a round with its aggregate measurements. Err is the
// simulator's error ("input"/"output" memory violations, the machine-count
// cap, retry-budget exhaustion, or cancellation) when the round failed,
// empty on success.
type RoundSummary struct {
	Round    int
	Name     string
	Phase    Phase
	Machines int
	// Start and End delimit the round's execution window: first machine
	// start to last machine end (zero when no machine ran).
	Start time.Time
	End   time.Time
	// Elapsed is End - Start; QueueWait sums the machines' slot waits.
	Elapsed   time.Duration
	QueueWait time.Duration
	TotalOps  int64
	CommWords int64
	// Failures counts injected faults observed during the round (crashes,
	// dropped/duplicated messages, straggler delays); Retries counts the
	// recovery actions (machine re-executions, message retransmissions).
	// Both are 0 on a fault-free cluster.
	Failures int
	Retries  int
	// Skew summarizes the distribution of per-machine execution times.
	Skew SkewStats
	Err  string
}

// FaultKind labels an injected fault or the recovery action for it.
type FaultKind string

const (
	FaultCrashBefore FaultKind = "crash-before" // machine lost before executing
	FaultCrashAfter  FaultKind = "crash-after"  // machine lost after executing, output dropped
	FaultMsgDrop     FaultKind = "msg-drop"     // message transmission lost in the shuffle
	FaultMsgDup      FaultKind = "msg-dup"      // message duplicated in flight (receiver dedupes)
	FaultStraggle    FaultKind = "straggle"     // machine execution delayed
)

// EventFault and EventRetry are the trace-event names fault and recovery
// events render under (e.g. in the Chrome exporter's timeline).
const (
	EventFault = "fault"
	EventRetry = "retry"
)

// FaultEvent reports one injected fault. Machine is the crashed/delayed
// machine, or the sender for message faults; Seq and To are the message
// coordinates for message faults and -1 otherwise.
type FaultEvent struct {
	Round   int
	Name    string // round name
	Phase   Phase
	Machine int
	Kind    FaultKind
	Attempt int // the attempt the fault hit (0 = first execution/transmission)
	Seq     int // sender's message sequence number (msg faults), -1 otherwise
	To      int // destination machine (msg faults), -1 otherwise
	At      time.Time
}

// RetryEvent reports one recovery action: a machine about to be replayed
// or a message about to be retransmitted after the fault described by
// Kind. Attempt is the upcoming attempt's index.
type RetryEvent struct {
	Round   int
	Name    string
	Phase   Phase
	Machine int
	Kind    FaultKind // the fault being recovered from
	Attempt int       // the attempt about to run (>= 1)
	Seq     int       // message sequence for retransmissions, -1 otherwise
	At      time.Time
}

// Observer receives the simulator's execution events. RoundStart and
// RoundEnd are invoked from the driving goroutine; MachineStart,
// MachineEnd, Message, Fault, and Retry are invoked concurrently from the
// machine goroutines, so implementations must be safe for concurrent use.
type Observer interface {
	RoundStart(r RoundInfo)
	MachineStart(round, machine, inWords int)
	MachineEnd(s MachineSpan)
	// Message reports one emitted message (from -> to, words) during a round.
	Message(round, from, to, words int)
	// Fault reports one injected fault; Retry reports the recovery action
	// replaying a machine or retransmitting a message.
	Fault(e FaultEvent)
	Retry(e RetryEvent)
	RoundEnd(r RoundSummary)
}

// Base is a no-op Observer for embedding: an observer interested in a
// subset of events embeds Base and overrides what it needs.
type Base struct{}

func (Base) RoundStart(RoundInfo)     {}
func (Base) MachineStart(_, _, _ int) {}
func (Base) MachineEnd(MachineSpan)   {}
func (Base) Message(_, _, _, _ int)   {}
func (Base) Fault(FaultEvent)         {}
func (Base) Retry(RetryEvent)         {}
func (Base) RoundEnd(RoundSummary)    {}

// Multi fans every event out to several observers in order. A nil entry is
// skipped, so Multi(a, nil) is usable without pre-filtering.
func Multi(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Observer

func (m multi) RoundStart(r RoundInfo) {
	for _, o := range m {
		o.RoundStart(r)
	}
}

func (m multi) MachineStart(round, machine, inWords int) {
	for _, o := range m {
		o.MachineStart(round, machine, inWords)
	}
}

func (m multi) MachineEnd(s MachineSpan) {
	for _, o := range m {
		o.MachineEnd(s)
	}
}

func (m multi) Message(round, from, to, words int) {
	for _, o := range m {
		o.Message(round, from, to, words)
	}
}

func (m multi) Fault(e FaultEvent) {
	for _, o := range m {
		o.Fault(e)
	}
}

func (m multi) Retry(e RetryEvent) {
	for _, o := range m {
		o.Retry(e)
	}
}

func (m multi) RoundEnd(r RoundSummary) {
	for _, o := range m {
		o.RoundEnd(r)
	}
}

// Transport forwards a transport-level event to every member that
// implements TransportObserver. Having multi implement the optional
// interface means a Multi(...) result never silently drops transport
// events just because the first member doesn't consume them.
func (m multi) Transport(e TransportEvent) {
	for _, o := range m {
		if to, ok := o.(TransportObserver); ok {
			to.Transport(e)
		}
	}
}

// Checkpoint event kinds: a completed round persisted to the durable
// store, or a round fast-forwarded from a snapshot instead of executed.
const (
	CheckpointSave   = "save"
	CheckpointResume = "resume"
)

// CheckpointEvent reports one durability action at a round boundary (see
// internal/checkpoint). Like transport events it is host-level and
// out-of-band: saving or resuming never changes a deterministic counter.
type CheckpointEvent struct {
	Round int    // round index within its cluster
	Name  string // round name
	Phase Phase
	Kind  string // CheckpointSave or CheckpointResume
	Step  int    // job-global checkpoint step index
	At    time.Time
}

// CheckpointObserver is the optional interface an Observer implements to
// receive checkpoint instants. internal/mpc emits them through
// EmitCheckpoint, so plain observers pay nothing.
type CheckpointObserver interface {
	Checkpoint(e CheckpointEvent)
}

// EmitCheckpoint forwards e to obs when it consumes checkpoint events
// (directly or, for Multi results, via any member that does).
func EmitCheckpoint(obs Observer, e CheckpointEvent) {
	if co, ok := obs.(CheckpointObserver); ok {
		co.Checkpoint(e)
	}
}

// Checkpoint forwards a checkpoint instant to every member that
// implements CheckpointObserver, mirroring Transport above.
func (m multi) Checkpoint(e CheckpointEvent) {
	for _, o := range m {
		if co, ok := o.(CheckpointObserver); ok {
			co.Checkpoint(e)
		}
	}
}
