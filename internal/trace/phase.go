package trace

import "fmt"

// Phase is the paper-level algorithm phase a simulated round implements.
// Table 1 states its budgets (rounds, per-machine memory, machines, total
// work) per algorithm, but the proofs charge them phase by phase; tagging
// every round with its phase is what lets the observability layer aggregate
// measurements in the same shape the paper argues in (and what BudgetCheck
// evaluates envelopes against).
//
// The taxonomy, mapped to the paper's structure:
//
//	PhasePartition   block partition / input distribution rounds. The
//	                 simulator's drivers currently partition inputs outside
//	                 of rounds, so no built-in algorithm emits it today; it
//	                 is reserved for algorithms that shuffle inputs into
//	                 blocks inside the model (e.g. a future sort-based
//	                 partitioner).
//	PhaseCandidates  candidate-substring construction and scoring: Ulam
//	                 Algorithm 1 (lulam + hitting-set grids), the
//	                 small-distance pair rounds of Lemma 6, and the [20]
//	                 baseline's one-pair-per-machine rounds.
//	PhaseGraph       the G_tau graph build of the large-distance regime:
//	                 representative distance grids (Algorithm 5), the
//	                 N_tau(z) x N_2tau(z) join and low-degree sparse runs
//	                 (Algorithm 6), and extension (Algorithm 7).
//	PhaseChain       chaining / longest-decreasing-extension DPs: Ulam
//	                 Algorithm 2, the edit-distance chain of Algorithm 4,
//	                 and the overlap-tolerant DP of Section 5.2.3.
//
// Every Cluster.Run call must carry a valid Phase; the simulator rejects
// unphased rounds, so a round can never reach an Observer without one.
type Phase string

const (
	PhasePartition  Phase = "partition"
	PhaseCandidates Phase = "candidates"
	PhaseGraph      Phase = "graph"
	PhaseChain      Phase = "chain"
)

// AllPhases lists the taxonomy in canonical (pipeline) order. Aggregators
// iterate it so per-phase output has a stable column/row order.
func AllPhases() []Phase {
	return []Phase{PhasePartition, PhaseCandidates, PhaseGraph, PhaseChain}
}

// Valid reports whether p is one of the defined phases.
func (p Phase) Valid() bool {
	switch p {
	case PhasePartition, PhaseCandidates, PhaseGraph, PhaseChain:
		return true
	}
	return false
}

// Index returns the phase's position in canonical order, or len(AllPhases())
// for unknown phases (so they sort last rather than scrambling output).
func (p Phase) Index() int {
	for i, q := range AllPhases() {
		if p == q {
			return i
		}
	}
	return len(AllPhases())
}

// CheckPhase returns a descriptive error for an invalid phase, nil
// otherwise. The simulator calls it before opening a round.
func CheckPhase(p Phase) error {
	if p.Valid() {
		return nil
	}
	return fmt.Errorf("trace: invalid phase %q (rounds must carry one of %v)", string(p), AllPhases())
}
