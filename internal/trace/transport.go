package trace

import "time"

// Transport event kinds (TransportEvent.Kind).
const (
	TransportHandshake = "handshake"     // session established: all workers registered
	TransportPeerLost  = "peer-lost"     // a peer was permanently evicted (conn error past grace, corrupt burst)
	TransportSuspect   = "peer-suspect"  // a peer's connection failed; its slot is held for rejoin
	TransportReconnect = "reconnect"     // a peer redialed and resumed its session slot
	TransportCorrupt   = "corrupt-frame" // a frame failed the CRC/length integrity check
	TransportReassign  = "reassign"      // a lost peer's machines were re-executed elsewhere
	TransportExchange  = "exchange"      // one round barrier completed
)

// TransportEvent reports one occurrence in the distributed shuffle
// transport (see internal/transport): session handshakes, round-barrier
// completions, peer losses, and the reassignments that recover from them.
// These are host-level events — a run's deterministic model counters are
// identical whatever they say.
type TransportEvent struct {
	Kind  string
	Party int   // remote party involved (0 = the coordinator), -1 when not applicable
	Seq   int   // exchange sequence number within the session, 0 when not applicable
	IDs   int   // machine count involved (reassignments), 0 otherwise
	Bytes int64 // cumulative bytes on the wire at event time
	At    time.Time
}

// TransportObserver is implemented by observers that additionally want
// transport-level events. It is deliberately a separate, optional
// interface rather than a method on Observer, so existing observers keep
// compiling; internal/dist type-asserts for it when wiring a distributed
// run.
type TransportObserver interface {
	Transport(e TransportEvent)
}
