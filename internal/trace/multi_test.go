package trace_test

import (
	"fmt"
	"sync"
	"testing"

	"mpcdist/internal/trace"
)

// recorder appends a tagged line per event to a shared log, so tests can
// check fan-out order across the observers of a Multi.
type recorder struct {
	trace.Base
	tag string
	mu  *sync.Mutex
	log *[]string
}

func (r *recorder) record(ev string) {
	r.mu.Lock()
	*r.log = append(*r.log, r.tag+":"+ev)
	r.mu.Unlock()
}

func (r *recorder) RoundStart(ri trace.RoundInfo) { r.record(fmt.Sprintf("start%d", ri.Round)) }
func (r *recorder) MachineEnd(s trace.MachineSpan) {
	r.record(fmt.Sprintf("end%d.%d", s.Round, s.Machine))
}
func (r *recorder) Message(round, from, to, words int) {
	r.record(fmt.Sprintf("msg%d.%d>%d", round, from, to))
}
func (r *recorder) RoundEnd(rs trace.RoundSummary) { r.record(fmt.Sprintf("finish%d", rs.Round)) }

func TestMultiFiltersNil(t *testing.T) {
	if trace.Multi() != nil {
		t.Error("Multi() != nil")
	}
	if trace.Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) != nil")
	}
	var mu sync.Mutex
	var log []string
	a := &recorder{tag: "a", mu: &mu, log: &log}
	if got := trace.Multi(nil, a, nil); got != trace.Observer(a) {
		t.Errorf("Multi(nil, a, nil) = %v, want a itself (no wrapper)", got)
	}
}

func TestMultiPreservesOrder(t *testing.T) {
	var mu sync.Mutex
	var log []string
	a := &recorder{tag: "a", mu: &mu, log: &log}
	b := &recorder{tag: "b", mu: &mu, log: &log}
	m := trace.Multi(a, nil, b)

	m.RoundStart(trace.RoundInfo{Round: 0, Phase: trace.PhaseCandidates})
	m.Message(0, 1, 2, 8)
	m.MachineEnd(trace.MachineSpan{Round: 0, Machine: 1})
	m.RoundEnd(trace.RoundSummary{Round: 0})

	want := []string{
		"a:start0", "b:start0",
		"a:msg0.1>2", "b:msg0.1>2",
		"a:end0.1", "b:end0.1",
		"a:finish0", "b:finish0",
	}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %q, want %q (full: %v)", i, log[i], want[i], log)
		}
	}
}

// transportRecorder is a recorder that additionally implements
// trace.TransportObserver.
type transportRecorder struct {
	recorder
}

func (r *transportRecorder) Transport(e trace.TransportEvent) {
	r.record(fmt.Sprintf("transport:%s.%d", e.Kind, e.Party))
}

// TestMultiForwardsTransportEvents is the regression test for the
// transport-event fan-out: a Multi must forward Transport() to every member
// that implements TransportObserver and silently skip members that do not.
// Before the fan-out existed, wrapping a TransportObserver in a Multi
// silently dropped its transport events.
func TestMultiForwardsTransportEvents(t *testing.T) {
	var mu sync.Mutex
	var log []string
	plain := &recorder{tag: "plain", mu: &mu, log: &log}
	a := &transportRecorder{recorder{tag: "a", mu: &mu, log: &log}}
	b := &transportRecorder{recorder{tag: "b", mu: &mu, log: &log}}
	m := trace.Multi(plain, a, b)

	to, ok := m.(trace.TransportObserver)
	if !ok {
		t.Fatal("Multi of TransportObservers does not implement TransportObserver")
	}
	to.Transport(trace.TransportEvent{Kind: trace.TransportReassign, Party: 2})
	to.Transport(trace.TransportEvent{Kind: trace.TransportExchange, Party: -1})

	want := []string{
		"a:transport:reassign.2", "b:transport:reassign.2",
		"a:transport:exchange.-1", "b:transport:exchange.-1",
	}
	mu.Lock()
	defer mu.Unlock()
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v (plain member must not receive transport events)", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %q, want %q", i, log[i], want[i])
		}
	}
}

// TestMultiConcurrentFanOut exercises concurrent MachineEnd/Message fan-out
// through a Multi from many goroutines; run with -race it proves the
// fan-out path adds no shared mutable state of its own.
func TestMultiConcurrentFanOut(t *testing.T) {
	var mu sync.Mutex
	var log []string
	a := &recorder{tag: "a", mu: &mu, log: &log}
	b := &recorder{tag: "b", mu: &mu, log: &log}
	c := &recorder{tag: "c", mu: &mu, log: &log}
	m := trace.Multi(a, b, c)

	const goroutines, events = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				m.MachineEnd(trace.MachineSpan{Round: 0, Machine: g, Phase: trace.PhaseGraph})
				m.Message(0, g, (g+1)%goroutines, i)
			}
		}(g)
	}
	wg.Wait()

	if got, want := len(log), goroutines*events*2*3; got != want {
		t.Errorf("events recorded = %d, want %d", got, want)
	}
}
