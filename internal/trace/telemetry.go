package trace

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"
)

// Telemetry is the wire form of one party's buffered trace events: the
// payload a worker ships to the coordinator at round barriers and on job
// completion. Every field is exported and every timestamp is an int64
// nanosecond value so the struct travels through internal/transport's
// reflection codec unchanged (time.Time does not).
//
// Timestamps are in the *producing party's* clock. OffsetNs is the
// party's estimate of (coordinator clock - local clock), computed at
// handshake time from the hello/welcome round trip (NTP-style midpoint);
// adding it to any timestamp rebases the event onto the coordinator's
// timeline. The coordinator's own telemetry has OffsetNs == 0.
//
// Telemetry is strictly out-of-band: nothing in it feeds a deterministic
// model counter, and a run's results are bit-identical whether or not it
// is collected or shipped.
type Telemetry struct {
	Party    int
	OffsetNs int64
	Spans    []TeleSpan
	Rounds   []TeleRound
	Faults   []TeleFault
	Events   []TeleTransport
}

// TeleSpan is a MachineSpan flattened for the wire.
type TeleSpan struct {
	Round    int
	Machine  int
	Name     string
	Phase    string
	StartNs  int64
	EndNs    int64
	QueueNs  int64
	Ops      int64
	InWords  int
	OutWords int
	Sends    int
	Fanout   int
}

// TeleRound is a RoundSummary flattened for the wire. StartNs/EndNs are 0
// when no machine ran (pre-flight failure).
type TeleRound struct {
	Round     int
	Name      string
	Phase     string
	Machines  int
	StartNs   int64
	EndNs     int64
	QueueNs   int64
	TotalOps  int64
	CommWords int64
	Failures  int
	Retries   int
	Err       string
}

// TeleFault is a FaultEvent or RetryEvent flattened for the wire; Retry
// distinguishes the two (a retry's Kind is the fault being recovered).
type TeleFault struct {
	Round   int
	Machine int
	Name    string
	Phase   string
	Kind    string
	Attempt int
	Seq     int
	To      int
	Retry   bool
	AtNs    int64
}

// TeleTransport is a TransportEvent flattened for the wire, plus the
// synthetic "peer-stats" events the coordinator emits at job end (RTTNs
// carries the heartbeat RTT p99 for those).
type TeleTransport struct {
	Kind  string
	Party int
	Seq   int
	IDs   int
	Bytes int64
	RTTNs int64
	AtNs  int64
}

// TransportPeerStats is the Kind of the synthetic per-peer counter events
// synthesized into the transport lane of a merged cluster trace.
const TransportPeerStats = "peer-stats"

func nsOf(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// DrainTelemetry moves the collector's buffered events into a wire
// Telemetry and clears them, so successive drains ship disjoint batches.
// Spans marked Remote are skipped (they are another party's work, replayed
// locally; that party ships them itself). The second result is false when
// there was nothing to ship. Party and OffsetNs are left zero — the
// transport stamps them at send time.
func (c *Collector) DrainTelemetry() (Telemetry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t Telemetry
	for _, s := range c.Spans {
		if s.Remote {
			continue
		}
		t.Spans = append(t.Spans, TeleSpan{
			Round: s.Round, Machine: s.Machine, Name: s.Name, Phase: string(s.Phase),
			StartNs: nsOf(s.Start), EndNs: nsOf(s.End), QueueNs: int64(s.QueueWait),
			Ops: s.Ops, InWords: s.InWords, OutWords: s.OutWords,
			Sends: s.Sends, Fanout: s.Fanout,
		})
	}
	for _, r := range c.Summaries {
		t.Rounds = append(t.Rounds, TeleRound{
			Round: r.Round, Name: r.Name, Phase: string(r.Phase), Machines: r.Machines,
			StartNs: nsOf(r.Start), EndNs: nsOf(r.End), QueueNs: int64(r.QueueWait),
			TotalOps: r.TotalOps, CommWords: r.CommWords,
			Failures: r.Failures, Retries: r.Retries, Err: r.Err,
		})
	}
	for _, f := range c.Faults {
		t.Faults = append(t.Faults, TeleFault{
			Round: f.Round, Machine: f.Machine, Name: f.Name, Phase: string(f.Phase),
			Kind: string(f.Kind), Attempt: f.Attempt, Seq: f.Seq, To: f.To,
			AtNs: nsOf(f.At),
		})
	}
	for _, r := range c.Retries {
		t.Faults = append(t.Faults, TeleFault{
			Round: r.Round, Machine: r.Machine, Name: r.Name, Phase: string(r.Phase),
			Kind: string(r.Kind), Attempt: r.Attempt, Seq: r.Seq, To: -1, Retry: true,
			AtNs: nsOf(r.At),
		})
	}
	for _, e := range c.Transports {
		t.Events = append(t.Events, TeleTransport{
			Kind: e.Kind, Party: e.Party, Seq: e.Seq, IDs: e.IDs, Bytes: e.Bytes,
			AtNs: nsOf(e.At),
		})
	}
	c.Spans, c.Summaries, c.Faults, c.Retries, c.Transports = nil, nil, nil, nil, nil
	empty := len(t.Spans) == 0 && len(t.Rounds) == 0 && len(t.Faults) == 0 && len(t.Events) == 0
	return t, !empty
}

// MergeTelemetry coalesces batches by party: a worker that flushed at
// several round barriers produced several Telemetry values, which merge
// into one per party (slices append in arrival order; the first batch's
// OffsetNs wins — the offset is a per-handshake constant). The result is
// sorted by party.
func MergeTelemetry(batches []Telemetry) []Telemetry {
	byParty := map[int]*Telemetry{}
	var order []int
	for _, b := range batches {
		m, ok := byParty[b.Party]
		if !ok {
			cp := Telemetry{Party: b.Party, OffsetNs: b.OffsetNs}
			byParty[b.Party] = &cp
			m = &cp
			order = append(order, b.Party)
		}
		m.Spans = append(m.Spans, b.Spans...)
		m.Rounds = append(m.Rounds, b.Rounds...)
		m.Faults = append(m.Faults, b.Faults...)
		m.Events = append(m.Events, b.Events...)
	}
	sort.Ints(order)
	out := make([]Telemetry, 0, len(order))
	for _, p := range order {
		out = append(out, *byParty[p])
	}
	return out
}

// ClusterTrace is a merged multi-process Chrome trace assembled from the
// telemetry of every party in a distributed run. Build it with
// BuildClusterTrace; it renders like Chrome (JSON / WriteTo).
type ClusterTrace struct {
	file chromeFile
}

// BuildClusterTrace merges per-party telemetry into one Chrome trace-event
// file: one process lane per party (pid = party index; party 0 is the
// coordinator), with the familiar per-process layout — tid 0 is the rounds
// track, machine m is tid m+1, faults and retries are instants — plus one
// extra "transport" process lane holding the coordinator's wire-level
// events on one track per peer.
//
// Every timestamp is rebased onto the coordinator's clock via the party's
// OffsetNs before the common epoch (the earliest rebased event) is
// subtracted, so lanes from different processes line up on one timeline.
// The hello/welcome midpoint estimate is typically accurate to well under
// a millisecond on one host; see docs/OBSERVABILITY.md for caveats.
func BuildClusterTrace(parties []Telemetry) *ClusterTrace {
	parties = MergeTelemetry(parties)

	// Epoch: the earliest rebased timestamp across every party.
	var epoch int64
	seenAny := false
	observe := func(ns, off int64) {
		if ns == 0 {
			return
		}
		if v := ns + off; !seenAny || v < epoch {
			epoch, seenAny = v, true
		}
	}
	maxParty := 0
	for _, p := range parties {
		if p.Party > maxParty {
			maxParty = p.Party
		}
		for _, s := range p.Spans {
			observe(s.StartNs, p.OffsetNs)
		}
		for _, r := range p.Rounds {
			observe(r.StartNs, p.OffsetNs)
		}
		for _, f := range p.Faults {
			observe(f.AtNs, p.OffsetNs)
		}
		for _, e := range p.Events {
			observe(e.AtNs, p.OffsetNs)
		}
	}
	transportPid := maxParty + 1

	us := func(ns, off int64) float64 {
		if ns == 0 {
			return 0
		}
		return float64(ns+off-epoch) / 1e3
	}

	type track struct{ pid, tid int }
	seen := map[track]bool{}
	procs := map[int]bool{}
	var events []chromeEvent
	meta := func(pid, tid int, name string) {
		if seen[track{pid, tid}] {
			return
		}
		seen[track{pid, tid}] = true
		events = append(events,
			chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": name}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"sort_index": tid}})
	}
	proc := func(pid int, name string) {
		if procs[pid] {
			return
		}
		procs[pid] = true
		events = append(events, chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name}})
	}
	partyName := func(p int) string {
		if p == 0 {
			return "coordinator (party 0)"
		}
		return "worker (party " + strconv.Itoa(p) + ")"
	}

	for _, p := range parties {
		pid, off := p.Party, p.OffsetNs
		proc(pid, partyName(p.Party))
		for _, r := range p.Rounds {
			meta(pid, roundsTrack, "rounds")
			args := map[string]any{
				"round":     r.Round,
				"phase":     r.Phase,
				"machines":  r.Machines,
				"totalOps":  r.TotalOps,
				"commWords": r.CommWords,
				"party":     p.Party,
			}
			if r.Failures > 0 {
				args["failures"] = r.Failures
			}
			if r.Retries > 0 {
				args["retries"] = r.Retries
			}
			if r.Err != "" {
				args["error"] = r.Err
			}
			ev := chromeEvent{Name: r.Name, Cat: r.Phase, Ph: "X", Pid: pid, Tid: roundsTrack,
				Ts: us(r.StartNs, off), Dur: float64(r.EndNs-r.StartNs) / 1e3, Args: args}
			if r.StartNs == 0 || r.EndNs < r.StartNs {
				// No machine ran (pre-flight failure), or the round is still
				// open (a flight-recorder dump taken mid-round): an instant
				// keeps it visible without a negative duration.
				ev.Ph, ev.Dur = "i", 0
			}
			events = append(events, ev)
		}
		for _, s := range p.Spans {
			meta(pid, s.Machine+1, "machine "+strconv.Itoa(s.Machine))
			events = append(events, chromeEvent{
				Name: s.Name, Cat: s.Phase, Ph: "X", Pid: pid, Tid: s.Machine + 1,
				Ts: us(s.StartNs, off), Dur: float64(s.EndNs-s.StartNs) / 1e3,
				Args: map[string]any{
					"round":       s.Round,
					"phase":       s.Phase,
					"ops":         s.Ops,
					"inWords":     s.InWords,
					"outWords":    s.OutWords,
					"sends":       s.Sends,
					"fanout":      s.Fanout,
					"queueWaitUs": s.QueueNs / 1e3,
					"party":       p.Party,
				},
			})
		}
		for _, f := range p.Faults {
			meta(pid, f.Machine+1, "machine "+strconv.Itoa(f.Machine))
			name := EventFault
			if f.Retry {
				name = EventRetry
			}
			args := map[string]any{
				"round":   f.Round,
				"kind":    f.Kind,
				"attempt": f.Attempt,
			}
			if f.Seq >= 0 {
				args["seq"] = f.Seq
			}
			if !f.Retry && f.To >= 0 {
				args["to"] = f.To
			}
			events = append(events, chromeEvent{
				Name: name, Cat: "fault", Ph: "i", Pid: pid, Tid: f.Machine + 1,
				Ts: us(f.AtNs, off), Args: args,
			})
		}
		for _, e := range p.Events {
			// Transport events render on the dedicated transport lane: one
			// track per remote peer, plus a session track for events not
			// tied to a peer.
			tid := 0
			tname := "session"
			if e.Party > 0 {
				tid = e.Party
				tname = "peer " + strconv.Itoa(e.Party)
			}
			proc(transportPid, "transport")
			meta(transportPid, tid, tname)
			args := map[string]any{
				"kind":  e.Kind,
				"party": e.Party,
				"bytes": e.Bytes,
			}
			if e.Seq > 0 {
				args["seq"] = e.Seq
			}
			if e.IDs > 0 {
				args["machines"] = e.IDs
			}
			if e.RTTNs > 0 {
				args["rttP99Us"] = e.RTTNs / 1e3
			}
			events = append(events, chromeEvent{
				Name: e.Kind, Cat: "transport", Ph: "i", Pid: transportPid, Tid: tid,
				Ts: us(e.AtNs, off), Args: args,
			})
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		am, bm := a.Ph == "M", b.Ph == "M"
		if am != bm {
			return am
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		return a.Name < b.Name
	})
	return &ClusterTrace{file: chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"}}
}

// Events reports how many events the merged trace holds, metadata included.
func (t *ClusterTrace) Events() int { return len(t.file.TraceEvents) }

// JSON renders the merged trace as a Chrome trace-event file.
func (t *ClusterTrace) JSON() ([]byte, error) { return json.Marshal(t.file) }

// WriteTo writes the merged trace to w (indented, like Chrome.WriteTo).
func (t *ClusterTrace) WriteTo(w io.Writer) (int64, error) {
	buf, err := json.MarshalIndent(t.file, "", " ")
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf)
	return int64(n), err
}
