package stats

import (
	"math/rand"
	"testing"
)

// refMix64 is an independent transcription of the SplitMix64 finalizer from
// the reference constants (Steele, Lea, Flood; as in Vigna's splitmix64.c).
// Mix64 moved here from private copies in internal/mpc and internal/fault;
// this golden reference is what both packages' streams were derived from,
// so agreement here means neither stream shifted in the consolidation.
func refMix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func TestMix64GoldenVectors(t *testing.T) {
	// Known outputs of splitmix64 next() seeded at 0, 1, and a large seed:
	// next(seed) is exactly the finalizer applied to seed+gamma, i.e.
	// Mix64(seed) in our formulation.
	golden := map[uint64]uint64{
		0:                  0xe220a8397b1dcdaf,
		1:                  0x910a2dec89025cc1,
		0xdeadbeefcafebabe: 0x0d7d93560d1929d2,
		0xffffffffffffffff: 0xe4d971771b652c20,
		0x9e3779b97f4a7c15: 0x6e789e6aa1b965f4,
	}
	for in, want := range golden {
		if got := Mix64(in); got != want {
			t.Errorf("Mix64(%#x) = %#x, want %#x", in, got, want)
		}
	}
}

func TestMix64MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10_000; i++ {
		v := rng.Uint64()
		if got, want := Mix64(v), refMix64(v); got != want {
			t.Fatalf("Mix64(%#x) = %#x, reference says %#x", v, got, want)
		}
	}
}

func TestMix64Scatters(t *testing.T) {
	// Sanity: sequential inputs must not collide in the low 32 bits over a
	// modest range (the simulator derives per-machine seeds this way).
	seen := make(map[uint32]uint64, 1<<16)
	for v := uint64(0); v < 1<<16; v++ {
		lo := uint32(Mix64(v))
		if prev, ok := seen[lo]; ok {
			t.Fatalf("low-32 collision: Mix64(%d) and Mix64(%d)", prev, v)
		}
		seen[lo] = v
	}
}
