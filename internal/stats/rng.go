package stats

// Mix64 is the SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
// It is the single shared mixing primitive behind every deterministic
// derivation in the repository — the simulator's per-machine and shared
// random streams (internal/mpc), the fault-schedule decisions
// (internal/fault), and the distributed transport's job-id derivation
// (internal/dist) all chain Mix64 over their coordinates. Keeping one
// implementation (with a golden-vector test) guarantees the streams cannot
// drift apart: a worker process re-deriving a seed from (seed, round,
// machine) lands on exactly the bits the coordinator derived.
func Mix64(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}
