package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns, in the
// spirit of the paper's Table 1.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{Header: header}
}

// Add appends a row; cells are rendered with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	var sep []string
	for i := 0; i < ncol; i++ {
		sep = append(sep, strings.Repeat("-", width[i]))
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// LogLogSlope fits y = c·x^a by least squares in log-log space and returns
// the exponent a. It is the harness's tool for comparing measured growth
// against the paper's asymptotic exponents. Points with non-positive
// coordinates are skipped; fewer than two usable points yield NaN.
func LogLogSlope(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// Ratio formats a/b, guarding zero denominators.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return float64(a) / float64(b)
}
