// Package stats provides operation counters and table-formatting helpers
// used by the benchmark harness to report measured model quantities
// (machines, memory, work) in the shape of the paper's Table 1.
package stats

import "sync/atomic"

// Ops counts elementary operations (DP cell evaluations, comparisons)
// performed by a kernel. A nil *Ops is valid everywhere and counts nothing,
// so hot paths can skip instrumentation without branching at call sites.
//
// The counter is safe for concurrent use: simulated MPC machines run on
// separate goroutines and may share one Ops.
type Ops struct {
	n atomic.Int64
}

// Add records n additional operations. Safe on a nil receiver.
func (o *Ops) Add(n int64) {
	if o != nil {
		o.n.Add(n)
	}
}

// Count returns the number of operations recorded so far.
// Safe on a nil receiver (returns 0).
func (o *Ops) Count() int64 {
	if o == nil {
		return 0
	}
	return o.n.Load()
}

// Reset zeroes the counter. Safe on a nil receiver.
func (o *Ops) Reset() {
	if o != nil {
		o.n.Store(0)
	}
}
