package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestOpsNilSafe(t *testing.T) {
	var o *Ops
	o.Add(5)
	if o.Count() != 0 {
		t.Error("nil Ops should count 0")
	}
	o.Reset()
}

func TestOpsConcurrent(t *testing.T) {
	var o Ops
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				o.Add(1)
			}
		}()
	}
	wg.Wait()
	if o.Count() != 8000 {
		t.Errorf("concurrent count = %d, want 8000", o.Count())
	}
	o.Reset()
	if o.Count() != 0 {
		t.Error("Reset failed")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "n", "value")
	tb.Add("alpha", 100, 3.14159)
	tb.Add("beta", 20000, "x")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[2], "alpha") {
		t.Errorf("table content wrong:\n%s", s)
	}
	if !strings.Contains(lines[2], "3.14") {
		t.Errorf("float formatting wrong:\n%s", s)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 2 x^1.5
	xs := []float64{10, 100, 1000, 10000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 * math.Pow(x, 1.5)
	}
	if got := LogLogSlope(xs, ys); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("slope = %v, want 1.5", got)
	}
	if !math.IsNaN(LogLogSlope([]float64{1}, []float64{1})) {
		t.Error("single point should give NaN")
	}
	if !math.IsNaN(LogLogSlope([]float64{-1, -2}, []float64{1, 2})) {
		t.Error("non-positive xs should give NaN")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 4) != 2.5 {
		t.Error("Ratio wrong")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Error("Ratio by zero should be +Inf")
	}
}
