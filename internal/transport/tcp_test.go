package transport

import (
	"errors"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// recsFor builds the deterministic records a party would produce for its
// machine ids at a given exchange — the stand-in for real round execution.
func recsFor(ids []int, seq int) []Record {
	out := make([]Record, len(ids))
	for i, id := range ids {
		out[i] = Record{Machine: id, Ops: int64(100*seq + id), Started: true}
	}
	return out
}

// wantMerged is the full merged round every party must land on: machines
// 0..3 in id order, with Remote set from the observer's point of view.
func wantMerged(seq int, mine func(id int) bool) []Record {
	out := recsFor([]int{0, 1, 2, 3}, seq)
	for i := range out {
		out[i].Remote = !mine(out[i].Machine)
	}
	return out
}

// normMsgs nils out empty outboxes: the wire codec decodes an absent
// outbox as an empty slice, which is semantically identical to the nil a
// fresh Record carries.
func normMsgs(recs []Record) []Record {
	for i := range recs {
		if len(recs[i].Msgs) == 0 {
			recs[i].Msgs = nil
		}
	}
	return recs
}

// runWorker drives the worker half of a 3-exchange job and reports every
// merged round (or the first error) back on the channel.
type workerReport struct {
	merged [][]Record
	err    error
}

func runWorker(addr string, opts Options, rounds int) <-chan workerReport {
	ch := make(chan workerReport, 1)
	go func() {
		var rep workerReport
		defer func() { ch <- rep }()
		w, err := DialWorker(addr, opts)
		if err != nil {
			rep.err = err
			return
		}
		defer w.Close()
		if _, err := w.NextJob(); err != nil {
			rep.err = err
			return
		}
		assign := [][]int{{0, 1}, {2, 3}}
		exec := func(ids []int) ([]Record, error) { return recsFor(ids, w.curSeqForTest()), nil }
		for seq := 1; seq <= rounds; seq++ {
			meta := RoundMeta{Round: seq - 1, Name: "round", Phase: "candidates"}
			m, err := w.Exchange(meta, assign, recsFor([]int{2, 3}, seq), exec)
			if err != nil {
				rep.err = err
				return
			}
			rep.merged = append(rep.merged, m)
		}
		if err := w.FinishJob([]byte("digest")); err != nil {
			rep.err = err
			return
		}
		if _, err := w.NextJob(); !errors.Is(err, ErrShutdown) {
			rep.err = err
		}
	}()
	return ch
}

// curSeqForTest exposes the worker's exchange counter to the test exec
// closure (reassignment replay must use the current round's inputs).
func (w *Worker) curSeqForTest() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// TestRejoinAfterConnDrop is the tentpole's core unit test, without any
// process machinery: one in-process worker severs its own connection at
// the start of exchange 2, and with a rejoin grace in force the session
// must heal through reconnect + slot resume — bit-identical merged rounds
// on both sides, one reconnect on the books, and neither an eviction nor
// a reassignment anywhere.
func TestRejoinAfterConnDrop(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	ch := runWorker(ln.Addr().String(), Options{TestDropConnAtSeq: 2}, rounds)
	co, err := NewCoordinator(ln, 1, Options{RejoinGrace: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if err := co.StartJob([]byte("job")); err != nil {
		t.Fatal(err)
	}
	exec := func(ids []int) ([]Record, error) {
		t.Errorf("local replay ran for %v; rejoin should have made it unnecessary", ids)
		return recsFor(ids, 0), nil
	}
	for seq := 1; seq <= rounds; seq++ {
		meta := RoundMeta{Round: seq - 1, Name: "round", Phase: "candidates"}
		m, err := co.Exchange(meta, [][]int{{0, 1}, {2, 3}}, recsFor([]int{0, 1}, seq), exec)
		if err != nil {
			t.Fatalf("exchange %d: %v", seq, err)
		}
		if want := wantMerged(seq, func(id int) bool { return id < 2 }); !reflect.DeepEqual(normMsgs(m), want) {
			t.Fatalf("exchange %d merged = %+v, want %+v", seq, m, want)
		}
	}
	results, err := co.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || string(results[0]) != "digest" {
		t.Fatalf("results = %q", results)
	}
	co.Shutdown()

	rep := <-ch
	if rep.err != nil {
		t.Fatalf("worker: %v", rep.err)
	}
	for seq := 1; seq <= rounds; seq++ {
		if want := wantMerged(seq, func(id int) bool { return id >= 2 }); !reflect.DeepEqual(normMsgs(rep.merged[seq-1]), want) {
			t.Fatalf("worker exchange %d merged = %+v, want %+v", seq, rep.merged[seq-1], want)
		}
	}

	st := co.Stats()
	if st.Reconnects != 1 {
		t.Errorf("Reconnects = %d, want 1", st.Reconnects)
	}
	if st.PeersLost != 0 || st.Reassigns != 0 {
		t.Errorf("PeersLost = %d, Reassigns = %d, want 0/0: the slot must resume, not be replaced", st.PeersLost, st.Reassigns)
	}
	if co.Alive() != 1 {
		t.Errorf("Alive() = %d, want 1", co.Alive())
	}
}

// flipConn corrupts one byte of armed inbound traffic; fired is shared
// across connections so the rejoin connection is clean (or, with a
// per-conn flag, every connection poisons itself — the eviction test).
type flipConn struct {
	net.Conn
	armed atomic.Bool
	fired *atomic.Bool
}

func (c *flipConn) Arm() { c.armed.Store(true) }

func (c *flipConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && c.armed.Load() && c.fired.CompareAndSwap(false, true) {
		p[0] ^= 0x40
	}
	return n, err
}

// TestCorruptFrameRecyclesConn injects a single bit flip into the first
// worker frame the coordinator reads after the handshake. The CRC must
// catch it, the connection must recycle (never resynchronize), the worker
// must rejoin within the grace, and the exchange must still produce the
// exact merged round — with the corruption visible in the stats.
func TestCorruptFrameRecyclesConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Bool
	opts := Options{
		RejoinGrace: 5 * time.Second,
		WrapConn:    func(c net.Conn) net.Conn { return &flipConn{Conn: c, fired: &fired} },
	}
	ch := runWorker(ln.Addr().String(), Options{}, 1)
	co, err := NewCoordinator(ln, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if err := co.StartJob([]byte("job")); err != nil {
		t.Fatal(err)
	}
	exec := func(ids []int) ([]Record, error) {
		t.Errorf("local replay ran for %v", ids)
		return recsFor(ids, 1), nil
	}
	m, err := co.Exchange(RoundMeta{Round: 0, Name: "round", Phase: "candidates"},
		[][]int{{0, 1}, {2, 3}}, recsFor([]int{0, 1}, 1), exec)
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	if want := wantMerged(1, func(id int) bool { return id < 2 }); !reflect.DeepEqual(normMsgs(m), want) {
		t.Fatalf("merged = %+v, want %+v", m, want)
	}
	if _, err := co.Results(); err != nil {
		t.Fatal(err)
	}
	co.Shutdown()
	if rep := <-ch; rep.err != nil {
		t.Fatalf("worker: %v", rep.err)
	}
	st := co.Stats()
	if st.CorruptFrames < 1 {
		t.Errorf("CorruptFrames = %d, want >= 1", st.CorruptFrames)
	}
	if st.Reconnects < 1 {
		t.Errorf("Reconnects = %d, want >= 1", st.Reconnects)
	}
	if st.PeersLost != 0 {
		t.Errorf("PeersLost = %d, want 0", st.PeersLost)
	}
}

// perConnFlip poisons the first armed read of EVERY connection, so each
// rejoin brings a fresh corrupt frame and the cumulative per-slot count
// climbs until the tolerance evicts the peer.
type perConnFlip struct {
	net.Conn
	armed atomic.Bool
	fired atomic.Bool
}

func (c *perConnFlip) Arm() { c.armed.Store(true) }

func (c *perConnFlip) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && c.armed.Load() && c.fired.CompareAndSwap(false, true) {
		p[0] ^= 0x40
	}
	return n, err
}

// TestCorruptToleranceEvicts checks the bounded-tolerance half of the
// contract: when a peer's link corrupts frames persistently (every
// connection, including rejoins), the cumulative per-slot count crosses
// CorruptTolerance, rejoin is refused, and the coordinator falls back to
// exact local replay — still completing the round.
func TestCorruptToleranceEvicts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		RejoinGrace:      5 * time.Second,
		CorruptTolerance: 1,
		WrapConn:         func(c net.Conn) net.Conn { return &perConnFlip{Conn: c} },
	}
	ch := runWorker(ln.Addr().String(), Options{}, 1)
	co, err := NewCoordinator(ln, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if err := co.StartJob([]byte("job")); err != nil {
		t.Fatal(err)
	}
	exec := func(ids []int) ([]Record, error) { return recsFor(ids, 1), nil }
	m, err := co.Exchange(RoundMeta{Round: 0, Name: "round", Phase: "candidates"},
		[][]int{{0, 1}, {2, 3}}, recsFor([]int{0, 1}, 1), exec)
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	if want := wantMerged(1, func(id int) bool { return true }); !reflect.DeepEqual(normMsgs(m), want) {
		t.Fatalf("merged = %+v, want %+v", m, want)
	}
	if _, err := co.Results(); err != nil {
		t.Fatal(err)
	}
	co.Shutdown()
	st := co.Stats()
	if st.PeersLost != 1 {
		t.Errorf("PeersLost = %d, want 1 (tolerance crossed)", st.PeersLost)
	}
	if st.CorruptFrames < 2 {
		t.Errorf("CorruptFrames = %d, want >= 2", st.CorruptFrames)
	}
	if st.Reassigns == 0 {
		t.Error("evicted worker's machines were never replayed")
	}
	// The worker ends with a permanent transport error — its rejoin was
	// refused — never a clean shutdown.
	if rep := <-ch; rep.err == nil {
		t.Error("worker finished cleanly despite eviction")
	}
}
