package transport

import (
	"flag"
	"fmt"
	"sync"
	"time"
)

// Msg is one addressed message in a machine's outbox. Data is the payload
// value, opaque to this package (internal/mpc asserts it back to
// mpc.Payload); on the wire it travels through the self-describing codec.
type Msg struct {
	To   int
	Data any
}

// Record is the execution record of one machine in one round: everything a
// peer needs to reproduce the round's statistics and shuffle exactly as if
// it had executed the machine itself. The deterministic fields (Ops, the
// outbox, the fault counters) are pure functions of (seed, round, machine,
// inputs), so a record is identical no matter which party produced it —
// the property mid-round reassignment relies on.
type Record struct {
	Machine int
	// Ops is the machine's elementary-operation count.
	Ops int64
	// Started reports whether the final attempt actually executed (false
	// when the machine was cancelled, or crashed before every execution).
	Started bool
	// StartNs/EndNs delimit execution relative to the executing party's
	// round base; QueueNs is the time spent waiting for an execution slot.
	// Wall-clock, advisory: they feed Elapsed/QueueWait/Skew, never the
	// deterministic counters.
	StartNs, EndNs, QueueNs int64
	// Failures and Retries count the injected faults the machine hit and
	// the replays that recovered them — deterministic under a fault plan.
	Failures, Retries int
	// Crashed marks a machine that exhausted its replay budget; every
	// party sees the same flag post-merge and fails the round identically.
	Crashed       bool
	CrashAttempts int
	// Remote marks a record received over the wire rather than produced
	// in-process (the receiver replays observer events for these).
	Remote bool
	// Msgs is the machine's outbox in emission order.
	Msgs []Msg
}

// RoundMeta identifies one exchange. Both ends of a TCP connection derive
// it independently from the same deterministic driver; the transport
// cross-checks the two views (plus an internal monotonic sequence number)
// on every exchange, so any divergence between coordinator and worker is
// detected at the next round barrier instead of corrupting results.
type RoundMeta struct {
	Round int    // cluster-local round index
	Name  string // round label
	Phase string // paper phase (trace.Phase, carried as a string)
}

// ExecFunc re-executes the given machine ids and returns their records, in
// id order. Execution is exact replay — internal/mpc binds the round's
// inputs, seed, and fault plan into the closure — which is what lets a
// peer's lost work be re-run anywhere mid-round.
type ExecFunc func(ids []int) ([]Record, error)

// Transport is the pluggable shuffle: it decides how many parties execute
// a round and moves execution records between them.
//
// The contract is SPMD all-gather: every party runs the same deterministic
// driver, executes the machines assigned to it (assign[self], computed
// identically everywhere), and calls Exchange with its own records.
// Exchange returns the full round — the union of every party's records,
// sorted by machine id — so each party's driver can continue as if it had
// executed everything.
type Transport interface {
	// Parties returns the fixed party count and this party's index in
	// [0, n); index 0 is the coordinator.
	Parties() (n, self int)
	// Exchange all-gathers one round's records. assign is the full
	// partition (assign[p] = ids party p executes), local holds this
	// party's records, and exec replays machines on demand — the recovery
	// path when a peer is lost mid-round.
	Exchange(meta RoundMeta, assign [][]int, local []Record, exec ExecFunc) ([]Record, error)
	// Stats reports cumulative transport-level counters (bytes on wire,
	// peer losses, reassignments). Advisory: never part of the model
	// quantities.
	Stats() Stats
	Close() error
}

// Stats are cumulative transport counters. All host-level: a run's
// deterministic model counters are identical whatever these say.
type Stats struct {
	BytesOut      int64 `json:"bytesOut"`      // bytes written to the wire
	BytesIn       int64 `json:"bytesIn"`       // bytes read from the wire
	Frames        int64 `json:"frames"`        // frames sent + received
	Exchanges     int   `json:"exchanges"`     // completed Exchange calls
	PeersLost     int   `json:"peersLost"`     // peers permanently evicted (conn error or heartbeat timeout past grace)
	Reassigns     int   `json:"reassigns"`     // machine batches re-executed after a peer loss
	Reconnects    int   `json:"reconnects"`    // connections recycled and resumed via the rejoin handshake
	CorruptFrames int64 `json:"corruptFrames"` // frames rejected by the CRC/length check
}

// PeerStats breaks a session's wire counters down per peer connection,
// with the heartbeat round-trip estimate on top. Advisory, like Stats.
type PeerStats struct {
	Party         int           `json:"party"` // the remote party's index
	Alive         bool          `json:"alive"`
	BytesIn       int64         `json:"bytesIn"`
	BytesOut      int64         `json:"bytesOut"`
	Frames        int64         `json:"frames"`
	RTTP99        time.Duration `json:"rttP99Ns"`  // heartbeat RTT p99 (0 until sampled)
	LastHeard     time.Time     `json:"lastHeard"` // when the last frame arrived (zero before any)
	Reconnects    int64         `json:"reconnects"`
	CorruptFrames int64         `json:"corruptFrames"`
}

// PeerStatus is PeerStats flattened for the live status endpoint (JSON
// with millisecond floats instead of Duration/Time).
type PeerStatus struct {
	Party         int     `json:"party"`
	Alive         bool    `json:"alive"`
	BytesIn       int64   `json:"bytesIn"`
	BytesOut      int64   `json:"bytesOut"`
	Frames        int64   `json:"frames"`
	RTTP99Ms      float64 `json:"rttP99Ms"`
	LastHeardMs   float64 `json:"lastHeardMs"` // ms since the last frame arrived, -1 before any
	Reconnects    int64   `json:"reconnects"`
	CorruptFrames int64   `json:"corruptFrames"`
}

// Status is a live snapshot of one party's view of the session, shaped
// for the -status HTTP endpoint: where the deterministic driver is
// (exchange seq + round metadata), who is alive, what the wire looks
// like, and the liveness configuration in force. All advisory.
type Status struct {
	Role           string       `json:"role"` // "coordinator" or "worker"
	Parties        int          `json:"parties"`
	Self           int          `json:"self"`
	Seq            int          `json:"seq"` // exchange barriers completed or in flight
	Round          int          `json:"round"`
	Name           string       `json:"roundName"`
	Phase          string       `json:"phase"`
	Alive          int          `json:"alive"` // live parties, self included
	HeartbeatMs    float64      `json:"heartbeatMs,omitempty"`
	PeerDeadlineMs float64      `json:"peerDeadlineMs,omitempty"`
	RejoinGraceMs  float64      `json:"rejoinGraceMs,omitempty"`
	Wire           Stats        `json:"wire"`
	Peers          []PeerStatus `json:"peers"`
}

// peerStatus converts stats to endpoint shape relative to now.
func peerStatus(ps PeerStats, now time.Time) PeerStatus {
	out := PeerStatus{
		Party: ps.Party, Alive: ps.Alive,
		BytesIn: ps.BytesIn, BytesOut: ps.BytesOut, Frames: ps.Frames,
		RTTP99Ms:      float64(ps.RTTP99) / float64(time.Millisecond),
		LastHeardMs:   -1,
		Reconnects:    ps.Reconnects,
		CorruptFrames: ps.CorruptFrames,
	}
	if !ps.LastHeard.IsZero() {
		out.LastHeardMs = float64(now.Sub(ps.LastHeard)) / float64(time.Millisecond)
	}
	return out
}

// Local is the in-process transport: a single party executes everything
// and Exchange is the identity on the records. The shuffle itself is
// bit-identical to the seed simulator's (internal/mpc treats a nil
// Transport as a no-op Local); the only addition is advisory accounting —
// each Exchange runs the records through the payload codec to measure the
// bytes an fRecords frame *would* carry, so wireBytes is comparable
// order-of-magnitude across `-transport local|tcp` instead of reading 0
// locally. Encoding failures (e.g. an unregistered payload type in a
// test) silently skip the accounting and never fail the round.
type Local struct {
	mu    sync.Mutex
	codec *Codec
	st    Stats
}

// NewLocal returns a counting in-process transport.
func NewLocal() *Local { return &Local{} }

// Parties implements Transport.
func (l *Local) Parties() (int, int) { return 1, 0 }

// Exchange implements Transport: with one party, local is the round.
func (l *Local) Exchange(meta RoundMeta, _ [][]int, local []Record, _ ExecFunc) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.st.Exchanges++
	if l.codec == nil {
		l.codec = NewCodec()
	}
	if body, err := encodeRecords(l.codec, l.st.Exchanges, meta, local); err == nil {
		l.st.BytesOut += int64(len(body)) + frameOverhead
		l.st.Frames++
	}
	return local, nil
}

// Stats implements Transport, reporting the logical record volume the
// rounds so far would have put on a wire.
func (l *Local) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st
}

// Close implements Transport.
func (l *Local) Close() error { return nil }

// PeerLossError reports a peer (worker or coordinator) that stopped
// responding — connection error or heartbeat deadline exceeded — when the
// exchange could not complete without it. Mid-round worker losses are
// normally recovered by reassignment and never surface as errors; a
// worker that loses its coordinator, or a coordinator that cannot re-run
// the lost work, cannot recover.
type PeerLossError struct {
	Party int   // the lost peer's party index
	Cause error // the underlying read/write error, if any
}

func (e *PeerLossError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("transport: lost party %d: %v", e.Party, e.Cause)
	}
	return fmt.Sprintf("transport: lost party %d", e.Party)
}

func (e *PeerLossError) Unwrap() error { return e.Cause }

// DivergenceError reports an SPMD consistency violation: two parties
// arrived at the same exchange with different round metadata, which means
// their deterministic drivers took different paths (diverged binaries,
// seeds, or inputs). There is no recovery; the job is unsound.
type DivergenceError struct {
	Seq       int
	Want, Got RoundMeta
	WantSeq   int
}

func (e *DivergenceError) Error() string {
	if e.WantSeq != e.Seq {
		return fmt.Sprintf("transport: exchange sequence diverged: local %d, peer %d (round %q vs %q)",
			e.WantSeq, e.Seq, e.Want.Name, e.Got.Name)
	}
	return fmt.Sprintf("transport: round metadata diverged at exchange %d: local (round %d %q phase %q), peer (round %d %q phase %q)",
		e.Seq, e.Want.Round, e.Want.Name, e.Want.Phase, e.Got.Round, e.Got.Name, e.Got.Phase)
}

// CorruptFrameError reports a frame rejected by the integrity check —
// CRC32-C trailer mismatch or an impossible length word. The byte stream
// is unrecoverable past a corrupt frame (the corrupted byte may be the
// length itself), so the connection is recycled: the peer redials and
// resumes via the rejoin handshake rather than resynchronizing in place.
type CorruptFrameError struct {
	Party  int    // remote party of the connection, when known
	Type   byte   // announced frame type byte (possibly itself corrupt)
	Len    int64  // announced body length
	Reason string // what the check found
}

func (e *CorruptFrameError) Error() string {
	return fmt.Sprintf("transport: corrupt frame from party %d (type %d, announced length %d): %s",
		e.Party, e.Type, e.Len, e.Reason)
}

// DefaultCorruptTolerance bounds cumulative corrupt frames per peer slot
// before the coordinator stops offering rejoin and evicts for good: a
// link this dirty is not worth resuming.
const DefaultCorruptTolerance = 8

// BindFlags registers the shared transport-liveness flags (mpcdist,
// mpcworker, mpcserve) and returns a closure that assembles the Options
// after fs.Parse, validating that the heartbeat interval is shorter than
// the peer deadline (a deadline at or under the heartbeat period would
// declare healthy idle peers dead between pings).
func BindFlags(fs *flag.FlagSet) func() (Options, error) {
	hb := fs.Duration("heartbeat", 250*time.Millisecond, "transport heartbeat interval (idle peers are pinged this often)")
	dl := fs.Duration("peer-deadline", 3*time.Second, "rolling read deadline: a peer silent this long is declared lost (must exceed -heartbeat)")
	grace := fs.Duration("rejoin-grace", 0, "hold a lost worker's slot this long for reconnect + session rejoin (0 = evict immediately)")
	tol := fs.Int("corrupt-tolerance", DefaultCorruptTolerance, "corrupt frames tolerated per peer before rejoin is refused and the peer evicted")
	return func() (Options, error) {
		if *hb <= 0 {
			return Options{}, fmt.Errorf("transport: -heartbeat must be positive, got %s", *hb)
		}
		if *dl <= 0 {
			return Options{}, fmt.Errorf("transport: -peer-deadline must be positive, got %s", *dl)
		}
		if *hb >= *dl {
			return Options{}, fmt.Errorf("transport: -heartbeat (%s) must be shorter than -peer-deadline (%s)", *hb, *dl)
		}
		if *grace < 0 {
			return Options{}, fmt.Errorf("transport: -rejoin-grace must not be negative, got %s", *grace)
		}
		if *tol < 0 {
			return Options{}, fmt.Errorf("transport: -corrupt-tolerance must not be negative, got %d", *tol)
		}
		return Options{HeartbeatInterval: *hb, PeerTimeout: *dl, RejoinGrace: *grace, CorruptTolerance: *tol}, nil
	}
}
