package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"mpcdist/internal/trace"
)

// Options tune the TCP transport's liveness machinery. The zero value
// means the defaults below.
type Options struct {
	// HeartbeatInterval is how often each side pings an idle connection.
	HeartbeatInterval time.Duration // default 250ms
	// PeerTimeout is the rolling read deadline: a peer silent for this
	// long (no frames, no heartbeats) is declared lost.
	PeerTimeout time.Duration // default 3s
	// HandshakeTimeout bounds worker registration (process spawn + dial +
	// hello/welcome).
	HandshakeTimeout time.Duration // default 30s
	// OnEvent, when non-nil, receives transport-level trace events
	// (handshake, exchange barriers, peer losses, reassignments).
	OnEvent func(trace.TransportEvent)
	// Telemetry, on a coordinator, asks workers (via the welcome frame) to
	// buffer trace events and ship them back as fTelemetry frames at round
	// barriers and job end. Strictly out-of-band: results and deterministic
	// counters are bit-identical either way.
	Telemetry bool
	// TestDieAtSeq, on a worker, terminates the process abruptly at the
	// start of the given exchange (1-based), before its records ship — a
	// deterministic stand-in for a mid-round worker crash, used by the
	// recovery tests. Zero disables.
	TestDieAtSeq int
	// TestDieAtParty restricts TestDieAtSeq to the worker holding the
	// given party index. Zero means every worker it is set on.
	TestDieAtParty int
}

func (o Options) withDefaults() Options {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.PeerTimeout <= 0 {
		o.PeerTimeout = 3 * time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 30 * time.Second
	}
	return o
}

// TestDieExitCode is the exit status of a worker killed by TestDieAtSeq,
// distinguishable from crashes in test assertions.
const TestDieExitCode = 3

// The telemetry payload travels through the same self-describing codec as
// round traffic, so a worker built from the same sources ships it with no
// extra wire machinery.
func init() { Register("trace.Telemetry", trace.Telemetry{}) }

// ErrShutdown reports an orderly session end: the coordinator told the
// worker there are no more jobs.
var ErrShutdown = errors.New("transport: session shut down")

// peerEvent is one inbound occurrence on a worker connection: a frame
// (ok), or the connection's death (!ok, cause in the peer's readErr).
type peerEvent struct {
	w  int // worker index (party w+1)
	f  frame
	ok bool
}

// Coordinator is party 0 of a TCP session: it owns the worker
// registrations, drives the per-round barrier, detects lost workers, and
// reassigns their machines mid-round. It implements Transport.
type Coordinator struct {
	opts   Options
	codec  *Codec
	peers  []*peer
	events chan peerEvent
	seq    int

	// mu guards st, alive, the telemetry buffer, and the current-round
	// snapshot. The driver goroutine is the only writer of alive/seq/cur,
	// so its own reads stay unlocked; the mutex makes the Status endpoint
	// (read from an HTTP goroutine) safe.
	mu    sync.Mutex
	st    Stats
	alive []bool
	tel   []trace.Telemetry
	cur   RoundMeta
}

// NewCoordinator accepts and registers exactly `workers` worker processes
// on ln, handshaking each: the worker's hello (magic + protocol version)
// is validated, then the welcome ships the protocol version, the party
// count and the worker's party index, and the payload-codec name table —
// so the two processes agree on every wire id before any round runs.
func NewCoordinator(ln net.Listener, workers int, opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:   opts,
		codec:  NewCodec(),
		events: make(chan peerEvent, 2*workers+4),
		alive:  make([]bool, workers),
	}
	deadline := time.Now().Add(opts.HandshakeTimeout)
	for i := 0; i < workers; i++ {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: waiting for worker %d/%d: %w", i+1, workers, err)
		}
		p := newPeer(conn, i+1, opts.PeerTimeout)
		if err := c.handshake(p, workers, i+1, deadline); err != nil {
			p.close()
			c.Close()
			return nil, err
		}
		c.peers = append(c.peers, p)
		c.alive[i] = true
	}
	for i, p := range c.peers {
		p.start(opts.HeartbeatInterval)
		go c.pump(i, p)
	}
	c.event(trace.TransportEvent{Kind: trace.TransportHandshake, Party: -1, IDs: workers})
	return c, nil
}

func (c *Coordinator) handshake(p *peer, workers, party int, deadline time.Time) error {
	p.conn.SetDeadline(deadline)
	defer p.conn.SetDeadline(time.Time{})
	f, err := p.read()
	if err != nil {
		return fmt.Errorf("transport: worker %d hello: %w", party, err)
	}
	if f.typ != fHello {
		return fmt.Errorf("transport: worker %d sent %s, want hello", party, f.typ)
	}
	v, err := decodeHello(f.body)
	if err != nil {
		return fmt.Errorf("transport: worker %d: %w", party, err)
	}
	if v != ProtocolVersion {
		msg := fmt.Sprintf("protocol version mismatch: coordinator %d, worker %d", ProtocolVersion, v)
		p.write(fError, []byte(msg))
		return errors.New("transport: " + msg)
	}
	return p.write(fWelcome, encodeWelcome(welcome{
		Version: ProtocolVersion,
		Parties: workers + 1,
		Self:    party,
		ClockNs: time.Now().UnixNano(),
		// Workers ship telemetry when the session asked for it OR when the
		// coordinator's flight recorder is on (the default): the recorder
		// needs every party's recent events to make a useful dump, and
		// shipping is out-of-band by contract — only advisory wire volume
		// changes, never a deterministic counter.
		Telemetry: c.opts.Telemetry || trace.FlightEnabled(),
		Table:     c.codec.Table(),
	}))
}

// pump forwards one peer's inbox into the shared event channel, closing
// with a death event. It is the only reader of p.inbox.
func (c *Coordinator) pump(w int, p *peer) {
	for f := range p.inbox {
		c.events <- peerEvent{w: w, f: f, ok: true}
	}
	c.events <- peerEvent{w: w}
}

func (c *Coordinator) event(e trace.TransportEvent) {
	if c.opts.OnEvent == nil && !trace.FlightEnabled() {
		return
	}
	e.At = time.Now()
	e.Bytes = c.Stats().BytesOut
	// The process-global flight recorder sees every transport event (and
	// self-triggers a dump on peer loss); the session's own observer chain
	// is wired separately via OnEvent, so neither records twice.
	trace.FlightTransport(e)
	if c.opts.OnEvent != nil {
		c.opts.OnEvent(e)
	}
}

// Parties implements Transport.
func (c *Coordinator) Parties() (int, int) { return len(c.peers) + 1, 0 }

// Codec returns the session's payload codec (for encoding job specs and
// result digests with the same table the round traffic uses).
func (c *Coordinator) Codec() *Codec { return c.codec }

// markDead declares worker w lost; returns false if it already was.
func (c *Coordinator) markDead(w int, cause error) bool {
	if !c.alive[w] {
		return false
	}
	c.mu.Lock()
	c.alive[w] = false
	c.st.PeersLost++
	c.mu.Unlock()
	c.peers[w].close()
	c.event(trace.TransportEvent{Kind: trace.TransportPeerLost, Party: w + 1, Seq: c.seq})
	_ = cause
	return true
}

func (c *Coordinator) firstLive() int {
	for w := range c.peers {
		if c.alive[w] {
			return w
		}
	}
	return -1
}

// StartJob broadcasts an opaque job spec to every live worker. Workers
// lost here are recovered like mid-round losses: their machines get
// reassigned at every subsequent exchange.
func (c *Coordinator) StartJob(job []byte) error {
	for w := range c.peers {
		if !c.alive[w] {
			continue
		}
		if err := c.peers[w].write(fJobStart, job); err != nil {
			c.markDead(w, err)
		}
	}
	return nil
}

// Exchange implements Transport: gather every party's records for the
// round, reassigning a lost worker's pending machines to a live worker
// (or replaying them locally when none remains), then broadcast the
// merged, machine-sorted round to all live workers — the round barrier.
func (c *Coordinator) Exchange(meta RoundMeta, assign [][]int, local []Record, exec ExecFunc) ([]Record, error) {
	c.mu.Lock()
	c.seq++
	c.cur = meta
	c.mu.Unlock()
	seq := c.seq

	merged := make(map[int]Record, len(local)*2)
	mine := make(map[int]bool, len(local))
	for _, r := range local {
		merged[r.Machine] = r
		mine[r.Machine] = true
	}

	// owed[w] tracks machine ids worker w has been asked to execute and
	// has not delivered; needBarrier[w] tracks its mandatory (possibly
	// empty) initial records frame.
	owed := make([]map[int]bool, len(c.peers))
	needBarrier := make([]bool, len(c.peers))
	var orphans []int // ids owned by workers already dead at round start
	for w := range c.peers {
		owed[w] = make(map[int]bool)
		var ids []int
		if w+1 < len(assign) {
			ids = assign[w+1]
		}
		if c.alive[w] {
			needBarrier[w] = true
			for _, id := range ids {
				owed[w][id] = true
			}
		} else {
			orphans = append(orphans, ids...)
		}
	}

	// collect pulls the un-delivered ids off a dead worker.
	collect := func(w int) []int {
		ids := make([]int, 0, len(owed[w]))
		for id := range owed[w] {
			ids = append(ids, id)
		}
		owed[w] = make(map[int]bool)
		needBarrier[w] = false
		return ids
	}

	// reassign routes lost machines to the lowest-index live worker,
	// cascading if that worker dies on send, and falls back to local
	// replay (exact, by determinism) when no worker remains.
	reassign := func(ids []int) error {
		for len(ids) > 0 {
			sort.Ints(ids)
			w := c.firstLive()
			if w < 0 {
				recs, err := exec(ids)
				if err != nil {
					return err
				}
				for _, r := range recs {
					merged[r.Machine] = r
					mine[r.Machine] = true
				}
				c.mu.Lock()
				c.st.Reassigns++
				c.mu.Unlock()
				c.event(trace.TransportEvent{Kind: trace.TransportReassign, Party: 0, Seq: seq, IDs: len(ids)})
				return nil
			}
			if err := c.peers[w].write(fAssign, encodeAssign(seq, ids)); err != nil {
				if c.markDead(w, err) {
					ids = append(ids, collect(w)...)
				}
				continue
			}
			for _, id := range ids {
				owed[w][id] = true
			}
			c.mu.Lock()
			c.st.Reassigns++
			c.mu.Unlock()
			c.event(trace.TransportEvent{Kind: trace.TransportReassign, Party: w + 1, Seq: seq, IDs: len(ids)})
			return nil
		}
		return nil
	}
	if err := reassign(orphans); err != nil {
		return nil, err
	}

	done := func() bool {
		for w := range c.peers {
			if c.alive[w] && (needBarrier[w] || len(owed[w]) > 0) {
				return false
			}
		}
		return true
	}
	for !done() {
		ev := <-c.events
		if !ev.ok {
			if c.markDead(ev.w, c.peers[ev.w].readErr) {
				if err := reassign(collect(ev.w)); err != nil {
					return nil, err
				}
			}
			continue
		}
		switch ev.f.typ {
		case fRecords:
			rseq, rmeta, recs, err := decodeRecords(c.codec, ev.f.body)
			if err != nil {
				return nil, fmt.Errorf("transport: worker %d records: %w", ev.w+1, err)
			}
			if rseq != seq || rmeta != meta {
				return nil, &DivergenceError{Seq: rseq, WantSeq: seq, Want: meta, Got: rmeta}
			}
			needBarrier[ev.w] = false
			for _, r := range recs {
				delete(owed[ev.w], r.Machine)
				if _, dup := merged[r.Machine]; !dup {
					merged[r.Machine] = r
				}
			}
		case fTelemetry:
			c.addTelemetry(ev.f.body)
		case fError:
			return nil, fmt.Errorf("transport: worker %d: %s", ev.w+1, ev.f.body)
		default:
			return nil, fmt.Errorf("transport: unexpected %s frame from worker %d during exchange", ev.f.typ, ev.w+1)
		}
	}

	ids := make([]int, 0, len(merged))
	for id := range merged {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Record, len(ids))
	for i, id := range ids {
		r := merged[id]
		r.Remote = !mine[id]
		out[i] = r
	}

	body, err := encodeRecords(c.codec, seq, meta, out)
	if err != nil {
		return nil, err
	}
	for w := range c.peers {
		if !c.alive[w] {
			continue
		}
		if err := c.peers[w].write(fMerged, body); err != nil {
			c.markDead(w, err)
		}
	}
	c.mu.Lock()
	c.st.Exchanges++
	c.mu.Unlock()
	c.event(trace.TransportEvent{Kind: trace.TransportExchange, Party: -1, Seq: seq, IDs: len(out)})
	return out, nil
}

// Results gathers the end-of-job result frame from every live worker
// (nil for workers lost during the job) — the cross-check that every
// party's deterministic driver landed on the same answer.
func (c *Coordinator) Results() ([][]byte, error) {
	out := make([][]byte, len(c.peers))
	waiting := 0
	for w := range c.peers {
		if c.alive[w] {
			waiting++
		}
	}
	for waiting > 0 {
		ev := <-c.events
		if !ev.ok {
			if c.markDead(ev.w, c.peers[ev.w].readErr) {
				waiting--
			}
			continue
		}
		switch ev.f.typ {
		case fResult:
			out[ev.w] = ev.f.body
			waiting--
		case fTelemetry:
			c.addTelemetry(ev.f.body)
		case fError:
			return nil, fmt.Errorf("transport: worker %d: %s", ev.w+1, ev.f.body)
		default:
			return nil, fmt.Errorf("transport: unexpected %s frame from worker %d awaiting results", ev.f.typ, ev.w+1)
		}
	}
	return out, nil
}

// Alive reports how many workers are still responding. Safe to call from
// any goroutine.
func (c *Coordinator) Alive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, a := range c.alive {
		if a {
			n++
		}
	}
	return n
}

// addTelemetry decodes and buffers one fTelemetry body. Telemetry is
// out-of-band, so a malformed frame is dropped rather than failing the
// round it arrived during.
//
// Every batch feeds the process-global flight recorder as it arrives (so
// a dump taken mid-job already holds the workers' recent events), but it
// is buffered for DrainTelemetry only when the session asked for full
// telemetry — on a recorder-only session nobody drains, and buffering
// would grow without bound on a long-lived server.
func (c *Coordinator) addTelemetry(body []byte) {
	v, err := c.codec.Decode(body)
	if err != nil {
		return
	}
	t, ok := v.(trace.Telemetry)
	if !ok {
		return
	}
	trace.FlightIngest(t)
	if !c.opts.Telemetry {
		return
	}
	c.mu.Lock()
	c.tel = append(c.tel, t)
	c.mu.Unlock()
}

// DrainTelemetry returns the worker telemetry batches received so far, in
// arrival order, and clears the buffer. Batches from one worker across
// several barriers are returned separately; merge with
// trace.MergeTelemetry.
func (c *Coordinator) DrainTelemetry() []trace.Telemetry {
	c.mu.Lock()
	out := c.tel
	c.tel = nil
	c.mu.Unlock()
	return out
}

// PeerStats reports per-worker wire counters and heartbeat RTT estimates,
// ordered by party index (entry i is party i+1).
func (c *Coordinator) PeerStats() []PeerStats {
	c.mu.Lock()
	alive := append([]bool(nil), c.alive...)
	c.mu.Unlock()
	out := make([]PeerStats, len(c.peers))
	for i, p := range c.peers {
		out[i] = PeerStats{
			Party:    p.party,
			Alive:    alive[i],
			BytesIn:  p.bytesIn.Load(),
			BytesOut: p.bytesOut.Load(),
			Frames:   p.frames.Load(),
			RTTP99:   p.rttP99(),
		}
		if ns := p.lastHeardNs.Load(); ns > 0 {
			out[i].LastHeard = time.Unix(0, ns)
		}
	}
	return out
}

// Status snapshots the coordinator's live view of the session for the
// -status endpoint. Safe to call from any goroutine.
func (c *Coordinator) Status() Status {
	now := time.Now()
	c.mu.Lock()
	seq, cur := c.seq, c.cur
	c.mu.Unlock()
	st := Status{
		Role:    "coordinator",
		Parties: len(c.peers) + 1,
		Self:    0,
		Seq:     seq,
		Round:   cur.Round,
		Name:    cur.Name,
		Phase:   cur.Phase,
		Alive:   1,
		Wire:    c.Stats(),
	}
	for _, ps := range c.PeerStats() {
		if ps.Alive {
			st.Alive++
		}
		st.Peers = append(st.Peers, peerStatus(ps, now))
	}
	return st
}

// Shutdown ends the session in order: every live worker is told there are
// no more jobs, then the connections close.
func (c *Coordinator) Shutdown() {
	for w := range c.peers {
		if c.alive[w] {
			c.peers[w].write(fShutdown, nil)
		}
	}
	c.Close()
}

// Stats implements Transport.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	st := c.st
	c.mu.Unlock()
	for _, p := range c.peers {
		st.BytesIn += p.bytesIn.Load()
		st.BytesOut += p.bytesOut.Load()
		st.Frames += p.frames.Load()
	}
	return st
}

// Close implements Transport.
func (c *Coordinator) Close() error {
	for _, p := range c.peers {
		p.close()
	}
	return nil
}

// Worker is party 1..n-1 of a TCP session: it registers with the
// coordinator, receives job specs, executes its share of each round, and
// adopts the coordinator's merged view at every barrier. It implements
// Transport.
type Worker struct {
	opts    Options
	p       *peer
	codec   *Codec
	parties int
	self    int
	seq     int

	// telemetry reflects the coordinator's welcome flag; offsetNs is this
	// process's handshake-time estimate of (coordinator clock - local
	// clock); source produces the next batch to ship (set by the host via
	// SetTelemetrySource).
	telemetry bool
	offsetNs  int64
	source    func() (trace.Telemetry, bool)

	// mu guards st and cur (the Status endpoint reads them from another
	// goroutine).
	mu  sync.Mutex
	st  Stats
	cur RoundMeta
}

// DialWorker connects to a coordinator and completes the registration
// handshake, adopting the coordinator's payload-codec table.
func DialWorker(addr string, opts Options) (*Worker, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.HandshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing coordinator: %w", err)
	}
	p := newPeer(conn, 0, opts.PeerTimeout)
	p.conn.SetDeadline(time.Now().Add(opts.HandshakeTimeout))
	sentNs := time.Now().UnixNano()
	if err := p.write(fHello, encodeHello()); err != nil {
		p.close()
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	f, err := p.read()
	recvNs := time.Now().UnixNano()
	if err != nil {
		p.close()
		return nil, fmt.Errorf("transport: awaiting welcome: %w", err)
	}
	if f.typ == fError {
		p.close()
		return nil, fmt.Errorf("transport: coordinator rejected registration: %s", f.body)
	}
	if f.typ != fWelcome {
		p.close()
		return nil, fmt.Errorf("transport: coordinator sent %s, want welcome", f.typ)
	}
	wel, err := decodeWelcome(f.body)
	if err != nil {
		p.close()
		return nil, err
	}
	if wel.Version != ProtocolVersion {
		p.close()
		return nil, fmt.Errorf("transport: protocol version mismatch: worker %d, coordinator %d", ProtocolVersion, wel.Version)
	}
	codec, err := NewCodecFor(wel.Table)
	if err != nil {
		p.write(fError, []byte(err.Error()))
		p.close()
		return nil, err
	}
	p.conn.SetDeadline(time.Time{})
	p.start(opts.HeartbeatInterval)
	// NTP-style midpoint: the coordinator stamped its clock somewhere
	// inside our hello->welcome round trip, so the best local estimate of
	// "when" is the midpoint. The residual error is bounded by half the
	// RTT asymmetry — sub-millisecond on one host.
	offset := wel.ClockNs - (sentNs+recvNs)/2
	return &Worker{
		opts: opts, p: p, codec: codec, parties: wel.Parties, self: wel.Self,
		telemetry: wel.Telemetry, offsetNs: offset,
	}, nil
}

// TelemetryEnabled reports whether the coordinator asked for telemetry
// shipping in its welcome.
func (w *Worker) TelemetryEnabled() bool { return w.telemetry }

// ClockOffsetNs is the handshake-time estimate of (coordinator clock -
// local clock) in nanoseconds.
func (w *Worker) ClockOffsetNs() int64 { return w.offsetNs }

// SetTelemetrySource installs the callback that produces telemetry
// batches; it is invoked at each round barrier and at job end, and should
// drain (not re-report) its buffer. The transport stamps Party and
// OffsetNs on every batch. Call before the first Exchange.
func (w *Worker) SetTelemetrySource(fn func() (trace.Telemetry, bool)) { w.source = fn }

// flushTelemetry ships one buffered batch if telemetry is on and there is
// anything to ship. Send errors are dropped: the next mandatory frame on
// the same conn surfaces the broken wire with better context.
func (w *Worker) flushTelemetry() {
	if !w.telemetry || w.source == nil {
		return
	}
	t, ok := w.source()
	if !ok {
		return
	}
	t.Party = w.self
	t.OffsetNs = w.offsetNs
	body, err := w.codec.Encode(nil, t)
	if err != nil {
		return
	}
	_ = w.p.write(fTelemetry, body)
}

// Parties implements Transport.
func (w *Worker) Parties() (int, int) { return w.parties, w.self }

// Codec returns the table-synchronized payload codec adopted from the
// coordinator's welcome.
func (w *Worker) Codec() *Codec { return w.codec }

// NextJob blocks for the next job spec. It returns ErrShutdown on an
// orderly session end and *PeerLossError if the coordinator vanishes.
func (w *Worker) NextJob() ([]byte, error) {
	f, ok := <-w.p.inbox
	if !ok {
		return nil, &PeerLossError{Party: 0, Cause: w.p.readErr}
	}
	switch f.typ {
	case fJobStart:
		return f.body, nil
	case fShutdown:
		return nil, ErrShutdown
	case fError:
		return nil, fmt.Errorf("transport: coordinator: %s", f.body)
	default:
		return nil, fmt.Errorf("transport: unexpected %s frame awaiting job", f.typ)
	}
}

// Exchange implements Transport: ship this party's records, serve any
// mid-round reassignments (a lost peer's machines, re-executed here by
// exact replay), and block at the barrier until the coordinator's merged
// round arrives. The merged frame's sequence number and round metadata
// must match this party's own — the SPMD divergence check.
func (w *Worker) Exchange(meta RoundMeta, assign [][]int, local []Record, exec ExecFunc) ([]Record, error) {
	w.mu.Lock()
	w.seq++
	seq := w.seq
	w.cur = meta
	w.mu.Unlock()
	if w.opts.TestDieAtSeq > 0 && seq == w.opts.TestDieAtSeq &&
		(w.opts.TestDieAtParty == 0 || w.opts.TestDieAtParty == w.self) {
		// Deterministic mid-round crash for the recovery tests: vanish
		// without ceremony, exactly like a killed worker process.
		os.Exit(TestDieExitCode)
	}
	// Ship the previous rounds' buffered telemetry first, so everything a
	// party observed before this barrier is on the coordinator's side of
	// the wire before (FIFO per conn) this round's records. A worker that
	// dies mid-round therefore loses at most the events since its last
	// barrier.
	w.flushTelemetry()
	mine := make(map[int]bool, len(local))
	for _, r := range local {
		mine[r.Machine] = true
	}
	body, err := encodeRecords(w.codec, seq, meta, local)
	if err != nil {
		return nil, err
	}
	if err := w.p.write(fRecords, body); err != nil {
		return nil, &PeerLossError{Party: 0, Cause: err}
	}
	for {
		f, ok := <-w.p.inbox
		if !ok {
			return nil, &PeerLossError{Party: 0, Cause: w.p.readErr}
		}
		switch f.typ {
		case fAssign:
			aseq, ids, err := decodeAssign(f.body)
			if err != nil {
				return nil, err
			}
			if aseq != seq {
				return nil, &DivergenceError{Seq: aseq, WantSeq: seq, Want: meta, Got: meta}
			}
			recs, err := exec(ids)
			if err != nil {
				return nil, err
			}
			for _, r := range recs {
				mine[r.Machine] = true
			}
			body, err := encodeRecords(w.codec, seq, meta, recs)
			if err != nil {
				return nil, err
			}
			if err := w.p.write(fRecords, body); err != nil {
				return nil, &PeerLossError{Party: 0, Cause: err}
			}
			w.mu.Lock()
			w.st.Reassigns++
			w.mu.Unlock()
		case fMerged:
			mseq, mmeta, recs, err := decodeRecords(w.codec, f.body)
			if err != nil {
				return nil, err
			}
			if mseq != seq || mmeta != meta {
				derr := &DivergenceError{Seq: mseq, WantSeq: seq, Want: meta, Got: mmeta}
				w.p.write(fError, []byte(derr.Error()))
				return nil, derr
			}
			for i := range recs {
				if mine[recs[i].Machine] {
					recs[i].Remote = false
				}
			}
			w.mu.Lock()
			w.st.Exchanges++
			w.mu.Unlock()
			return recs, nil
		case fShutdown:
			return nil, ErrShutdown
		case fError:
			return nil, fmt.Errorf("transport: coordinator: %s", f.body)
		default:
			return nil, fmt.Errorf("transport: unexpected %s frame during exchange", f.typ)
		}
	}
}

// FinishJob ships the worker's end-of-job result digest for the
// coordinator's cross-check, flushing any remaining telemetry first (the
// conn is FIFO, so the coordinator sees the telemetry before the result).
func (w *Worker) FinishJob(result []byte) error {
	w.flushTelemetry()
	return w.p.write(fResult, result)
}

// Status snapshots the worker's live view of the session for the -status
// endpoint. Its single peer row is the coordinator link.
func (w *Worker) Status() Status {
	now := time.Now()
	w.mu.Lock()
	seq, cur := w.seq, w.cur
	w.mu.Unlock()
	ps := PeerStats{
		Party:    0,
		Alive:    true,
		BytesIn:  w.p.bytesIn.Load(),
		BytesOut: w.p.bytesOut.Load(),
		Frames:   w.p.frames.Load(),
		RTTP99:   w.p.rttP99(),
	}
	if ns := w.p.lastHeardNs.Load(); ns > 0 {
		ps.LastHeard = time.Unix(0, ns)
	}
	return Status{
		Role:    "worker",
		Parties: w.parties,
		Self:    w.self,
		Seq:     seq,
		Round:   cur.Round,
		Name:    cur.Name,
		Phase:   cur.Phase,
		Alive:   2,
		Wire:    w.Stats(),
		Peers:   []PeerStatus{peerStatus(ps, now)},
	}
}

// Stats implements Transport.
func (w *Worker) Stats() Stats {
	w.mu.Lock()
	st := w.st
	w.mu.Unlock()
	st.BytesIn = w.p.bytesIn.Load()
	st.BytesOut = w.p.bytesOut.Load()
	st.Frames = w.p.frames.Load()
	return st
}

// Close implements Transport.
func (w *Worker) Close() error {
	w.p.close()
	return nil
}
