package transport

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"mpcdist/internal/trace"
)

// Options tune the TCP transport's liveness machinery. The zero value
// means the defaults below.
type Options struct {
	// HeartbeatInterval is how often each side pings an idle connection.
	HeartbeatInterval time.Duration // default 250ms
	// PeerTimeout is the rolling read deadline: a peer silent for this
	// long (no frames, no heartbeats) is declared lost.
	PeerTimeout time.Duration // default 3s
	// HandshakeTimeout bounds worker registration (process spawn + dial +
	// hello/welcome).
	HandshakeTimeout time.Duration // default 30s
	// RejoinGrace, on a coordinator, holds a lost worker's slot open for
	// this long: instead of immediate eviction the worker is held suspect,
	// and if it redials with the session token inside the window it resumes
	// its slot with no deterministic-state loss. Zero (the default) keeps
	// the historical behavior — any connection failure evicts the peer.
	// Workers learn the window from the welcome frame and bound their
	// reconnect loop by it.
	RejoinGrace time.Duration
	// CorruptTolerance caps cumulative corrupt frames per peer slot before
	// the coordinator stops offering rejoin and evicts the peer for good.
	// Zero or negative means DefaultCorruptTolerance.
	CorruptTolerance int
	// WrapConn, when non-nil, wraps every transport connection — initial
	// handshakes and rejoin redials on both sides. This is the injection
	// point for internal/netchaos; wrappers exposing an Arm() method start
	// disarmed and are armed only after the handshake completes.
	WrapConn func(net.Conn) net.Conn
	// OnEvent, when non-nil, receives transport-level trace events
	// (handshake, exchange barriers, peer losses, reassignments).
	OnEvent func(trace.TransportEvent)
	// Telemetry, on a coordinator, asks workers (via the welcome frame) to
	// buffer trace events and ship them back as fTelemetry frames at round
	// barriers and job end. Strictly out-of-band: results and deterministic
	// counters are bit-identical either way.
	Telemetry bool
	// TestDieAtSeq, on a worker, terminates the process abruptly at the
	// start of the given exchange (1-based), before its records ship — a
	// deterministic stand-in for a mid-round worker crash, used by the
	// recovery tests. Zero disables.
	TestDieAtSeq int
	// TestDieAtParty restricts TestDieAtSeq to the worker holding the
	// given party index. Zero means every worker it is set on.
	TestDieAtParty int
	// TestDropConnAtSeq, on a worker, closes the transport connection under
	// the session's feet at the start of the given exchange (1-based) — a
	// deterministic mid-round link failure. With a rejoin grace in force
	// the worker must reconnect, resume its slot, and finish the job with
	// bit-identical results. Zero disables.
	TestDropConnAtSeq int
	// TestDropConnAtParty restricts TestDropConnAtSeq to the worker holding
	// the given party index. Zero means every worker it is set on.
	TestDropConnAtParty int
}

func (o Options) withDefaults() Options {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.PeerTimeout <= 0 {
		o.PeerTimeout = 3 * time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 30 * time.Second
	}
	if o.CorruptTolerance <= 0 {
		o.CorruptTolerance = DefaultCorruptTolerance
	}
	return o
}

// TestDieExitCode is the exit status of a worker killed by TestDieAtSeq,
// distinguishable from crashes in test assertions.
const TestDieExitCode = 3

// The telemetry payload travels through the same self-describing codec as
// round traffic, so a worker built from the same sources ships it with no
// extra wire machinery.
func init() { Register("trace.Telemetry", trace.Telemetry{}) }

// ErrShutdown reports an orderly session end: the coordinator told the
// worker there are no more jobs.
var ErrShutdown = errors.New("transport: session shut down")

// armConn arms a chaos wrapper (see Options.WrapConn) once the handshake
// is done; plain connections are left alone.
func armConn(c net.Conn) {
	if a, ok := c.(interface{ Arm() }); ok {
		a.Arm()
	}
}

// newToken mints the session-resume credential carried by the welcome
// frame and required back in every resume hello.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Out of entropy is not a working machine; without a token rejoin
		// is simply never offered.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// peerState is the coordinator's liveness view of one worker slot.
type peerState uint8

const (
	peerUp      peerState = iota // connection live
	peerSuspect                  // connection failed; slot held for rejoin
	peerDead                     // permanently evicted
)

// Event kinds on the coordinator's internal event channel.
const (
	evFrame  = iota // an inbound frame (f valid)
	evDeath         // the slot's connection failed (state already updated)
	evGrace         // the slot's rejoin grace expired
	evRejoin        // the slot resumed on a fresh connection
)

// peerEvent is one occurrence on a worker slot. gen stamps which
// connection generation produced it, so events from a retired connection
// cannot act on its replacement; frames are generation-agnostic (data is
// data — the dedup layers make duplicates harmless).
type peerEvent struct {
	w    int
	gen  int
	kind int
	f    frame
}

// slotCounters accumulates the wire counters of a slot's retired
// connections, so Stats survive connection recycling.
type slotCounters struct {
	bytesIn, bytesOut, frames, corrupt, reconnects int64
}

func (s *slotCounters) retire(p *peer) {
	s.bytesIn += p.bytesIn.Load()
	s.bytesOut += p.bytesOut.Load()
	s.frames += p.frames.Load()
	s.corrupt += p.corrupt.Load()
}

// Coordinator is party 0 of a TCP session: it owns the worker
// registrations, drives the per-round barrier, detects lost workers,
// holds them suspect through the rejoin grace, and reassigns their
// machines when they are truly gone. It implements Transport.
type Coordinator struct {
	opts   Options
	codec  *Codec
	ln     net.Listener // retained for rejoin accepts when RejoinGrace > 0
	token  string
	events chan peerEvent
	done   chan struct{}

	// mu guards everything below. The driver goroutine (StartJob /
	// Exchange / Results) is the main writer of seq/cur; connection
	// failures and rejoins mutate peers/state/gen from pump and accept
	// goroutines, so every access takes the lock.
	mu      sync.Mutex
	st      Stats
	peers   []*peer
	state   []peerState
	gen     []int
	retired []slotCounters
	tel     []trace.Telemetry
	seq     int
	cur     RoundMeta
	jobSeq  uint64
	jobAct  bool
	lastJob []byte // encoded fJobStart body (jobSeq-prefixed), for rejoin resync

	// The last merged barrier broadcast, stored before any write so a
	// rejoining worker whose copy died with its connection can be caught
	// up exactly.
	lastMergedSeq  int
	lastMergedBody []byte

	closing bool
	timers  []*time.Timer
}

// NewCoordinator accepts and registers exactly `workers` worker processes
// on ln, handshaking each: the worker's hello (magic + protocol version)
// is validated, then the welcome ships the protocol version, the party
// count and the worker's party index, the session-resume token and rejoin
// grace, and the payload-codec name table — so the two processes agree on
// every wire id before any round runs. With a rejoin grace configured the
// listener stays open for session-resume redials until Close.
func NewCoordinator(ln net.Listener, workers int, opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:    opts,
		codec:   NewCodec(),
		token:   newToken(),
		events:  make(chan peerEvent, 4*workers+16),
		done:    make(chan struct{}),
		state:   make([]peerState, workers),
		gen:     make([]int, workers),
		retired: make([]slotCounters, workers),
	}
	deadline := time.Now().Add(opts.HandshakeTimeout)
	conns := make([]net.Conn, 0, workers)
	for i := 0; i < workers; i++ {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: waiting for worker %d/%d: %w", i+1, workers, err)
		}
		if opts.WrapConn != nil {
			conn = opts.WrapConn(conn)
		}
		p := newPeer(conn, i+1, opts.PeerTimeout)
		if err := c.handshake(p, workers, i+1, deadline); err != nil {
			p.close()
			c.Close()
			return nil, err
		}
		c.peers = append(c.peers, p)
		conns = append(conns, conn)
	}
	if opts.RejoinGrace > 0 {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(time.Time{})
		}
		c.ln = ln
		go c.acceptLoop(ln)
	}
	for i, p := range c.peers {
		armConn(conns[i])
		p.start(opts.HeartbeatInterval)
		go c.pump(i, p, 0)
	}
	c.event(trace.TransportEvent{Kind: trace.TransportHandshake, Party: -1, IDs: workers})
	return c, nil
}

func (c *Coordinator) handshake(p *peer, workers, party int, deadline time.Time) error {
	p.conn.SetDeadline(deadline)
	defer p.conn.SetDeadline(time.Time{})
	f, err := p.read()
	if err != nil {
		return fmt.Errorf("transport: worker %d hello: %w", party, err)
	}
	if f.typ != fHello {
		return fmt.Errorf("transport: worker %d sent %s, want hello", party, f.typ)
	}
	h, err := decodeHello(f.body)
	if err != nil {
		return fmt.Errorf("transport: worker %d: %w", party, err)
	}
	if h.Version != ProtocolVersion {
		msg := fmt.Sprintf("protocol version mismatch: coordinator %d, worker %d", ProtocolVersion, h.Version)
		p.write(fError, []byte(msg))
		return errors.New("transport: " + msg)
	}
	if h.Resume {
		msg := "session-resume hello during registration"
		p.write(fError, []byte(msg))
		return errors.New("transport: " + msg)
	}
	return p.write(fWelcome, encodeWelcome(welcome{
		Version: ProtocolVersion,
		Parties: workers + 1,
		Self:    party,
		ClockNs: time.Now().UnixNano(),
		// Workers ship telemetry when the session asked for it OR when the
		// coordinator's flight recorder is on (the default): the recorder
		// needs every party's recent events to make a useful dump, and
		// shipping is out-of-band by contract — only advisory wire volume
		// changes, never a deterministic counter.
		Telemetry: c.opts.Telemetry || trace.FlightEnabled(),
		Token:     c.token,
		GraceNs:   int64(c.opts.RejoinGrace),
		Table:     c.codec.Table(),
	}))
}

// pump forwards one connection's inbox into the shared event channel,
// reporting the connection's death when the inbox closes. It is the only
// reader of p.inbox.
func (c *Coordinator) pump(w int, p *peer, gen int) {
	for f := range p.inbox {
		select {
		case c.events <- peerEvent{w: w, gen: gen, kind: evFrame, f: f}:
		case <-c.done:
			return
		}
	}
	// State must transition here (not in the driver's event loop): a
	// worker may redial while the driver is idle between exchanges, and
	// the rejoin handler needs to find the slot already suspect.
	c.connFailed(w, p, p.readErr)
	select {
	case c.events <- peerEvent{w: w, gen: gen, kind: evDeath}:
	case <-c.done:
	}
}

func (c *Coordinator) event(e trace.TransportEvent) {
	if c.opts.OnEvent == nil && !trace.FlightEnabled() {
		return
	}
	e.At = time.Now()
	e.Bytes = c.Stats().BytesOut
	// The process-global flight recorder sees every transport event (and
	// self-triggers a dump on peer loss); the session's own observer chain
	// is wired separately via OnEvent, so neither records twice.
	trace.FlightTransport(e)
	if c.opts.OnEvent != nil {
		c.opts.OnEvent(e)
	}
}

// Parties implements Transport.
func (c *Coordinator) Parties() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.peers) + 1, 0
}

// Codec returns the session's payload codec (for encoding job specs and
// result digests with the same table the round traffic uses).
func (c *Coordinator) Codec() *Codec { return c.codec }

func (c *Coordinator) curSeq() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seq
}

func (c *Coordinator) stateOf(w int) peerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state[w]
}

func (c *Coordinator) genOf(w int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen[w]
}

func (c *Coordinator) peerAt(w int) (*peer, peerState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peers[w], c.state[w]
}

// connFailed handles the failure of slot w's connection p: retire its
// counters, then either hold the slot suspect for the rejoin grace or
// evict it for good (no grace configured, or the peer burned through the
// corrupt-frame tolerance). Safe from any goroutine; no-op if the slot
// has already moved on (a rejoin swapped in a fresh connection).
func (c *Coordinator) connFailed(w int, p *peer, cause error) {
	c.mu.Lock()
	if c.closing || c.peers[w] != p || c.state[w] != peerUp {
		c.mu.Unlock()
		return
	}
	gen := c.gen[w]
	c.retired[w].retire(p)
	var cfe *CorruptFrameError
	isCorrupt := errors.As(cause, &cfe)
	overTol := c.retired[w].corrupt > int64(c.opts.CorruptTolerance)
	if c.opts.RejoinGrace > 0 && !overTol {
		c.state[w] = peerSuspect
		t := time.AfterFunc(c.opts.RejoinGrace, func() {
			select {
			case c.events <- peerEvent{w: w, gen: gen, kind: evGrace}:
			case <-c.done:
			}
		})
		c.timers = append(c.timers, t)
		c.mu.Unlock()
		p.close()
		if isCorrupt {
			c.event(trace.TransportEvent{Kind: trace.TransportCorrupt, Party: w + 1, Seq: c.curSeq()})
		}
		c.event(trace.TransportEvent{Kind: trace.TransportSuspect, Party: w + 1, Seq: c.curSeq()})
		return
	}
	c.state[w] = peerDead
	c.st.PeersLost++
	c.mu.Unlock()
	p.close()
	if isCorrupt {
		c.event(trace.TransportEvent{Kind: trace.TransportCorrupt, Party: w + 1, Seq: c.curSeq()})
	}
	if overTol {
		trace.FlightTrigger("transport: corrupt-frame burst")
	}
	c.event(trace.TransportEvent{Kind: trace.TransportPeerLost, Party: w + 1, Seq: c.curSeq()})
}

// markDeadFromSuspect finalizes an expired grace window. Returns false if
// the slot rejoined (or died otherwise) in the meantime.
func (c *Coordinator) markDeadFromSuspect(w, gen int) bool {
	c.mu.Lock()
	if c.closing || c.gen[w] != gen || c.state[w] != peerSuspect {
		c.mu.Unlock()
		return false
	}
	c.state[w] = peerDead
	c.st.PeersLost++
	c.mu.Unlock()
	c.event(trace.TransportEvent{Kind: trace.TransportPeerLost, Party: w + 1, Seq: c.curSeq()})
	return true
}

// acceptLoop serves session-resume redials for the life of the session
// (only started when a rejoin grace is configured).
func (c *Coordinator) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go c.rejoin(conn)
	}
}

// rejoin handshakes one redialing worker and, if its token checks out and
// its slot is not evicted, swaps the fresh connection in and resyncs the
// worker to the current barrier: the job spec if it was between jobs, the
// last merged broadcast if its copy died in flight. Everything resent is
// deduplicated on the worker, so resync can only fill gaps, never double
// anything.
func (c *Coordinator) rejoin(conn net.Conn) {
	if c.opts.WrapConn != nil {
		conn = c.opts.WrapConn(conn)
	}
	p := newPeer(conn, 0, c.opts.PeerTimeout)
	p.conn.SetDeadline(time.Now().Add(c.opts.HandshakeTimeout))
	f, err := p.read()
	if err != nil || f.typ != fHello {
		p.close()
		return
	}
	h, err := decodeHello(f.body)
	if err != nil {
		p.close()
		return
	}
	if h.Version != ProtocolVersion || !h.Resume {
		p.write(fError, []byte("transport: expected session-resume hello"))
		p.close()
		return
	}
	w := h.Party - 1
	c.mu.Lock()
	if c.closing || c.token == "" || h.Token != c.token || w < 0 || w >= len(c.peers) {
		c.mu.Unlock()
		p.write(fError, []byte("transport: bad resume token or party"))
		p.close()
		return
	}
	if c.state[w] == peerDead {
		c.mu.Unlock()
		p.write(fError, []byte("transport: party evicted (rejoin grace expired)"))
		p.close()
		return
	}
	old := c.peers[w]
	if c.state[w] == peerUp {
		// The worker saw the failure before we did: it gets a write error
		// instantly while our read deadline takes up to PeerTimeout to
		// fire. Adopt the fresh connection and retire the stale one.
		c.retired[w].retire(old)
	}
	p.party = h.Party
	c.peers[w] = p
	c.gen[w]++
	gen := c.gen[w]
	c.state[w] = peerUp
	c.st.Reconnects++
	c.retired[w].reconnects++
	mergedSeq, mergedBody := c.lastMergedSeq, c.lastMergedBody
	jobAct, lastJob := c.jobAct, c.lastJob
	c.mu.Unlock()
	if old != p {
		old.close()
	}
	err = p.write(fWelcome, encodeWelcome(welcome{
		Version:   ProtocolVersion,
		Parties:   c.partiesLocked(),
		Self:      h.Party,
		ClockNs:   time.Now().UnixNano(),
		Telemetry: c.opts.Telemetry || trace.FlightEnabled(),
		Token:     c.token,
		GraceNs:   int64(c.opts.RejoinGrace),
		Table:     c.codec.Table(),
	}))
	if err == nil && h.NeedJob && jobAct {
		err = p.write(fJobStart, lastJob)
	}
	if err == nil && !h.NeedJob && h.LastAcked < mergedSeq && mergedBody != nil {
		err = p.write(fMerged, mergedBody)
	}
	if err != nil {
		c.connFailed(w, p, err)
		return
	}
	p.conn.SetDeadline(time.Time{})
	armConn(conn)
	p.start(c.opts.HeartbeatInterval)
	go c.pump(w, p, gen)
	c.event(trace.TransportEvent{Kind: trace.TransportReconnect, Party: h.Party, Seq: c.curSeq()})
	select {
	case c.events <- peerEvent{w: w, gen: gen, kind: evRejoin}:
	case <-c.done:
	}
}

func (c *Coordinator) partiesLocked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.peers) + 1
}

// StartJob broadcasts an opaque job spec to every live worker. The body
// carries a job sequence number so a rejoin resync can re-deliver it
// without a worker ever running the same job twice. Workers suspect or
// lost here are recovered like mid-round losses.
func (c *Coordinator) StartJob(job []byte) error {
	c.mu.Lock()
	c.jobSeq++
	body := encodeJobStart(c.jobSeq, job)
	c.lastJob = body
	c.jobAct = true
	peers := append([]*peer(nil), c.peers...)
	states := append([]peerState(nil), c.state...)
	c.mu.Unlock()
	for w := range peers {
		if states[w] != peerUp {
			continue // a suspect gets the job from the rejoin resync
		}
		if err := peers[w].write(fJobStart, body); err != nil {
			// The slot may have swapped connections between the snapshot
			// and the write; retry once on the current one before treating
			// the failure as a connection loss.
			if cur, st := c.peerAt(w); cur != peers[w] && st == peerUp {
				if err2 := cur.write(fJobStart, body); err2 != nil {
					c.connFailed(w, cur, err2)
				}
				continue
			}
			c.connFailed(w, peers[w], err)
		}
	}
	return nil
}

// Exchange implements Transport: gather every party's records for the
// round, riding out connection failures (suspects may rejoin and resume
// mid-round), reassigning a truly lost worker's pending machines to a
// live worker (or replaying them locally when none remains), then
// broadcast the merged, machine-sorted round — the round barrier.
func (c *Coordinator) Exchange(meta RoundMeta, assign [][]int, local []Record, exec ExecFunc) ([]Record, error) {
	c.mu.Lock()
	c.seq++
	seq := c.seq
	c.cur = meta
	workers := len(c.peers)
	states := append([]peerState(nil), c.state...)
	c.mu.Unlock()

	merged := make(map[int]Record, len(local)*2)
	mine := make(map[int]bool, len(local))
	for _, r := range local {
		merged[r.Machine] = r
		mine[r.Machine] = true
	}

	// owed[w] tracks machine ids worker w has been asked to execute and
	// has not delivered; needBarrier[w] tracks its mandatory (possibly
	// empty) initial records frame; extra[w] marks the owed ids that were
	// delivered via fAssign (and so must be re-sent if the connection the
	// frame rode died). pending parks ids whose owner died while every
	// surviving worker was suspect — they are reassigned when a suspect
	// resolves (rejoin or grace expiry).
	owed := make([]map[int]bool, workers)
	extra := make([]map[int]bool, workers)
	needBarrier := make([]bool, workers)
	var pending []int
	var orphans []int
	for w := 0; w < workers; w++ {
		owed[w] = make(map[int]bool)
		extra[w] = make(map[int]bool)
		var ids []int
		if w+1 < len(assign) {
			ids = assign[w+1]
		}
		if states[w] != peerDead {
			needBarrier[w] = true
			for _, id := range ids {
				owed[w][id] = true
			}
		} else {
			orphans = append(orphans, ids...)
		}
	}

	// collect pulls the un-delivered ids off a dead worker.
	collect := func(w int) []int {
		ids := make([]int, 0, len(owed[w]))
		for id := range owed[w] {
			ids = append(ids, id)
		}
		owed[w] = make(map[int]bool)
		extra[w] = make(map[int]bool)
		needBarrier[w] = false
		return ids
	}
	takePending := func() []int {
		ids := pending
		pending = nil
		return ids
	}
	firstUp := func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		for w, s := range c.state {
			if s == peerUp {
				return w
			}
		}
		return -1
	}
	anySuspect := func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, s := range c.state {
			if s == peerSuspect {
				return true
			}
		}
		return false
	}

	// reassign routes lost machines to the lowest-index live worker,
	// cascading if that worker dies on send. With no worker up but some
	// suspect, the ids are parked for the suspect's resolution; with
	// nobody left at all they are replayed locally (exact, by
	// determinism).
	var reassign func(ids []int) error
	reassign = func(ids []int) error {
		for len(ids) > 0 {
			sort.Ints(ids)
			w := firstUp()
			if w < 0 {
				if anySuspect() {
					pending = append(pending, ids...)
					return nil
				}
				recs, err := exec(ids)
				if err != nil {
					return err
				}
				for _, r := range recs {
					merged[r.Machine] = r
					mine[r.Machine] = true
				}
				c.mu.Lock()
				c.st.Reassigns++
				c.mu.Unlock()
				c.event(trace.TransportEvent{Kind: trace.TransportReassign, Party: 0, Seq: seq, IDs: len(ids)})
				return nil
			}
			p, _ := c.peerAt(w)
			if err := p.write(fAssign, encodeAssign(seq, ids)); err != nil {
				c.connFailed(w, p, err)
				if c.stateOf(w) == peerDead {
					ids = append(ids, collect(w)...)
				}
				continue
			}
			for _, id := range ids {
				owed[w][id] = true
				extra[w][id] = true
			}
			c.mu.Lock()
			c.st.Reassigns++
			c.mu.Unlock()
			c.event(trace.TransportEvent{Kind: trace.TransportReassign, Party: w + 1, Seq: seq, IDs: len(ids)})
			return nil
		}
		return nil
	}
	if err := reassign(orphans); err != nil {
		return nil, err
	}

	done := func() bool {
		if len(pending) > 0 {
			return false
		}
		for w := 0; w < workers; w++ {
			if c.stateOf(w) != peerDead && (needBarrier[w] || len(owed[w]) > 0) {
				return false
			}
		}
		return true
	}
	for !done() {
		var ev peerEvent
		select {
		case ev = <-c.events:
		case <-c.done:
			return nil, errors.New("transport: coordinator closed")
		}
		switch ev.kind {
		case evDeath:
			if c.genOf(ev.w) != ev.gen || c.stateOf(ev.w) != peerDead {
				// Held suspect for rejoin, or already superseded by one.
				continue
			}
			if err := reassign(append(collect(ev.w), takePending()...)); err != nil {
				return nil, err
			}
		case evGrace:
			if !c.markDeadFromSuspect(ev.w, ev.gen) {
				continue
			}
			if err := reassign(append(collect(ev.w), takePending()...)); err != nil {
				return nil, err
			}
		case evRejoin:
			if c.genOf(ev.w) != ev.gen {
				continue
			}
			// Re-deliver reassignment frames that may have died with the
			// old connection. The worker re-executes deterministically and
			// the merge dedups, so a frame that DID arrive costs nothing.
			var ids []int
			for id := range owed[ev.w] {
				if extra[ev.w][id] {
					ids = append(ids, id)
				}
			}
			if len(ids) > 0 {
				sort.Ints(ids)
				if p, st := c.peerAt(ev.w); st == peerUp {
					if err := p.write(fAssign, encodeAssign(seq, ids)); err != nil {
						c.connFailed(ev.w, p, err)
					}
				}
			}
			if err := reassign(takePending()); err != nil {
				return nil, err
			}
		case evFrame:
			switch ev.f.typ {
			case fRecords:
				rseq, rmeta, recs, err := decodeRecords(c.codec, ev.f.body)
				if err != nil {
					return nil, fmt.Errorf("transport: worker %d records: %w", ev.w+1, err)
				}
				if rseq < seq {
					continue // a rejoining worker re-sent an already-merged round
				}
				if rseq != seq || rmeta != meta {
					trace.FlightTrigger("transport: exchange divergence")
					return nil, &DivergenceError{Seq: rseq, WantSeq: seq, Want: meta, Got: rmeta}
				}
				needBarrier[ev.w] = false
				for _, r := range recs {
					delete(owed[ev.w], r.Machine)
					delete(extra[ev.w], r.Machine)
					if _, dup := merged[r.Machine]; !dup {
						merged[r.Machine] = r
					}
				}
			case fResult:
				continue // duplicate re-send from a prior job's recovery
			case fTelemetry:
				c.addTelemetry(ev.f.body)
			case fError:
				return nil, fmt.Errorf("transport: worker %d: %s", ev.w+1, ev.f.body)
			default:
				return nil, fmt.Errorf("transport: unexpected %s frame from worker %d during exchange", ev.f.typ, ev.w+1)
			}
		}
	}

	ids := make([]int, 0, len(merged))
	for id := range merged {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Record, len(ids))
	for i, id := range ids {
		r := merged[id]
		r.Remote = !mine[id]
		out[i] = r
	}

	body, err := encodeRecords(c.codec, seq, meta, out)
	if err != nil {
		return nil, err
	}
	// Store the barrier before any broadcast write: a worker that rejoins
	// from here on is resynced from this snapshot, so the merged round can
	// be lost on the wire but never lost for good.
	c.mu.Lock()
	c.lastMergedSeq = seq
	c.lastMergedBody = body
	peers := append([]*peer(nil), c.peers...)
	states = append([]peerState(nil), c.state...)
	c.mu.Unlock()
	for w := range peers {
		if states[w] != peerUp {
			continue // a suspect is caught up by the rejoin resync
		}
		if err := peers[w].write(fMerged, body); err != nil {
			if cur, st := c.peerAt(w); cur != peers[w] && st == peerUp {
				// Slot swapped mid-broadcast; the rejoin resync already
				// delivered this barrier (lastMergedSeq was stored first).
				continue
			}
			c.connFailed(w, peers[w], err)
		}
	}
	c.mu.Lock()
	c.st.Exchanges++
	c.mu.Unlock()
	c.event(trace.TransportEvent{Kind: trace.TransportExchange, Party: -1, Seq: seq, IDs: len(out)})
	return out, nil
}

// Results gathers the end-of-job result frame from every worker not
// permanently lost (nil for evicted workers) — the cross-check that every
// party's deterministic driver landed on the same answer. Suspects are
// waited on: they either rejoin and re-send, or their grace expires.
func (c *Coordinator) Results() ([][]byte, error) {
	c.mu.Lock()
	jobSeq := c.jobSeq
	workers := len(c.peers)
	states := append([]peerState(nil), c.state...)
	c.mu.Unlock()
	out := make([][]byte, workers)
	counted := make([]bool, workers)
	waiting := 0
	for w, s := range states {
		if s != peerDead {
			counted[w] = true
			waiting++
		}
	}
	for waiting > 0 {
		var ev peerEvent
		select {
		case ev = <-c.events:
		case <-c.done:
			return nil, errors.New("transport: coordinator closed")
		}
		switch ev.kind {
		case evDeath:
			if c.genOf(ev.w) == ev.gen && c.stateOf(ev.w) == peerDead && counted[ev.w] {
				counted[ev.w] = false
				waiting--
			}
		case evGrace:
			if c.markDeadFromSuspect(ev.w, ev.gen) && counted[ev.w] {
				counted[ev.w] = false
				waiting--
			}
		case evRejoin:
			// Nothing to resync here: the worker re-sends its own result.
		case evFrame:
			switch ev.f.typ {
			case fResult:
				rjseq, res, err := decodeResult(ev.f.body)
				if err != nil {
					return nil, fmt.Errorf("transport: worker %d result: %w", ev.w+1, err)
				}
				if rjseq != jobSeq {
					continue // stale re-send from an earlier job
				}
				if out[ev.w] == nil {
					out[ev.w] = res
					if counted[ev.w] {
						counted[ev.w] = false
						waiting--
					}
				}
			case fRecords:
				continue // stale barrier re-send from a rejoining worker
			case fTelemetry:
				c.addTelemetry(ev.f.body)
			case fError:
				return nil, fmt.Errorf("transport: worker %d: %s", ev.w+1, ev.f.body)
			default:
				return nil, fmt.Errorf("transport: unexpected %s frame from worker %d awaiting results", ev.f.typ, ev.w+1)
			}
		}
	}
	c.mu.Lock()
	c.jobAct = false
	c.mu.Unlock()
	return out, nil
}

// Alive reports how many workers are currently connected. Safe to call
// from any goroutine.
func (c *Coordinator) Alive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.state {
		if s == peerUp {
			n++
		}
	}
	return n
}

// addTelemetry decodes and buffers one fTelemetry body. Telemetry is
// out-of-band, so a malformed frame is dropped rather than failing the
// round it arrived during.
//
// Every batch feeds the process-global flight recorder as it arrives (so
// a dump taken mid-job already holds the workers' recent events), but it
// is buffered for DrainTelemetry only when the session asked for full
// telemetry — on a recorder-only session nobody drains, and buffering
// would grow without bound on a long-lived server.
func (c *Coordinator) addTelemetry(body []byte) {
	v, err := c.codec.Decode(body)
	if err != nil {
		return
	}
	t, ok := v.(trace.Telemetry)
	if !ok {
		return
	}
	trace.FlightIngest(t)
	if !c.opts.Telemetry {
		return
	}
	c.mu.Lock()
	c.tel = append(c.tel, t)
	c.mu.Unlock()
}

// DrainTelemetry returns the worker telemetry batches received so far, in
// arrival order, and clears the buffer. Batches from one worker across
// several barriers are returned separately; merge with
// trace.MergeTelemetry.
func (c *Coordinator) DrainTelemetry() []trace.Telemetry {
	c.mu.Lock()
	out := c.tel
	c.tel = nil
	c.mu.Unlock()
	return out
}

// PeerStats reports per-worker wire counters and heartbeat RTT estimates,
// ordered by party index (entry i is party i+1). Counters include every
// retired connection the slot has burned through.
func (c *Coordinator) PeerStats() []PeerStats {
	c.mu.Lock()
	peers := append([]*peer(nil), c.peers...)
	states := append([]peerState(nil), c.state...)
	ret := append([]slotCounters(nil), c.retired...)
	c.mu.Unlock()
	out := make([]PeerStats, len(peers))
	for i, p := range peers {
		out[i] = PeerStats{
			Party:         i + 1,
			Alive:         states[i] == peerUp,
			BytesIn:       ret[i].bytesIn + p.bytesIn.Load(),
			BytesOut:      ret[i].bytesOut + p.bytesOut.Load(),
			Frames:        ret[i].frames + p.frames.Load(),
			RTTP99:        p.rttP99(),
			Reconnects:    ret[i].reconnects,
			CorruptFrames: ret[i].corrupt + p.corrupt.Load(),
		}
		if ns := p.lastHeardNs.Load(); ns > 0 {
			out[i].LastHeard = time.Unix(0, ns)
		}
	}
	return out
}

// Status snapshots the coordinator's live view of the session for the
// -status endpoint. Safe to call from any goroutine.
func (c *Coordinator) Status() Status {
	now := time.Now()
	c.mu.Lock()
	seq, cur := c.seq, c.cur
	parties := len(c.peers) + 1
	c.mu.Unlock()
	st := Status{
		Role:           "coordinator",
		Parties:        parties,
		Self:           0,
		Seq:            seq,
		Round:          cur.Round,
		Name:           cur.Name,
		Phase:          cur.Phase,
		Alive:          1,
		HeartbeatMs:    float64(c.opts.HeartbeatInterval) / float64(time.Millisecond),
		PeerDeadlineMs: float64(c.opts.PeerTimeout) / float64(time.Millisecond),
		RejoinGraceMs:  float64(c.opts.RejoinGrace) / float64(time.Millisecond),
		Wire:           c.Stats(),
	}
	for _, ps := range c.PeerStats() {
		if ps.Alive {
			st.Alive++
		}
		st.Peers = append(st.Peers, peerStatus(ps, now))
	}
	return st
}

// Shutdown ends the session in order: every live worker is told there are
// no more jobs, then the connections close.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	peers := append([]*peer(nil), c.peers...)
	states := append([]peerState(nil), c.state...)
	c.mu.Unlock()
	for w := range peers {
		if states[w] == peerUp {
			peers[w].write(fShutdown, nil)
		}
	}
	c.Close()
}

// Stats implements Transport.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	st := c.st
	peers := append([]*peer(nil), c.peers...)
	ret := append([]slotCounters(nil), c.retired...)
	c.mu.Unlock()
	for i, p := range peers {
		st.BytesIn += ret[i].bytesIn + p.bytesIn.Load()
		st.BytesOut += ret[i].bytesOut + p.bytesOut.Load()
		st.Frames += ret[i].frames + p.frames.Load()
		st.CorruptFrames += ret[i].corrupt + p.corrupt.Load()
	}
	return st
}

// Close implements Transport.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return nil
	}
	c.closing = true
	timers := c.timers
	c.timers = nil
	peers := append([]*peer(nil), c.peers...)
	ln := c.ln
	c.mu.Unlock()
	close(c.done)
	for _, t := range timers {
		t.Stop()
	}
	if ln != nil {
		ln.Close()
	}
	for _, p := range peers {
		p.close()
	}
	return nil
}

// Worker is party 1..n-1 of a TCP session: it registers with the
// coordinator, receives job specs, executes its share of each round, and
// adopts the coordinator's merged view at every barrier. When its
// connection dies and the session has a rejoin grace, it redials,
// presents the session token, and resumes exactly where it was — the
// dedup layers on both sides make every re-sent frame idempotent. It
// implements Transport.
type Worker struct {
	opts    Options
	codec   *Codec
	parties int
	self    int

	addr    string // coordinator address, for reconnect
	token   string // session-resume credential from the welcome
	graceNs int64  // rejoin window from the welcome; 0 = don't bother

	// telemetry reflects the coordinator's welcome flag; offsetNs is this
	// process's handshake-time estimate of (coordinator clock - local
	// clock); source produces the next batch to ship (set by the host via
	// SetTelemetrySource).
	telemetry bool
	offsetNs  int64
	source    func() (trace.Telemetry, bool)

	// mu guards the connection (swapped on reconnect), counters, and the
	// recovery bookkeeping; the Status endpoint reads them from another
	// goroutine.
	mu            sync.Mutex
	p             *peer
	st            Stats
	cur           RoundMeta
	seq           int
	retired       slotCounters
	lastAcked     int    // last merged exchange fully processed
	lastJobSeq    uint64 // last fJobStart consumed (dedups resyncs)
	lastResult    []byte // FinishJob payload, re-sent after a reconnect
	lastResultJob uint64
}

// DialWorker connects to a coordinator and completes the registration
// handshake, adopting the coordinator's payload-codec table and the
// session-resume token.
func DialWorker(addr string, opts Options) (*Worker, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.HandshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing coordinator: %w", err)
	}
	if opts.WrapConn != nil {
		conn = opts.WrapConn(conn)
	}
	p := newPeer(conn, 0, opts.PeerTimeout)
	p.conn.SetDeadline(time.Now().Add(opts.HandshakeTimeout))
	sentNs := time.Now().UnixNano()
	if err := p.write(fHello, encodeHello(hello{Version: ProtocolVersion})); err != nil {
		p.close()
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	f, err := p.read()
	recvNs := time.Now().UnixNano()
	if err != nil {
		p.close()
		return nil, fmt.Errorf("transport: awaiting welcome: %w", err)
	}
	if f.typ == fError {
		p.close()
		return nil, fmt.Errorf("transport: coordinator rejected registration: %s", f.body)
	}
	if f.typ != fWelcome {
		p.close()
		return nil, fmt.Errorf("transport: coordinator sent %s, want welcome", f.typ)
	}
	wel, err := decodeWelcome(f.body)
	if err != nil {
		p.close()
		return nil, err
	}
	if wel.Version != ProtocolVersion {
		p.close()
		return nil, fmt.Errorf("transport: protocol version mismatch: worker %d, coordinator %d", ProtocolVersion, wel.Version)
	}
	codec, err := NewCodecFor(wel.Table)
	if err != nil {
		p.write(fError, []byte(err.Error()))
		p.close()
		return nil, err
	}
	p.conn.SetDeadline(time.Time{})
	armConn(conn)
	p.start(opts.HeartbeatInterval)
	// NTP-style midpoint: the coordinator stamped its clock somewhere
	// inside our hello->welcome round trip, so the best local estimate of
	// "when" is the midpoint. The residual error is bounded by half the
	// RTT asymmetry — sub-millisecond on one host.
	offset := wel.ClockNs - (sentNs+recvNs)/2
	return &Worker{
		opts: opts, p: p, codec: codec, parties: wel.Parties, self: wel.Self,
		addr: addr, token: wel.Token, graceNs: wel.GraceNs,
		telemetry: wel.Telemetry, offsetNs: offset,
	}, nil
}

// TelemetryEnabled reports whether the coordinator asked for telemetry
// shipping in its welcome.
func (w *Worker) TelemetryEnabled() bool { return w.telemetry }

// ClockOffsetNs is the handshake-time estimate of (coordinator clock -
// local clock) in nanoseconds.
func (w *Worker) ClockOffsetNs() int64 { return w.offsetNs }

// SetTelemetrySource installs the callback that produces telemetry
// batches; it is invoked at each round barrier and at job end, and should
// drain (not re-report) its buffer. The transport stamps Party and
// OffsetNs on every batch. Call before the first Exchange.
func (w *Worker) SetTelemetrySource(fn func() (trace.Telemetry, bool)) { w.source = fn }

// peer returns the current connection (swapped under mu on reconnect).
func (w *Worker) peer() *peer {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.p
}

func (w *Worker) event(e trace.TransportEvent) {
	if w.opts.OnEvent == nil && !trace.FlightEnabled() {
		return
	}
	e.At = time.Now()
	e.Bytes = w.Stats().BytesOut
	trace.FlightTransport(e)
	if w.opts.OnEvent != nil {
		w.opts.OnEvent(e)
	}
}

// flushTelemetry ships one buffered batch if telemetry is on and there is
// anything to ship. Send errors are dropped: the next mandatory frame on
// the same conn surfaces the broken wire with better context.
func (w *Worker) flushTelemetry() {
	if !w.telemetry || w.source == nil {
		return
	}
	t, ok := w.source()
	if !ok {
		return
	}
	t.Party = w.self
	t.OffsetNs = w.offsetNs
	body, err := w.codec.Encode(nil, t)
	if err != nil {
		return
	}
	_ = w.peer().write(fTelemetry, body)
}

// Parties implements Transport.
func (w *Worker) Parties() (int, int) { return w.parties, w.self }

// Codec returns the table-synchronized payload codec adopted from the
// coordinator's welcome.
func (w *Worker) Codec() *Codec { return w.codec }

// reconnect recycles a failed connection: retire its counters, then — if
// the session offers a rejoin window — redial and resume with the session
// token, backing off between attempts until the window closes. needJob
// tells the coordinator the worker was between jobs (so the current job
// spec must be re-delivered). Returns the original cause when rejoin is
// not on offer or the window is exhausted; a coordinator-side refusal
// (evicted, bad token) aborts the loop immediately.
func (w *Worker) reconnect(cause error, needJob bool) error {
	w.mu.Lock()
	old := w.p
	w.retired.retire(old)
	token, graceNs := w.token, w.graceNs
	lastAcked := w.lastAcked
	lastResult, lastResultJob, lastJobSeq := w.lastResult, w.lastResultJob, w.lastJobSeq
	w.mu.Unlock()
	old.close()
	var cfe *CorruptFrameError
	if errors.As(cause, &cfe) {
		w.event(trace.TransportEvent{Kind: trace.TransportCorrupt, Party: 0, Seq: w.curSeq()})
	}
	if graceNs <= 0 || token == "" {
		return cause
	}
	deadline := time.Now().Add(time.Duration(graceNs))
	backoff := 25 * time.Millisecond
	for {
		p, permanent, err := w.dialResume(needJob, lastAcked)
		if err == nil {
			w.mu.Lock()
			w.p = p
			w.st.Reconnects++
			w.retired.reconnects++
			w.mu.Unlock()
			w.event(trace.TransportEvent{Kind: trace.TransportReconnect, Party: 0, Seq: w.curSeq()})
			if needJob && lastResult != nil && lastResultJob == lastJobSeq {
				// The result may have died with the old connection while
				// the coordinator still waits on it; the jobSeq prefix
				// makes a duplicate harmless.
				_ = p.write(fResult, encodeResult(lastResultJob, lastResult))
			}
			return nil
		}
		if permanent {
			return err
		}
		if !time.Now().Add(backoff).Before(deadline) {
			return cause
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 400*time.Millisecond {
			backoff = 400 * time.Millisecond
		}
	}
}

// dialResume performs one session-resume attempt. The returned bool marks
// permanent refusals (the coordinator evicted this party) that make
// further attempts pointless.
func (w *Worker) dialResume(needJob bool, lastAcked int) (*peer, bool, error) {
	conn, err := net.DialTimeout("tcp", w.addr, w.opts.HandshakeTimeout)
	if err != nil {
		return nil, false, err
	}
	if w.opts.WrapConn != nil {
		conn = w.opts.WrapConn(conn)
	}
	p := newPeer(conn, 0, w.opts.PeerTimeout)
	p.conn.SetDeadline(time.Now().Add(w.opts.HandshakeTimeout))
	h := hello{
		Version: ProtocolVersion, Resume: true,
		Token: w.token, Party: w.self, LastAcked: lastAcked, NeedJob: needJob,
	}
	if err := p.write(fHello, encodeHello(h)); err != nil {
		p.close()
		return nil, false, err
	}
	f, err := p.read()
	if err != nil {
		p.close()
		return nil, false, err
	}
	if f.typ == fError {
		p.close()
		return nil, true, fmt.Errorf("transport: coordinator refused resume: %s", f.body)
	}
	if f.typ != fWelcome {
		p.close()
		return nil, false, fmt.Errorf("transport: coordinator sent %s, want welcome", f.typ)
	}
	if _, err := decodeWelcome(f.body); err != nil {
		p.close()
		return nil, false, err
	}
	p.conn.SetDeadline(time.Time{})
	armConn(conn)
	p.start(w.opts.HeartbeatInterval)
	return p, false, nil
}

// sendFrame writes one frame, riding out a single connection failure via
// reconnect + retry. Both sides deduplicate, so the retry can at worst
// deliver a frame twice, never change what the session computes.
func (w *Worker) sendFrame(t frameType, body []byte) error {
	p := w.peer()
	err := p.write(t, body)
	if err == nil {
		return nil
	}
	if rerr := w.reconnect(err, false); rerr != nil {
		return &PeerLossError{Party: 0, Cause: rerr}
	}
	if err := w.peer().write(t, body); err != nil {
		return &PeerLossError{Party: 0, Cause: err}
	}
	return nil
}

func (w *Worker) curSeq() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// NextJob blocks for the next job spec. It returns ErrShutdown on an
// orderly session end and *PeerLossError if the coordinator vanishes for
// good. Duplicate job deliveries (a rejoin resync racing the broadcast)
// are skipped by job sequence number, so a job never runs twice.
func (w *Worker) NextJob() ([]byte, error) {
	for {
		p := w.peer()
		f, ok := <-p.inbox
		if !ok {
			if rerr := w.reconnect(p.readErr, true); rerr != nil {
				return nil, &PeerLossError{Party: 0, Cause: rerr}
			}
			continue
		}
		switch f.typ {
		case fJobStart:
			jseq, job, err := decodeJobStart(f.body)
			if err != nil {
				return nil, err
			}
			w.mu.Lock()
			if jseq <= w.lastJobSeq {
				w.mu.Unlock()
				continue // duplicate resync of a job already running or done
			}
			w.lastJobSeq = jseq
			w.lastResult = nil
			w.mu.Unlock()
			return job, nil
		case fMerged, fAssign:
			continue // stale resync for an exchange already completed
		case fShutdown:
			return nil, ErrShutdown
		case fError:
			return nil, fmt.Errorf("transport: coordinator: %s", f.body)
		default:
			return nil, fmt.Errorf("transport: unexpected %s frame awaiting job", f.typ)
		}
	}
}

// Exchange implements Transport: ship this party's records, serve any
// mid-round reassignments (a lost peer's machines, re-executed here by
// exact replay), and block at the barrier until the coordinator's merged
// round arrives. The merged frame's sequence number and round metadata
// must match this party's own — the SPMD divergence check. A connection
// failure anywhere in the round is recycled through reconnect: the
// records are re-sent (the coordinator's merge dedups) and stale resync
// frames are skipped by sequence number.
func (w *Worker) Exchange(meta RoundMeta, assign [][]int, local []Record, exec ExecFunc) ([]Record, error) {
	w.mu.Lock()
	w.seq++
	seq := w.seq
	w.cur = meta
	w.mu.Unlock()
	if w.opts.TestDieAtSeq > 0 && seq == w.opts.TestDieAtSeq &&
		(w.opts.TestDieAtParty == 0 || w.opts.TestDieAtParty == w.self) {
		// Deterministic mid-round crash for the recovery tests: vanish
		// without ceremony, exactly like a killed worker process.
		os.Exit(TestDieExitCode)
	}
	if w.opts.TestDropConnAtSeq > 0 && seq == w.opts.TestDropConnAtSeq &&
		(w.opts.TestDropConnAtParty == 0 || w.opts.TestDropConnAtParty == w.self) {
		// Deterministic mid-round link failure: kill the connection under
		// the session's feet and let the rejoin machinery recover.
		w.peer().conn.Close()
	}
	// Ship the previous rounds' buffered telemetry first, so everything a
	// party observed before this barrier is on the coordinator's side of
	// the wire before (FIFO per conn) this round's records. A worker that
	// dies mid-round therefore loses at most the events since its last
	// barrier.
	w.flushTelemetry()
	mine := make(map[int]bool, len(local))
	for _, r := range local {
		mine[r.Machine] = true
	}
	body, err := encodeRecords(w.codec, seq, meta, local)
	if err != nil {
		return nil, err
	}
	if err := w.sendFrame(fRecords, body); err != nil {
		return nil, err
	}
	for {
		p := w.peer()
		f, ok := <-p.inbox
		if !ok {
			if rerr := w.reconnect(p.readErr, false); rerr != nil {
				return nil, &PeerLossError{Party: 0, Cause: rerr}
			}
			// The coordinator may never have seen this round's records;
			// re-send them (its merge dedups if it did).
			if err := w.sendFrame(fRecords, body); err != nil {
				return nil, err
			}
			continue
		}
		switch f.typ {
		case fAssign:
			aseq, ids, err := decodeAssign(f.body)
			if err != nil {
				return nil, err
			}
			if aseq < seq {
				continue // duplicate re-delivery for an already-merged round
			}
			if aseq > seq {
				trace.FlightTrigger("transport: exchange divergence")
				return nil, &DivergenceError{Seq: aseq, WantSeq: seq, Want: meta, Got: meta}
			}
			recs, err := exec(ids)
			if err != nil {
				return nil, err
			}
			for _, r := range recs {
				mine[r.Machine] = true
			}
			rbody, err := encodeRecords(w.codec, seq, meta, recs)
			if err != nil {
				return nil, err
			}
			if err := w.sendFrame(fRecords, rbody); err != nil {
				return nil, err
			}
			w.mu.Lock()
			w.st.Reassigns++
			w.mu.Unlock()
		case fMerged:
			mseq, mmeta, recs, err := decodeRecords(w.codec, f.body)
			if err != nil {
				return nil, err
			}
			if mseq < seq {
				continue // duplicate barrier from a rejoin resync race
			}
			if mseq != seq || mmeta != meta {
				derr := &DivergenceError{Seq: mseq, WantSeq: seq, Want: meta, Got: mmeta}
				trace.FlightTrigger("transport: exchange divergence")
				w.peer().write(fError, []byte(derr.Error()))
				return nil, derr
			}
			for i := range recs {
				if mine[recs[i].Machine] {
					recs[i].Remote = false
				}
			}
			w.mu.Lock()
			w.st.Exchanges++
			w.lastAcked = seq
			w.mu.Unlock()
			return recs, nil
		case fJobStart:
			continue // duplicate job resync; this job is already running
		case fShutdown:
			return nil, ErrShutdown
		case fError:
			return nil, fmt.Errorf("transport: coordinator: %s", f.body)
		default:
			return nil, fmt.Errorf("transport: unexpected %s frame during exchange", f.typ)
		}
	}
}

// FinishJob ships the worker's end-of-job result digest for the
// coordinator's cross-check, flushing any remaining telemetry first (the
// conn is FIFO, so the coordinator sees the telemetry before the result).
// The result is retained so a reconnect can re-send it if it died on the
// wire; the jobSeq prefix dedups on the coordinator.
func (w *Worker) FinishJob(result []byte) error {
	w.flushTelemetry()
	w.mu.Lock()
	jseq := w.lastJobSeq
	w.lastResult = append([]byte(nil), result...)
	w.lastResultJob = jseq
	w.mu.Unlock()
	return w.sendFrame(fResult, encodeResult(jseq, result))
}

// Status snapshots the worker's live view of the session for the -status
// endpoint. Its single peer row is the coordinator link.
func (w *Worker) Status() Status {
	now := time.Now()
	w.mu.Lock()
	seq, cur := w.seq, w.cur
	p := w.p
	ret := w.retired
	graceNs := w.graceNs
	w.mu.Unlock()
	ps := PeerStats{
		Party:         0,
		Alive:         true,
		BytesIn:       ret.bytesIn + p.bytesIn.Load(),
		BytesOut:      ret.bytesOut + p.bytesOut.Load(),
		Frames:        ret.frames + p.frames.Load(),
		RTTP99:        p.rttP99(),
		Reconnects:    ret.reconnects,
		CorruptFrames: ret.corrupt + p.corrupt.Load(),
	}
	if ns := p.lastHeardNs.Load(); ns > 0 {
		ps.LastHeard = time.Unix(0, ns)
	}
	return Status{
		Role:           "worker",
		Parties:        w.parties,
		Self:           w.self,
		Seq:            seq,
		Round:          cur.Round,
		Name:           cur.Name,
		Phase:          cur.Phase,
		Alive:          2,
		HeartbeatMs:    float64(w.opts.HeartbeatInterval) / float64(time.Millisecond),
		PeerDeadlineMs: float64(w.opts.PeerTimeout) / float64(time.Millisecond),
		RejoinGraceMs:  float64(graceNs) / float64(time.Millisecond),
		Wire:           w.Stats(),
		Peers:          []PeerStatus{peerStatus(ps, now)},
	}
}

// Stats implements Transport.
func (w *Worker) Stats() Stats {
	w.mu.Lock()
	st := w.st
	ret := w.retired
	p := w.p
	w.mu.Unlock()
	st.BytesIn = ret.bytesIn + p.bytesIn.Load()
	st.BytesOut = ret.bytesOut + p.bytesOut.Load()
	st.Frames = ret.frames + p.frames.Load()
	st.CorruptFrames = ret.corrupt + p.corrupt.Load()
	return st
}

// Close implements Transport.
func (w *Worker) Close() error {
	w.peer().close()
	return nil
}

// encodeJobStart prefixes the opaque job spec with the coordinator's job
// sequence number so duplicate deliveries (rejoin resync racing the
// broadcast) are detectable.
func encodeJobStart(jobSeq uint64, job []byte) []byte {
	buf := binary.AppendUvarint(nil, jobSeq)
	return append(buf, job...)
}

func decodeJobStart(body []byte) (uint64, []byte, error) {
	jseq, data, err := readUvarint(body)
	if err != nil {
		return 0, nil, err
	}
	return jseq, data, nil
}

// encodeResult prefixes the result digest with the job sequence number it
// answers, so a re-sent result from a recovered connection can never be
// mistaken for a later job's.
func encodeResult(jobSeq uint64, result []byte) []byte {
	buf := binary.AppendUvarint(nil, jobSeq)
	return append(buf, result...)
}

func decodeResult(body []byte) (uint64, []byte, error) {
	jseq, data, err := readUvarint(body)
	if err != nil {
		return 0, nil, err
	}
	return jseq, data, nil
}
