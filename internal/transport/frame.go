package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Wire protocol (see docs/DISTRIBUTED.md): every frame is
//
//	[1 byte type][4 bytes big-endian body length][body][4 bytes CRC32-C]
//
// The trailing checksum covers the header and body, so a flipped bit
// anywhere in the frame — type, length, or payload — surfaces as a typed
// CorruptFrameError instead of reaching the codec. Bodies are built from
// the same primitives as the payload codec (varints, length-prefixed
// strings); records embed codec-encoded payload values.

// ProtocolVersion is bumped on any incompatible change to the framing or
// the handshake. The coordinator rejects workers announcing a different
// version. Version 2 added the welcome's clock-sync timestamp and
// telemetry flag, plus the fTelemetry and fPong frames. Version 3 added
// the CRC32-C frame trailer and the session-resume handshake (structured
// hello, welcome session token + rejoin grace).
const ProtocolVersion = 3

// helloMagic opens the fHello body so a coordinator can immediately reject
// a stray connection that is not an mpcdist worker.
const helloMagic = 0x4d504358 // "MPCX"

type frameType byte

const (
	fHello     frameType = 1  // worker -> coordinator: magic, protocol version
	fWelcome   frameType = 2  // coordinator -> worker: version, parties, party id, codec table
	fJobStart  frameType = 3  // coordinator -> worker: opaque job spec
	fResult    frameType = 4  // worker -> coordinator: opaque result digest
	fShutdown  frameType = 5  // coordinator -> worker: session over
	fRecords   frameType = 6  // worker -> coordinator: seq, meta, execution records
	fAssign    frameType = 7  // coordinator -> worker: seq, extra machine ids (reassignment)
	fMerged    frameType = 8  // coordinator -> worker: seq, meta, full merged round
	fPing      frameType = 9  // either direction: heartbeat, empty body
	fError     frameType = 10 // either direction: fatal condition, message string
	fTelemetry frameType = 11 // worker -> coordinator: codec-encoded trace.Telemetry (out-of-band)
	fPong      frameType = 12 // either direction: heartbeat reply, empty body
)

func (t frameType) String() string {
	switch t {
	case fHello:
		return "hello"
	case fWelcome:
		return "welcome"
	case fJobStart:
		return "job-start"
	case fResult:
		return "result"
	case fShutdown:
		return "shutdown"
	case fRecords:
		return "records"
	case fAssign:
		return "assign"
	case fMerged:
		return "merged"
	case fPing:
		return "ping"
	case fError:
		return "error"
	case fTelemetry:
		return "telemetry"
	case fPong:
		return "pong"
	}
	return fmt.Sprintf("frame(%d)", byte(t))
}

// maxFrame caps a frame body; a longer announced length means a corrupt or
// hostile stream, not a big round.
const maxFrame = 1 << 30

// frameHeaderLen is the fixed per-frame header: type byte + length word.
const frameHeaderLen = 5

// frameCRCLen is the CRC32-C trailer every frame carries since protocol
// version 3.
const frameCRCLen = 4

// frameOverhead is the total fixed per-frame overhead on the wire.
const frameOverhead = frameHeaderLen + frameCRCLen

// crcTable drives the frame checksum: CRC32-C (Castagnoli), the
// polynomial with hardware support on both amd64 and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

type frame struct {
	typ  frameType
	body []byte
}

// appendFrame encodes one complete wire frame — header, body, CRC32-C
// trailer — onto buf. It is the single source of truth for the frame
// layout; peer.write produces identical bytes and the corruption fuzz
// target mutates its output.
func appendFrame(buf []byte, t frameType, body []byte) []byte {
	buf = append(buf, byte(t))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	sum := crc32.Update(0, crcTable, buf[len(buf)-len(body)-frameHeaderLen:])
	return binary.BigEndian.AppendUint32(buf, sum)
}

// readFrame reads and verifies one frame from br. Integrity violations —
// an impossible announced length or a checksum mismatch — come back as
// *CorruptFrameError; plain I/O errors pass through unchanged. A corrupt
// frame leaves the stream position undefined (the length word itself may
// be the corrupted byte), so callers must recycle the connection rather
// than resynchronize.
func readFrame(br *bufio.Reader) (frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return frame{}, &CorruptFrameError{Type: hdr[0], Len: int64(n),
			Reason: fmt.Sprintf("announced length exceeds limit %d", maxFrame)}
	}
	body := make([]byte, n+frameCRCLen)
	if _, err := io.ReadFull(br, body); err != nil {
		return frame{}, err
	}
	sum := crc32.Update(0, crcTable, hdr[:])
	sum = crc32.Update(sum, crcTable, body[:n])
	if got := binary.BigEndian.Uint32(body[n:]); got != sum {
		return frame{}, &CorruptFrameError{Type: hdr[0], Len: int64(n),
			Reason: fmt.Sprintf("crc mismatch: frame carries %#08x, computed %#08x", got, sum)}
	}
	return frame{typ: frameType(hdr[0]), body: body[:n:n]}, nil
}

// countConn counts bytes crossing a net.Conn — the bytes-on-wire metric
// surfaced through Stats and the bench transport dimension.
type countConn struct {
	net.Conn
	in, out *atomic.Int64
}

func (c countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// peer is one live connection, either side. Frames are written under wmu
// (round traffic and the heartbeat ticker share the conn); inbound frames
// are pumped by a reader goroutine into frames, which closes on error with
// the cause left in readErr.
type peer struct {
	party int // the remote party's index
	conn  net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	wmu   sync.Mutex

	bytesIn, bytesOut atomic.Int64
	frames            atomic.Int64
	corrupt           atomic.Int64 // frames this conn rejected on CRC/length

	// Heartbeat RTT: pingLoop stamps lastPingNs before each fPing; the
	// fPong reply closes the loop in readLoop. Samples live in a small
	// ring so the p99 tracks recent conditions.
	lastPingNs  atomic.Int64
	lastHeardNs atomic.Int64
	rttMu       sync.Mutex
	rtts        []time.Duration // ring of recent heartbeat RTTs
	rttNext     int

	inbox    chan frame
	readErr  error // valid after inbox closes
	stopPing chan struct{}
	pingDone sync.WaitGroup
	timeout  time.Duration
}

// rttRing caps the heartbeat RTT sample ring.
const rttRing = 64

func (p *peer) recordRTT(d time.Duration) {
	if d <= 0 {
		return
	}
	p.rttMu.Lock()
	if len(p.rtts) < rttRing {
		p.rtts = append(p.rtts, d)
	} else {
		p.rtts[p.rttNext] = d
		p.rttNext = (p.rttNext + 1) % rttRing
	}
	p.rttMu.Unlock()
}

// rttP99 is the nearest-rank 99th percentile of the recent heartbeat RTT
// samples (the max for fewer than 100 samples), 0 with no samples yet.
func (p *peer) rttP99() time.Duration {
	p.rttMu.Lock()
	sorted := append([]time.Duration(nil), p.rtts...)
	p.rttMu.Unlock()
	if len(sorted) == 0 {
		return 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (99*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func newPeer(conn net.Conn, remoteParty int, timeout time.Duration) *peer {
	p := &peer{party: remoteParty, timeout: timeout}
	p.conn = countConn{Conn: conn, in: &p.bytesIn, out: &p.bytesOut}
	p.br = bufio.NewReaderSize(p.conn, 64<<10)
	p.bw = bufio.NewWriterSize(p.conn, 64<<10)
	p.inbox = make(chan frame, 4)
	p.stopPing = make(chan struct{})
	return p
}

// start launches the reader and heartbeat goroutines; call after the
// handshake so handshake frames can be read synchronously.
func (p *peer) start(interval time.Duration) {
	go p.readLoop()
	p.pingDone.Add(1)
	go p.pingLoop(interval)
}

// readLoop pumps frames into the inbox under a rolling read deadline: any
// frame (heartbeats included) pushes the deadline out, so a peer is
// declared dead only after timeout with a silent wire. Heartbeats are
// swallowed here — a ping is answered with a pong, a pong closes the RTT
// measurement opened by pingLoop; everything else is delivered in order.
func (p *peer) readLoop() {
	defer close(p.inbox)
	for {
		f, err := p.read()
		if err != nil {
			p.readErr = err
			return
		}
		switch f.typ {
		case fPing:
			// Reply errors mean a broken conn; the next read sees it too.
			_ = p.write(fPong, nil)
			continue
		case fPong:
			if sent := p.lastPingNs.Load(); sent > 0 {
				p.recordRTT(time.Duration(time.Now().UnixNano() - sent))
			}
			continue
		}
		p.inbox <- f
	}
}

func (p *peer) pingLoop(interval time.Duration) {
	defer p.pingDone.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stopPing:
			return
		case <-t.C:
			// A failed ping means the conn is broken; the read side will
			// notice and declare the peer lost, so the error is dropped.
			p.lastPingNs.Store(time.Now().UnixNano())
			if p.write(fPing, nil) != nil {
				return
			}
		}
	}
}

// read blocks for one frame, refreshing the deadline first. A corrupt
// frame (CRC or length-word violation) is counted and returned as a
// *CorruptFrameError; the stream is unrecoverable past it.
func (p *peer) read() (frame, error) {
	if p.timeout > 0 {
		if err := p.conn.SetReadDeadline(time.Now().Add(p.timeout)); err != nil {
			return frame{}, err
		}
	}
	f, err := readFrame(p.br)
	if err != nil {
		var cfe *CorruptFrameError
		if errors.As(err, &cfe) {
			cfe.Party = p.party
			p.corrupt.Add(1)
		}
		return frame{}, err
	}
	p.frames.Add(1)
	p.lastHeardNs.Store(time.Now().UnixNano())
	return f, nil
}

// write sends one frame; safe for concurrent use. The CRC is computed
// incrementally over header and body so large bodies are never copied.
func (p *peer) write(t frameType, body []byte) error {
	if len(body) > maxFrame {
		return fmt.Errorf("transport: %s frame of %d bytes exceeds limit %d", t, len(body), maxFrame)
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	var hdr [frameHeaderLen]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(body)))
	if _, err := p.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := p.bw.Write(body); err != nil {
		return err
	}
	sum := crc32.Update(0, crcTable, hdr[:])
	sum = crc32.Update(sum, crcTable, body)
	var trailer [frameCRCLen]byte
	binary.BigEndian.PutUint32(trailer[:], sum)
	if _, err := p.bw.Write(trailer[:]); err != nil {
		return err
	}
	p.frames.Add(1)
	return p.bw.Flush()
}

// close tears the connection down and stops the heartbeat.
func (p *peer) close() {
	select {
	case <-p.stopPing:
	default:
		close(p.stopPing)
	}
	p.conn.Close()
	p.pingDone.Wait()
}

// ---- body builders/parsers ----

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(data []byte) (string, []byte, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < l {
		return "", nil, errTruncated
	}
	return string(data[n : n+int(l)]), data[n+int(l):], nil
}

func readUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, errTruncated
	}
	return v, data[n:], nil
}

func readVarint(data []byte) (int64, []byte, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, errTruncated
	}
	return v, data[n:], nil
}

func appendMeta(buf []byte, seq int, meta RoundMeta) []byte {
	buf = binary.AppendUvarint(buf, uint64(seq))
	buf = binary.AppendVarint(buf, int64(meta.Round))
	buf = appendString(buf, meta.Name)
	return appendString(buf, meta.Phase)
}

func readMeta(data []byte) (int, RoundMeta, []byte, error) {
	seq, data, err := readUvarint(data)
	if err != nil {
		return 0, RoundMeta{}, nil, err
	}
	round, data, err := readVarint(data)
	if err != nil {
		return 0, RoundMeta{}, nil, err
	}
	name, data, err := readString(data)
	if err != nil {
		return 0, RoundMeta{}, nil, err
	}
	phase, data, err := readString(data)
	if err != nil {
		return 0, RoundMeta{}, nil, err
	}
	return int(seq), RoundMeta{Round: int(round), Name: name, Phase: phase}, data, nil
}

// encodeRecords builds an fRecords/fMerged body: seq, meta, then the
// records with codec-encoded outbox payloads.
func encodeRecords(c *Codec, seq int, meta RoundMeta, recs []Record) ([]byte, error) {
	buf := appendMeta(nil, seq, meta)
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for _, r := range recs {
		buf = binary.AppendVarint(buf, int64(r.Machine))
		buf = binary.AppendVarint(buf, r.Ops)
		if r.Started {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendVarint(buf, r.StartNs)
		buf = binary.AppendVarint(buf, r.EndNs)
		buf = binary.AppendVarint(buf, r.QueueNs)
		buf = binary.AppendVarint(buf, int64(r.Failures))
		buf = binary.AppendVarint(buf, int64(r.Retries))
		if r.Crashed {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendVarint(buf, int64(r.CrashAttempts))
		buf = binary.AppendUvarint(buf, uint64(len(r.Msgs)))
		for _, m := range r.Msgs {
			buf = binary.AppendVarint(buf, int64(m.To))
			var err error
			if buf, err = c.Encode(buf, m.Data); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// decodeRecords parses an fRecords/fMerged body. Decoded records are
// flagged Remote; the caller clears the flag on machines it executed
// itself.
func decodeRecords(c *Codec, body []byte) (int, RoundMeta, []Record, error) {
	seq, meta, data, err := readMeta(body)
	if err != nil {
		return 0, RoundMeta{}, nil, err
	}
	count, data, err := readUvarint(data)
	if err != nil {
		return 0, RoundMeta{}, nil, err
	}
	if count > uint64(len(data))+1 {
		return 0, RoundMeta{}, nil, fmt.Errorf("transport: record count %d exceeds body", count)
	}
	recs := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		var r Record
		var v int64
		if v, data, err = readVarint(data); err != nil {
			return 0, RoundMeta{}, nil, err
		}
		r.Machine = int(v)
		if r.Ops, data, err = readVarint(data); err != nil {
			return 0, RoundMeta{}, nil, err
		}
		if len(data) < 1 {
			return 0, RoundMeta{}, nil, errTruncated
		}
		r.Started = data[0] == 1
		data = data[1:]
		if r.StartNs, data, err = readVarint(data); err != nil {
			return 0, RoundMeta{}, nil, err
		}
		if r.EndNs, data, err = readVarint(data); err != nil {
			return 0, RoundMeta{}, nil, err
		}
		if r.QueueNs, data, err = readVarint(data); err != nil {
			return 0, RoundMeta{}, nil, err
		}
		if v, data, err = readVarint(data); err != nil {
			return 0, RoundMeta{}, nil, err
		}
		r.Failures = int(v)
		if v, data, err = readVarint(data); err != nil {
			return 0, RoundMeta{}, nil, err
		}
		r.Retries = int(v)
		if len(data) < 1 {
			return 0, RoundMeta{}, nil, errTruncated
		}
		r.Crashed = data[0] == 1
		data = data[1:]
		if v, data, err = readVarint(data); err != nil {
			return 0, RoundMeta{}, nil, err
		}
		r.CrashAttempts = int(v)
		var nm uint64
		if nm, data, err = readUvarint(data); err != nil {
			return 0, RoundMeta{}, nil, err
		}
		if nm > uint64(len(data))+1 {
			return 0, RoundMeta{}, nil, fmt.Errorf("transport: outbox count %d exceeds body", nm)
		}
		r.Msgs = make([]Msg, 0, nm)
		for j := uint64(0); j < nm; j++ {
			if v, data, err = readVarint(data); err != nil {
				return 0, RoundMeta{}, nil, err
			}
			var payload any
			if payload, data, err = c.DecodePrefix(data); err != nil {
				return 0, RoundMeta{}, nil, err
			}
			r.Msgs = append(r.Msgs, Msg{To: int(v), Data: payload})
		}
		r.Remote = true
		recs = append(recs, r)
	}
	if len(data) != 0 {
		return 0, RoundMeta{}, nil, fmt.Errorf("transport: %d trailing bytes after records", len(data))
	}
	return seq, meta, recs, nil
}

func encodeAssign(seq int, ids []int) []byte {
	buf := binary.AppendUvarint(nil, uint64(seq))
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendVarint(buf, int64(id))
	}
	return buf
}

func decodeAssign(body []byte) (int, []int, error) {
	seq, data, err := readUvarint(body)
	if err != nil {
		return 0, nil, err
	}
	count, data, err := readUvarint(data)
	if err != nil {
		return 0, nil, err
	}
	if count > uint64(len(data))+1 {
		return 0, nil, fmt.Errorf("transport: assign count %d exceeds body", count)
	}
	ids := make([]int, 0, count)
	for i := uint64(0); i < count; i++ {
		var v int64
		if v, data, err = readVarint(data); err != nil {
			return 0, nil, err
		}
		ids = append(ids, int(v))
	}
	if len(data) != 0 {
		return 0, nil, fmt.Errorf("transport: %d trailing bytes after assign", len(data))
	}
	return int(seq), ids, nil
}

// welcome is the decoded fWelcome body. ClockNs is the coordinator's
// wall clock when it built the frame — the worker combines it with its
// own hello-send and welcome-receive times into an NTP-style midpoint
// offset estimate. Telemetry tells the worker whether to buffer and ship
// trace telemetry back at round barriers. Token is the session-resume
// credential a dropped worker presents when redialing; GraceNs is how
// long the coordinator will hold the worker's slot for that rejoin
// (0 = the coordinator evicts immediately, so don't bother).
type welcome struct {
	Version   int
	Parties   int
	Self      int
	ClockNs   int64
	Telemetry bool
	Token     string
	GraceNs   int64
	Table     []string
}

func encodeWelcome(w welcome) []byte {
	buf := binary.AppendUvarint(nil, uint64(w.Version))
	buf = binary.AppendUvarint(buf, uint64(w.Parties))
	buf = binary.AppendUvarint(buf, uint64(w.Self))
	buf = binary.AppendVarint(buf, w.ClockNs)
	if w.Telemetry {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendString(buf, w.Token)
	buf = binary.AppendVarint(buf, w.GraceNs)
	buf = binary.AppendUvarint(buf, uint64(len(w.Table)))
	for _, name := range w.Table {
		buf = appendString(buf, name)
	}
	return buf
}

func decodeWelcome(body []byte) (welcome, error) {
	var w welcome
	v, data, err := readUvarint(body)
	if err != nil {
		return w, err
	}
	w.Version = int(v)
	p, data, err := readUvarint(data)
	if err != nil {
		return w, err
	}
	w.Parties = int(p)
	s, data, err := readUvarint(data)
	if err != nil {
		return w, err
	}
	w.Self = int(s)
	if w.ClockNs, data, err = readVarint(data); err != nil {
		return w, err
	}
	if len(data) < 1 {
		return w, errTruncated
	}
	w.Telemetry = data[0] == 1
	data = data[1:]
	if w.Token, data, err = readString(data); err != nil {
		return w, err
	}
	if w.GraceNs, data, err = readVarint(data); err != nil {
		return w, err
	}
	count, data, err := readUvarint(data)
	if err != nil {
		return w, err
	}
	if count > uint64(len(data))+1 {
		return w, fmt.Errorf("transport: table count %d exceeds body", count)
	}
	w.Table = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		var name string
		if name, data, err = readString(data); err != nil {
			return w, err
		}
		w.Table = append(w.Table, name)
	}
	if len(data) != 0 {
		return w, fmt.Errorf("transport: %d trailing bytes after welcome", len(data))
	}
	return w, nil
}

// hello is the decoded fHello body. A fresh worker sends only the magic
// and version; a worker resuming a dropped session additionally presents
// the session token, its party id, the last merged exchange seq it fully
// processed (so the coordinator can resend a merged frame lost in
// flight), and whether it still needs the current job spec (it was
// between jobs when the connection died).
type hello struct {
	Version   int
	Resume    bool
	Token     string
	Party     int
	LastAcked int
	NeedJob   bool
}

func encodeHello(h hello) []byte {
	buf := binary.AppendUvarint(nil, helloMagic)
	buf = binary.AppendUvarint(buf, uint64(h.Version))
	var flags byte
	if h.Resume {
		flags |= 1
	}
	if h.NeedJob {
		flags |= 2
	}
	buf = append(buf, flags)
	if !h.Resume {
		return buf
	}
	buf = appendString(buf, h.Token)
	buf = binary.AppendUvarint(buf, uint64(h.Party))
	return binary.AppendUvarint(buf, uint64(h.LastAcked))
}

func decodeHello(body []byte) (hello, error) {
	var h hello
	magic, data, err := readUvarint(body)
	if err != nil {
		return h, err
	}
	if magic != helloMagic {
		return h, fmt.Errorf("transport: bad hello magic %#x", magic)
	}
	v, data, err := readUvarint(data)
	if err != nil {
		return h, err
	}
	h.Version = int(v)
	if len(data) < 1 {
		return h, errTruncated
	}
	flags := data[0]
	data = data[1:]
	h.Resume = flags&1 != 0
	h.NeedJob = flags&2 != 0
	if h.Resume {
		if h.Token, data, err = readString(data); err != nil {
			return h, err
		}
		var p, acked uint64
		if p, data, err = readUvarint(data); err != nil {
			return h, err
		}
		h.Party = int(p)
		if acked, data, err = readUvarint(data); err != nil {
			return h, err
		}
		h.LastAcked = int(acked)
	}
	if len(data) != 0 {
		return h, fmt.Errorf("transport: %d trailing bytes after hello", len(data))
	}
	return h, nil
}
