package transport_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"mpcdist/internal/mpc"
	"mpcdist/internal/transport"
)

// FuzzPayloadCodec fuzzes the codec over the simulator's built-in payload
// kinds (mpc.Ints, mpc.Bytes, mpc.Int): encode → decode → re-encode must
// reproduce the exact bytes, truncated frames must be rejected, frames
// with trailing bytes must be rejected, and arbitrary input must never
// panic the decoder.
func FuzzPayloadCodec(f *testing.F) {
	f.Add(uint8(0), []byte(nil), int64(0))
	f.Add(uint8(1), []byte("the quick brown fox"), int64(-1))
	f.Add(uint8(2), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252}, int64(1<<40))
	f.Add(uint8(3), []byte{0xff, 0xff, 0xff, 0xff}, int64(-1<<62))
	f.Fuzz(func(t *testing.T, kind uint8, data []byte, n int64) {
		c := transport.NewCodec()
		var v any
		switch kind % 3 {
		case 0:
			v = mpc.Int(n)
		case 1:
			v = mpc.Bytes(append([]byte(nil), data...))
		case 2:
			ints := make(mpc.Ints, 0, len(data)/4+1)
			for i := 0; i+4 <= len(data); i += 4 {
				ints = append(ints, int(int32(binary.LittleEndian.Uint32(data[i:]))))
			}
			v = ints
		}

		enc, err := c.Encode(nil, v)
		if err != nil {
			t.Fatalf("encoding %#v: %v", v, err)
		}
		dec, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("decoding own encoding of %#v: %v", v, err)
		}
		re, err := c.Encode(nil, dec)
		if err != nil {
			t.Fatalf("re-encoding %#v: %v", dec, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("re-encode differs for %#v:\nfirst:  % x\nsecond: % x", v, enc, re)
		}

		// Every strict prefix is a truncated frame and must be rejected.
		if _, err := c.Decode(enc[:len(enc)-1]); err == nil {
			t.Fatalf("decode of truncated frame (%d of %d bytes) succeeded", len(enc)-1, len(enc))
		}
		// An oversized frame (valid value + trailing bytes) must be rejected.
		if _, err := c.Decode(append(append([]byte(nil), enc...), 0)); err == nil {
			t.Fatal("decode of frame with trailing byte succeeded")
		}

		// The raw fuzz input thrown at the decoder must error or decode
		// cleanly — never panic, never over-read.
		c.Decode(data)
	})
}
