package transport

import (
	"bufio"
	"bytes"
	"errors"
	"flag"
	"io"
	"testing"
	"time"
)

// TestFrameRoundTrip drives appendFrame through readFrame for every frame
// type, including empty bodies and back-to-back frames on one stream.
func TestFrameRoundTrip(t *testing.T) {
	big := make([]byte, 10_000)
	for i := range big {
		big[i] = byte(i * 31)
	}
	bodies := [][]byte{nil, {}, {0}, []byte("records"), big}
	types := []frameType{fHello, fWelcome, fJobStart, fResult, fShutdown,
		fRecords, fAssign, fMerged, fPing, fError, fTelemetry, fPong}

	var wire []byte
	var want []frame
	for i, typ := range types {
		body := bodies[i%len(bodies)]
		wire = appendFrame(wire, typ, body)
		want = append(want, frame{typ: typ, body: body})
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	for i, w := range want {
		got, err := readFrame(br)
		if err != nil {
			t.Fatalf("frame %d (%s): %v", i, w.typ, err)
		}
		if got.typ != w.typ || !bytes.Equal(got.body, w.body) {
			t.Fatalf("frame %d: got (%s, %d bytes), want (%s, %d bytes)",
				i, got.typ, len(got.body), w.typ, len(w.body))
		}
	}
	if _, err := readFrame(br); err != io.EOF {
		t.Fatalf("after the last frame: err = %v, want io.EOF", err)
	}
}

// TestReadFrameRejectsOversizedLength checks the pre-allocation guard: an
// announced length beyond maxFrame is a typed corrupt-frame error, not an
// attempted gigabyte allocation.
func TestReadFrameRejectsOversizedLength(t *testing.T) {
	hdr := []byte{byte(fRecords), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	_, err := readFrame(bufio.NewReader(bytes.NewReader(hdr)))
	var c *CorruptFrameError
	if !errors.As(err, &c) {
		t.Fatalf("err = %v, want *CorruptFrameError", err)
	}
}

// FuzzFrameCorruption is the ISSUE's wire-integrity target: build a valid
// frame, flip arbitrary bytes anywhere in it — header, body, or trailer —
// and require that readFrame never hands back a frame that differs from
// what was sent. Every mutation must surface as a CRC/length error or a
// truncated read; a silent wrong payload is the one unacceptable outcome.
func FuzzFrameCorruption(f *testing.F) {
	f.Add(0, byte(1), []byte("the quick brown fox"))
	f.Add(2, byte(0x80), []byte{})
	f.Add(5, byte(0xFF), bytes.Repeat([]byte{0xAA}, 300))
	f.Add(-3, byte(4), []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, pos int, xor byte, body []byte) {
		if len(body) > 1<<16 {
			body = body[:1<<16]
		}
		wire := appendFrame(nil, fRecords, body)
		if xor == 0 {
			return // identity mutation
		}
		pos = ((pos % len(wire)) + len(wire)) % len(wire)
		mut := append([]byte(nil), wire...)
		mut[pos] ^= xor

		got, err := readFrame(bufio.NewReader(bytes.NewReader(mut)))
		if err == nil {
			if got.typ != fRecords || !bytes.Equal(got.body, body) {
				t.Fatalf("flip at %d (^%#02x) produced a DIFFERENT valid frame: type %s, %d bytes",
					pos, xor, got.typ, len(got.body))
			}
			return
		}
		var c *CorruptFrameError
		if !errors.As(err, &c) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("flip at %d (^%#02x): unexpected error class %T: %v", pos, xor, err, err)
		}
	})
}

// TestHelloRoundTrip covers both handshake shapes: the two-field fresh
// hello and the full v3 resume hello with token, party, and ack state.
func TestHelloRoundTrip(t *testing.T) {
	for _, h := range []hello{
		{Version: ProtocolVersion},
		{Version: ProtocolVersion, NeedJob: true},
		{Version: ProtocolVersion, Resume: true, Token: "00ff00ff00ff00ff", Party: 2, LastAcked: 17},
		{Version: ProtocolVersion, Resume: true, Token: "", Party: 1, LastAcked: 0, NeedJob: true},
	} {
		got, err := decodeHello(encodeHello(h))
		if err != nil {
			t.Fatalf("decode(%+v): %v", h, err)
		}
		if got != h {
			t.Errorf("hello round trip: got %+v, want %+v", got, h)
		}
	}
	if _, err := decodeHello([]byte{0x01, 0x02, 0x03}); err == nil {
		t.Error("hello with bad magic decoded")
	}
	if _, err := decodeHello(append(encodeHello(hello{Version: 3}), 0)); err == nil {
		t.Error("hello with trailing bytes decoded")
	}
}

// TestRTTRingEdgeCases pins the heartbeat percentile estimator's corners:
// no samples, one sample, non-positive samples, nearest-rank selection,
// and ring wraparound past the 64-sample capacity.
func TestRTTRingEdgeCases(t *testing.T) {
	p := &peer{}
	if got := p.rttP99(); got != 0 {
		t.Fatalf("empty ring p99 = %s, want 0", got)
	}
	// A pong matched against a missing/stale ping stamp yields a
	// non-positive RTT; those must never enter the ring.
	p.recordRTT(0)
	p.recordRTT(-time.Millisecond)
	if got := p.rttP99(); got != 0 {
		t.Fatalf("non-positive samples entered the ring: p99 = %s", got)
	}
	p.recordRTT(5 * time.Millisecond)
	if got := p.rttP99(); got != 5*time.Millisecond {
		t.Fatalf("single-sample p99 = %s, want 5ms", got)
	}
	// With fewer than 100 samples, nearest-rank p99 is the max — order of
	// arrival must not matter.
	p.recordRTT(1 * time.Millisecond)
	if got := p.rttP99(); got != 5*time.Millisecond {
		t.Fatalf("two-sample p99 = %s, want the max (5ms)", got)
	}
	// Overfill the ring: only the newest rttRing samples may survive.
	for i := 1; i <= 3*rttRing; i++ {
		p.recordRTT(time.Duration(i) * time.Millisecond)
	}
	if got, want := p.rttP99(), time.Duration(3*rttRing)*time.Millisecond; got != want {
		t.Fatalf("post-wraparound p99 = %s, want %s", got, want)
	}
	// A fresh outlier lands in the ring immediately (it overwrites the
	// oldest slot, not a dead one past the wrap point).
	p.recordRTT(time.Second)
	if got := p.rttP99(); got != time.Second {
		t.Fatalf("p99 after outlier = %s, want 1s", got)
	}
}

// TestTransportBindFlags checks the shared liveness flag set: defaults
// parse to the documented values and each invalid combination is refused
// with a clear error.
func TestTransportBindFlags(t *testing.T) {
	parse := func(args ...string) (Options, error) {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		get := BindFlags(fs)
		if err := fs.Parse(args); err != nil {
			return Options{}, err
		}
		return get()
	}
	o, err := parse()
	if err != nil {
		t.Fatal(err)
	}
	if o.HeartbeatInterval != 250*time.Millisecond || o.PeerTimeout != 3*time.Second ||
		o.RejoinGrace != 0 || o.CorruptTolerance != DefaultCorruptTolerance {
		t.Fatalf("defaults = %+v", o)
	}
	o, err = parse("-heartbeat", "100ms", "-peer-deadline", "1s", "-rejoin-grace", "30s", "-corrupt-tolerance", "3")
	if err != nil {
		t.Fatal(err)
	}
	if o.HeartbeatInterval != 100*time.Millisecond || o.PeerTimeout != time.Second ||
		o.RejoinGrace != 30*time.Second || o.CorruptTolerance != 3 {
		t.Fatalf("custom flags = %+v", o)
	}
	for _, bad := range [][]string{
		{"-heartbeat", "0s"},
		{"-peer-deadline", "0s"},
		{"-heartbeat", "3s", "-peer-deadline", "1s"},
		{"-heartbeat", "1s", "-peer-deadline", "1s"},
		{"-rejoin-grace", "-1s"},
		{"-corrupt-tolerance", "-1"},
	} {
		if _, err := parse(bad...); err == nil {
			t.Errorf("flags %v: validation passed, want error", bad)
		}
	}
}
