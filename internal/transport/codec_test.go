package transport_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"mpcdist/internal/transport"
)

// everyKind exercises every kind the structural encoding covers in one
// registered payload type.
type everyKind struct {
	B   bool
	I   int
	I8  int8
	I64 int64
	U   uint32
	F   float64
	S   string
	Raw []byte
	Is  []int
	Arr [3]int16
	MI  map[int]string
	MS  map[string]int64
	P   *int
	Sub subKind
	PS  *subKind
}

type subKind struct {
	X int
	Y string
}

type hasUnexported struct {
	X int
	y int //nolint:unused // the codec must reject this field
}

func init() {
	transport.Register("transporttest.everyKind", everyKind{})
	transport.Register("transporttest.sub", subKind{})
	transport.Register("transporttest.bad", hasUnexported{})
}

func sampleEveryKind() everyKind {
	x := 41
	return everyKind{
		B:   true,
		I:   -12345,
		I8:  -3,
		I64: 1 << 60,
		U:   9999,
		F:   3.5,
		S:   "héllo",
		Raw: []byte{0, 1, 2, 255},
		Is:  []int{5, -5, 0},
		Arr: [3]int16{7, -8, 9},
		MI:  map[int]string{3: "c", 1: "a", 2: "b"},
		MS:  map[string]int64{"z": 26, "a": 1},
		P:   &x,
		Sub: subKind{X: 1, Y: "sub"},
		PS:  &subKind{X: 2},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	c := transport.NewCodec()
	in := sampleEveryKind()
	buf, err := c.Encode(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
	re, err := c.Encode(nil, out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, re) {
		t.Fatalf("re-encode differs: % x vs % x", buf, re)
	}
}

// TestCodecDeterministicMaps guards the canonical-bytes contract: two
// processes encoding equal values must produce equal bytes, so map
// iteration order must not leak into the encoding.
func TestCodecDeterministicMaps(t *testing.T) {
	c := transport.NewCodec()
	want, err := c.Encode(nil, sampleEveryKind())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		got, err := c.Encode(nil, sampleEveryKind())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("encoding %d differs from first", i)
		}
	}
}

// TestCodecZeroValue pins the empty-collection convention: len-0 slices
// and maps decode to nil, so a decode/re-encode cycle is byte-stable.
func TestCodecZeroValue(t *testing.T) {
	c := transport.NewCodec()
	buf, err := c.Encode(nil, everyKind{Raw: []byte{}, Is: []int{}, MI: map[int]string{}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(everyKind)
	if got.Raw != nil || got.Is != nil || got.MI != nil {
		t.Fatalf("empty collections decoded non-nil: %+v", got)
	}
	re, err := c.Encode(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, re) {
		t.Fatal("zero-value re-encode differs")
	}
}

func TestCodecRejectsTruncatedAndTrailing(t *testing.T) {
	c := transport.NewCodec()
	buf, err := c.Encode(nil, sampleEveryKind())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(buf); i++ {
		if _, err := c.Decode(buf[:i]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", i, len(buf))
		}
	}
	if _, err := c.Decode(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Fatal("decode with trailing byte succeeded")
	}
}

// TestCodecRejectsOversizedLengths feeds a frame whose announced slice
// length exceeds the bytes that follow: the decoder must error without
// attempting the allocation.
func TestCodecRejectsOversizedLengths(t *testing.T) {
	c := transport.NewCodec()
	buf, err := c.Encode(nil, subKind{X: 1, Y: "ab"})
	if err != nil {
		t.Fatal(err)
	}
	// The Y field's length prefix is the byte before the final "ab".
	evil := append([]byte(nil), buf...)
	evil[len(evil)-3] = 0xff // announce a 127-byte string with 2 bytes left
	if _, err := c.Decode(evil); err == nil {
		t.Fatal("decode with oversized string length succeeded")
	}
}

func TestCodecRejectsUnregisteredAndUnexported(t *testing.T) {
	c := transport.NewCodec()
	type unregistered struct{ X int }
	if _, err := c.Encode(nil, unregistered{}); err == nil {
		t.Fatal("encoding an unregistered type succeeded")
	}
	if _, err := c.Encode(nil, hasUnexported{X: 1}); err == nil {
		t.Fatal("encoding a type with unexported fields succeeded")
	}
}

// TestCodecTableExchange simulates the handshake: a codec built from an
// explicit subset table maps ids by name, so values survive even though
// the wire ids differ from the full-registry codec's.
func TestCodecTableExchange(t *testing.T) {
	full := transport.NewCodec()
	sub, err := transport.NewCodecFor([]string{"transporttest.sub", "transporttest.everyKind"})
	if err != nil {
		t.Fatal(err)
	}
	in := subKind{X: 9, Y: "x"}
	buf, err := sub.Encode(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sub.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("subset-table round trip mismatch: %+v", out)
	}
	fullBuf, err := full.Encode(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, fullBuf) {
		t.Skip("ids happen to coincide; table-mapping not observable")
	}
}

func TestNewCodecForUnknownName(t *testing.T) {
	if _, err := transport.NewCodecFor([]string{"no.such.type"}); err == nil {
		t.Fatal("NewCodecFor with an unknown name succeeded")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	transport.Register("transporttest.sub", subKind{})
}

// TestCodecDecodeGarbage throws random bytes at the decoder: it must
// return errors, never panic, for arbitrary input.
func TestCodecDecodeGarbage(t *testing.T) {
	c := transport.NewCodec()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		data := make([]byte, rng.Intn(64))
		rng.Read(data)
		c.Decode(data) // must not panic; errors are expected and fine
	}
}
