// Package transport is the pluggable shuffle layer of the MPC simulator:
// the mechanism that moves a round's emitted messages from the machines
// that produced them to the machines that consume them next round.
//
// The simulator always *counted* communication; this package makes it a
// real data path. A Round implementation decides where machines execute
// and how their outputs travel: Local keeps today's in-memory exchange
// (zero copies, zero sockets — the seed behavior, preserved bit-
// identically), while the TCP coordinator/worker pair runs the cluster
// across real worker processes, shipping every machine outbox through
// length-prefixed binary frames over real sockets, with heartbeat-based
// peer-failure detection and deterministic mid-round reassignment.
//
// The package deliberately knows nothing about internal/mpc: machine
// outputs are carried as opaque `any` values encoded by the self-
// describing codec below, and internal/mpc asserts them back to
// mpc.Payload. This keeps the dependency arrow pointing one way
// (mpc -> transport) so the simulator can treat the shuffle as a plug.
package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
)

// The payload codec: a deterministic, self-describing binary encoding of
// the payload values machines ship between rounds.
//
// Every concrete payload type is registered once (Register, from the
// owning package's init), keyed by a stable name. A Codec instance assigns
// wire ids by sorting the registered names, and the TCP handshake ships
// the coordinator's (id -> name) table so a worker built from a different
// binary — which may have registered a superset or subset of types in a
// different init order — maps names, never raw ids. Encoding is defined
// structurally over the value (varint integers, length-prefixed byte
// strings, declaration-order struct fields, sorted map keys), so two
// processes encoding equal values always produce equal bytes.

// registry is the process-global type table.
var registry = struct {
	sync.Mutex
	byName map[string]reflect.Type
	byType map[reflect.Type]string
}{
	byName: make(map[string]reflect.Type),
	byType: make(map[reflect.Type]string),
}

// Register adds a payload type to the codec's table under a stable,
// package-qualified name (e.g. "mpc.Ints"). sample is any value of the
// type — typically the zero value; pointer types register the pointer
// (values decode back to a pointer of the same type). Register panics on
// duplicate names or duplicate types: both indicate a wiring bug that
// would corrupt frames silently.
func Register(name string, sample any) {
	t := reflect.TypeOf(sample)
	if t == nil {
		panic("transport: Register with nil sample")
	}
	registry.Lock()
	defer registry.Unlock()
	if prev, ok := registry.byName[name]; ok {
		panic(fmt.Sprintf("transport: payload name %q registered twice (%v, %v)", name, prev, t))
	}
	if prev, ok := registry.byType[t]; ok {
		panic(fmt.Sprintf("transport: payload type %v registered twice (%q, %q)", t, prev, name))
	}
	registry.byName[name] = t
	registry.byType[t] = name
}

// RegisteredNames returns the sorted names of every registered payload
// type — the table a coordinator ships in its handshake.
func RegisteredNames() []string {
	registry.Lock()
	defer registry.Unlock()
	names := make([]string, 0, len(registry.byName))
	for name := range registry.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Codec encodes and decodes payload values against a fixed (id -> name)
// table. Instances are safe for concurrent use once constructed.
type Codec struct {
	names []string
	types []reflect.Type
	idOf  map[reflect.Type]int
}

// NewCodec builds a codec over the process's full registry, ids assigned
// in sorted-name order.
func NewCodec() *Codec {
	c, err := NewCodecFor(RegisteredNames())
	if err != nil {
		panic(err) // unreachable: the table came from our own registry
	}
	return c
}

// NewCodecFor builds a codec over an explicit name table (the handshake
// path: a worker adopts the coordinator's table). Every name must be
// registered in this process; unknown names mean the two binaries were
// built from diverged sources.
func NewCodecFor(names []string) (*Codec, error) {
	registry.Lock()
	defer registry.Unlock()
	c := &Codec{
		names: append([]string(nil), names...),
		types: make([]reflect.Type, len(names)),
		idOf:  make(map[reflect.Type]int, len(names)),
	}
	for i, name := range names {
		t, ok := registry.byName[name]
		if !ok {
			return nil, fmt.Errorf("transport: peer table names unknown payload type %q (binaries out of sync?)", name)
		}
		c.types[i] = t
		c.idOf[t] = i
	}
	return c, nil
}

// Table returns the codec's name table in id order.
func (c *Codec) Table() []string { return append([]string(nil), c.names...) }

// Encode appends the self-describing encoding of v to buf: a uvarint type
// id followed by the structural body.
func (c *Codec) Encode(buf []byte, v any) ([]byte, error) {
	t := reflect.TypeOf(v)
	id, ok := c.idOf[t]
	if !ok {
		return nil, fmt.Errorf("transport: payload type %v not registered (missing transport.Register?)", t)
	}
	buf = binary.AppendUvarint(buf, uint64(id))
	return encodeValue(buf, reflect.ValueOf(v))
}

// Decode decodes one payload value from data, rejecting trailing bytes —
// a frame must contain exactly one value.
func (c *Codec) Decode(data []byte) (any, error) {
	v, rest, err := c.DecodePrefix(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after payload", len(rest))
	}
	return v, nil
}

// DecodePrefix decodes one payload value from the front of data and
// returns the remainder (the record envelope packs several payloads into
// one frame).
func (c *Codec) DecodePrefix(data []byte) (any, []byte, error) {
	id, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("transport: bad payload type id")
	}
	if id >= uint64(len(c.types)) {
		return nil, nil, fmt.Errorf("transport: payload type id %d outside table (%d types)", id, len(c.types))
	}
	data = data[n:]
	t := c.types[id]
	pv := reflect.New(t)
	rest, err := decodeValue(data, pv.Elem())
	if err != nil {
		return nil, nil, fmt.Errorf("transport: decoding %s: %w", c.names[id], err)
	}
	return pv.Elem().Interface(), rest, nil
}

// ---- structural encoding ----
//
// Kinds covered: bool, all int/uint widths, float64, string, []byte (fast
// path), slices, fixed arrays, maps with int-like or string keys (sorted),
// pointers (nil flag + pointee), and structs (exported fields in
// declaration order; unexported fields are rejected at encode time so a
// type that would silently lose state cannot be shipped).

func encodeValue(buf []byte, v reflect.Value) ([]byte, error) {
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.AppendVarint(buf, v.Int()), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return binary.AppendUvarint(buf, v.Uint()), nil
	case reflect.Float64, reflect.Float32:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float())), nil
	case reflect.String:
		s := v.String()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...), nil
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Uint8 {
			b := v.Bytes()
			buf = binary.AppendUvarint(buf, uint64(len(b)))
			return append(buf, b...), nil
		}
		buf = binary.AppendUvarint(buf, uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			var err error
			if buf, err = encodeValue(buf, v.Index(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			var err error
			if buf, err = encodeValue(buf, v.Index(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case reflect.Map:
		keys := v.MapKeys()
		switch v.Type().Key().Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			sort.Slice(keys, func(i, j int) bool { return keys[i].Int() < keys[j].Int() })
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			sort.Slice(keys, func(i, j int) bool { return keys[i].Uint() < keys[j].Uint() })
		case reflect.String:
			sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
		default:
			return nil, fmt.Errorf("transport: unsupported map key kind %v", v.Type().Key().Kind())
		}
		buf = binary.AppendUvarint(buf, uint64(len(keys)))
		for _, k := range keys {
			var err error
			if buf, err = encodeValue(buf, k); err != nil {
				return nil, err
			}
			if buf, err = encodeValue(buf, v.MapIndex(k)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case reflect.Pointer:
		if v.IsNil() {
			return append(buf, 0), nil
		}
		return encodeValue(append(buf, 1), v.Elem())
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				return nil, fmt.Errorf("transport: %v has unexported field %s; payload types must be fully exported", t, t.Field(i).Name)
			}
			var err error
			if buf, err = encodeValue(buf, v.Field(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("transport: unsupported kind %v", v.Kind())
	}
}

func decodeValue(data []byte, v reflect.Value) ([]byte, error) {
	switch v.Kind() {
	case reflect.Bool:
		if len(data) < 1 {
			return nil, errTruncated
		}
		switch data[0] {
		case 0:
			v.SetBool(false)
		case 1:
			v.SetBool(true)
		default:
			return nil, fmt.Errorf("bad bool byte %d", data[0])
		}
		return data[1:], nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		x, n := binary.Varint(data)
		if n <= 0 {
			return nil, errTruncated
		}
		if v.OverflowInt(x) {
			return nil, fmt.Errorf("int overflow for %v: %d", v.Type(), x)
		}
		v.SetInt(x)
		return data[n:], nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		x, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errTruncated
		}
		if v.OverflowUint(x) {
			return nil, fmt.Errorf("uint overflow for %v: %d", v.Type(), x)
		}
		v.SetUint(x)
		return data[n:], nil
	case reflect.Float64, reflect.Float32:
		if len(data) < 8 {
			return nil, errTruncated
		}
		v.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(data)))
		return data[8:], nil
	case reflect.String:
		l, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < l {
			return nil, errTruncated
		}
		v.SetString(string(data[n : n+int(l)]))
		return data[n+int(l):], nil
	case reflect.Slice:
		l, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errTruncated
		}
		data = data[n:]
		if v.Type().Elem().Kind() == reflect.Uint8 {
			if uint64(len(data)) < l {
				return nil, errTruncated
			}
			if l == 0 {
				v.SetZero() // nil slice: re-encoding must reproduce the bytes
				return data, nil
			}
			v.SetBytes(append([]byte(nil), data[:l]...))
			return data[l:], nil
		}
		// Each element costs at least one byte; an announced length beyond
		// that bound is a corrupt or hostile frame, not a big value.
		if l > uint64(len(data)) {
			return nil, fmt.Errorf("slice length %d exceeds remaining %d bytes", l, len(data))
		}
		if l == 0 {
			v.SetZero()
			return data, nil
		}
		s := reflect.MakeSlice(v.Type(), int(l), int(l))
		for i := 0; i < int(l); i++ {
			var err error
			if data, err = decodeValue(data, s.Index(i)); err != nil {
				return nil, err
			}
		}
		v.Set(s)
		return data, nil
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			var err error
			if data, err = decodeValue(data, v.Index(i)); err != nil {
				return nil, err
			}
		}
		return data, nil
	case reflect.Map:
		l, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errTruncated
		}
		data = data[n:]
		if l > uint64(len(data)) {
			return nil, fmt.Errorf("map length %d exceeds remaining %d bytes", l, len(data))
		}
		if l == 0 {
			v.SetZero()
			return data, nil
		}
		m := reflect.MakeMapWithSize(v.Type(), int(l))
		for i := 0; i < int(l); i++ {
			k := reflect.New(v.Type().Key()).Elem()
			e := reflect.New(v.Type().Elem()).Elem()
			var err error
			if data, err = decodeValue(data, k); err != nil {
				return nil, err
			}
			if data, err = decodeValue(data, e); err != nil {
				return nil, err
			}
			m.SetMapIndex(k, e)
		}
		v.Set(m)
		return data, nil
	case reflect.Pointer:
		if len(data) < 1 {
			return nil, errTruncated
		}
		flag := data[0]
		data = data[1:]
		switch flag {
		case 0:
			v.SetZero()
			return data, nil
		case 1:
			p := reflect.New(v.Type().Elem())
			rest, err := decodeValue(data, p.Elem())
			if err != nil {
				return nil, err
			}
			v.Set(p)
			return rest, nil
		default:
			return nil, fmt.Errorf("bad pointer flag %d", flag)
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				return nil, fmt.Errorf("%v has unexported field %s", t, t.Field(i).Name)
			}
			var err error
			if data, err = decodeValue(data, v.Field(i)); err != nil {
				return nil, err
			}
		}
		return data, nil
	default:
		return nil, fmt.Errorf("unsupported kind %v", v.Kind())
	}
}

var errTruncated = fmt.Errorf("truncated value")
