package transport

import (
	"reflect"
	"testing"
)

// TestWelcomeRoundTrip covers the v2 handshake body: the coordinator's
// clock stamp and telemetry flag must survive the encode/decode round trip
// alongside the party geometry and codec table.
func TestWelcomeRoundTrip(t *testing.T) {
	for _, w := range []welcome{
		{Version: ProtocolVersion, Parties: 4, Self: 2, ClockNs: 1_700_000_000_123_456_789, Telemetry: true,
			Table: []string{"mpc.Int", "mpc.Ints"}},
		{Version: ProtocolVersion, Parties: 2, Self: 1, ClockNs: -5, Telemetry: false, Table: []string{}},
	} {
		got, err := decodeWelcome(encodeWelcome(w))
		if err != nil {
			t.Fatalf("decode(%+v): %v", w, err)
		}
		if got.Version != w.Version || got.Parties != w.Parties || got.Self != w.Self ||
			got.ClockNs != w.ClockNs || got.Telemetry != w.Telemetry ||
			!reflect.DeepEqual(got.Table, w.Table) {
			t.Errorf("welcome round trip: got %+v, want %+v", got, w)
		}
	}
}

// TestLocalStatsCountRecords checks the in-process transport's advisory
// accounting: each Exchange measures the logical frame its records would
// occupy on a wire, so `-transport local` reports a comparable wireBytes
// instead of 0.
func TestLocalStatsCountRecords(t *testing.T) {
	l := NewLocal()
	recs := []Record{
		{Machine: 0, Ops: 10, Started: true},
		{Machine: 1, Ops: 20, Started: true},
	}
	meta := RoundMeta{Round: 0, Name: "candidates", Phase: "candidates"}
	out, err := l.Exchange(meta, [][]int{{0, 1}}, recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, recs) {
		t.Fatalf("Local.Exchange must be the identity on records: %+v", out)
	}

	st := l.Stats()
	if st.Exchanges != 1 || st.Frames != 1 {
		t.Errorf("after one exchange: %+v", st)
	}
	if st.BytesOut <= frameHeaderLen {
		t.Errorf("BytesOut = %d, want > header (%d): record body not counted", st.BytesOut, frameHeaderLen)
	}
	// A second, bigger exchange adds strictly more than the first.
	first := st.BytesOut
	big := make([]Record, 16)
	for i := range big {
		big[i] = Record{Machine: i, Ops: int64(i), Started: true}
	}
	if _, err := l.Exchange(RoundMeta{Round: 1, Name: "candidates", Phase: "candidates"}, [][]int{nil}, big, nil); err != nil {
		t.Fatal(err)
	}
	st = l.Stats()
	if st.Exchanges != 2 || st.BytesOut-first <= first {
		t.Errorf("16-record exchange added %d bytes, want more than the 2-record one (%d)", st.BytesOut-first, first)
	}
	if st.BytesIn != 0 || st.PeersLost != 0 || st.Reassigns != 0 {
		t.Errorf("single-party transport grew multi-party counters: %+v", st)
	}
}
