// Package lcs computes longest common subsequences of general strings.
// LCS is the dual problem of edit distance in the paper's framing
// (Section 1: "edit distance and longest common subsequence (LCS) ... are
// considered as dual problems"), and the indel-only edit distance equals
// |a| + |b| - 2·LCS(a, b).
//
// Three algorithms are provided: the classic quadratic DP (space
// efficient), Hunt-Szymanski's O((r + n) log n) sparse algorithm (r =
// number of matching pairs — near-linear on skewed or distinct-character
// inputs), and Hirschberg recovery of one optimal matching.
package lcs

import (
	"sort"

	"mpcdist/internal/stats"
)

// Length returns |LCS(a, b)| with the classic DP: O(|a|·|b|) time,
// O(min) space. ops is charged per DP cell.
func Length(a, b []byte, ops *stats.Ops) int {
	if len(b) > len(a) {
		a, b = b, a
	}
	m := len(b)
	if m == 0 {
		return 0
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= len(a); i++ {
		ai := a[i-1]
		for j := 1; j <= m; j++ {
			switch {
			case ai == b[j-1]:
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	ops.Add(int64(len(a)) * int64(m))
	return prev[m]
}

// HuntSzymanski returns |LCS(a, b)| in O((r + n + sigma) log n) time where
// r is the number of (i, j) pairs with a[i] == b[j]. For strings with few
// repeated characters r is near-linear and this vastly outperforms the DP.
func HuntSzymanski(a, b []byte, ops *stats.Ops) int {
	// occ[c] = positions of c in b, ascending.
	var occ [256][]int32
	for j, c := range b {
		occ[c] = append(occ[c], int32(j))
	}
	// Reduce to LIS over the concatenation, per a-position, of b-positions
	// in DESCENDING order (so at most one match per a-position counts).
	tails := make([]int32, 0, 64)
	var work int64
	for _, c := range a {
		ps := occ[c]
		for k := len(ps) - 1; k >= 0; k-- {
			v := ps[k]
			// Strictly increasing LIS: find first tail >= v.
			idx := sort.Search(len(tails), func(x int) bool { return tails[x] >= v })
			if idx == len(tails) {
				tails = append(tails, v)
			} else {
				tails[idx] = v
			}
			work++
		}
	}
	ops.Add(work + int64(len(a)) + int64(len(b)))
	return len(tails)
}

// Pair is one matched column of an LCS alignment: a[I] == b[J].
type Pair struct {
	I, J int
}

// Pairs returns one optimal LCS matching as index pairs, increasing in
// both coordinates, using Hirschberg's linear-space divide and conquer.
func Pairs(a, b []byte) []Pair {
	out := make([]Pair, 0, 16)
	hirschbergLCS(a, b, 0, 0, &out)
	return out
}

// lcsRow returns the last row of LCS lengths between a and prefixes of b.
func lcsRow(a, b []byte) []int {
	row := make([]int, len(b)+1)
	prev := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		copy(prev, row)
		ai := a[i-1]
		for j := 1; j <= len(b); j++ {
			switch {
			case ai == b[j-1]:
				row[j] = prev[j-1] + 1
			case prev[j] >= row[j-1]:
				row[j] = prev[j]
			default:
				row[j] = row[j-1]
			}
		}
	}
	return row
}

func reverseBytes(s []byte) []byte {
	r := make([]byte, len(s))
	for i, c := range s {
		r[len(s)-1-i] = c
	}
	return r
}

func hirschbergLCS(a, b []byte, aOff, bOff int, out *[]Pair) {
	if len(a) == 0 || len(b) == 0 {
		return
	}
	if len(a) == 1 {
		for j, c := range b {
			if c == a[0] {
				*out = append(*out, Pair{I: aOff, J: bOff + j})
				return
			}
		}
		return
	}
	mid := len(a) / 2
	fwd := lcsRow(a[:mid], b)
	rev := lcsRow(reverseBytes(a[mid:]), reverseBytes(b))
	split, best := 0, -1
	for j := 0; j <= len(b); j++ {
		if v := fwd[j] + rev[len(b)-j]; v > best {
			best, split = v, j
		}
	}
	hirschbergLCS(a[:mid], b[:split], aOff, bOff, out)
	hirschbergLCS(a[mid:], b[split:], aOff+mid, bOff+split, out)
}

// IndelDistance returns the insert/delete-only edit distance
// |a| + |b| - 2·LCS(a, b), the LCS-dual metric.
func IndelDistance(a, b []byte, ops *stats.Ops) int {
	return len(a) + len(b) - 2*HuntSzymanski(a, b, ops)
}

// LengthOf is Length over any comparable alphabet (e.g. line hashes in a
// diff tool), using the sparse Hunt-Szymanski reduction with a map-based
// occurrence index.
func LengthOf[T comparable](a, b []T, ops *stats.Ops) int {
	occ := make(map[T][]int32, len(b))
	for j, c := range b {
		occ[c] = append(occ[c], int32(j))
	}
	tails := make([]int32, 0, 64)
	var work int64
	for _, c := range a {
		ps := occ[c]
		for k := len(ps) - 1; k >= 0; k-- {
			v := ps[k]
			idx := sort.Search(len(tails), func(x int) bool { return tails[x] >= v })
			if idx == len(tails) {
				tails = append(tails, v)
			} else {
				tails[idx] = v
			}
			work++
		}
	}
	ops.Add(work + int64(len(a)) + int64(len(b)))
	return len(tails)
}

// PairsOf returns one optimal LCS matching over any comparable alphabet,
// increasing in both coordinates. It runs the Hunt-Szymanski LIS with
// predecessor tracking, O((r + n) log n) time and O(r) space.
func PairsOf[T comparable](a, b []T) []Pair {
	occ := make(map[T][]int32, len(b))
	for j, c := range b {
		occ[c] = append(occ[c], int32(j))
	}
	type node struct {
		i, j int32
		prev int32 // index into nodes, -1 for none
	}
	var nodes []node
	tails := make([]int32, 0, 64)    // b-positions
	tailNode := make([]int32, 0, 64) // node index per pile
	for i, c := range a {
		ps := occ[c]
		for k := len(ps) - 1; k >= 0; k-- {
			v := ps[k]
			idx := sort.Search(len(tails), func(x int) bool { return tails[x] >= v })
			prev := int32(-1)
			if idx > 0 {
				prev = tailNode[idx-1]
			}
			nodes = append(nodes, node{i: int32(i), j: v, prev: prev})
			if idx == len(tails) {
				tails = append(tails, v)
				tailNode = append(tailNode, int32(len(nodes)-1))
			} else {
				tails[idx] = v
				tailNode[idx] = int32(len(nodes) - 1)
			}
		}
	}
	if len(tails) == 0 {
		return nil
	}
	out := make([]Pair, len(tails))
	at := tailNode[len(tailNode)-1]
	for k := len(out) - 1; k >= 0; k-- {
		out[k] = Pair{I: int(nodes[at].i), J: int(nodes[at].j)}
		at = nodes[at].prev
	}
	return out
}
