package lcs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcdist/internal/editdist"
	"mpcdist/internal/lis"
	"mpcdist/internal/stats"
	"mpcdist/internal/workload"
)

// naiveLCS is the independent full-matrix reference.
func naiveLCS(a, b []byte) int {
	d := make([][]int, len(a)+1)
	for i := range d {
		d[i] = make([]int, len(b)+1)
	}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				d[i][j] = d[i-1][j-1] + 1
			} else if d[i-1][j] > d[i][j-1] {
				d[i][j] = d[i-1][j]
			} else {
				d[i][j] = d[i][j-1]
			}
		}
	}
	return d[len(a)][len(b)]
}

func TestLengthKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 0},
		{"", "abc", 0},
		{"abcde", "ace", 3},
		{"AGGTAB", "GXTXAYB", 4},
		{"abc", "abc", 3},
		{"abc", "cba", 1},
	}
	for _, c := range cases {
		if got := Length([]byte(c.a), []byte(c.b), nil); got != c.want {
			t.Errorf("Length(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := HuntSzymanski([]byte(c.a), []byte(c.b), nil); got != c.want {
			t.Errorf("HuntSzymanski(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAllAlgorithmsAgreeQuick(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > 100 {
			a = a[:100]
		}
		if len(b) > 100 {
			b = b[:100]
		}
		want := naiveLCS(a, b)
		return Length(a, b, nil) == want &&
			HuntSzymanski(a, b, nil) == want &&
			len(Pairs(a, b)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPairsAreValidMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 100; trial++ {
		a := workload.RandomString(rng, rng.Intn(80), 3)
		b := workload.RandomString(rng, rng.Intn(80), 3)
		ps := Pairs(a, b)
		if len(ps) != Length(a, b, nil) {
			t.Fatalf("Pairs length %d != LCS %d", len(ps), Length(a, b, nil))
		}
		for k, p := range ps {
			if a[p.I] != b[p.J] {
				t.Fatalf("pair %d not a match", k)
			}
			if k > 0 && (p.I <= ps[k-1].I || p.J <= ps[k-1].J) {
				t.Fatalf("pairs not strictly increasing at %d: %v", k, ps)
			}
		}
	}
}

func TestDualityWithEditDistance(t *testing.T) {
	// max(n,m) - LCS <= ed <= n + m - 2 LCS (indel distance).
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 100; trial++ {
		a := workload.RandomString(rng, rng.Intn(60), 4)
		b := workload.RandomString(rng, rng.Intn(60), 4)
		l := Length(a, b, nil)
		ed := editdist.Distance(a, b, nil)
		hi := IndelDistance(a, b, nil)
		lo := max(len(a), len(b)) - l
		if ed < lo || ed > hi {
			t.Fatalf("ed %d outside [%d, %d] (lcs=%d)", ed, lo, hi, l)
		}
		if hi != len(a)+len(b)-2*l {
			t.Fatalf("IndelDistance inconsistent")
		}
	}
}

func TestDistinctCharactersMatchLISReduction(t *testing.T) {
	// For distinct characters, LCS via Hunt-Szymanski must equal the LIS
	// reduction in the lis package.
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(100)
		pa := rng.Perm(256)[:n]
		pb := rng.Perm(256)[:rng.Intn(200)+1]
		ba := make([]byte, len(pa))
		bb := make([]byte, len(pb))
		ia := make([]int, len(pa))
		ib := make([]int, len(pb))
		for i, v := range pa {
			ba[i] = byte(v)
			ia[i] = v
		}
		for i, v := range pb {
			bb[i] = byte(v)
			ib[i] = v
		}
		if got, want := HuntSzymanski(ba, bb, nil), lis.LCSDistinct(ia, ib); got != want {
			t.Fatalf("HS %d != LIS reduction %d", got, want)
		}
	}
}

func TestHuntSzymanskiSparseFast(t *testing.T) {
	// Distinct characters: r = n matches; ops must be near-linear, far
	// below the DP's quadratic cells.
	var hsOps, dpOps stats.Ops
	a := make([]byte, 200)
	b := make([]byte, 200)
	for i := range a {
		a[i] = byte(i)
		b[i] = byte((i * 37) % 200)
	}
	HuntSzymanski(a, b, &hsOps)
	Length(a, b, &dpOps)
	if hsOps.Count() >= dpOps.Count()/10 {
		t.Errorf("HS ops %d not well below DP ops %d", hsOps.Count(), dpOps.Count())
	}
}

func TestGenericMatchesByteVersions(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 120; trial++ {
		a := workload.RandomString(rng, rng.Intn(80), 4)
		b := workload.RandomString(rng, rng.Intn(80), 4)
		ia := make([]int, len(a))
		ib := make([]int, len(b))
		for i, c := range a {
			ia[i] = int(c)
		}
		for i, c := range b {
			ib[i] = int(c)
		}
		want := Length(a, b, nil)
		if got := LengthOf(ia, ib, nil); got != want {
			t.Fatalf("LengthOf = %d, want %d", got, want)
		}
		ps := PairsOf(ia, ib)
		if len(ps) != want {
			t.Fatalf("PairsOf length %d, want %d", len(ps), want)
		}
		for k, p := range ps {
			if ia[p.I] != ib[p.J] {
				t.Fatalf("pair %d mismatch", k)
			}
			if k > 0 && (p.I <= ps[k-1].I || p.J <= ps[k-1].J) {
				t.Fatalf("pairs not increasing")
			}
		}
	}
}

func TestPairsOfStrings(t *testing.T) {
	a := []string{"alpha", "beta", "gamma", "delta"}
	b := []string{"beta", "alpha", "gamma", "epsilon", "delta"}
	if got := LengthOf(a, b, nil); got != 3 {
		t.Errorf("string-alphabet LCS = %d, want 3 (beta|alpha, gamma, delta)", got)
	}
}
