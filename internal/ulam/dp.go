package ulam

import (
	"sort"

	"mpcdist/internal/stats"
)

// This file holds the match-point dynamic program shared by Exact and
// Local.
//
// Points are processed in increasing i. A transition l -> k is valid when
// i_l < i_k and j_l < j_k and costs max(i_k-i_l-1, j_k-j_l-1). Splitting on
// which side realizes the max, with diag = i - j:
//
//	case A (diag_l <= diag_k): cost = i_k - i_l - 1, and the conditions
//	  reduce to { j_l < j_k, diag_l <= diag_k } (these imply i_l < i_k);
//	case B (diag_l >  diag_k): cost = j_k - j_l - 1, and the conditions
//	  reduce to { i_l < i_k, diag_l >  diag_k } (these imply j_l < j_k).
//
// The boundary costs are folded into two virtual points. For the global
// distance, start (-1,-1) and end (|a|,|b|) with their natural diagonals
// make case A/B reproduce max(i_k, j_k) and max(|a|-1-i, |b|-1-j)
// respectively. For the local variant, giving the start diagonal -inf and
// the end diagonal +inf forces case A on both boundaries, charging only the
// block side (i), which is exactly lulam's boundary cost.
//
// runDP computes d for every point with a CDQ divide and conquer over the
// i-order plus two Fenwick trees keyed by compressed diagonal, in
// O(m log^2 m). exactQuadratic is the O(m^2) reference.

const costInf = int64(1) << 60

// minBIT is a Fenwick tree over diagonal ranks storing (value, point index)
// pairs with prefix-minimum queries and touched-slot reset.
type minBIT struct {
	n       int
	val     []int64
	idx     []int32
	touched []int
}

func newMinBIT(n int) *minBIT {
	b := &minBIT{n: n, val: make([]int64, n+1), idx: make([]int32, n+1)}
	for i := range b.val {
		b.val[i] = costInf
		b.idx[i] = -1
	}
	return b
}

func (b *minBIT) update(i int, v int64, id int32) {
	for i++; i <= b.n; i += i & (-i) {
		if b.val[i] == costInf {
			b.touched = append(b.touched, i)
		}
		if v < b.val[i] {
			b.val[i] = v
			b.idx[i] = id
		}
	}
}

func (b *minBIT) prefixMin(i int) (int64, int32) {
	best, id := costInf, int32(-1)
	if i >= b.n {
		i = b.n - 1
	}
	for i++; i > 0; i -= i & (-i) {
		if b.val[i] < best {
			best, id = b.val[i], b.idx[i]
		}
	}
	return best, id
}

func (b *minBIT) reset() {
	for _, i := range b.touched {
		b.val[i] = costInf
		b.idx[i] = -1
	}
	b.touched = b.touched[:0]
}

// runDP fills in d and parent for every point. pts must be sorted by
// increasing i with pts[0] the virtual start (d = 0) and pts[len-1] the
// virtual end; all other d values must be costInf.
// QuadCutoff is the point count below which the quadratic DP is used in
// place of the CDQ machinery: it does more elementary operations but is
// faster in wall-clock terms below the measured crossover (~1024 points;
// see BenchmarkDPCrossover). Experiments that measure the *asymptotic
// algorithm's* operation counts (the paper's Õ(n) total-work claim) set
// it to 0 to force the O(m log² m) path; see harness.UlamScaling. Not
// safe to change while computations are in flight.
var QuadCutoff = 768

func runDP(pts []point, ops *stats.Ops) {
	n := len(pts)
	if n <= 1 {
		return
	}
	if n <= QuadCutoff {
		exactQuadratic(pts, ops)
		return
	}
	// Compress diagonals.
	diags := make([]int64, n)
	for k := range pts {
		diags[k] = pts[k].diag
	}
	sort.Slice(diags, func(x, y int) bool { return diags[x] < diags[y] })
	uniq := diags[:0]
	for _, v := range diags {
		if len(uniq) == 0 || uniq[len(uniq)-1] != v {
			uniq = append(uniq, v)
		}
	}
	rank := func(v int64) int {
		return sort.Search(len(uniq), func(x int) bool { return uniq[x] >= v })
	}
	nd := len(uniq)
	bitA := newMinBIT(nd) // prefix over diag rank: min d - i  (case A)
	bitB := newMinBIT(nd) // prefix over reversed rank: min d - j (case B)

	var merge func(lo, mid, hi int)
	merge = func(lo, mid, hi int) {
		left := sortByJ(pts, lo, mid)
		right := sortByJ(pts, mid, hi)
		li := 0
		var work int64
		for _, rk := range right {
			k := &pts[rk]
			for li < len(left) && pts[left[li]].j < k.j {
				l := &pts[left[li]]
				if l.d < costInf {
					r := rank(l.diag)
					bitA.update(r, l.d-int64(l.i), int32(left[li]))
					bitB.update(nd-1-r, l.d-int64(l.j), int32(left[li]))
				}
				li++
				work++
			}
			rκ := rank(k.diag)
			if v, id := bitA.prefixMin(rκ); v < costInf {
				if cand := v + int64(k.i) - 1; cand < k.d {
					k.d = cand
					k.parent = id
				}
			}
			// case B: diag_l > diag_k  <=>  reversed rank < nd-1-rκ.
			if v, id := bitB.prefixMin(nd - 2 - rκ); v < costInf {
				if cand := v + int64(k.j) - 1; cand < k.d {
					k.d = cand
					k.parent = id
				}
			}
			work += 2
		}
		bitA.reset()
		bitB.reset()
		ops.Add(work)
	}

	var solve func(lo, hi int)
	solve = func(lo, hi int) {
		if hi-lo <= 1 {
			return
		}
		mid := (lo + hi) / 2
		solve(lo, mid)
		merge(lo, mid, hi)
		solve(mid, hi)
	}
	solve(0, n)
}

// exactQuadratic is the transparent O(m^2) reference DP used by tests and
// by small instances. It fills the same fields as runDP.
func exactQuadratic(pts []point, ops *stats.Ops) {
	var work int64
	for k := 1; k < len(pts); k++ {
		pk := &pts[k]
		for l := 0; l < k; l++ {
			pl := &pts[l]
			if pl.d >= costInf || pl.i >= pk.i || pl.j >= pk.j {
				continue
			}
			var gap int64
			if pl.diag <= pk.diag {
				gap = int64(pk.i - pl.i - 1)
			} else {
				gap = int64(pk.j - pl.j - 1)
			}
			if cand := pl.d + gap; cand < pk.d {
				pk.d = cand
				pk.parent = int32(l)
			}
		}
		work += int64(k)
	}
	ops.Add(work)
}

// ExactQuadratic computes the Ulam distance with the quadratic reference
// DP. Exported for tests and ablation benchmarks.
func ExactQuadratic(a, b []int, ops *stats.Ops) int {
	pts := buildPoints(a, b, false)
	exactQuadratic(pts, ops)
	return int(pts[len(pts)-1].d)
}

// LocalQuadratic computes the local Ulam distance with the quadratic
// reference DP. Exported for tests and ablation benchmarks.
func LocalQuadratic(block, sbar []int, ops *stats.Ops) (int, Window) {
	pts := buildPoints(block, sbar, true)
	exactQuadratic(pts, ops)
	end := pts[len(pts)-1]
	d := int(end.d)
	path := make([]int, 0, 8)
	for at := end.parent; at > 0; at = pts[at].parent {
		path = append(path, int(at))
	}
	if len(path) == 0 {
		return d, Window{Gamma: 0, Kappa: -1}
	}
	first := pts[path[len(path)-1]]
	last := pts[path[0]]
	gamma := first.j - first.i
	if gamma < 0 {
		gamma = 0
	}
	kappa := last.j + (len(block) - 1 - last.i)
	if kappa > len(sbar)-1 {
		kappa = len(sbar) - 1
	}
	return d, Window{Gamma: gamma, Kappa: kappa}
}
