package ulam

import "mpcdist/internal/stats"

// Pair records that block character at block-relative position P occurs at
// position Q in sbar. Since sbar has no repeated characters, these pairs
// are the only information about sbar a machine needs (Section 3.1): both
// the local Ulam distance and the Ulam distance between the block and any
// window of sbar are functions of the pairs alone.
type Pair struct {
	P, Q int
}

// PairsOf lists the (block position, sbar position) pairs for characters of
// block that occur in sbar, ordered by increasing P.
func PairsOf(block, sbar []int) []Pair {
	pos := make(map[int]int, len(sbar))
	for q, v := range sbar {
		pos[v] = q
	}
	var out []Pair
	for p, v := range block {
		if q, ok := pos[v]; ok {
			out = append(out, Pair{P: p, Q: q})
		}
	}
	return out
}

// pointsFromPairs builds DP points for ulam(block, sbar[sp..ep]) from the
// subset of pairs whose sbar position lies in the window.
func pointsFromPairs(blockLen int, pairs []Pair, sp, ep int, local bool) []point {
	winLen := ep - sp + 1
	if winLen < 0 {
		winLen = 0
	}
	pts := make([]point, 0, len(pairs)+2)
	start := point{i: -1, j: -1, diag: 0, parent: -1}
	end := point{i: blockLen, j: winLen, diag: int64(blockLen - winLen), parent: -1}
	if local {
		start.diag = -diagInf
		end.diag = diagInf
	}
	pts = append(pts, start)
	for _, pr := range pairs {
		if pr.Q >= sp && pr.Q <= ep {
			j := pr.Q - sp
			pts = append(pts, point{i: pr.P, j: j, diag: int64(pr.P - j)})
		}
	}
	pts = append(pts, end)
	for k := range pts {
		pts[k].d = costInf
		pts[k].parent = -1
	}
	pts[0].d = 0
	return pts
}

// WindowDist returns ulam(block, sbar[sp..ep]) given only the block length
// and the match pairs; sp > ep denotes the empty window (distance
// blockLen). Equivalent to Exact(block, sbar[sp:ep+1]) but without access
// to the strings.
func WindowDist(blockLen int, pairs []Pair, sp, ep int, ops *stats.Ops) int {
	if sp > ep {
		return blockLen
	}
	pts := pointsFromPairs(blockLen, pairs, sp, ep, false)
	runDP(pts, ops)
	return int(pts[len(pts)-1].d)
}

// LocalPairs returns the local Ulam distance of the block against all of
// sbar (length sbarLen) given only the match pairs, together with a window
// attaining it. Equivalent to Local(block, sbar) without the strings.
func LocalPairs(blockLen int, pairs []Pair, sbarLen int, ops *stats.Ops) (int, Window) {
	pts := pointsFromPairs(blockLen, pairs, 0, sbarLen-1, true)
	runDP(pts, ops)
	end := &pts[len(pts)-1]
	d := int(end.d)
	path := make([]int, 0, 8)
	for at := end.parent; at > 0; at = pts[at].parent {
		path = append(path, int(at))
	}
	if len(path) == 0 {
		return d, Window{Gamma: 0, Kappa: -1}
	}
	first := pts[path[len(path)-1]]
	last := pts[path[0]]
	gamma := first.j - first.i
	if gamma < 0 {
		gamma = 0
	}
	kappa := last.j + (blockLen - 1 - last.i)
	if kappa > sbarLen-1 {
		kappa = sbarLen - 1
	}
	return d, Window{Gamma: gamma, Kappa: kappa}
}
