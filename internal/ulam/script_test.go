package ulam

import (
	"math/rand"
	"testing"

	"mpcdist/internal/editdist"
)

func TestScriptOptimalAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 200; trial++ {
		u := 40
		a := randDistinct(rng, rng.Intn(20), u)
		b := randDistinct(rng, rng.Intn(20), u)
		script := Script(a, b, nil)
		if err := editdist.Validate(a, b, script); err != nil {
			t.Fatalf("invalid script for %v -> %v: %v", a, b, err)
		}
		if got, want := editdist.Cost(script), Exact(a, b, nil); got != want {
			t.Fatalf("script cost %d, want %d (a=%v b=%v)", got, want, a, b)
		}
	}
}

func TestScriptMatchesAreEqualChars(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	a := randDistinct(rng, 30, 60)
	b := randDistinct(rng, 30, 60)
	for _, op := range Script(a, b, nil) {
		if op.Kind == editdist.Match && a[op.APos] != b[op.BPos] {
			t.Fatalf("match op at (%d,%d) joins unequal chars", op.APos, op.BPos)
		}
	}
}

func TestScriptIdentity(t *testing.T) {
	a := []int{5, 3, 9}
	script := Script(a, a, nil)
	if editdist.Cost(script) != 0 {
		t.Errorf("identity script has cost %d", editdist.Cost(script))
	}
	if len(script) != 3 {
		t.Errorf("identity script has %d ops, want 3 matches", len(script))
	}
}

func TestScriptEmpty(t *testing.T) {
	script := Script(nil, []int{1, 2}, nil)
	if editdist.Cost(script) != 2 {
		t.Errorf("empty->2: cost %d", editdist.Cost(script))
	}
	if err := editdist.Validate(nil, []int{1, 2}, script); err != nil {
		t.Error(err)
	}
	script = Script([]int{1, 2}, nil, nil)
	if editdist.Cost(script) != 2 {
		t.Errorf("2->empty: cost %d", editdist.Cost(script))
	}
}

func TestScriptLargerRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	a := rng.Perm(400)
	b := rng.Perm(400)
	script := Script(a, b, nil)
	if err := editdist.Validate(a, b, script); err != nil {
		t.Fatal(err)
	}
	if got, want := editdist.Cost(script), Exact(a, b, nil); got != want {
		t.Fatalf("cost %d != exact %d", got, want)
	}
}
