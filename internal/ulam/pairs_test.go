package ulam

import (
	"math/rand"
	"testing"
)

func TestWindowDistMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		u := 30
		block := randDistinct(rng, 1+rng.Intn(10), u)
		sbar := randDistinct(rng, 1+rng.Intn(20), u)
		pairs := PairsOf(block, sbar)
		sp := rng.Intn(len(sbar))
		ep := sp + rng.Intn(len(sbar)-sp)
		want := Exact(block, sbar[sp:ep+1], nil)
		if got := WindowDist(len(block), pairs, sp, ep, nil); got != want {
			t.Fatalf("WindowDist(%v, sbar=%v, [%d,%d]) = %d, want %d",
				block, sbar, sp, ep, got, want)
		}
	}
}

func TestWindowDistEmptyWindow(t *testing.T) {
	if got := WindowDist(3, nil, 5, 4, nil); got != 3 {
		t.Errorf("empty window dist = %d, want 3", got)
	}
}

func TestLocalPairsMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 200; trial++ {
		u := 30
		block := randDistinct(rng, 1+rng.Intn(10), u)
		sbar := randDistinct(rng, rng.Intn(20), u)
		wantD, wantW := Local(block, sbar, nil)
		gotD, gotW := LocalPairs(len(block), PairsOf(block, sbar), len(sbar), nil)
		if gotD != wantD {
			t.Fatalf("LocalPairs = %d, want %d (block=%v sbar=%v)", gotD, wantD, block, sbar)
		}
		if gotW != wantW {
			t.Fatalf("LocalPairs window = %+v, want %+v", gotW, wantW)
		}
	}
}

func TestPairsOfOrderedByP(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	block := randDistinct(rng, 12, 40)
	sbar := randDistinct(rng, 25, 40)
	pairs := PairsOf(block, sbar)
	for k := 1; k < len(pairs); k++ {
		if pairs[k].P <= pairs[k-1].P {
			t.Fatalf("pairs not ordered by P: %v", pairs)
		}
	}
	for _, pr := range pairs {
		if block[pr.P] != sbar[pr.Q] {
			t.Fatalf("pair %+v does not match", pr)
		}
	}
}
