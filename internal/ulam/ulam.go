// Package ulam computes the Ulam distance — edit distance between strings
// without repeated characters, substitutions allowed — and the local Ulam
// distance used by the first round of the paper's MPC algorithm.
//
// The key structural fact (used throughout): in any optimal transformation
// of a into b, the unedited characters form a matching that is increasing
// in both strings, and between two consecutive matched pairs a gap holding
// p characters of a and q characters of b costs exactly max(p, q)
// (substitute min(p, q) of them, insert/delete the rest). Hence
//
//	ulam(a, b) = min over increasing matchings M of the summed gap costs,
//
// a dynamic program over the match points (i, j) with a[i] == b[j]. With
// distinct characters there are at most min(|a|, |b|) match points, and the
// DP runs in O(m log^2 m) with a divide-and-conquer Fenwick scheme
// (Exact / Local), or O(m^2) in the transparent reference implementation
// (exactQuadratic) that the fast path is property-tested against.
package ulam

import (
	"fmt"
	"sort"

	"mpcdist/internal/stats"
)

// CheckDistinct returns an error when s contains a repeated character.
// The Ulam routines require distinct characters within each input string.
func CheckDistinct(s []int) error {
	seen := make(map[int]int, len(s))
	for i, v := range s {
		if j, ok := seen[v]; ok {
			return fmt.Errorf("ulam: character %d repeats at positions %d and %d", v, j, i)
		}
		seen[v] = i
	}
	return nil
}

// point is a match point of the DP, including the two virtual endpoints.
type point struct {
	i, j   int   // coordinates; virtual start is (-1, -1), end is (|a|, |b|)
	diag   int64 // case-splitting key (see dp.go); sentinels for Local
	d      int64 // best cost of an alignment prefix ending at this match
	parent int32 // index of the predecessor realizing d, -1 if none
}

const diagInf = int64(1) << 40

// matchPoints lists the (i, j) pairs with a[i] == b[j], in increasing i
// (and, per distinctness, each i and each j appears at most once).
func matchPoints(a, b []int) []point {
	pos := make(map[int]int, len(b))
	for j, v := range b {
		pos[v] = j
	}
	pts := make([]point, 0, 16)
	for i, v := range a {
		if j, ok := pos[v]; ok {
			pts = append(pts, point{i: i, j: j, diag: int64(i - j)})
		}
	}
	return pts
}

// Exact returns the Ulam distance between a and b, which must each consist
// of distinct characters (they may share any subset of characters). ops is
// charged one unit per DP transition examined.
func Exact(a, b []int, ops *stats.Ops) int {
	pts := buildPoints(a, b, false)
	runDP(pts, ops)
	return int(pts[len(pts)-1].d)
}

// Window is a substring [Gamma, Kappa] of the second string (inclusive,
// 0-based). An empty window has Kappa = Gamma-1.
type Window struct {
	Gamma, Kappa int
}

// Len returns the number of characters in the window.
func (w Window) Len() int { return w.Kappa - w.Gamma + 1 }

// Local returns the local Ulam distance between block and sbar: the minimum
// Ulam distance between block and any (possibly empty) substring of sbar,
// together with a substring attaining it. Both inputs must have distinct
// characters. This is the lulam routine of Algorithm 1.
//
// Derivation (the paper's Appendix A is not part of the supplied text): an
// optimal local window may be assumed to begin and end at matched
// characters — trimming an unmatched boundary character of sbar never
// increases the cost — except for the zero-match window, whose optimum is
// the empty substring at cost |block|. So the same match-point DP applies
// with boundary costs charged only on the block side.
func Local(block, sbar []int, ops *stats.Ops) (int, Window) {
	pts := buildPoints(block, sbar, true)
	runDP(pts, ops)
	end := &pts[len(pts)-1]
	d := int(end.d)

	// Reconstruct the matched span to produce a concrete window.
	path := make([]int, 0, 8)
	for at := end.parent; at > 0; at = pts[at].parent {
		path = append(path, int(at))
	}
	if len(path) == 0 {
		// No real match used: the empty window.
		return d, Window{Gamma: 0, Kappa: -1}
	}
	first := pts[path[len(path)-1]]
	last := pts[path[0]]
	// Absorb boundary characters of sbar up to the block-side gap sizes;
	// this keeps the window's distance equal to d (cost is the max of the
	// two gap sides and the block side is the larger by construction).
	gamma := first.j - first.i
	if gamma < 0 {
		gamma = 0
	}
	kappa := last.j + (len(block) - 1 - last.i)
	if kappa > len(sbar)-1 {
		kappa = len(sbar) - 1
	}
	return d, Window{Gamma: gamma, Kappa: kappa}
}

// buildPoints assembles the match points plus virtual start/end points.
// When local is true the boundary costs are charged only on the first
// string (the block side), which is encoded by giving the virtual points
// sentinel diagonals (see package comment in dp.go).
func buildPoints(a, b []int, local bool) []point {
	m := matchPoints(a, b)
	pts := make([]point, 0, len(m)+2)
	start := point{i: -1, j: -1, diag: 0, parent: -1}
	end := point{i: len(a), j: len(b), diag: int64(len(a) - len(b)), parent: -1}
	if local {
		start.diag = -diagInf
		end.diag = diagInf
	}
	pts = append(pts, start)
	pts = append(pts, m...)
	pts = append(pts, end)
	for k := range pts {
		pts[k].d = costInf
		pts[k].parent = -1
	}
	pts[0].d = 0
	return pts
}

// Dist is a convenience wrapper returning Exact with no op accounting.
func Dist(a, b []int) int { return Exact(a, b, nil) }

// BruteLocal computes the local Ulam distance by trying every substring of
// sbar (including the empty one). Exponentially slower than Local; exists
// as the oracle for tests.
func BruteLocal(block, sbar []int) (int, Window) {
	best := len(block)
	win := Window{Gamma: 0, Kappa: -1}
	for g := 0; g < len(sbar); g++ {
		for k := g; k < len(sbar); k++ {
			if d := Exact(block, sbar[g:k+1], nil); d < best {
				best = d
				win = Window{Gamma: g, Kappa: k}
			}
		}
	}
	return best, win
}

// sortByJ returns indices of pts[lo:hi] ordered by increasing j.
func sortByJ(pts []point, lo, hi int) []int {
	idx := make([]int, hi-lo)
	for k := range idx {
		idx[k] = lo + k
	}
	sort.Slice(idx, func(x, y int) bool { return pts[idx[x]].j < pts[idx[y]].j })
	return idx
}
