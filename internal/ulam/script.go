package ulam

import (
	"mpcdist/internal/editdist"
	"mpcdist/internal/stats"
)

// Script returns an optimal Ulam transformation of a into b as an edit
// script. Both inputs must have distinct characters. The script realizes
// the match-point structure of the DP: the kept characters form an
// increasing matching, and each gap holding p characters of a and q of b
// spends min(p, q) substitutions plus |p-q| insertions or deletions —
// exactly max(p, q) operations, so Cost(Script(a, b)) == Exact(a, b).
func Script(a, b []int, ops *stats.Ops) []editdist.Op {
	pts := buildPoints(a, b, false)
	runDP(pts, ops)
	end := &pts[len(pts)-1]

	// Reconstruct the match chain from the virtual end back to the start.
	var chainIdx []int
	for at := end.parent; at > 0; at = pts[at].parent {
		chainIdx = append(chainIdx, int(at))
	}
	// Reverse into increasing order.
	for l, r := 0, len(chainIdx)-1; l < r; l, r = l+1, r-1 {
		chainIdx[l], chainIdx[r] = chainIdx[r], chainIdx[l]
	}

	out := make([]editdist.Op, 0, len(a)+len(b))
	prevI, prevJ := -1, -1
	emitGap := func(i, j int) {
		ai, bi := prevI+1, prevJ+1
		for ai < i && bi < j {
			out = append(out, editdist.Op{Kind: editdist.Substitute, APos: ai, BPos: bi})
			ai++
			bi++
		}
		for ai < i {
			out = append(out, editdist.Op{Kind: editdist.Delete, APos: ai, BPos: bi})
			ai++
		}
		for bi < j {
			out = append(out, editdist.Op{Kind: editdist.Insert, APos: ai, BPos: bi})
			bi++
		}
	}
	for _, k := range chainIdx {
		pt := pts[k]
		emitGap(pt.i, pt.j)
		out = append(out, editdist.Op{Kind: editdist.Match, APos: pt.i, BPos: pt.j})
		prevI, prevJ = pt.i, pt.j
	}
	emitGap(len(a), len(b))
	return out
}
