package ulam

import (
	"testing"

	"mpcdist/internal/editdist"
)

// distinctFromBytes deterministically turns fuzz bytes into two
// distinct-character sequences: character identities come from positions
// in a shared shuffle driven by the input bytes.
func distinctFromBytes(data []byte) (a, b []int) {
	seen := map[int]bool{}
	for i, c := range data {
		v := int(c)
		if i%2 == 0 {
			if !seen[v] {
				seen[v] = true
				a = append(a, v)
			}
		}
	}
	seenB := map[int]bool{}
	for i, c := range data {
		v := int(c)
		if i%2 == 1 {
			if !seenB[v] {
				seenB[v] = true
				b = append(b, v)
			}
		}
	}
	return a, b
}

// distinctSeq dedupes fuzz bytes into a sequence of distinct characters,
// preserving first-occurrence order and capping the length.
func distinctSeq(data []byte, maxLen int) []int {
	seen := map[int]bool{}
	var s []int
	for _, c := range data {
		v := int(c)
		if !seen[v] {
			seen[v] = true
			s = append(s, v)
			if len(s) == maxLen {
				break
			}
		}
	}
	return s
}

// FuzzLocalMinimalOverWindows brute-forces the definition of the paper's
// lulam: Local(block, sbar) must equal the minimum, over every substring
// w of sbar plus the empty substring (at cost |block|), of the exact Ulam
// distance between block and w — each window checked with the reference
// quadratic DP. The sibling target below only verifies that the reported
// window attains the reported value; this one verifies minimality.
func FuzzLocalMinimalOverWindows(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{9, 3, 1, 2, 4})
	f.Add([]byte("cab"), []byte("abcdefg"))
	f.Add([]byte{7, 6, 5, 4}, []byte{4, 5, 6, 7})
	f.Add([]byte{1}, []byte{})
	f.Fuzz(func(t *testing.T, rawBlock, rawSbar []byte) {
		block := distinctSeq(rawBlock, 8)
		sbar := distinctSeq(rawSbar, 20)
		if len(block) == 0 {
			return
		}
		got, win := Local(block, sbar, nil)
		want := len(block) // the empty window
		for g := 0; g < len(sbar); g++ {
			for k := g; k < len(sbar); k++ {
				if d := ExactQuadratic(block, sbar[g:k+1], nil); d < want {
					want = d
				}
			}
		}
		if got != want {
			t.Fatalf("Local = %d, brute-force minimum = %d (block=%v sbar=%v)", got, want, block, sbar)
		}
		if win.Len() > 0 {
			if d := ExactQuadratic(block, sbar[win.Gamma:win.Kappa+1], nil); d != got {
				t.Fatalf("reported window [%d,%d] costs %d, not the reported %d", win.Gamma, win.Kappa, d, got)
			}
		} else if got != len(block) {
			t.Fatalf("empty window reported but Local = %d != |block| = %d", got, len(block))
		}
		// Script on the same pair must cost exactly the DP distance.
		if script := Script(block, sbar, nil); editdist.Cost(script) != ExactQuadratic(block, sbar, nil) {
			t.Fatalf("Script cost %d != DP distance %d", editdist.Cost(script), ExactQuadratic(block, sbar, nil))
		}
	})
}

func FuzzUlamAgreesWithEditDistance(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte("interleaved characters drive both sequences"))
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 160 {
			data = data[:160]
		}
		a, b := distinctFromBytes(data)
		want := editdist.Distance(a, b, nil)
		if got := Exact(a, b, nil); got != want {
			t.Fatalf("Exact = %d, want %d (a=%v b=%v)", got, want, a, b)
		}
		if got := ExactQuadratic(a, b, nil); got != want {
			t.Fatalf("ExactQuadratic = %d, want %d", got, want)
		}
		script := Script(a, b, nil)
		if err := editdist.Validate(a, b, script); err != nil {
			t.Fatalf("script invalid: %v", err)
		}
		if editdist.Cost(script) != want {
			t.Fatalf("script cost %d, want %d", editdist.Cost(script), want)
		}
		// Local <= distance to any window, and windows attain their value.
		if len(a) > 0 {
			d, win := Local(a, b, nil)
			if d > len(a) {
				t.Fatalf("Local %d > |block| %d", d, len(a))
			}
			if win.Len() > 0 {
				if dd := Exact(a, b[win.Gamma:win.Kappa+1], nil); dd != d {
					t.Fatalf("window distance %d != reported %d", dd, d)
				}
			}
		}
	})
}
