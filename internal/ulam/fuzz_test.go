package ulam

import (
	"testing"

	"mpcdist/internal/editdist"
)

// distinctFromBytes deterministically turns fuzz bytes into two
// distinct-character sequences: character identities come from positions
// in a shared shuffle driven by the input bytes.
func distinctFromBytes(data []byte) (a, b []int) {
	seen := map[int]bool{}
	for i, c := range data {
		v := int(c)
		if i%2 == 0 {
			if !seen[v] {
				seen[v] = true
				a = append(a, v)
			}
		}
	}
	seenB := map[int]bool{}
	for i, c := range data {
		v := int(c)
		if i%2 == 1 {
			if !seenB[v] {
				seenB[v] = true
				b = append(b, v)
			}
		}
	}
	return a, b
}

func FuzzUlamAgreesWithEditDistance(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte("interleaved characters drive both sequences"))
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 160 {
			data = data[:160]
		}
		a, b := distinctFromBytes(data)
		want := editdist.Distance(a, b, nil)
		if got := Exact(a, b, nil); got != want {
			t.Fatalf("Exact = %d, want %d (a=%v b=%v)", got, want, a, b)
		}
		if got := ExactQuadratic(a, b, nil); got != want {
			t.Fatalf("ExactQuadratic = %d, want %d", got, want)
		}
		script := Script(a, b, nil)
		if err := editdist.Validate(a, b, script); err != nil {
			t.Fatalf("script invalid: %v", err)
		}
		if editdist.Cost(script) != want {
			t.Fatalf("script cost %d, want %d", editdist.Cost(script), want)
		}
		// Local <= distance to any window, and windows attain their value.
		if len(a) > 0 {
			d, win := Local(a, b, nil)
			if d > len(a) {
				t.Fatalf("Local %d > |block| %d", d, len(a))
			}
			if win.Len() > 0 {
				if dd := Exact(a, b[win.Gamma:win.Kappa+1], nil); dd != d {
					t.Fatalf("window distance %d != reported %d", dd, d)
				}
			}
		}
	})
}
