package ulam

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkDPCrossover(b *testing.B) {
	for _, m := range []int{32, 64, 128, 256, 512, 1024} {
		rng := rand.New(rand.NewSource(int64(m)))
		x := rng.Perm(m)
		y := rng.Perm(m)
		b.Run(fmt.Sprintf("cdq/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts := buildPoints(x, y, false)
				runDP(pts, nil)
			}
		})
		b.Run(fmt.Sprintf("quad/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts := buildPoints(x, y, false)
				exactQuadratic(pts, nil)
			}
		})
	}
}

// TestCDQPathForcedAgainstQuadratic pins the CDQ branch (bypassing the
// small-input cutoff) against the quadratic reference on many sizes.
func TestCDQPathForcedAgainstQuadratic(t *testing.T) {
	old := QuadCutoff
	QuadCutoff = 0
	defer func() { QuadCutoff = old }()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		u := 10 + rng.Intn(80)
		a := rng.Perm(u)[:rng.Intn(u)]
		b := rng.Perm(u)[:rng.Intn(u)]
		if got, want := Exact(a, b, nil), ExactQuadratic(a, b, nil); got != want {
			t.Fatalf("forced CDQ %d != quadratic %d (a=%v b=%v)", got, want, a, b)
		}
		if len(a) == 0 {
			continue
		}
		wantD, _ := LocalQuadratic(a, b, nil)
		gotD, gotW := Local(a, b, nil)
		if gotD != wantD {
			t.Fatalf("forced CDQ Local %d != quadratic %d", gotD, wantD)
		}
		// Ties may pick different optimal windows; the returned one must
		// still attain the distance.
		if gotW.Len() > 0 {
			if dd := Exact(a, b[gotW.Gamma:gotW.Kappa+1], nil); dd != gotD {
				t.Fatalf("CDQ window %v attains %d, reported %d", gotW, dd, gotD)
			}
		}
	}
}

// TestCDQPathLargeStillUsed ensures sizes above the cutoff exercise CDQ.
func TestCDQPathLargeStillUsed(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	a := rng.Perm(1200)
	b := rng.Perm(1200)
	if got, want := Exact(a, b, nil), ExactQuadratic(a, b, nil); got != want {
		t.Fatalf("large CDQ %d != quadratic %d", got, want)
	}
}
