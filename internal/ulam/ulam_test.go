package ulam

import (
	"math/rand"
	"testing"

	"mpcdist/internal/editdist"
	"mpcdist/internal/lis"
	"mpcdist/internal/stats"
)

// randDistinct returns a random sequence of n distinct characters drawn
// from [0, universe).
func randDistinct(rng *rand.Rand, n, universe int) []int {
	p := rng.Perm(universe)
	return p[:n]
}

func TestExactKnown(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{1}, nil, 1},
		{nil, []int{1}, 1},
		{[]int{1, 2, 3}, []int{1, 2, 3}, 0},
		{[]int{1, 2, 3}, []int{2, 3, 1}, 2},       // rotate: delete 1, insert 1
		{[]int{1, 2, 3}, []int{4, 5, 6}, 3},       // disjoint: substitute all
		{[]int{1, 2, 3, 4}, []int{1, 9, 3, 4}, 1}, // one substitution
		{[]int{1, 2}, []int{2, 1}, 2},
		{[]int{1, 2, 3, 4, 5}, []int{1, 3, 2, 4, 5}, 2},
	}
	for _, c := range cases {
		if got := Exact(c.a, c.b, nil); got != c.want {
			t.Errorf("Exact(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestExactVsEditDistanceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		u := 10 + rng.Intn(50)
		a := randDistinct(rng, rng.Intn(u), u)
		b := randDistinct(rng, rng.Intn(u), u)
		want := editdist.Distance(a, b, nil)
		if got := Exact(a, b, nil); got != want {
			t.Fatalf("Exact(%v,%v) = %d, want %d", a, b, got, want)
		}
		if got := ExactQuadratic(a, b, nil); got != want {
			t.Fatalf("ExactQuadratic(%v,%v) = %d, want %d", a, b, got, want)
		}
	}
}

func TestExactFastEqualsQuadraticLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		u := 200 + rng.Intn(200)
		a := randDistinct(rng, u/2+rng.Intn(u/2), u)
		b := randDistinct(rng, u/2+rng.Intn(u/2), u)
		if got, want := Exact(a, b, nil), ExactQuadratic(a, b, nil); got != want {
			t.Fatalf("fast %d != quadratic %d", got, want)
		}
	}
}

func TestExactMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		u := 30
		a := randDistinct(rng, rng.Intn(u), u)
		b := randDistinct(rng, rng.Intn(u), u)
		c := randDistinct(rng, rng.Intn(u), u)
		if Exact(a, a, nil) != 0 {
			t.Fatal("d(a,a) != 0")
		}
		if Exact(a, b, nil) != Exact(b, a, nil) {
			t.Fatal("not symmetric")
		}
		if Exact(a, c, nil) > Exact(a, b, nil)+Exact(b, c, nil) {
			t.Fatal("triangle inequality violated")
		}
	}
}

func TestExactBoundsVsIndelUlam(t *testing.T) {
	// With substitutions allowed, ulam <= indel-ulam <= 2*ulam.
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		a := rng.Perm(n)
		b := rng.Perm(n)
		d := Exact(a, b, nil)
		id := lis.IndelUlam(a, b)
		if d > id {
			t.Fatalf("ulam %d > indel ulam %d", d, id)
		}
		if id > 2*d {
			t.Fatalf("indel ulam %d > 2*ulam %d", id, d)
		}
	}
}

func TestCheckDistinct(t *testing.T) {
	if err := CheckDistinct([]int{1, 2, 3}); err != nil {
		t.Errorf("distinct rejected: %v", err)
	}
	if err := CheckDistinct([]int{1, 2, 1}); err == nil {
		t.Error("repeat accepted")
	}
	if err := CheckDistinct(nil); err != nil {
		t.Errorf("empty rejected: %v", err)
	}
}

func TestLocalVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 200; trial++ {
		u := 24
		nb := 1 + rng.Intn(8)
		ns := rng.Intn(16)
		block := randDistinct(rng, nb, u)
		sbar := randDistinct(rng, ns, u)
		want, _ := BruteLocal(block, sbar)
		got, win := Local(block, sbar, nil)
		if got != want {
			t.Fatalf("Local(%v,%v) = %d, want %d", block, sbar, got, want)
		}
		gotQ, _ := LocalQuadratic(block, sbar, nil)
		if gotQ != want {
			t.Fatalf("LocalQuadratic(%v,%v) = %d, want %d", block, sbar, gotQ, want)
		}
		// The returned window must attain the reported distance.
		if win.Len() > 0 {
			if d := Exact(block, sbar[win.Gamma:win.Kappa+1], nil); d != got {
				t.Fatalf("window [%d,%d] has distance %d, reported %d (block=%v sbar=%v)",
					win.Gamma, win.Kappa, d, got, block, sbar)
			}
		} else if got != len(block) {
			t.Fatalf("empty window reported with distance %d != |block| %d", got, len(block))
		}
	}
}

func TestLocalIsMinOverWindows(t *testing.T) {
	// lulam(block, sbar) <= ulam(block, any substring).
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 50; trial++ {
		u := 40
		block := randDistinct(rng, 1+rng.Intn(10), u)
		sbar := randDistinct(rng, rng.Intn(30), u)
		d, _ := Local(block, sbar, nil)
		for probe := 0; probe < 10; probe++ {
			if len(sbar) == 0 {
				break
			}
			g := rng.Intn(len(sbar))
			k := g + rng.Intn(len(sbar)-g)
			if dd := Exact(block, sbar[g:k+1], nil); dd < d {
				t.Fatalf("Local = %d but window [%d,%d] achieves %d", d, g, k, dd)
			}
		}
		if d > len(block) {
			t.Fatalf("Local %d exceeds |block| %d", d, len(block))
		}
	}
}

func TestLocalExactSubstringPresent(t *testing.T) {
	// If the block appears verbatim inside sbar, Local must return 0 and a
	// window equal to the occurrence.
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 50; trial++ {
		sbar := rng.Perm(60)
		g := rng.Intn(50)
		k := g + rng.Intn(60-g)
		block := append([]int{}, sbar[g:k+1]...)
		d, win := Local(block, sbar, nil)
		if d != 0 {
			t.Fatalf("verbatim block has Local = %d", d)
		}
		if win.Gamma != g || win.Kappa != k {
			t.Fatalf("window [%d,%d], want [%d,%d]", win.Gamma, win.Kappa, g, k)
		}
	}
}

func TestOpsAccounting(t *testing.T) {
	var ops stats.Ops
	rng := rand.New(rand.NewSource(28))
	a := randDistinct(rng, 50, 100)
	b := randDistinct(rng, 50, 100)
	Exact(a, b, &ops)
	if ops.Count() == 0 {
		t.Error("Exact charged no ops")
	}
}

func BenchmarkExactFast1e3(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := rng.Perm(1000)
	y := rng.Perm(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(x, y, nil)
	}
}

func BenchmarkExactQuadratic1e3(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := rng.Perm(1000)
	y := rng.Perm(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactQuadratic(x, y, nil)
	}
}
