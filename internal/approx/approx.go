// Package approx provides a sequential subquadratic constant-factor
// edit-distance approximation. It stands in for the variant of Chakraborty
// et al. [12] that the paper invokes on each machine in the small-distance
// regime (Section 5.1, "a variant of the algorithm of [12] ... linear
// memory, approximation factor 3+eps, time O(n^{2-1/6})").
//
// Structure (documented as substitution #2 in DESIGN.md):
//
//   - Distance guesses g = 1, (1+eps), (1+eps)^2, ... are tried in
//     increasing order, as in the paper's n^delta guessing.
//   - While g <= |a|^{5/6}, the banded exact kernel decides the guess in
//     O(|a|·g) = O(|a|^{2-1/6}) time — the same exponent as [12] — and the
//     result is exact.
//   - Beyond that (the far regime), one level of the paper's own
//     large-distance machinery runs sequentially: blocks versus
//     grid-aligned candidate windows, sampled representatives with
//     triangle-inequality edges (factor 3 per Lemma 7), low-degree
//     sampling with extension to the enclosing larger block (Fig. 7), and
//     the overlap-tolerant chain DP of Section 5.2.3.
//
// The returned value is always an upper bound on ed(a, b); it equals
// ed(a, b) whenever ed(a, b) <= |a|^{5/6}, and is at most (3+O(eps))·ed
// with high probability otherwise.
//
// Phase attribution: approx has no Cluster.Run call sites of its own — it
// is a sequential pair kernel invoked inside the machines of the
// small-regime "edit-small/pairs" round (PairApprox12), so its operations
// are charged to that round's trace.PhaseCandidates.
package approx

import (
	"bytes"
	"math"
	"math/rand"

	"mpcdist/internal/cand"
	"mpcdist/internal/chain"
	"mpcdist/internal/editdist"
	"mpcdist/internal/stats"
)

// Params tunes the approximation.
type Params struct {
	// Eps is the slack parameter; the guarantee degrades gracefully as it
	// grows. Zero means 0.5.
	Eps float64
	// X is the inner block exponent in (0, 5/17]; zero means 5/17 (the
	// paper's Theorem 9 boundary, minimizing total work).
	X float64
	// SmallCutoff: inputs with |a| below this always use the exact kernel.
	// Zero means 96.
	SmallCutoff int
	// Seed drives representative and low-degree sampling.
	Seed int64
	// Cap, when positive, bounds the useful distance: the guess ladder
	// stops at Cap and the result for farther pairs is only guaranteed to
	// be a valid upper bound (callers filter such tuples out anyway).
	Cap int
}

func (p Params) withDefaults() Params {
	if p.Eps <= 0 {
		p.Eps = 0.5
	}
	if p.X <= 0 || p.X > 5.0/17 {
		p.X = 5.0 / 17
	}
	if p.SmallCutoff <= 0 {
		p.SmallCutoff = 96
	}
	return p
}

// Factor returns the worst-case approximation factor guarantee for the
// given parameters (with high probability in the far regime).
func Factor(p Params) float64 {
	p = p.withDefaults()
	return 3 * (1 + p.Eps) * (1 + p.Eps)
}

// Ed returns an upper bound on the edit distance between a and b, within
// Factor(p) of optimal with high probability, exact when the distance is
// at most |a|^{5/6} or the input is below the small cutoff.
func Ed(a, b []byte, p Params, ops *stats.Ops) int {
	p = p.withDefaults()
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return la + lb
	}
	if la == lb && bytes.Equal(a, b) {
		ops.Add(int64(la))
		return 0
	}
	maxd := la + lb
	if p.Cap > 0 && p.Cap < maxd {
		maxd = p.Cap
	}
	// Guess ladder.
	cut := int(math.Pow(float64(la), 5.0/6))
	accept := 3 * (1 + p.Eps)
	bestFar := maxInt(la, lb) // trivial upper bound via substitution
	g := 1
	for {
		if g > maxd {
			g = maxd
		}
		if la <= p.SmallCutoff || g <= cut {
			if d := editdist.BoundedDistance(a, b, g, ops); d <= g {
				return d
			}
		} else {
			v := edFar(a, b, g, p, ops)
			if v < bestFar {
				bestFar = v
			}
			if v <= int(accept*float64(g)) {
				return v
			}
		}
		if g == maxd {
			// All guesses exhausted; return the best upper bound seen.
			return bestFar
		}
		next := int(float64(g) * (1 + p.Eps))
		if next <= g {
			next = g + 1
		}
		g = next
	}
}

// nodeKey identifies a block or window substring for distance memoization.
type nodeKey struct {
	isWindow bool
	lo, hi   int // inclusive bounds within a (block) or b (window)
}

// edFar runs one level of the large-distance machinery under the
// assumption ed(a, b) <= g and returns an achievable transformation cost.
func edFar(a, b []byte, g int, p Params, ops *stats.Ops) int {
	la, lb := len(a), len(b)
	y := 6 * p.X / 5
	yp := 4 * p.X / 5
	k := intPow(la, y)
	if k < 2 {
		k = 2
	}
	bsz := (la + k - 1) / k

	// Larger blocks ("groups", Fig. 7) of n^{1-y'}: group size in blocks.
	groupBlocks := intPow(la, y-yp)
	if groupBlocks < 1 {
		groupBlocks = 1
	}

	type block struct{ l, r int }
	var blocks []block
	for l := 0; l < la; l += bsz {
		r := l + bsz - 1
		if r > la-1 {
			r = la - 1
		}
		blocks = append(blocks, block{l, r})
	}
	nb := len(blocks)

	// Candidate windows per block, on the grid G' = eps·g/k.
	grid := int(p.Eps * float64(g) / float64(k))
	if grid < 1 {
		grid = 1
	}
	maxWin := int(float64(bsz)/p.Eps) + 1
	winIdx := make(map[[2]int]int)
	var wins [][2]int
	blockWins := make([][]int, nb)
	for bi, bl := range blocks {
		blen := bl.r - bl.l + 1
		for _, gamma := range cand.Starts(bl.l, g, grid, lb) {
			for _, kappa := range cand.Ends(gamma, blen, lb, p.Eps, maxWin, g) {
				key := [2]int{gamma, kappa}
				id, ok := winIdx[key]
				if !ok {
					id = len(wins)
					winIdx[key] = id
					wins = append(wins, key)
				}
				blockWins[bi] = append(blockWins[bi], id)
			}
		}
	}
	nw := len(wins)
	nT := nb + nw
	ops.Add(int64(nT))

	// Memoized exact distances between node substrings.
	memo := make(map[[2]nodeKey]int)
	sub := func(nk nodeKey) []byte {
		if nk.isWindow {
			return b[nk.lo : nk.hi+1]
		}
		return a[nk.lo : nk.hi+1]
	}
	nodeLess := func(x, y nodeKey) bool {
		if x.isWindow != y.isWindow {
			return !x.isWindow
		}
		if x.lo != y.lo {
			return x.lo < y.lo
		}
		return x.hi < y.hi
	}
	dist := func(x, y nodeKey) int {
		if nodeLess(y, x) {
			x, y = y, x
		}
		key := [2]nodeKey{x, y}
		if d, ok := memo[key]; ok {
			return d
		}
		d := editdist.Myers(sub(x), sub(y), ops)
		memo[key] = d
		return d
	}
	blockKey := func(bi int) nodeKey { return nodeKey{false, blocks[bi].l, blocks[bi].r} }
	winKey := func(wi int) nodeKey { return nodeKey{true, wins[wi][0], wins[wi][1]} }

	// Representative sampling (phase 1). Degree threshold h = la^{3x/5}
	// as in Section 5.3 (alpha = (3/5)x); sampling probability
	// 2·ln(T)/h, clamped below 1 so the machinery stays sublinear.
	h := intPow(la, 3*p.X/5)
	if h < 2 {
		h = 2
	}
	p1 := 2 * math.Log(float64(nT)+2) / float64(h)
	if p1 > 0.5 {
		p1 = 0.5
	}
	rng := rand.New(rand.NewSource(p.Seed ^ int64(g)<<17 ^ 0x5ca1ab1e))
	var reps []nodeKey
	for bi := 0; bi < nb; bi++ {
		if rng.Float64() < p1 {
			reps = append(reps, blockKey(bi))
		}
	}
	for wi := 0; wi < nw; wi++ {
		if rng.Float64() < p1 {
			reps = append(reps, winKey(wi))
		}
	}

	// Distances from representatives to blocks, and triangle-edge tuples:
	// for each block v and its candidate windows u, the best rep-mediated
	// bound min_z d(z,v) + d(z,u), which Lemma 7 bounds by 3·tau for pairs
	// within tau (v) and 2·tau (u) of z.
	var tuples []chain.Tuple
	covered := make([]int, nb) // per block: best d(z, v) over reps, or -1
	bestRep := make([]int, nb)
	for bi := range covered {
		covered[bi] = -1
		bestRep[bi] = -1
	}
	repToBlock := make([][]int, len(reps))
	for zi, z := range reps {
		repToBlock[zi] = make([]int, nb)
		for bi := 0; bi < nb; bi++ {
			d := dist(z, blockKey(bi))
			repToBlock[zi][bi] = d
			if covered[bi] < 0 || d < covered[bi] {
				covered[bi] = d
				bestRep[bi] = zi
			}
		}
	}
	for bi := 0; bi < nb; bi++ {
		zi := bestRep[bi]
		if zi < 0 {
			continue
		}
		dzv := repToBlock[zi][bi]
		bl := blocks[bi]
		for _, wi := range blockWins[bi] {
			dzu := dist(reps[zi], winKey(wi))
			tuples = append(tuples, chain.Tuple{
				L: bl.l, R: bl.r, G: wins[wi][0], K: wins[wi][1], D: dzv + dzu,
			})
			ops.Add(1)
		}
	}

	// Low-degree sampling with extension (phases 2 and 3). A block counts
	// as uncovered at threshold tau when no representative is within tau;
	// sampled uncovered blocks solve their candidates exactly and extend
	// hits to their group (Fig. 7).
	oneMinusDelta := float64(la) / float64(g) // n^{1-delta}
	denom := math.Pow(float64(la), y-yp) / oneMinusDelta
	if denom < 1 {
		denom = 1
	}
	lnLa := math.Log(float64(la) + 2)
	p2 := 3 * lnLa * lnLa / (p.Eps * p.Eps) / denom
	if p2 > 1 {
		p2 = 1
	}
	extended := make(map[[4]int]bool)
	tauMax := bsz + maxWin + 2
	for tau := 1; tau <= tauMax; tau = nextTau(tau, p.Eps) {
		for bi := 0; bi < nb; bi++ {
			if covered[bi] >= 0 && covered[bi] <= tau {
				continue // handled by the dense phase at this tau
			}
			if rng.Float64() >= p2 {
				continue
			}
			bl := blocks[bi]
			for _, wi := range blockWins[bi] {
				d := dist(blockKey(bi), winKey(wi))
				if d > tau {
					continue
				}
				// Extend to every block of the same group.
				g0 := (bi / groupBlocks) * groupBlocks
				g1 := minInt(g0+groupBlocks, nb)
				for bj := g0; bj < g1; bj++ {
					blj := blocks[bj]
					gamma := wins[wi][0] + (blj.l - bl.l)
					kappa := wins[wi][1] + (blj.r - bl.r)
					if gamma < 0 {
						gamma = 0
					}
					if kappa > lb-1 {
						kappa = lb - 1
					}
					if gamma > kappa {
						continue
					}
					ek := [4]int{blj.l, blj.r, gamma, kappa}
					if extended[ek] {
						continue
					}
					extended[ek] = true
					dd := dist(nodeKey{false, blj.l, blj.r}, nodeKey{true, gamma, kappa})
					tuples = append(tuples, chain.Tuple{L: blj.l, R: blj.r, G: gamma, K: kappa, D: dd})
				}
			}
		}
	}

	return chain.EditCost(tuples, la, lb, true, ops)
}

func nextTau(tau int, eps float64) int {
	n := int(float64(tau) * (1 + eps))
	if n <= tau {
		return tau + 1
	}
	return n
}

func intPow(n int, e float64) int {
	return int(math.Pow(float64(n), e))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
