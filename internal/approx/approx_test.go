package approx

import (
	"math/rand"
	"testing"

	"mpcdist/internal/editdist"
	"mpcdist/internal/stats"
	"mpcdist/internal/workload"
)

func TestEdExactOnSmallInputs(t *testing.T) {
	// Below the small cutoff the result must be exact.
	rng := rand.New(rand.NewSource(51))
	p := Params{Seed: 1}
	for trial := 0; trial < 120; trial++ {
		a := workload.RandomString(rng, rng.Intn(90), 4)
		b := workload.RandomString(rng, rng.Intn(90), 4)
		want := editdist.Distance(a, b, nil)
		if got := Ed(a, b, p, nil); got != want {
			t.Fatalf("Ed(%q,%q) = %d, want exact %d", a, b, got, want)
		}
	}
}

func TestEdExactWhenDistanceModerate(t *testing.T) {
	// ed <= |a|^{5/6} stays on the banded-exact path: exact result.
	rng := rand.New(rand.NewSource(52))
	p := Params{Seed: 2}
	for trial := 0; trial < 15; trial++ {
		n := 400 + rng.Intn(400)
		a := workload.RandomString(rng, n, 8)
		b := workload.PlantedEdits(rng, a, 1+rng.Intn(30), 8)
		want := editdist.Distance(a, b, nil)
		if got := Ed(a, b, p, nil); got != want {
			t.Fatalf("moderate-distance Ed = %d, want exact %d (n=%d)", got, want, n)
		}
	}
}

func TestEdEqualStringsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := workload.RandomString(rng, 5000, 4)
	if got := Ed(a, a, Params{}, nil); got != 0 {
		t.Fatalf("Ed(a,a) = %d", got)
	}
}

func TestEdEmpty(t *testing.T) {
	if got := Ed(nil, []byte("abc"), Params{}, nil); got != 3 {
		t.Errorf("Ed(empty, abc) = %d", got)
	}
	if got := Ed([]byte("abc"), nil, Params{}, nil); got != 3 {
		t.Errorf("Ed(abc, empty) = %d", got)
	}
	if got := Ed(nil, nil, Params{}, nil); got != 0 {
		t.Errorf("Ed(empty, empty) = %d", got)
	}
}

func TestEdUpperBoundAndFactorFarRegime(t *testing.T) {
	// Far-apart strings: result must be an upper bound within the factor.
	rng := rand.New(rand.NewSource(54))
	p := Params{Eps: 0.5, Seed: 3, SmallCutoff: 32}
	factor := Factor(p)
	for trial := 0; trial < 8; trial++ {
		n := 300 + rng.Intn(300)
		a := workload.RandomString(rng, n, 4)
		b := workload.RandomString(rng, n, 4)
		want := editdist.Distance(a, b, nil)
		got := Ed(a, b, p, nil)
		if got < want {
			t.Fatalf("Ed = %d below true distance %d", got, want)
		}
		if float64(got) > factor*float64(want)+1 {
			t.Fatalf("Ed = %d exceeds %.2f x true %d", got, factor, want)
		}
	}
}

func TestEdShiftWorkload(t *testing.T) {
	// Rotations: small true distance, adversarial for block alignments.
	rng := rand.New(rand.NewSource(55))
	p := Params{Seed: 4}
	a := workload.RandomString(rng, 600, 6)
	for _, k := range []int{1, 5, 25} {
		b := workload.Shift(a, k)
		want := editdist.Distance(a, b, nil)
		got := Ed(a, b, p, nil)
		if got != want { // within the banded-exact regime
			t.Fatalf("shift %d: Ed = %d, want %d", k, got, want)
		}
	}
}

func TestEdDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	a := workload.RandomString(rng, 400, 3)
	b := workload.RandomString(rng, 400, 3)
	p := Params{Seed: 9, SmallCutoff: 32}
	v1 := Ed(a, b, p, nil)
	v2 := Ed(a, b, p, nil)
	if v1 != v2 {
		t.Fatalf("nondeterministic: %d vs %d", v1, v2)
	}
}

func TestEdOpsCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	a := workload.RandomString(rng, 300, 4)
	b := workload.PlantedEdits(rng, a, 10, 4)
	var ops stats.Ops
	Ed(a, b, Params{Seed: 5}, &ops)
	if ops.Count() == 0 {
		t.Error("no ops charged")
	}
}

func TestFactorDefaults(t *testing.T) {
	f := Factor(Params{})
	if f < 3 || f > 7 {
		t.Errorf("Factor = %v, want in [3, 7]", f)
	}
	// Defaults applied.
	p := Params{}.withDefaults()
	if p.Eps != 0.5 || p.SmallCutoff != 96 {
		t.Errorf("defaults = %+v", p)
	}
	if p.X <= 0 || p.X > 5.0/17+1e-9 {
		t.Errorf("X default = %v", p.X)
	}
}

func TestEdSubquadraticOpsInModerateRegime(t *testing.T) {
	// On planted small-distance inputs the ops should be near |a|·d, far
	// below |a|^2.
	rng := rand.New(rand.NewSource(58))
	n := 4000
	a := workload.RandomString(rng, n, 8)
	b := workload.PlantedEdits(rng, a, 40, 8)
	var ops stats.Ops
	Ed(a, b, Params{Seed: 6}, &ops)
	quad := int64(n) * int64(n)
	if ops.Count() >= quad/4 {
		t.Errorf("ops = %d, not subquadratic (n^2 = %d)", ops.Count(), quad)
	}
}
