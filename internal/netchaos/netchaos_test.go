package netchaos

import (
	"bytes"
	"flag"
	"net"
	"testing"
	"time"
)

// pipeConn runs f against an armed chaos wrapper over an in-memory pipe
// and returns what the far end received.
func pipeConn(t *testing.T, p *Plan, arm bool, payloads [][]byte) [][]byte {
	t.Helper()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	w := New(p).Wrap(a)
	if arm {
		if ar, ok := w.(interface{ Arm() }); ok {
			ar.Arm()
		}
	}
	got := make(chan [][]byte, 1)
	go func() {
		var out [][]byte
		buf := make([]byte, 1<<10)
		b.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			n, err := b.Read(buf)
			if n > 0 {
				out = append(out, append([]byte(nil), buf[:n]...))
			}
			if err != nil {
				break
			}
		}
		got <- out
	}()
	for _, pl := range payloads {
		w.SetWriteDeadline(time.Now().Add(2 * time.Second))
		if _, err := w.Write(pl); err != nil {
			break
		}
	}
	a.Close()
	return <-got
}

func TestInactivePlanIsIdentity(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Fatal("nil plan reports active")
	}
	if New(nil) != nil || New(&Plan{Seed: 7}) != nil {
		t.Fatal("inactive plan produced an injector")
	}
	a, _ := net.Pipe()
	defer a.Close()
	var inj *Injector
	if inj.Wrap(a) != a {
		t.Fatal("nil injector did not pass the conn through")
	}
}

func TestDisarmedWrapperIsPassthrough(t *testing.T) {
	// Drop rate 1: every armed write is truncated. Disarmed, all must pass
	// intact — this is what protects handshakes from the schedule.
	p := &Plan{Seed: 1, Drop: 1}
	in := [][]byte{[]byte("hello"), []byte("world")}
	got := pipeConn(t, p, false, in)
	if len(got) != 2 || !bytes.Equal(got[0], in[0]) || !bytes.Equal(got[1], in[1]) {
		t.Fatalf("disarmed wrapper altered traffic: %q", got)
	}
	armed := pipeConn(t, p, true, in)
	if len(armed) != 2 {
		t.Fatalf("armed drop plan delivered %d writes, want 2 truncated ones: %q", len(armed), armed)
	}
	for i, g := range armed {
		if len(g) >= len(in[i]) || !bytes.HasPrefix(in[i], g) {
			t.Fatalf("write %d: want a strict prefix of %q, got %q", i, in[i], g)
		}
	}
}

func TestCorruptFlipsExactlyOneBitDeterministically(t *testing.T) {
	p := &Plan{Seed: 42, Corrupt: 1}
	payload := bytes.Repeat([]byte{0xAA}, 64)
	first := pipeConn(t, p, true, [][]byte{payload})
	second := pipeConn(t, p, true, [][]byte{payload})
	if len(first) != 1 || len(second) != 1 {
		t.Fatalf("want 1 delivery each, got %d/%d", len(first), len(second))
	}
	if !bytes.Equal(first[0], second[0]) {
		t.Fatal("corruption is not deterministic across identical schedules")
	}
	diff := 0
	for i := range payload {
		if first[0][i] != payload[i] {
			diff++
			if x := first[0][i] ^ payload[i]; x&(x-1) != 0 {
				t.Fatalf("byte %d differs by more than one bit: %02x vs %02x", i, first[0][i], payload[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("want exactly 1 corrupted byte, got %d", diff)
	}
	// The caller's buffer must never be mutated (it may be a shared
	// encode buffer about to be retried on a fresh connection).
	if !bytes.Equal(payload, bytes.Repeat([]byte{0xAA}, 64)) {
		t.Fatal("Write mutated the caller's buffer")
	}
}

func TestOutboundPartitionBlackholes(t *testing.T) {
	// Partition rate 1 guarantees the first conn is partitioned; sweep
	// seeds until the deterministic direction draw picks outbound.
	for seed := int64(1); seed < 64; seed++ {
		inj := New(&Plan{Seed: seed, Partition: 1})
		a, b := net.Pipe()
		w := inj.Wrap(a).(*conn)
		w.Arm()
		if w.partIn {
			a.Close()
			b.Close()
			continue
		}
		done := make(chan error, 1)
		go func() {
			_, err := w.Write([]byte("into the void"))
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("blackholed write errored: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("blackholed write blocked (should report success without delivering)")
		}
		a.Close()
		b.Close()
		return
	}
	t.Fatal("no seed in 1..63 produced an outbound partition")
}

func TestResetKillsConnAfterWrite(t *testing.T) {
	p := &Plan{Seed: 3, Reset: 1}
	a, b := net.Pipe()
	defer b.Close()
	w := New(p).Wrap(a)
	w.(interface{ Arm() }).Arm()
	go func() { // drain so the pipe write completes
		buf := make([]byte, 64)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := w.Write([]byte("last words")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := w.Write([]byte("after the reset")); err == nil {
		t.Fatal("write after a scheduled reset succeeded")
	}
}

func TestBindFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	get := BindFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if p := get(); p != nil {
		t.Fatalf("default flags produced an active plan: %s", p)
	}
	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	get = BindFlags(fs)
	if err := fs.Parse([]string{"-netchaos-seed", "9", "-netchaos-corrupt", "0.25", "-netchaos-latency", "1ms"}); err != nil {
		t.Fatal(err)
	}
	p := get()
	if p == nil || p.Seed != 9 || p.Corrupt != 0.25 || p.Latency != time.Millisecond {
		t.Fatalf("plan = %s", p)
	}
}
