// Package netchaos is the link-level counterpart of internal/fault: a
// deterministic, seeded fault injector wrapped around net.Conn. Where
// fault.Plan schedules *logical* failures (machine crashes, shuffle
// message loss) that the simulator recovers from, a netchaos.Plan
// schedules *wire* failures — latency, jitter, bandwidth caps, silent
// drops, bit corruption, one-way partitions, and mid-stream resets — that
// the transport layer must absorb (CRC rejection, connection recycling,
// worker rejoin) without ever changing a deterministic counter.
//
// Every decision is a pure function of (plan seed, failure kind,
// connection index, operation index) via the same SplitMix64 Bernoulli
// primitive fault.Plan uses (fault.Decide), so a chaos schedule replays
// from its seed alone. The *hits* still depend on runtime interleaving
// (how many writes a connection sees before dying is timing-dependent) —
// which is exactly the point: the invariant under test is that the
// deterministic counters are identical under ANY link schedule, not that
// the schedule itself is reproducible wall-clock for wall-clock.
package netchaos

import (
	"flag"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"mpcdist/internal/fault"
)

// Plan is a deterministic link-fault schedule. The zero value (and a nil
// *Plan) injects nothing; rates are probabilities in [0, 1].
type Plan struct {
	// Seed derives every decision; two plans with equal fields produce
	// identical schedules.
	Seed int64
	// Latency is a fixed extra delay injected before every write.
	Latency time.Duration
	// Jitter adds a deterministic extra delay in [0, Jitter) per write.
	Jitter time.Duration
	// Bandwidth caps write throughput in bytes/second (0 = unlimited),
	// modeled as a post-write sleep of len/Bandwidth.
	Bandwidth int64
	// Corrupt is the probability one byte of a write — and, independently,
	// of a read — is bit-flipped in flight (the transport's CRC must catch
	// it). Read-path flips let a one-sided wrapper perturb both directions.
	Corrupt float64
	// Drop is the probability a write is truncated in flight (the first
	// half of the bytes are delivered, the rest vanish) while still
	// reporting success to the sender. Truncation — rather than discarding
	// the whole write — is deliberate: transport writes are frame-aligned,
	// so a cleanly missing frame on an otherwise healthy connection would
	// be undetectable (heartbeats keep the deadline fresh) and the peer
	// would wait at a barrier forever. A truncated write desynchronizes
	// the stream instead, so the next frame fails its CRC and the
	// connection recycles through the rejoin path.
	Drop float64
	// Reset is the probability the connection is torn down immediately
	// after a write (mid-stream reset).
	Reset float64
	// Partition is the probability, per connection, that the link is
	// one-way partitioned from birth: writes blackhole or reads stall
	// (direction chosen deterministically) until the peer deadline
	// recycles the connection. Redials get fresh connection ids, so
	// partitions heal on reconnect.
	Partition float64
}

// Decision-kind salts, mirroring internal/fault's vocabulary.
const (
	kindCorrupt   uint64 = 0x636f727275707400 // "corrupt\0"
	kindCorrByte  uint64 = 0x636f7272627974   // "corrbyt"
	kindCorrBit   uint64 = 0x636f7272626974   // "corrbit"
	kindDrop      uint64 = 0x6c696e6b64726f70 // "linkdrop"
	kindReset     uint64 = 0x7265736574000000 // "reset\0\0\0"
	kindPartition uint64 = 0x7061727469746e   // "partitn"
	kindPartDir   uint64 = 0x7061727464697200 // "partdir\0"
	kindJitter    uint64 = 0x6a69747465720000 // "jitter\0\0"
)

// Active reports whether the plan can perturb anything. A nil plan is
// inactive and Injector.Wrap becomes the identity.
func (p *Plan) Active() bool {
	return p != nil && (p.Latency > 0 || p.Jitter > 0 || p.Bandwidth > 0 ||
		p.Corrupt > 0 || p.Drop > 0 || p.Reset > 0 || p.Partition > 0)
}

// String renders the schedule parameters; two plans with equal strings
// inject identical schedules.
func (p *Plan) String() string {
	if p == nil {
		return "netchaos.Plan(nil)"
	}
	return fmt.Sprintf("netchaos.Plan{seed=%d latency=%s jitter=%s bandwidth=%d corrupt=%g drop=%g reset=%g partition=%g}",
		p.Seed, p.Latency, p.Jitter, p.Bandwidth, p.Corrupt, p.Drop, p.Reset, p.Partition)
}

// Injector wraps connections with the plan's schedule, handing each
// wrapped connection the next deterministic connection index.
type Injector struct {
	plan Plan
	next atomic.Int64
}

// New returns an injector for the plan, or nil for a nil/inactive plan
// (a nil *Injector is safe to use; Wrap becomes the identity).
func New(p *Plan) *Injector {
	if !p.Active() {
		return nil
	}
	return &Injector{plan: *p}
}

// Wrap wraps c with the injector's schedule. The wrapper starts DISARMED —
// a pure passthrough — so handshakes complete cleanly; the transport arms
// it (via the Arm method) once the session is established. Without this,
// a corrupted hello/welcome would kill a worker before it ever joins, and
// a rejoin handshake could corrupt-loop forever.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	if in == nil {
		return c
	}
	cc := &conn{Conn: c, plan: &in.plan, id: int(in.next.Add(1))}
	if fault.Decide(in.plan.Seed, kindPartition, in.plan.Partition, cc.id, 0, 0) {
		cc.partitioned = true
		cc.partIn = fault.Uniform(in.plan.Seed, kindPartDir, cc.id, 0, 0) < 0.5
	}
	return cc
}

// conn is a net.Conn with deterministic link faults on the write path and
// one-way partitions on either path.
type conn struct {
	net.Conn
	plan *Plan
	id   int

	armed atomic.Bool
	wOps  atomic.Int64
	rOps  atomic.Int64

	partitioned bool // one-way partition from birth (once armed)
	partIn      bool // true: inbound blackhole; false: outbound blackhole
}

// Arm enables the schedule. Called by the transport after the handshake.
func (c *conn) Arm() { c.armed.Store(true) }

func (c *conn) Read(p []byte) (int, error) {
	if !c.armed.Load() {
		return c.Conn.Read(p)
	}
	if c.partitioned && c.partIn {
		// Inbound partition: consume and discard forever. The underlying
		// read still honors SetReadDeadline, so the peer's rolling deadline
		// eventually recycles the connection.
		c.rOps.Add(1)
		for {
			if _, err := c.Conn.Read(p); err != nil {
				return 0, err
			}
		}
	}
	n, err := c.Conn.Read(p)
	// Corrupt the read path too (coordinate 1 keeps the stream disjoint
	// from the write path's): with only one side of a session wrapped,
	// inbound flips are what perturb the unwrapped peer's frames.
	pl := c.plan
	if n > 0 && pl.Corrupt > 0 {
		op := int(c.rOps.Add(1))
		if fault.Decide(pl.Seed, kindCorrupt, pl.Corrupt, c.id, op, 1) {
			pos := int(fault.Uniform(pl.Seed, kindCorrByte, c.id, op, 1) * float64(n))
			bit := int(fault.Uniform(pl.Seed, kindCorrBit, c.id, op, 1) * 8)
			p[pos] ^= 1 << bit
		}
	}
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	if !c.armed.Load() {
		return c.Conn.Write(p)
	}
	pl := c.plan
	op := int(c.wOps.Add(1))
	if d := pl.Latency + time.Duration(fault.Uniform(pl.Seed, kindJitter, c.id, op, 0)*float64(pl.Jitter)); d > 0 {
		time.Sleep(d)
	}
	if c.partitioned && !c.partIn {
		return len(p), nil // outbound blackhole
	}
	if fault.Decide(pl.Seed, kindDrop, pl.Drop, c.id, op, 0) {
		// Truncate: deliver the first half, vanish the rest, report success.
		// See Plan.Drop for why this must not discard the whole write.
		if len(p) > 1 {
			if n, err := c.Conn.Write(p[:len(p)/2]); err != nil {
				return n, err
			}
		}
		return len(p), nil
	}
	buf := p
	if len(p) > 0 && fault.Decide(pl.Seed, kindCorrupt, pl.Corrupt, c.id, op, 0) {
		buf = append([]byte(nil), p...)
		pos := int(fault.Uniform(pl.Seed, kindCorrByte, c.id, op, 0) * float64(len(buf)))
		bit := int(fault.Uniform(pl.Seed, kindCorrBit, c.id, op, 0) * 8)
		buf[pos] ^= 1 << bit
	}
	n, err := c.Conn.Write(buf)
	if n > len(p) {
		n = len(p)
	}
	if err == nil && pl.Bandwidth > 0 {
		time.Sleep(time.Duration(float64(n) / float64(pl.Bandwidth) * float64(time.Second)))
	}
	if err == nil && fault.Decide(pl.Seed, kindReset, pl.Reset, c.id, op, 0) {
		c.Conn.Close() // mid-stream reset: the next operation on either side fails
	}
	return n, err
}

// BindFlags registers the standard link-chaos flags on fs (shared by
// mpcdist, mpcworker, and mpcbench) and returns a closure that assembles
// the Plan after fs.Parse; it returns nil when the plan is inactive.
func BindFlags(fs *flag.FlagSet) func() *Plan {
	seed := fs.Int64("netchaos-seed", 1, "link-fault schedule seed (schedules are deterministic and replayable)")
	latency := fs.Duration("netchaos-latency", 0, "fixed extra latency injected before every transport write")
	jitter := fs.Duration("netchaos-jitter", 0, "deterministic extra write delay in [0, jitter)")
	bandwidth := fs.Int64("netchaos-bandwidth", 0, "write bandwidth cap in bytes/second (0 = unlimited)")
	corrupt := fs.Float64("netchaos-corrupt", 0, "probability one byte of a write is bit-flipped in flight")
	drop := fs.Float64("netchaos-drop", 0, "probability a transport write is truncated in flight (stream desync)")
	reset := fs.Float64("netchaos-reset", 0, "probability the connection resets right after a write")
	partition := fs.Float64("netchaos-partition", 0, "probability a connection is one-way partitioned from birth")
	return func() *Plan {
		p := &Plan{Seed: *seed, Latency: *latency, Jitter: *jitter, Bandwidth: *bandwidth,
			Corrupt: *corrupt, Drop: *drop, Reset: *reset, Partition: *partition}
		if !p.Active() {
			return nil
		}
		return p
	}
}
