package core

import (
	"math/rand"
	"sync"
	"testing"

	"mpcdist/internal/mpc"
	"mpcdist/internal/trace"
	"mpcdist/internal/workload"
)

// wantPhases asserts the report's rounds carry exactly the expected
// (name, phase) sequence and that the profile conserves the report.
func wantPhases(t *testing.T, rep mpc.Report, want map[string]trace.Phase) {
	t.Helper()
	for _, rs := range rep.Rounds {
		ph, ok := want[rs.Name]
		if !ok {
			t.Errorf("unexpected round %q (phase %q)", rs.Name, rs.Phase)
			continue
		}
		if rs.Phase != ph {
			t.Errorf("round %q phase = %q, want %q", rs.Name, rs.Phase, ph)
		}
		if !rs.Phase.Valid() {
			t.Errorf("round %q carries invalid phase %q", rs.Name, rs.Phase)
		}
	}
}

func TestUlamMPCPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s, sbar, _ := workload.PlantedUlam(rng, 300, 30)
	res, err := UlamMPC(s, sbar, Params{X: 0.3, Eps: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantPhases(t, res.Report, map[string]trace.Phase{
		"ulam/candidates": trace.PhaseCandidates,
		"ulam/chain":      trace.PhaseChain,
	})
	prof := mpc.Profile(res.Report)
	if err := prof.Conserves(res.Report); err != nil {
		t.Errorf("ulam profile: %v", err)
	}
	if _, ok := prof.Get(trace.PhaseCandidates); !ok {
		t.Error("ulam ran no candidates round")
	}
	if _, ok := prof.Get(trace.PhaseChain); !ok {
		t.Error("ulam ran no chain round")
	}
}

func TestEditSmallMPCPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := workload.RandomString(rng, 400, 4)
	sbar := workload.PlantedEdits(rng, s, 20, 4)
	res, err := EditSmallMPC(s, sbar, 64, Params{X: 0.25, Eps: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantPhases(t, res.Report, map[string]trace.Phase{
		"edit-small/pairs": trace.PhaseCandidates,
		"edit-small/chain": trace.PhaseChain,
	})
	if err := mpc.Profile(res.Report).Conserves(res.Report); err != nil {
		t.Errorf("edit-small profile: %v", err)
	}
}

func TestEditLargeMPCPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 300
	s := workload.RandomString(rng, n, 10)
	sbar := workload.RandomString(rng, n, 10)
	res, err := EditLargeMPC(s, sbar, 280, Params{X: 0.25, Eps: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wantPhases(t, res.Report, map[string]trace.Phase{
		"edit-large/reps":   trace.PhaseGraph,
		"edit-large/join":   trace.PhaseGraph,
		"edit-large/extend": trace.PhaseGraph,
		"edit-large/chain":  trace.PhaseChain,
	})
	prof := mpc.Profile(res.Report)
	if err := prof.Conserves(res.Report); err != nil {
		t.Errorf("edit-large profile: %v", err)
	}
	if ps, ok := prof.Get(trace.PhaseGraph); !ok || ps.Rounds != 3 {
		t.Errorf("graph phase rounds = %+v, %v; want 3 rounds", ps, ok)
	}
}

// phaseChecker is an Observer that fails the test the moment any round or
// machine span arrives without a valid phase — the observer-level guarantee
// behind the taxonomy.
type phaseChecker struct {
	trace.Base
	t  *testing.T
	mu sync.Mutex
	// seen collects observed phases per event kind.
	seen map[trace.Phase]int
}

func (p *phaseChecker) RoundStart(r trace.RoundInfo) {
	if !r.Phase.Valid() {
		p.t.Errorf("RoundStart %q reached observer with invalid phase %q", r.Name, r.Phase)
	}
	p.mu.Lock()
	p.seen[r.Phase]++
	p.mu.Unlock()
}

func (p *phaseChecker) MachineEnd(s trace.MachineSpan) {
	if !s.Phase.Valid() {
		p.t.Errorf("MachineEnd %q machine %d has invalid phase %q", s.Name, s.Machine, s.Phase)
	}
}

func (p *phaseChecker) RoundEnd(r trace.RoundSummary) {
	if !r.Phase.Valid() {
		p.t.Errorf("RoundEnd %q has invalid phase %q", r.Name, r.Phase)
	}
}

func TestEditMPCObserverSeesOnlyPhasedRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	s := workload.RandomString(rng, 400, 4)
	sbar := workload.PlantedEdits(rng, s, 20, 4)
	obs := &phaseChecker{t: t, seen: map[trace.Phase]int{}}
	_, err := EditMPC(s, sbar, Params{X: 0.25, Eps: 0.5, Seed: 6, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.seen) == 0 {
		t.Fatal("observer saw no rounds")
	}
	for ph := range obs.seen {
		if !ph.Valid() {
			t.Errorf("observer saw invalid phase %q", ph)
		}
	}
}
