package core

// Lemma-level tests: each validates the quantified claim behind one of the
// paper's figures on planted instances (see the experiment index in
// DESIGN.md).

import (
	"math/rand"
	"testing"

	"mpcdist/internal/cand"
	"mpcdist/internal/editdist"
	"mpcdist/internal/ulam"
	"mpcdist/internal/workload"
)

// plantWindow builds sbar (a permutation) plus a block that transforms
// into sbar[alpha..beta] with a small Ulam distance, tracking one unchanged
// character. Returns block, alpha, beta, and an unchanged pair (p, q)
// (block-relative p, sbar-absolute q), or p = -1 if none survived.
func plantWindow(rng *rand.Rand, sbarLen, blockLen, edits int) (sbar, block []int, alpha, beta, p, q int) {
	sbar = rng.Perm(sbarLen)
	alpha = rng.Intn(sbarLen - blockLen)
	beta = alpha + blockLen - 1
	block = append([]int(nil), sbar[alpha:beta+1]...)
	changed := make([]bool, len(block))
	fresh := 10 * sbarLen
	for e := 0; e < edits; e++ {
		i := rng.Intn(len(block))
		block[i] = fresh
		changed[i] = true
		fresh++
	}
	p = -1
	for i, ch := range changed {
		if !ch {
			p, q = i, alpha+i
			break
		}
	}
	return sbar, block, alpha, beta, p, q
}

// TestLemma1LocalUlamProximity (Fig. 2): when ulam(block, window) = u is
// small, the local Ulam solution's endpoints are within 2u of the
// window's.
func TestLemma1LocalUlamProximity(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 80; trial++ {
		blockLen := 16 + rng.Intn(32)
		edits := rng.Intn(blockLen / 3) // u < B/2 regime
		sbar, block, alpha, beta, _, _ := plantWindow(rng, 200, blockLen, edits)
		u := ulam.Exact(block, sbar[alpha:beta+1], nil)
		d, win := ulam.Local(block, sbar, nil)
		if d > u {
			t.Fatalf("lulam %d exceeds window distance %d", d, u)
		}
		if abs(win.Gamma-alpha) > 2*u || abs(win.Kappa-beta) > 2*u {
			t.Fatalf("lulam window [%d,%d] not within 2u=%d of planted [%d,%d] (u=%d d=%d)",
				win.Gamma, win.Kappa, 2*u, alpha, beta, u, d)
		}
	}
}

// TestLemma2AnchorProximity (Fig. 3): an unchanged character s[p] -> sbar[q]
// anchors a window [gamma, kappa] = [q-p, q+(B-1-p)] within u of the
// planted window's endpoints.
func TestLemma2AnchorProximity(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 80; trial++ {
		blockLen := 16 + rng.Intn(32)
		edits := rng.Intn(blockLen)
		sbar, block, alpha, beta, p, q := plantWindow(rng, 200, blockLen, edits)
		if p < 0 {
			continue
		}
		u := ulam.Exact(block, sbar[alpha:beta+1], nil)
		gamma := q - p
		kappa := q + (blockLen - 1 - p)
		if abs(gamma-alpha) > u || abs(kappa-beta) > u {
			t.Fatalf("anchor window [%d,%d] not within u=%d of [%d,%d]",
				gamma, kappa, u, alpha, beta)
		}
	}
}

// TestLemma5CandidateCover (Figs. 4-5): the grid of starting points and
// geometric ladder of ending points contains an approximately optimal
// candidate for any window satisfying the lemma's length bounds.
func TestLemma5CandidateCover(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	eps := 0.25
	for trial := 0; trial < 120; trial++ {
		m := 400
		blockLen := 40
		l := rng.Intn(m - blockLen) // block offset in s
		g := 10 + rng.Intn(150)     // distance guess
		grid := maxInt(1, int(eps*float64(g)/8))
		maxWin := int(float64(blockLen)/eps) + 1
		// A planted "opt" window within the lemma's bounds. Its length may
		// deviate from the block length by at most the guess (a block's
		// share of the distance cannot exceed the total), and stays under
		// the (1/eps)·B cap.
		alpha := l - g + rng.Intn(2*g)
		alpha = maxInt(0, minInt(alpha, m-1))
		if alpha+grid > m-1 {
			continue // interior windows only: Lemma 5 presumes alpha+G <= n
		}
		dev := rng.Intn(minInt(g, blockLen-1)+1) * (1 - 2*rng.Intn(2))
		wlen := minInt(maxInt(1, blockLen+dev), maxWin)
		beta := minInt(alpha+wlen-1, m-1)
		ed := abs(wlen-blockLen) + rng.Intn(10) // plausible distance

		found := false
		for _, ap := range cand.Starts(l, g, grid, m) {
			if ap < alpha || ap > alpha+grid {
				continue // condition 3 window
			}
			for _, bp := range cand.Ends(ap, blockLen, m, eps, maxWin, g) {
				lo := beta - grid - int(eps*float64(ed)) - int(eps*float64(abs(beta-alpha+1-blockLen))) - 2
				if bp >= lo && bp <= beta {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Fatalf("no approximately optimal candidate for l=%d g=%d window=[%d,%d] (grid=%d)",
				l, g, alpha, beta, grid)
		}
	}
}

// TestLemma7TriangleEdges (Fig. 6): every edge added through a
// representative has true distance at most 3·tau, and dense nodes are
// covered by some representative with high probability.
func TestLemma7TriangleEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	// Clustered strings: clusters of near-identical strings are dense in
	// G_tau; isolated strings are sparse.
	var nodes [][]byte
	for c := 0; c < 6; c++ {
		center := workload.RandomString(rng, 60, 4)
		for i := 0; i < 12; i++ {
			nodes = append(nodes, workload.PlantedEdits(rng, center, 2, 4))
		}
	}
	for i := 0; i < 10; i++ {
		nodes = append(nodes, workload.RandomString(rng, 60, 4))
	}
	tau := 6
	deg := make([]int, len(nodes))
	dist := make([][]int, len(nodes))
	for i := range nodes {
		dist[i] = make([]int, len(nodes))
		for j := range nodes {
			dist[i][j] = editdist.Distance(nodes[i], nodes[j], nil)
		}
	}
	for i := range nodes {
		for j := range nodes {
			if i != j && dist[i][j] <= tau {
				deg[i]++
			}
		}
	}
	h := 8 // degree threshold
	// Sample representatives at the paper's rate.
	var reps []int
	p := 2.0 * 4.4 / float64(h) // 2 ln(n)/h with n ~ 82
	for i := range nodes {
		if rng.Float64() < p {
			reps = append(reps, i)
		}
	}
	// Edge generation via N_tau(z) x N_2tau(z).
	covered := make(map[int]bool)
	for _, z := range reps {
		for v := range nodes {
			if dist[z][v] > tau {
				continue
			}
			covered[v] = true
			for u := range nodes {
				if dist[z][u] <= 2*tau && u != v {
					if dist[v][u] > 3*tau {
						t.Fatalf("triangle edge (%d,%d) has distance %d > 3tau=%d",
							v, u, dist[v][u], 3*tau)
					}
				}
			}
		}
	}
	// Dense nodes must be covered (whp; fixed seed).
	misses := 0
	for v := range nodes {
		if deg[v] >= h && !covered[v] {
			misses++
		}
	}
	if misses > len(nodes)/20 {
		t.Errorf("%d dense nodes uncovered (reps=%d)", misses, len(reps))
	}
}

// TestLowDegreeExtension (Fig. 7): if block v maps to window w, a
// same-group neighbor block j maps to the shifted window with distance at
// most ed(v,w) plus twice the distance the neighbor contributes — i.e. the
// extension's cost is bounded by a constant multiple of the local optima.
func TestLowDegreeExtension(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 40; trial++ {
		n := 400
		s := workload.RandomString(rng, n, 4)
		sbar := workload.PlantedEdits(rng, s, 10, 4)
		m := len(sbar)
		bsz := 50
		// Adjacent blocks v (at l0) and j (at l0+bsz).
		l0 := rng.Intn(n - 2*bsz)
		bv := s[l0 : l0+bsz]
		bj := s[l0+bsz : l0+2*bsz]
		// Best window for v by scanning starts near the diagonal.
		bestD, bestG := bsz+1, l0
		for gamma := maxInt(0, l0-20); gamma <= minInt(m-bsz, l0+20); gamma++ {
			if d := editdist.Distance(bv, sbar[gamma:minInt(gamma+bsz, m)], nil); d < bestD {
				bestD, bestG = d, gamma
			}
		}
		// Extension: j gets the shifted window.
		gj := bestG + bsz
		if gj+bsz > m {
			continue
		}
		dj := editdist.Distance(bj, sbar[gj:gj+bsz], nil)
		// Fig. 7's claim, loosely: the shifted window is within a constant
		// multiple of the total local distortion.
		budget := 2*(bestD+1) + 20 // 20 >= planted distance upper bound
		if dj > budget {
			t.Fatalf("extension distance %d exceeds budget %d (bestD=%d)", dj, budget, bestD)
		}
	}
}
