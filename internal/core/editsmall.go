package core

import (
	"fmt"

	"mpcdist/internal/approx"
	"mpcdist/internal/cand"
	"mpcdist/internal/chain"
	"mpcdist/internal/editdist"
	"mpcdist/internal/mpc"
	"mpcdist/internal/trace"
)

// editJob is a round-1 payload for the small-distance regime: one block of
// s plus a run of consecutive candidate starting points, with the segment
// of sbar that covers every window those starts can open (Section 5.1.1:
// "we give several candidate substrings of each block to a machine").
type editJob struct {
	L, R   int    // block interval in s
	Block  []byte // s[L..R]
	SegOff int    // offset of Seg within sbar
	Seg    []byte // sbar[SegOff .. SegOff+len(Seg)-1]
	Starts []int  // absolute candidate starting points in sbar
	Guess  int    // the distance guess n^delta
	MaxWin int    // window length cap (1/eps')·B
}

// Words implements mpc.Payload.
func (j *editJob) Words() int {
	return 7 + len(j.Starts) + (len(j.Block)+7)/8 + (len(j.Seg)+7)/8
}

// pairDistances prices the ladder of windows opening at gamma against the
// job's block, with the kernel chosen by p.Solver. The default exact
// kernel scores every ladder end in one bit-parallel pass (the ends are
// prefixes of the longest window).
func pairDistances(job *editJob, gamma int, kappas, prefixes []int, dFilter int, p Params, x *mpc.Ctx) []int {
	maxKappa := kappas[len(kappas)-1]
	for _, k := range kappas {
		if k > maxKappa {
			maxKappa = k
		}
	}
	full := job.Seg[gamma-job.SegOff : maxKappa-job.SegOff+1]
	switch p.Solver {
	case PairApprox12:
		ds := make([]int, len(kappas))
		for i, plen := range prefixes {
			win := full[:plen]
			ds[i] = approx.Ed(job.Block, win, approx.Params{
				Eps:  p.Eps / 4,
				Cap:  minInt(dFilter, len(job.Block)+plen),
				Seed: p.Seed ^ int64(x.Machine)<<20 ^ int64(gamma),
			}, x.Counter())
		}
		return ds
	case PairMyers:
		ds := make([]int, len(kappas))
		for i, plen := range prefixes {
			ds[i] = editdist.Myers(job.Block, full[:plen], x.Counter())
		}
		return ds
	default: // PairHybridExact
		return editdist.MyersMulti(job.Block, full, prefixes, x.Counter())
	}
}

// editSmall runs the two-round small-distance algorithm (Lemma 6) for a
// fixed distance guess g, returning the chain value and the cluster report.
// The approximation factor is (3+eps) with the default [12]-substitute pair
// solver, or 1+eps with ExactPairs.
func editSmall(s, sbar []byte, g int, p Params) (int, mpc.Report, error) {
	n, m := len(s), len(sbar)
	N := maxInt(n, m)
	cl := p.cluster(N)
	epsP := p.Eps / 4 // the paper uses eps/22; /4 keeps simulator-scale candidate sets sane
	bsz := intPow(N, 1-p.X)
	nBlocks := (n + bsz - 1) / bsz
	grid := maxInt(1, int(epsP*float64(g)/float64(maxInt(nBlocks, 1))))
	maxWin := int(float64(bsz)/epsP) + 1

	// Distribute: for each block, runs of eta = B/G consecutive starts.
	// Driver-side block partition, labeled phase=partition for profiles.
	eta := maxInt(1, bsz/grid)
	inputs := make(map[int][]mpc.Payload)
	trace.LabelPhase(p.Algo, trace.PhasePartition, "edit/small/partition", func() {
		id := 0
		for l := 0; l < n; l += bsz {
			r := minInt(l+bsz-1, n-1)
			starts := cand.Starts(l, g, grid, m)
			for lo := 0; lo < len(starts); lo += eta {
				hi := minInt(lo+eta, len(starts))
				run := starts[lo:hi]
				segLo := run[0]
				segHi := minInt(run[len(run)-1]+maxWin, m)
				inputs[id] = []mpc.Payload{&editJob{
					L: l, R: r,
					Block:  s[l : r+1],
					SegOff: segLo,
					Seg:    sbar[segLo:segHi],
					Starts: append([]int(nil), run...),
					Guess:  g,
					MaxWin: maxWin,
				}}
				id++
			}
		}
	})
	collector := 0
	if len(inputs) == 0 {
		// No blocks (empty s) or no starts (empty sbar): trivial answer.
		return n + m, cl.Report(), nil
	}

	dFilter := int((3 + p.Eps) * float64(g))

	out, err := cl.Run("edit-small/pairs", trace.PhaseCandidates, inputs, func(x *mpc.Ctx, in []mpc.Payload) {
		for _, pl := range in {
			job := pl.(*editJob)
			blen := len(job.Block)
			for _, gamma := range job.Starts {
				var kappas, prefixes []int
				for _, kappa := range cand.Ends(gamma, blen, m, epsP, job.MaxWin, job.Guess) {
					if kappa-job.SegOff >= len(job.Seg) {
						continue // outside this machine's segment
					}
					kappas = append(kappas, kappa)
					prefixes = append(prefixes, kappa-gamma+1)
				}
				if len(kappas) == 0 {
					continue
				}
				ds := pairDistances(job, gamma, kappas, prefixes, dFilter, p, x)
				for i, kappa := range kappas {
					d := ds[i]
					// Tuples costlier than the acceptance threshold, or
					// dominated by deleting the block and inserting the
					// window, can never appear in an accepted chain.
					if d > dFilter || d > blen+prefixes[i] {
						continue
					}
					x.Send(collector, tupleMsg(chain.Tuple{L: job.L, R: job.R, G: gamma, K: kappa, D: d}))
				}
			}
		}
	})
	if err != nil {
		return 0, mpc.Report{}, err
	}
	if _, ok := out[collector]; !ok {
		out[collector] = []mpc.Payload{}
	}

	// Round 2: Algorithm 4 on one machine.
	fin, err := cl.Run("edit-small/chain", trace.PhaseChain, out, func(x *mpc.Ctx, in []mpc.Payload) {
		tuples := make([]chain.Tuple, 0, len(in))
		for _, pl := range in {
			tuples = append(tuples, chain.Tuple(pl.(tupleMsg)))
		}
		v := chain.EditCost(tuples, n, m, false, x.Counter())
		x.Send(collector, valueMsg(v))
	})
	if err != nil {
		return 0, mpc.Report{}, err
	}
	vals := fin[collector]
	if len(vals) != 1 {
		return 0, mpc.Report{}, fmt.Errorf("core: edit-small chain produced %d values", len(vals))
	}
	return int(vals[0].(valueMsg)), cl.Report(), nil
}
