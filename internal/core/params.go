// Package core implements the paper's contribution: the two-round 1+eps
// MPC algorithm for Ulam distance (Theorem 4, Algorithms 1 and 2) and the
// four-round 3+eps MPC algorithm for edit distance (Theorem 9, Algorithms
// 3-7), on top of the simulated cluster in internal/mpc.
package core

import (
	"context"
	"fmt"
	"math"

	"mpcdist/internal/chain"
	"mpcdist/internal/fault"
	"mpcdist/internal/mpc"
	"mpcdist/internal/trace"
	"mpcdist/internal/transport"
)

// Params configures an MPC execution. The zero value is not valid; use
// DefaultParams or fill in X.
type Params struct {
	// X is the memory exponent: each machine holds Õ(n^{1-X}) words.
	// Theorem 4 requires 0 < X < 1/2; Theorem 9 requires 0 < X <= 5/17.
	X float64
	// Eps is the approximation slack (the paper's epsilon). Zero means 0.5.
	Eps float64
	// Seed drives all sampling (hitting sets, representatives, low-degree
	// sampling) through the cluster's deterministic streams.
	Seed int64
	// MemFactor scales the per-machine memory budget constant hidden in the
	// Õ. Zero means 16. Larger values absorb the polylog·poly(1/eps)
	// factors at small n; the harness reports the memory actually used.
	MemFactor float64
	// HitConst is the constant in the hitting-set rate theta =
	// HitConst·log(n)/(eps'·B) of Algorithm 1 (the paper uses 8; smaller
	// values keep simulator-scale candidate sets manageable at a small
	// failure-probability cost). Zero means 4.
	HitConst float64
	// Parallelism bounds concurrently simulated machines (0 = GOMAXPROCS).
	Parallelism int
	// Ctx, when non-nil, cancels the simulation between rounds (and before
	// each machine executes), so a caller-imposed timeout or disconnect
	// aborts a long run promptly. Nil means no cancellation.
	Ctx context.Context
	// Observer, when non-nil, receives the cluster's execution events
	// (round and per-machine spans; see internal/trace) — the hook behind
	// the -trace flags and the server's inline traces. Must be safe for
	// concurrent use.
	Observer trace.Observer
	// Solver selects the block/candidate pair kernel for the edit-distance
	// small regime (see PairSolver).
	Solver PairSolver
	// Faults, when non-nil and active, injects the plan's deterministic
	// fault schedule into every cluster round (crashes recovered by exact
	// replay, message loss/duplication recovered in the shuffle, straggler
	// delays); see internal/fault. Nil means fault-free.
	Faults *fault.Plan
	// MaxRetries is the per-machine-round / per-message recovery budget
	// (0 = mpc.DefaultMaxRetries).
	MaxRetries int
	// Algo names the pipeline for profiler labels and the flight recorder
	// ("ulam-mpc", "edit-mpc", ...). The drivers fill it in on entry when
	// empty, so callers never need to set it; it is advisory observability
	// metadata and never feeds a counter.
	Algo string
	// Transport, when non-nil, runs every cluster round over the given
	// shuffle transport (see internal/transport and internal/dist): the
	// round's machines are partitioned across the transport's parties and
	// execution records are all-gathered at a per-round barrier. Nil means
	// in-process execution. Distance guesses that use several clusters
	// (EditMPC) share the one transport; its exchange sequence numbers run
	// across cluster boundaries.
	Transport transport.Transport
	// Checkpointer, when non-nil, snapshots every completed cluster round
	// and fast-forwards rounds already completed by a previous run (see
	// internal/checkpoint). Drivers that build several clusters per job
	// (EditMPC's guess ladder) share the one Checkpointer; its step counter
	// runs across cluster boundaries. Nil means no durability.
	Checkpointer mpc.Checkpointer
}

// PairSolver selects the per-pair edit-distance kernel used by the
// small-distance regime's machines.
type PairSolver int

const (
	// PairHybridExact (default) picks, per pair, the cheaper of the banded
	// exact kernel capped at the guess-derived relevance threshold and the
	// bit-parallel exact kernel. Exact distances make the small regime a
	// 1+eps scheme. At every simulator-reachable block size the
	// bit-parallel constant 1/64 beats the n^{1/6} asymptotic advantage of
	// [12], so this is also the fastest kernel in practice.
	PairHybridExact PairSolver = iota
	// PairApprox12 uses the approx package's [12]-substitute (factor
	// 3+eps), matching the paper's algorithm as stated. The regime's
	// approximation guarantee becomes 3+eps.
	PairApprox12
	// PairMyers always uses the bit-parallel exact kernel.
	PairMyers
)

func (p Params) withDefaults() Params {
	if p.Eps <= 0 {
		p.Eps = 0.5
	}
	if p.MemFactor <= 0 {
		p.MemFactor = 16
	}
	if p.HitConst <= 0 {
		p.HitConst = 4
	}
	return p
}

// Validate checks the exponent range for the given problem size.
func (p Params) validate(n int, maxX float64) error {
	if n <= 0 {
		return fmt.Errorf("core: empty input")
	}
	if p.X <= 0 || p.X >= maxX {
		return fmt.Errorf("core: X = %v outside (0, %v)", p.X, maxX)
	}
	return nil
}

// intPow returns round(n^e) clamped to at least 1.
func intPow(n int, e float64) int {
	v := int(math.Round(math.Pow(float64(n), e)))
	if v < 1 {
		v = 1
	}
	return v
}

// memoryBudget is the enforced per-machine cap: MemFactor·n^{1-x}·
// (1+ln n)²/eps² words — the explicit polylog·poly(1/eps) constant behind
// the paper's Õ_eps(n^{1-x}) (candidate sets are Õ(1/eps'^5) per block
// with a log² n factor, Section 4.1).
func (p Params) memoryBudget(n int) int {
	lg := 1 + math.Log(float64(n)+1)
	b := p.MemFactor * math.Pow(float64(n), 1-p.X) * lg * lg / (p.Eps * p.Eps)
	if b < 64 {
		b = 64
	}
	if b > 1<<40 {
		b = 1 << 40
	}
	return int(b)
}

func (p Params) cluster(n int) *mpc.Cluster {
	return mpc.NewCluster(mpc.Config{
		MachineWords: p.memoryBudget(n),
		Parallelism:  p.Parallelism,
		Seed:         p.Seed,
		Ctx:          p.Ctx,
		Observer:     p.Observer,
		Faults:       p.Faults,
		MaxRetries:   p.MaxRetries,
		Algo:         p.Algo,
		Transport:    p.Transport,
		Checkpointer: p.Checkpointer,
	})
}

// Result is the outcome of an MPC execution.
type Result struct {
	// Value is the computed (approximate) distance.
	Value int
	// Report holds the measured model quantities (rounds, machines, memory,
	// total and critical-path work).
	Report mpc.Report
	// Guess is the accepted distance guess n^delta (edit distance only).
	Guess int
	// Regime is "small", "large", or "" (Ulam / exact zero).
	Regime string
	// GuessReports holds one report per distance guess tried; the paper
	// runs the guesses in parallel, so Report aggregates them with
	// rounds = max, machines/ops = sum (edit distance only).
	GuessReports []mpc.Report
	// Chain is the selected tuple chain realizing Value (Ulam distance
	// only): which block of s maps to which window of sbar. Blocks not
	// present are handled inside the surrounding gaps.
	Chain []chain.Tuple
}

// ladder enumerates 1, then ceil((1+eps)^j) without repeats, up to max
// (inclusive); it always ends with a value >= max.
func ladder(eps float64, max int) []int {
	if max < 1 {
		return []int{1}
	}
	var out []int
	v := 1.0
	for {
		iv := int(math.Ceil(v))
		if len(out) == 0 || iv > out[len(out)-1] {
			out = append(out, iv)
		}
		if iv >= max {
			return out
		}
		v *= 1 + eps
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// WithDefaults returns a copy of p with zero-valued fields replaced by
// their defaults. Exported for the baseline and harness packages.
func (p Params) WithDefaults() Params { return p.withDefaults() }

// Cluster constructs the memory-enforced simulated cluster for problem
// size n. Exported for the baseline and harness packages.
func (p Params) Cluster(n int) *mpc.Cluster { return p.cluster(n) }

// MemoryBudget reports the per-machine word cap for problem size n.
func (p Params) MemoryBudget(n int) int { return p.memoryBudget(n) }
