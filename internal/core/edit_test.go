package core

import (
	"math/rand"
	"testing"

	"mpcdist/internal/editdist"
	"mpcdist/internal/workload"
)

func TestEditMPCValidation(t *testing.T) {
	if _, err := EditMPC([]byte("ab"), []byte("cd"), Params{X: 0.4}); err == nil {
		t.Error("X > 5/17 accepted")
	}
	if _, err := EditMPC([]byte("ab"), []byte("cd"), Params{X: 0}); err == nil {
		t.Error("X = 0 accepted")
	}
}

func TestEditMPCEqualAndEmpty(t *testing.T) {
	res, err := EditMPC([]byte("hello"), []byte("hello"), Params{X: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 || res.Regime != "equal" {
		t.Errorf("equal strings: %+v", res)
	}
	res, err = EditMPC(nil, nil, Params{X: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Errorf("empty strings: %+v", res)
	}
}

func editFactor(t *testing.T, s, sbar []byte, p Params) (float64, Result) {
	t.Helper()
	res, err := EditMPC(s, sbar, p)
	if err != nil {
		t.Fatal(err)
	}
	exact := editdist.Distance(s, sbar, nil)
	if res.Value < exact {
		t.Fatalf("MPC value %d below exact %d", res.Value, exact)
	}
	if exact == 0 {
		return 1, res
	}
	return float64(res.Value) / float64(exact), res
}

func TestEditMPCSmallDistancePlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	p := Params{X: 0.25, Eps: 0.5, Seed: 1}
	for trial := 0; trial < 3; trial++ {
		n := 600 + rng.Intn(400)
		s := workload.RandomString(rng, n, 4)
		sbar := workload.PlantedEdits(rng, s, 5+rng.Intn(40), 4)
		f, res := editFactor(t, s, sbar, p)
		if f > 1+p.Eps {
			t.Errorf("factor %.3f > %.3f (n=%d)", f, 1+p.Eps, n)
		}
		if res.Regime != "small" {
			t.Errorf("expected small regime, got %q (guess %d)", res.Regime, res.Guess)
		}
		if res.Report.NumRounds != 2 {
			t.Errorf("small regime rounds = %d, want 2", res.Report.NumRounds)
		}
	}
}

func TestEditMPCExactPairsIsTight(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	p := Params{X: 0.25, Eps: 0.5, Seed: 2, Solver: PairMyers}
	for trial := 0; trial < 3; trial++ {
		n := 500 + rng.Intn(300)
		s := workload.RandomString(rng, n, 4)
		sbar := workload.PlantedEdits(rng, s, 5+rng.Intn(30), 4)
		f, _ := editFactor(t, s, sbar, p)
		if f > 1+p.Eps {
			t.Errorf("ExactPairs factor %.3f > %.3f", f, 1+p.Eps)
		}
	}
}

func TestEditMPCShift(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	s := workload.RandomString(rng, 700, 6)
	p := Params{X: 0.25, Eps: 0.5, Seed: 3}
	for _, k := range []int{2, 11} {
		sbar := workload.Shift(s, k)
		f, _ := editFactor(t, s, sbar, p)
		if f > 3.5 {
			t.Errorf("shift %d: factor %.3f", k, f)
		}
	}
}

func TestEditMPCFarStringsLargeRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	p := Params{X: 0.25, Eps: 1, Seed: 4}
	n := 400
	s := workload.RandomString(rng, n, 12)
	sbar := workload.RandomString(rng, n, 12)
	f, res := editFactor(t, s, sbar, p)
	if f > 3+2*p.Eps {
		t.Errorf("far strings: factor %.3f > %.3f", f, 3+2*p.Eps)
	}
	if res.Report.NumRounds > 4 {
		t.Errorf("rounds = %d, want <= 4", res.Report.NumRounds)
	}
	t.Logf("far: value=%d regime=%s guess=%d rounds=%d machines=%d",
		res.Value, res.Regime, res.Guess, res.Report.NumRounds, res.Report.MaxMachines)
}

func TestEditLargeMPCDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	n := 300
	s := workload.RandomString(rng, n, 10)
	sbar := workload.RandomString(rng, n, 10)
	exact := editdist.Distance(s, sbar, nil)
	res, err := EditLargeMPC(s, sbar, maxInt(exact, 1), Params{X: 0.25, Eps: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < exact {
		t.Fatalf("large value %d below exact %d", res.Value, exact)
	}
	if float64(res.Value) > 4*float64(exact)+1 {
		t.Errorf("large regime value %d vs exact %d exceeds factor 4", res.Value, exact)
	}
	if res.Report.NumRounds != 4 {
		t.Errorf("large regime rounds = %d, want 4", res.Report.NumRounds)
	}
}

func TestEditSmallMPCDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	s := workload.RandomString(rng, 500, 4)
	sbar := workload.PlantedEdits(rng, s, 25, 4)
	exact := editdist.Distance(s, sbar, nil)
	res, err := EditSmallMPC(s, sbar, maxInt(2*exact, 4), Params{X: 0.25, Eps: 0.5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < exact {
		t.Fatalf("small value %d below exact %d", res.Value, exact)
	}
	if res.Report.NumRounds != 2 {
		t.Errorf("small regime rounds = %d, want 2", res.Report.NumRounds)
	}
}

func TestEditMPCDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	s := workload.RandomString(rng, 400, 4)
	sbar := workload.PlantedEdits(rng, s, 20, 4)
	p := Params{X: 0.25, Eps: 0.5, Seed: 7}
	r1, err := EditMPC(s, sbar, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := EditMPC(s, sbar, p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value != r2.Value || r1.Report.TotalOps != r2.Report.TotalOps {
		t.Errorf("nondeterministic: %d/%d vs %d/%d",
			r1.Value, r1.Report.TotalOps, r2.Value, r2.Report.TotalOps)
	}
}

func TestEditMPCDNA(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	s := workload.DNA(rng, 800)
	sbar := workload.PlantedDNA(rng, s, 30)
	f, _ := editFactor(t, s, sbar, Params{X: 0.2, Eps: 0.5, Seed: 8})
	if f > 3.5 {
		t.Errorf("DNA factor %.3f", f)
	}
}

// TestTheorem9EndToEnd is the named umbrella for the paper's main edit
// distance claim: factor within 3+eps (1+eps with exact pairs), at most 4
// rounds per guess, memory cap respected, on a mix of workloads.
func TestTheorem9EndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	p := Params{X: 0.25, Eps: 0.5, Seed: 9}.withDefaults()
	budget := p.memoryBudget(900)
	for trial, mk := range []func() ([]byte, []byte){
		func() ([]byte, []byte) {
			s := workload.RandomString(rng, 900, 4)
			return s, workload.PlantedEdits(rng, s, 45, 4)
		},
		func() ([]byte, []byte) {
			s := workload.DNA(rng, 900)
			return s, workload.PlantedDNA(rng, s, 30)
		},
		func() ([]byte, []byte) {
			s := workload.RandomString(rng, 900, 6)
			return s, workload.Shift(s, 17)
		},
	} {
		s, sbar := mk()
		res, err := EditMPC(s, sbar, p)
		if err != nil {
			t.Fatalf("workload %d: %v", trial, err)
		}
		exact := editdist.Myers(s, sbar, nil)
		if res.Value < exact {
			t.Fatalf("workload %d: value %d below exact %d", trial, res.Value, exact)
		}
		if exact > 0 && float64(res.Value) > (3+p.Eps)*float64(exact) {
			t.Errorf("workload %d: factor %.3f", trial, float64(res.Value)/float64(exact))
		}
		if res.Report.NumRounds > 4 {
			t.Errorf("workload %d: rounds %d > 4", trial, res.Report.NumRounds)
		}
		if res.Report.MaxWords > budget {
			t.Errorf("workload %d: memory %d > budget %d", trial, res.Report.MaxWords, budget)
		}
	}
}

// TestEditMPCApprox12Solver runs the paper-faithful configuration (the
// [12]-substitute pair solver) end to end: factor within 3+eps.
func TestEditMPCApprox12Solver(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	p := Params{X: 0.25, Eps: 0.5, Seed: 3, Solver: PairApprox12}
	s := workload.RandomString(rng, 400, 4)
	sbar := workload.PlantedEdits(rng, s, 20, 4)
	res, err := EditMPC(s, sbar, p)
	if err != nil {
		t.Fatal(err)
	}
	exact := editdist.Distance(s, sbar, nil)
	if res.Value < exact {
		t.Fatalf("value %d below exact %d", res.Value, exact)
	}
	if float64(res.Value) > (3+p.Eps)*float64(exact)+1 {
		t.Errorf("factor %.3f exceeds 3+eps", float64(res.Value)/float64(exact))
	}
}

// TestEditLargeRoundNames pins the four-round structure of Lemma 8.
func TestEditLargeRoundNames(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	s := workload.RandomString(rng, 300, 10)
	sbar := workload.RandomString(rng, 300, 10)
	res, err := EditLargeMPC(s, sbar, 256, Params{X: 0.25, Eps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"edit-large/reps", "edit-large/join", "edit-large/extend", "edit-large/chain"}
	if len(res.Report.Rounds) != len(want) {
		t.Fatalf("rounds = %d, want 4", len(res.Report.Rounds))
	}
	for i, r := range res.Report.Rounds {
		if r.Name != want[i] {
			t.Errorf("round %d = %q, want %q", i, r.Name, want[i])
		}
	}
}
