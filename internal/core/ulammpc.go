package core

import (
	"fmt"
	"math"

	"mpcdist/internal/chain"
	"mpcdist/internal/mpc"
	"mpcdist/internal/trace"
	"mpcdist/internal/ulam"
)

// ulamJob is the round-1 payload for one block of s: the block's interval,
// the length of sbar, and the positions in sbar of the block's characters.
// Per Section 3.1, this is the only information about sbar the machine
// needs, and it is Õ(B) words.
type ulamJob struct {
	L, R    int
	SbarLen int
	Pairs   []ulam.Pair
}

// Words implements mpc.Payload.
func (j *ulamJob) Words() int { return 4 + 2*len(j.Pairs) }

// tupleMsg carries one chain tuple to the phase-2 machine.
type tupleMsg chain.Tuple

// Words implements mpc.Payload.
func (tupleMsg) Words() int { return 5 }

// valueMsg carries the final answer.
type valueMsg int

// Words implements mpc.Payload.
func (valueMsg) Words() int { return 1 }

// chainMsg carries one selected tuple of the final chain back to the
// driver.
type chainMsg chain.Tuple

// Words implements mpc.Payload.
func (chainMsg) Words() int { return 5 }

// UlamMPC approximates ulam(s, sbar) within 1+eps with high probability in
// two MPC rounds (Theorem 4). Both inputs must have distinct characters.
// It requires 0 < X < 1/2.
func UlamMPC(s, sbar []int, p Params) (Result, error) {
	p = p.withDefaults()
	if p.Algo == "" {
		p.Algo = "ulam-mpc"
	}
	n := maxInt(len(s), len(sbar))
	if err := p.validate(n, 0.5); err != nil {
		return Result{}, err
	}
	if err := ulam.CheckDistinct(s); err != nil {
		return Result{}, err
	}
	if err := ulam.CheckDistinct(sbar); err != nil {
		return Result{}, err
	}

	epsP := p.Eps / 2 // the paper's eps' = eps/2 (Section 4)
	bsz := intPow(n, 1-p.X)
	cl := p.cluster(n)

	// Distribute: one machine per block, carrying the block's match pairs.
	// This is driver-side block partition (the simulator's drivers
	// partition outside rounds), labeled phase=partition for CPU profiles.
	inputs := make(map[int][]mpc.Payload)
	trace.LabelPhase(p.Algo, trace.PhasePartition, "ulam/partition", func() {
		pos := make(map[int]int, len(sbar))
		for q, v := range sbar {
			pos[v] = q
		}
		blockID := 0
		for l := 0; l < len(s); l += bsz {
			r := minInt(l+bsz-1, len(s)-1)
			job := &ulamJob{L: l, R: r, SbarLen: len(sbar)}
			for pRel := 0; pRel <= r-l; pRel++ {
				if q, ok := pos[s[l+pRel]]; ok {
					job.Pairs = append(job.Pairs, ulam.Pair{P: pRel, Q: q})
				}
			}
			inputs[blockID] = []mpc.Payload{job}
			blockID++
		}
	})
	if len(s) == 0 {
		// Degenerate: nothing to transform; cost is inserting all of sbar.
		return Result{Value: len(sbar), Report: cl.Report()}, nil
	}

	// Round 1: Algorithm 1 on every block machine.
	collector := 0
	out, err := cl.Run("ulam/candidates", trace.PhaseCandidates, inputs, func(x *mpc.Ctx, in []mpc.Payload) {
		for _, pl := range in {
			job := pl.(*ulamJob)
			runUlamRound1(x, job, n, epsP, p.HitConst, collector)
		}
	})
	if err != nil {
		return Result{}, err
	}
	if _, ok := out[collector]; !ok {
		// No candidates anywhere (e.g. disjoint alphabets): the chain
		// machine still runs and reports the trivial transformation.
		out[collector] = []mpc.Payload{}
	}

	// Round 2: Algorithm 2 on a single machine. Alongside the value, the
	// machine ships back the selected chain — the approximate decomposition
	// of s into matched windows of sbar.
	fin, err := cl.Run("ulam/chain", trace.PhaseChain, out, func(x *mpc.Ctx, in []mpc.Payload) {
		tuples := make([]chain.Tuple, 0, len(in))
		for _, pl := range in {
			tuples = append(tuples, chain.Tuple(pl.(tupleMsg)))
		}
		v, picked := chain.UlamCostChain(tuples, len(s), len(sbar), x.Counter())
		x.Send(collector, valueMsg(v))
		for _, t := range picked {
			x.Send(collector, chainMsg(t))
		}
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Report: cl.Report()}
	found := false
	for _, pl := range fin[collector] {
		switch v := pl.(type) {
		case valueMsg:
			res.Value = int(v)
			found = true
		case chainMsg:
			res.Chain = append(res.Chain, chain.Tuple(v))
		}
	}
	if !found {
		return Result{}, fmt.Errorf("core: ulam chain produced no value")
	}
	return res, nil
}

// runUlamRound1 is Algorithm 1: build candidate substrings for the block
// and emit a tuple with the Ulam distance for each.
func runUlamRound1(x *mpc.Ctx, job *ulamJob, n int, epsP, hitConst float64, collector int) {
	blen := job.R - job.L + 1
	m := job.SbarLen
	d0, win := ulam.LocalPairs(blen, job.Pairs, m, x.Counter())
	dists := make(map[[2]int]int)
	emitted := make(map[[2]int]bool)
	type cand struct{ sp, ep, d int }
	var kept []cand
	emit := func(sp, ep, d int) {
		key := [2]int{sp, ep}
		if emitted[key] {
			return
		}
		emitted[key] = true
		kept = append(kept, cand{sp, ep, d})
	}
	// addCand evaluates the candidate and emits it if its distance is
	// consistent with the current guess u: the approximately-optimal
	// candidate at the true scale has distance <= (1+2eps')·u-hat
	// (Lemma 3), so candidates far above the scale are junk for this u
	// and may be produced again (and kept) at their own scale.
	addCand := func(sp, ep, uh int) {
		if sp < 0 {
			sp = 0
		}
		if ep > m-1 {
			ep = m - 1
		}
		if sp > ep || m == 0 {
			return
		}
		key := [2]int{sp, ep}
		d, ok := dists[key]
		if !ok {
			d = ulam.WindowDist(blen, job.Pairs, sp, ep, x.Counter())
			dists[key] = d
		}
		if float64(d) <= (1+3*epsP)*float64(uh) {
			emit(sp, ep, d)
		}
	}

	if win.Len() > 0 {
		// Line 2-3 (and the u = 0 special case): the local Ulam optimum
		// itself is always a valid tuple.
		emit(win.Gamma, win.Kappa, d0)
	}

	// The hitting set I (line 12) is sampled once; it does not depend on
	// the distance guess u.
	theta := hitConst * math.Log(float64(n)+2) / (epsP * float64(blen))
	rng := x.Rand()
	type anchor struct{ gamma, kappa int }
	var anchors []anchor
	for _, pr := range job.Pairs {
		if rng.Float64() < theta {
			anchors = append(anchors, anchor{
				gamma: pr.Q - pr.P,
				kappa: pr.Q + (blen - 1 - pr.P),
			})
		}
	}

	// Distance guesses u = (1+eps')^j. Guesses above B/eps' are dropped:
	// by the same argument as the length cap of Fig. 5, windows longer
	// than B/eps' can be truncated, pushing pure insertions into the
	// chain gaps at a 1+O(eps') loss.
	uMax := int(float64(blen)/epsP) + 1
	for _, u := range ladder(epsP, uMax) {
		uh := int(float64(u)*(1+epsP)) + 1 // the paper's u-hat
		gap := maxInt(int(epsP*float64(u)), 1)
		round := func(v int) int { return v - mod(v, gap) }
		if u < (blen+1)/2 {
			// Small-distance branch (Lemma 1): grid around the local
			// Ulam window.
			if win.Len() == 0 {
				continue
			}
			for sp := round(win.Gamma - 2*uh); sp <= win.Gamma+2*uh; sp += gap {
				for ep := round(win.Kappa - 2*uh); ep <= win.Kappa+2*uh; ep += gap {
					addCand(sp, ep, uh)
				}
			}
		} else {
			// Large-distance branch (Lemma 2): grids around sampled
			// anchors.
			for _, an := range anchors {
				for sp := round(an.gamma - uh); sp <= an.gamma+uh; sp += gap {
					for ep := round(an.kappa - uh); ep <= an.kappa+uh; ep += gap {
						addCand(sp, ep, uh)
					}
				}
			}
		}
	}
	// Shrink-domination pruning before emission: candidate A = (sp, ep, d)
	// is redundant when some B = (sp', ep', d') with sp' >= sp, ep' <= ep
	// satisfies d' + (sp'-sp) + (ep-ep') <= d, because B can replace A in
	// any chain of Algorithm 2 without increasing its cost (the window only
	// shrinks, so chain validity is preserved, and each max-gap grows by at
	// most the shrinkage). This trims the Õ_eps(1) per-block constant
	// without touching the coverage guarantee of Lemma 3.
	var pruneOps int64
	for a := range kept {
		for b := range kept {
			if a == b || kept[a].d < 0 {
				continue
			}
			A, B := kept[a], kept[b]
			if B.d < 0 || B.sp < A.sp || B.ep > A.ep {
				continue
			}
			if B.sp == A.sp && B.ep == A.ep && b > a {
				continue // identical windows cannot both prune each other
			}
			if B.d+(B.sp-A.sp)+(A.ep-B.ep) <= A.d {
				kept[a].d = -1 // mark dominated
			}
		}
		pruneOps += int64(len(kept))
	}
	x.Ops(int64(len(dists)) + pruneOps/8)
	for _, c := range kept {
		if c.d >= 0 {
			x.Send(collector, tupleMsg(chain.Tuple{L: job.L, R: job.R, G: c.sp, K: c.ep, D: c.d}))
		}
	}
}

func mod(v, m int) int {
	r := v % m
	if r < 0 {
		r += m
	}
	return r
}
