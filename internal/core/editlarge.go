package core

import (
	"fmt"
	"math"

	"mpcdist/internal/cand"
	"mpcdist/internal/chain"
	"mpcdist/internal/editdist"
	"mpcdist/internal/mpc"
	"mpcdist/internal/trace"
)

// The large-distance regime (Section 5.2), for guesses n^delta > n^{1-x/5}.
// Four rounds, with the machine classes of Algorithms 5-7:
//
//	R1 "reps":      chunked representative × node grids compute exact
//	                distances (Algorithm 5). Block distances go to the
//	                per-group selector machines and to the block's sparse
//	                run machines; window distances go to the per-rep
//	                joiner machines.
//	R2 "join":      selectors pick each block's best representative and
//	                forward the choice to that representative's joiner
//	                (the N_tau(z) x N_2tau(z) join of Lemma 7); joiners
//	                pass their window-distance vectors through; sparse run
//	                machines (presampled with the common-seed coin of
//	                Algorithm 6 line 9, and uncovered at some tau) compute
//	                exact distances to their candidate windows, emit
//	                direct tuples, and request extensions (Fig. 7).
//	R3 "extend":    joiners emit the triangle-inequality tuples
//	                (d(z,v)+d(z,u) <= 3·tau); extension machines evaluate
//	                the shifted pairs exactly (Algorithm 7); a passthrough
//	                forwards the direct tuples.
//	R4 "chain":     the overlap-tolerant DP of Section 5.2.3.
//
// Simulator liberty (documented in DESIGN.md): string payloads for
// machines whose work assignment only becomes known mid-computation
// (extension and sparse-run machines) are injected by the driver at round
// boundaries, standing in for distributed-storage reads; they count toward
// the receiving machine's memory.

type largeBlock struct{ l, r int }

// distMsg is a representative-to-block distance.
type distMsg struct{ Z, V, D int32 }

// Words implements mpc.Payload.
func (distMsg) Words() int { return 3 }

// wdistMsg is a representative-to-window distance.
type wdistMsg struct{ Z, U, D int32 }

// Words implements mpc.Payload.
func (wdistMsg) Words() int { return 3 }

// selMsg tells a joiner that it hosts block V's best representative.
type selMsg struct{ V, Z, D int32 }

// Words implements mpc.Payload.
func (selMsg) Words() int { return 3 }

// repBatch is an R1 input: a chunk of representatives and a chunk of nodes
// with their string content.
type repBatch struct {
	RepIDs  []int32
	RepStr  [][]byte
	NodeIDs []int32
	NodeStr [][]byte
	// RunRouting lists, for each block id, the R2 run-machine ids that
	// need its representative distances.
	RunRouting map[int32][]int32
}

// Words implements mpc.Payload.
func (b *repBatch) Words() int {
	w := 4 + len(b.RepIDs) + len(b.NodeIDs)
	for _, s := range b.RepStr {
		w += (len(s)+7)/8 + 1
	}
	for _, s := range b.NodeStr {
		w += (len(s)+7)/8 + 1
	}
	for _, r := range b.RunRouting {
		w += 2 + len(r)
	}
	return w
}

// runJob is an R2 input for a presampled (possibly sparse) block: the block
// string, a run of its candidate windows, and the segment covering them.
type runJob struct {
	V      int32 // block id
	L, R   int
	Block  []byte
	SegOff int
	Seg    []byte
	Wins   [][2]int // absolute window intervals within the segment
	Group  int      // group index, for extensions
}

// Words implements mpc.Payload.
func (j *runJob) Words() int {
	return 8 + 2*len(j.Wins) + (len(j.Block)+7)/8 + (len(j.Seg)+7)/8
}

// extJob is an R3 input: one extension pair with injected string content.
type extJob struct {
	L, R, G, K int
	Block, Win []byte
}

// Words implements mpc.Payload.
func (j *extJob) Words() int {
	return 5 + (len(j.Block)+7)/8 + (len(j.Win)+7)/8
}

// joinState is a joiner's pass-through payload: its rep id and string plus
// nothing else (its distances arrive as wdistMsg).
type joinState struct {
	Z     int32
	Block bool // whether the rep is a block node
}

// Words implements mpc.Payload.
func (joinState) Words() int { return 2 }

// editLarge runs the four-round large-distance algorithm for guess g.
func editLarge(s, sbar []byte, g int, p Params) (int, mpc.Report, error) {
	n, m := len(s), len(sbar)
	N := maxInt(n, m)
	cl := p.cluster(N)
	epsP := p.Eps / 4
	fN := float64(N)

	y := 6 * p.X / 5
	yp := 4 * p.X / 5
	bsz := intPow(N, 1-y)
	var blocks []largeBlock
	for l := 0; l < n; l += bsz {
		blocks = append(blocks, largeBlock{l, minInt(l+bsz-1, n-1)})
	}
	nb := len(blocks)
	if nb == 0 || m == 0 {
		return n + m, cl.Report(), nil
	}
	groupBlocks := maxInt(1, intPow(N, y-yp))
	numGroups := (nb + groupBlocks - 1) / groupBlocks

	// Global candidate windows on the G' grid (Section 5.2.1). Driver-side
	// partition work (the block/window decomposition every round consumes),
	// labeled phase=partition for profiles.
	grid := maxInt(1, int(epsP*float64(g)/math.Pow(fN, y)))
	maxWin := int(float64(bsz)/epsP) + 1
	winIdx := make(map[[2]int]int32)
	var wins [][2]int
	trace.LabelPhase(p.Algo, trace.PhasePartition, "edit/large/partition", func() {
		for gamma := 0; gamma < m; gamma += grid {
			for _, kappa := range cand.Ends(gamma, minInt(bsz, n), m, epsP, maxWin, g) {
				key := [2]int{gamma, kappa}
				if _, ok := winIdx[key]; !ok {
					winIdx[key] = int32(len(wins))
					wins = append(wins, key)
				}
			}
		}
	})
	nw := len(wins)
	nT := nb + nw

	// wOfBlock: window ids usable by a block (starts within g+B of it).
	wOfBlock := make([][]int32, nb)
	trace.LabelPhase(p.Algo, trace.PhasePartition, "edit/large/partition", func() {
		for wi, w := range wins {
			for bi, bl := range blocks {
				if abs(w[0]-bl.l) <= g+bsz {
					wOfBlock[bi] = append(wOfBlock[bi], int32(wi))
				}
			}
		}
	})

	// Node helpers. Node ids: blocks are [0, nb), windows are [nb, nb+nw).
	nodeStr := func(id int32) []byte {
		if int(id) < nb {
			bl := blocks[id]
			return s[bl.l : bl.r+1]
		}
		w := wins[int(id)-nb]
		return sbar[w[0] : w[1]+1]
	}

	// Representative sampling: p1 = 2 ln(T) / h, h = N^{(3/5)x}
	// (Section 5.3), clamped for simulator scale.
	h := math.Pow(fN, 3*p.X/5)
	p1 := 2 * math.Log(float64(nT)+2) / h
	if p1 > 0.3 {
		p1 = 0.3
	}
	repRng := cl.SharedRand(0, "reps")
	var reps []int32
	for id := int32(0); id < int32(nT); id++ {
		if repRng.Float64() < p1 {
			reps = append(reps, id)
		}
	}
	nR := len(reps)

	// Low-degree presampling coins (Algorithm 6 line 9): one coin per
	// (block, tau); a block gets run machines iff any coin is true.
	tauMax := bsz + maxWin + 2
	taus := ladder(epsP, tauMax)
	oneMinusDelta := fN / float64(g)
	denom := math.Pow(fN, y-yp) / oneMinusDelta
	if denom < 1 {
		denom = 1
	}
	lnN := math.Log(fN + 2)
	p2 := 3 * lnN * lnN / (epsP * epsP) / denom
	if p2 > 1 {
		p2 = 1
	}
	coinRng := cl.SharedRand(0, "lowdeg")
	coins := make([][]bool, nb)
	presampled := make([]bool, nb)
	for bi := range coins {
		coins[bi] = make([]bool, len(taus))
		for ti := range taus {
			coins[bi][ti] = coinRng.Float64() < p2
			presampled[bi] = presampled[bi] || coins[bi][ti]
		}
	}

	budget := p.memoryBudget(N)

	// ---- Round 2/3 machine id namespaces ----
	// R2: joiners [0, nR), selectors [nR, nR+numGroups), runs [nR+numGroups, ...).
	// R3: joiners [0, nR), passthrough nR, extension machines [nR+1, ...).
	selBase := nR
	runBase := nR + numGroups
	passID := nR
	extBase := nR + 1
	collector := 0

	// Run-machine layout: for each presampled block, runs of its windows
	// sized to the memory budget.
	runIDs := make(map[int32][]int32)
	runInputs := make(map[int][]mpc.Payload)
	nextRun := int32(runBase)
	trace.LabelPhase(p.Algo, trace.PhasePartition, "edit/large/partition", func() {
		for bi, bl := range blocks {
			if !presampled[bi] {
				continue
			}
			ws := wOfBlock[bi]
			if len(ws) == 0 {
				continue
			}
			perRun := maxInt(1, (budget/2)/maxInt(1, (bsz+maxWin)/8+3))
			for lo := 0; lo < len(ws); lo += perRun {
				hi := minInt(lo+perRun, len(ws))
				segLo, segHi := m, 0
				var ivs [][2]int
				for _, wi := range ws[lo:hi] {
					w := wins[wi]
					ivs = append(ivs, w)
					segLo = minInt(segLo, w[0])
					segHi = maxInt(segHi, w[1])
				}
				job := &runJob{
					V: int32(bi), L: bl.l, R: bl.r,
					Block:  s[bl.l : bl.r+1],
					SegOff: segLo,
					Seg:    sbar[segLo : segHi+1],
					Wins:   ivs,
					Group:  bi / groupBlocks,
				}
				runInputs[int(nextRun)] = []mpc.Payload{job}
				runIDs[int32(bi)] = append(runIDs[int32(bi)], nextRun)
				nextRun++
			}
		}
	})

	// ---- Round 1: representative distances (Algorithm 5) ----
	// Chunk sizes bounded by both string residency (input side) and the
	// distance-message volume (output side, 3 words per pair).
	perChunk := maxInt(1, (budget/4)/maxInt(1, bsz/8+3))
	outChunk := maxInt(1, int(math.Sqrt(float64(budget)/8)))
	perChunk = minInt(perChunk, outChunk)
	r1Inputs := make(map[int][]mpc.Payload)
	id := 0
	trace.LabelPhase(p.Algo, trace.PhasePartition, "edit/large/partition", func() {
		for rlo := 0; rlo < nR; rlo += perChunk {
			rhi := minInt(rlo+perChunk, nR)
			for nlo := 0; nlo < nT; nlo += perChunk {
				nhi := minInt(nlo+perChunk, nT)
				batch := &repBatch{RunRouting: make(map[int32][]int32)}
				for _, z := range reps[rlo:rhi] {
					batch.RepIDs = append(batch.RepIDs, z)
					batch.RepStr = append(batch.RepStr, nodeStr(z))
				}
				for v := nlo; v < nhi; v++ {
					batch.NodeIDs = append(batch.NodeIDs, int32(v))
					batch.NodeStr = append(batch.NodeStr, nodeStr(int32(v)))
					if v < nb {
						batch.RunRouting[int32(v)] = runIDs[int32(v)]
					}
				}
				r1Inputs[id] = []mpc.Payload{batch}
				id++
			}
		}
	})

	repIndex := make(map[int32]int, nR)
	for i, z := range reps {
		repIndex[z] = i
	}

	r1Out, err := cl.Run("edit-large/reps", trace.PhaseGraph, r1Inputs, func(x *mpc.Ctx, in []mpc.Payload) {
		for _, pl := range in {
			b := pl.(*repBatch)
			for zi, z := range b.RepIDs {
				ji := int32(repIndex[z])
				for vi, v := range b.NodeIDs {
					d := int32(editdist.Myers(b.RepStr[zi], b.NodeStr[vi], x.Counter()))
					if int(v) < nb {
						msg := distMsg{Z: ji, V: v, D: d}
						x.Send(selBase+int(v)/groupBlocks, msg)
						for _, rid := range b.RunRouting[v] {
							x.Send(int(rid), msg)
						}
					} else {
						x.Send(int(ji), wdistMsg{Z: ji, U: v - int32(nb), D: d})
					}
				}
			}
		}
	})
	if err != nil {
		return 0, mpc.Report{}, err
	}

	// Assemble R2 inputs: joiner passthroughs, selector messages, run jobs.
	// Inter-round re-distribution is driver-side partition work, same as
	// the initial decomposition.
	r2Inputs := make(map[int][]mpc.Payload)
	trace.LabelPhase(p.Algo, trace.PhasePartition, "edit/large/partition", func() {
		for dst, msgs := range r1Out {
			r2Inputs[dst] = msgs
		}
		for i := 0; i < nR; i++ {
			r2Inputs[i] = append(r2Inputs[i], joinState{Z: int32(i), Block: int(reps[i]) < nb})
		}
		for dst, pls := range runInputs {
			r2Inputs[dst] = append(r2Inputs[dst], pls...)
		}
		for gi := 0; gi < numGroups; gi++ {
			if _, ok := r2Inputs[selBase+gi]; !ok {
				r2Inputs[selBase+gi] = []mpc.Payload{}
			}
		}
	})

	dFilterLen := func(winLen int) int { return bsz + winLen } // skip-dominance filter
	var extReqs [][4]int                                       // collected driver-side from R2 emissions
	r2Out, err := cl.Run("edit-large/join", trace.PhaseGraph, r2Inputs, func(x *mpc.Ctx, in []mpc.Payload) {
		switch {
		case x.Machine < nR:
			// Joiner: forward window-distance vectors to R3 self.
			for _, pl := range in {
				switch msg := pl.(type) {
				case wdistMsg:
					x.Send(x.Machine, msg)
				case joinState:
					x.Send(x.Machine, msg)
				}
			}
		case x.Machine < runBase:
			// Selector: best representative per block of its group.
			best := make(map[int32]distMsg)
			for _, pl := range in {
				if msg, ok := pl.(distMsg); ok {
					cur, seen := best[msg.V]
					if !seen || msg.D < cur.D {
						best[msg.V] = msg
					}
					x.Ops(1)
				}
			}
			for _, msg := range best {
				x.Send(int(msg.Z), selMsg{V: msg.V, Z: msg.Z, D: msg.D})
			}
		default:
			// Sparse run machine (Algorithm 6, low-degree branch).
			var job *runJob
			cover := int32(1 << 30)
			for _, pl := range in {
				switch v := pl.(type) {
				case *runJob:
					job = v
				case distMsg:
					if v.D < cover {
						cover = v.D
					}
				}
			}
			if job == nil {
				return
			}
			// Re-derive the shared coins for this block.
			rng := x.SharedRand("lowdeg")
			myCoins := make([]bool, len(taus))
			for bi := 0; bi < nb; bi++ {
				for ti := range taus {
					c := rng.Float64() < p2
					if int32(bi) == job.V {
						myCoins[ti] = c
					}
				}
			}
			dmemo := make(map[[2]int]int, len(job.Wins))
			distTo := func(w [2]int) int {
				if d, ok := dmemo[w]; ok {
					return d
				}
				d := editdist.Myers(job.Block, job.Seg[w[0]-job.SegOff:w[1]-job.SegOff+1], x.Counter())
				dmemo[w] = d
				return d
			}
			g0 := job.Group * groupBlocks
			g1 := minInt(g0+groupBlocks, nb)
			sentExt := make(map[[4]int]bool)
			for ti, tau := range taus {
				if int(cover) <= tau || !myCoins[ti] {
					continue
				}
				for _, w := range job.Wins {
					d := distTo(w)
					if d > tau {
						continue
					}
					if d <= dFilterLen(w[1]-w[0]+1) {
						x.Send(passID, tupleMsg(chain.Tuple{L: job.L, R: job.R, G: w[0], K: w[1], D: d}))
					}
					for bj := g0; bj < g1; bj++ {
						if bj == int(job.V) {
							continue
						}
						blj := blocks[bj]
						gamma := w[0] + (blj.l - job.L)
						kappa := w[1] + (blj.r - job.R)
						gamma = maxInt(0, gamma)
						kappa = minInt(m-1, kappa)
						if gamma > kappa {
							continue
						}
						req := [4]int{blj.l, blj.r, gamma, kappa}
						if sentExt[req] {
							continue
						}
						sentExt[req] = true
						x.Send(extBase, mpc.Ints{req[0], req[1], req[2], req[3]})
					}
				}
			}
		}
	})
	if err != nil {
		return 0, mpc.Report{}, err
	}

	// Build R3 inputs. Extension requests (sent to the extBase sentinel)
	// are deduplicated and repacked across extension machines with their
	// string content injected (distributed-storage read).
	r3Inputs := make(map[int][]mpc.Payload)
	trace.LabelPhase(p.Algo, trace.PhasePartition, "edit/large/partition", func() {
		for dst, msgs := range r2Out {
			if dst == extBase {
				for _, pl := range msgs {
					r := pl.(mpc.Ints)
					extReqs = append(extReqs, [4]int{r[0], r[1], r[2], r[3]})
				}
				continue
			}
			r3Inputs[dst] = msgs
		}
		seenReq := make(map[[4]int]bool)
		perExt := maxInt(1, (budget/2)/maxInt(1, (bsz+maxWin)/8+8))
		extID := extBase
		cnt := 0
		for _, rq := range extReqs {
			if seenReq[rq] {
				continue
			}
			seenReq[rq] = true
			r3Inputs[extID] = append(r3Inputs[extID], &extJob{
				L: rq[0], R: rq[1], G: rq[2], K: rq[3],
				Block: s[rq[0] : rq[1]+1],
				Win:   sbar[rq[2] : rq[3]+1],
			})
			cnt++
			if cnt%perExt == 0 {
				extID++
			}
		}
		if _, ok := r3Inputs[passID]; !ok {
			r3Inputs[passID] = []mpc.Payload{}
		}
	})

	r3Out, err := cl.Run("edit-large/extend", trace.PhaseGraph, r3Inputs, func(x *mpc.Ctx, in []mpc.Payload) {
		if x.Machine < nR {
			// Joiner: emit triangle tuples for its selected blocks.
			var sels []selMsg
			wd := make(map[int32]int32)
			for _, pl := range in {
				switch msg := pl.(type) {
				case selMsg:
					sels = append(sels, msg)
				case wdistMsg:
					wd[msg.U] = msg.D
				}
			}
			for _, sel := range sels {
				bl := blocks[sel.V]
				dzv := int(sel.D)
				for _, wi := range wOfBlock[sel.V] {
					dzu, ok := wd[wi]
					if !ok {
						continue
					}
					// Lemma 7 ladder test: exists tau in the ladder with
					// d(z,v) <= tau and d(z,u) <= 2 tau.
					need := maxInt(dzv, int(dzu+1)/2)
					if need > tauMax {
						continue
					}
					w := wins[wi]
					d := dzv + int(dzu)
					if d > dFilterLen(w[1]-w[0]+1) {
						continue
					}
					x.Send(collector, tupleMsg(chain.Tuple{L: bl.l, R: bl.r, G: w[0], K: w[1], D: d}))
					x.Ops(1)
				}
			}
			return
		}
		if x.Machine == passID {
			for _, pl := range in {
				if t, ok := pl.(tupleMsg); ok {
					x.Send(collector, t)
				}
			}
			return
		}
		// Extension machine (Algorithm 7).
		for _, pl := range in {
			if job, ok := pl.(*extJob); ok {
				d := editdist.Myers(job.Block, job.Win, x.Counter())
				if d <= dFilterLen(job.K-job.G+1) {
					x.Send(collector, tupleMsg(chain.Tuple{L: job.L, R: job.R, G: job.G, K: job.K, D: d}))
				}
			}
		}
	})
	if err != nil {
		return 0, mpc.Report{}, err
	}
	if _, ok := r3Out[collector]; !ok {
		r3Out[collector] = []mpc.Payload{}
	}

	// Round 4: overlap-tolerant chain DP (Section 5.2.3).
	fin, err := cl.Run("edit-large/chain", trace.PhaseChain, r3Out, func(x *mpc.Ctx, in []mpc.Payload) {
		tuples := make([]chain.Tuple, 0, len(in))
		for _, pl := range in {
			if t, ok := pl.(tupleMsg); ok {
				tuples = append(tuples, chain.Tuple(t))
			}
		}
		v := chain.EditCost(tuples, n, m, true, x.Counter())
		x.Send(collector, valueMsg(v))
	})
	if err != nil {
		return 0, mpc.Report{}, err
	}
	vals := fin[collector]
	if len(vals) != 1 {
		return 0, mpc.Report{}, fmt.Errorf("core: edit-large chain produced %d values", len(vals))
	}
	return int(vals[0].(valueMsg)), cl.Report(), nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
