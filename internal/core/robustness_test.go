package core

// Robustness tests: unequal lengths, degenerate sizes, adversarial
// workloads, and failure injection (deliberately starved memory budgets
// must surface as MemoryError, never as wrong answers).

import (
	"errors"
	"math/rand"
	"testing"

	"mpcdist/internal/editdist"
	"mpcdist/internal/mpc"
	"mpcdist/internal/ulam"
	"mpcdist/internal/workload"
)

func TestUlamMPCUnequalLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 4; trial++ {
		n := 150 + rng.Intn(150)
		m := 150 + rng.Intn(300)
		s := rng.Perm(n)
		sbar := rng.Perm(m)
		res, err := UlamMPC(s, sbar, Params{X: 0.3, Eps: 1, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		exact := ulam.Exact(s, sbar, nil)
		if res.Value < exact {
			t.Fatalf("value %d below exact %d (n=%d m=%d)", res.Value, exact, n, m)
		}
		if float64(res.Value) > 2*float64(exact)+1 {
			t.Fatalf("value %d vs exact %d exceeds 1+eps (n=%d m=%d)", res.Value, exact, n, m)
		}
	}
}

func TestEditMPCUnequalLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	s := workload.RandomString(rng, 700, 4)
	sbar := append([]byte(nil), s[:500]...) // truncation: d = 200 exactly
	res, err := EditMPC(s, sbar, Params{X: 0.25, Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exact := editdist.Distance(s, sbar, nil)
	if exact != 200 {
		t.Fatalf("setup wrong: exact = %d", exact)
	}
	if res.Value < exact || float64(res.Value) > 1.5*float64(exact)+1 {
		t.Errorf("truncation: value %d vs exact %d", res.Value, exact)
	}
}

func TestEditMPCTinyInputs(t *testing.T) {
	for _, c := range []struct{ a, b string }{
		{"a", "b"}, {"a", ""}, {"", "xyz"}, {"ab", "ba"}, {"x", "x"},
	} {
		res, err := EditMPC([]byte(c.a), []byte(c.b), Params{X: 0.25, Eps: 0.5})
		if err != nil {
			t.Fatalf("%q->%q: %v", c.a, c.b, err)
		}
		want := editdist.Strings(c.a, c.b)
		if res.Value != want {
			t.Errorf("%q->%q: value %d, want %d", c.a, c.b, res.Value, want)
		}
	}
}

func TestUlamMPCTinyInputs(t *testing.T) {
	for _, c := range []struct {
		a, b []int
		want int
	}{
		{[]int{1}, []int{2}, 1},
		{[]int{1}, nil, 1},
		{[]int{1, 2}, []int{2, 1}, 2},
		{[]int{5}, []int{5}, 0},
	} {
		res, err := UlamMPC(c.a, c.b, Params{X: 0.3, Eps: 1})
		if err != nil {
			t.Fatalf("%v->%v: %v", c.a, c.b, err)
		}
		if res.Value != c.want {
			t.Errorf("%v->%v: value %d, want %d", c.a, c.b, res.Value, c.want)
		}
	}
}

func TestEditMPCBlockMoveWorkload(t *testing.T) {
	// Block moves break near-diagonal assumptions; factors must hold.
	rng := rand.New(rand.NewSource(113))
	s := workload.RandomString(rng, 800, 6)
	sbar := workload.BlockMove(rng, s, 60)
	exact := editdist.Distance(s, sbar, nil)
	res, err := EditMPC(s, sbar, Params{X: 0.25, Eps: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < exact || float64(res.Value) > 1.5*float64(exact)+1 {
		t.Errorf("block move: value %d vs exact %d", res.Value, exact)
	}
}

func TestUlamMPCBlockMoveWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	s := rng.Perm(600)
	sbar := workload.BlockMoveInts(rng, s, 50)
	exact := ulam.Exact(s, sbar, nil)
	res, err := UlamMPC(s, sbar, Params{X: 0.3, Eps: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < exact || float64(res.Value) > 2*float64(exact)+1 {
		t.Errorf("block move: value %d vs exact %d", res.Value, exact)
	}
}

func TestEditMPCMirrorWorkload(t *testing.T) {
	// Reversal: near-maximal distance; must route through the far guesses
	// and still respect the factor.
	rng := rand.New(rand.NewSource(115))
	s := workload.RandomString(rng, 300, 10)
	sbar := workload.Mirror(s)
	exact := editdist.Distance(s, sbar, nil)
	res, err := EditMPC(s, sbar, Params{X: 0.25, Eps: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < exact || float64(res.Value) > 4*float64(exact)+1 {
		t.Errorf("mirror: value %d vs exact %d", res.Value, exact)
	}
}

func TestEditMPCZipfAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(116))
	s := workload.Zipf(rng, 600, 8)
	sbar := workload.PlantedEdits(rng, s, 25, 8)
	exact := editdist.Distance(s, sbar, nil)
	res, err := EditMPC(s, sbar, Params{X: 0.25, Eps: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < exact || float64(res.Value) > 1.5*float64(exact)+1 {
		t.Errorf("zipf: value %d vs exact %d", res.Value, exact)
	}
}

func TestMemoryStarvationSurfacesAsError(t *testing.T) {
	// A budget too small for even one block must yield a MemoryError, not
	// a silent wrong answer.
	rng := rand.New(rand.NewSource(117))
	s, sbar, _ := workload.PlantedUlam(rng, 400, 40)
	_, err := UlamMPC(s, sbar, Params{X: 0.3, Eps: 1, Seed: 1, MemFactor: 0.001})
	var me *mpc.MemoryError
	if !errors.As(err, &me) {
		t.Fatalf("want MemoryError, got %v", err)
	}

	a := workload.RandomString(rng, 400, 4)
	b := workload.PlantedEdits(rng, a, 20, 4)
	_, err = EditMPC(a, b, Params{X: 0.25, Eps: 0.5, Seed: 1, MemFactor: 0.001})
	if !errors.As(err, &me) {
		t.Fatalf("edit: want MemoryError, got %v", err)
	}
}

func TestSeedChangesSamplingNotCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(118))
	s, sbar, _ := workload.PlantedUlam(rng, 400, 60)
	exact := ulam.Exact(s, sbar, nil)
	for seed := int64(0); seed < 5; seed++ {
		res, err := UlamMPC(s, sbar, Params{X: 0.3, Eps: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value < exact || float64(res.Value) > 2*float64(exact)+1 {
			t.Errorf("seed %d: value %d vs exact %d", seed, res.Value, exact)
		}
	}
}

func TestGuessReportsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(119))
	a := workload.RandomString(rng, 400, 4)
	b := workload.PlantedEdits(rng, a, 30, 4)
	res, err := EditMPC(a, b, Params{X: 0.25, Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GuessReports) == 0 {
		t.Fatal("no per-guess reports")
	}
	var sum int64
	for _, r := range res.GuessReports {
		sum += r.TotalOps
	}
	if sum != res.Report.TotalOps {
		t.Errorf("aggregate ops %d != sum of guesses %d", res.Report.TotalOps, sum)
	}
	if res.Report.CommWords == 0 {
		t.Error("no communication recorded")
	}
}
