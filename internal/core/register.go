package core

import "mpcdist/internal/mpc"

// Payload-codec registrations for the paper algorithms' wire types, so a
// distributed cluster can ship them between worker processes (see
// internal/transport). Names are stable wire identifiers: renaming one is
// a protocol change.
func init() {
	mpc.RegisterPayload("core.ulamJob", (*ulamJob)(nil))
	mpc.RegisterPayload("core.tupleMsg", tupleMsg{})
	mpc.RegisterPayload("core.valueMsg", valueMsg(0))
	mpc.RegisterPayload("core.chainMsg", chainMsg{})
	mpc.RegisterPayload("core.editJob", (*editJob)(nil))
	mpc.RegisterPayload("core.distMsg", distMsg{})
	mpc.RegisterPayload("core.wdistMsg", wdistMsg{})
	mpc.RegisterPayload("core.selMsg", selMsg{})
	mpc.RegisterPayload("core.repBatch", (*repBatch)(nil))
	mpc.RegisterPayload("core.runJob", (*runJob)(nil))
	mpc.RegisterPayload("core.extJob", (*extJob)(nil))
	mpc.RegisterPayload("core.joinState", joinState{})
}
