package core

import (
	"bytes"
	"fmt"
	"math"

	"mpcdist/internal/mpc"
)

// EditMPC approximates ed(s, sbar) within 3+eps (1+eps with ExactPairs) in
// at most four MPC rounds per distance guess (Theorem 9). Requires
// 0 < X <= 5/17.
//
// Distance guesses n^delta = (1+eps)^i are, in the paper, all run in
// parallel, with the smallest valid guess winning; the simulator runs them
// in ascending order and stops at the first acceptance (the same winner),
// reporting per-guess statistics and a parallel-style aggregate (rounds =
// max, machines and work = sum).
func EditMPC(s, sbar []byte, p Params) (Result, error) {
	p = p.withDefaults()
	if p.Algo == "" {
		p.Algo = "edit-mpc"
	}
	n, m := len(s), len(sbar)
	N := maxInt(n, m)
	if N == 0 {
		return Result{Value: 0, Regime: "equal"}, nil
	}
	if err := p.validate(N, 5.0/17+1e-9); err != nil {
		return Result{}, err
	}
	// ed = 0 is detected separately, as in the paper.
	if n == m && bytes.Equal(s, sbar) {
		return Result{Value: 0, Regime: "equal"}, nil
	}

	cutover := math.Pow(float64(N), 1-p.X/5)
	acceptFor := func(regime string) float64 {
		if regime == "small" && p.Solver != PairApprox12 {
			// Exact pair distances make the small regime a 1+eps scheme.
			return 1 + p.Eps
		}
		return 3 + p.Eps
	}

	best := n + m
	var reports []mpc.Report
	for _, g := range ladder(p.Eps, n+m) {
		var (
			v      int
			rep    mpc.Report
			regime string
			err    error
		)
		if float64(g) <= cutover {
			regime = "small"
			v, rep, err = editSmall(s, sbar, g, p)
		} else {
			regime = "large"
			v, rep, err = editLarge(s, sbar, g, p)
		}
		if err != nil {
			return Result{}, err
		}
		reports = append(reports, rep)
		if v < best {
			best = v
		}
		if float64(v) <= acceptFor(regime)*float64(g) || g >= n+m {
			return Result{
				Value:        best,
				Guess:        g,
				Regime:       regime,
				Report:       aggregateReports(reports),
				GuessReports: reports,
			}, nil
		}
	}
	// Unreachable: the last ladder guess always accepts.
	return Result{Value: best, Report: aggregateReports(reports), GuessReports: reports}, nil
}

// EditSmallMPC exposes the small-distance regime (Lemma 6) for a fixed
// guess, for tests and benchmarks.
func EditSmallMPC(s, sbar []byte, guess int, p Params) (Result, error) {
	p = p.withDefaults()
	N := maxInt(len(s), len(sbar))
	if err := p.validate(N, 5.0/17+1e-9); err != nil {
		return Result{}, err
	}
	v, rep, err := editSmall(s, sbar, guess, p)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: v, Guess: guess, Regime: "small", Report: rep}, nil
}

// EditLargeMPC exposes the large-distance regime (Lemma 8) for a fixed
// guess, for tests and benchmarks. The guess must be at least n^{1-x/5},
// the regime's validity boundary (Section 5.2): below it the candidate
// grid becomes so fine that the machinery exceeds the model's memory.
func EditLargeMPC(s, sbar []byte, guess int, p Params) (Result, error) {
	p = p.withDefaults()
	N := maxInt(len(s), len(sbar))
	if err := p.validate(N, 5.0/17+1e-9); err != nil {
		return Result{}, err
	}
	if float64(guess) < math.Pow(float64(N), 1-p.X/5) {
		return Result{}, fmt.Errorf("core: large-distance regime requires guess >= n^(1-x/5) = %.0f, got %d",
			math.Pow(float64(N), 1-p.X/5), guess)
	}
	v, rep, err := editLarge(s, sbar, guess, p)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: v, Guess: guess, Regime: "large", Report: rep}, nil
}

// aggregateReports combines per-guess reports the way the paper's parallel
// guessing would: rounds is the maximum, machines and total work add up,
// and the critical path is the maximum.
func aggregateReports(reps []mpc.Report) mpc.Report {
	var out mpc.Report
	for _, r := range reps {
		if r.NumRounds > out.NumRounds {
			out.NumRounds = r.NumRounds
		}
		out.MaxMachines += r.MaxMachines
		if r.MaxWords > out.MaxWords {
			out.MaxWords = r.MaxWords
		}
		out.TotalOps += r.TotalOps
		out.CommWords += r.CommWords
		if r.CriticalOps > out.CriticalOps {
			out.CriticalOps = r.CriticalOps
		}
		out.Elapsed += r.Elapsed
		out.QueueWait += r.QueueWait
		if r.MaxStraggler > out.MaxStraggler {
			out.MaxStraggler = r.MaxStraggler
		}
		out.Failures += r.Failures
		out.Retries += r.Retries
		out.Rounds = append(out.Rounds, r.Rounds...)
		for _, w := range r.Workers {
			for len(out.Workers) <= w.Party {
				out.Workers = append(out.Workers, mpc.WorkerStats{Party: len(out.Workers)})
			}
			ow := &out.Workers[w.Party]
			ow.MachineRounds += w.MachineRounds
			ow.Ops += w.Ops
			ow.CommWords += w.CommWords
			ow.QueueWait += w.QueueWait
			ow.Failures += w.Failures
			ow.Retries += w.Retries
			ow.WireBytes += w.WireBytes
		}
	}
	return out
}

// AggregateReports exposes the parallel-guess aggregation for other
// packages (the baseline uses the same guess structure).
func AggregateReports(reps []mpc.Report) mpc.Report { return aggregateReports(reps) }
