package core

import (
	"math/rand"
	"testing"

	"mpcdist/internal/ulam"
	"mpcdist/internal/workload"
)

func TestUlamMPCValidation(t *testing.T) {
	if _, err := UlamMPC([]int{1, 1}, []int{1, 2}, Params{X: 0.3}); err == nil {
		t.Error("repeated characters accepted")
	}
	if _, err := UlamMPC([]int{1}, []int{1}, Params{X: 0.6}); err == nil {
		t.Error("X >= 1/2 accepted")
	}
	if _, err := UlamMPC([]int{1}, []int{1}, Params{X: 0}); err == nil {
		t.Error("X = 0 accepted")
	}
}

func TestUlamMPCIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	s := workload.Permutation(rng, 256)
	res, err := UlamMPC(s, s, Params{X: 0.3, Eps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Errorf("UlamMPC(s,s) = %d, want 0", res.Value)
	}
	if res.Report.NumRounds != 2 {
		t.Errorf("rounds = %d, want 2", res.Report.NumRounds)
	}
}

func TestUlamMPCTwoRoundsAlways(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	s, sbar, _ := workload.PlantedUlam(rng, 300, 40)
	res, err := UlamMPC(s, sbar, Params{X: 0.35, Eps: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.NumRounds != 2 {
		t.Errorf("rounds = %d, want 2", res.Report.NumRounds)
	}
	if res.Report.MaxMachines < 2 {
		t.Errorf("machines = %d, want >= 2", res.Report.MaxMachines)
	}
}

// approxFactor runs UlamMPC and returns value/exact.
func ulamFactor(t *testing.T, s, sbar []int, p Params) float64 {
	t.Helper()
	res, err := UlamMPC(s, sbar, p)
	if err != nil {
		t.Fatal(err)
	}
	exact := ulam.Exact(s, sbar, nil)
	if res.Value < exact {
		t.Fatalf("MPC value %d below exact %d (not an upper bound)", res.Value, exact)
	}
	if exact == 0 {
		if res.Value != 0 {
			t.Fatalf("exact 0 but MPC %d", res.Value)
		}
		return 1
	}
	return float64(res.Value) / float64(exact)
}

func TestUlamMPCApproxFactorPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	eps := 1.0
	for trial := 0; trial < 6; trial++ {
		n := 256 + rng.Intn(512)
		d := 1 + rng.Intn(n/4)
		s, sbar, _ := workload.PlantedUlam(rng, n, d)
		f := ulamFactor(t, s, sbar, Params{X: 0.3, Eps: eps, Seed: int64(trial)})
		if f > 1+eps {
			t.Errorf("n=%d d=%d: factor %.3f > 1+eps = %.3f", n, d, f, 1+eps)
		}
	}
}

func TestUlamMPCApproxFactorRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	eps := 1.0
	for trial := 0; trial < 4; trial++ {
		n := 200 + rng.Intn(300)
		s := workload.Permutation(rng, n)
		sbar := workload.Permutation(rng, n)
		f := ulamFactor(t, s, sbar, Params{X: 0.3, Eps: eps, Seed: int64(trial)})
		if f > 1+eps {
			t.Errorf("random perms n=%d: factor %.3f > %.3f", n, f, 1+eps)
		}
	}
}

func TestUlamMPCShiftWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	s := workload.Permutation(rng, 400)
	for _, k := range []int{1, 5, 20} {
		sbar := workload.ShiftInts(s, k)
		f := ulamFactor(t, s, sbar, Params{X: 0.3, Eps: 1, Seed: int64(k)})
		if f > 2 {
			t.Errorf("shift %d: factor %.3f > 2", k, f)
		}
	}
}

func TestUlamMPCDisjointAlphabets(t *testing.T) {
	// No common characters: distance is exactly n (all substitutions).
	n := 200
	s := make([]int, n)
	sbar := make([]int, n)
	for i := range s {
		s[i] = i
		sbar[i] = n + i
	}
	res, err := UlamMPC(s, sbar, Params{X: 0.3, Eps: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != n {
		t.Errorf("disjoint alphabets: value %d, want %d", res.Value, n)
	}
}

func TestUlamMPCMemoryRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	s, sbar, _ := workload.PlantedUlam(rng, 512, 60)
	p := Params{X: 0.4, Eps: 1, Seed: 3}.withDefaults()
	res, err := UlamMPC(s, sbar, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxWords > p.memoryBudget(512) {
		t.Errorf("memory %d exceeds budget %d", res.Report.MaxWords, p.memoryBudget(512))
	}
}

func TestUlamMPCDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s, sbar, _ := workload.PlantedUlam(rng, 300, 50)
	p := Params{X: 0.3, Eps: 1, Seed: 5}
	r1, err := UlamMPC(s, sbar, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := UlamMPC(s, sbar, p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value != r2.Value || r1.Report.TotalOps != r2.Report.TotalOps {
		t.Errorf("nondeterministic: %v vs %v", r1, r2)
	}
}

func TestUlamMPCEmptySbar(t *testing.T) {
	res, err := UlamMPC([]int{1, 2, 3, 4}, nil, Params{X: 0.3, Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 {
		t.Errorf("empty sbar: value %d, want 4", res.Value)
	}
}

// TestTheorem4EndToEnd is the named umbrella for the paper's Ulam claim:
// 1+eps whp, exactly two rounds, memory cap respected, across workloads.
func TestTheorem4EndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	p := Params{X: 0.3, Eps: 1, Seed: 11}.withDefaults()
	budget := p.memoryBudget(600)
	for trial, mk := range []func() ([]int, []int){
		func() ([]int, []int) {
			s, sbar, _ := workload.PlantedUlam(rng, 600, 80)
			return s, sbar
		},
		func() ([]int, []int) {
			s := workload.Permutation(rng, 600)
			return s, workload.ShiftInts(s, 13)
		},
		func() ([]int, []int) {
			s := workload.Permutation(rng, 600)
			return s, workload.BlockMoveInts(rng, s, 40)
		},
	} {
		s, sbar := mk()
		res, err := UlamMPC(s, sbar, p)
		if err != nil {
			t.Fatalf("workload %d: %v", trial, err)
		}
		exact := ulam.Exact(s, sbar, nil)
		if res.Value < exact {
			t.Fatalf("workload %d: value %d below exact %d", trial, res.Value, exact)
		}
		if exact > 0 && float64(res.Value) > (1+p.Eps)*float64(exact) {
			t.Errorf("workload %d: factor %.3f > 1+eps", trial, float64(res.Value)/float64(exact))
		}
		if res.Report.NumRounds != 2 {
			t.Errorf("workload %d: rounds %d != 2", trial, res.Report.NumRounds)
		}
		if res.Report.MaxWords > budget {
			t.Errorf("workload %d: memory %d > budget %d", trial, res.Report.MaxWords, budget)
		}
	}
}

// TestUlamMPCChainConsistent verifies the returned chain realizes the
// reported value: tuples are strictly increasing and non-overlapping, and
// tuple costs plus max-gap costs sum to Value.
func TestUlamMPCChainConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	s, sbar, _ := workload.PlantedUlam(rng, 500, 60)
	res, err := UlamMPC(s, sbar, Params{X: 0.3, Eps: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chain) == 0 {
		t.Fatal("no chain returned")
	}
	total := 0
	prevR, prevK := -1, -1
	for i, tp := range res.Chain {
		if tp.L <= prevR || tp.G <= prevK {
			t.Fatalf("chain tuple %d overlaps predecessor: %+v", i, tp)
		}
		gap := maxInt(tp.L-prevR-1, tp.G-prevK-1)
		total += gap + tp.D
		// The tuple's claimed distance must match the true window distance.
		if d := ulam.Exact(s[tp.L:tp.R+1], sbar[tp.G:tp.K+1], nil); d != tp.D {
			t.Fatalf("chain tuple %d claims D=%d, true %d", i, tp.D, d)
		}
		prevR, prevK = tp.R, tp.K
	}
	total += maxInt(len(s)-1-prevR, len(sbar)-1-prevK)
	if total != res.Value {
		t.Fatalf("chain cost %d != value %d", total, res.Value)
	}
}
