package core

// Property-based tests: for arbitrary seeds and sizes drawn by
// testing/quick, the MPC values must sandwich between the exact distance
// and its approximation bound, with the model invariants (round counts)
// intact.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcdist/internal/editdist"
	"mpcdist/internal/ulam"
	"mpcdist/internal/workload"
)

func TestQuickUlamMPCSandwich(t *testing.T) {
	f := func(seed int64, rawN uint16, rawD uint16) bool {
		n := 64 + int(rawN)%192 // 64..255
		d := int(rawD) % n
		rng := rand.New(rand.NewSource(seed))
		s, sbar, _ := workload.PlantedUlam(rng, n, d)
		res, err := UlamMPC(s, sbar, Params{X: 0.3, Eps: 1, Seed: seed})
		if err != nil {
			t.Logf("seed %d n %d: %v", seed, n, err)
			return false
		}
		exact := ulam.Exact(s, sbar, nil)
		if res.Value < exact {
			t.Logf("seed %d: value %d < exact %d", seed, res.Value, exact)
			return false
		}
		if float64(res.Value) > 2*float64(exact)+1 {
			t.Logf("seed %d: value %d > 2x exact %d", seed, res.Value, exact)
			return false
		}
		return res.Report.NumRounds == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickEditMPCSandwich(t *testing.T) {
	f := func(seed int64, rawN uint16, rawD uint8) bool {
		n := 128 + int(rawN)%256 // 128..383
		d := 1 + int(rawD)%32
		rng := rand.New(rand.NewSource(seed))
		s := workload.RandomString(rng, n, 4)
		sbar := workload.PlantedEdits(rng, s, d, 4)
		res, err := EditMPC(s, sbar, Params{X: 0.25, Eps: 0.5, Seed: seed})
		if err != nil {
			t.Logf("seed %d n %d: %v", seed, n, err)
			return false
		}
		exact := editdist.Distance(s, sbar, nil)
		if res.Value < exact {
			t.Logf("seed %d: value %d < exact %d", seed, res.Value, exact)
			return false
		}
		if exact > 0 && float64(res.Value) > 3.5*float64(exact) {
			t.Logf("seed %d: value %d vs exact %d", seed, res.Value, exact)
			return false
		}
		return res.Report.NumRounds <= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
