package core

import (
	"math/rand"
	"testing"

	"mpcdist/internal/editdist"
	"mpcdist/internal/workload"
)

// TestExtensionRoundActive pins that the low-degree extension machinery
// (Algorithm 6 line 13 / Algorithm 7) actually runs: round 3 must carry
// extension work and ship tuples onward, and the result must stay within
// the factor.
func TestExtensionRoundActive(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	n := 400
	s := workload.RandomString(rng, n, 10)
	sbar := workload.RandomString(rng, n, 10)
	res, err := EditLargeMPC(s, sbar, 350, Params{X: 0.25, Eps: 1, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Rounds) != 4 {
		t.Fatalf("rounds = %d", len(res.Report.Rounds))
	}
	ext := res.Report.Rounds[2]
	if ext.Name != "edit-large/extend" {
		t.Fatalf("round 3 = %q", ext.Name)
	}
	if ext.TotalOps == 0 || ext.CommWords == 0 {
		t.Errorf("extension round idle: ops=%d comm=%d", ext.TotalOps, ext.CommWords)
	}
	// Join round must have produced both dense joins and extension
	// requests (its machines outnumber the rep round's chunks).
	if res.Report.Rounds[1].Machines <= res.Report.Rounds[0].Machines {
		t.Errorf("join round machines %d <= reps round %d",
			res.Report.Rounds[1].Machines, res.Report.Rounds[0].Machines)
	}
	exact := editdist.Distance(s, sbar, nil)
	if res.Value < exact || float64(res.Value) > 4*float64(exact) {
		t.Errorf("value %d vs exact %d outside bounds", res.Value, exact)
	}
}
