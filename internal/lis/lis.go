// Package lis implements longest-increasing-subsequence computations and
// the LCS of sequences with distinct characters, which reduce to LIS.
//
// In the paper's terminology, Ulam distance and LIS are dual problems: the
// indel-only Ulam distance between two permutations of the same set equals
// 2(n - LCS), and LCS of permutations is an LIS after relabeling. These
// routines are the sequential substrate underneath the ulam package.
package lis

import "sort"

// Length returns the length of the longest strictly increasing subsequence
// of a in O(n log n) time via patience sorting.
func Length(a []int) int {
	tails := make([]int, 0, 16)
	for _, v := range a {
		i := sort.SearchInts(tails, v)
		if i == len(tails) {
			tails = append(tails, v)
		} else {
			tails[i] = v
		}
	}
	return len(tails)
}

// NonDecreasingLength returns the length of the longest non-decreasing
// subsequence of a.
func NonDecreasingLength(a []int) int {
	tails := make([]int, 0, 16)
	for _, v := range a {
		// Insertion point after the run of equal values keeps ties.
		i := sort.SearchInts(tails, v+1)
		if i == len(tails) {
			tails = append(tails, v)
		} else {
			tails[i] = v
		}
	}
	return len(tails)
}

// Indices returns the indices (in increasing order) of one longest strictly
// increasing subsequence of a.
func Indices(a []int) []int {
	if len(a) == 0 {
		return nil
	}
	tails := make([]int, 0, 16)   // tails[k] = value ending a length-k+1 pile
	tailIdx := make([]int, 0, 16) // index in a of tails[k]
	prev := make([]int, len(a))   // predecessor pointers
	for i, v := range a {
		j := sort.SearchInts(tails, v)
		if j > 0 {
			prev[i] = tailIdx[j-1]
		} else {
			prev[i] = -1
		}
		if j == len(tails) {
			tails = append(tails, v)
			tailIdx = append(tailIdx, i)
		} else {
			tails[j] = v
			tailIdx[j] = i
		}
	}
	out := make([]int, len(tails))
	at := tailIdx[len(tailIdx)-1]
	for k := len(out) - 1; k >= 0; k-- {
		out[k] = at
		at = prev[at]
	}
	return out
}

// LCSDistinct returns the length of the longest common subsequence of a and
// b under the promise that the characters within each of a and b are
// distinct. It runs in O((|a|+|b|) log) time: relabel each element of b by
// its position in a (dropping characters absent from a) and take the LIS.
func LCSDistinct(a, b []int) int {
	pos := make(map[int]int, len(a))
	for i, v := range a {
		pos[v] = i
	}
	seq := make([]int, 0, len(b))
	for _, v := range b {
		if p, ok := pos[v]; ok {
			seq = append(seq, p)
		}
	}
	return Length(seq)
}

// CommonMatches returns, for sequences with distinct characters, the list of
// match points (i, j) with a[i] == b[j], ordered by increasing j.
func CommonMatches(a, b []int) (ai, bj []int) {
	pos := make(map[int]int, len(a))
	for i, v := range a {
		pos[v] = i
	}
	for j, v := range b {
		if i, ok := pos[v]; ok {
			ai = append(ai, i)
			bj = append(bj, j)
		}
	}
	return ai, bj
}

// IndelUlam returns the insert/delete-only Ulam distance between sequences
// with distinct characters: |a| + |b| - 2·LCS(a, b). This is the relaxed
// notion (no substitutions) studied by Naumovitz et al.; the ulam package
// computes the conventional (substitution-allowed) distance.
func IndelUlam(a, b []int) int {
	return len(a) + len(b) - 2*LCSDistinct(a, b)
}
