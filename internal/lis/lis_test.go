package lis

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveLIS is an O(n^2) reference.
func naiveLIS(a []int, strict bool) int {
	best := 0
	d := make([]int, len(a))
	for i := range a {
		d[i] = 1
		for j := 0; j < i; j++ {
			ok := a[j] < a[i] || (!strict && a[j] == a[i])
			if ok && d[j]+1 > d[i] {
				d[i] = d[j] + 1
			}
		}
		if d[i] > best {
			best = d[i]
		}
	}
	return best
}

func TestLengthSmall(t *testing.T) {
	cases := []struct {
		in   []int
		want int
	}{
		{nil, 0},
		{[]int{5}, 1},
		{[]int{1, 2, 3}, 3},
		{[]int{3, 2, 1}, 1},
		{[]int{10, 9, 2, 5, 3, 7, 101, 18}, 4},
		{[]int{2, 2, 2}, 1},
		{[]int{1, 3, 2, 4}, 3},
	}
	for _, c := range cases {
		if got := Length(c.in); got != c.want {
			t.Errorf("Length(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNonDecreasing(t *testing.T) {
	if got := NonDecreasingLength([]int{2, 2, 2}); got != 3 {
		t.Errorf("NonDecreasingLength([2 2 2]) = %d, want 3", got)
	}
	if got := NonDecreasingLength([]int{3, 1, 2, 2, 4}); got != 4 {
		t.Errorf("NonDecreasingLength = %d, want 4", got)
	}
}

func TestLengthQuickVsNaive(t *testing.T) {
	f := func(a []int) bool {
		if len(a) > 200 {
			a = a[:200]
		}
		return Length(a) == naiveLIS(a, true) &&
			NonDecreasingLength(a) == naiveLIS(a, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIndicesIsValidLIS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		a := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(40)
		}
		idx := Indices(a)
		if len(idx) != Length(a) {
			t.Fatalf("Indices length %d != Length %d for %v", len(idx), Length(a), a)
		}
		for k := 1; k < len(idx); k++ {
			if idx[k] <= idx[k-1] {
				t.Fatalf("indices not increasing: %v", idx)
			}
			if a[idx[k]] <= a[idx[k-1]] {
				t.Fatalf("values not strictly increasing: %v at %v", a, idx)
			}
		}
	}
}

func TestLCSDistinct(t *testing.T) {
	a := []int{1, 2, 3, 4, 5}
	b := []int{5, 1, 2, 3, 4}
	if got := LCSDistinct(a, b); got != 4 {
		t.Errorf("LCSDistinct = %d, want 4", got)
	}
	if got := LCSDistinct(a, []int{9, 8, 7}); got != 0 {
		t.Errorf("disjoint LCSDistinct = %d, want 0", got)
	}
	if got := LCSDistinct(nil, nil); got != 0 {
		t.Errorf("empty LCSDistinct = %d, want 0", got)
	}
}

// naiveLCS is the classic quadratic LCS for the distinct-character case.
func naiveLCS(a, b []int) int {
	d := make([][]int, len(a)+1)
	for i := range d {
		d[i] = make([]int, len(b)+1)
	}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				d[i][j] = d[i-1][j-1] + 1
			} else if d[i-1][j] > d[i][j-1] {
				d[i][j] = d[i-1][j]
			} else {
				d[i][j] = d[i][j-1]
			}
		}
	}
	return d[len(a)][len(b)]
}

func randPerm(rng *rand.Rand, n int) []int {
	p := rng.Perm(n)
	return p
}

func TestLCSDistinctVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		a := randPerm(rng, n)
		// b: subset of a's characters plus fresh ones, shuffled.
		b := make([]int, 0, n)
		for _, v := range a {
			if rng.Intn(2) == 0 {
				b = append(b, v)
			}
		}
		for i := 0; i < rng.Intn(10); i++ {
			b = append(b, n+100+i)
		}
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		if got, want := LCSDistinct(a, b), naiveLCS(a, b); got != want {
			t.Fatalf("LCSDistinct(%v,%v) = %d, want %d", a, b, got, want)
		}
	}
}

func TestIndelUlamProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		a := randPerm(rng, n)
		b := randPerm(rng, n)
		d := IndelUlam(a, b)
		if d%2 != 0 {
			t.Fatalf("indel Ulam of equal-length permutations must be even, got %d", d)
		}
		if d != IndelUlam(b, a) {
			t.Fatalf("IndelUlam not symmetric")
		}
		if IndelUlam(a, a) != 0 {
			t.Fatalf("IndelUlam(a,a) != 0")
		}
	}
}

func TestCommonMatchesOrdered(t *testing.T) {
	a := []int{4, 1, 7, 3}
	b := []int{3, 9, 4, 7}
	ai, bj := CommonMatches(a, b)
	if len(ai) != 3 || len(bj) != 3 {
		t.Fatalf("want 3 matches, got %d", len(ai))
	}
	for k := 1; k < len(bj); k++ {
		if bj[k] <= bj[k-1] {
			t.Fatalf("matches not ordered by j: %v", bj)
		}
	}
	for k := range ai {
		if a[ai[k]] != b[bj[k]] {
			t.Fatalf("match %d not equal: a[%d]=%d b[%d]=%d", k, ai[k], a[ai[k]], bj[k], b[bj[k]])
		}
	}
}
