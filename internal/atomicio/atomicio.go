// Package atomicio writes files atomically: content goes to a temporary
// file in the destination's directory, is fsynced, and is renamed over the
// target, so a crash at any point leaves either the old file or the new
// one — never a torn mix. The checkpoint store's manifests, the trace
// exporters, and mpcbench's BENCH_*.json all write through here; for all
// of them a half-written file is worse than a missing one (a torn
// checkpoint manifest would block resume, a truncated trace renders as an
// empty timeline, a partial bench file parses as a baseline with missing
// cases).
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temporary file is
// created in path's directory (rename is only atomic within a filesystem)
// and removed on any failure.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return writeTo(path, perm, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// WriteTo atomically replaces path with src's export (the io.WriterTo
// shape the trace exporters implement).
func WriteTo(path string, src io.WriterTo, perm os.FileMode) error {
	return writeTo(path, perm, func(f *os.File) error {
		_, err := src.WriteTo(f)
		return err
	})
}

// writeTo runs the temp-write-sync-rename sequence, wrapping every failing
// step with its name and the destination path.
func writeTo(path string, perm os.FileMode, write func(*os.File) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	fail := func(step string, err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("atomicio: %s %s: %w", step, path, err)
	}
	if err := write(f); err != nil {
		return fail("write", err)
	}
	if err := f.Chmod(perm); err != nil {
		return fail("chmod", err)
	}
	if err := f.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: rename %s: %w", path, err)
	}
	return nil
}
