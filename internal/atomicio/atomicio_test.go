package atomicio

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content = %q, want v1", got)
	}
	if err := WriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("after replace content = %q, want v2", got)
	}
	// No temp droppings.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries, want 1: %v", len(ents), ents)
	}
}

func TestWriteToUsesWriterTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	src := bytes.NewBufferString("exported")
	if err := WriteTo(path, src, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "exported" {
		t.Fatalf("content = %q", got)
	}
}

type errWriterTo struct{}

func (errWriterTo) WriteTo(io.Writer) (int64, error) { return 0, os.ErrInvalid }

func TestFailedWriteLeavesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteTo(path, errWriterTo{}, 0o644)
	if err == nil {
		t.Fatal("want error from failing WriterTo")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error %q does not name the path", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("old content clobbered: %q", got)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("temp file left behind: %v", ents)
	}
}
