package harness

import (
	"strings"
	"testing"
)

func TestBudgetCheckSmallSweep(t *testing.T) {
	rows, err := BudgetCheck(BudgetConfig{Sizes: []int{200, 400, 800}, X: 0.25, Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every Table 1 algorithm must contribute rows, and the whole-run
	// quantities must each be evaluated.
	algos := map[string]bool{}
	quantities := map[string]bool{}
	for _, r := range rows {
		algos[r.Algo] = true
		quantities[r.Quantity] = true
		if !r.Pass {
			t.Errorf("budget row FAIL: %s %s (fitted %.2f, limit %.2f, util %.3f)",
				r.Algo, r.Quantity, r.Fitted, r.Limit, r.Util)
		}
	}
	for _, a := range []string{"ulam-mpc(T4)", "edit-mpc(T9)", "hss[20]"} {
		if !algos[a] {
			t.Errorf("no budget rows for %s", a)
		}
	}
	for _, q := range []string{"rounds/guess", "mem/machine", "machines", "total work",
		"rounds[candidates]/guess", "rounds[chain]/guess"} {
		if !quantities[q] {
			t.Errorf("quantity %q not evaluated", q)
		}
	}

	out := BudgetTable(rows).String()
	if !strings.Contains(out, "PASS") || strings.Contains(out, "FAIL") {
		t.Errorf("unexpected verdicts in table:\n%s", out)
	}
}

func TestBudgetTableMarksFailures(t *testing.T) {
	rows := []BudgetRow{{Algo: "a", Quantity: "rounds/guess", Paper: "2", Fitted: 3, Limit: 2, Pass: false}}
	out := BudgetTable(rows).String()
	if !strings.Contains(out, "FAIL") {
		t.Errorf("failing row not marked FAIL:\n%s", out)
	}
}
