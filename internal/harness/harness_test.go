package harness

import (
	"strings"
	"testing"

	"mpcdist/internal/core"
)

func TestUlamRowCertifiesFactor(t *testing.T) {
	row, err := UlamRow(300, 30, core.Params{X: 0.3, Eps: 1, Seed: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if row.Factor < 1 || row.Factor > 2 {
		t.Errorf("factor %v out of [1,2]", row.Factor)
	}
	if row.Rounds != 2 {
		t.Errorf("rounds = %d", row.Rounds)
	}
	if len(row.Cells()) != len(Columns()) {
		t.Errorf("cells/columns mismatch: %d vs %d", len(row.Cells()), len(Columns()))
	}
}

func TestEditRowsComparable(t *testing.T) {
	ours, hss, err := EditRows(500, 20, core.Params{X: 0.25, Eps: 0.5, Seed: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ours.Value != hss.Value && (ours.Factor > 1.5 || hss.Factor > 1.5) {
		t.Errorf("rows diverge beyond factor bounds: %+v vs %+v", ours, hss)
	}
	if hss.Machines <= ours.Machines {
		t.Errorf("expected HSS to use more machines: %d vs %d", hss.Machines, ours.Machines)
	}
}

func TestSweepAndSlopes(t *testing.T) {
	pts, err := Sweep([]int{300, 600}, 0.5, core.Params{X: 0.25, Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	om, hm, _, _ := Slopes(pts)
	if om <= 0 || hm <= 0 {
		t.Errorf("slopes not positive: %v %v", om, hm)
	}
}

func TestUlamScalingPoints(t *testing.T) {
	pts, err := UlamScaling([]int{256, 512}, 0.5, core.Params{X: 0.3, Eps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1].TotalOps <= pts[0].TotalOps {
		t.Errorf("scaling points wrong: %+v", pts)
	}
}

func TestAnalyticTable(t *testing.T) {
	out := Analytic(100000, 0.25).String()
	for _, want := range []string{"Ulam (Thm 4)", "Edit (Thm 9)", "Edit [20]", "Edit [11]", "n^0.45"} {
		if !strings.Contains(out, want) {
			t.Errorf("analytic table missing %q:\n%s", want, out)
		}
	}
}
