package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mpcdist/internal/baseline"
	"mpcdist/internal/buildinfo"
	"mpcdist/internal/checkpoint"
	"mpcdist/internal/core"
	"mpcdist/internal/dist"
	"mpcdist/internal/fault"
	"mpcdist/internal/mpc"
	"mpcdist/internal/netchaos"
	"mpcdist/internal/trace"
	"mpcdist/internal/transport"
	"mpcdist/internal/workload"
)

// msOf converts a duration to fractional milliseconds for the JSON record.
func msOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// The bench suite runs the workload generators across sizes and records
// every deterministic model counter (ops, comm words, rounds, machines,
// memory, per-phase breakdowns) plus wall time. The counters are
// parallelism-independent (see the root determinism test), so any change
// in them between two runs of the same suite is a real behavior change —
// cmd/mpcbench compares them exactly and treats wall time as advisory.

// BenchConfig parameterizes a bench run.
type BenchConfig struct {
	Sizes []int // problem sizes; zero means {192, 384}
	Seed  int64
	Eps   float64 // zero means 0.5
	// Faults injects a deterministic fault schedule into every case's
	// cluster (nil = fault-free). With faults active the deterministic
	// counters must still match a fault-free baseline — recovery is
	// invisible to the model counters — while failures/retries record the
	// recovery overhead.
	Faults *fault.Plan
	// MaxRetries is the recovery budget (0 = mpc.DefaultMaxRetries).
	MaxRetries int
	// Transport selects the shuffle transport: "local" (default,
	// in-process) or "tcp" (a distributed session of real worker
	// processes, shared across all cases). The deterministic counters are
	// transport-independent — a tcp run must compare exactly against a
	// local baseline — while ElapsedMs and WireBytes record what the
	// transport cost.
	Transport string
	// Workers is the worker-process count for Transport "tcp" (0 = 2).
	Workers int
	// Telemetry turns on the tcp session's trace shipping (ignored on
	// local). Out-of-band by design: a telemetry-on run must compare
	// exactly against a telemetry-off baseline — that is how the bench
	// suite enforces the observability plane's zero-interference invariant.
	Telemetry bool
	// TransportOpts tunes the tcp session's liveness machinery (heartbeat,
	// peer deadline, rejoin grace). Zero means transport defaults.
	TransportOpts transport.Options
	// NetChaos, when active, degrades every tcp link with the deterministic
	// injector. The strongest form of the transport invariant: a chaos run
	// must still compare exactly against the clean local baseline, with the
	// recovery cost visible only in the advisory wire fields.
	NetChaos *netchaos.Plan
	// CheckpointDir, when non-empty, snapshots every case's rounds into a
	// checkpoint store there (flush cadence 1). Checkpointing must be
	// invisible to the deterministic counters — a checkpointed run compares
	// exactly against a plain baseline — while the advisory
	// checkpointSaves/checkpointBytes fields record what durability cost.
	CheckpointDir string
}

func (c BenchConfig) withDefaults() BenchConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{192, 384}
	}
	if c.Eps <= 0 {
		c.Eps = 0.5
	}
	if c.Transport == "" {
		c.Transport = "local"
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	return c
}

// BenchPhase is one phase's deterministic counters within a case.
type BenchPhase struct {
	Phase       string `json:"phase"`
	Rounds      int    `json:"rounds"`
	MaxMachines int    `json:"maxMachines"`
	MaxWords    int    `json:"maxWords"`
	TotalOps    int64  `json:"totalOps"`
	CommWords   int64  `json:"commWords"`
}

// BenchResult is one (algorithm, workload, size) cell. Every field except
// ElapsedMs is deterministic given the config.
type BenchResult struct {
	Name        string  `json:"name"` // "algo/workload/n=N"
	Algo        string  `json:"algo"`
	Workload    string  `json:"workload"`
	N           int     `json:"n"`
	X           float64 `json:"x"`
	Value       int     `json:"value"`
	Rounds      int     `json:"rounds"`
	Machines    int     `json:"machines"`
	MaxWords    int     `json:"maxWords"`
	TotalOps    int64   `json:"totalOps"`
	CriticalOps int64   `json:"criticalOps"`
	CommWords   int64   `json:"commWords"`
	// Failures/Retries are the cluster's fault-injection and recovery
	// counters — exactly zero on a fault-free run, so any drift here is a
	// recovery-overhead regression CompareBench flags.
	Failures  int          `json:"failures"`
	Retries   int          `json:"retries"`
	Phases    []BenchPhase `json:"phases"`
	ElapsedMs float64      `json:"elapsedMs"` // wall time; compared with tolerance only
	// RoundP50Ms/P95Ms/P99Ms are round-latency quantiles (nearest rank)
	// over the case's per-round machine-execution wall times. Advisory
	// like ElapsedMs: reported, warned about under -tol, never gated.
	RoundP50Ms float64 `json:"roundP50Ms,omitempty"`
	RoundP95Ms float64 `json:"roundP95Ms,omitempty"`
	RoundP99Ms float64 `json:"roundP99Ms,omitempty"`
	// WireBytes is the case's transport traffic (both directions, all
	// workers). Local runs count the logical codec encoding of each
	// exchange, tcp runs the real wire (framing and handshakes included),
	// so the two are comparable but not equal. Advisory, never compared.
	WireBytes int64 `json:"wireBytes,omitempty"`
	// Reconnects/CorruptFrames are the case's self-healing activity on a
	// tcp session (worker rejoins and CRC-rejected frames). Advisory like
	// WireBytes — CompareBench never gates on them — they exist so a chaos
	// bench records what the link survived while the counters stayed exact.
	Reconnects    int64 `json:"reconnects,omitempty"`
	CorruptFrames int64 `json:"corruptFrames,omitempty"`
	// CheckpointSaves/CheckpointBytes are the case's durability activity
	// when BenchConfig.CheckpointDir is set: steps persisted and blob bytes
	// written. Advisory like WireBytes — CompareBench never gates on them —
	// so a checkpointed run still diffs exactly against a plain baseline.
	CheckpointSaves int   `json:"checkpointSaves,omitempty"`
	CheckpointBytes int64 `json:"checkpointBytes,omitempty"`
}

// BenchFile is the BENCH_<stamp>.json schema.
type BenchFile struct {
	Stamp string  `json:"stamp"` // RFC 3339; excluded from comparison
	Seed  int64   `json:"seed"`
	Eps   float64 `json:"eps"`
	Sizes []int   `json:"sizes"`
	// Transport/Workers record how the suite ran. Deliberately excluded
	// from CompareBench's config gate: counters must match across
	// transports, and diffing a tcp run against the local baseline is
	// exactly how that invariant is checked.
	Transport string `json:"transport,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	// Telemetry records whether the tcp session shipped trace events.
	// Excluded from the config gate for the same reason as Transport:
	// diffing telemetry-on against a telemetry-off baseline is the check.
	Telemetry bool `json:"telemetry,omitempty"`
	// NetChaos records the link-fault schedule the suite ran under, if
	// any. Excluded from the config gate: diffing a chaos run against the
	// clean baseline is exactly the robustness invariant.
	NetChaos string `json:"netchaos,omitempty"`
	// Checkpoint records the store directory the suite snapshotted into, if
	// any. Excluded from the config gate: diffing a checkpointed run against
	// a plain baseline is exactly the zero-interference check.
	Checkpoint string        `json:"checkpointDir,omitempty"`
	Results    []BenchResult `json:"results"`
}

// benchInput is one case's generated problem instance: a byte pair for
// the edit-distance algorithms, a permutation pair for Ulam.
type benchInput struct {
	s, sbar []byte
	p, q    []int
}

// benchCase is one algorithm × workload generator of the suite. gen is
// separated from the driver dispatch (runCase) so the identical inputs —
// same rng construction, same call sequence — feed whichever shuffle
// transport the run selects.
type benchCase struct {
	algo, workload string
	x              float64
	gen            func(n int) benchInput
}

// benchCases returns the suite: the paper's two algorithms and the two
// baselines, each over workload-generator families with planted sublinear
// distances (d ~ n^0.5, ulam n^0.6).
func benchCases(seed int64) []benchCase {
	// salt de-correlates the rng streams of workloads that share a
	// generator structure (identical streams would yield identical op
	// counts and hide a per-workload regression).
	editPair := func(n int, salt int64, gen func(rng *rand.Rand, n int) ([]byte, []byte)) benchInput {
		rng := rand.New(rand.NewSource(seed*104729 + int64(n) + salt))
		s, sbar := gen(rng, n)
		return benchInput{s: s, sbar: sbar}
	}
	plantedRandom := func(n int) benchInput {
		return editPair(n, 0, func(rng *rand.Rand, n int) ([]byte, []byte) {
			s := workload.RandomString(rng, n, 4)
			return s, workload.PlantedEdits(rng, s, planted(n, 0.5), 4)
		})
	}
	return []benchCase{
		{
			algo: "ulam-mpc", workload: "planted-perm", x: 0.3,
			gen: func(n int) benchInput {
				rng := rand.New(rand.NewSource(seed*7919 + int64(n)))
				s, sbar, _ := workload.PlantedUlam(rng, n, planted(n, 0.6))
				return benchInput{p: s, q: sbar}
			},
		},
		{
			algo: "ulam-mpc", workload: "block-move", x: 0.3,
			gen: func(n int) benchInput {
				rng := rand.New(rand.NewSource(seed*7919 + int64(n) + 1))
				s := workload.Permutation(rng, n)
				sbar := workload.BlockMoveInts(rng, s, planted(n, 0.5))
				return benchInput{p: s, q: sbar}
			},
		},
		{
			algo: "edit-mpc", workload: "planted-random", x: 0.25,
			gen: plantedRandom,
		},
		{
			algo: "edit-mpc", workload: "planted-dna", x: 0.25,
			gen: func(n int) benchInput {
				return editPair(n, 1000, func(rng *rand.Rand, n int) ([]byte, []byte) {
					s := workload.DNA(rng, n)
					return s, workload.PlantedDNA(rng, s, planted(n, 0.5))
				})
			},
		},
		{
			algo: "edit-mpc", workload: "periodic-shift", x: 0.25,
			gen: func(n int) benchInput {
				// Shift by a non-multiple of the effective period (sigma
				// caps it at 4), so the rotation is a real, small edit.
				s := workload.Periodic(n, 16, 4)
				return benchInput{s: s, sbar: workload.Shift(s, 7)}
			},
		},
		{
			algo: "edit-mpc", workload: "zipf-blockmove", x: 0.25,
			gen: func(n int) benchInput {
				return editPair(n, 2000, func(rng *rand.Rand, n int) ([]byte, []byte) {
					s := workload.Zipf(rng, n, 16)
					return s, workload.BlockMove(rng, s, planted(n, 0.5))
				})
			},
		},
		{
			algo: "hss", workload: "planted-random", x: 0.25,
			gen: plantedRandom,
		},
		{
			algo: "lcs-mpc", workload: "planted-random", x: 0.25,
			gen: plantedRandom,
		},
	}
}

// distAlgo maps a bench-case algorithm name to its dist.Job name.
func distAlgo(algo string) string {
	switch algo {
	case "hss":
		return dist.AlgoEditHSS
	default:
		return algo // ulam-mpc, edit-mpc, lcs-mpc use the dist names
	}
}

// runCase dispatches one case: through the distributed session when one
// is given, else to the in-process driver.
func runCase(bc benchCase, in benchInput, p core.Params, sess *dist.Session) (core.Result, error) {
	if sess != nil {
		job := dist.FromParams(distAlgo(bc.algo), p)
		job.S, job.T, job.P, job.Q = in.s, in.sbar, in.p, in.q
		return sess.Run(job)
	}
	switch bc.algo {
	case "ulam-mpc":
		return core.UlamMPC(in.p, in.q, p)
	case "edit-mpc":
		return core.EditMPC(in.s, in.sbar, p)
	case "hss":
		return baseline.HSSEditMPC(in.s, in.sbar, p)
	case "lcs-mpc":
		return baseline.LCSMPC(in.s, in.sbar, p)
	}
	return core.Result{}, fmt.Errorf("harness: unknown bench algo %q", bc.algo)
}

// benchPhases flattens a report's phase profile for the JSON record.
func benchPhases(rep mpc.Report) []BenchPhase {
	var out []BenchPhase
	for _, ps := range mpc.Profile(rep).Phases {
		out = append(out, BenchPhase{
			Phase:       string(ps.Phase),
			Rounds:      ps.Rounds,
			MaxMachines: ps.MaxMachines,
			MaxWords:    ps.MaxWords,
			TotalOps:    ps.TotalOps,
			CommWords:   ps.CommWords,
		})
	}
	return out
}

// RunBench executes the suite and returns the record. Results are sorted
// by name so the JSON is diff-stable.
func RunBench(cfg BenchConfig) (BenchFile, error) {
	cfg = cfg.withDefaults()
	file := BenchFile{
		Stamp: time.Now().UTC().Format(time.RFC3339),
		Seed:  cfg.Seed, Eps: cfg.Eps, Sizes: cfg.Sizes,
		Transport: cfg.Transport,
	}
	var store *checkpoint.Store
	if cfg.CheckpointDir != "" {
		var err error
		if store, err = checkpoint.Open(cfg.CheckpointDir); err != nil {
			return BenchFile{}, err
		}
		file.Checkpoint = cfg.CheckpointDir
	}
	var sess *dist.Session
	var local *transport.Local
	switch cfg.Transport {
	case "local":
		// The counting in-process transport makes local WireBytes a
		// logical-encoding measure comparable against tcp runs (which add
		// framing and handshake traffic on top of the same payload codec).
		local = transport.NewLocal()
	case "tcp":
		var err error
		sess, err = dist.NewSession(dist.SessionOptions{Workers: cfg.Workers, Telemetry: cfg.Telemetry,
			Transport: cfg.TransportOpts, NetChaos: cfg.NetChaos, Checkpoint: store})
		if err != nil {
			return BenchFile{}, err
		}
		defer sess.Close()
		file.Workers = cfg.Workers
		file.Telemetry = cfg.Telemetry
		if cfg.NetChaos.Active() {
			file.NetChaos = cfg.NetChaos.String()
		}
	default:
		return BenchFile{}, fmt.Errorf("harness: unknown transport %q (want local or tcp)", cfg.Transport)
	}
	stats := func() transport.Stats {
		if sess != nil {
			return sess.Stats()
		}
		return local.Stats()
	}
	for _, bc := range benchCases(cfg.Seed) {
		for _, n := range cfg.Sizes {
			p := core.Params{X: bc.x, Eps: cfg.Eps, Seed: cfg.Seed,
				Faults: cfg.Faults, MaxRetries: cfg.MaxRetries}
			if local != nil {
				// Guarded: a nil *Local in the interface field would read
				// as non-nil to the driver.
				p.Transport = local
			}
			in := bc.gen(n)
			var saver *checkpoint.Saver
			if store != nil && sess == nil {
				// In-process durability: one saver per case, keyed by the
				// same job-spec digest a distributed run would use. The tcp
				// path builds its saver inside Session.Run.
				job := dist.FromParams(distAlgo(bc.algo), p)
				job.S, job.T, job.P, job.Q = in.s, in.sbar, in.p, in.q
				digest, err := job.SpecDigest()
				if err != nil {
					return BenchFile{}, err
				}
				saver, err = checkpoint.NewSaver(store, digest, distAlgo(bc.algo),
					checkpoint.SaverOptions{Revision: buildinfo.Revision()})
				if err != nil {
					return BenchFile{}, err
				}
				p.Checkpointer = saver
			}
			start := time.Now()
			wireStart := stats()
			res, err := runCase(bc, in, p, sess)
			if err != nil {
				return BenchFile{}, fmt.Errorf("harness: bench %s/%s n=%d: %w", bc.algo, bc.workload, n, err)
			}
			ckptSaves, ckptBytes := 0, int64(0)
			if saver != nil {
				if err := saver.Flush(); err != nil {
					return BenchFile{}, err
				}
				ckptSaves, _, ckptBytes = saver.Counters()
			} else if sess != nil && store != nil {
				if cs := sess.CheckpointStatus(); cs != nil {
					ckptSaves, ckptBytes = cs.Saves, cs.BytesWritten
				}
			}
			times := make([]time.Duration, 0, len(res.Report.Rounds))
			for _, rs := range res.Report.Rounds {
				times = append(times, rs.Elapsed)
			}
			rq := trace.Quantiles(times)
			wireEnd := stats()
			file.Results = append(file.Results, BenchResult{
				Name:     fmt.Sprintf("%s/%s/n=%d", bc.algo, bc.workload, n),
				Algo:     bc.algo,
				Workload: bc.workload,
				N:        n, X: bc.x,
				Value:           res.Value,
				Rounds:          res.Report.NumRounds,
				Machines:        res.Report.MaxMachines,
				MaxWords:        res.Report.MaxWords,
				TotalOps:        res.Report.TotalOps,
				CriticalOps:     res.Report.CriticalOps,
				CommWords:       res.Report.CommWords,
				Failures:        res.Report.Failures,
				Retries:         res.Report.Retries,
				Phases:          benchPhases(res.Report),
				ElapsedMs:       float64(time.Since(start).Nanoseconds()) / 1e6,
				RoundP50Ms:      msOf(rq.P50),
				RoundP95Ms:      msOf(rq.P95),
				RoundP99Ms:      msOf(rq.P99),
				WireBytes:       wireEnd.BytesIn + wireEnd.BytesOut - wireStart.BytesIn - wireStart.BytesOut,
				Reconnects:      int64(wireEnd.Reconnects - wireStart.Reconnects),
				CorruptFrames:   int64(wireEnd.CorruptFrames - wireStart.CorruptFrames),
				CheckpointSaves: ckptSaves,
				CheckpointBytes: ckptBytes,
			})
		}
	}
	sort.Slice(file.Results, func(i, j int) bool { return file.Results[i].Name < file.Results[j].Name })
	return file, nil
}

// CompareBench checks cur against old. diffs are deterministic-counter
// changes (a regression gate: any entry means the model behavior changed);
// warnings are advisory wall-time movements beyond a factor of wallTol
// (ignored when wallTol <= 1).
func CompareBench(old, cur BenchFile, wallTol float64) (diffs, warnings []string) {
	if old.Seed != cur.Seed || old.Eps != cur.Eps {
		diffs = append(diffs, fmt.Sprintf("config mismatch: old seed=%d eps=%g, new seed=%d eps=%g (comparison requires identical config)",
			old.Seed, old.Eps, cur.Seed, cur.Eps))
		return diffs, nil
	}
	oldByName := map[string]BenchResult{}
	for _, r := range old.Results {
		oldByName[r.Name] = r
	}
	seen := map[string]bool{}
	for _, nr := range cur.Results {
		or, ok := oldByName[nr.Name]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: new case not in baseline", nr.Name))
			continue
		}
		seen[nr.Name] = true
		check := func(field string, o, n int64) {
			if o != n {
				diffs = append(diffs, fmt.Sprintf("%s: %s %d -> %d", nr.Name, field, o, n))
			}
		}
		check("value", int64(or.Value), int64(nr.Value))
		check("rounds", int64(or.Rounds), int64(nr.Rounds))
		check("machines", int64(or.Machines), int64(nr.Machines))
		check("maxWords", int64(or.MaxWords), int64(nr.MaxWords))
		check("totalOps", or.TotalOps, nr.TotalOps)
		check("criticalOps", or.CriticalOps, nr.CriticalOps)
		check("commWords", or.CommWords, nr.CommWords)
		check("failures", int64(or.Failures), int64(nr.Failures))
		check("retries", int64(or.Retries), int64(nr.Retries))
		check("phases", int64(len(or.Phases)), int64(len(nr.Phases)))
		if len(or.Phases) == len(nr.Phases) {
			for i := range nr.Phases {
				op, np := or.Phases[i], nr.Phases[i]
				if op.Phase != np.Phase {
					diffs = append(diffs, fmt.Sprintf("%s: phase[%d] %s -> %s", nr.Name, i, op.Phase, np.Phase))
					continue
				}
				pf := func(field string, o, n int64) {
					check(fmt.Sprintf("phase[%s].%s", np.Phase, field), o, n)
				}
				pf("rounds", int64(op.Rounds), int64(np.Rounds))
				pf("maxMachines", int64(op.MaxMachines), int64(np.MaxMachines))
				pf("maxWords", int64(op.MaxWords), int64(np.MaxWords))
				pf("totalOps", op.TotalOps, np.TotalOps)
				pf("commWords", op.CommWords, np.CommWords)
			}
		}
		if wallTol > 1 {
			// Wall time and round-latency quantiles are host quantities:
			// warned about beyond the tolerance factor, never gated. The
			// o > 0 guard also skips baselines recorded before the
			// quantile fields existed.
			warn := func(field string, o, n float64) {
				if o <= 0 || n <= 0 {
					return
				}
				ratio := n / o
				if ratio > wallTol || ratio < 1/wallTol {
					warnings = append(warnings, fmt.Sprintf("%s: %s %.2fms -> %.2fms (%.2fx)",
						nr.Name, field, o, n, ratio))
				}
			}
			warn("wall time", or.ElapsedMs, nr.ElapsedMs)
			warn("round p50", or.RoundP50Ms, nr.RoundP50Ms)
			warn("round p95", or.RoundP95Ms, nr.RoundP95Ms)
			warn("round p99", or.RoundP99Ms, nr.RoundP99Ms)
		}
	}
	for _, r := range old.Results {
		if !seen[r.Name] {
			diffs = append(diffs, fmt.Sprintf("%s: baseline case missing from new run", r.Name))
		}
	}
	return diffs, warnings
}
