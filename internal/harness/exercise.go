package harness

import (
	"math/rand"

	"mpcdist/internal/core"
)

// ExercisePhases runs one fixed large-distance edit instance whose guess
// ladder crosses the small/large cutover: the sub-cutover attempts execute
// the Lemma 6 pipeline (partition, candidates, chain) and the final guess
// executes the Lemma 8 pipeline (partition, graph, chain), so a CPU
// profile spanning the call carries samples for all four Table 1 phase
// labels from a single MPC case. mpcbench drives it under -cpuprofile;
// it is never part of the suite's deterministic output, so adding or
// changing it cannot shift the bench baseline.
//
// The inputs use disjoint alphabets, which pins the edit distance at n —
// far above every planted-workload distance in the suite and the only way
// the ladder escapes the small regime's (1+eps)-acceptance at these sizes.
func ExercisePhases(seed int64) (core.Result, error) {
	const n = 384
	rng := rand.New(rand.NewSource(seed*6151 + int64(n)))
	s := make([]byte, n)
	sbar := make([]byte, n)
	for i := range s {
		s[i] = byte('A' + rng.Intn(4))
		sbar[i] = byte('W' + rng.Intn(4))
	}
	res, err := core.EditMPC(s, sbar, core.Params{X: 0.25, Seed: seed})
	if err != nil {
		return res, err
	}

	// The partition phase is driver-side and runs for well under a
	// millisecond per case above — too brief for the OS profile timer to
	// hit. Disjoint-value Ulam inputs invert the ratio: the O(n) match-pair
	// partition is the whole cost because every block's candidate set is
	// empty and the rounds are trivial, so a few large repetitions give
	// the partition label tens of milliseconds of CPU to sample.
	const (
		ulamN    = 200_000
		ulamReps = 5
	)
	p := make([]int, ulamN)
	q := make([]int, ulamN)
	for i := range p {
		p[i] = i
		q[i] = i + ulamN
	}
	for r := 0; r < ulamReps; r++ {
		if _, uerr := core.UlamMPC(p, q, core.Params{X: 0.3, Seed: seed + int64(r)}); uerr != nil {
			return res, uerr
		}
	}
	return res, nil
}
