// Package harness runs the experiments that regenerate the paper's
// Table 1 as measured quantities, plus the scaling sweeps that validate
// the machine-count and total-work exponents. It is shared by cmd/mpctable
// and the root benchmark suite.
package harness

import (
	"fmt"
	"math"
	"math/rand"

	"mpcdist/internal/baseline"
	"mpcdist/internal/core"
	"mpcdist/internal/editdist"
	"mpcdist/internal/mpc"
	"mpcdist/internal/stats"
	"mpcdist/internal/trace"
	"mpcdist/internal/ulam"
	"mpcdist/internal/workload"
)

// Row is one measured Table 1 row.
type Row struct {
	Algo      string  // "ulam-mpc", "edit-mpc", "hss"
	N         int     // input length
	X         float64 // memory exponent
	Eps       float64
	Value     int     // computed distance
	Exact     int     // oracle distance (-1 if skipped)
	Factor    float64 // Value / Exact
	Rounds    int
	Machines  int
	MemWords  int
	TotalOps  int64
	CritOps   int64
	CommWords int64   // total communication volume across rounds
	ElapsedMs float64 // machine-execution wall time (queueing excluded)
	Straggler float64 // worst per-round max/mean machine-time ratio
	// Profile resolves the run's work to paper phases (candidates / graph /
	// chain); the per-phase ops columns of Cells come from it.
	Profile mpc.PhaseProfile
}

// Columns returns the header cells matching Cells.
func Columns() []string {
	return []string{"algo", "n", "x", "eps", "value", "exact", "factor",
		"rounds", "machines", "mem/machine", "totalOps", "criticalOps",
		"comm", "candOps", "graphOps", "chainOps", "elapsedMs", "straggler"}
}

// phaseOps renders one phase's op count, "-" when the phase never ran.
func (r Row) phaseOps(ph trace.Phase) string {
	if ps, ok := r.Profile.Get(ph); ok {
		return fmt.Sprint(ps.TotalOps)
	}
	return "-"
}

// Cells renders the row for stats.Table.
func (r Row) Cells() []interface{} {
	exact := fmt.Sprint(r.Exact)
	factor := fmt.Sprintf("%.3f", r.Factor)
	if r.Exact < 0 {
		exact, factor = "-", "-"
	}
	straggler := "-"
	if r.Straggler > 0 {
		straggler = fmt.Sprintf("%.2f", r.Straggler)
	}
	return []interface{}{r.Algo, r.N, r.X, r.Eps, r.Value, exact, factor,
		r.Rounds, r.Machines, r.MemWords, r.TotalOps, r.CritOps, r.CommWords,
		r.phaseOps(trace.PhaseCandidates), r.phaseOps(trace.PhaseGraph),
		r.phaseOps(trace.PhaseChain),
		fmt.Sprintf("%.2f", r.ElapsedMs), straggler}
}

func fromResult(algo string, n int, p core.Params, res core.Result, exact int) Row {
	row := Row{
		Algo: algo, N: n, X: p.X, Eps: p.Eps,
		Value: res.Value, Exact: exact,
		Rounds:    res.Report.NumRounds,
		Machines:  res.Report.MaxMachines,
		MemWords:  res.Report.MaxWords,
		TotalOps:  res.Report.TotalOps,
		CritOps:   res.Report.CriticalOps,
		CommWords: res.Report.CommWords,
		ElapsedMs: float64(res.Report.Elapsed.Nanoseconds()) / 1e6,
		Straggler: res.Report.MaxStraggler,
		Profile:   mpc.Profile(res.Report),
	}
	if exact > 0 {
		row.Factor = float64(res.Value) / float64(exact)
	} else if exact == 0 {
		row.Factor = 1
	}
	return row
}

// UlamRow runs the Theorem 4 algorithm on a planted-distance permutation
// instance and certifies the factor against the exact oracle (skipped when
// withExact is false at large n).
func UlamRow(n int, d int, p core.Params, withExact bool) (Row, error) {
	rng := rand.New(rand.NewSource(p.Seed*7919 + int64(n)))
	s, sbar, planted := workload.PlantedUlam(rng, n, d)
	res, err := core.UlamMPC(s, sbar, p)
	if err != nil {
		return Row{}, err
	}
	exact := -1
	if withExact {
		exact = ulam.Exact(s, sbar, nil)
	}
	_ = planted // certified upper bound; the oracle is the real check
	return fromResult("ulam-mpc(T4)", n, p, res, exact), nil
}

// EditRows runs the Theorem 9 algorithm and the HSS baseline on the same
// planted-edit instance, returning one row each.
func EditRows(n int, d int, p core.Params, withExact bool) (ours, hss Row, err error) {
	rng := rand.New(rand.NewSource(p.Seed*104729 + int64(n)))
	s := workload.RandomString(rng, n, 4)
	sbar := workload.PlantedEdits(rng, s, d, 4)
	exact := -1
	if withExact {
		exact = editdist.Myers(s, sbar, nil)
	}
	oursRes, err := core.EditMPC(s, sbar, p)
	if err != nil {
		return Row{}, Row{}, fmt.Errorf("edit-mpc: %w", err)
	}
	hssRes, err := baseline.HSSEditMPC(s, sbar, p)
	if err != nil {
		return Row{}, Row{}, fmt.Errorf("hss: %w", err)
	}
	return fromResult("edit-mpc(T9)", n, p, oursRes, exact),
		fromResult("hss[20]", n, p, hssRes, exact), nil
}

// MachineSweep measures machine counts for ours vs the baseline across a
// range of n at fixed x, and returns the fitted log-log exponents. The
// paper's shapes: ours ~ n^{2x-(1-delta)} in the dominant small regime
// (Õ(n^{(9/5)x}) overall), HSS ~ n^{2x}.
type SweepPoint struct {
	N            int
	OursMachines int
	HSSMachines  int
	OursOps      int64
	HSSOps       int64
}

// Sweep runs EditRows over sizes, keeping the planted distance at
// round(n^dexp).
func Sweep(sizes []int, dexp float64, p core.Params) ([]SweepPoint, error) {
	var pts []SweepPoint
	for _, n := range sizes {
		d := int(math.Round(math.Pow(float64(n), dexp)))
		if d < 1 {
			d = 1
		}
		ours, hss, err := EditRows(n, d, p, false)
		if err != nil {
			return nil, err
		}
		pts = append(pts, SweepPoint{
			N:            n,
			OursMachines: ours.Machines,
			HSSMachines:  hss.Machines,
			OursOps:      ours.TotalOps,
			HSSOps:       hss.TotalOps,
		})
	}
	return pts, nil
}

// Slopes fits the machine-count exponents of a sweep.
func Slopes(pts []SweepPoint) (oursMach, hssMach, oursOps, hssOps float64) {
	var ns, om, hm, oo, ho []float64
	for _, p := range pts {
		ns = append(ns, float64(p.N))
		om = append(om, float64(p.OursMachines))
		hm = append(hm, float64(p.HSSMachines))
		oo = append(oo, float64(p.OursOps))
		ho = append(ho, float64(p.HSSOps))
	}
	return stats.LogLogSlope(ns, om), stats.LogLogSlope(ns, hm),
		stats.LogLogSlope(ns, oo), stats.LogLogSlope(ns, ho)
}

// UlamSweep measures Theorem 4's model quantities across n.
type UlamPoint struct {
	N        int
	Machines int
	TotalOps int64
	MemWords int
}

// UlamScaling runs UlamRow over sizes with planted distance n^dexp. The
// paper's Õ(n) total-work claim concerns the asymptotic algorithm, so the
// sweep forces the CDQ match-point DP (the default build switches to the
// quadratic DP below its wall-clock crossover, which does more elementary
// operations while being faster in real time — see ulam.QuadCutoff).
func UlamScaling(sizes []int, dexp float64, p core.Params) ([]UlamPoint, error) {
	old := ulam.QuadCutoff
	ulam.QuadCutoff = 0
	defer func() { ulam.QuadCutoff = old }()
	var pts []UlamPoint
	for _, n := range sizes {
		d := int(math.Round(math.Pow(float64(n), dexp)))
		row, err := UlamRow(n, d, p, false)
		if err != nil {
			return nil, err
		}
		pts = append(pts, UlamPoint{N: n, Machines: row.Machines, TotalOps: row.TotalOps, MemWords: row.MemWords})
	}
	return pts, nil
}

// Analytic returns the paper's Table 1 formulas evaluated at (n, x) —
// machine counts and total-time exponents with the Õ constants dropped —
// so the harness can print predicted next to measured. The [11] row is
// included here (it is not re-implemented; DESIGN.md substitution #5).
func Analytic(n int, x float64) *stats.Table {
	fn := float64(n)
	tb := stats.NewTable("algo", "factor", "rounds", "mem/machine", "machines", "total time")
	tb.Add("Ulam (Thm 4)", "1+eps", 2,
		fmt.Sprintf("n^%.2f=%.0f", 1-x, math.Pow(fn, 1-x)),
		fmt.Sprintf("n^%.2f=%.0f", x, math.Pow(fn, x)),
		"n")
	tot := 2 - math.Min((1-x)/6, 2*x/5)
	tb.Add("Edit (Thm 9)", "3+eps", 4,
		fmt.Sprintf("n^%.2f=%.0f", 1-x, math.Pow(fn, 1-x)),
		fmt.Sprintf("n^%.2f=%.0f", 9*x/5, math.Pow(fn, 9*x/5)),
		fmt.Sprintf("n^%.2f", tot))
	tb.Add("Edit [20]", "1+eps", 2,
		fmt.Sprintf("n^%.2f=%.0f", 1-x, math.Pow(fn, 1-x)),
		fmt.Sprintf("n^%.2f=%.0f", 2*x, math.Pow(fn, 2*x)),
		"n^2")
	tb.Add("Edit [11]", "1+eps", "O(log n)",
		fmt.Sprintf("n^0.89=%.0f", math.Pow(fn, 8.0/9)),
		fmt.Sprintf("n^0.89=%.0f", math.Pow(fn, 8.0/9)),
		"n^2.6")
	return tb
}

// XSweepPoint is one point of a machines-vs-x sweep at fixed n.
type XSweepPoint struct {
	X            float64
	OursMachines int
	HSSMachines  int
}

// XSweep measures machine counts across memory exponents at fixed n —
// the structural view of Table 1's n^{(9/5)x} vs n^{2x} columns.
func XSweep(n int, d int, xs []float64, p core.Params) ([]XSweepPoint, error) {
	var pts []XSweepPoint
	for _, x := range xs {
		q := p
		q.X = x
		ours, hss, err := EditRows(n, d, q, false)
		if err != nil {
			return nil, err
		}
		pts = append(pts, XSweepPoint{X: x, OursMachines: ours.Machines, HSSMachines: hss.Machines})
	}
	return pts, nil
}
