package harness

import (
	"fmt"
	"math"
	"math/rand"

	"mpcdist/internal/baseline"
	"mpcdist/internal/core"
	"mpcdist/internal/mpc"
	"mpcdist/internal/stats"
	"mpcdist/internal/trace"
	"mpcdist/internal/ulam"
	"mpcdist/internal/workload"
)

// BudgetConfig parameterizes a Table 1 conformance sweep: run each
// algorithm across Sizes and check the measured per-phase and whole-run
// quantities against the paper's envelopes.
type BudgetConfig struct {
	Sizes []int // problem sizes; three or more give stable exponent fits
	X     float64
	Eps   float64
	Seed  int64
	// Slack widens each exponent envelope: a measured quantity passes when
	// its fitted log-log exponent is at most the paper exponent plus Slack.
	// The slack absorbs the Õ's polylog and poly(1/eps) factors, which at
	// simulator sizes contribute a visible slope (the enforced memory cap
	// alone carries a (1+ln n)² factor). Zero means 0.5.
	Slack float64
}

func (c BudgetConfig) withDefaults() BudgetConfig {
	if c.Slack <= 0 {
		c.Slack = 0.5
	}
	if c.Eps <= 0 {
		c.Eps = 0.5
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{400, 800, 1600}
	}
	return c
}

// BudgetRow is one evaluated Table 1 envelope: an algorithm × quantity
// cell with the paper's bound, the measured fit, and the verdict.
type BudgetRow struct {
	Algo     string
	Quantity string // "rounds/guess", "mem/machine", "machines", "total work", or a per-phase variant
	Paper    string // the envelope as printed in Table 1 (constants dropped)
	// Fitted is the measured value: a log-log exponent for scaling rows, a
	// max count for round rows. Limit is the pass threshold (paper exponent
	// + slack, or the exact round budget).
	Fitted float64
	Limit  float64
	// Constant is the fitted leading constant: the geometric mean over the
	// sweep of measured / n^paperExp (NaN for round rows). It is the Õ's
	// hidden factor made explicit at simulator scale.
	Constant float64
	// Util, for memory rows only (NaN otherwise), is the peak utilization
	// of the enforced per-machine cap across the sweep: max over sizes of
	// measured words / MemoryBudget(n). Memory rows pass on Util <= 1 —
	// the cap IS the paper's Õ(n^{1-x}) with its polylog spelled out, so
	// utilization, not a bare n^{1-x} fit, is the conformance criterion
	// (usage below the cap may transiently grow faster than n^{1-x}).
	Util float64
	Pass bool
}

// budgetSpec is one algorithm's Table 1 row: its envelopes and a runner.
type budgetSpec struct {
	algo           string
	roundsPerGuess int     // round budget per distance guess
	memExp         float64 // per-machine memory exponent
	machExp        float64 // machine-count exponent
	workExp        float64 // total-work exponent
	// phaseRounds is the per-guess round budget of each phase the
	// algorithm may run; phases absent from the map budget zero rounds.
	phaseRounds map[trace.Phase]int
	run         func(n int, p core.Params) (core.Result, error)
}

// budgetSpecs returns the three Table 1 rows under test at exponent x.
func budgetSpecs(x float64) []budgetSpec {
	return []budgetSpec{
		{
			algo: "ulam-mpc(T4)", roundsPerGuess: 2,
			memExp: 1 - x, machExp: x, workExp: 1,
			phaseRounds: map[trace.Phase]int{trace.PhaseCandidates: 1, trace.PhaseChain: 1},
			run: func(n int, p core.Params) (core.Result, error) {
				rng := rand.New(rand.NewSource(p.Seed*7919 + int64(n)))
				s, sbar, _ := workload.PlantedUlam(rng, n, planted(n, 0.6))
				return core.UlamMPC(s, sbar, p)
			},
		},
		{
			algo: "edit-mpc(T9)", roundsPerGuess: 4,
			memExp: 1 - x, machExp: 9 * x / 5, workExp: 2 - math.Min((1-x)/6, 2*x/5),
			phaseRounds: map[trace.Phase]int{
				trace.PhaseCandidates: 1, trace.PhaseGraph: 3, trace.PhaseChain: 1,
			},
			run: func(n int, p core.Params) (core.Result, error) {
				rng := rand.New(rand.NewSource(p.Seed*104729 + int64(n)))
				s := workload.RandomString(rng, n, 4)
				sbar := workload.PlantedEdits(rng, s, planted(n, 0.5), 4)
				return core.EditMPC(s, sbar, p)
			},
		},
		{
			algo: "hss[20]", roundsPerGuess: 2,
			memExp: 1 - x, machExp: 2 * x, workExp: 2,
			phaseRounds: map[trace.Phase]int{trace.PhaseCandidates: 1, trace.PhaseChain: 1},
			run: func(n int, p core.Params) (core.Result, error) {
				rng := rand.New(rand.NewSource(p.Seed*104729 + int64(n)))
				s := workload.RandomString(rng, n, 4)
				sbar := workload.PlantedEdits(rng, s, planted(n, 0.5), 4)
				return baseline.HSSEditMPC(s, sbar, p)
			},
		},
	}
}

// planted returns the planted distance round(n^dexp), at least 1. The
// budget sweep plants sublinear distances (the regime Table 1's clean
// shapes are stated in), matching the harness's scaling sweeps; a linear
// distance would drag d-dependent polylog factors into every fit.
func planted(n int, dexp float64) int {
	d := int(math.Round(math.Pow(float64(n), dexp)))
	if d < 1 {
		d = 1
	}
	return d
}

// geoMeanConstant returns the geometric mean over the sweep of y / n^exp.
func geoMeanConstant(ns, ys []float64, exp float64) float64 {
	var sum float64
	var cnt int
	for i := range ns {
		if ns[i] <= 0 || ys[i] <= 0 {
			continue
		}
		sum += math.Log(ys[i]) - exp*math.Log(ns[i])
		cnt++
	}
	if cnt == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(cnt))
}

// BudgetCheck runs each Table 1 algorithm across cfg.Sizes and evaluates
// the measured quantities against the paper's envelopes: per-guess round
// counts exactly, and memory/machines/total-work as fitted log-log
// exponents that must stay within paper exponent + Slack. Per-phase rows
// check the same envelopes restricted to each phase's rounds (a phase can
// never use more memory than the whole run, and its per-guess round count
// is fixed by the algorithm's structure).
//
// The Ulam total-work row concerns the asymptotic algorithm, so the sweep
// forces the CDQ match-point kernel for its duration (the default build
// switches to the quadratic DP below its wall-clock crossover, which does
// more elementary operations while being faster in real time).
func BudgetCheck(cfg BudgetConfig) ([]BudgetRow, error) {
	cfg = cfg.withDefaults()
	oldCutoff := ulam.QuadCutoff
	ulam.QuadCutoff = 0
	defer func() { ulam.QuadCutoff = oldCutoff }()

	var rows []BudgetRow
	for _, spec := range budgetSpecs(cfg.X) {
		// Per-size measurements, whole-run and per-phase.
		var ns, mem, mach, work, caps []float64
		maxRounds := 0
		type phaseSeries struct {
			mem, mach []float64
			maxRounds int
		}
		phases := map[trace.Phase]*phaseSeries{}
		for _, n := range cfg.Sizes {
			p := core.Params{X: cfg.X, Eps: cfg.Eps, Seed: cfg.Seed}
			res, err := spec.run(n, p)
			if err != nil {
				return nil, fmt.Errorf("harness: budget %s n=%d: %w", spec.algo, n, err)
			}
			ns = append(ns, float64(n))
			mem = append(mem, float64(res.Report.MaxWords))
			mach = append(mach, float64(res.Report.MaxMachines))
			work = append(work, float64(res.Report.TotalOps))
			caps = append(caps, float64(p.WithDefaults().MemoryBudget(n)))

			// Round counts are per guess: the paper runs the guesses in
			// parallel, so the budget binds each guess's cluster, not the
			// ladder's sum.
			guesses := res.GuessReports
			if len(guesses) == 0 {
				guesses = []mpc.Report{res.Report}
			}
			for _, g := range guesses {
				if g.NumRounds > maxRounds {
					maxRounds = g.NumRounds
				}
				for _, ps := range mpc.Profile(g).Phases {
					s := phases[ps.Phase]
					if s == nil {
						s = &phaseSeries{}
						phases[ps.Phase] = s
					}
					if ps.Rounds > s.maxRounds {
						s.maxRounds = ps.Rounds
					}
				}
			}
			// Per-phase scaling series come from the aggregate profile
			// (max memory/machines across all guesses' rounds of the phase).
			for _, ps := range mpc.Profile(res.Report).Phases {
				s := phases[ps.Phase]
				if s == nil {
					s = &phaseSeries{}
					phases[ps.Phase] = s
				}
				s.mem = append(s.mem, float64(ps.MaxWords))
				s.mach = append(s.mach, float64(ps.MaxMachines))
			}
		}

		expRow := func(quantity string, ys []float64, paperExp float64) BudgetRow {
			fit := stats.LogLogSlope(ns, ys)
			limit := paperExp + cfg.Slack
			return BudgetRow{
				Algo: spec.algo, Quantity: quantity,
				Paper:  fmt.Sprintf("n^%.2f", paperExp),
				Fitted: fit, Limit: limit,
				Constant: geoMeanConstant(ns, ys, paperExp),
				Util:     math.NaN(),
				Pass:     !math.IsNaN(fit) && fit <= limit,
			}
		}
		// Memory rows pass on utilization of the enforced cap (the cap is
		// the paper's Õ(n^{1-x}) with the polylog constant spelled out);
		// the fitted exponent is reported for context.
		memRow := func(quantity string, ys []float64) BudgetRow {
			util := 0.0
			for i := range ys {
				if u := ys[i] / caps[i]; u > util {
					util = u
				}
			}
			return BudgetRow{
				Algo: spec.algo, Quantity: quantity,
				Paper:  fmt.Sprintf("n^%.2f·lg²", spec.memExp),
				Fitted: stats.LogLogSlope(ns, ys), Limit: 1,
				Constant: geoMeanConstant(ns, ys, spec.memExp),
				Util:     util,
				Pass:     util <= 1 && util > 0,
			}
		}
		rows = append(rows, BudgetRow{
			Algo: spec.algo, Quantity: "rounds/guess",
			Paper:  fmt.Sprint(spec.roundsPerGuess),
			Fitted: float64(maxRounds), Limit: float64(spec.roundsPerGuess),
			Constant: math.NaN(), Util: math.NaN(),
			Pass: maxRounds <= spec.roundsPerGuess && maxRounds > 0,
		})
		rows = append(rows,
			memRow("mem/machine", mem),
			expRow("machines", mach, spec.machExp),
			expRow("total work", work, spec.workExp))

		for _, ph := range trace.AllPhases() {
			s := phases[ph]
			if s == nil {
				continue
			}
			budget := spec.phaseRounds[ph]
			rows = append(rows, BudgetRow{
				Algo: spec.algo, Quantity: fmt.Sprintf("rounds[%s]/guess", ph),
				Paper:  fmt.Sprint(budget),
				Fitted: float64(s.maxRounds), Limit: float64(budget),
				Constant: math.NaN(), Util: math.NaN(),
				Pass: s.maxRounds <= budget,
			})
			rows = append(rows,
				memRow(fmt.Sprintf("mem[%s]", ph), s.mem),
				expRow(fmt.Sprintf("machines[%s]", ph), s.mach, spec.machExp))
		}
	}
	return rows, nil
}

// BudgetTable renders budget rows in Table 1 shape.
func BudgetTable(rows []BudgetRow) *stats.Table {
	tb := stats.NewTable("algo", "quantity", "paper", "measured", "limit", "constant", "verdict")
	for _, r := range rows {
		var measured, limit, constant string
		switch {
		case math.IsNaN(r.Constant): // round-count row
			measured = fmt.Sprintf("%.0f", r.Fitted)
			limit = fmt.Sprintf("%.0f", r.Limit)
			constant = "-"
		case !math.IsNaN(r.Util): // memory row: pass criterion is cap utilization
			measured = fmt.Sprintf("n^%.2f util=%.3f", r.Fitted, r.Util)
			limit = "util<=1"
			constant = fmt.Sprintf("%.3g", r.Constant)
		default: // exponent row
			measured = fmt.Sprintf("n^%.2f", r.Fitted)
			limit = fmt.Sprintf("n^%.2f", r.Limit)
			constant = fmt.Sprintf("%.3g", r.Constant)
		}
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		tb.Add(r.Algo, r.Quantity, r.Paper, measured, limit, constant, verdict)
	}
	return tb
}
