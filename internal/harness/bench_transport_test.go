package harness

import (
	"os"
	"testing"

	"mpcdist/internal/dist"
)

// TestMain lets the test binary serve as its own worker processes for the
// tcp bench test below (see dist.MaybeWorkerMain).
func TestMain(m *testing.M) {
	dist.MaybeWorkerMain()
	os.Exit(m.Run())
}

// TestBenchTransportParity runs a reduced bench suite over both shuffle
// transports and requires CompareBench to find zero deterministic-counter
// drift between them — the bench-level form of the transport parity
// invariant. WireBytes must be populated on the tcp side only.
func TestBenchTransportParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	local, err := RunBench(BenchConfig{Sizes: []int{96}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := RunBench(BenchConfig{Sizes: []int{96}, Seed: 3, Transport: "tcp", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	diffs, _ := CompareBench(local, tcp, 0)
	for _, d := range diffs {
		t.Errorf("local vs tcp drift: %s", d)
	}
	for i, r := range local.Results {
		if r.WireBytes != 0 {
			t.Errorf("%s: local run reports %d wire bytes", r.Name, r.WireBytes)
		}
		if tcp.Results[i].WireBytes == 0 {
			t.Errorf("%s: tcp run reports zero wire bytes", tcp.Results[i].Name)
		}
	}
}
