package harness

import (
	"os"
	"testing"

	"mpcdist/internal/dist"
)

// TestMain lets the test binary serve as its own worker processes for the
// tcp bench test below (see dist.MaybeWorkerMain).
func TestMain(m *testing.M) {
	dist.MaybeWorkerMain()
	os.Exit(m.Run())
}

// TestBenchTransportParity runs a reduced bench suite over both shuffle
// transports — the tcp side with telemetry shipping on — and requires
// CompareBench to find zero deterministic-counter drift between them: the
// bench-level form of the transport parity invariant, plus the telemetry
// plane's zero-interference invariant in the same comparison. Both sides
// must report wire traffic (local counts the logical codec encoding, tcp
// the real wire, so tcp is strictly larger).
func TestBenchTransportParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	local, err := RunBench(BenchConfig{Sizes: []int{96}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := RunBench(BenchConfig{Sizes: []int{96}, Seed: 3, Transport: "tcp", Workers: 2, Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	diffs, _ := CompareBench(local, tcp, 0)
	for _, d := range diffs {
		t.Errorf("local vs tcp+telemetry drift: %s", d)
	}
	if !tcp.Telemetry {
		t.Error("tcp bench file does not record telemetry mode")
	}
	for i, r := range local.Results {
		if r.WireBytes == 0 {
			t.Errorf("%s: local run reports zero wire bytes", r.Name)
		}
		if tcp.Results[i].WireBytes <= r.WireBytes {
			t.Errorf("%s: tcp wire bytes %d not above local logical bytes %d",
				r.Name, tcp.Results[i].WireBytes, r.WireBytes)
		}
	}
}
