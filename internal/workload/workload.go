// Package workload generates synthetic inputs for the benchmark harness:
// random and planted-distance permutations for Ulam distance, and random,
// planted-edit, DNA-like, and adversarial strings for edit distance.
//
// Planted instances carry a certified upper bound on the true distance so
// approximation factors can be bounded without running the quadratic exact
// oracle at large n.
package workload

import (
	"math/rand"
)

// Permutation returns a uniformly random permutation of [0, n).
func Permutation(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

// PlantedUlam returns two sequences of length n with distinct characters
// whose Ulam distance is at most budget: s is a random permutation of
// [0, n) and sbar is derived from s by substitutions (fresh characters
// >= n, cost 1) and character moves (delete + reinsert, cost 2) until the
// budget is exhausted. It returns s, sbar, and the planted cost (an upper
// bound on ulam(s, sbar), and the exact cost of the planted script).
func PlantedUlam(rng *rand.Rand, n, budget int) (s, sbar []int, planted int) {
	s = rng.Perm(n)
	sbar = append([]int(nil), s...)
	fresh := n
	for planted < budget && len(sbar) > 0 {
		if budget-planted >= 2 && rng.Intn(2) == 0 {
			// Move: delete a character and reinsert it elsewhere. Cost 2.
			i := rng.Intn(len(sbar))
			c := sbar[i]
			sbar = append(sbar[:i], sbar[i+1:]...)
			j := rng.Intn(len(sbar) + 1)
			sbar = append(sbar[:j], append([]int{c}, sbar[j:]...)...)
			planted += 2
		} else {
			// Substitute with a fresh character. Cost 1.
			i := rng.Intn(len(sbar))
			sbar[i] = fresh
			fresh++
			planted++
		}
	}
	return s, sbar, planted
}

// RandomString returns a string of n characters drawn uniformly from an
// alphabet of the given size (starting at 'a').
func RandomString(rng *rand.Rand, n, sigma int) []byte {
	if sigma < 1 {
		sigma = 1
	}
	if sigma > 26 {
		sigma = 26
	}
	s := make([]byte, n)
	for i := range s {
		s[i] = byte('a' + rng.Intn(sigma))
	}
	return s
}

// DNA returns a random string over {A, C, G, T}.
func DNA(rng *rand.Rand, n int) []byte {
	const bases = "ACGT"
	s := make([]byte, n)
	for i := range s {
		s[i] = bases[rng.Intn(4)]
	}
	return s
}

// PlantedEdits applies exactly budget random edit operations (insert,
// delete, substitute over the same alphabet) to a copy of s and returns the
// mutated string. ed(s, result) <= budget always holds.
func PlantedEdits(rng *rand.Rand, s []byte, budget int, sigma int) []byte {
	if sigma < 1 {
		sigma = 1
	}
	out := append([]byte(nil), s...)
	for op := 0; op < budget; op++ {
		switch k := rng.Intn(3); {
		case k == 0 && len(out) > 0: // delete
			i := rng.Intn(len(out))
			out = append(out[:i], out[i+1:]...)
		case k == 1: // insert
			i := rng.Intn(len(out) + 1)
			c := byte('a' + rng.Intn(sigma))
			out = append(out[:i], append([]byte{c}, out[i:]...)...)
		default: // substitute
			if len(out) == 0 {
				out = append(out, byte('a'+rng.Intn(sigma)))
				continue
			}
			i := rng.Intn(len(out))
			out[i] = byte('a' + rng.Intn(sigma))
		}
	}
	return out
}

// PlantedDNA applies budget random mutations to a DNA string.
func PlantedDNA(rng *rand.Rand, s []byte, budget int) []byte {
	const bases = "ACGT"
	out := append([]byte(nil), s...)
	for op := 0; op < budget; op++ {
		switch k := rng.Intn(3); {
		case k == 0 && len(out) > 0:
			i := rng.Intn(len(out))
			out = append(out[:i], out[i+1:]...)
		case k == 1:
			i := rng.Intn(len(out) + 1)
			out = append(out[:i], append([]byte{bases[rng.Intn(4)]}, out[i:]...)...)
		default:
			if len(out) > 0 {
				out[rng.Intn(len(out))] = bases[rng.Intn(4)]
			}
		}
	}
	return out
}

// Periodic returns the adversarial string (p0 p1 ... p_{period-1})^* of
// length n; periodic inputs maximize match-point density, stressing the
// Ulam and candidate machinery. sigma caps the number of distinct
// characters used.
func Periodic(n, period, sigma int) []byte {
	if period < 1 {
		period = 1
	}
	if sigma < 1 {
		sigma = 1
	}
	s := make([]byte, n)
	for i := range s {
		s[i] = byte('a' + (i%period)%sigma)
	}
	return s
}

// Shift returns s rotated left by k — a classic hard case where the edit
// distance (2k for k << n) is far below the Hamming distance.
func Shift(s []byte, k int) []byte {
	if len(s) == 0 {
		return nil
	}
	k = ((k % len(s)) + len(s)) % len(s)
	out := make([]byte, 0, len(s))
	out = append(out, s[k:]...)
	out = append(out, s[:k]...)
	return out
}

// ShiftInts is Shift for integer sequences (permutation workloads).
func ShiftInts(s []int, k int) []int {
	if len(s) == 0 {
		return nil
	}
	k = ((k % len(s)) + len(s)) % len(s)
	out := make([]int, 0, len(s))
	out = append(out, s[k:]...)
	out = append(out, s[:k]...)
	return out
}

// BlockMove cuts a random block of length blockLen out of s and reinserts
// it elsewhere — edit distance at most 2·blockLen but Hamming distance up
// to n. Block moves are the classic adversarial case for alignment
// heuristics that assume near-diagonal structure.
func BlockMove(rng *rand.Rand, s []byte, blockLen int) []byte {
	if len(s) == 0 || blockLen <= 0 {
		return append([]byte(nil), s...)
	}
	if blockLen > len(s) {
		blockLen = len(s)
	}
	from := rng.Intn(len(s) - blockLen + 1)
	block := append([]byte(nil), s[from:from+blockLen]...)
	rest := append(append([]byte(nil), s[:from]...), s[from+blockLen:]...)
	to := rng.Intn(len(rest) + 1)
	out := append(append(append([]byte(nil), rest[:to]...), block...), rest[to:]...)
	return out
}

// BlockMoveInts is BlockMove for integer sequences (permutations).
func BlockMoveInts(rng *rand.Rand, s []int, blockLen int) []int {
	if len(s) == 0 || blockLen <= 0 {
		return append([]int(nil), s...)
	}
	if blockLen > len(s) {
		blockLen = len(s)
	}
	from := rng.Intn(len(s) - blockLen + 1)
	block := append([]int(nil), s[from:from+blockLen]...)
	rest := append(append([]int(nil), s[:from]...), s[from+blockLen:]...)
	to := rng.Intn(len(rest) + 1)
	return append(append(append([]int(nil), rest[:to]...), block...), rest[to:]...)
}

// Mirror returns s reversed — maximal distance for most inputs and a
// stress case for the candidate machinery (no near-diagonal matches).
func Mirror(s []byte) []byte {
	out := make([]byte, len(s))
	for i, c := range s {
		out[len(s)-1-i] = c
	}
	return out
}

// Zipf returns a string whose characters follow a Zipf distribution over
// an alphabet of the given size — skewed alphabets create dense match
// structure, the worst case for match-point DPs.
func Zipf(rng *rand.Rand, n, sigma int) []byte {
	if sigma < 1 {
		sigma = 1
	}
	if sigma > 26 {
		sigma = 26
	}
	z := rand.NewZipf(rng, 1.5, 1, uint64(sigma-1))
	s := make([]byte, n)
	for i := range s {
		s[i] = byte('a' + z.Uint64())
	}
	return s
}
