package workload

import (
	"math/rand"
	"testing"

	"mpcdist/internal/editdist"
	"mpcdist/internal/ulam"
)

func TestPlantedUlamBudgetRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(60)
		budget := rng.Intn(n)
		s, sbar, planted := PlantedUlam(rng, n, budget)
		if planted > budget {
			t.Fatalf("planted %d > budget %d", planted, budget)
		}
		if err := ulam.CheckDistinct(s); err != nil {
			t.Fatalf("s not distinct: %v", err)
		}
		if err := ulam.CheckDistinct(sbar); err != nil {
			t.Fatalf("sbar not distinct: %v", err)
		}
		if len(sbar) != n {
			t.Fatalf("|sbar| = %d, want %d", len(sbar), n)
		}
		if d := ulam.Exact(s, sbar, nil); d > planted {
			t.Fatalf("true distance %d exceeds planted cost %d", d, planted)
		}
	}
}

func TestPlantedEditsBudgetRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(80)
		s := RandomString(rng, n, 4)
		budget := rng.Intn(20)
		m := PlantedEdits(rng, s, budget, 4)
		if d := editdist.Distance(s, m, nil); d > budget {
			t.Fatalf("ed = %d > budget %d", d, budget)
		}
	}
}

func TestPlantedDNA(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := DNA(rng, 100)
	m := PlantedDNA(rng, s, 7)
	if d := editdist.Distance(s, m, nil); d > 7 {
		t.Fatalf("ed = %d > 7", d)
	}
	for _, c := range m {
		switch c {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("non-DNA character %q", c)
		}
	}
}

func TestRandomStringAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	s := RandomString(rng, 500, 3)
	for _, c := range s {
		if c < 'a' || c > 'c' {
			t.Fatalf("character %q outside sigma=3", c)
		}
	}
	// sigma clamping.
	s = RandomString(rng, 10, 0)
	for _, c := range s {
		if c != 'a' {
			t.Fatalf("sigma=0 should clamp to 1, got %q", c)
		}
	}
}

func TestPeriodic(t *testing.T) {
	s := Periodic(10, 3, 26)
	want := "abcabcabca"
	if string(s) != want {
		t.Errorf("Periodic = %q, want %q", s, want)
	}
	if got := Periodic(4, 0, 0); string(got) != "aaaa" {
		t.Errorf("degenerate Periodic = %q", got)
	}
}

func TestShift(t *testing.T) {
	s := []byte("abcdef")
	if got := string(Shift(s, 2)); got != "cdefab" {
		t.Errorf("Shift(2) = %q", got)
	}
	if got := string(Shift(s, -1)); got != "fabcde" {
		t.Errorf("Shift(-1) = %q", got)
	}
	if got := string(Shift(s, 6)); got != "abcdef" {
		t.Errorf("Shift(6) = %q", got)
	}
	if Shift(nil, 3) != nil {
		t.Error("Shift(nil) != nil")
	}
	// Shift by k has edit distance at most 2k.
	rng := rand.New(rand.NewSource(45))
	str := RandomString(rng, 60, 8)
	for _, k := range []int{1, 3, 10} {
		if d := editdist.Distance(str, Shift(str, k), nil); d > 2*k {
			t.Errorf("shift %d has ed %d > %d", k, d, 2*k)
		}
	}
	p := []int{0, 1, 2, 3}
	if got := ShiftInts(p, 1); got[0] != 1 || got[3] != 0 {
		t.Errorf("ShiftInts = %v", got)
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	p := Permutation(rng, 50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBlockMoveDistanceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		s := RandomString(rng, 100+rng.Intn(100), 8)
		bl := 1 + rng.Intn(30)
		m := BlockMove(rng, s, bl)
		if len(m) != len(s) {
			t.Fatalf("length changed: %d -> %d", len(s), len(m))
		}
		if d := editdist.Distance(s, m, nil); d > 2*bl {
			t.Fatalf("block move of %d has ed %d > %d", bl, d, 2*bl)
		}
	}
	// Degenerate cases.
	if got := BlockMove(rng, nil, 5); len(got) != 0 {
		t.Error("BlockMove(nil)")
	}
	s := []byte("abc")
	if got := BlockMove(rng, s, 0); string(got) != "abc" {
		t.Error("BlockMove len 0")
	}
}

func TestBlockMoveIntsKeepsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	p := rng.Perm(60)
	m := BlockMoveInts(rng, p, 10)
	if err := ulam.CheckDistinct(m); err != nil {
		t.Fatal(err)
	}
	if d := ulam.Exact(p, m, nil); d > 20 {
		t.Errorf("block move ulam distance %d > 20", d)
	}
}

func TestMirror(t *testing.T) {
	if got := string(Mirror([]byte("abc"))); got != "cba" {
		t.Errorf("Mirror = %q", got)
	}
	if got := Mirror(nil); len(got) != 0 {
		t.Error("Mirror(nil)")
	}
}

func TestZipfAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	s := Zipf(rng, 2000, 6)
	counts := map[byte]int{}
	for _, c := range s {
		if c < 'a' || c >= 'a'+6 {
			t.Fatalf("character %q outside alphabet", c)
		}
		counts[c]++
	}
	// Zipf: 'a' must dominate.
	if counts['a'] < counts['b'] {
		t.Errorf("Zipf not skewed: a=%d b=%d", counts['a'], counts['b'])
	}
}
