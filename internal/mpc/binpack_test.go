package mpc

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBinPackEmpty(t *testing.T) {
	if bins := BinPack(nil, 10); bins != nil {
		t.Fatalf("BinPack(nil) = %v, want nil", bins)
	}
	if bins := BinPack([]int{}, 10); bins != nil {
		t.Fatalf("BinPack(empty) = %v, want nil", bins)
	}
}

func TestBinPackSingleOverweightItem(t *testing.T) {
	bins := BinPack([]int{100}, 10)
	if !reflect.DeepEqual(bins, [][]int{{0}}) {
		t.Fatalf("overweight item got bins %v, want [[0]]", bins)
	}
	// Overweight items surrounded by normal ones still get their own bin.
	bins = BinPack([]int{1, 100, 1}, 10)
	want := [][]int{{0}, {1}, {2}}
	if !reflect.DeepEqual(bins, want) {
		t.Fatalf("BinPack([1 100 1], 10) = %v, want %v", bins, want)
	}
}

func TestBinPackCapacityExact(t *testing.T) {
	// Items tile the capacity exactly: no bin may be split early.
	bins := BinPack([]int{5, 5, 5, 5}, 10)
	want := [][]int{{0, 1}, {2, 3}}
	if !reflect.DeepEqual(bins, want) {
		t.Fatalf("BinPack([5 5 5 5], 10) = %v, want %v", bins, want)
	}
}

// TestBinPackProperties checks the packing invariants over random inputs:
// bins partition the indices in order, and no bin with more than one item
// exceeds the capacity (a single item may, by the overweight rule).
func TestBinPackProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		capacity := 1 + rng.Intn(30)
		weights := make([]int, n)
		for i := range weights {
			weights[i] = rng.Intn(20)
		}
		bins := BinPack(weights, capacity)
		next := 0
		for b, bin := range bins {
			if len(bin) == 0 {
				t.Fatalf("trial %d: bin %d is empty", trial, b)
			}
			load := 0
			for _, i := range bin {
				if i != next {
					t.Fatalf("trial %d: bin %d holds index %d, want %d (order-preserving partition)", trial, b, i, next)
				}
				next++
				load += weights[i]
			}
			if len(bin) > 1 && load > capacity {
				t.Fatalf("trial %d: bin %d load %d exceeds capacity %d", trial, b, load, capacity)
			}
		}
		if next != n {
			t.Fatalf("trial %d: bins cover %d of %d items", trial, next, n)
		}
	}
}

// TestAssignMachinesProperties checks the machine->party partition built
// on BinPack: every id lands on exactly one party, in order, and the
// number of parties never exceeds the request.
func TestAssignMachinesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		parties := 1 + rng.Intn(5)
		ids := make([]int, n)
		weights := make([]int, n)
		for i := range ids {
			ids[i] = 10 + i
			weights[i] = 1 + rng.Intn(50)
		}
		assign := AssignMachines(ids, weights, parties)
		if len(assign) != parties {
			t.Fatalf("trial %d: %d assignment slots for %d parties", trial, len(assign), parties)
		}
		var flat []int
		for _, part := range assign {
			flat = append(flat, part...)
		}
		if !reflect.DeepEqual(flat, ids) && !(len(flat) == 0 && n == 0) {
			t.Fatalf("trial %d: concatenated assignment %v != ids %v", trial, flat, ids)
		}
	}
}

// TestAssignMachinesDeterministic: the partition is a pure function — the
// property the SPMD transport relies on to skip coordinating it.
func TestAssignMachinesDeterministic(t *testing.T) {
	ids := []int{3, 5, 8, 13, 21, 34}
	weights := []int{7, 1, 9, 2, 2, 5}
	want := AssignMachines(ids, weights, 3)
	for i := 0; i < 10; i++ {
		if got := AssignMachines(ids, weights, 3); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d differs: %v vs %v", i, got, want)
		}
	}
}
