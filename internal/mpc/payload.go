package mpc

// Ints is a []int payload; its footprint is one word per element plus a
// header word.
type Ints []int

// Words implements Payload.
func (p Ints) Words() int { return len(p) + 1 }

// Bytes is a []byte payload; eight characters pack into a word, plus a
// header word.
type Bytes []byte

// Words implements Payload.
func (p Bytes) Words() int { return (len(p)+7)/8 + 1 }

// Int is a single-word payload.
type Int int

// Words implements Payload.
func (p Int) Words() int { return 1 }

// BinPack groups item weights into bins of the given capacity using
// order-preserving first fit: items are assigned to consecutive bins, a new
// bin opening whenever the current one would overflow. Items heavier than
// the capacity get a bin of their own. It returns, for each bin, the
// indices of its items.
//
// The MPC drivers use it to pack work units (e.g. candidate-substring
// starting points of one block, Section 5.1.1) onto machines without
// breaching the memory cap.
func BinPack(weights []int, capacity int) [][]int {
	if len(weights) == 0 {
		return nil
	}
	var bins [][]int
	cur := []int{}
	load := 0
	for i, w := range weights {
		if len(cur) > 0 && capacity > 0 && load+w > capacity {
			bins = append(bins, cur)
			cur = []int{}
			load = 0
		}
		cur = append(cur, i)
		load += w
	}
	bins = append(bins, cur)
	return bins
}
