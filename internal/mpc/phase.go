package mpc

import (
	"fmt"
	"strings"
	"time"

	"mpcdist/internal/trace"
)

// PhaseStats aggregates the Table 1 quantities of every round that carries
// one phase label. The fields mirror Report's aggregation rules restricted
// to the phase's rounds: sums for rounds/ops/comm/elapsed, maxima for
// machines/memory/straggler, and the per-round max-machine-ops sum for the
// critical path.
type PhaseStats struct {
	Phase       trace.Phase
	Rounds      int
	MaxMachines int   // max machines used in any round of the phase
	MaxWords    int   // max per-machine memory observed in the phase
	TotalOps    int64 // total computation across the phase's rounds
	CriticalOps int64 // sum over the phase's rounds of max per-machine ops
	CommWords   int64 // communication volume emitted by the phase's rounds
	// Elapsed sums machine-execution wall time; QueueWait sums semaphore
	// waits (host effects, excluded from Elapsed).
	Elapsed   time.Duration
	QueueWait time.Duration
	// MaxStraggler is the worst per-round straggler ratio within the phase.
	MaxStraggler float64
}

// String renders the phase's stats as one summary line.
func (p PhaseStats) String() string {
	return fmt.Sprintf("phase=%-10s rounds=%d machines=%d mem/machine=%d totalOps=%d criticalOps=%d comm=%d elapsed=%s",
		p.Phase, p.Rounds, p.MaxMachines, p.MaxWords, p.TotalOps, p.CriticalOps, p.CommWords,
		p.Elapsed.Round(time.Microsecond))
}

// PhaseProfile is a Report re-aggregated by paper phase: one PhaseStats per
// phase that actually ran, in canonical taxonomy order. Because every round
// carries exactly one phase (the simulator rejects unphased rounds), the
// profile is a partition of the report — Conserves checks that invariant.
type PhaseProfile struct {
	Phases []PhaseStats
}

// Profile groups a report's rounds by phase. Rounds with an unknown phase
// (possible only for hand-built Reports; the simulator never records one)
// are grouped under their literal label and sorted after the taxonomy.
func Profile(r Report) PhaseProfile {
	byPhase := make(map[trace.Phase]*PhaseStats)
	var order []trace.Phase
	for _, rs := range r.Rounds {
		ps := byPhase[rs.Phase]
		if ps == nil {
			ps = &PhaseStats{Phase: rs.Phase}
			byPhase[rs.Phase] = ps
			order = append(order, rs.Phase)
		}
		ps.Rounds++
		if rs.Machines > ps.MaxMachines {
			ps.MaxMachines = rs.Machines
		}
		w := rs.MaxInWords
		if rs.MaxOutWords > w {
			w = rs.MaxOutWords
		}
		if w > ps.MaxWords {
			ps.MaxWords = w
		}
		ps.TotalOps += rs.TotalOps
		ps.CriticalOps += rs.MaxMachineOps
		ps.CommWords += rs.CommWords
		ps.Elapsed += rs.Elapsed
		ps.QueueWait += rs.QueueWait
		if rs.Skew.Straggler > ps.MaxStraggler {
			ps.MaxStraggler = rs.Skew.Straggler
		}
	}
	// Canonical order: taxonomy position, then label for unknown phases.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if a.Index() < b.Index() || (a.Index() == b.Index() && a <= b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	prof := PhaseProfile{Phases: make([]PhaseStats, 0, len(order))}
	for _, ph := range order {
		prof.Phases = append(prof.Phases, *byPhase[ph])
	}
	return prof
}

// Get returns the stats for one phase and whether any of its rounds ran.
func (p PhaseProfile) Get(ph trace.Phase) (PhaseStats, bool) {
	for _, ps := range p.Phases {
		if ps.Phase == ph {
			return ps, true
		}
	}
	return PhaseStats{}, false
}

// String renders the profile as one line per phase.
func (p PhaseProfile) String() string {
	lines := make([]string, len(p.Phases))
	for i, ps := range p.Phases {
		lines[i] = ps.String()
	}
	return strings.Join(lines, "\n")
}

// Conserves verifies that the profile is an exact partition of the report:
// summable quantities (rounds, total ops, critical ops, comm words, elapsed,
// queue wait) sum over phases to the report's totals, and max quantities
// (machines, per-machine memory, straggler ratio) reach the report's maxima.
// It returns a descriptive error naming the first violated quantity.
//
// The invariant holds for any single cluster's Report() because every round
// lands in exactly one phase bucket. It is NOT expected to hold for reports
// merged across parallel clusters (core.AggregateReports takes rounds=max
// and criticalOps=max across guesses, which deliberately breaks additivity);
// conserve per cluster, then aggregate.
func (p PhaseProfile) Conserves(r Report) error {
	var (
		rounds            int
		total, crit, comm int64
		elapsed, wait     time.Duration
		maxMach, maxWords int
		maxStrag          float64
	)
	for _, ps := range p.Phases {
		rounds += ps.Rounds
		total += ps.TotalOps
		crit += ps.CriticalOps
		comm += ps.CommWords
		elapsed += ps.Elapsed
		wait += ps.QueueWait
		if ps.MaxMachines > maxMach {
			maxMach = ps.MaxMachines
		}
		if ps.MaxWords > maxWords {
			maxWords = ps.MaxWords
		}
		if ps.MaxStraggler > maxStrag {
			maxStrag = ps.MaxStraggler
		}
	}
	switch {
	case rounds != r.NumRounds:
		return fmt.Errorf("mpc: phase profile rounds %d != report %d", rounds, r.NumRounds)
	case total != r.TotalOps:
		return fmt.Errorf("mpc: phase profile totalOps %d != report %d", total, r.TotalOps)
	case crit != r.CriticalOps:
		return fmt.Errorf("mpc: phase profile criticalOps %d != report %d", crit, r.CriticalOps)
	case comm != r.CommWords:
		return fmt.Errorf("mpc: phase profile commWords %d != report %d", comm, r.CommWords)
	case elapsed != r.Elapsed:
		return fmt.Errorf("mpc: phase profile elapsed %s != report %s", elapsed, r.Elapsed)
	case wait != r.QueueWait:
		return fmt.Errorf("mpc: phase profile queueWait %s != report %s", wait, r.QueueWait)
	case maxMach != r.MaxMachines:
		return fmt.Errorf("mpc: phase profile maxMachines %d != report %d", maxMach, r.MaxMachines)
	case maxWords != r.MaxWords:
		return fmt.Errorf("mpc: phase profile maxWords %d != report %d", maxWords, r.MaxWords)
	case maxStrag != r.MaxStraggler:
		return fmt.Errorf("mpc: phase profile maxStraggler %g != report %g", maxStrag, r.MaxStraggler)
	}
	return nil
}
