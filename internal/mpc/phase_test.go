package mpc

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"mpcdist/internal/trace"
)

// eventCounter counts every observer callback, to prove that rejected
// rounds never reach the observer.
type eventCounter struct {
	trace.Base
	events atomic.Int64
}

func (e *eventCounter) RoundStart(trace.RoundInfo)   { e.events.Add(1) }
func (e *eventCounter) MachineStart(_, _, _ int)     { e.events.Add(1) }
func (e *eventCounter) MachineEnd(trace.MachineSpan) { e.events.Add(1) }
func (e *eventCounter) Message(_, _, _, _ int)       { e.events.Add(1) }
func (e *eventCounter) RoundEnd(trace.RoundSummary)  { e.events.Add(1) }

func TestRunRejectsUnphasedRound(t *testing.T) {
	for _, phase := range []trace.Phase{"", "warmup", "CANDIDATES"} {
		obs := &eventCounter{}
		c := NewCluster(Config{Observer: obs})
		in := map[int][]Payload{0: {Int(1)}}
		_, err := c.Run("r", phase, in, func(x *Ctx, in []Payload) { x.Ops(1) })
		if err == nil {
			t.Fatalf("phase %q: round accepted", phase)
		}
		if !strings.Contains(err.Error(), "invalid phase") {
			t.Errorf("phase %q: error %q does not mention the phase", phase, err)
		}
		if got := obs.events.Load(); got != 0 {
			t.Errorf("phase %q: %d events reached the observer, want 0", phase, got)
		}
		if rep := c.Report(); rep.NumRounds != 0 {
			t.Errorf("phase %q: rejected round entered the history (%d rounds)", phase, rep.NumRounds)
		}
	}
}

func TestRunRecordsPhase(t *testing.T) {
	c := NewCluster(Config{})
	in := map[int][]Payload{0: {Int(1)}}
	var err error
	for _, ph := range trace.AllPhases() {
		in, err = c.Run("r/"+string(ph), ph, in, func(x *Ctx, in []Payload) {
			x.Ops(1)
			x.Send(x.Machine, Int(1))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	rep := c.Report()
	for i, ph := range trace.AllPhases() {
		if rep.Rounds[i].Phase != ph {
			t.Errorf("round %d phase = %q, want %q", i, rep.Rounds[i].Phase, ph)
		}
	}
}

// randomReport drives a cluster through a random workload and returns its
// report: random phases, machine counts, op loads, and fan-outs.
func randomReport(t *testing.T, rng *rand.Rand) Report {
	t.Helper()
	c := NewCluster(Config{Seed: rng.Int63()})
	phases := trace.AllPhases()
	rounds := 1 + rng.Intn(7)
	in := make(map[int][]Payload)
	for m := 0; m < 1+rng.Intn(5); m++ {
		in[m] = []Payload{Ints{1, 2, 3}}
	}
	for r := 0; r < rounds; r++ {
		ph := phases[rng.Intn(len(phases))]
		machines := 1 + rng.Intn(6)
		seed := rng.Int63()
		out, err := c.Run("rand", ph, in, func(x *Ctx, in []Payload) {
			lr := rand.New(rand.NewSource(seed + int64(x.Machine)))
			x.Ops(int64(lr.Intn(1000)))
			for s := 0; s < lr.Intn(4); s++ {
				x.Send(lr.Intn(machines), Ints{int(lr.Int31n(100)), 7})
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			out = map[int][]Payload{0: {Int(0)}}
		}
		in = out
	}
	return c.Report()
}

// TestProfileConservesRandomized is the conservation property test: on
// randomized workloads the per-phase totals partition the report exactly —
// sums of rounds, ops, comm words, elapsed time match, and maxima of
// machines, memory, straggler match.
func TestProfileConservesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 50; trial++ {
		rep := randomReport(t, rng)
		prof := Profile(rep)
		if err := prof.Conserves(rep); err != nil {
			t.Fatalf("trial %d: %v\nprofile:\n%s", trial, err, prof)
		}
		// Spot-check the headline totals directly, independent of Conserves.
		var ops, comm int64
		var rounds, mach int
		for _, ps := range prof.Phases {
			ops += ps.TotalOps
			comm += ps.CommWords
			rounds += ps.Rounds
			if ps.MaxMachines > mach {
				mach = ps.MaxMachines
			}
		}
		if ops != rep.TotalOps || comm != rep.CommWords || rounds != rep.NumRounds || mach != rep.MaxMachines {
			t.Fatalf("trial %d: totals ops=%d/%d comm=%d/%d rounds=%d/%d machines=%d/%d",
				trial, ops, rep.TotalOps, comm, rep.CommWords, rounds, rep.NumRounds, mach, rep.MaxMachines)
		}
	}
}

func TestConservesDetectsDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rep := randomReport(t, rng)
	prof := Profile(rep)
	rep.TotalOps++
	if err := prof.Conserves(rep); err == nil {
		t.Error("tampered TotalOps not detected")
	}
	rep.TotalOps--
	rep.NumRounds++
	if err := prof.Conserves(rep); err == nil {
		t.Error("tampered NumRounds not detected")
	}
}

func TestProfileCanonicalOrder(t *testing.T) {
	rep := Report{Rounds: []RoundStats{
		{Name: "a", Phase: trace.PhaseChain, TotalOps: 1},
		{Name: "b", Phase: trace.PhaseCandidates, TotalOps: 2},
		{Name: "c", Phase: trace.PhaseChain, TotalOps: 4},
	}}
	prof := Profile(rep)
	if len(prof.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(prof.Phases))
	}
	if prof.Phases[0].Phase != trace.PhaseCandidates || prof.Phases[1].Phase != trace.PhaseChain {
		t.Errorf("order = %v, want candidates before chain", prof.Phases)
	}
	if prof.Phases[1].TotalOps != 5 || prof.Phases[1].Rounds != 2 {
		t.Errorf("chain stats = %+v, want ops=5 rounds=2", prof.Phases[1])
	}
	if ps, ok := prof.Get(trace.PhaseCandidates); !ok || ps.TotalOps != 2 {
		t.Errorf("Get(candidates) = %+v, %v", ps, ok)
	}
	if _, ok := prof.Get(trace.PhaseGraph); ok {
		t.Error("Get(graph) found a phase that never ran")
	}
}

func TestReportStringIncludesPhases(t *testing.T) {
	c := NewCluster(Config{})
	in := map[int][]Payload{0: {Int(1)}}
	if _, err := c.Run("r", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) { x.Ops(5) }); err != nil {
		t.Fatal(err)
	}
	s := c.Report().String()
	if !strings.Contains(s, "phase=candidates") {
		t.Errorf("Report.String() lacks phase line:\n%s", s)
	}
}
