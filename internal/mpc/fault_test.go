package mpc

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"mpcdist/internal/fault"
	"mpcdist/internal/trace"
)

// routeRounds runs a deterministic two-round pipeline on c: round one
// scatters each input value to machine value%3, round two echoes what
// arrived back to machine 0. It exercises multi-machine execution and a
// shuffle whose delivery order matters.
func routeRounds(t *testing.T, c *Cluster) map[int][]Payload {
	t.Helper()
	in := map[int][]Payload{
		0: {Ints{1, 2, 3, 4, 5, 6}},
		1: {Ints{7, 8, 9, 10}},
		2: {Ints{11, 12}},
	}
	mid, err := c.Run("scatter", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {
		for _, p := range in {
			for _, v := range p.(Ints) {
				x.Send(v%3, Int(v))
				x.Ops(1)
			}
		}
	})
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	out, err := c.Run("gather", trace.PhaseGraph, mid, func(x *Ctx, in []Payload) {
		for _, p := range in {
			x.Send(0, p)
			x.Ops(1)
		}
	})
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	return out
}

// TestFaultCrashRecoveryBitIdentical replays crashed machines and checks
// the recovered run is bit-identical to the fault-free one: same outputs
// in the same order, same deterministic model counters.
func TestFaultCrashRecoveryBitIdentical(t *testing.T) {
	ref := NewCluster(Config{Seed: 9})
	want := routeRounds(t, ref)

	c := NewCluster(Config{
		Seed:       9,
		Faults:     &fault.Plan{Seed: 3, Crash: 0.4, CrashAfter: 0.3},
		MaxRetries: 30,
	})
	got := routeRounds(t, c)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("recovered outputs differ:\n got: %v\nwant: %v", got, want)
	}
	rep, refRep := c.Report(), ref.Report()
	if rep.Failures == 0 || rep.Retries == 0 {
		t.Fatalf("plan injected nothing (failures=%d retries=%d); the test is vacuous", rep.Failures, rep.Retries)
	}
	if rep.TotalOps != refRep.TotalOps || rep.CommWords != refRep.CommWords ||
		rep.MaxWords != refRep.MaxWords || rep.CriticalOps != refRep.CriticalOps {
		t.Errorf("deterministic counters drifted under faults:\n got: %+v\nwant: %+v", rep, refRep)
	}
}

// TestFaultDropDupExactlyOnce checks the shuffle's at-least-once
// retransmission plus receiver-side dedup delivers every message exactly
// once, in fault-free order.
func TestFaultDropDupExactlyOnce(t *testing.T) {
	ref := NewCluster(Config{Seed: 9})
	want := routeRounds(t, ref)

	c := NewCluster(Config{
		Seed:       9,
		Faults:     &fault.Plan{Seed: 8, Drop: 0.4, Dup: 0.4},
		MaxRetries: 30,
	})
	got := routeRounds(t, c)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("drop/dup outputs differ:\n got: %v\nwant: %v", got, want)
	}
	rep, refRep := c.Report(), ref.Report()
	if rep.Failures == 0 {
		t.Fatal("plan injected nothing; the test is vacuous")
	}
	if rep.CommWords != refRep.CommWords {
		t.Errorf("CommWords %d != fault-free %d: retransmissions or duplicates leaked into the model counters",
			rep.CommWords, refRep.CommWords)
	}
}

// TestFaultCrashExhaustionTypedError checks MaxRetries exhaustion surfaces
// a typed *fault.CrashError naming the round and machine, deterministically
// picking the lowest crashed machine id.
func TestFaultCrashExhaustionTypedError(t *testing.T) {
	c := NewCluster(Config{
		Seed:       9,
		Faults:     &fault.Plan{Seed: 1, Crash: 1}, // every attempt crashes
		MaxRetries: 2,
	})
	in := map[int][]Payload{3: {Int(1)}, 5: {Int(2)}}
	_, err := c.Run("doomed", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {})
	var ce *fault.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want *fault.CrashError, got %v", err)
	}
	if ce.Round != 0 || ce.Name != "doomed" || ce.Machine != 3 || ce.Attempts != 3 {
		t.Errorf("CrashError = %+v, want round 0 %q machine 3 attempts 3", ce, "doomed")
	}
	// The failed round is not appended to history, matching cancellation.
	if rep := c.Report(); rep.NumRounds != 0 {
		t.Errorf("failed round entered history: %+v", rep)
	}
}

// TestFaultDropExhaustionTypedError checks an undeliverable message
// surfaces a typed *fault.DropError naming the endpoints.
func TestFaultDropExhaustionTypedError(t *testing.T) {
	c := NewCluster(Config{
		Seed:       9,
		Faults:     &fault.Plan{Seed: 1, Drop: 1}, // every transmission lost
		MaxRetries: 2,
	})
	in := map[int][]Payload{0: {Int(7)}}
	_, err := c.Run("lossy", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {
		x.Send(1, Int(7))
	})
	var de *fault.DropError
	if !errors.As(err, &de) {
		t.Fatalf("want *fault.DropError, got %v", err)
	}
	if de.Round != 0 || de.From != 0 || de.To != 1 || de.Seq != 0 || de.Attempts != 3 {
		t.Errorf("DropError = %+v", de)
	}
}

// TestFaultCancellationMidReplayNoLeaks cancels a run whose machines are
// stuck in a straggle-crash replay loop and checks (a) Run returns within
// one retry of the cancellation rather than draining the retry budget, and
// (b) no machine goroutines are left behind.
func TestFaultCancellationMidReplayNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	c := NewCluster(Config{
		Seed: 9,
		Ctx:  ctx,
		Faults: &fault.Plan{
			Seed: 2, CrashAfter: 1, // every attempt's output is lost -> replay
			Straggle: 1, Delay: 20 * time.Millisecond, // each replay sleeps
		},
		MaxRetries: 1 << 20, // budget far exceeds what cancellation allows
	})
	in := map[int][]Payload{0: {Int(1)}, 1: {Int(2)}}
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Run("stuck", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Cancellation must cut the current attempt short: well under even a
	// handful of the budgeted 20ms replays.
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled run took %v to return", d)
	}
	// Machine goroutines exit with Run (wg.Wait precedes the ctx check), so
	// the count should settle back to the baseline promptly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFaultEventsReachObservers checks fault and retry events flow to
// observers and that the round summary's counters match the report.
func TestFaultEventsReachObservers(t *testing.T) {
	col := &trace.Collector{}
	c := NewCluster(Config{
		Seed:       9,
		Observer:   col,
		Faults:     &fault.Plan{Seed: 3, Crash: 0.4, Drop: 0.3, Dup: 0.3},
		MaxRetries: 30,
	})
	routeRounds(t, c)
	rep := c.Report()
	if rep.Failures == 0 {
		t.Fatal("plan injected nothing; the test is vacuous")
	}
	if len(col.Faults) != rep.Failures {
		t.Errorf("collector saw %d fault events, report counted %d", len(col.Faults), rep.Failures)
	}
	if len(col.Retries) != rep.Retries {
		t.Errorf("collector saw %d retry events, report counted %d", len(col.Retries), rep.Retries)
	}
	var sumF, sumR int
	for _, s := range col.Summaries {
		sumF += s.Failures
		sumR += s.Retries
	}
	if sumF != rep.Failures || sumR != rep.Retries {
		t.Errorf("round summaries carry failures=%d retries=%d, report %d/%d", sumF, sumR, rep.Failures, rep.Retries)
	}
	for _, e := range col.Faults {
		switch e.Kind {
		case trace.FaultCrashBefore, trace.FaultCrashAfter, trace.FaultMsgDrop, trace.FaultMsgDup, trace.FaultStraggle:
		default:
			t.Errorf("unknown fault kind %q", e.Kind)
		}
	}
}

// TestFaultInactivePlanZeroDrift checks a nil and an all-zero plan both
// take the fault-free fast path: identical outputs and reports, zero
// fault counters.
func TestFaultInactivePlanZeroDrift(t *testing.T) {
	ref := NewCluster(Config{Seed: 9})
	want := routeRounds(t, ref)

	c := NewCluster(Config{Seed: 9, Faults: &fault.Plan{Seed: 77}}) // rates all zero
	got := routeRounds(t, c)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("inactive plan changed outputs:\n got: %v\nwant: %v", got, want)
	}
	rep := c.Report()
	if rep.Failures != 0 || rep.Retries != 0 {
		t.Errorf("inactive plan reported failures=%d retries=%d", rep.Failures, rep.Retries)
	}
}
