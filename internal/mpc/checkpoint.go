package mpc

import "mpcdist/internal/trace"

// The checkpoint seam. The MPC model keeps all inter-round state in the
// shuffled record sets — a machine's view of round r+1 is exactly the
// payloads round r addressed to it, and every random stream is derived
// arithmetically from (seed, round, machine) with no evolving generator
// state. Round boundaries are therefore complete recovery points: a
// snapshot of the merged post-shuffle outputs plus the round's measured
// stats is everything a crashed job needs to continue bit-identically.
// internal/checkpoint implements the durable store; this file defines only
// the interface so mpc stays free of any storage dependency.

// RoundSnapshot is the durable record of one completed round.
type RoundSnapshot struct {
	// Step is the job-global checkpoint step index. Rounds are numbered
	// per cluster but a job may run several clusters back to back (the
	// edit-distance guess ladder builds one per guess), so the
	// Checkpointer keys snapshots by a monotonic step counter it advances
	// across cluster boundaries. Filled in by the Checkpointer.
	Step int
	// Round is the round index within its cluster.
	Round int
	Name  string
	Phase trace.Phase
	// Stats are the completed round's measured quantities. A resumed run
	// restores them verbatim, so the aggregated report — including the
	// deterministic counters in the result digest — is bit-identical to an
	// uninterrupted run's.
	Stats RoundStats
	// Next is the merged post-shuffle record set the round produced: the
	// next round's inputs, and the only inter-round state in the model.
	Next map[int][]Payload
}

// Checkpointer is Cluster.Run's durability seam. Run calls Resume exactly
// once at the start of every round and Save exactly once after every
// successfully completed live round, always from the driving goroutine.
//
// On a distributed run every party must hold an equivalent Checkpointer
// (the coordinator ships its resume state inside the job spec): resumed
// rounds return before the exchange barrier, so all parties must
// fast-forward the same prefix or the transport's sequence numbers
// diverge.
type Checkpointer interface {
	// Resume reports whether the upcoming round already completed in a
	// previous run. A non-nil snapshot fast-forwards the round: the
	// cluster appends the saved stats and returns the saved outputs
	// without executing machines or touching the transport. nil means run
	// live. Implementations must verify that (round, name, phase) match
	// the stored step and return a typed divergence error otherwise.
	Resume(round int, name string, phase trace.Phase) (*RoundSnapshot, error)
	// Save persists the completed round (implementations set snap.Step and
	// may buffer; see internal/checkpoint's flush cadence). A Save failure
	// fails the round — a job that asked for durability must not silently
	// run past a dead store.
	Save(snap *RoundSnapshot) error
}
