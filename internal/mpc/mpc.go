// Package mpc simulates the massively parallel computation (MPC) model of
// Karloff, Suri, and Vassilvitskii as used by the paper: a fleet of
// machines, each with a hard memory cap of S words, computing in
// synchronous rounds. Within a round a machine sees only its own input;
// between rounds machines exchange messages, and no machine may receive (or
// hold) more than S words.
//
// The simulator enforces the memory cap, counts the model quantities the
// paper's Table 1 is stated in — rounds, machines, per-machine memory,
// total computation, and critical-path ("parallel") computation — and runs
// machines concurrently on the host's cores.
//
// Randomness: machines can draw from a per-machine stream or from a shared
// stream ("a random variable with a common seed between machines",
// Algorithm 6 line 9); both are deterministic given Config.Seed, so
// simulations are reproducible regardless of goroutine scheduling.
//
// Observability: an optional trace.Observer on Config receives round and
// per-machine execution events (spans exclude semaphore queueing), which
// the built-in observers turn into Chrome trace-event timelines and skew
// summaries. With no observer registered the hooks are single nil checks.
package mpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"mpcdist/internal/fault"
	"mpcdist/internal/stats"
	"mpcdist/internal/trace"
	"mpcdist/internal/transport"
)

// Payload is any unit of data shipped between machines. Words reports its
// memory footprint in machine words; the simulator uses it to enforce the
// per-machine cap.
type Payload interface {
	Words() int
}

// Message is a payload addressed to a machine for the next round.
type Message struct {
	To   int
	Data Payload
}

// Config parameterizes a Cluster.
type Config struct {
	// MachineWords is the per-machine memory cap S in words. Zero means
	// unlimited (useful in unit tests of the algorithms themselves).
	MachineWords int
	// MaxMachines optionally caps the number of distinct machines usable in
	// a round; zero means unlimited.
	MaxMachines int
	// Parallelism bounds the number of simulated machines executing
	// concurrently; zero means GOMAXPROCS.
	Parallelism int
	// Seed feeds both the shared and the per-machine random streams.
	Seed int64
	// Ctx, when non-nil, cancels the simulation: Run checks it before the
	// round starts, before each machine executes, and before each replay
	// attempt, so a timed-out or abandoned request stops within one
	// machine's work (or one retry) rather than running the remaining
	// rounds to completion.
	Ctx context.Context
	// Observer, when non-nil, receives round and machine execution events
	// (see internal/trace). Observers must be safe for concurrent use;
	// a nil Observer costs one nil check per event site.
	Observer trace.Observer
	// Faults, when non-nil and active, injects the plan's deterministic
	// fault schedule into every round: machine crashes (recovered by exact
	// replay — machine execution is a pure function of (seed, round,
	// machine, inputs)), message loss/duplication in the shuffle
	// (recovered by retransmission + receiver-side dedup on per-(round,
	// sender, sequence) message IDs), and straggler delays. A nil or
	// inactive plan takes the fault-free fast path with zero behavioral
	// drift.
	Faults *fault.Plan
	// MaxRetries bounds recovery per machine-round and per message: after
	// the initial attempt, up to MaxRetries replays/retransmissions are
	// made before Run fails with *fault.CrashError or *fault.DropError.
	// Zero means DefaultMaxRetries.
	MaxRetries int
	// Algo names the pipeline this cluster executes ("ulam-mpc",
	// "edit-mpc", ...). It is advisory observability metadata: it becomes
	// the "algo" goroutine profiler label on every simulated machine (see
	// internal/trace.PhaseLabels) and never feeds a counter. Empty is
	// fine; profiles then show algo=unlabeled.
	Algo string
	// Transport, when non-nil, is the shuffle transport the cluster runs
	// over (see internal/transport): machine ids are partitioned across
	// the transport's parties by input weight, each party executes its
	// share, and execution records are all-gathered at a per-round
	// barrier. Nil means the in-process transport (transport.Local) —
	// the single-party fast path, bit-identical to the seed simulator.
	// Every party of a distributed run must construct its cluster with an
	// otherwise-identical Config (same Seed, MachineWords, Faults, ...):
	// the SPMD contract.
	Transport transport.Transport
	// Checkpointer, when non-nil, is consulted at the start of every round
	// (fast-forwarding rounds that completed in a previous run) and handed
	// a snapshot after every completed round (see RoundSnapshot). Nil
	// means no durability — the seed behavior, bit-identical by the
	// determinism invariant either way.
	Checkpointer Checkpointer
}

// DefaultMaxRetries is the recovery budget used when Config.MaxRetries is
// zero.
const DefaultMaxRetries = 3

// RoundStats records the measured model quantities of one round.
type RoundStats struct {
	Name          string
	Phase         trace.Phase // the paper phase the round implements
	Machines      int         // distinct machines that received input
	MaxInWords    int         // max words resident on a machine (input)
	MaxOutWords   int         // max words emitted by a machine
	TotalOps      int64       // sum of ops over machines
	MaxMachineOps int64       // max ops on one machine ("parallel time")
	CommWords     int64       // words shipped between machines after the round
	// Elapsed is the wall time of machine execution only: first machine
	// start to last machine end, with each machine's clock starting after
	// it acquires an execution slot. Semaphore queueing is excluded and
	// accounted separately in QueueWait.
	Elapsed time.Duration
	// QueueWait sums the time machines spent waiting for an execution
	// slot (the host's parallelism limit, not a model quantity).
	QueueWait time.Duration
	// Skew summarizes the per-machine execution-time distribution:
	// max/mean/p99 and the straggler ratio max/mean.
	Skew trace.SkewStats
	// Failures counts faults injected during the round (crashes, message
	// drops/duplications, straggler delays); Retries counts the recovery
	// actions taken (machine replays, message retransmissions). Both are 0
	// without an active fault plan. Faults never perturb the deterministic
	// counters above: only the successful attempt's ops and logical shuffle
	// volume are counted, so a recovered run's stats are bit-identical to
	// the fault-free run's.
	Failures int
	Retries  int
}

// Report aggregates a cluster's history in the shape of a Table 1 row.
type Report struct {
	Rounds      []RoundStats
	NumRounds   int
	MaxMachines int   // max machines used in any round
	MaxWords    int   // max per-machine memory observed in any round
	TotalOps    int64 // total computation across all rounds and machines
	CriticalOps int64 // sum over rounds of the max per-machine ops
	CommWords   int64 // total communication volume (words) across rounds
	// Elapsed sums the rounds' machine-execution wall time; QueueWait sums
	// their semaphore waits (host effects, excluded from Elapsed).
	Elapsed   time.Duration
	QueueWait time.Duration
	// MaxStraggler is the worst per-round straggler ratio (max/mean
	// machine time); 0 when no round recorded machine times.
	MaxStraggler float64
	// Failures and Retries sum the rounds' fault and recovery counters;
	// both 0 on a fault-free cluster.
	Failures int
	Retries  int
	// Workers attributes the cluster's work to the parties of a
	// distributed run, by the deterministic machine assignment; empty on a
	// single-party run. Advisory rows: they are identical on every party
	// (the assignment is), but they are not part of the deterministic
	// result digest.
	Workers []WorkerStats
}

// WorkerStats is one party's share of a distributed run, attributed by
// the deterministic AssignMachines partition — machines reassigned after
// a mid-round loss still count against the party originally assigned
// them, keeping the rows identical on every party regardless of which
// process actually re-executed the work.
type WorkerStats struct {
	Party         int
	MachineRounds int   // machine-round executions assigned to this party
	Ops           int64 // elementary operations across those executions
	CommWords     int64 // words those machines emitted into the shuffle
	// QueueWait sums the machines' slot waits (host-level, advisory).
	QueueWait time.Duration
	Failures  int
	Retries   int
	// WireBytes is the party's connection traffic as seen by the
	// coordinator; filled by internal/dist after a session run, 0
	// otherwise. Advisory.
	WireBytes int64
}

// String renders the report as a summary line followed by one line per
// phase that ran (the Table 1 quantities resolved to paper phases).
func (r Report) String() string {
	s := fmt.Sprintf("rounds=%d machines=%d mem/machine=%d totalOps=%d criticalOps=%d comm=%d elapsed=%s",
		r.NumRounds, r.MaxMachines, r.MaxWords, r.TotalOps, r.CriticalOps, r.CommWords,
		r.Elapsed.Round(time.Microsecond))
	if r.Failures > 0 || r.Retries > 0 {
		s += fmt.Sprintf(" failures=%d retries=%d", r.Failures, r.Retries)
	}
	for _, ps := range Profile(r).Phases {
		s += "\n  " + ps.String()
	}
	for _, w := range r.Workers {
		s += fmt.Sprintf("\n  party %d: machineRounds=%d ops=%d comm=%d queueWait=%s",
			w.Party, w.MachineRounds, w.Ops, w.CommWords, w.QueueWait.Round(time.Microsecond))
		if w.Failures > 0 || w.Retries > 0 {
			s += fmt.Sprintf(" failures=%d retries=%d", w.Failures, w.Retries)
		}
		if w.WireBytes > 0 {
			s += fmt.Sprintf(" wire=%dB", w.WireBytes)
		}
	}
	return s
}

// Cluster is a simulated MPC deployment. The zero value is not usable;
// construct with NewCluster.
type Cluster struct {
	cfg     Config
	obs     trace.Observer // cfg.Observer with the flight recorder composed in
	rounds  []RoundStats
	workers []WorkerStats
}

// NewCluster returns a cluster with the given configuration. The
// process-global flight recorder (trace.Flight) is composed into the
// effective observer here — once, at construction — so every cluster in
// the process feeds the recorder by default; trace.SetFlightEnabled /
// MPCDIST_FLIGHT=off opt out. The recorder is out-of-band: it never
// changes a deterministic counter or the cfg the caller sees via Config().
func NewCluster(cfg Config) *Cluster {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &Cluster{cfg: cfg, obs: trace.WithFlight(cfg.Observer)}
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Report returns the aggregated statistics of all rounds run so far.
func (c *Cluster) Report() Report {
	rep := Report{Rounds: append([]RoundStats(nil), c.rounds...)}
	rep.NumRounds = len(c.rounds)
	for _, r := range c.rounds {
		if r.Machines > rep.MaxMachines {
			rep.MaxMachines = r.Machines
		}
		w := r.MaxInWords
		if r.MaxOutWords > w {
			w = r.MaxOutWords
		}
		if w > rep.MaxWords {
			rep.MaxWords = w
		}
		rep.TotalOps += r.TotalOps
		rep.CriticalOps += r.MaxMachineOps
		rep.CommWords += r.CommWords
		rep.Elapsed += r.Elapsed
		rep.QueueWait += r.QueueWait
		if r.Skew.Straggler > rep.MaxStraggler {
			rep.MaxStraggler = r.Skew.Straggler
		}
		rep.Failures += r.Failures
		rep.Retries += r.Retries
	}
	rep.Workers = append([]WorkerStats(nil), c.workers...)
	return rep
}

// Reset clears the round history but keeps the configuration.
func (c *Cluster) Reset() { c.rounds, c.workers = nil, nil }

// Ctx is the view a machine has of the world during one round: its
// identity, its random streams, an operation counter, and an outbox.
type Ctx struct {
	Machine int
	Round   int

	cluster *Cluster
	phase   trace.Phase
	obs     trace.Observer
	ops     stats.Ops
	out     []Message
	rng     *rand.Rand

	inWords    int
	start, end time.Time
	queueWait  time.Duration
}

// Counter returns the machine's operation counter, suitable for passing to
// the sequential kernels in editdist/ulam/approx.
func (x *Ctx) Counter() *stats.Ops { return &x.ops }

// Ops charges n elementary operations to the machine.
func (x *Ctx) Ops(n int64) { x.ops.Add(n) }

// Send emits a message for delivery at the start of the next round.
func (x *Ctx) Send(to int, data Payload) {
	x.out = append(x.out, Message{To: to, Data: data})
	if x.obs != nil {
		x.obs.Message(x.Round, x.Machine, to, data.Words())
	}
}

// mix64 is the SplitMix64 finalizer, shared with internal/fault and the
// transport layer through internal/stats so stream derivation cannot drift
// between the coordinator and worker processes.
func mix64(v uint64) uint64 { return stats.Mix64(v) }

// Distinct stream kinds keep the per-machine and shared streams disjoint
// even at coinciding (seed, round) coordinates.
const (
	kindMachine uint64 = 0x6d616368696e6500 // "machine\0"
	kindShared  uint64 = 0x7368617265640000 // "shared\0\0"
)

// streamSeed derives the per-machine stream seed arithmetically — no
// formatting or hashing allocations on the machine execution path.
func streamSeed(seed int64, round, machine int) int64 {
	h := mix64(uint64(seed) ^ kindMachine)
	h = mix64(h ^ uint64(round))
	h = mix64(h ^ uint64(machine))
	return int64(h)
}

// fnvString is FNV-1a over a string without allocating a hash.Hash; tags
// are the only string-keyed part of stream derivation.
func fnvString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// sharedSeed derives the shared-stream seed from (seed, round, tag).
func sharedSeed(seed int64, round int, tag string) int64 {
	h := mix64(uint64(seed) ^ kindShared)
	h = mix64(h ^ uint64(round))
	h = mix64(h ^ fnvString(tag))
	return int64(h)
}

// Rand returns the machine's private random stream, deterministic in
// (seed, round, machine). The stream is created on first use and cached
// for the rest of the round.
func (x *Ctx) Rand() *rand.Rand {
	if x.rng == nil {
		x.rng = rand.New(rand.NewSource(streamSeed(x.cluster.cfg.Seed, x.Round, x.Machine)))
	}
	return x.rng
}

// SharedRand returns a random stream that is identical on every machine for
// a given tag — the "common seed" device of Algorithm 6. Each call returns
// a fresh stream positioned at the start.
func (x *Ctx) SharedRand(tag string) *rand.Rand {
	return x.cluster.SharedRand(x.Round, tag)
}

// SharedRand is the driver-side accessor for the same stream machines see
// through Ctx.SharedRand.
func (c *Cluster) SharedRand(round int, tag string) *rand.Rand {
	return rand.New(rand.NewSource(sharedSeed(c.cfg.Seed, round, tag)))
}

// MachineFunc is the program a machine executes during a round: it reads
// its input payloads and sends messages through the context.
type MachineFunc func(x *Ctx, in []Payload)

// MemoryError reports a violation of the MPC memory or machine-count
// limits.
type MemoryError struct {
	Round   string
	Machine int
	Words   int
	Limit   int
	Kind    string // "input", "output", or "machines"
}

func (e *MemoryError) Error() string {
	if e.Kind == "machines" {
		return fmt.Sprintf("mpc: round %q uses %d machines, limit %d", e.Round, e.Words, e.Limit)
	}
	return fmt.Sprintf("mpc: round %q machine %d %s holds %d words, limit %d",
		e.Round, e.Machine, e.Kind, e.Words, e.Limit)
}

// PayloadWords sums the footprint of a payload slice.
func PayloadWords(in []Payload) int {
	w := 0
	for _, p := range in {
		w += p.Words()
	}
	return w
}

// span assembles the machine's trace span after execution; outbox volume
// and fan-out are computed from the machine's own outbox, so this is safe
// inside the machine goroutine.
func (x *Ctx) span(name string) trace.MachineSpan {
	outWords, fanout := 0, 0
	if len(x.out) <= 32 {
		// Typical outboxes are a handful of messages; a quadratic scan
		// avoids a per-machine map allocation, which dominated the
		// observer's cost on trivial rounds.
		for i, m := range x.out {
			outWords += m.Data.Words()
			dup := false
			for j := 0; j < i; j++ {
				if x.out[j].To == m.To {
					dup = true
					break
				}
			}
			if !dup {
				fanout++
			}
		}
	} else {
		seen := make(map[int]struct{}, 32)
		for _, m := range x.out {
			outWords += m.Data.Words()
			if _, ok := seen[m.To]; !ok {
				seen[m.To] = struct{}{}
				fanout++
			}
		}
	}
	return trace.MachineSpan{
		Round:     x.Round,
		Name:      name,
		Phase:     x.phase,
		Machine:   x.Machine,
		Start:     x.start,
		End:       x.end,
		QueueWait: x.queueWait,
		Ops:       x.ops.Count(),
		InWords:   x.inWords,
		OutWords:  outWords,
		Sends:     len(x.out),
		Fanout:    fanout,
	}
}

// Run executes one synchronous round: every machine with input runs fn
// concurrently, and the emitted messages are grouped by destination into
// the next round's inputs (returned sorted by machine id for determinism).
// It enforces the per-machine memory cap on inputs and outputs and the
// machine-count cap, returning a *MemoryError on violation.
//
// With an active Config.Faults plan, injected crashes are recovered by
// replaying the machine (up to Config.MaxRetries extra attempts; replay is
// exact because execution is a pure function of (seed, round, machine,
// inputs)) and injected message drops/duplications are recovered by
// retransmission plus receiver-side dedup on (round, sender, sequence)
// message IDs. Exhausting the budget returns *fault.CrashError or
// *fault.DropError. Recovery never perturbs the deterministic counters:
// the returned inputs and the round's TotalOps/CommWords are bit-identical
// to a fault-free run.
//
// phase names the paper phase the round implements; it is validated before
// anything else happens, so a round can never reach the Observer — or the
// round history — without a valid phase label.
func (c *Cluster) Run(name string, phase trace.Phase, inputs map[int][]Payload, fn MachineFunc) (map[int][]Payload, error) {
	if err := trace.CheckPhase(phase); err != nil {
		return nil, fmt.Errorf("mpc: round %q: %w", name, err)
	}
	round := len(c.rounds)
	st := RoundStats{Name: name, Phase: phase, Machines: len(inputs)}
	obs := c.obs
	ctx := c.cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if obs != nil {
		obs.RoundStart(trace.RoundInfo{Round: round, Name: name, Phase: phase, Machines: len(inputs)})
	}
	// fail closes the round for observers on pre-flight and post-run
	// errors, so a violation is visible on a trace, not only in the error.
	// Retry-budget exhaustion additionally fires the flight recorder's
	// auto-dump: the retained window is the post-mortem for it.
	fail := func(err error) error {
		triggerFlightOnExhaustion(err)
		if obs != nil {
			sum := summary(round, &st)
			sum.Err = err.Error()
			obs.RoundEnd(sum)
		}
		return err
	}
	if err := ctx.Err(); err != nil {
		return nil, fail(fmt.Errorf("mpc: round %q cancelled: %w", name, err))
	}
	if ck := c.cfg.Checkpointer; ck != nil {
		snap, err := ck.Resume(round, name, phase)
		if err != nil {
			return nil, fail(fmt.Errorf("mpc: round %q: %w", name, err))
		}
		if snap != nil {
			// Fast-forward: the round completed in a previous run. Restore
			// its stats verbatim and hand back the saved post-shuffle
			// outputs without executing machines or touching the transport
			// — resumed rounds never reach the exchange barrier, so every
			// party of a distributed resume skips them in lockstep and the
			// exchange sequence numbers stay aligned.
			st = snap.Stats
			c.rounds = append(c.rounds, st)
			if obs != nil {
				trace.EmitCheckpoint(obs, trace.CheckpointEvent{Round: round, Name: name,
					Phase: phase, Kind: trace.CheckpointResume, Step: snap.Step, At: time.Now()})
				obs.RoundEnd(summary(round, &st))
			}
			return snap.Next, nil
		}
	}
	if c.cfg.MaxMachines > 0 && len(inputs) > c.cfg.MaxMachines {
		return nil, fail(&MemoryError{Round: name, Words: len(inputs), Limit: c.cfg.MaxMachines, Kind: "machines"})
	}

	ids := make([]int, 0, len(inputs))
	for id := range inputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	// Pre-check input residency.
	inWords := make([]int, len(ids))
	for k, id := range ids {
		w := PayloadWords(inputs[id])
		inWords[k] = w
		if w > st.MaxInWords {
			st.MaxInWords = w
		}
		if c.cfg.MachineWords > 0 && w > c.cfg.MachineWords {
			return nil, fail(&MemoryError{Round: name, Machine: id, Words: w, Limit: c.cfg.MachineWords, Kind: "input"})
		}
	}

	plan := c.cfg.Faults
	active := plan.Active()
	maxRetries := c.cfg.MaxRetries
	if maxRetries <= 0 {
		maxRetries = DefaultMaxRetries
	}

	// Partition the round across the transport's parties by input weight.
	// Every party computes the same partition from the same sorted ids —
	// no coordination needed — and executes only its own share; the
	// exchange below restores the full round for everyone.
	tr := c.cfg.Transport
	parties, self := 1, 0
	if tr != nil {
		parties, self = tr.Parties()
	}
	assign := [][]int{ids}
	myIDs := ids
	if parties > 1 {
		assign = AssignMachines(ids, inWords, parties)
		myIDs = assign[self]
	}

	inWordsByID := make(map[int]int, len(ids))
	for k, id := range ids {
		inWordsByID[id] = inWords[k]
	}
	re := &roundExec{
		c: c, ctx: ctx, round: round, name: name, phase: phase, obs: obs,
		inputs: inputs, inWords: inWordsByID, fn: fn, base: time.Now(),
		plan: plan, active: active, maxRetries: maxRetries,
	}
	if trace.PhaseLabelsEnabled() {
		// One label set per round; every machine goroutine of the round
		// (including transport-driven re-executions) runs under it, so CPU
		// profiles attribute samples to {algo, phase, round}.
		re.labels, re.labeled = trace.PhaseLabels(c.cfg.Algo, phase, name), true
	}

	local, err := re.run(myIDs)
	if err != nil {
		return nil, fail(err)
	}
	merged := local
	if tr != nil {
		meta := transport.RoundMeta{Round: round, Name: name, Phase: string(phase)}
		merged, err = tr.Exchange(meta, assign, local, re.run)
		if err != nil {
			return nil, fail(fmt.Errorf("mpc: round %q: %w", name, err))
		}
	}

	// Replay observer events for machines that executed on other parties;
	// in-process machines already fired theirs from inside roundExec. The
	// replayed timestamps are the remote party's offsets rebased onto this
	// party's round clock — advisory, like all wall-clock quantities.
	if obs != nil {
		for _, r := range merged {
			if !r.Remote || !r.Started {
				continue
			}
			obs.MachineStart(round, r.Machine, inWordsByID[r.Machine])
			for _, m := range r.Msgs {
				obs.Message(round, r.Machine, m.To, m.Data.(Payload).Words())
			}
			obs.MachineEnd(remoteSpan(name, phase, round, r, re.base, inWordsByID[r.Machine]))
		}
	}

	for _, r := range merged {
		st.Failures += r.Failures
		st.Retries += r.Retries
	}

	// Attribute the round's work to parties by the deterministic
	// assignment. Pure function of (assign, merged), both identical on
	// every party, so the rows agree everywhere.
	if parties > 1 {
		if len(c.workers) < parties {
			nw := make([]WorkerStats, parties)
			copy(nw, c.workers)
			for p := range nw {
				nw[p].Party = p
			}
			c.workers = nw
		}
		byID := make(map[int]transport.Record, len(merged))
		for _, r := range merged {
			byID[r.Machine] = r
		}
		for p, idsP := range assign {
			ws := &c.workers[p]
			for _, id := range idsP {
				r, ok := byID[id]
				if !ok {
					continue
				}
				ws.MachineRounds++
				ws.Ops += r.Ops
				ws.QueueWait += time.Duration(r.QueueNs)
				ws.Failures += r.Failures
				ws.Retries += r.Retries
				for _, m := range r.Msgs {
					ws.CommWords += int64(m.Data.(Payload).Words())
				}
			}
		}
	}

	// Execution window and skew over the machines that actually ran.
	var firstNs, lastNs int64
	started := false
	var durs []time.Duration
	for _, r := range merged {
		if !r.Started {
			continue // cancelled before execution
		}
		if !started || r.StartNs < firstNs {
			firstNs = r.StartNs
		}
		if r.EndNs > lastNs {
			lastNs = r.EndNs
		}
		started = true
		st.QueueWait += time.Duration(r.QueueNs)
		durs = append(durs, time.Duration(r.EndNs-r.StartNs))
	}
	if started {
		st.Elapsed = time.Duration(lastNs - firstNs)
	}
	st.Skew = trace.Summarize(durs)

	if err := ctx.Err(); err != nil {
		return nil, fail(fmt.Errorf("mpc: round %q cancelled: %w", name, err))
	}
	for _, r := range merged {
		if r.Crashed {
			// Retry budget exhausted on a machine: the round cannot
			// complete. merged is sorted by machine id, so the reported
			// machine is deterministic — and identical on every party.
			return nil, fail(&fault.CrashError{Round: round, Name: name, Machine: r.Machine, Attempts: r.CrashAttempts})
		}
	}

	// Message IDs are (round, sender, sequence); with an active fault plan
	// the shuffle retransmits dropped messages and the receiver collapses
	// duplicates (and redundant retransmissions) by ID, keeping the first
	// copy. Senders are walked in sorted-id order and outboxes in sequence
	// order, so delivery order — and therefore every downstream machine's
	// input — is bit-identical to the fault-free path. All decisions are
	// pure functions of the plan and the merged records, so every party of
	// a distributed run computes the identical shuffle.
	type msgID struct{ from, seq int }
	var seen map[int]map[msgID]bool
	if active {
		seen = make(map[int]map[msgID]bool)
	}
	deliver := func(next map[int][]Payload, to, from, seq int, data Payload) {
		id := msgID{from, seq}
		dst := seen[to]
		if dst == nil {
			dst = make(map[msgID]bool)
			seen[to] = dst
		}
		if dst[id] {
			return // duplicate detected by message ID
		}
		dst[id] = true
		next[to] = append(next[to], data)
	}

	next := make(map[int][]Payload)
	var firstErr error
	for _, r := range merged {
		st.TotalOps += r.Ops
		if r.Ops > st.MaxMachineOps {
			st.MaxMachineOps = r.Ops
		}
		w := 0
		for _, m := range r.Msgs {
			w += m.Data.(Payload).Words()
		}
		// CommWords is the logical shuffle volume — retransmissions and
		// duplicates are host-level recovery, not model communication — so
		// the deterministic counters match the fault-free run exactly.
		st.CommWords += int64(w)
		if w > st.MaxOutWords {
			st.MaxOutWords = w
		}
		if c.cfg.MachineWords > 0 && w > c.cfg.MachineWords && firstErr == nil {
			firstErr = &MemoryError{Round: name, Machine: r.Machine, Words: w, Limit: c.cfg.MachineWords, Kind: "output"}
		}
		if !active {
			for _, m := range r.Msgs {
				next[m.To] = append(next[m.To], m.Data.(Payload))
			}
			continue
		}
		for seq, m := range r.Msgs {
			delivered := false
			for attempt := 0; ; attempt++ {
				if plan.DropMsg(round, r.Machine, seq, attempt) {
					st.Failures++
					if obs != nil {
						obs.Fault(trace.FaultEvent{Round: round, Name: name, Phase: phase, Machine: r.Machine,
							Kind: trace.FaultMsgDrop, Attempt: attempt, Seq: seq, To: m.To, At: time.Now()})
					}
					if attempt >= maxRetries {
						if firstErr == nil {
							firstErr = &fault.DropError{Round: round, Name: name,
								From: r.Machine, To: m.To, Seq: seq, Attempts: attempt + 1}
						}
						break
					}
					st.Retries++
					if obs != nil {
						obs.Retry(trace.RetryEvent{Round: round, Name: name, Phase: phase, Machine: r.Machine,
							Kind: trace.FaultMsgDrop, Attempt: attempt + 1, Seq: seq, At: time.Now()})
					}
					continue
				}
				delivered = true
				if plan.DupMsg(round, r.Machine, seq, attempt) {
					st.Failures++
					if obs != nil {
						obs.Fault(trace.FaultEvent{Round: round, Name: name, Phase: phase, Machine: r.Machine,
							Kind: trace.FaultMsgDup, Attempt: attempt, Seq: seq, To: m.To, At: time.Now()})
					}
					// The duplicate goes through the same delivery path and
					// is caught by the receiver's ID dedup.
					deliver(next, m.To, r.Machine, seq, m.Data.(Payload))
				}
				break
			}
			if delivered {
				deliver(next, m.To, r.Machine, seq, m.Data.(Payload))
			}
		}
	}
	c.rounds = append(c.rounds, st)
	if obs != nil {
		sum := summary(round, &st)
		if started {
			sum.Start, sum.End = re.base.Add(time.Duration(firstNs)), re.base.Add(time.Duration(lastNs))
		}
		if firstErr != nil {
			sum.Err = firstErr.Error()
		}
		obs.RoundEnd(sum)
	}
	if firstErr != nil {
		triggerFlightOnExhaustion(firstErr)
		return nil, firstErr
	}
	if ck := c.cfg.Checkpointer; ck != nil {
		snap := &RoundSnapshot{Round: round, Name: name, Phase: phase, Stats: st, Next: next}
		if err := ck.Save(snap); err != nil {
			// The observer already saw the round close successfully; the
			// save failure is the job's error, not the round's.
			return nil, fmt.Errorf("mpc: round %q: checkpoint save: %w", name, err)
		}
		if obs != nil {
			trace.EmitCheckpoint(obs, trace.CheckpointEvent{Round: round, Name: name,
				Phase: phase, Kind: trace.CheckpointSave, Step: snap.Step, At: time.Now()})
		}
	}
	return next, nil
}

// triggerFlightOnExhaustion fires the flight recorder's auto-dump when a
// round failed because a machine or message exhausted its recovery budget
// — the failures the recorder's retained window exists to explain. Other
// errors (memory violations, cancellation) are deterministic and
// reproducible, so they don't warrant a dump.
func triggerFlightOnExhaustion(err error) {
	var ce *fault.CrashError
	var de *fault.DropError
	if errors.As(err, &ce) || errors.As(err, &de) {
		trace.FlightTrigger("mpc: " + err.Error())
	}
}

// roundExec binds one round's immutable context — inputs, seed streams,
// fault plan, observer — into a closure that can execute any subset of the
// round's machines. Cluster.Run uses it for this party's share; the
// transport reuses it to re-execute a lost peer's machines mid-round
// (exact replay: execution is a pure function of (seed, round, machine,
// inputs)).
type roundExec struct {
	c          *Cluster
	ctx        context.Context
	round      int
	name       string
	phase      trace.Phase
	obs        trace.Observer
	inputs     map[int][]Payload
	inWords    map[int]int
	fn         MachineFunc
	base       time.Time
	plan       *fault.Plan
	active     bool
	maxRetries int
	labels     pprof.LabelSet // {algo, phase, round} profiler labels
	labeled    bool
}

// run executes the given machines concurrently (bounded by the cluster's
// parallelism) and returns their execution records in id order.
func (re *roundExec) run(ids []int) ([]transport.Record, error) {
	c, ctx, obs := re.c, re.ctx, re.obs
	round, name, phase := re.round, re.name, re.phase
	plan, active, maxRetries := re.plan, re.active, re.maxRetries

	ctxs := make([]*Ctx, len(ids))
	// Per-machine fault bookkeeping, written by the machine's goroutine and
	// read after wg.Wait (the Wait establishes the happens-before edge).
	crashed := make([]*fault.CrashError, len(ids))
	machFails := make([]int, len(ids))
	machRetries := make([]int, len(ids))
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.cfg.Parallelism)
	for k, id := range ids {
		ctxs[k] = &Ctx{Machine: id, Round: round, cluster: c, phase: phase, obs: obs, inWords: re.inWords[id]}
		wg.Add(1)
		go func(k, id int, in []Payload) {
			defer wg.Done()
			if re.labeled {
				// The labels live for the goroutine's lifetime; no unset
				// needed. Applied before the semaphore so profiles also
				// attribute scheduler/queueing samples to the round.
				pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), re.labels))
			}
			spawned := time.Now()
			sem <- struct{}{}
			defer func() { <-sem }()
			var queueWait time.Duration
			for attempt := 0; ; attempt++ {
				// Cancellation is re-checked per attempt so a context
				// arriving mid-replay stops within one retry.
				if ctx.Err() != nil {
					return
				}
				// A fresh Ctx per attempt: replay is exact because the
				// machine's random streams and inputs depend only on
				// (seed, round, machine), never on the attempt.
				x := &Ctx{Machine: id, Round: round, cluster: c, phase: phase, obs: obs, inWords: re.inWords[id]}
				ctxs[k] = x
				if active && plan.CrashBefore(round, id, attempt) {
					machFails[k]++
					if obs != nil {
						obs.Fault(trace.FaultEvent{Round: round, Name: name, Phase: phase, Machine: id,
							Kind: trace.FaultCrashBefore, Attempt: attempt, Seq: -1, To: -1, At: time.Now()})
					}
					if attempt >= maxRetries {
						crashed[k] = &fault.CrashError{Round: round, Name: name, Machine: id, Attempts: attempt + 1}
						return
					}
					machRetries[k]++
					if obs != nil {
						obs.Retry(trace.RetryEvent{Round: round, Name: name, Phase: phase, Machine: id,
							Kind: trace.FaultCrashBefore, Attempt: attempt + 1, Seq: -1, At: time.Now()})
					}
					continue
				}
				// The round clock starts here — after slot acquisition — so
				// Elapsed measures machine execution, not semaphore queueing.
				x.start = time.Now()
				if attempt == 0 {
					queueWait = x.start.Sub(spawned)
				}
				x.queueWait = queueWait
				if obs != nil {
					obs.MachineStart(x.Round, x.Machine, x.inWords)
				}
				if active {
					if d := plan.StraggleDelay(round, id, attempt); d > 0 {
						machFails[k]++
						if obs != nil {
							obs.Fault(trace.FaultEvent{Round: round, Name: name, Phase: phase, Machine: id,
								Kind: trace.FaultStraggle, Attempt: attempt, Seq: -1, To: -1, At: time.Now()})
						}
						// The injected delay happens inside the span, so it
						// shows up in Elapsed and the skew stats; it aborts
						// early on cancellation.
						select {
						case <-ctx.Done():
							x.end = time.Now()
							if obs != nil {
								obs.MachineEnd(x.span(name))
							}
							return
						case <-time.After(d):
						}
					}
				}
				re.fn(x, in)
				x.end = time.Now()
				if obs != nil {
					obs.MachineEnd(x.span(name))
				}
				if active && plan.CrashAfterExec(round, id, attempt) {
					// The machine's output is lost before shipping; replay.
					machFails[k]++
					if obs != nil {
						obs.Fault(trace.FaultEvent{Round: round, Name: name, Phase: phase, Machine: id,
							Kind: trace.FaultCrashAfter, Attempt: attempt, Seq: -1, To: -1, At: time.Now()})
					}
					if attempt >= maxRetries {
						crashed[k] = &fault.CrashError{Round: round, Name: name, Machine: id, Attempts: attempt + 1}
						return
					}
					machRetries[k]++
					if obs != nil {
						obs.Retry(trace.RetryEvent{Round: round, Name: name, Phase: phase, Machine: id,
							Kind: trace.FaultCrashAfter, Attempt: attempt + 1, Seq: -1, At: time.Now()})
					}
					continue
				}
				return
			}
		}(k, id, re.inputs[id])
	}
	wg.Wait()

	recs := make([]transport.Record, len(ids))
	for k, x := range ctxs {
		r := transport.Record{
			Machine:  x.Machine,
			Ops:      x.ops.Count(),
			Failures: machFails[k],
			Retries:  machRetries[k],
		}
		if !x.start.IsZero() {
			r.Started = true
			r.StartNs = x.start.Sub(re.base).Nanoseconds()
			r.EndNs = x.end.Sub(re.base).Nanoseconds()
			r.QueueNs = int64(x.queueWait)
		}
		if ce := crashed[k]; ce != nil {
			// The machine exhausted its replay budget; its output (if any
			// attempt produced one) is lost, so only the crash marker
			// ships — every party fails the round on it identically.
			r.Crashed = true
			r.CrashAttempts = ce.Attempts
		} else if len(x.out) > 0 {
			r.Msgs = make([]transport.Msg, len(x.out))
			for i, m := range x.out {
				r.Msgs[i] = transport.Msg{To: m.To, Data: m.Data}
			}
		}
		recs[k] = r
	}
	return recs, nil
}

// summary converts the round's stats into the observer's closing event.
func summary(round int, st *RoundStats) trace.RoundSummary {
	return trace.RoundSummary{
		Round:     round,
		Name:      st.Name,
		Phase:     st.Phase,
		Machines:  st.Machines,
		Elapsed:   st.Elapsed,
		QueueWait: st.QueueWait,
		TotalOps:  st.TotalOps,
		CommWords: st.CommWords,
		Failures:  st.Failures,
		Retries:   st.Retries,
		Skew:      st.Skew,
	}
}
