// Package mpc simulates the massively parallel computation (MPC) model of
// Karloff, Suri, and Vassilvitskii as used by the paper: a fleet of
// machines, each with a hard memory cap of S words, computing in
// synchronous rounds. Within a round a machine sees only its own input;
// between rounds machines exchange messages, and no machine may receive (or
// hold) more than S words.
//
// The simulator enforces the memory cap, counts the model quantities the
// paper's Table 1 is stated in — rounds, machines, per-machine memory,
// total computation, and critical-path ("parallel") computation — and runs
// machines concurrently on the host's cores.
//
// Randomness: machines can draw from a per-machine stream or from a shared
// stream ("a random variable with a common seed between machines",
// Algorithm 6 line 9); both are deterministic given Config.Seed, so
// simulations are reproducible regardless of goroutine scheduling.
package mpc

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"mpcdist/internal/stats"
)

// Payload is any unit of data shipped between machines. Words reports its
// memory footprint in machine words; the simulator uses it to enforce the
// per-machine cap.
type Payload interface {
	Words() int
}

// Message is a payload addressed to a machine for the next round.
type Message struct {
	To   int
	Data Payload
}

// Config parameterizes a Cluster.
type Config struct {
	// MachineWords is the per-machine memory cap S in words. Zero means
	// unlimited (useful in unit tests of the algorithms themselves).
	MachineWords int
	// MaxMachines optionally caps the number of distinct machines usable in
	// a round; zero means unlimited.
	MaxMachines int
	// Parallelism bounds the number of simulated machines executing
	// concurrently; zero means GOMAXPROCS.
	Parallelism int
	// Seed feeds both the shared and the per-machine random streams.
	Seed int64
	// Ctx, when non-nil, cancels the simulation: Run checks it before the
	// round starts and before each machine executes, so a timed-out or
	// abandoned request stops within one machine's work rather than
	// running the remaining rounds to completion.
	Ctx context.Context
}

// RoundStats records the measured model quantities of one round.
type RoundStats struct {
	Name          string
	Machines      int           // distinct machines that received input
	MaxInWords    int           // max words resident on a machine (input)
	MaxOutWords   int           // max words emitted by a machine
	TotalOps      int64         // sum of ops over machines
	MaxMachineOps int64         // max ops on one machine ("parallel time")
	CommWords     int64         // words shipped between machines after the round
	Elapsed       time.Duration // wall time of the simulated round
}

// Report aggregates a cluster's history in the shape of a Table 1 row.
type Report struct {
	Rounds      []RoundStats
	NumRounds   int
	MaxMachines int   // max machines used in any round
	MaxWords    int   // max per-machine memory observed in any round
	TotalOps    int64 // total computation across all rounds and machines
	CriticalOps int64 // sum over rounds of the max per-machine ops
	CommWords   int64 // total communication volume (words) across rounds
}

// String renders the report as a single summary line.
func (r Report) String() string {
	return fmt.Sprintf("rounds=%d machines=%d mem/machine=%d totalOps=%d criticalOps=%d comm=%d",
		r.NumRounds, r.MaxMachines, r.MaxWords, r.TotalOps, r.CriticalOps, r.CommWords)
}

// Cluster is a simulated MPC deployment. The zero value is not usable;
// construct with NewCluster.
type Cluster struct {
	cfg    Config
	rounds []RoundStats
}

// NewCluster returns a cluster with the given configuration.
func NewCluster(cfg Config) *Cluster {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &Cluster{cfg: cfg}
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Report returns the aggregated statistics of all rounds run so far.
func (c *Cluster) Report() Report {
	rep := Report{Rounds: append([]RoundStats(nil), c.rounds...)}
	rep.NumRounds = len(c.rounds)
	for _, r := range c.rounds {
		if r.Machines > rep.MaxMachines {
			rep.MaxMachines = r.Machines
		}
		w := r.MaxInWords
		if r.MaxOutWords > w {
			w = r.MaxOutWords
		}
		if w > rep.MaxWords {
			rep.MaxWords = w
		}
		rep.TotalOps += r.TotalOps
		rep.CriticalOps += r.MaxMachineOps
		rep.CommWords += r.CommWords
	}
	return rep
}

// Reset clears the round history but keeps the configuration.
func (c *Cluster) Reset() { c.rounds = nil }

// Ctx is the view a machine has of the world during one round: its
// identity, its random streams, an operation counter, and an outbox.
type Ctx struct {
	Machine int
	Round   int

	cluster *Cluster
	ops     stats.Ops
	out     []Message
	rng     *rand.Rand
}

// Counter returns the machine's operation counter, suitable for passing to
// the sequential kernels in editdist/ulam/approx.
func (x *Ctx) Counter() *stats.Ops { return &x.ops }

// Ops charges n elementary operations to the machine.
func (x *Ctx) Ops(n int64) { x.ops.Add(n) }

// Send emits a message for delivery at the start of the next round.
func (x *Ctx) Send(to int, data Payload) {
	x.out = append(x.out, Message{To: to, Data: data})
}

// Rand returns the machine's private random stream, deterministic in
// (seed, round, machine).
func (x *Ctx) Rand() *rand.Rand {
	if x.rng == nil {
		h := fnv.New64a()
		fmt.Fprintf(h, "machine|%d|%d|%d", x.cluster.cfg.Seed, x.Round, x.Machine)
		x.rng = rand.New(rand.NewSource(int64(h.Sum64())))
	}
	return x.rng
}

// SharedRand returns a random stream that is identical on every machine for
// a given tag — the "common seed" device of Algorithm 6. Each call returns
// a fresh stream positioned at the start.
func (x *Ctx) SharedRand(tag string) *rand.Rand {
	return x.cluster.SharedRand(x.Round, tag)
}

// SharedRand is the driver-side accessor for the same stream machines see
// through Ctx.SharedRand.
func (c *Cluster) SharedRand(round int, tag string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "shared|%d|%d|%s", c.cfg.Seed, round, tag)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// MachineFunc is the program a machine executes during a round: it reads
// its input payloads and sends messages through the context.
type MachineFunc func(x *Ctx, in []Payload)

// MemoryError reports a violation of the MPC memory or machine-count
// limits.
type MemoryError struct {
	Round   string
	Machine int
	Words   int
	Limit   int
	Kind    string // "input", "output", or "machines"
}

func (e *MemoryError) Error() string {
	if e.Kind == "machines" {
		return fmt.Sprintf("mpc: round %q uses %d machines, limit %d", e.Round, e.Words, e.Limit)
	}
	return fmt.Sprintf("mpc: round %q machine %d %s holds %d words, limit %d",
		e.Round, e.Machine, e.Kind, e.Words, e.Limit)
}

// PayloadWords sums the footprint of a payload slice.
func PayloadWords(in []Payload) int {
	w := 0
	for _, p := range in {
		w += p.Words()
	}
	return w
}

// Run executes one synchronous round: every machine with input runs fn
// concurrently, and the emitted messages are grouped by destination into
// the next round's inputs (returned sorted by machine id for determinism).
// It enforces the per-machine memory cap on inputs and outputs and the
// machine-count cap, returning a *MemoryError on violation.
func (c *Cluster) Run(name string, inputs map[int][]Payload, fn MachineFunc) (map[int][]Payload, error) {
	round := len(c.rounds)
	st := RoundStats{Name: name, Machines: len(inputs)}
	ctx := c.cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mpc: round %q cancelled: %w", name, err)
	}
	if c.cfg.MaxMachines > 0 && len(inputs) > c.cfg.MaxMachines {
		return nil, &MemoryError{Round: name, Words: len(inputs), Limit: c.cfg.MaxMachines, Kind: "machines"}
	}

	ids := make([]int, 0, len(inputs))
	for id := range inputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	// Pre-check input residency.
	for _, id := range ids {
		w := PayloadWords(inputs[id])
		if w > st.MaxInWords {
			st.MaxInWords = w
		}
		if c.cfg.MachineWords > 0 && w > c.cfg.MachineWords {
			return nil, &MemoryError{Round: name, Machine: id, Words: w, Limit: c.cfg.MachineWords, Kind: "input"}
		}
	}

	ctxs := make([]*Ctx, len(ids))
	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.cfg.Parallelism)
	for k, id := range ids {
		ctxs[k] = &Ctx{Machine: id, Round: round, cluster: c}
		wg.Add(1)
		go func(x *Ctx, in []Payload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			fn(x, in)
		}(ctxs[k], inputs[id])
	}
	wg.Wait()
	st.Elapsed = time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mpc: round %q cancelled: %w", name, err)
	}

	next := make(map[int][]Payload)
	var firstErr error
	for _, x := range ctxs {
		ops := x.ops.Count()
		st.TotalOps += ops
		if ops > st.MaxMachineOps {
			st.MaxMachineOps = ops
		}
		w := 0
		for _, m := range x.out {
			w += m.Data.Words()
		}
		st.CommWords += int64(w)
		if w > st.MaxOutWords {
			st.MaxOutWords = w
		}
		if c.cfg.MachineWords > 0 && w > c.cfg.MachineWords && firstErr == nil {
			firstErr = &MemoryError{Round: name, Machine: x.Machine, Words: w, Limit: c.cfg.MachineWords, Kind: "output"}
		}
		for _, m := range x.out {
			next[m.To] = append(next[m.To], m.Data)
		}
	}
	c.rounds = append(c.rounds, st)
	if firstErr != nil {
		return nil, firstErr
	}
	return next, nil
}
