package mpc

import (
	"errors"
	"sort"
	"testing"
)

func TestRunSingleRoundRouting(t *testing.T) {
	c := NewCluster(Config{MachineWords: 100})
	in := map[int][]Payload{
		0: {Ints{1, 2, 3}},
		1: {Ints{4, 5}},
	}
	out, err := c.Run("echo", in, func(x *Ctx, in []Payload) {
		for _, p := range in {
			for _, v := range p.(Ints) {
				x.Send(v%2, Int(v))
			}
		}
		x.Ops(int64(len(in)))
	})
	if err != nil {
		t.Fatal(err)
	}
	var evens, odds []int
	for _, p := range out[0] {
		evens = append(evens, int(p.(Int)))
	}
	for _, p := range out[1] {
		odds = append(odds, int(p.(Int)))
	}
	sort.Ints(evens)
	sort.Ints(odds)
	if len(evens) != 2 || evens[0] != 2 || evens[1] != 4 {
		t.Errorf("evens = %v", evens)
	}
	if len(odds) != 3 || odds[0] != 1 || odds[2] != 5 {
		t.Errorf("odds = %v", odds)
	}
	rep := c.Report()
	if rep.NumRounds != 1 || rep.MaxMachines != 2 {
		t.Errorf("report = %+v", rep)
	}
	if rep.TotalOps != 2 {
		t.Errorf("total ops = %d, want 2", rep.TotalOps)
	}
}

func TestInputMemoryViolation(t *testing.T) {
	c := NewCluster(Config{MachineWords: 3})
	in := map[int][]Payload{0: {Ints{1, 2, 3}}} // 4 words > 3
	_, err := c.Run("r", in, func(x *Ctx, in []Payload) {})
	var me *MemoryError
	if !errors.As(err, &me) || me.Kind != "input" {
		t.Fatalf("want input MemoryError, got %v", err)
	}
}

func TestOutputMemoryViolation(t *testing.T) {
	c := NewCluster(Config{MachineWords: 4})
	in := map[int][]Payload{0: {Int(1)}}
	_, err := c.Run("r", in, func(x *Ctx, in []Payload) {
		x.Send(1, Ints{1, 2, 3, 4, 5})
	})
	var me *MemoryError
	if !errors.As(err, &me) || me.Kind != "output" {
		t.Fatalf("want output MemoryError, got %v", err)
	}
}

func TestMachineCountViolation(t *testing.T) {
	c := NewCluster(Config{MaxMachines: 2})
	in := map[int][]Payload{0: {Int(0)}, 1: {Int(1)}, 2: {Int(2)}}
	_, err := c.Run("r", in, func(x *Ctx, in []Payload) {})
	var me *MemoryError
	if !errors.As(err, &me) || me.Kind != "machines" {
		t.Fatalf("want machines MemoryError, got %v", err)
	}
}

func TestDeterministicRouting(t *testing.T) {
	run := func() []int {
		c := NewCluster(Config{Seed: 42, Parallelism: 4})
		in := map[int][]Payload{}
		for id := 0; id < 16; id++ {
			in[id] = []Payload{Int(id)}
		}
		out, err := c.Run("scatter", in, func(x *Ctx, in []Payload) {
			r := x.Rand()
			for i := 0; i < 4; i++ {
				x.Send(0, Int(r.Intn(1000)))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var got []int
		for _, p := range out[0] {
			got = append(got, int(p.(Int)))
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 64 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSharedRandCommonAcrossMachines(t *testing.T) {
	c := NewCluster(Config{Seed: 7})
	in := map[int][]Payload{0: {Int(0)}, 5: {Int(5)}, 9: {Int(9)}}
	out, err := c.Run("shared", in, func(x *Ctx, in []Payload) {
		x.Send(0, Int(x.SharedRand("L").Intn(1<<30)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 3 {
		t.Fatalf("want 3 messages, got %d", len(out[0]))
	}
	v0 := int(out[0][0].(Int))
	for _, p := range out[0][1:] {
		if int(p.(Int)) != v0 {
			t.Fatalf("shared rand differs across machines: %v", out[0])
		}
	}
	// Driver sees the same stream.
	if got := c.SharedRand(0, "L").Intn(1 << 30); got != v0 {
		t.Errorf("driver shared rand %d != machine %d", got, v0)
	}
	// A different tag gives a different stream (overwhelmingly likely).
	if got := c.SharedRand(0, "M").Intn(1 << 30); got == v0 {
		t.Errorf("tag M collided with tag L")
	}
}

func TestMultiRoundReport(t *testing.T) {
	c := NewCluster(Config{MachineWords: 1000})
	in := map[int][]Payload{0: {Ints{1, 2, 3, 4}}}
	mid, err := c.Run("one", in, func(x *Ctx, in []Payload) {
		x.Ops(10)
		for _, p := range in {
			for i, v := range p.(Ints) {
				x.Send(i, Int(v))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run("two", mid, func(x *Ctx, in []Payload) { x.Ops(3) })
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if rep.NumRounds != 2 {
		t.Fatalf("rounds = %d", rep.NumRounds)
	}
	if rep.MaxMachines != 4 {
		t.Errorf("machines = %d, want 4", rep.MaxMachines)
	}
	if rep.TotalOps != 10+3*4 {
		t.Errorf("total ops = %d, want 22", rep.TotalOps)
	}
	if rep.CriticalOps != 10+3 {
		t.Errorf("critical ops = %d, want 13", rep.CriticalOps)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
	c.Reset()
	if c.Report().NumRounds != 0 {
		t.Error("Reset did not clear rounds")
	}
}

func TestPayloadWordsAndTypes(t *testing.T) {
	if (Ints{1, 2, 3}).Words() != 4 {
		t.Error("Ints.Words")
	}
	if (Bytes("abcdefgh")).Words() != 2 {
		t.Error("Bytes.Words full word")
	}
	if (Bytes("abcdefghi")).Words() != 3 {
		t.Error("Bytes.Words partial word")
	}
	if Int(9).Words() != 1 {
		t.Error("Int.Words")
	}
	if got := PayloadWords([]Payload{Int(1), Ints{1}, Bytes("x")}); got != 1+2+2 {
		t.Errorf("PayloadWords = %d", got)
	}
}

func TestBinPack(t *testing.T) {
	bins := BinPack([]int{3, 3, 3, 10, 1, 1}, 6)
	want := [][]int{{0, 1}, {2}, {3}, {4, 5}}
	if len(bins) != len(want) {
		t.Fatalf("bins = %v", bins)
	}
	for i := range want {
		if len(bins[i]) != len(want[i]) {
			t.Fatalf("bin %d = %v, want %v", i, bins[i], want[i])
		}
		for j := range want[i] {
			if bins[i][j] != want[i][j] {
				t.Fatalf("bin %d = %v, want %v", i, bins[i], want[i])
			}
		}
	}
	if BinPack(nil, 5) != nil {
		t.Error("BinPack(nil) != nil")
	}
	// Zero capacity = one bin with everything.
	if got := BinPack([]int{1, 2}, 0); len(got) != 1 || len(got[0]) != 2 {
		t.Errorf("BinPack cap=0 = %v", got)
	}
}

func TestCommWordsAccounting(t *testing.T) {
	c := NewCluster(Config{})
	in := map[int][]Payload{0: {Int(1)}, 1: {Int(2)}}
	_, err := c.Run("comm", in, func(x *Ctx, in []Payload) {
		x.Send(0, Ints{1, 2, 3}) // 4 words
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if rep.CommWords != 8 {
		t.Errorf("CommWords = %d, want 8 (two machines x 4 words)", rep.CommWords)
	}
	if rep.Rounds[0].CommWords != 8 {
		t.Errorf("round CommWords = %d", rep.Rounds[0].CommWords)
	}
}

func TestParallelismEquivalence(t *testing.T) {
	// Simulation results must not depend on how many machines execute
	// concurrently.
	run := func(par int) (int64, []int) {
		c := NewCluster(Config{Seed: 5, Parallelism: par})
		in := map[int][]Payload{}
		for id := 0; id < 24; id++ {
			in[id] = []Payload{Int(id)}
		}
		out, err := c.Run("r", in, func(x *Ctx, in []Payload) {
			r := x.Rand()
			x.Ops(int64(r.Intn(50)))
			x.Send(int(in[0].(Int))%3, Int(r.Intn(100)))
		})
		if err != nil {
			t.Fatal(err)
		}
		var vals []int
		for dst := 0; dst < 3; dst++ {
			for _, p := range out[dst] {
				vals = append(vals, int(p.(Int)))
			}
		}
		return c.Report().TotalOps, vals
	}
	ops1, v1 := run(1)
	ops8, v8 := run(8)
	if ops1 != ops8 {
		t.Errorf("ops differ across parallelism: %d vs %d", ops1, ops8)
	}
	if len(v1) != len(v8) {
		t.Fatalf("output counts differ")
	}
	for i := range v1 {
		if v1[i] != v8[i] {
			t.Fatalf("outputs differ at %d: %d vs %d", i, v1[i], v8[i])
		}
	}
}
