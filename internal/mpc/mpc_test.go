package mpc

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"testing"
	"time"

	"mpcdist/internal/trace"
)

func TestRunSingleRoundRouting(t *testing.T) {
	c := NewCluster(Config{MachineWords: 100})
	in := map[int][]Payload{
		0: {Ints{1, 2, 3}},
		1: {Ints{4, 5}},
	}
	out, err := c.Run("echo", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {
		for _, p := range in {
			for _, v := range p.(Ints) {
				x.Send(v%2, Int(v))
			}
		}
		x.Ops(int64(len(in)))
	})
	if err != nil {
		t.Fatal(err)
	}
	var evens, odds []int
	for _, p := range out[0] {
		evens = append(evens, int(p.(Int)))
	}
	for _, p := range out[1] {
		odds = append(odds, int(p.(Int)))
	}
	sort.Ints(evens)
	sort.Ints(odds)
	if len(evens) != 2 || evens[0] != 2 || evens[1] != 4 {
		t.Errorf("evens = %v", evens)
	}
	if len(odds) != 3 || odds[0] != 1 || odds[2] != 5 {
		t.Errorf("odds = %v", odds)
	}
	rep := c.Report()
	if rep.NumRounds != 1 || rep.MaxMachines != 2 {
		t.Errorf("report = %+v", rep)
	}
	if rep.TotalOps != 2 {
		t.Errorf("total ops = %d, want 2", rep.TotalOps)
	}
}

func TestInputMemoryViolation(t *testing.T) {
	c := NewCluster(Config{MachineWords: 3})
	in := map[int][]Payload{0: {Ints{1, 2, 3}}} // 4 words > 3
	_, err := c.Run("r", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {})
	var me *MemoryError
	if !errors.As(err, &me) || me.Kind != "input" {
		t.Fatalf("want input MemoryError, got %v", err)
	}
}

func TestOutputMemoryViolation(t *testing.T) {
	c := NewCluster(Config{MachineWords: 4})
	in := map[int][]Payload{0: {Int(1)}}
	_, err := c.Run("r", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {
		x.Send(1, Ints{1, 2, 3, 4, 5})
	})
	var me *MemoryError
	if !errors.As(err, &me) || me.Kind != "output" {
		t.Fatalf("want output MemoryError, got %v", err)
	}
}

func TestMachineCountViolation(t *testing.T) {
	c := NewCluster(Config{MaxMachines: 2})
	in := map[int][]Payload{0: {Int(0)}, 1: {Int(1)}, 2: {Int(2)}}
	_, err := c.Run("r", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {})
	var me *MemoryError
	if !errors.As(err, &me) || me.Kind != "machines" {
		t.Fatalf("want machines MemoryError, got %v", err)
	}
}

func TestDeterministicRouting(t *testing.T) {
	run := func() []int {
		c := NewCluster(Config{Seed: 42, Parallelism: 4})
		in := map[int][]Payload{}
		for id := 0; id < 16; id++ {
			in[id] = []Payload{Int(id)}
		}
		out, err := c.Run("scatter", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {
			r := x.Rand()
			for i := 0; i < 4; i++ {
				x.Send(0, Int(r.Intn(1000)))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var got []int
		for _, p := range out[0] {
			got = append(got, int(p.(Int)))
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 64 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSharedRandCommonAcrossMachines(t *testing.T) {
	c := NewCluster(Config{Seed: 7})
	in := map[int][]Payload{0: {Int(0)}, 5: {Int(5)}, 9: {Int(9)}}
	out, err := c.Run("shared", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {
		x.Send(0, Int(x.SharedRand("L").Intn(1<<30)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 3 {
		t.Fatalf("want 3 messages, got %d", len(out[0]))
	}
	v0 := int(out[0][0].(Int))
	for _, p := range out[0][1:] {
		if int(p.(Int)) != v0 {
			t.Fatalf("shared rand differs across machines: %v", out[0])
		}
	}
	// Driver sees the same stream.
	if got := c.SharedRand(0, "L").Intn(1 << 30); got != v0 {
		t.Errorf("driver shared rand %d != machine %d", got, v0)
	}
	// A different tag gives a different stream (overwhelmingly likely).
	if got := c.SharedRand(0, "M").Intn(1 << 30); got == v0 {
		t.Errorf("tag M collided with tag L")
	}
}

func TestMultiRoundReport(t *testing.T) {
	c := NewCluster(Config{MachineWords: 1000})
	in := map[int][]Payload{0: {Ints{1, 2, 3, 4}}}
	mid, err := c.Run("one", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {
		x.Ops(10)
		for _, p := range in {
			for i, v := range p.(Ints) {
				x.Send(i, Int(v))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run("two", trace.PhaseCandidates, mid, func(x *Ctx, in []Payload) { x.Ops(3) })
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if rep.NumRounds != 2 {
		t.Fatalf("rounds = %d", rep.NumRounds)
	}
	if rep.MaxMachines != 4 {
		t.Errorf("machines = %d, want 4", rep.MaxMachines)
	}
	if rep.TotalOps != 10+3*4 {
		t.Errorf("total ops = %d, want 22", rep.TotalOps)
	}
	if rep.CriticalOps != 10+3 {
		t.Errorf("critical ops = %d, want 13", rep.CriticalOps)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
	c.Reset()
	if c.Report().NumRounds != 0 {
		t.Error("Reset did not clear rounds")
	}
}

func TestPayloadWordsAndTypes(t *testing.T) {
	if (Ints{1, 2, 3}).Words() != 4 {
		t.Error("Ints.Words")
	}
	if (Bytes("abcdefgh")).Words() != 2 {
		t.Error("Bytes.Words full word")
	}
	if (Bytes("abcdefghi")).Words() != 3 {
		t.Error("Bytes.Words partial word")
	}
	if Int(9).Words() != 1 {
		t.Error("Int.Words")
	}
	if got := PayloadWords([]Payload{Int(1), Ints{1}, Bytes("x")}); got != 1+2+2 {
		t.Errorf("PayloadWords = %d", got)
	}
}

func TestBinPack(t *testing.T) {
	bins := BinPack([]int{3, 3, 3, 10, 1, 1}, 6)
	want := [][]int{{0, 1}, {2}, {3}, {4, 5}}
	if len(bins) != len(want) {
		t.Fatalf("bins = %v", bins)
	}
	for i := range want {
		if len(bins[i]) != len(want[i]) {
			t.Fatalf("bin %d = %v, want %v", i, bins[i], want[i])
		}
		for j := range want[i] {
			if bins[i][j] != want[i][j] {
				t.Fatalf("bin %d = %v, want %v", i, bins[i], want[i])
			}
		}
	}
	if BinPack(nil, 5) != nil {
		t.Error("BinPack(nil) != nil")
	}
	// Zero capacity = one bin with everything.
	if got := BinPack([]int{1, 2}, 0); len(got) != 1 || len(got[0]) != 2 {
		t.Errorf("BinPack cap=0 = %v", got)
	}
}

func TestCommWordsAccounting(t *testing.T) {
	c := NewCluster(Config{})
	in := map[int][]Payload{0: {Int(1)}, 1: {Int(2)}}
	_, err := c.Run("comm", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {
		x.Send(0, Ints{1, 2, 3}) // 4 words
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if rep.CommWords != 8 {
		t.Errorf("CommWords = %d, want 8 (two machines x 4 words)", rep.CommWords)
	}
	if rep.Rounds[0].CommWords != 8 {
		t.Errorf("round CommWords = %d", rep.Rounds[0].CommWords)
	}
}

func TestParallelismEquivalence(t *testing.T) {
	// Simulation results must not depend on how many machines execute
	// concurrently.
	run := func(par int) (int64, []int) {
		c := NewCluster(Config{Seed: 5, Parallelism: par})
		in := map[int][]Payload{}
		for id := 0; id < 24; id++ {
			in[id] = []Payload{Int(id)}
		}
		out, err := c.Run("r", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {
			r := x.Rand()
			x.Ops(int64(r.Intn(50)))
			x.Send(int(in[0].(Int))%3, Int(r.Intn(100)))
		})
		if err != nil {
			t.Fatal(err)
		}
		var vals []int
		for dst := 0; dst < 3; dst++ {
			for _, p := range out[dst] {
				vals = append(vals, int(p.(Int)))
			}
		}
		return c.Report().TotalOps, vals
	}
	ops1, v1 := run(1)
	ops8, v8 := run(8)
	if ops1 != ops8 {
		t.Errorf("ops differ across parallelism: %d vs %d", ops1, ops8)
	}
	if len(v1) != len(v8) {
		t.Fatalf("output counts differ")
	}
	for i := range v1 {
		if v1[i] != v8[i] {
			t.Fatalf("outputs differ at %d: %d vs %d", i, v1[i], v8[i])
		}
	}
}

func TestElapsedExcludesQueueWait(t *testing.T) {
	// Four machines sleeping ~4ms each on a single execution slot: the
	// later machines queue, so the summed QueueWait must clearly exceed
	// zero while each machine's span stays near its sleep time.
	c := NewCluster(Config{Parallelism: 1})
	in := map[int][]Payload{}
	for id := 0; id < 4; id++ {
		in[id] = []Payload{Int(id)}
	}
	_, err := c.Run("sleepy", trace.PhaseCandidates, in, func(x *Ctx, _ []Payload) {
		time.Sleep(4 * time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Report().Rounds[0]
	if st.Elapsed < 12*time.Millisecond {
		t.Errorf("Elapsed = %v, want >= 12ms (4 serialized 4ms machines)", st.Elapsed)
	}
	if st.QueueWait < 12*time.Millisecond {
		t.Errorf("QueueWait = %v, want >= 12ms (3 machines queued behind 4ms runs)", st.QueueWait)
	}
	if st.Skew.Max <= 0 || st.Skew.Mean <= 0 || st.Skew.Straggler < 1 {
		t.Errorf("skew not recorded: %+v", st.Skew)
	}
	rep := c.Report()
	if rep.Elapsed != st.Elapsed || rep.QueueWait != st.QueueWait {
		t.Errorf("report aggregates: elapsed %v/%v queueWait %v/%v",
			rep.Elapsed, st.Elapsed, rep.QueueWait, st.QueueWait)
	}
	if rep.MaxStraggler != st.Skew.Straggler {
		t.Errorf("MaxStraggler = %v, want %v", rep.MaxStraggler, st.Skew.Straggler)
	}
}

func TestObserverEventStream(t *testing.T) {
	col := &trace.Collector{}
	c := NewCluster(Config{Observer: col, MachineWords: 100})
	in := map[int][]Payload{0: {Ints{1, 2, 3}}, 1: {Ints{4, 5}}}
	mid, err := c.Run("stage1", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {
		x.Ops(7)
		x.Send(0, Int(1))
		x.Send(1, Int(2))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run("stage2", trace.PhaseCandidates, mid, func(x *Ctx, in []Payload) { x.Ops(1) }); err != nil {
		t.Fatal(err)
	}

	if len(col.Starts) != 2 || col.Starts[0].Name != "stage1" || col.Starts[1].Round != 1 {
		t.Fatalf("round starts = %+v", col.Starts)
	}
	if len(col.Spans) != 4 {
		t.Fatalf("spans = %d, want 4 (2 machines x 2 rounds)", len(col.Spans))
	}
	for _, s := range col.Spans {
		if s.End.Before(s.Start) || s.Start.IsZero() {
			t.Errorf("span %d/%d has bad window %v..%v", s.Round, s.Machine, s.Start, s.End)
		}
		if s.Round == 0 && (s.Sends != 2 || s.Fanout != 2 || s.OutWords != 2 || s.Ops != 7) {
			t.Errorf("round-0 span %+v", s)
		}
	}
	if col.Messages != 4 || col.MsgWords != 4 {
		t.Errorf("messages = %d words = %d, want 4/4", col.Messages, col.MsgWords)
	}
	if len(col.Summaries) != 2 || col.Summaries[0].Err != "" {
		t.Fatalf("summaries = %+v", col.Summaries)
	}
	s0 := col.Summaries[0]
	if s0.TotalOps != 14 || s0.CommWords != 4 || s0.Machines != 2 {
		t.Errorf("summary 0 = %+v", s0)
	}
	if s0.Start.IsZero() || s0.End.Before(s0.Start) {
		t.Errorf("summary window %v..%v", s0.Start, s0.End)
	}
}

func TestMemoryErrorsSurfaceThroughObserver(t *testing.T) {
	// Input violation: rejected pre-flight, observer still sees the round
	// open and close with the error.
	colIn := &trace.Collector{}
	c := NewCluster(Config{MachineWords: 3, Observer: colIn})
	_, err := c.Run("in", trace.PhaseCandidates, map[int][]Payload{0: {Ints{1, 2, 3}}}, func(x *Ctx, in []Payload) {})
	var me *MemoryError
	if !errors.As(err, &me) || me.Kind != "input" {
		t.Fatalf("want input MemoryError, got %v", err)
	}
	if len(colIn.Summaries) != 1 || !strings.Contains(colIn.Summaries[0].Err, "input") {
		t.Fatalf("input violation not observed: %+v", colIn.Summaries)
	}
	if len(colIn.Spans) != 0 {
		t.Fatalf("no machine should have run, got %d spans", len(colIn.Spans))
	}

	// Output violation: detected after execution; spans exist and the
	// closing summary carries the error.
	colOut := &trace.Collector{}
	c = NewCluster(Config{MachineWords: 4, Observer: colOut})
	_, err = c.Run("out", trace.PhaseCandidates, map[int][]Payload{0: {Int(1)}}, func(x *Ctx, in []Payload) {
		x.Send(1, Ints{1, 2, 3, 4, 5})
	})
	if !errors.As(err, &me) || me.Kind != "output" {
		t.Fatalf("want output MemoryError, got %v", err)
	}
	if len(colOut.Summaries) != 1 || !strings.Contains(colOut.Summaries[0].Err, "output") {
		t.Fatalf("output violation not observed: %+v", colOut.Summaries)
	}
	if len(colOut.Spans) != 1 {
		t.Fatalf("machine ran, want its span observed: %d", len(colOut.Spans))
	}

	// Machine-count violation for completeness.
	colM := &trace.Collector{}
	c = NewCluster(Config{MaxMachines: 1, Observer: colM})
	_, err = c.Run("m", trace.PhaseCandidates, map[int][]Payload{0: {Int(0)}, 1: {Int(1)}}, func(x *Ctx, in []Payload) {})
	if !errors.As(err, &me) || me.Kind != "machines" {
		t.Fatalf("want machines MemoryError, got %v", err)
	}
	if len(colM.Summaries) != 1 || !strings.Contains(colM.Summaries[0].Err, "machines") {
		t.Fatalf("machines violation not observed: %+v", colM.Summaries)
	}
}

func TestStreamSeedDeterminismAndSpread(t *testing.T) {
	// Same coordinates, same seed; any coordinate change moves the seed.
	if streamSeed(1, 2, 3) != streamSeed(1, 2, 3) {
		t.Fatal("streamSeed not deterministic")
	}
	seen := map[int64]bool{}
	for round := 0; round < 10; round++ {
		for machine := 0; machine < 10; machine++ {
			s := streamSeed(42, round, machine)
			if seen[s] {
				t.Fatalf("stream seed collision at round=%d machine=%d", round, machine)
			}
			seen[s] = true
		}
	}
	if sharedSeed(42, 0, "L") == sharedSeed(42, 0, "M") {
		t.Error("shared seeds collide across tags")
	}
	if sharedSeed(42, 0, "L") == streamSeed(42, 0, 0) {
		t.Error("shared and machine stream kinds collide")
	}
	if sharedSeed(42, 0, "L") != sharedSeed(42, 0, "L") {
		t.Error("sharedSeed not deterministic")
	}
}

// oldStreamSeed is the pre-optimization derivation (fnv over an
// fmt-formatted key), kept here so the benchmark reports the delta.
func oldStreamSeed(seed int64, round, machine int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "machine|%d|%d|%d", seed, round, machine)
	return int64(h.Sum64())
}

func BenchmarkStreamSeedArithmetic(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += streamSeed(42, i&7, i&1023)
	}
	_ = sink
}

func BenchmarkStreamSeedFmtFNV(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += oldStreamSeed(42, i&7, i&1023)
	}
	_ = sink
}

// benchRun drives one round over many trivial machines, the regime where
// per-event observer overhead would show up.
func benchRun(b *testing.B, obs trace.Observer) {
	benchRunBody(b, obs, 0)
}

// benchRunBody is benchRun with `work` iterations of deterministic compute
// per machine. work = 0 is the trivial-machine stress shape (isolates
// per-event dispatch cost); the recorder pair uses a body sized like the
// smallest real machine loads (a few microseconds — every actual phase
// machine processes at least a block of n^{1-x} elements), because that is
// the regime the always-on overhead budget is stated for.
func benchRunBody(b *testing.B, obs trace.Observer, work int) {
	in := map[int][]Payload{}
	for id := 0; id < 256; id++ {
		in[id] = []Payload{Int(id)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCluster(Config{Observer: obs})
		if _, err := c.Run("bench", trace.PhaseCandidates, in, func(x *Ctx, in []Payload) {
			acc := uint64(int(in[0].(Int)))
			for j := 0; j < work; j++ {
				acc = acc*6364136223846793005 + 1442695040888963407
			}
			x.Ops(int64(1 + work))
			x.Send(0, Int(acc&1))
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// setFlight pins the process-global flight recorder on or off for one
// benchmark, restoring the previous state after. The observer pair runs
// recorder-off so it still isolates Observer-dispatch cost; the recorder
// pair measures the recorder itself against the same no-observer baseline
// (EXPERIMENTS.md records the overhead, budgeted at <= 3%).
func setFlight(b *testing.B, on bool) {
	b.Helper()
	prev := trace.FlightEnabled()
	trace.SetFlightEnabled(on)
	if on {
		trace.Flight().Reset()
	}
	b.Cleanup(func() { trace.SetFlightEnabled(prev) })
}

func BenchmarkRunNoObserver(b *testing.B)  { setFlight(b, false); benchRun(b, nil) }
func BenchmarkRunNopObserver(b *testing.B) { setFlight(b, false); benchRun(b, trace.Base{}) }

// recorderBenchWork sizes the recorder pair's machine body (~5000 mul-add
// steps, single-digit microseconds): conservative against the smallest
// real rounds, which run full block computations per machine.
const recorderBenchWork = 5000

func BenchmarkRunNoRecorder(b *testing.B) {
	setFlight(b, false)
	benchRunBody(b, nil, recorderBenchWork)
}
func BenchmarkRunRecorder(b *testing.B) {
	setFlight(b, true)
	benchRunBody(b, nil, recorderBenchWork)
}

func BenchmarkCtxRand(b *testing.B) {
	c := NewCluster(Config{Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := &Ctx{Machine: i & 1023, Round: i & 7, cluster: c}
		_ = x.Rand().Int63()
	}
}

func BenchmarkSharedRand(b *testing.B) {
	c := NewCluster(Config{Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.SharedRand(i&7, "reps").Int63()
	}
}
