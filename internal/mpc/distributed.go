package mpc

import (
	"time"

	"mpcdist/internal/trace"
	"mpcdist/internal/transport"
)

func init() {
	// The simulator's built-in payload kinds; algorithm packages register
	// their own job/message types the same way from their inits.
	RegisterPayload("mpc.Ints", Ints(nil))
	RegisterPayload("mpc.Bytes", Bytes(nil))
	RegisterPayload("mpc.Int", Int(0))
}

// RegisterPayload adds a payload type to the transport codec's table so it
// can cross process boundaries on a distributed cluster. Call from an init
// function with a stable package-qualified name and any sample value of
// the concrete type machines send (a pointer sample registers the pointer
// type). Registration is mandatory only for distributed runs, but cheap
// enough to do unconditionally.
func RegisterPayload(name string, sample Payload) {
	transport.Register(name, sample)
}

// AssignMachines partitions the round's sorted machine ids across parties
// by input weight: BinPack groups consecutive ids into bins of capacity
// ceil(total/parties), bins map one-to-one onto parties, and any overflow
// bins (first-fit can open up to ~2x the ideal count) merge into the last
// party. The partition is a pure function of its arguments, so every party
// of an SPMD run computes the identical assignment with no coordination.
func AssignMachines(ids []int, weights []int, parties int) [][]int {
	assign := make([][]int, parties)
	if len(ids) == 0 || parties <= 0 {
		return assign
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	capacity := (total + parties - 1) / parties
	if capacity < 1 {
		capacity = 1
	}
	for b, bin := range BinPack(weights, capacity) {
		p := b
		if p >= parties {
			p = parties - 1
		}
		for _, i := range bin {
			assign[p] = append(assign[p], ids[i])
		}
	}
	return assign
}

// remoteSpan reconstructs a trace span for a machine that executed on
// another party, rebasing the remote party's monotonic offsets onto this
// party's round clock. Wall-clock fidelity is approximate (the clocks are
// different); counts and volumes are exact.
func remoteSpan(name string, phase trace.Phase, round int, r transport.Record, base time.Time, inWords int) trace.MachineSpan {
	outWords, fanout := 0, 0
	seen := make(map[int]struct{}, 8)
	for _, m := range r.Msgs {
		outWords += m.Data.(Payload).Words()
		if _, ok := seen[m.To]; !ok {
			seen[m.To] = struct{}{}
			fanout++
		}
	}
	return trace.MachineSpan{
		Round:     round,
		Name:      name,
		Phase:     phase,
		Machine:   r.Machine,
		Start:     base.Add(time.Duration(r.StartNs)),
		End:       base.Add(time.Duration(r.EndNs)),
		QueueWait: time.Duration(r.QueueNs),
		Ops:       r.Ops,
		InWords:   inWords,
		OutWords:  outWords,
		Sends:     len(r.Msgs),
		Fanout:    fanout,
		Remote:    true,
	}
}
