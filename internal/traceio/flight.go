package traceio

import (
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"mpcdist/internal/trace"
)

// EnvFlightOut names the environment variable that overrides where flight
// dumps are written (and, when set, asks ArmFlight's returned finalizer
// to always write a dump at process exit — the hook CI uses to collect a
// dump artifact deterministically, without racing a signal).
const EnvFlightOut = "MPCDIST_FLIGHT_OUT"

// ArmFlight turns the process-global flight recorder (trace.Flight) into
// a usable black box for a command named cmd:
//
//   - SIGQUIT dumps the recorder to the dump path and the process keeps
//     running (the classic JVM-style thread-dump UX; note Go's default
//     SIGQUIT stack dump is replaced while armed).
//   - The recorder's automatic triggers — round-retry exhaustion, peer
//     loss, degraded fallback — write the same dump, debounced.
//   - The returned finalizer, for a defer in main, writes a final dump at
//     exit when MPCDIST_FLIGHT_OUT is set (explicit opt-in; an ordinary
//     successful run should not leave files behind).
//
// The dump path is $MPCDIST_FLIGHT_OUT when set, else "<cmd>-flight.json"
// in the current directory. Dump-write failures are reported on stderr
// and never crash the process: the recorder is an observer, not a
// participant. ArmFlight is a no-op (returning a no-op finalizer) when
// the recorder is disabled.
func ArmFlight(cmd string) func() {
	if !trace.FlightEnabled() {
		return func() {}
	}
	explicit := os.Getenv(EnvFlightOut)
	path := explicit
	if path == "" {
		path = cmd + "-flight.json"
	}

	// One write at a time; Trigger debounces, but SIGQUIT and the exit
	// path can still race a trigger.
	var mu sync.Mutex
	dump := func(reason string) {
		mu.Lock()
		defer mu.Unlock()
		if err := WriteFile(path, trace.Flight().Dump()); err != nil {
			fmt.Fprintf(os.Stderr, "%s: flight dump (%s): %v\n", cmd, reason, err)
			return
		}
		fmt.Fprintf(os.Stderr, "%s: flight dump (%s) written to %s\n", cmd, reason, path)
	}
	trace.Flight().SetAutoDump(dump)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGQUIT)
	go func() {
		for range sig {
			dump("SIGQUIT")
		}
	}()

	return func() {
		if explicit != "" {
			dump("exit")
		}
	}
}
