package traceio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// bytesTo is a minimal io.WriterTo over a fixed payload.
type bytesTo string

func (b bytesTo) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, string(b))
	return int64(n), err
}

// failAfter writes a prefix and then fails, simulating a mid-export error.
type failAfter struct{ prefix string }

func (f failAfter) WriteTo(w io.Writer) (int64, error) {
	n, _ := io.WriteString(w, f.prefix)
	return int64(n), errors.New("boom")
}

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteFile(path, bytesTo(`{"traceEvents":[]}`)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"traceEvents":[]}` {
		t.Errorf("content %q", got)
	}
}

func TestWriteFileCreateError(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "missing", "trace.json"), bytesTo("x"))
	if err == nil {
		t.Fatal("want error for unreachable path")
	}
	if !strings.Contains(err.Error(), "traceio:") || !strings.Contains(err.Error(), "create") {
		t.Errorf("error %q does not name the failing step", err)
	}
}

func TestWriteFileRemovesPartialOnWriteError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	err := WriteFile(path, failAfter{prefix: `{"traceEvents":[`})
	if err == nil || !strings.Contains(err.Error(), "write") {
		t.Fatalf("want wrapped write error, got %v", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Errorf("partial file left behind: stat err = %v", statErr)
	}
}

func TestWriteFilePreservesOldOnWriteError(t *testing.T) {
	// The atomic write means a failed re-export keeps the previous trace
	// intact instead of truncating it.
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteFile(path, bytesTo("old trace")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, failAfter{prefix: "new"}); err == nil {
		t.Fatal("want write error")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old trace" {
		t.Errorf("previous trace not preserved: %q", got)
	}
}
