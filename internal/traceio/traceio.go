// Package traceio persists trace exports to disk with full error
// surfacing. The exporters (e.g. trace.Chrome) implement io.WriterTo;
// the commands that flush them must not swallow a failed write — a
// truncated Chrome trace parses as an empty timeline in Perfetto, which
// reads as "the run did nothing" rather than "the flush failed". Every
// step (create, write, sync, close) is therefore checked, errors are
// wrapped with the step and path, and a file left incomplete by a failure
// is removed so no tool ever ingests a partial trace.
package traceio

import (
	"fmt"
	"io"
	"os"
)

// WriteFile writes src's export to path and syncs it to stable storage.
// On any failure the partial file is removed and the returned error names
// the failing step and the path; callers should exit nonzero on it.
func WriteFile(path string, src io.WriterTo) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("traceio: create %s: %w", path, err)
	}
	if _, err := src.WriteTo(f); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("traceio: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("traceio: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return fmt.Errorf("traceio: close %s: %w", path, err)
	}
	return nil
}
