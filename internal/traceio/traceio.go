// Package traceio persists trace exports to disk with full error
// surfacing. The exporters (e.g. trace.Chrome) implement io.WriterTo;
// the commands that flush them must not swallow a failed write — a
// truncated Chrome trace parses as an empty timeline in Perfetto, which
// reads as "the run did nothing" rather than "the flush failed". Writes go
// through internal/atomicio (temp file + fsync + rename), so a failure —
// or a crash mid-write — never replaces or truncates an existing export,
// and no tool ever ingests a partial trace.
package traceio

import (
	"fmt"
	"io"

	"mpcdist/internal/atomicio"
)

// WriteFile writes src's export to path atomically and syncs it to stable
// storage. On any failure the previous file (if any) survives untouched
// and the returned error names the failing step and the path; callers
// should exit nonzero on it.
func WriteFile(path string, src io.WriterTo) error {
	if err := atomicio.WriteTo(path, src, 0o644); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	return nil
}
