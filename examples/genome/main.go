// Genome: approximate similarity of DNA-like sequences on a memory-capped
// cluster.
//
// The paper's motivating workload: sequences too large for one machine's
// memory (a human genome is ~3 Gbp) need distributed similarity
// computation. This example mutates a synthetic chromosome with a
// configurable number of SNPs and indels, then compares the exact
// sequential oracle, the sequential constant-factor approximation, the
// paper's MPC algorithm (Theorem 9), and the HSS baseline [20] —
// reporting the model quantities of Table 1 for both MPC runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"mpcdist"
	"mpcdist/internal/workload"
)

func main() {
	n := flag.Int("n", 20000, "chromosome length (bp)")
	mutations := flag.Int("mutations", 200, "planted mutation count")
	x := flag.Float64("x", 0.25, "MPC memory exponent")
	eps := flag.Float64("eps", 0.5, "approximation slack")
	flag.Parse()

	rng := rand.New(rand.NewSource(2024))
	ref := workload.DNA(rng, *n)
	alt := workload.PlantedDNA(rng, ref, *mutations)
	fmt.Printf("reference: %d bp, sample: %d bp, planted mutations <= %d\n\n",
		len(ref), len(alt), *mutations)

	t0 := time.Now()
	exact := mpcdist.EditDistanceFast(ref, alt, nil)
	fmt.Printf("exact (bit-parallel):        %6d         [%v]\n", exact, time.Since(t0).Round(time.Millisecond))

	t0 = time.Now()
	diag := mpcdist.EditDistanceDiagonal(ref, alt, nil)
	fmt.Printf("exact (diagonal, O(n+d^2)):  %6d         [%v]\n", diag, time.Since(t0).Round(time.Millisecond))

	t0 = time.Now()
	apx := mpcdist.ApproxEditDistance(ref, alt, *eps, 1, nil)
	fmt.Printf("sequential approx ([12]-sub): %6d (%.3fx) [%v]\n",
		apx, float64(apx)/float64(exact), time.Since(t0).Round(time.Millisecond))

	p := mpcdist.MPCParams{X: *x, Eps: *eps, Seed: 1}
	t0 = time.Now()
	ours, err := mpcdist.EditDistanceMPC(ref, alt, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MPC Theorem 9 (%s regime):  %6d (%.3fx) [%v]\n",
		ours.Regime, ours.Value, float64(ours.Value)/float64(exact), time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  %s\n", ours.Report)

	t0 = time.Now()
	hss, err := mpcdist.EditDistanceHSS(ref, alt, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MPC HSS baseline [20]:       %6d (%.3fx) [%v]\n",
		hss.Value, float64(hss.Value)/float64(exact), time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  %s\n", hss.Report)

	fmt.Printf("\nTable 1 takeaway at n=%d, x=%.2f:\n", *n, *x)
	fmt.Printf("  machines:      ours %5d  vs  [20] %5d  (%.1fx fewer)\n",
		ours.Report.MaxMachines, hss.Report.MaxMachines,
		float64(hss.Report.MaxMachines)/float64(ours.Report.MaxMachines))
	fmt.Printf("  total memory:  ours %5.1f MW vs  [20] %5.1f MW (machines x words)\n",
		float64(ours.Report.MaxMachines)*float64(ours.Report.MaxWords)/1e6,
		float64(hss.Report.MaxMachines)*float64(hss.Report.MaxWords)/1e6)
}
