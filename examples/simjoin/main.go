// Simjoin: near-duplicate detection over a corpus of strings.
//
// A similarity join asks for all pairs of corpus entries within edit
// distance tau. The classic filter-and-verify pipeline maps directly onto
// this library: a cheap length filter prunes pairs, the bounded exact
// kernel (O(tau·n) per pair) verifies candidates, and — for corpora whose
// entries are individually too large for one machine — the MPC algorithm
// verifies the surviving pairs under a per-machine memory cap.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"mpcdist"
	"mpcdist/internal/workload"
)

func main() {
	docs := flag.Int("docs", 24, "corpus size")
	n := flag.Int("n", 4000, "document length")
	tau := flag.Int("tau", 60, "similarity threshold")
	x := flag.Float64("x", 0.25, "MPC memory exponent for verification")
	flag.Parse()

	// Corpus: a few clusters of near-duplicates plus unrelated documents.
	rng := rand.New(rand.NewSource(99))
	var corpus [][]byte
	for c := 0; c < *docs/4; c++ {
		base := workload.RandomString(rng, *n, 6)
		corpus = append(corpus, base)
		for i := 0; i < 2; i++ {
			corpus = append(corpus, workload.PlantedEdits(rng, base, rng.Intn(*tau), 6))
		}
		corpus = append(corpus, workload.RandomString(rng, *n, 6))
	}
	fmt.Printf("corpus: %d documents of ~%d chars, threshold tau=%d\n\n", len(corpus), *n, *tau)

	// Stage 1: length filter (ed >= |len(a)-len(b)|).
	type pair struct{ i, j int }
	var cands []pair
	for i := 0; i < len(corpus); i++ {
		for j := i + 1; j < len(corpus); j++ {
			diff := len(corpus[i]) - len(corpus[j])
			if diff < 0 {
				diff = -diff
			}
			if diff <= *tau {
				cands = append(cands, pair{i, j})
			}
		}
	}
	fmt.Printf("stage 1 (length filter):  %d of %d pairs survive\n",
		len(cands), len(corpus)*(len(corpus)-1)/2)

	// Stage 2: bounded exact verification, O(tau·n) per pair.
	var ops mpcdist.Ops
	var hits []pair
	dist := map[pair]int{}
	for _, pr := range cands {
		d := mpcdist.EditDistanceBounded(corpus[pr.i], corpus[pr.j], *tau, &ops)
		if d <= *tau {
			hits = append(hits, pr)
			dist[pr] = d
		}
	}
	fmt.Printf("stage 2 (bounded verify): %d similar pairs, %d DP cells\n", len(hits), ops.Count())

	// Stage 3: re-verify one representative pair under the MPC memory cap,
	// as one would for entries exceeding a single machine's memory.
	if len(hits) > 0 {
		pr := hits[0]
		res, err := mpcdist.EditDistanceMPC(corpus[pr.i], corpus[pr.j],
			mpcdist.MPCParams{X: *x, Eps: 0.5, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nstage 3 (MPC verify of pair %d-%d): value=%d (bounded says %d)\n",
			pr.i, pr.j, res.Value, dist[pr])
		fmt.Printf("  %s\n", res.Report)
	}

	fmt.Println("\nsimilar pairs:")
	for _, pr := range hits {
		fmt.Printf("  doc%02d ~ doc%02d  (ed = %d)\n", pr.i, pr.j, dist[pr])
	}
}
