// Textdiff: a minimal line diff built on the library's LCS machinery —
// the dual problem of edit distance in the paper's framing. Lines are the
// alphabet (generic LCS over comparable symbols); unmatched lines print as
// -/+ hunks like a classic diff.
//
// Usage:
//
//	go run ./examples/textdiff fileA fileB
//	go run ./examples/textdiff            # built-in demo
package main

import (
	"fmt"
	"os"
	"strings"

	"mpcdist/internal/lcs"
)

func main() {
	var aLines, bLines []string
	if len(os.Args) == 3 {
		aLines = readLines(os.Args[1])
		bLines = readLines(os.Args[2])
	} else {
		aLines = strings.Split(demoA, "\n")
		bLines = strings.Split(demoB, "\n")
		fmt.Println("(demo inputs; pass two file paths to diff real files)")
	}

	pairs := lcs.PairsOf(aLines, bLines)
	fmt.Printf("--- a (%d lines)\n+++ b (%d lines)\n", len(aLines), len(bLines))
	fmt.Printf("common lines: %d, indel distance: %d\n\n",
		len(pairs), len(aLines)+len(bLines)-2*len(pairs))

	ai, bi := 0, 0
	emit := func(prefix string, line string) { fmt.Printf("%s %s\n", prefix, line) }
	for _, p := range pairs {
		for ai < p.I {
			emit("-", aLines[ai])
			ai++
		}
		for bi < p.J {
			emit("+", bLines[bi])
			bi++
		}
		emit(" ", aLines[ai])
		ai++
		bi++
	}
	for ai < len(aLines) {
		emit("-", aLines[ai])
		ai++
	}
	for bi < len(bLines) {
		emit("+", bLines[bi])
		bi++
	}
}

func readLines(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "textdiff:", err)
		os.Exit(1)
	}
	return strings.Split(strings.TrimRight(string(data), "\n"), "\n")
}

const demoA = `package main

import "fmt"

func main() {
	fmt.Println("hello")
	fmt.Println("world")
}`

const demoB = `package main

import (
	"fmt"
	"os"
)

func main() {
	fmt.Println("hello")
	fmt.Fprintln(os.Stderr, "world")
}`
