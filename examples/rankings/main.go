// Rankings: Ulam distance as a rank-correlation measure.
//
// Two search engines (or two voters) rank the same universe of documents.
// Ulam distance between the two rankings counts the minimum number of
// moves and replacements turning one into the other — a robust alternative
// to Kendall's tau that charges a block move once instead of once per
// crossed pair.
//
// The example builds a ground-truth ranking, derives two noisy observers
// from it, and compares them with the exact sequential algorithm and with
// the two-round MPC algorithm (Theorem 4) at several memory exponents.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mpcdist"
)

// noisyRanking perturbs a ranking: a few items get moved to random
// positions (e.g. personalization), and a few get replaced by fresh items
// the other engine does not index at all.
func noisyRanking(rng *rand.Rand, truth []int, moves, replacements, freshBase int) []int {
	r := append([]int(nil), truth...)
	for i := 0; i < moves; i++ {
		from := rng.Intn(len(r))
		item := r[from]
		r = append(r[:from], r[from+1:]...)
		to := rng.Intn(len(r) + 1)
		r = append(r[:to], append([]int{item}, r[to:]...)...)
	}
	for i := 0; i < replacements; i++ {
		r[rng.Intn(len(r))] = freshBase + i
	}
	return r
}

func main() {
	const nDocs = 5000
	rng := rand.New(rand.NewSource(42))
	truth := rng.Perm(nDocs)

	engineA := noisyRanking(rng, truth, 40, 25, 1_000_000)
	engineB := noisyRanking(rng, truth, 60, 10, 2_000_000)

	if err := mpcdist.CheckDistinct(engineA); err != nil {
		log.Fatal(err)
	}
	if err := mpcdist.CheckDistinct(engineB); err != nil {
		log.Fatal(err)
	}

	exact := mpcdist.UlamDistance(engineA, engineB)
	fmt.Printf("rankings of %d documents, exact ulam(A, B) = %d\n\n", nDocs, exact)

	fmt.Println("Theorem 4 on the simulated cluster (2 rounds, 1+eps whp):")
	fmt.Printf("%-6s %-6s %-8s %-8s %-10s %-12s %s\n",
		"x", "eps", "value", "factor", "machines", "mem/machine", "totalOps")
	for _, x := range []float64{0.2, 0.3, 0.4} {
		for _, eps := range []float64{0.5, 1.0} {
			res, err := mpcdist.UlamDistanceMPC(engineA, engineB,
				mpcdist.MPCParams{X: x, Eps: eps, Seed: 7})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6.2f %-6.2f %-8d %-8.3f %-10d %-12d %d\n",
				x, eps, res.Value, float64(res.Value)/float64(exact),
				res.Report.MaxMachines, res.Report.MaxWords, res.Report.TotalOps)
		}
	}

	// Where do the engines disagree most? Use the local Ulam distance of
	// the top-k block of A against all of B.
	topK := engineA[:100]
	d, win := mpcdist.LocalUlam(topK, engineB)
	fmt.Printf("\nA's top-100 best matches B[%d..%d] with %d edits:\n", win.Gamma, win.Kappa, d)
	fmt.Printf("  => engine B shows A's top results around rank %d\n", win.Gamma)

	// The MPC result also carries the chain: which rank-range of A maps to
	// which rank-range of B, and how many edits that segment needs.
	res, err := mpcdist.UlamDistanceMPC(engineA, engineB, mpcdist.MPCParams{X: 0.3, Eps: 0.5, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsegment map (%d segments):\n", len(res.Chain))
	for i, bm := range res.Chain {
		if i >= 6 {
			fmt.Printf("  ... %d more\n", len(res.Chain)-i)
			break
		}
		fmt.Printf("  A[%5d..%5d] -> B[%5d..%5d]  (%d edits)\n", bm.L, bm.R, bm.G, bm.K, bm.D)
	}
}
