// Quickstart: the public API in one tour — exact distances, edit scripts,
// the sequential approximation, and both MPC algorithms with their
// measured model quantities.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mpcdist"
)

func main() {
	// Exact edit distance (the paper's Section 2 example).
	fmt.Println("ed(elephant, relevant) =", mpcdist.EditDistance("elephant", "relevant"))

	// An optimal edit script.
	fmt.Println("\nEdit script kitten -> sitting:")
	for _, op := range mpcdist.EditScript([]byte("kitten"), []byte("sitting")) {
		if op.Kind != mpcdist.Match {
			fmt.Printf("  %-5s a[%d] b[%d]\n", op.Kind, op.APos, op.BPos)
		}
	}

	// Exact Ulam distance between permutations (substitutions allowed).
	s := []int{3, 1, 4, 5, 2}
	sbar := []int{1, 4, 3, 5, 2}
	fmt.Println("\nulam =", mpcdist.UlamDistance(s, sbar))

	// Local Ulam distance: the best match of a block inside a long string.
	d, win := mpcdist.LocalUlam([]int{4, 5}, sbar)
	fmt.Printf("lulam = %d at window [%d,%d]\n", d, win.Gamma, win.Kappa)

	// The MPC algorithms on a simulated memory-capped cluster.
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(2000)
	moved := append([]int(nil), perm...)
	for i := 0; i < 30; i++ { // plant some substitutions
		moved[rng.Intn(len(moved))] = 10000 + i
	}
	res, err := mpcdist.UlamDistanceMPC(perm, moved, mpcdist.MPCParams{X: 0.3, Eps: 0.5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nUlam MPC (Theorem 4): value=%d exact=%d\n  %s\n",
		res.Value, mpcdist.UlamDistance(perm, moved), res.Report)

	a := make([]byte, 3000)
	for i := range a {
		a[i] = byte('a' + rng.Intn(4))
	}
	b := append([]byte(nil), a...)
	for i := 0; i < 40; i++ {
		b[rng.Intn(len(b))] = byte('a' + rng.Intn(4))
	}
	eres, err := mpcdist.EditDistanceMPC(a, b, mpcdist.MPCParams{X: 0.25, Eps: 0.5, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEdit MPC (Theorem 9): value=%d exact=%d regime=%s guess=%d\n  %s\n",
		eres.Value, mpcdist.EditDistanceBytes(a, b, nil), eres.Regime, eres.Guess, eres.Report)

	hres, err := mpcdist.EditDistanceHSS(a, b, mpcdist.MPCParams{X: 0.25, Eps: 0.5, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHSS baseline [20]: value=%d\n  %s\n", hres.Value, hres.Report)
	fmt.Printf("\nMachine count: ours %d vs baseline %d (the paper's improvement)\n",
		eres.Report.MaxMachines, hres.Report.MaxMachines)
}
