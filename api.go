package mpcdist

import (
	"context"

	"mpcdist/internal/approx"
	"mpcdist/internal/baseline"
	"mpcdist/internal/chain"
	"mpcdist/internal/core"
	"mpcdist/internal/editdist"
	"mpcdist/internal/lcs"
	"mpcdist/internal/lis"
	"mpcdist/internal/mpc"
	"mpcdist/internal/stats"
	"mpcdist/internal/trace"
	"mpcdist/internal/ulam"
)

// MPCParams configures an MPC execution; see core.Params for field
// documentation. The zero value of every field except X has a sensible
// default; X (the memory exponent) must be set.
type MPCParams = core.Params

// MPCResult is the outcome of an MPC execution: the computed value plus
// the measured model quantities (rounds, machines, memory, work).
type MPCResult = core.Result

// Report aggregates the per-round measurements of a simulated cluster.
type Report = mpc.Report

// Phase labels the paper phase a round belongs to (partition, candidates,
// graph, chain); every simulated round carries exactly one.
type Phase = trace.Phase

// PhaseStats aggregates the Table 1 quantities of one phase of a run.
type PhaseStats = mpc.PhaseStats

// PhaseProfile is a Report re-aggregated by paper phase, in canonical
// phase order.
type PhaseProfile = mpc.PhaseProfile

// Profile groups a report's rounds by paper phase. For a single-cluster
// report the profile partitions the report exactly (see
// PhaseProfile.Conserves).
func Profile(r Report) PhaseProfile { return mpc.Profile(r) }

// PairSolver selects the per-pair kernel of the edit-distance small
// regime; see the constants re-exported below.
type PairSolver = core.PairSolver

// Pair-solver choices for MPCParams.Solver.
const (
	// PairHybridExact (default): exact pair distances, 1+eps small regime.
	PairHybridExact = core.PairHybridExact
	// PairApprox12: the Chakraborty-et-al.-style approximate pair solver,
	// 3+eps as in the paper.
	PairApprox12 = core.PairApprox12
	// PairMyers: always the bit-parallel exact kernel.
	PairMyers = core.PairMyers
)

// Ops counts elementary operations performed by a kernel; pass nil when
// not needed.
type Ops = stats.Ops

// BlockMatch is one link of an MPC result's chain: block s[L..R] maps to
// sbar[G..K] at cost D (MPCResult.Chain, Ulam distance only).
type BlockMatch = chain.Tuple

// Window is an inclusive substring interval [Gamma, Kappa] of the second
// string.
type Window = ulam.Window

// EditOp is one column of an edit script; see Script.
type EditOp = editdist.Op

// Edit operation kinds.
const (
	Match      = editdist.Match
	Substitute = editdist.Substitute
	Insert     = editdist.Insert
	Delete     = editdist.Delete
)

// EditDistance returns the exact edit distance between two strings using
// the classic dynamic program (quadratic time, linear space).
func EditDistance(a, b string) int {
	return editdist.Strings(a, b)
}

// EditDistanceBytes is EditDistance for byte slices, with optional
// operation accounting.
func EditDistanceBytes(a, b []byte, ops *Ops) int {
	return editdist.Bytes(a, b, ops)
}

// EditDistanceFast returns the exact edit distance using the Myers
// bit-parallel algorithm (roughly 64x fewer word operations).
func EditDistanceFast(a, b []byte, ops *Ops) int {
	return editdist.Myers(a, b, ops)
}

// EditDistanceBounded returns min(ed(a,b), bound+1) in O(bound·n) time.
func EditDistanceBounded(a, b []byte, bound int, ops *Ops) int {
	return editdist.BoundedDistance(a, b, bound, ops)
}

// EditDistanceDiagonal returns the exact edit distance with the
// Landau-Myers diagonal-transition algorithm, O(n + d^2 log n) expected —
// the fastest exact kernel when the strings are huge but similar.
func EditDistanceDiagonal(a, b []byte, ops *Ops) int {
	return editdist.DiagonalTransition(a, b, ops)
}

// UlamScript returns an optimal Ulam transformation of a into b as an
// edit script (Cost(script) equals UlamDistance(a, b)). It panics on
// repeated characters; UlamScriptE returns an error instead.
func UlamScript(a, b []int) []EditOp {
	s, err := UlamScriptE(a, b)
	if err != nil {
		panic("mpcdist: " + err.Error())
	}
	return s
}

// UlamScriptE is UlamScript with an error return instead of a panic on
// inputs with repeated characters — the form to use on untrusted input.
func UlamScriptE(a, b []int) ([]EditOp, error) {
	if err := checkDistinctBoth(a, b); err != nil {
		return nil, err
	}
	return ulam.Script(a, b, nil), nil
}

// EditScript returns an optimal edit script transforming a into b
// (Hirschberg's linear-space alignment).
func EditScript(a, b []byte) []EditOp {
	return editdist.Script(a, b)
}

// ApproxEditDistance returns a constant-factor approximation of ed(a, b)
// in subquadratic time — the sequential [12]-substitute used per machine
// by the paper's small-distance regime. eps <= 0 means 0.5; seed drives
// its internal sampling.
func ApproxEditDistance(a, b []byte, eps float64, seed int64, ops *Ops) int {
	return approx.Ed(a, b, approx.Params{Eps: eps, Seed: seed}, ops)
}

// UlamDistance returns the exact Ulam distance (substitutions allowed)
// between two strings of distinct characters. It panics if either input
// repeats a character; use UlamDistanceE on untrusted input.
func UlamDistance(a, b []int) int {
	d, err := UlamDistanceE(a, b)
	if err != nil {
		panic("mpcdist: " + err.Error())
	}
	return d
}

// UlamDistanceE is UlamDistance with an error return instead of a panic
// on inputs with repeated characters — the form to use on untrusted
// input (e.g. a server rejecting a bad request).
func UlamDistanceE(a, b []int) (int, error) {
	if err := checkDistinctBoth(a, b); err != nil {
		return 0, err
	}
	return ulam.Exact(a, b, nil), nil
}

// CheckDistinct reports whether s is free of repeated characters, as the
// Ulam routines require.
func CheckDistinct(s []int) error { return ulam.CheckDistinct(s) }

// UlamIndelDistance returns the insert/delete-only Ulam distance (the
// relaxed notion of Naumovitz et al. contrasted in the paper's
// introduction): |a| + |b| - 2·LCS(a, b), computable in O(n log n) via
// LIS. It always lies in [UlamDistance(a,b), 2·UlamDistance(a,b)].
func UlamIndelDistance(a, b []int) int {
	mustDistinct(a)
	mustDistinct(b)
	return lis.IndelUlam(a, b)
}

// LongestIncreasingSubsequence returns the length of the LIS of a — the
// dual problem of Ulam distance discussed in Section 1.
func LongestIncreasingSubsequence(a []int) int { return lis.Length(a) }

// LocalUlam returns the minimum Ulam distance between block and any
// substring of sbar, with a window attaining it (the paper's lulam).
// It panics on repeated characters; LocalUlamE returns an error instead.
func LocalUlam(block, sbar []int) (int, Window) {
	d, w, err := LocalUlamE(block, sbar)
	if err != nil {
		panic("mpcdist: " + err.Error())
	}
	return d, w
}

// LocalUlamE is LocalUlam with an error return instead of a panic on
// inputs with repeated characters — the form to use on untrusted input.
func LocalUlamE(block, sbar []int) (int, Window, error) {
	if err := checkDistinctBoth(block, sbar); err != nil {
		return 0, Window{}, err
	}
	d, w := ulam.Local(block, sbar, nil)
	return d, w, nil
}

// UlamDistanceMPC approximates the Ulam distance within 1+eps with high
// probability in two MPC rounds on a simulated cluster with Õ(n^x)
// machines of Õ(n^{1-x}) words each (Theorem 4). Requires 0 < X < 1/2.
func UlamDistanceMPC(s, sbar []int, p MPCParams) (MPCResult, error) {
	return core.UlamMPC(s, sbar, p)
}

// UlamDistanceMPCCtx is UlamDistanceMPC with a cancellation context: the
// simulation aborts between rounds (and before each machine executes)
// once ctx is done, returning ctx's error.
func UlamDistanceMPCCtx(ctx context.Context, s, sbar []int, p MPCParams) (MPCResult, error) {
	p.Ctx = ctx
	return core.UlamMPC(s, sbar, p)
}

// EditDistanceMPC approximates the edit distance within 3+eps (1+eps with
// the default exact pair kernel) in at most four MPC rounds per distance
// guess, on Õ(n^{(9/5)x}) machines of Õ(n^{1-x}) words each (Theorem 9).
// Requires 0 < X <= 5/17.
func EditDistanceMPC(s, sbar []byte, p MPCParams) (MPCResult, error) {
	return core.EditMPC(s, sbar, p)
}

// EditDistanceMPCCtx is EditDistanceMPC with a cancellation context: the
// simulation aborts between rounds (and before each machine executes)
// once ctx is done, returning ctx's error.
func EditDistanceMPCCtx(ctx context.Context, s, sbar []byte, p MPCParams) (MPCResult, error) {
	p.Ctx = ctx
	return core.EditMPC(s, sbar, p)
}

// EditDistanceMPCSmall runs only the small-distance regime (Lemma 6) for a
// fixed distance guess.
func EditDistanceMPCSmall(s, sbar []byte, guess int, p MPCParams) (MPCResult, error) {
	return core.EditSmallMPC(s, sbar, guess, p)
}

// EditDistanceMPCLarge runs only the large-distance regime (Lemma 8) for a
// fixed distance guess.
func EditDistanceMPCLarge(s, sbar []byte, guess int, p MPCParams) (MPCResult, error) {
	return core.EditLargeMPC(s, sbar, guess, p)
}

// EditDistanceHSS runs the prior MPC algorithm of Hajiaghayi, Seddighin,
// and Sun (Table 1 "previous work"): 1+eps in two rounds per guess, with
// one machine per (block, candidate) pair — Õ(n^{2x}) machines. Requires
// 0 < X < 1/2.
func EditDistanceHSS(s, sbar []byte, p MPCParams) (MPCResult, error) {
	return baseline.HSSEditMPC(s, sbar, p)
}

// LCSLength returns the exact longest-common-subsequence length via the
// sparse Hunt-Szymanski algorithm (near-linear for strings with few
// repeated characters, O(nm log) worst case).
func LCSLength(a, b []byte, ops *Ops) int {
	return lcs.HuntSzymanski(a, b, ops)
}

// LCSPairs returns one optimal LCS matching as (I, J) index pairs,
// increasing in both strings (Hirschberg, linear space).
func LCSPairs(a, b []byte) []LCSPair {
	return lcs.Pairs(a, b)
}

// LCSPair is one matched column of an LCS alignment.
type LCSPair = lcs.Pair

// IndelDistance returns the insert/delete-only edit distance
// |a| + |b| - 2·LCS(a, b) — the LCS-dual metric.
func IndelDistance(a, b []byte, ops *Ops) int {
	return lcs.IndelDistance(a, b, ops)
}

// LCSMPC approximates the LCS in two MPC rounds per guess with the
// block/candidate scheme of [20] adapted to maximization (an extension of
// this repository; see DESIGN.md). The result is always an achievable
// common-subsequence length and is within 1+O(eps) of the LCS for similar
// strings. Requires 0 < X < 1/2.
func LCSMPC(a, b []byte, p MPCParams) (MPCResult, error) {
	return baseline.LCSMPC(a, b, p)
}

func mustDistinct(s []int) {
	if err := ulam.CheckDistinct(s); err != nil {
		panic("mpcdist: " + err.Error())
	}
}

func checkDistinctBoth(a, b []int) error {
	if err := ulam.CheckDistinct(a); err != nil {
		return err
	}
	return ulam.CheckDistinct(b)
}
