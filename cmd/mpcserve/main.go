// Command mpcserve runs the HTTP/JSON distance-query service: the
// repository's sequential, approximate, and MPC-simulated kernels behind
// a batched, cached, bounded-concurrency front end.
//
// Usage:
//
//	mpcserve -addr :8080 -pool 8 -cache 4096 -timeout 30s -ops :8081
//
// Endpoints (see docs/SERVER.md for the full reference):
//
//	POST /v1/distance    {"algo":"edit","a":"kitten","b":"sitting"}
//	                     (?trace=1 attaches a Chrome trace of the MPC run)
//	POST /v1/batch       {"queries":[...]} -> NDJSON stream
//	GET  /v1/algorithms  supported algorithms
//	GET  /metrics        Prometheus text exposition (?format=json for JSON)
//	GET  /healthz        liveness
//	GET  /readyz         readiness (503 while draining or overloaded)
//
// With -ops a second listener serves /debug/pprof/ and /metrics for
// operators only. Requests are logged as structured lines (text by
// default, -log json for JSON) tagged with X-Request-Id.
//
// The process drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM; /readyz flips to 503 as soon as draining starts so load
// balancers stop routing here.
//
// Overload and robustness controls (on by default, 0 disables):
//
//	-degrade 1s      fall back to a sequential approximation when an
//	                 exact query is about to miss its deadline
//	                 (answers marked "degraded": true)
//	-shed-queue 256  reject with 429 + Retry-After once this many
//	                 requests queue for the worker pool
//	-shed-wait 0     also shed after queueing this long (off by default)
//	-fault-*         inject the deterministic fault schedule of
//	                 internal/fault into MPC queries (testing/chaos)
//
// Distributed mode: -transport tcp -workers N re-execs this binary N
// times as cluster workers and routes eligible MPC queries (ulam-mpc,
// edit-mpc, edit-hss; non-trace) across them. Answers gain
// "distributed": true plus per-worker report rows, and /metrics gains
// mpcserve_transport_* (live wire/liveness gauges) and mpcserve_worker_*
// (per-party attribution counters) series. Distances and deterministic
// report counters are bit-identical to local mode.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpcdist"
	"mpcdist/internal/buildinfo"
	"mpcdist/internal/checkpoint"
	"mpcdist/internal/dist"
	"mpcdist/internal/fault"
	"mpcdist/internal/server"
	"mpcdist/internal/traceio"
	"mpcdist/internal/transport"
)

// distSession adapts a dist.Session to the server's DistRunner seam. The
// session serializes jobs internally, so concurrent pool workers may call
// Run directly.
type distSession struct{ sess *dist.Session }

func (d *distSession) Run(algo string, s, t []byte, p, q []int, params mpcdist.MPCParams) (mpcdist.MPCResult, error) {
	job := dist.FromParams(algo, params)
	job.S, job.T, job.P, job.Q = s, t, p, q
	return d.sess.Run(job)
}

func (d *distSession) Status() transport.Status { return d.sess.Status() }

func main() {
	// Worker re-exec: when spawned by a tcp-session parent this process is
	// a cluster worker, not a server; MaybeWorkerMain never returns then.
	dist.MaybeWorkerMain()

	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 0, "max concurrently executing kernels (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 4096, "LRU result-cache capacity in answers (negative = off)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request compute timeout")
	maxInput := flag.Int("max-input", 1<<20, "max bytes per string / elements per sequence")
	maxBatch := flag.Int("max-batch", 1024, "max queries per batch request")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
	ops := flag.String("ops", "", "operator listen address for pprof + metrics (empty = off)")
	logFormat := flag.String("log", "text", "request-log format: text, json, or off")
	degrade := flag.Duration("degrade", time.Second, "deadline slice reserved for the sequential fallback (0 = no degradation)")
	shedQueue := flag.Int("shed-queue", 256, "shed with 429 once this many requests queue for the pool (0 = off)")
	shedWait := flag.Duration("shed-wait", 0, "shed with 429 after queueing this long for a pool slot (0 = off)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After value on 429 responses")
	maxRetries := flag.Int("max-retries", 0, "MPC fault-recovery budget per machine-round/message (0 = default)")
	transportName := flag.String("transport", "local", "MPC execution transport: local (in-process) or tcp (worker cluster)")
	workers := flag.Int("workers", 3, "worker processes for -transport tcp")
	statusAddr := flag.String("status", "", "serve live transport.Status JSON at this address (host:port; -transport tcp only)")
	checkpointDir := flag.String("checkpoint-dir", "", "durable checkpoint store for batch MPC queries (empty = off)")
	checkpointEvery := flag.Int("checkpoint-every", 1, "persist checkpoints every N completed rounds")
	version := flag.Bool("version", false, "print version and exit")
	faultPlan := fault.BindFlags(flag.CommandLine)
	transportOpts := transport.BindFlags(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("mpcserve"))
		return
	}

	// Arm the always-on flight recorder: SIGQUIT dumps it, degraded
	// fallback and MPC retry exhaustion trigger automatic dumps, and
	// MPCDIST_FLIGHT_OUT opts into a final dump at clean shutdown.
	flightDump := traceio.ArmFlight("mpcserve")
	defer flightDump()

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
		logger = nil
	default:
		log.Fatalf("mpcserve: -log must be text, json, or off (got %q)", *logFormat)
	}

	topts, terr := transportOpts()
	if terr != nil {
		log.Fatalf("mpcserve: %v", terr)
	}

	// The checkpoint store is shared between the two execution paths: batch
	// queries on the local transport checkpoint through server.Config, and
	// tcp sessions checkpoint at the coordinator through SessionOptions.
	// Either way a restarted mpcserve resumes completed rounds instead of
	// recomputing them.
	var ckptStore *checkpoint.Store
	if *checkpointDir != "" {
		var err error
		ckptStore, err = checkpoint.Open(*checkpointDir)
		if err != nil {
			log.Fatalf("mpcserve: %v", err)
		}
		log.Printf("mpcserve: checkpointing batch MPC queries to %s (every %d rounds)", *checkpointDir, *checkpointEvery)
	}
	var srv *server.Server // assigned below; captured by the flush hook

	var distRunner server.DistRunner
	switch *transportName {
	case "local":
	case "tcp":
		sess, err := dist.NewSession(dist.SessionOptions{
			Workers:          *workers,
			Transport:        topts,
			Checkpoint:       ckptStore,
			CheckpointEvery:  *checkpointEvery,
			CheckpointResume: true,
			OnCheckpointFlush: func(steps int, bytes int64) {
				if srv != nil {
					srv.Metrics().ObserveCheckpointFlush(steps, bytes)
				}
			},
		})
		if err != nil {
			log.Fatalf("mpcserve: starting worker cluster: %v", err)
		}
		defer sess.Close()
		distRunner = &distSession{sess: sess}
		log.Printf("mpcserve: distributed mode: %d worker processes (MPC queries run on the cluster)", *workers)
	default:
		log.Fatalf("mpcserve: -transport must be local or tcp (got %q)", *transportName)
	}

	if *statusAddr != "" {
		if distRunner == nil {
			log.Fatalf("mpcserve: -status requires -transport tcp")
		}
		// Same live-status server the dist commands use: /status is the
		// coordinator's transport.Status, /flight and /debug/flight expose
		// the flight recorder — the trio cmd/mpctop polls.
		statusSrv, err := dist.StartStatus(*statusAddr, func() any { return distRunner.Status() })
		if err != nil {
			log.Fatalf("mpcserve: %v", err)
		}
		defer statusSrv.Close()
		log.Printf("mpcserve: status endpoint at http://%s/status", statusSrv.Addr)
	}

	srv = server.New(server.Config{
		PoolSize:        *pool,
		CacheSize:       *cache,
		RequestTimeout:  *timeout,
		MaxInputLen:     *maxInput,
		MaxBatch:        *maxBatch,
		Logger:          logger,
		DegradeReserve:  *degrade,
		ShedQueue:       *shedQueue,
		ShedWait:        *shedWait,
		RetryAfter:      *retryAfter,
		Faults:          faultPlan(),
		MaxRetries:      *maxRetries,
		Dist:            distRunner,
		Checkpoint:      ckptStore,
		CheckpointEvery: *checkpointEvery,
	})
	if p := faultPlan(); p != nil {
		log.Printf("mpcserve: fault injection active: %s", p)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("mpcserve: listening on %s", *addr)

	var opsSrv *http.Server
	if *ops != "" {
		opsSrv = &http.Server{
			Addr:              *ops,
			Handler:           srv.OpsHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := opsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("mpcserve: ops listener: %v", err)
			}
		}()
		log.Printf("mpcserve: ops (pprof + metrics) on %s", *ops)
	}

	select {
	case err := <-errCh:
		log.Fatalf("mpcserve: %v", err)
	case <-ctx.Done():
	}

	srv.SetDraining(true) // /readyz now reports 503 so traffic stops routing here
	log.Printf("mpcserve: shutting down (draining up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("mpcserve: shutdown: %v", err)
	}
	if opsSrv != nil {
		_ = opsSrv.Shutdown(shutdownCtx)
	}
	snap := srv.Metrics().Snapshot()
	fmt.Printf("mpcserve: served %d requests (%d errors, %d timeouts, %d batches, %d degraded, %d shed)\n",
		snap.Requests, snap.Errors, snap.Timeouts, snap.Batches, snap.Degraded, snap.Shed)
}
