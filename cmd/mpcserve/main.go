// Command mpcserve runs the HTTP/JSON distance-query service: the
// repository's sequential, approximate, and MPC-simulated kernels behind
// a batched, cached, bounded-concurrency front end.
//
// Usage:
//
//	mpcserve -addr :8080 -pool 8 -cache 4096 -timeout 30s
//
// Endpoints (see docs/SERVER.md for the full reference):
//
//	POST /v1/distance    {"algo":"edit","a":"kitten","b":"sitting"}
//	POST /v1/batch       {"queries":[...]} -> NDJSON stream
//	GET  /v1/algorithms  supported algorithms
//	GET  /metrics        counters, latency histograms, cache/pool stats
//	GET  /healthz        liveness
//
// The process drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpcdist/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 0, "max concurrently executing kernels (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 4096, "LRU result-cache capacity in answers (negative = off)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request compute timeout")
	maxInput := flag.Int("max-input", 1<<20, "max bytes per string / elements per sequence")
	maxBatch := flag.Int("max-batch", 1024, "max queries per batch request")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
	flag.Parse()

	srv := server.New(server.Config{
		PoolSize:       *pool,
		CacheSize:      *cache,
		RequestTimeout: *timeout,
		MaxInputLen:    *maxInput,
		MaxBatch:       *maxBatch,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("mpcserve: listening on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatalf("mpcserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("mpcserve: shutting down (draining up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("mpcserve: shutdown: %v", err)
	}
	snap := srv.Metrics().Snapshot()
	fmt.Printf("mpcserve: served %d requests (%d errors, %d timeouts, %d batches)\n",
		snap.Requests, snap.Errors, snap.Timeouts, snap.Batches)
}
