// Command mpctop is a polling terminal dashboard for a running cluster:
// point it at the status endpoints the other commands serve and it renders
// a live view of where every party is, what the wire looks like, and what
// the flight recorder has retained — without touching the deterministic
// run it watches.
//
// Usage:
//
//	mpctop -status http://127.0.0.1:8081                # mpcdist/mpcserve -status
//	mpctop -status http://c:8081,http://w1:8082         # coordinator + workers
//	mpctop -metrics http://127.0.0.1:8080               # mpcserve /metrics
//	mpctop -status http://127.0.0.1:8081 -once          # one frame, no clear
//
// Each -status base URL is polled at /status (transport.Status: role,
// round, seq, liveness, wire counters, per-peer heartbeat RTT p99) and
// /flight (flight-recorder stats: retained events and rolling round-latency
// p50/p95/p99). The -metrics base URL is polled at /metrics?format=json
// for the mpcserve view: request/degrade/shed counters and the per-party
// ops/comm/queue-wait attribution of distributed runs.
//
// Everything shown is advisory host-level state; mpctop only issues GETs
// against endpoints that never influence the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mpcdist/internal/buildinfo"
	"mpcdist/internal/dist"
	"mpcdist/internal/server"
	"mpcdist/internal/trace"
)

func main() {
	statusList := flag.String("status", "", "comma-separated base URLs of -status endpoints (mpcdist, mpcserve, mpcworker)")
	metricsURL := flag.String("metrics", "", "base URL of an mpcserve /metrics endpoint")
	interval := flag.Duration("interval", time.Second, "poll interval")
	once := flag.Bool("once", false, "render a single frame and exit (no screen clearing)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("mpctop"))
		return
	}

	var statuses []string
	for _, s := range strings.Split(*statusList, ",") {
		if s = strings.TrimSpace(s); s != "" {
			statuses = append(statuses, strings.TrimRight(s, "/"))
		}
	}
	if len(statuses) == 0 && *metricsURL == "" {
		fmt.Fprintln(os.Stderr, "mpctop: need at least one of -status or -metrics")
		flag.Usage()
		os.Exit(2)
	}

	client := &http.Client{Timeout: *interval}
	if client.Timeout < time.Second {
		client.Timeout = time.Second
	}
	for {
		fr := poll(client, statuses, strings.TrimRight(*metricsURL, "/"))
		fr.At = time.Now()
		fr.Interval = *interval
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(os.Stdout, fr)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// statusSample is one -status endpoint's poll result. Flight is nil when
// the endpoint predates the recorder or the fetch failed (the dashboard
// degrades to the transport view alone). Status decodes as the superset
// shape: coordinators running with -checkpoint-dir attach a "checkpoint"
// object, workers and plain sessions simply leave it nil.
type statusSample struct {
	URL    string
	Err    error
	Status dist.StatusWithCheckpoint
	Flight *trace.FlightStats
}

// metricsSample is the mpcserve /metrics?format=json poll result.
type metricsSample struct {
	URL  string
	Err  error
	Snap server.Snapshot
}

// frame is everything one render needs; poll fills it, render draws it.
// The split keeps render a pure function of its input, which is what the
// tests exercise.
type frame struct {
	At       time.Time
	Interval time.Duration
	Statuses []statusSample
	Metrics  *metricsSample
}

func poll(client *http.Client, statuses []string, metricsURL string) frame {
	var fr frame
	for _, base := range statuses {
		s := statusSample{URL: base}
		s.Err = getJSON(client, base+"/status", &s.Status)
		if s.Err == nil {
			var fs trace.FlightStats
			if err := getJSON(client, base+"/flight", &fs); err == nil {
				s.Flight = &fs
			}
		}
		fr.Statuses = append(fr.Statuses, s)
	}
	if metricsURL != "" {
		m := &metricsSample{URL: metricsURL}
		m.Err = getJSON(client, metricsURL+"/metrics?format=json", &m.Snap)
		fr.Metrics = m
	}
	return fr
}

// payloadError reports a response body that was not exactly one JSON
// document — truncated, garbled, or carrying trailing bytes. A bare
// json.Decoder.Decode would accept a valid prefix and silently discard
// the rest, so a half-written or corrupted status response could render
// as a healthy frame; mpctop instead surfaces it as an endpoint error.
type payloadError struct {
	URL string
	Err error
}

func (e *payloadError) Error() string { return fmt.Sprintf("%s: bad payload: %v", e.URL, e.Err) }
func (e *payloadError) Unwrap() error { return e.Err }

// maxPayload bounds how much of a status response mpctop will buffer;
// the real endpoints emit a few KB, so 10MB means "something is wrong".
const maxPayload = 10 << 20

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPayload))
	if err != nil {
		return &payloadError{URL: url, Err: err}
	}
	// Unmarshal, unlike Decode, rejects trailing bytes after the document.
	if err := json.Unmarshal(body, v); err != nil {
		return &payloadError{URL: url, Err: err}
	}
	return nil
}

func render(w io.Writer, fr frame) {
	fmt.Fprintf(w, "mpctop — %s  (poll %s)\n", fr.At.Format("15:04:05"), fr.Interval)
	for _, s := range fr.Statuses {
		renderStatus(w, s)
	}
	if fr.Metrics != nil {
		renderMetrics(w, *fr.Metrics)
	}
}

func renderStatus(w io.Writer, s statusSample) {
	fmt.Fprintf(w, "\nSESSION %s\n", s.URL)
	if s.Err != nil {
		fmt.Fprintf(w, "  unreachable: %v\n", s.Err)
		return
	}
	st := s.Status
	grace := ""
	if st.RejoinGraceMs > 0 {
		grace = fmt.Sprintf(" grace=%s", msStr(st.RejoinGraceMs))
	}
	fmt.Fprintf(w, "  %s party %d/%d — round %d %q phase=%s seq=%d alive=%d/%d%s\n",
		st.Role, st.Self, st.Parties, st.Round, st.Name, st.Phase, st.Seq, st.Alive, st.Parties, grace)
	fmt.Fprintf(w, "  wire: out=%s in=%s frames=%d exchanges=%d peersLost=%d reassigns=%d reconnects=%d corrupt=%d\n",
		bytesStr(st.Wire.BytesOut), bytesStr(st.Wire.BytesIn),
		st.Wire.Frames, st.Wire.Exchanges, st.Wire.PeersLost, st.Wire.Reassigns,
		st.Wire.Reconnects, st.Wire.CorruptFrames)
	if c := st.Checkpoint; c != nil {
		fmt.Fprintf(w, "  checkpoint: job=%.12s steps=%d (resumed %d, saved %d) last=round %d %s — store %d blobs %s\n",
			c.Job, c.Steps, c.Resumed, c.Saves, c.LastRound, c.LastName, c.StoreBlobs, bytesStr(c.StoreBytes))
	}
	if f := s.Flight; f != nil && f.Enabled {
		fmt.Fprintf(w, "  flight: rounds p50=%.2fms p95=%.2fms p99=%.2fms (window %d) — retained %d rounds, %d spans, %d faults, %d transport; %d events, %d lanes\n",
			f.Latency.P50Ms, f.Latency.P95Ms, f.Latency.P99Ms, f.Latency.Window,
			f.Rounds, f.Spans, f.Faults, f.Transport, f.Events, f.Parties)
	}
	if len(st.Peers) > 0 {
		fmt.Fprintf(w, "  %5s %5s %10s %10s %8s %9s %10s %6s %7s\n",
			"PEER", "ALIVE", "IN", "OUT", "FRAMES", "RTTp99", "LASTHEARD", "RECONN", "CORRUPT")
		for _, p := range st.Peers {
			alive := "yes"
			if !p.Alive {
				alive = "DEAD"
			}
			last := "-"
			if p.LastHeardMs >= 0 {
				last = fmt.Sprintf("%.0fms", p.LastHeardMs)
			}
			fmt.Fprintf(w, "  %5d %5s %10s %10s %8d %8.2fms %10s %6d %7d\n",
				p.Party, alive, bytesStr(p.BytesIn), bytesStr(p.BytesOut), p.Frames, p.RTTP99Ms, last,
				p.Reconnects, p.CorruptFrames)
		}
	}
}

func renderMetrics(w io.Writer, m metricsSample) {
	fmt.Fprintf(w, "\nSERVER %s\n", m.URL)
	if m.Err != nil {
		fmt.Fprintf(w, "  unreachable: %v\n", m.Err)
		return
	}
	sn := m.Snap
	fmt.Fprintf(w, "  up %s — %d requests (%d errors, %d timeouts, %d degraded, %d shed, %d batches)\n",
		(time.Duration(sn.UptimeSeconds) * time.Second).String(),
		sn.Requests, sn.Errors, sn.Timeouts, sn.Degraded, sn.Shed, sn.Batches)
	if tr := sn.Transport; tr != nil {
		fmt.Fprintf(w, "  cluster: alive=%d/%d wire out=%s in=%s peersLost=%d reassigns=%d reconnects=%d corrupt=%d\n",
			tr.Alive, tr.Workers+1, bytesStr(tr.Wire.BytesOut), bytesStr(tr.Wire.BytesIn),
			tr.Wire.PeersLost, tr.Wire.Reassigns, tr.Wire.Reconnects, tr.Wire.CorruptFrames)
	}
	if c := sn.Checkpoint; c != nil {
		fmt.Fprintf(w, "  checkpoint: saved=%d resumed=%d written=%s — store %d blobs %s\n",
			c.Saves, c.ResumedSteps, bytesStr(c.BytesWritten), c.StoreBlobs, bytesStr(c.StoreBytes))
	}
	if len(sn.Algorithms) > 0 {
		names := make([]string, 0, len(sn.Algorithms))
		for name := range sn.Algorithms {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "  %-12s %8s %8s %6s %10s %10s %12s %12s\n",
			"ALGO", "REQ", "HIT", "ERR", "p50", "max", "OPS", "COMM")
		for _, name := range names {
			a := sn.Algorithms[name]
			fmt.Fprintf(w, "  %-12s %8d %8d %6d %10s %10s %12d %12d\n",
				name, a.Requests, a.CacheHits, a.Errors,
				msStr(histP50(a.Latency, sn.LatencyBuckets)), msStr(a.Latency.MaxMs),
				a.TotalOps, a.TotalComm)
		}
	}
	if len(sn.Workers) > 0 {
		parties := make([]int, 0, len(sn.Workers))
		for p := range sn.Workers {
			parties = append(parties, p)
		}
		sort.Ints(parties)
		fmt.Fprintf(w, "  %6s %12s %12s %12s %12s %10s\n",
			"PARTY", "MACH-ROUNDS", "OPS", "COMM", "QUEUE-WAIT", "WIRE")
		for _, p := range parties {
			wa := sn.Workers[p]
			fmt.Fprintf(w, "  %6d %12d %12d %12d %12s %10s\n",
				p, wa.MachineRounds, wa.Ops, wa.CommWords, msStr(wa.QueueWaitMs), bytesStr(wa.WireBytes))
		}
	}
}

// histP50 estimates the median from a fixed-bucket histogram: the upper
// bound of the bucket holding the median observation (+Inf renders as the
// recorded max). Coarse by construction — it is a dashboard glance, not a
// measurement.
func histP50(h *server.Histogram, bounds []float64) float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	target := (h.Count + 1) / 2
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if seen >= target {
			if i < len(bounds) {
				return bounds[i]
			}
			return h.MaxMs
		}
	}
	return h.MaxMs
}

func msStr(ms float64) string {
	switch {
	case ms <= 0:
		return "-"
	case ms < 10:
		return fmt.Sprintf("%.2fms", ms)
	case ms < 1000:
		return fmt.Sprintf("%.0fms", ms)
	default:
		return fmt.Sprintf("%.1fs", ms/1000)
	}
}

func bytesStr(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	}
}
